// Multigrid hierarchy setup — MG_setup_for_FP16 (Alg. 1).
//
// The full setup (Galerkin chain, smoother data, coarsest factorization) runs
// in FP64.  Only afterwards, per level, the matrix is (optionally scaled and)
// truncated into the configured storage precision — the setup-then-scale
// strategy.  With ScaleMode::ScaleThenSetup the finest matrix is scaled
// *before* the chain instead (the ablation baseline whose triple products are
// polluted by the scaling).
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/dense_lu.hpp"
#include "core/scaling.hpp"
#include "core/transfer.hpp"
#include "grid/wavefront.hpp"
#include "sgdia/any_matrix.hpp"

namespace smg {

struct Level {
  StructMat<double> A_full;  ///< FP64 operator of this level
  AnyMat A_stored;           ///< truncated operator used in the V-cycle
  bool scaled = false;       ///< A_stored holds Q^{-1/2} A Q^{-1/2}
  avec<double> q2;           ///< sqrt(diag(A)/G) per dof; empty if !scaled
  avec<double> invdiag;      ///< smoother diagonal-block inverses (FP64)
  Coarsening to_coarse;      ///< geometry to the next level (unused on last)
  TruncateReport trunc;      ///< truncation stats of this level
  double gmax = 0.0;         ///< Theorem 4.1 bound (0 if not scaled)
  double g = 0.0;            ///< scaling target actually used (0 if !scaled)
  /// Magnitude range of the values handed to truncation (the scaled copy
  /// when scaled, the raw operator otherwise); telemetry's overflow /
  /// underflow headroom ledger.
  double stored_min_abs = 0.0;  ///< smallest nonzero |a_ij|; 0 if all-zero
  double stored_max_abs = 0.0;
  Prec storage = Prec::FP64;
  /// Level-scheduled SymGS sweep plan; invalid means "sequential sweep"
  /// (Sequential mode, wavefront-incompatible stencil, or a level the Auto
  /// heuristic judged too small).  Computed once at setup.
  WavefrontSchedule smoother_wf;
};

class MGHierarchy {
 public:
  MGHierarchy(StructMat<double> A0, MGConfig cfg);

  int nlevels() const noexcept { return static_cast<int>(levels_.size()); }
  const Level& level(int l) const noexcept { return levels_[l]; }
  const MGConfig& config() const noexcept { return cfg_; }
  const DenseLU& coarse_solver() const noexcept { return coarse_lu_; }

  /// ScaleThenSetup wraps the finest level with Q^{-1/2} on both sides.
  bool finest_wrapped() const noexcept { return finest_wrapped_; }
  const avec<double>& finest_q2() const noexcept { return finest_q2_; }

  /// Grid complexity C_G = sum_l n_l / n_0 (Eq. 3).
  double grid_complexity() const noexcept;
  /// Operator complexity C_O = sum_l nnz_l / nnz_0 (Eq. 3).
  double operator_complexity() const noexcept;

  /// Bytes of matrix storage actually used by the V-cycle.
  std::size_t stored_matrix_bytes() const noexcept;
  /// Bytes the same hierarchy would use with FP64 storage (speedup model).
  std::size_t fp64_matrix_bytes() const noexcept;

  double setup_seconds() const noexcept { return setup_seconds_; }

  /// Total truncation events across levels (NaN risk diagnostics).
  TruncateReport total_truncation() const noexcept;

 private:
  MGConfig cfg_;
  std::vector<Level> levels_;
  DenseLU coarse_lu_;
  bool finest_wrapped_ = false;
  avec<double> finest_q2_;
  double setup_seconds_ = 0.0;
};

}  // namespace smg
