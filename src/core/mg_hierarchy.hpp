// Multigrid hierarchy setup — MG_setup_for_FP16 (Alg. 1).
//
// The full setup (Galerkin chain, smoother data, coarsest factorization) runs
// in FP64.  Only afterwards, per level, the matrix is (optionally scaled and)
// truncated into the configured storage precision — the setup-then-scale
// strategy.  With ScaleMode::ScaleThenSetup the finest matrix is scaled
// *before* the chain instead (the ablation baseline whose triple products are
// polluted by the scaling).
//
// Under PrecisionPolicy::Auto/Guarded the per-level truncation consults the
// setup-time autopilot planner (core/autopilot.hpp), and under Guarded each
// scaled level retains its FP64 scaled copy so the runtime governor can
// rescale or promote it in place — without redoing the Galerkin chain.
#pragma once

#include <vector>

#include "core/autopilot.hpp"
#include "core/config.hpp"
#include "core/dense_lu.hpp"
#include "core/scaling.hpp"
#include "core/transfer.hpp"
#include "grid/wavefront.hpp"
#include "sgdia/any_matrix.hpp"

namespace smg {

struct Level {
  StructMat<double> A_full;  ///< FP64 operator of this level
  AnyMat A_stored;           ///< truncated operator used in the V-cycle
  /// FP64 scaled copy retained under PrecisionPolicy::Guarded (empty
  /// otherwise, and on unscaled levels): the source the runtime governor
  /// re-truncates from on a rescale or promotion.
  StructMat<double> A_setup;
  bool scaled = false;  ///< A_stored holds Q^{-1/2} A Q^{-1/2}
  /// Theorem 4.1's precondition failed (zero/negative/non-finite diagonal
  /// entry): the level fell back to unscaled compute-precision storage.
  bool degenerate_diag = false;
  avec<double> q2;           ///< sqrt(diag(A)/G) per dof; empty if !scaled
  avec<double> invdiag;      ///< smoother diagonal-block inverses (FP64)
  Coarsening to_coarse;      ///< geometry to the next level (unused on last)
  TruncateReport trunc;      ///< truncation stats of the *current* A_stored
  double gmax = 0.0;         ///< Theorem 4.1 bound (0 if not scaled)
  double g = 0.0;            ///< scaling target actually used (0 if !scaled)
  /// Magnitude range of the values handed to truncation (the scaled copy
  /// when scaled, the raw operator otherwise); telemetry's overflow /
  /// underflow headroom ledger.
  double stored_min_abs = 0.0;  ///< smallest nonzero |a_ij|; 0 if all-zero
  double stored_max_abs = 0.0;
  Prec storage = Prec::FP64;
  /// Level-scheduled SymGS sweep plan; invalid means "sequential sweep"
  /// (Sequential mode, wavefront-incompatible stencil, or a level the Auto
  /// heuristic judged too small).  Computed once at setup.
  WavefrontSchedule smoother_wf;
};

class MGHierarchy {
 public:
  MGHierarchy(StructMat<double> A0, MGConfig cfg);

  int nlevels() const noexcept { return static_cast<int>(levels_.size()); }
  const Level& level(int l) const noexcept {
    return levels_[static_cast<std::size_t>(l)];
  }
  const MGConfig& config() const noexcept { return cfg_; }
  const DenseLU& coarse_solver() const noexcept { return coarse_lu_; }

  /// ScaleThenSetup wraps the finest level with Q^{-1/2} on both sides.
  bool finest_wrapped() const noexcept { return finest_wrapped_; }
  const avec<double>& finest_q2() const noexcept { return finest_q2_; }

  /// Grid complexity C_G = sum_l n_l / n_0 (Eq. 3).
  double grid_complexity() const noexcept;
  /// Operator complexity C_O = sum_l nnz_l / nnz_0 (Eq. 3).
  double operator_complexity() const noexcept;

  /// Bytes of matrix storage actually used by the V-cycle.
  std::size_t stored_matrix_bytes() const noexcept;
  /// Bytes the same hierarchy would use with FP64 storage (speedup model).
  std::size_t fp64_matrix_bytes() const noexcept;

  double setup_seconds() const noexcept { return setup_seconds_; }

  /// Total truncation events across levels (NaN risk diagnostics).
  TruncateReport total_truncation() const noexcept;

  // --- precision autopilot (core/autopilot.hpp, DESIGN.md §9) ---

  /// The effective precision policy (config resolved against the
  /// SMG_PRECISION_POLICY environment override at construction).
  PrecisionPolicy policy() const noexcept { return cfg_.precision_policy; }
  /// Autopilot tunables this hierarchy was planned with.
  const AutopilotThresholds& thresholds() const noexcept { return th_; }
  /// Every decision the planner and governor took, in order.
  const std::vector<AutopilotDecision>& autopilot_log() const noexcept {
    return autopilot_log_;
  }

  /// Re-truncate level `l` at G = new_safety * G_max, in place, from the
  /// retained FP64 scaled setup matrix.  The scaled matrix is linear in G,
  /// so this is a scalar rescale + re-truncation — no Galerkin redo.  False
  /// when the level is unscaled, has no retained setup copy, or the rescale
  /// would be a no-op.
  bool rescale_level(int l, double new_safety, AutopilotTrigger trig);

  /// Widen level `l`'s storage to `to`, re-truncating the retained setup
  /// matrix (scaled levels) or the FP64 operator.  Smoother data follows.
  /// False when `to` does not widen the current storage.
  bool promote_level(int l, Prec to, AutopilotTrigger trig);

 private:
  /// Per-level scale-and-truncate (Alg. 1 lines 4-13) plus the autopilot
  /// planner when precision_policy != Fixed.
  void setup_level_storage(int l);
  /// Auto-rung ladder planner: the cheapest storage format (FP8 first, then
  /// the configured base rung) whose scaled value distribution clears the
  /// Theorem 4.1 headroom thresholds.  Returns the base rung when nothing
  /// cheaper is admissible; compute precision is never proposed here — that
  /// remains the §4.3 shift path's job.
  Prec plan_rung(int l, const StructMat<double>& A);
  /// §4.3 monotone shift: level `l` and every coarser level fall back to
  /// compute precision.  Updates shift_levid and, when a ladder is active,
  /// rewrites it so storage_at() agrees.
  void shift_to_compute(int l);
  /// Truncate lev.A_full directly into lev.storage (no scaling).
  void store_direct(Level& lev);
  /// Recompute smoother data from A_full and re-truncate at lev.storage.
  void refresh_invdiag(Level& lev);
  /// The scaled-space rounding of the diagonal-block inverses.
  void truncate_invdiag_scaled(Level& lev);

  MGConfig cfg_;
  AutopilotThresholds th_;
  std::vector<Level> levels_;
  std::vector<AutopilotDecision> autopilot_log_;
  DenseLU coarse_lu_;
  bool finest_wrapped_ = false;
  avec<double> finest_q2_;
  double setup_seconds_ = 0.0;
};

}  // namespace smg
