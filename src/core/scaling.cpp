#include "core/scaling.hpp"

#include <cmath>
#include <limits>

#include "kernels/loops.hpp"
#include "util/common.hpp"

namespace smg {

namespace {

/// Per-dof diagonal entries a_rr (from the center stencil block).
avec<double> extract_diagonal(const StructMat<double>& A) {
  const int center = A.stencil().center();
  SMG_CHECK(center >= 0, "scaling requires a center diagonal");
  const int bs = A.block_size();
  avec<double> diag(static_cast<std::size_t>(A.nrows()));
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    for (int br = 0; br < bs; ++br) {
      diag[static_cast<std::size_t>(cell * bs + br)] =
          A.at(cell, center, br, br);
    }
  }
  return diag;
}

/// Visit every in-box entry as (row_dof, col_dof, value&) over contiguous
/// per-(diagonal, line) runs — the hot path of both G_max and the scaling
/// pass, so no per-entry bounds checks.
template <class F>
void for_each_entry_runs(StructMat<double>& A, F&& f) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  for (int d = 0; d < st.ndiag(); ++d) {
    for (int k = 0; k < box.nz; ++k) {
      for (int j = 0; j < box.ny; ++j) {
        const DiagRange r = diag_range(box, st.offset(d), j, k);
        if (!r.line_valid || r.ihi <= r.ilo) {
          continue;
        }
        const std::int64_t base = box.idx(0, j, k);
        for (int i = r.ilo; i < r.ihi; ++i) {
          const std::int64_t cell = base + i;
          const std::int64_t nbr = cell + r.shift;
          double* blk = A.data() + A.block_index(cell, d);
          for (int br = 0; br < bs; ++br) {
            for (int bc = 0; bc < bs; ++bc) {
              f(cell * bs + br, nbr * bs + bc, blk[br * bs + bc]);
            }
          }
        }
      }
    }
  }
}

}  // namespace

double max_abs_value(const StructMat<double>& A) {
  double m = 0.0;
  for (double v : A.values()) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

double min_abs_nonzero(const StructMat<double>& A) {
  double m = std::numeric_limits<double>::infinity();
  for (double v : A.values()) {
    if (v != 0.0) {
      m = std::min(m, std::abs(v));
    }
  }
  return m;
}

bool diagonal_positive(const StructMat<double>& A) {
  const int center = A.stencil().center();
  if (center < 0) {
    return false;
  }
  const int bs = A.block_size();
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    for (int br = 0; br < bs; ++br) {
      const double d = A.at(cell, center, br, br);
      if (!(d > 0.0) || !std::isfinite(d)) {
        return false;
      }
    }
  }
  return true;
}

double compute_gmax(const StructMat<double>& A, double S) {
  if (!diagonal_positive(A)) {
    // sqrt(d_r d_c) is undefined (or 0/inf): no G admits Theorem 4.1's
    // bound.  NaN — not 0 — so callers can distinguish "no admissible G"
    // from a legitimately tiny one.
    return std::numeric_limits<double>::quiet_NaN();
  }
  const avec<double> diag = extract_diagonal(A);
  // Track m = max over entries of v^2 / (d_r d_c) without per-entry
  // divisions: a division happens only when the maximum improves.
  double m = 0.0;
  bool any = false;
  auto& mutA = const_cast<StructMat<double>&>(A);
  for_each_entry_runs(mutA, [&](std::int64_t r, std::int64_t c, double& v) {
    if (v == 0.0) {
      return;
    }
    const double dr = diag[static_cast<std::size_t>(r)];
    const double dc = diag[static_cast<std::size_t>(c)];
    const double v2 = v * v;
    const double dd = dr * dc;
    if (v2 > m * dd) {
      m = v2 / dd;
    }
    any = true;
  });
  if (!any) {
    return std::numeric_limits<double>::infinity();
  }
  // G_max = S * min sqrt(d_r d_c)/|v| = S / sqrt(max v^2/(d_r d_c)).
  return S / std::sqrt(m);
}

ScaleResult scale_matrix(StructMat<double>& A, double safety, double S) {
  ScaleResult res;
  if (!diagonal_positive(A)) {
    // A zero/negative/non-finite a_rr would turn G_max (and every scaled
    // entry touching that dof) into NaN and poison the whole hierarchy.
    // Leave A untouched; the caller stores this level unscaled in compute
    // precision instead.
    res.diag_ok = false;
    res.gmax = std::numeric_limits<double>::quiet_NaN();
    return res;
  }
  res.gmax = compute_gmax(A, S);
  res.G = safety * res.gmax;
  if (!(res.G > 0.0) || !std::isfinite(res.G)) {
    // All-zero matrix (gmax = inf) or nonsensical safety: nothing to scale.
    return res;
  }

  const avec<double> diag = extract_diagonal(A);
  res.q2.resize(diag.size());
  // inv_sqrt_q[r] = 1/sqrt(q_r) = sqrt(G / a_rr); q2[r] = sqrt(a_rr / G).
  avec<double> inv_sqrt_q(diag.size());
  for (std::size_t r = 0; r < diag.size(); ++r) {
    res.q2[r] = std::sqrt(diag[r] / res.G);
    inv_sqrt_q[r] = 1.0 / res.q2[r];
  }

  const double* SMG_RESTRICT isq = inv_sqrt_q.data();
  for_each_entry_runs(A, [&](std::int64_t r, std::int64_t c, double& v) {
    v *= isq[r] * isq[c];
  });
  res.applied = true;
  return res;
}

}  // namespace smg
