// Multigrid + precision configuration.
//
// The paper's naming scheme "K<a>P<b>D<c>" maps onto this struct as:
//   K — iterative (Krylov) precision: chosen by the *solver* template type,
//       not stored here (Alg. 2's red precision);
//   P — `compute`: precision of every vector and arithmetic op inside the
//       preconditioner (blue);
//   D — `storage`: precision the level matrices are truncated to (green).
// `shift_levid` implements §4.3: from that level to the coarsest, matrices
// are stored in `compute` precision instead of `storage` to dodge underflow
// accumulated along the triple-matrix-product chain.
#pragma once

#include <algorithm>
#include <array>
#include <climits>
#include <cstdint>
#include <string>
#include <vector>

#include "fp/precision.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "sgdia/struct_matrix.hpp"

namespace smg {

enum class ScaleMode {
  None,            ///< direct truncation (Fig. 6 "K64P32D16-none")
  SetupThenScale,  ///< the paper's strategy (Alg. 1, "setup-scale")
  ScaleThenSetup,  ///< the ablation counterpart ("scale-setup")
};

constexpr std::string_view to_string(ScaleMode m) noexcept {
  switch (m) {
    case ScaleMode::None:
      return "none";
    case ScaleMode::SetupThenScale:
      return "setup-then-scale";
    case ScaleMode::ScaleThenSetup:
      return "scale-then-setup";
  }
  return "?";
}

enum class SmootherType {
  Jacobi,  ///< weighted (block-)Jacobi
  SymGS,   ///< forward GS pre-smoothing, backward GS post-smoothing
};

/// How the SymGS sweeps are scheduled across OpenMP threads.
enum class SmootherParallel {
  Auto,        ///< wavefront when threads > 1 and enough lines per level
  Wavefront,   ///< always level-scheduled (sequential only if the stencil
               ///< violates the |dy|,|dz| <= 1 wavefront bound)
  Sequential,  ///< always the plain lexicographic sweep
};

constexpr std::string_view to_string(SmootherParallel p) noexcept {
  switch (p) {
    case SmootherParallel::Auto:
      return "auto";
    case SmootherParallel::Wavefront:
      return "wavefront";
    case SmootherParallel::Sequential:
      return "sequential";
  }
  return "?";
}

/// Whether the V-cycle downstroke uses the fused residual→restrict kernel
/// (kernels/fused.hpp) instead of materializing the residual vector and
/// restricting it in a second pass.  Both paths are bitwise identical; this
/// is purely a memory-traffic switch (saves one full-vector write + read per
/// level per cycle).
enum class FusedTransfers {
  Auto,  ///< fused (currently always on; kept distinct from On so a future
         ///< heuristic can demote without an interface change)
  On,    ///< always fused
  Off,   ///< reference two-step path (residual into L.r, then restrict)
};

constexpr std::string_view to_string(FusedTransfers f) noexcept {
  switch (f) {
    case FusedTransfers::Auto:
      return "auto";
    case FusedTransfers::On:
      return "on";
    case FusedTransfers::Off:
      return "off";
  }
  return "?";
}

/// Cycle shape of one preconditioner apply (docs/CYCLE_SHAPES.md):
///   V — one coarse-grid correction per level per apply;
///   W — every non-coarsest child level is revisited (2^l visits of level l);
///   F — full multigrid (FMG): inject the rhs to the coarsest level, solve
///       there, then per level bootstrap the initial guess by prolonging the
///       coarser solution (FMG interpolation) and run one V sub-cycle.  An
///       F-cycle visits level l exactly l+1 times — the near-direct-solver
///       shape that reaches discretization error in one apply.
enum class CycleShape {
  V,
  W,
  F,
};

/// Pre-PR-10 spelling; the V/W enumerators predate the F shape.
using CycleType = CycleShape;

constexpr std::string_view to_string(CycleShape s) noexcept {
  switch (s) {
    case CycleShape::V:
      return "v";
    case CycleShape::W:
      return "w";
    case CycleShape::F:
      return "f";
  }
  return "?";
}

/// Parse "v"/"w"/"f" (case-insensitive; "fmg" also spells F).  Returns
/// false on anything else, leaving `out` untouched.
bool parse_cycle_shape(std::string_view s, CycleShape& out) noexcept;

/// Times one preconditioner apply enters `level` (the count of Level
/// telemetry spans): 1 per level in a V-cycle; 2^l in a W-cycle except the
/// coarsest, which the W recursion enters once per parent visit; l+1 in an
/// F-cycle (one V sub-cycle rooted at every finer-or-equal level), with the
/// coarsest getting one extra visit for the bootstrap solve.  NOT a power
/// of two under F — see docs/CYCLE_SHAPES.md for the traffic table.
std::int64_t cycle_visits(CycleShape shape, int level, int nlevels) noexcept;

/// Who decides the per-level storage precision (DESIGN.md §9).
enum class PrecisionPolicy {
  Fixed,    ///< honor `storage`/`shift_levid` exactly (pre-autopilot behavior)
  Auto,     ///< setup-time autopilot: choose `shift_levid` from Theorem 4.1
            ///< headroom and predicted flush-to-zero/subnormal fractions
  Guarded,  ///< Auto, plus a runtime governor that rescales or promotes
            ///< levels on NaN/Inf, overflow, or Krylov stagnation and retries
};

constexpr std::string_view to_string(PrecisionPolicy p) noexcept {
  switch (p) {
    case PrecisionPolicy::Fixed:
      return "fixed";
    case PrecisionPolicy::Auto:
      return "auto";
    case PrecisionPolicy::Guarded:
      return "guarded";
  }
  return "?";
}

struct MGConfig {
  // --- hierarchy shape ---
  int max_levels = 10;
  std::int64_t min_coarse_cells = 64;  ///< stop coarsening below this
  int min_dim = 5;                     ///< do not halve dims shorter than this
  CycleType cycle = CycleType::V;
  /// Coupling-aware (semi)coarsening: only halve dimensions whose face
  /// coupling is at least `coarsen_threshold` x the strongest coarsenable
  /// dimension's (StructMG-style high-dimensional coarsening; this is what
  /// gives the paper's weather case its larger C_G/C_O in Table 3).
  bool aniso_coarsening = true;
  double coarsen_threshold = 0.1;

  // --- smoothing (paper §8: one pre- and one post-smoothing) ---
  SmootherType smoother = SmootherType::SymGS;
  int nu1 = 1;
  int nu2 = 1;
  double jacobi_weight = 0.67;
  /// SymGS sweep scheduling (bitwise identical either way; see
  /// grid/wavefront.hpp and DESIGN.md "Wavefront-parallel SymGS").
  SmootherParallel smoother_parallel = SmootherParallel::Auto;

  // --- transfers (DESIGN.md §7) ---
  /// Fused residual→restrict downstroke; bitwise identical to Off.
  FusedTransfers fused_transfers = FusedTransfers::Auto;

  // --- precision (P and D of the paper's K/P/D triple) ---
  Prec compute = Prec::FP32;
  Prec storage = Prec::FP16;
  /// DEPRECATED single-cut storage policy (§4.3): levels >= shift_levid are
  /// stored in `compute` precision.  Kept as an alias for the general
  /// `storage_ladder`; expand_ladder() shows the per-level rungs it denotes.
  /// New code should set `storage_ladder` instead.
  int shift_levid = INT_MAX;
  /// Progressive-precision storage ladder (DESIGN.md §12): entry l is the
  /// storage format of level l, and the last entry extends to every coarser
  /// level.  Empty (the default) defers to the deprecated
  /// `storage`/`shift_levid` pair — storage_at() is then bitwise identical
  /// to pre-ladder builds.  The SMG_STORAGE_LADDER env var ("fp16,fp8",
  /// "auto", ...) overrides this at hierarchy setup
  /// (effective_storage_ladder).
  std::vector<Prec> storage_ladder;
  /// Let the autopilot planner pick each level's rung (cheapest format that
  /// clears the Theorem 4.1 headroom and underflow thresholds) instead of
  /// honoring a hand-set ladder.  Requires precision_policy != Fixed to
  /// take effect; SMG_STORAGE_LADDER=auto sets it at runtime.
  bool ladder_auto = false;
  /// Finest level the auto planner may assign a sub-2-byte rung (FP8) to:
  /// fine-level operators dominate the error budget, so the cheapest rungs
  /// are only eligible from this depth down (monotone down the hierarchy).
  /// SMG_LADDER_MIN_LEVEL overrides.
  int ladder_min_level = 2;
  ScaleMode scale = ScaleMode::SetupThenScale;
  double scale_safety = 0.25;  ///< G = safety * G_max (Theorem 4.1 headroom)
  /// Fixed keeps `shift_levid` as configured; Auto derives it at setup from
  /// the measured value distributions; Guarded additionally self-heals at
  /// runtime (core/autopilot.hpp).  Fixed is bitwise identical to pre-
  /// autopilot builds.
  PrecisionPolicy precision_policy = PrecisionPolicy::Fixed;
  /// Alg. 1 line 13: smoother data is truncated to storage precision too
  /// (with an overflow/underflow guard; see truncate_smoother_data).
  bool truncate_smoother = true;

  // --- observability (src/obs/, DESIGN.md §8) ---
  /// Telemetry level of preconditioners built on this config.  Off keeps the
  /// hot loops bitwise- and performance-identical to an uninstrumented
  /// build; the SMG_TELEMETRY env var overrides this at runtime
  /// (obs::effective_level).
  obs::TelemetryLevel telemetry = obs::TelemetryLevel::Off;
  /// Service metrics (src/obs/metrics.hpp): On flips the process-global
  /// registry switch when a preconditioner is built on this config, so
  /// solves feed latency histograms and cache/halo/autopilot counters.
  /// Off solves are bitwise identical to pre-metrics builds; SMG_METRICS
  /// overrides at runtime (obs::effective_metrics).
  obs::MetricsLevel metrics = obs::MetricsLevel::Off;

  // --- kernel implementation ---
  // SOAL (line-blocked SOA) keeps the SOA SIMD structure while giving the
  // kernels a single sequential memory stream per line; it is the layout the
  // Fig. 7/8 "(opt)" numbers use.
  Layout layout = Layout::SOAL;

  // --- box decomposition (DESIGN.md §11) ---
  /// Sub-box grid of the sharded hierarchy: each MG level is split into
  /// decomp[0] x decomp[1] x decomp[2] boxes with halo exchange between
  /// them, run one-box-per-worker on the persistent pool.  {1,1,1} (the
  /// default) bypasses the decomposed engine entirely — every kernel runs
  /// the exact pre-existing single-box path, bitwise identical.  The
  /// SMG_DECOMP env var ("NxNxN") overrides this (effective_decomp).
  std::array<int, 3> decomp{1, 1, 1};
  /// Agglomeration threshold: a level whose smallest sub-box interior would
  /// drop below this many cells is run as a single box instead (coarse
  /// levels collapse onto one box, HPGMG-style).
  std::int64_t decomp_min_box = 512;
  /// FP16-packed halo wire format: halves the exchanged bytes but rounds
  /// each ghost value to half precision (<= 2^-11 relative), so decomposed
  /// cycles are no longer bitwise identical to raw-wire ones.  Off by
  /// default; SMG_HALO_FP16 overrides (effective_halo_fp16).
  bool halo_fp16 = false;

  /// Storage precision actually used on `level`: the ladder rung when a
  /// ladder is set (last rung extends to coarser levels), else the
  /// deprecated storage/shift_levid pair.
  Prec storage_at(int level) const noexcept {
    if (!storage_ladder.empty()) {
      const std::size_t n = storage_ladder.size();
      const std::size_t i =
          level <= 0 ? 0
                     : std::min(static_cast<std::size_t>(level), n - 1);
      return storage_ladder[i];
    }
    return level < shift_levid ? storage : compute;
  }

  /// The per-level rungs this config denotes, whichever way it was
  /// expressed: expands the deprecated shift_levid alias into an explicit
  /// ladder of `nlevels` entries (`{storage, ..., compute, ...}`), or
  /// clamps/extends an explicit ladder to `nlevels`.
  std::vector<Prec> expand_ladder(int nlevels) const {
    std::vector<Prec> out;
    out.reserve(static_cast<std::size_t>(nlevels > 0 ? nlevels : 0));
    for (int l = 0; l < nlevels; ++l) {
      out.push_back(storage_at(l));
    }
    return out;
  }

  /// Human-readable "P32D16-setup-scale"-style tag for experiment tables.
  std::string tag() const;
};

/// Box-decomposition knobs actually in effect: the SMG_DECOMP env var
/// ("2x2x2", "2,2,1" or "2 2 1") overrides cfg.decomp when parseable, and
/// SMG_HALO_FP16 ("1"/"on") overrides cfg.halo_fp16.
std::array<int, 3> effective_decomp(const MGConfig& cfg) noexcept;
bool effective_halo_fp16(const MGConfig& cfg) noexcept;

/// Storage ladder actually in effect: SMG_STORAGE_LADDER overrides
/// cfg.storage_ladder when parseable.  Accepts a comma/space-separated list
/// of format names as printed by to_string(Prec) ("fp16,fp16,fp8"), or
/// "auto" to clear the explicit ladder and set `auto_rungs` (the planner
/// picks each rung; cfg.ladder_auto).  Unparseable values fall back to the
/// config.
std::vector<Prec> effective_storage_ladder(const MGConfig& cfg,
                                           bool* auto_rungs = nullptr);

/// cfg.ladder_min_level unless SMG_LADDER_MIN_LEVEL overrides it.
int effective_ladder_min_level(const MGConfig& cfg) noexcept;

/// Cycle shape actually in effect: the SMG_CYCLE env var ("v", "w", "f",
/// or "fmg") overrides cfg.cycle when parseable.
CycleShape effective_cycle(const MGConfig& cfg) noexcept;

/// Canonical configurations used across benches (Fig. 6 legend names).
MGConfig config_full64();                ///< compute FP64, storage FP64
MGConfig config_k64p32d32();             ///< compute FP32, storage FP32
MGConfig config_d16_none();              ///< FP16 storage, no scaling
MGConfig config_d16_scale_setup();       ///< FP16, scale-then-setup
MGConfig config_d16_setup_scale();       ///< FP16, setup-then-scale (ours)

}  // namespace smg
