#include "core/mg_precond.hpp"

#include <cmath>
#include <type_traits>

#include "kernels/blas1.hpp"
#include "kernels/fused.hpp"
#include "kernels/spmv.hpp"
#include "kernels/symgs.hpp"
#include "obs/metrics.hpp"

namespace smg {

template <class CT>
MGPrecond<CT>::MGPrecond(const MGHierarchy* h)
    : h_(h), shape_(h->config().cycle) {
  const int nlev = h_->nlevels();
  lv_.resize(static_cast<std::size_t>(nlev));
  for (int l = 0; l < nlev; ++l) {
    const Level& hl = h_->level(l);
    LevelData& L = lv_[static_cast<std::size_t>(l)];
    const std::size_t n = static_cast<std::size_t>(hl.A_full.nrows());
    L.u.assign(n, CT{0});
    L.f.assign(n, CT{0});
    // The residual vector only exists on the unfused reference path and as
    // the Jacobi ping-pong buffer; the fused downstroke never touches it.
    const MGConfig& cfg = h_->config();
    if (cfg.fused_transfers == FusedTransfers::Off ||
        cfg.smoother == SmootherType::Jacobi) {
      L.r.assign(n, CT{0});
    }
    refresh_level(l);
  }
  if (h_->finest_wrapped()) {
    const auto& q2 = h_->finest_q2();
    wrap_q2_.resize(q2.size());
    copy_convert<CT, double>({q2.data(), q2.size()},
                             {wrap_q2_.data(), wrap_q2_.size()});
  }
  const std::array<int, 3> nb = effective_decomp(h_->config());
  if (nb != std::array<int, 3>{1, 1, 1}) {
    auto engine = std::make_unique<DecompEngine<CT>>(
        h_, nb, effective_halo_fp16(h_->config()));
    if (engine->active()) {
      engine_ = std::move(engine);
    }
  }
}

template <class CT>
void MGPrecond<CT>::set_cycle_shape(CycleShape s) noexcept {
  shape_ = s;
  if (engine_ != nullptr) {
    engine_->set_cycle_shape(s);
  }
}

template <class CT>
void MGPrecond<CT>::refresh_level(int l) {
  if (engine_ != nullptr) {
    engine_->refresh_level(l);
  }
  const Level& hl = h_->level(l);
  LevelData& L = lv_[static_cast<std::size_t>(l)];
  if (hl.scaled) {
    L.q2.resize(hl.q2.size());
    copy_convert<CT, double>({hl.q2.data(), hl.q2.size()},
                             {L.q2.data(), L.q2.size()});
  }
  L.invdiag.resize(hl.invdiag.size());
  copy_convert<CT, double>({hl.invdiag.data(), hl.invdiag.size()},
                           {L.invdiag.data(), L.invdiag.size()});
}

template <class CT>
void MGPrecond<CT>::smooth(int lev, bool forward) {
  const Level& hl = h_->level(lev);
  LevelData& L = lv_[static_cast<std::size_t>(lev)];
  const CT* q2 = L.q2.empty() ? nullptr : L.q2.data();
  const MGConfig& cfg = h_->config();

  std::span<const CT> f{L.f.data(), L.f.size()};
  std::span<CT> u{L.u.data(), L.u.size()};
  std::span<const CT> invdiag{L.invdiag.data(), L.invdiag.size()};

  if (cfg.smoother == SmootherType::SymGS) {
    const WavefrontSchedule* wf =
        hl.smoother_wf.valid() ? &hl.smoother_wf : nullptr;
    hl.A_stored.visit([&](const auto& m) {
      if (forward) {
        gs_forward(m, f, u, invdiag, q2, wf);
      } else {
        gs_backward(m, f, u, invdiag, q2, wf);
      }
    });
    return;
  }

  // Weighted (block-)Jacobi, residual-fused: unew = u + w * invdiag *
  // (f - A u) in one pass over the matrix, double-buffered through L.r
  // (Jacobi must read the *old* iterate everywhere, so in-place fusion is
  // not an option), then the buffers swap roles.  Bitwise identical to the
  // former residual-then-update two-pass form.
  if (L.r.size() != L.u.size()) {
    L.r.assign(L.u.size(), CT{0});
  }
  const CT w = static_cast<CT>(cfg.jacobi_weight);
  hl.A_stored.visit([&](const auto& m) {
    jacobi_sweep_fused(m, f, std::span<const CT>{L.u.data(), L.u.size()},
                       invdiag, q2, w, std::span<CT>{L.r.data(), L.r.size()});
  });
  std::swap(L.u, L.r);
}

template <class CT>
void MGPrecond<CT>::cycle(int lev, bool zero_guess) {
  const int last = h_->nlevels() - 1;
  LevelData& L = lv_[static_cast<std::size_t>(lev)];
  const Level& hl = h_->level(lev);
  const MGConfig& cfg = h_->config();

  // Attribute everything below (kernel spans included) to this MG level.
  const obs::LevelScope level_scope(lev);
  const obs::ScopedSpan level_span(obs::Kind::Level);

  if (lev == last) {
    // Coarsest level: exact FP64 direct solve of the true operator.
    const obs::KernelSpan span(obs::Kind::CoarseSolve);
    h_->coarse_solver().solve<CT>({L.f.data(), L.f.size()},
                                  {L.u.data(), L.u.size()});
    return;
  }

  if (zero_guess) {
    set_zero(std::span<CT>{L.u.data(), L.u.size()});
  }
  for (int s = 0; s < cfg.nu1; ++s) {
    smooth(lev, /*forward=*/true);
  }

  // Downstroke: C.f = R (f - A u).  Fused by default — the residual is
  // produced plane-by-plane inside residual_restrict and never written to
  // memory; the Off path is the two-step reference (bitwise identical).
  const CT* q2 = L.q2.empty() ? nullptr : L.q2.data();
  LevelData& C = lv_[static_cast<std::size_t>(lev) + 1];
  if (cfg.fused_transfers != FusedTransfers::Off) {
    hl.A_stored.visit([&](const auto& m) {
      residual_restrict(m, std::span<const CT>{L.f.data(), L.f.size()},
                        std::span<const CT>{L.u.data(), L.u.size()}, q2,
                        hl.to_coarse, std::span<CT>{C.f.data(), C.f.size()});
    });
  } else {
    hl.A_stored.visit([&](const auto& m) {
      residual(m, std::span<const CT>{L.f.data(), L.f.size()},
               std::span<const CT>{L.u.data(), L.u.size()},
               std::span<CT>{L.r.data(), L.r.size()}, q2);
    });
    restrict_to_coarse<CT>(hl.to_coarse, hl.A_full.block_size(),
                           {L.r.data(), L.r.size()},
                           {C.f.data(), C.f.size()});
  }

  cycle(lev + 1, /*zero_guess=*/true);
  if (shape_ == CycleShape::W && lev + 1 < last) {
    cycle(lev + 1, /*zero_guess=*/false);
  }

  prolong_add<CT>(hl.to_coarse, hl.A_full.block_size(),
                  {C.u.data(), C.u.size()}, {L.u.data(), L.u.size()});
  for (int s = 0; s < cfg.nu2; ++s) {
    smooth(lev, /*forward=*/false);
  }
}

template <class CT>
void MGPrecond<CT>::fcycle() {
  const int last = h_->nlevels() - 1;
  // Downward rhs injection: with a zero initial guess the level residual
  // equals its rhs, so C.f = R L.f is a pure restriction — no matrix pass.
  for (int l = 0; l < last; ++l) {
    const obs::LevelScope level_scope(l);
    const Level& hl = h_->level(l);
    LevelData& L = lv_[static_cast<std::size_t>(l)];
    LevelData& C = lv_[static_cast<std::size_t>(l) + 1];
    restrict_to_coarse<CT>(hl.to_coarse, hl.A_full.block_size(),
                           {L.f.data(), L.f.size()},
                           {C.f.data(), C.f.size()});
  }
  // Bootstrap: exact solve on the coarsest level (its extra F-cycle visit).
  cycle(last, /*zero_guess=*/true);
  // Upward: FMG-interpolate the coarser solution as this level's initial
  // guess (zero u, then the same trilinear prolong_add the V-cycle uses),
  // and run one V sub-cycle rooted here.
  for (int l = last - 1; l >= 0; --l) {
    const Level& hl = h_->level(l);
    LevelData& L = lv_[static_cast<std::size_t>(l)];
    LevelData& C = lv_[static_cast<std::size_t>(l) + 1];
    {
      const obs::LevelScope level_scope(l);
      set_zero(std::span<CT>{L.u.data(), L.u.size()});
      prolong_add<CT>(hl.to_coarse, hl.A_full.block_size(),
                      {C.u.data(), C.u.size()}, {L.u.data(), L.u.size()});
    }
    cycle(l, /*zero_guess=*/false);
  }
}

template <class CT>
void MGPrecond<CT>::ensure_panels(int k) {
  const int nlev = h_->nlevels();
  if (pv_.size() != static_cast<std::size_t>(nlev)) {
    pv_.assign(static_cast<std::size_t>(nlev), PanelData{});
  }
  const MGConfig& cfg = h_->config();
  for (int l = 0; l < nlev; ++l) {
    const std::int64_t n = h_->level(l).A_full.nrows();
    PanelData& P = pv_[static_cast<std::size_t>(l)];
    if (P.u.rows() != n || P.u.cols() != k) {
      P.u.resize(n, k);
      P.f.resize(n, k);
      if (cfg.fused_transfers == FusedTransfers::Off ||
          cfg.smoother == SmootherType::Jacobi) {
        P.r.resize(n, k);
      }
    }
  }
}

template <class CT>
void MGPrecond<CT>::smooth_many(int lev, bool forward) {
  const Level& hl = h_->level(lev);
  LevelData& L = lv_[static_cast<std::size_t>(lev)];
  PanelData& P = pv_[static_cast<std::size_t>(lev)];
  const CT* q2 = L.q2.empty() ? nullptr : L.q2.data();
  const MGConfig& cfg = h_->config();
  std::span<const CT> invdiag{L.invdiag.data(), L.invdiag.size()};

  if (cfg.smoother == SmootherType::SymGS) {
    const WavefrontSchedule* wf =
        hl.smoother_wf.valid() ? &hl.smoother_wf : nullptr;
    hl.A_stored.visit([&](const auto& m) {
      if (forward) {
        gs_forward_many(m, P.f, P.u, invdiag, q2, wf);
      } else {
        gs_backward_many(m, P.f, P.u, invdiag, q2, wf);
      }
    });
    return;
  }

  // Panel Jacobi: the same double-buffered residual-fused sweep as the
  // single-vector path, all columns per matrix pass.
  if (P.r.rows() != P.u.rows() || P.r.cols() != P.u.cols()) {
    P.r.resize(P.u.rows(), P.u.cols());
  }
  const CT w = static_cast<CT>(cfg.jacobi_weight);
  hl.A_stored.visit([&](const auto& m) {
    jacobi_sweep_fused_many(m, P.f, P.u, invdiag, q2, w, P.r);
  });
  std::swap(P.u, P.r);
}

template <class CT>
void MGPrecond<CT>::cycle_many(int lev, bool zero_guess) {
  const int last = h_->nlevels() - 1;
  PanelData& P = pv_[static_cast<std::size_t>(lev)];
  LevelData& L = lv_[static_cast<std::size_t>(lev)];
  const Level& hl = h_->level(lev);
  const MGConfig& cfg = h_->config();

  const obs::LevelScope level_scope(lev);
  const obs::ScopedSpan level_span(obs::Kind::Level);

  if (lev == last) {
    // Coarsest level: the dense FP64 solve is inherently per-column; peel
    // the panel.  Padding columns are never touched and stay zero.
    const obs::KernelSpan span(obs::Kind::CoarseSolve);
    const std::size_t n = static_cast<std::size_t>(P.f.rows());
    colbuf_f_.resize(n);
    colbuf_u_.resize(n);
    for (int c = 0; c < P.f.cols(); ++c) {
      P.f.extract_col(c, {colbuf_f_.data(), n});
      h_->coarse_solver().solve<CT>({colbuf_f_.data(), n},
                                    {colbuf_u_.data(), n});
      P.u.insert_col(c, {colbuf_u_.data(), n});
    }
    return;
  }

  if (zero_guess) {
    P.u.fill(CT{0});
  }
  for (int s = 0; s < cfg.nu1; ++s) {
    smooth_many(lev, /*forward=*/true);
  }

  const CT* q2 = L.q2.empty() ? nullptr : L.q2.data();
  PanelData& C = pv_[static_cast<std::size_t>(lev) + 1];
  if (cfg.fused_transfers != FusedTransfers::Off) {
    hl.A_stored.visit([&](const auto& m) {
      residual_restrict_many(m, P.f, P.u, q2, hl.to_coarse, C.f);
    });
  } else {
    hl.A_stored.visit([&](const auto& m) {
      residual_many(m, P.f, P.u, P.r, q2);
    });
    restrict_to_coarse_many<CT>(hl.to_coarse, hl.A_full.block_size(), P.r,
                                C.f);
  }

  cycle_many(lev + 1, /*zero_guess=*/true);
  if (shape_ == CycleShape::W && lev + 1 < last) {
    cycle_many(lev + 1, /*zero_guess=*/false);
  }

  prolong_add_many<CT>(hl.to_coarse, hl.A_full.block_size(), C.u, P.u);
  for (int s = 0; s < cfg.nu2; ++s) {
    smooth_many(lev, /*forward=*/false);
  }
}

template <class CT>
void MGPrecond<CT>::fcycle_many() {
  // Panel F-cycle: fcycle() with the k-column transfer kernels, column c
  // bitwise identical to a single-vector fcycle of that column.
  const int last = h_->nlevels() - 1;
  for (int l = 0; l < last; ++l) {
    const obs::LevelScope level_scope(l);
    const Level& hl = h_->level(l);
    PanelData& P = pv_[static_cast<std::size_t>(l)];
    PanelData& C = pv_[static_cast<std::size_t>(l) + 1];
    restrict_to_coarse_many<CT>(hl.to_coarse, hl.A_full.block_size(), P.f,
                                C.f);
  }
  cycle_many(last, /*zero_guess=*/true);
  for (int l = last - 1; l >= 0; --l) {
    const Level& hl = h_->level(l);
    PanelData& P = pv_[static_cast<std::size_t>(l)];
    PanelData& C = pv_[static_cast<std::size_t>(l) + 1];
    {
      const obs::LevelScope level_scope(l);
      P.u.fill(CT{0});
      prolong_add_many<CT>(hl.to_coarse, hl.A_full.block_size(), C.u, P.u);
    }
    cycle_many(l, /*zero_guess=*/false);
  }
}

template <class CT>
void MGPrecond<CT>::apply_many(const MultiVector<CT>& r, MultiVector<CT>& e) {
  if (engine_ != nullptr) {
    // The decomposed engine is single-vector: peel the panel column-wise
    // (box parallelism replaces panel amortization when sharding is on).
    SMG_CHECK(r.rows() == e.rows() && r.cols() == e.cols(),
              "MG apply_many size mismatch");
    const std::size_t n = static_cast<std::size_t>(r.rows());
    colbuf_f_.resize(n);
    colbuf_u_.resize(n);
    for (int c = 0; c < r.cols(); ++c) {
      r.extract_col(c, {colbuf_f_.data(), n});
      engine_->apply({colbuf_f_.data(), n}, {colbuf_u_.data(), n});
      e.insert_col(c, {colbuf_u_.data(), n});
    }
    return;
  }
  ensure_panels(r.cols());
  PanelData& P0 = pv_.front();
  SMG_CHECK(r.rows() == P0.f.rows() && e.rows() == P0.u.rows() &&
                r.cols() == e.cols() &&
                r.padded_cols() == P0.f.padded_cols(),
            "MG apply_many size mismatch");
  const int kp = r.padded_cols();
  const std::int64_t rows = r.rows();
  if (h_->finest_wrapped()) {
    // Same per-element division as the single-vector ewise_div, every
    // column of the row sharing one q2 read.  Padding: 0 / q2 == +0.
    const CT* SMG_RESTRICT q2w = wrap_q2_.data();
    const CT* SMG_RESTRICT src = r.data();
    CT* SMG_RESTRICT dst = P0.f.data();
    for (std::int64_t row = 0; row < rows; ++row) {
      const CT q = q2w[row];
      for (int c = 0; c < kp; ++c) {
        dst[row * kp + c] = src[row * kp + c] / q;
      }
    }
  } else {
    copy_convert<CT, CT>({r.data(), r.size()}, {P0.f.data(), P0.f.size()});
  }
  if (shape_ == CycleShape::F) {
    fcycle_many();
  } else {
    cycle_many(0, /*zero_guess=*/true);
  }
  if (h_->finest_wrapped()) {
    const CT* SMG_RESTRICT q2w = wrap_q2_.data();
    const CT* SMG_RESTRICT src = P0.u.data();
    CT* SMG_RESTRICT dst = e.data();
    for (std::int64_t row = 0; row < rows; ++row) {
      const CT q = q2w[row];
      for (int c = 0; c < kp; ++c) {
        dst[row * kp + c] = src[row * kp + c] / q;
      }
    }
  } else {
    copy_convert<CT, CT>({P0.u.data(), P0.u.size()}, {e.data(), e.size()});
  }
}

template <class CT>
void MGPrecond<CT>::apply(std::span<const CT> r, std::span<CT> e) {
  if (engine_ != nullptr) {
    engine_->apply(r, e);
    return;
  }
  LevelData& L0 = lv_.front();
  SMG_CHECK(r.size() == L0.f.size() && e.size() == L0.u.size(),
            "MG apply size mismatch");
  const std::span<const CT> q2w{wrap_q2_.data(), wrap_q2_.size()};
  if (h_->finest_wrapped()) {
    // ScaleThenSetup preconditions the *scaled* system:
    // A^{-1} = Q^{-1/2} Â^{-1} Q^{-1/2}, so divide by q2 on entry and exit.
    ewise_div<CT>(r, q2w, {L0.f.data(), L0.f.size()});
  } else {
    copy_convert<CT, CT>(r, {L0.f.data(), L0.f.size()});
  }
  if (shape_ == CycleShape::F) {
    fcycle();
  } else {
    cycle(0, /*zero_guess=*/true);
  }
  if (h_->finest_wrapped()) {
    ewise_div<CT>({L0.u.data(), L0.u.size()}, q2w, e);
  } else {
    copy_convert<CT, CT>({L0.u.data(), L0.u.size()}, e);
  }
}

template <class KT, class CT>
MGPrecondAdapter<KT, CT>::MGPrecondAdapter(MGHierarchy* h)
    : h_(h),
      mg_(h),
      telemetry_(obs::effective_level(h->config().telemetry), h->nlevels()),
      governor_(h),
      guarded_(h->policy() == PrecisionPolicy::Guarded) {
  // Service metrics are a sticky process-wide switch; any adapter whose
  // effective config asks for them turns recording on for good.
  if (obs::effective_metrics(h->config().metrics) == obs::MetricsLevel::On) {
    obs::enable_metrics(true);
  }
  const std::size_t n =
      static_cast<std::size_t>(h->level(0).A_full.nrows());
  rbuf_.assign(n, CT{0});
  ebuf_.assign(n, CT{0});
  // KT<->CT vector conversions per apply: residual truncation on entry,
  // error recovery on exit (Alg. 2 lines 4 and 6); zero when the Krylov
  // and compute types coincide and the copies are plain.
  telemetry_.set_vec_conversions_per_apply(
      std::is_same_v<KT, CT> ? 0 : 2 * static_cast<std::uint64_t>(n));
}

namespace {

template <class CT>
bool all_finite(std::span<const CT> v) noexcept {
  for (const CT x : v) {
    if (!std::isfinite(static_cast<double>(x))) {
      return false;
    }
  }
  return true;
}

}  // namespace

template <class KT, class CT>
void MGPrecondAdapter<KT, CT>::apply(std::span<const KT> r,
                                     std::span<KT> e) {
  // Install our ledger for the duration of the cycle; a no-op re-install
  // when a solver already holds it for the whole solve.
  const obs::InstallGuard guard(&telemetry_);
  const double t0 = telemetry_.now();
  copy_convert<CT, KT>(r, {rbuf_.data(), rbuf_.size()});
  mg_.apply({rbuf_.data(), rbuf_.size()}, {ebuf_.data(), ebuf_.size()});
  if (guarded_ &&
      all_finite(std::span<const CT>{rbuf_.data(), rbuf_.size()})) {
    // Health probe: a NaN/Inf in the error correction with a finite input
    // residual pins the poison inside the cycle (a stored matrix or
    // smoother datum).  Repair and re-apply until healthy or the governor
    // runs out of ladder.
    while (!all_finite(std::span<const CT>{ebuf_.data(), ebuf_.size()})) {
      if (!heal(HealthEvent::NonFinite)) {
        break;  // let the solver see the breakdown
      }
      mg_.apply({rbuf_.data(), rbuf_.size()}, {ebuf_.data(), ebuf_.size()});
    }
  }
  copy_convert<KT, CT>({ebuf_.data(), ebuf_.size()}, e);
  const double t1 = telemetry_.now();
  telemetry_.record_apply(t0, t1);
  obs::record_precond_apply(t1 - t0);
}

template <class KT, class CT>
void MGPrecondAdapter<KT, CT>::apply_many(const MultiVector<KT>& r,
                                          MultiVector<KT>& e) {
  SMG_CHECK(r.rows() == e.rows() && r.cols() == e.cols(),
            "adapter apply_many shape mismatch");
  const obs::InstallGuard guard(&telemetry_);
  const double t0 = telemetry_.now();
  if (rpanel_.rows() != r.rows() || rpanel_.cols() != r.cols()) {
    rpanel_.resize(r.rows(), r.cols());
    epanel_.resize(r.rows(), r.cols());
  }
  // Whole-buffer truncate: padding zeros convert to padding zeros, and each
  // real element gets exactly the single-apply's KT->CT conversion.
  copy_convert<CT, KT>({r.data(), r.size()},
                       {rpanel_.data(), rpanel_.size()});
  mg_.apply_many(rpanel_, epanel_);
  if (guarded_ && all_finite(std::span<const CT>{rpanel_.data(),
                                                 rpanel_.size()})) {
    // Panel-wide probe-and-heal: one poisoned column is enough evidence of
    // a poisoned stored matrix, and the repair (rescale/promote) is global
    // to the level anyway — so the whole panel re-applies after a repair,
    // exactly like the single-vector path re-applies its one vector.
    while (!all_finite(std::span<const CT>{epanel_.data(),
                                           epanel_.size()})) {
      if (!heal(HealthEvent::NonFinite)) {
        break;  // let the solver see the breakdown
      }
      mg_.apply_many(rpanel_, epanel_);
    }
  }
  copy_convert<KT, CT>({epanel_.data(), epanel_.size()},
                       {e.data(), e.size()});
  const double t1 = telemetry_.now();
  telemetry_.record_apply(t0, t1);
  telemetry_.record_panel_apply(r.cols());
  obs::record_precond_apply(t1 - t0);
  obs::record_precond_panel(r.cols());
}

template <class KT, class CT>
bool MGPrecondAdapter<KT, CT>::report_health(HealthEvent e) {
  if (!guarded_) {
    return false;
  }
  return heal(e);
}

template <class KT, class CT>
bool MGPrecondAdapter<KT, CT>::heal(HealthEvent e) {
  const std::vector<int> repaired = governor_.on_event(e);
  for (const int l : repaired) {
    mg_.refresh_level(l);
  }
  if (!repaired.empty()) {
    // Each successful repair triggers exactly one retry: the probe
    // re-applies the cycle, or the solver restarts its recurrence.
    obs::record_autopilot_repair("retry");
  }
  return !repaired.empty();
}

template <class KT>
std::unique_ptr<PrecondBase<KT>> make_mg_precond(MGHierarchy& h) {
  if (h.config().compute == Prec::FP64) {
    return std::make_unique<MGPrecondAdapter<KT, double>>(&h);
  }
  SMG_CHECK(h.config().compute == Prec::FP32,
            "preconditioner compute precision must be FP32 or FP64");
  return std::make_unique<MGPrecondAdapter<KT, float>>(&h);
}

template class MGPrecond<float>;
template class MGPrecond<double>;
template class MGPrecondAdapter<double, float>;
template class MGPrecondAdapter<double, double>;
template class MGPrecondAdapter<float, float>;
template class MGPrecondAdapter<float, double>;
template std::unique_ptr<PrecondBase<double>> make_mg_precond<double>(
    MGHierarchy&);
template std::unique_ptr<PrecondBase<float>> make_mg_precond<float>(
    MGHierarchy&);

}  // namespace smg
