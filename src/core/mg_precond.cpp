#include "core/mg_precond.hpp"

#include "kernels/blas1.hpp"
#include "kernels/spmv.hpp"
#include "kernels/symgs.hpp"

namespace smg {

template <class CT>
MGPrecond<CT>::MGPrecond(const MGHierarchy* h) : h_(h) {
  const int nlev = h_->nlevels();
  lv_.resize(static_cast<std::size_t>(nlev));
  for (int l = 0; l < nlev; ++l) {
    const Level& hl = h_->level(l);
    LevelData& L = lv_[static_cast<std::size_t>(l)];
    const std::size_t n = static_cast<std::size_t>(hl.A_full.nrows());
    L.u.assign(n, CT{0});
    L.f.assign(n, CT{0});
    L.r.assign(n, CT{0});
    if (hl.scaled) {
      L.q2.resize(hl.q2.size());
      copy_convert<CT, double>({hl.q2.data(), hl.q2.size()},
                               {L.q2.data(), L.q2.size()});
    }
    L.invdiag.resize(hl.invdiag.size());
    copy_convert<CT, double>({hl.invdiag.data(), hl.invdiag.size()},
                             {L.invdiag.data(), L.invdiag.size()});
  }
  if (h_->finest_wrapped()) {
    const auto& q2 = h_->finest_q2();
    wrap_q2_.resize(q2.size());
    copy_convert<CT, double>({q2.data(), q2.size()},
                             {wrap_q2_.data(), wrap_q2_.size()});
  }
}

template <class CT>
void MGPrecond<CT>::smooth(int lev, bool forward) {
  const Level& hl = h_->level(lev);
  LevelData& L = lv_[static_cast<std::size_t>(lev)];
  const CT* q2 = L.q2.empty() ? nullptr : L.q2.data();
  const MGConfig& cfg = h_->config();

  std::span<const CT> f{L.f.data(), L.f.size()};
  std::span<CT> u{L.u.data(), L.u.size()};
  std::span<const CT> invdiag{L.invdiag.data(), L.invdiag.size()};

  if (cfg.smoother == SmootherType::SymGS) {
    const WavefrontSchedule* wf =
        hl.smoother_wf.valid() ? &hl.smoother_wf : nullptr;
    hl.A_stored.visit([&](const auto& m) {
      if (forward) {
        gs_forward(m, f, u, invdiag, q2, wf);
      } else {
        gs_backward(m, f, u, invdiag, q2, wf);
      }
    });
    return;
  }

  // Weighted (block-)Jacobi: u += w * invdiag * (f - A u).
  std::span<CT> r{L.r.data(), L.r.size()};
  std::span<const CT> ucv{L.u.data(), L.u.size()};
  hl.A_stored.visit([&](const auto& m) { residual(m, f, ucv, r, q2); });
  const int bs = hl.A_full.block_size();
  const CT w = static_cast<CT>(cfg.jacobi_weight);
  const std::int64_t ncells = hl.A_full.ncells();
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
#pragma omp parallel for schedule(static)
  for (std::int64_t cell = 0; cell < ncells; ++cell) {
    const CT* blk = L.invdiag.data() + cell * block2;
    for (int br = 0; br < bs; ++br) {
      CT acc{0};
      for (int bc = 0; bc < bs; ++bc) {
        acc += blk[br * bs + bc] * r[static_cast<std::size_t>(cell * bs + bc)];
      }
      u[static_cast<std::size_t>(cell * bs + br)] += w * acc;
    }
  }
}

template <class CT>
void MGPrecond<CT>::cycle(int lev, bool zero_guess) {
  const int last = h_->nlevels() - 1;
  LevelData& L = lv_[static_cast<std::size_t>(lev)];
  const Level& hl = h_->level(lev);
  const MGConfig& cfg = h_->config();

  if (lev == last) {
    // Coarsest level: exact FP64 direct solve of the true operator.
    h_->coarse_solver().solve<CT>({L.f.data(), L.f.size()},
                                  {L.u.data(), L.u.size()});
    return;
  }

  if (zero_guess) {
    set_zero(std::span<CT>{L.u.data(), L.u.size()});
  }
  for (int s = 0; s < cfg.nu1; ++s) {
    smooth(lev, /*forward=*/true);
  }

  // r = f - A u, then restrict to the next level's rhs.
  const CT* q2 = L.q2.empty() ? nullptr : L.q2.data();
  hl.A_stored.visit([&](const auto& m) {
    residual(m, std::span<const CT>{L.f.data(), L.f.size()},
             std::span<const CT>{L.u.data(), L.u.size()},
             std::span<CT>{L.r.data(), L.r.size()}, q2);
  });
  LevelData& C = lv_[static_cast<std::size_t>(lev) + 1];
  restrict_to_coarse<CT>(hl.to_coarse, hl.A_full.block_size(),
                         {L.r.data(), L.r.size()}, {C.f.data(), C.f.size()});

  cycle(lev + 1, /*zero_guess=*/true);
  if (cfg.cycle == CycleType::W && lev + 1 < last) {
    cycle(lev + 1, /*zero_guess=*/false);
  }

  prolong_add<CT>(hl.to_coarse, hl.A_full.block_size(),
                  {C.u.data(), C.u.size()}, {L.u.data(), L.u.size()});
  for (int s = 0; s < cfg.nu2; ++s) {
    smooth(lev, /*forward=*/false);
  }
}

template <class CT>
void MGPrecond<CT>::apply(std::span<const CT> r, std::span<CT> e) {
  LevelData& L0 = lv_.front();
  SMG_CHECK(r.size() == L0.f.size() && e.size() == L0.u.size(),
            "MG apply size mismatch");
  if (h_->finest_wrapped()) {
    // ScaleThenSetup preconditions the *scaled* system:
    // A^{-1} = Q^{-1/2} Â^{-1} Q^{-1/2}, so divide by q2 on entry and exit.
    for (std::size_t i = 0; i < r.size(); ++i) {
      L0.f[i] = r[i] / wrap_q2_[i];
    }
  } else {
    for (std::size_t i = 0; i < r.size(); ++i) {
      L0.f[i] = r[i];
    }
  }
  cycle(0, /*zero_guess=*/true);
  if (h_->finest_wrapped()) {
    for (std::size_t i = 0; i < e.size(); ++i) {
      e[i] = L0.u[i] / wrap_q2_[i];
    }
  } else {
    for (std::size_t i = 0; i < e.size(); ++i) {
      e[i] = L0.u[i];
    }
  }
}

template <class KT, class CT>
MGPrecondAdapter<KT, CT>::MGPrecondAdapter(const MGHierarchy* h) : mg_(h) {
  const std::size_t n =
      static_cast<std::size_t>(h->level(0).A_full.nrows());
  rbuf_.assign(n, CT{0});
  ebuf_.assign(n, CT{0});
}

template <class KT, class CT>
void MGPrecondAdapter<KT, CT>::apply(std::span<const KT> r,
                                     std::span<KT> e) {
  Timer t;
  copy_convert<CT, KT>(r, {rbuf_.data(), rbuf_.size()});
  mg_.apply({rbuf_.data(), rbuf_.size()}, {ebuf_.data(), ebuf_.size()});
  copy_convert<KT, CT>({ebuf_.data(), ebuf_.size()}, e);
  seconds_ += t.seconds();
}

template <class KT>
std::unique_ptr<PrecondBase<KT>> make_mg_precond(const MGHierarchy& h) {
  if (h.config().compute == Prec::FP64) {
    return std::make_unique<MGPrecondAdapter<KT, double>>(&h);
  }
  SMG_CHECK(h.config().compute == Prec::FP32,
            "preconditioner compute precision must be FP32 or FP64");
  return std::make_unique<MGPrecondAdapter<KT, float>>(&h);
}

template class MGPrecond<float>;
template class MGPrecond<double>;
template class MGPrecondAdapter<double, float>;
template class MGPrecondAdapter<double, double>;
template class MGPrecondAdapter<float, float>;
template class MGPrecondAdapter<float, double>;
template std::unique_ptr<PrecondBase<double>> make_mg_precond<double>(
    const MGHierarchy&);
template std::unique_ptr<PrecondBase<float>> make_mg_precond<float>(
    const MGHierarchy&);

}  // namespace smg
