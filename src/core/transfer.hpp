// Geometric transfer operators between consecutive levels.
//
// Vertex-aligned full coarsening: coarse index I maps to fine index 2I along
// every coarsened dimension (a dimension shorter than MGConfig::min_dim is
// left uncoarsened — StructMG-style semicoarsening falls out of this for
// pencil-shaped grids).  Prolongation P is (tri)linear interpolation and the
// restriction is *normalized full weighting* R = (1/2^d) P^T where d is the
// number of coarsened dimensions.  Any R = c P^T yields the same Galerkin
// correction in exact arithmetic; the 1/2-per-dimension normalization keeps
// coarse-operator magnitudes on the same scale as the fine operator, which
// matters once levels are truncated to FP16: an unnormalized P^T grows
// entries ~4x per level and silently re-creates the overflow that scaling
// just removed.  Per-dimension interpolation weights: an even fine point
// copies its coarse owner (weight 1), an odd fine point averages its two
// coarse neighbors (weight 1/2 each, boundary-truncated).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "grid/box.hpp"
#include "obs/telemetry.hpp"
#include "util/common.hpp"
#include "util/multivector.hpp"

namespace smg {

/// Geometry of one coarsening step.
struct Coarsening {
  Box fine{};
  Box coarse{};
  std::array<bool, 3> mask{};  ///< which dims were halved

  static Coarsening make(const Box& fine, int min_dim) {
    Coarsening c;
    c.fine = fine;
    c.mask = {fine.nx >= min_dim, fine.ny >= min_dim, fine.nz >= min_dim};
    c.coarse = Box{c.mask[0] ? (fine.nx + 1) / 2 : fine.nx,
                   c.mask[1] ? (fine.ny + 1) / 2 : fine.ny,
                   c.mask[2] ? (fine.nz + 1) / 2 : fine.nz};
    return c;
  }

  /// Coupling-aware variant (StructMG-style "high-dimensional coarsening"):
  /// a dimension is only halved if it is long enough AND its directional
  /// coupling strength is at least `threshold` times the strongest
  /// coarsenable dimension's.  Point smoothers leave error smooth along
  /// strongly coupled directions only, so semicoarsening the strong
  /// direction(s) is what keeps anisotropic problems (the paper's weather
  /// case) converging grid-independently.
  static Coarsening make(const Box& fine, int min_dim,
                         const std::array<double, 3>& strength,
                         double threshold) {
    Coarsening c;
    c.fine = fine;
    const std::array<bool, 3> can = {fine.nx >= min_dim, fine.ny >= min_dim,
                                     fine.nz >= min_dim};
    double smax = 0.0;
    for (int d = 0; d < 3; ++d) {
      if (can[static_cast<std::size_t>(d)]) {
        smax = std::max(smax, strength[static_cast<std::size_t>(d)]);
      }
    }
    for (int d = 0; d < 3; ++d) {
      c.mask[static_cast<std::size_t>(d)] =
          can[static_cast<std::size_t>(d)] &&
          strength[static_cast<std::size_t>(d)] >= threshold * smax;
    }
    c.coarse = Box{c.mask[0] ? (fine.nx + 1) / 2 : fine.nx,
                   c.mask[1] ? (fine.ny + 1) / 2 : fine.ny,
                   c.mask[2] ? (fine.nz + 1) / 2 : fine.nz};
    return c;
  }

  bool any() const noexcept { return mask[0] || mask[1] || mask[2]; }

  /// Full-weighting normalization: R = restrict_scale() * P^T.
  double restrict_scale() const noexcept {
    double s = 1.0;
    for (bool m : mask) {
      if (m) {
        s *= 0.5;
      }
    }
    return s;
  }
};

namespace detail {

/// Coarse parents of fine coordinate x in one dimension: up to two
/// (index, weight) pairs.  Uncoarsened dims map identically.
struct Parents {
  int idx[2];
  double w[2];
  int count;
};

inline Parents parents_of(int x, int nc, bool coarsened) noexcept {
  Parents p{};
  if (!coarsened) {
    p.idx[0] = x;
    p.w[0] = 1.0;
    p.count = 1;
    return p;
  }
  if ((x & 1) == 0) {
    p.idx[0] = x / 2;
    p.w[0] = 1.0;
    p.count = 1;
    return p;
  }
  p.count = 0;
  const int lo = (x - 1) / 2;
  const int hi = (x + 1) / 2;
  if (lo >= 0 && lo < nc) {
    p.idx[p.count] = lo;
    p.w[p.count] = 0.5;
    ++p.count;
  }
  if (hi >= 0 && hi < nc) {
    p.idx[p.count] = hi;
    p.w[p.count] = 0.5;
    ++p.count;
  }
  return p;
}

/// Fine children of coarse coordinate X in one dimension: the transpose
/// enumeration of parents_of — up to three (index, weight) pairs, ascending.
/// Gather-form restriction iterates these, which makes every coarse dof the
/// property of exactly one loop iteration (race-free under OpenMP), unlike
/// the scatter form where concurrent fine points add into shared parents.
struct Children {
  int idx[3];
  double w[3];
  int count;
};

inline Children children_of(int X, int nf, bool coarsened) noexcept {
  Children c{};
  if (!coarsened) {
    c.idx[0] = X;
    c.w[0] = 1.0;
    c.count = 1;
    return c;
  }
  c.count = 0;
  for (int t = -1; t <= 1; ++t) {
    const int xf = 2 * X + t;
    if (xf >= 0 && xf < nf) {
      c.idx[c.count] = xf;
      c.w[c.count] = t == 0 ? 1.0 : 0.5;
      ++c.count;
    }
  }
  return c;
}

}  // namespace detail

/// f_c = R r_f with R = P^T, in gather form: coarse dof (I,J,K) sums
/// w * r(2I + t, ...) over its fine children.  Each coarse dof is written by
/// exactly one iteration, so the loop parallelizes race-free — the scatter
/// form (fine points adding into shared parents) cannot, because up to eight
/// fine points contend on one coarse accumulator.  Vectors are dof-indexed
/// (block size bs).  The child-gather order here is the contract the fused
/// residual_restrict (kernels/fused.hpp) reproduces bitwise.
template <class CT>
void restrict_to_coarse(const Coarsening& c, int bs, std::span<const CT> rf,
                        std::span<CT> fc) {
  const Box& fine = c.fine;
  const Box& coarse = c.coarse;
  SMG_CHECK(static_cast<std::int64_t>(rf.size()) == fine.size() * bs &&
                static_cast<std::int64_t>(fc.size()) == coarse.size() * bs,
            "restrict size mismatch");
  const obs::KernelSpan span(obs::Kind::Restrict);
  const double rscale = c.restrict_scale();
#pragma omp parallel for collapse(2) schedule(static)
  for (int K = 0; K < coarse.nz; ++K) {
    for (int J = 0; J < coarse.ny; ++J) {
      const auto ck = detail::children_of(K, fine.nz, c.mask[2]);
      const auto cj = detail::children_of(J, fine.ny, c.mask[1]);
      for (int I = 0; I < coarse.nx; ++I) {
        const auto ci = detail::children_of(I, fine.nx, c.mask[0]);
        CT* SMG_RESTRICT dst = fc.data() + coarse.idx(I, J, K) * bs;
        for (int br = 0; br < bs; ++br) {
          CT acc{0};
          for (int a = 0; a < ck.count; ++a) {
            for (int b = 0; b < cj.count; ++b) {
              for (int cidx = 0; cidx < ci.count; ++cidx) {
                const double w = rscale * ck.w[a] * cj.w[b] * ci.w[cidx];
                const std::int64_t fcell =
                    fine.idx(ci.idx[cidx], cj.idx[b], ck.idx[a]);
                acc += static_cast<CT>(w) * rf[fcell * bs + br];
              }
            }
          }
          dst[br] = acc;
        }
      }
    }
  }
}

/// Reference scatter formulation of the same operator (iterate fine points,
/// add into their parents).  Serial by necessity — kept as the ground truth
/// the gather form is tested against; not used on the solve path.
template <class CT>
void restrict_to_coarse_scatter(const Coarsening& c, int bs,
                                std::span<const CT> rf, std::span<CT> fc) {
  const Box& fine = c.fine;
  const Box& coarse = c.coarse;
  SMG_CHECK(static_cast<std::int64_t>(rf.size()) == fine.size() * bs &&
                static_cast<std::int64_t>(fc.size()) == coarse.size() * bs,
            "restrict size mismatch");
  for (auto& v : fc) {
    v = CT{0};
  }
  const double rscale = c.restrict_scale();
  for (int k = 0; k < fine.nz; ++k) {
    const auto pk = detail::parents_of(k, coarse.nz, c.mask[2]);
    for (int j = 0; j < fine.ny; ++j) {
      const auto pj = detail::parents_of(j, coarse.ny, c.mask[1]);
      for (int i = 0; i < fine.nx; ++i) {
        const auto pi = detail::parents_of(i, coarse.nx, c.mask[0]);
        const std::int64_t fcell = fine.idx(i, j, k);
        for (int a = 0; a < pk.count; ++a) {
          for (int b = 0; b < pj.count; ++b) {
            for (int cidx = 0; cidx < pi.count; ++cidx) {
              const double w = rscale * pk.w[a] * pj.w[b] * pi.w[cidx];
              const std::int64_t ccell =
                  coarse.idx(pi.idx[cidx], pj.idx[b], pk.idx[a]);
              for (int br = 0; br < bs; ++br) {
                fc[ccell * bs + br] +=
                    static_cast<CT>(w) * rf[fcell * bs + br];
              }
            }
          }
        }
      }
    }
  }
}

/// Panel restriction: F_c = R R_f for all columns of the panel in one pass
/// over the transfer geometry.  Column c is bitwise identical to
/// restrict_to_coarse on that column: the per-coarse-dof child list is
/// enumerated in the same (a, b, cidx) order with the same
/// static_cast<CT>(w) weights, and each column folds its own accumulator.
template <class CT>
void restrict_to_coarse_many(const Coarsening& c, int bs,
                             const MultiVector<CT>& rf, MultiVector<CT>& fc) {
  const Box& fine = c.fine;
  const Box& coarse = c.coarse;
  SMG_CHECK(rf.rows() == fine.size() * bs && fc.rows() == coarse.size() * bs &&
                rf.padded_cols() == fc.padded_cols(),
            "restrict_many size mismatch");
  const obs::KernelSpan span(obs::Kind::Restrict);
  const double rscale = c.restrict_scale();
  const int kp = rf.padded_cols();
  const CT* SMG_RESTRICT rp = rf.data();
  CT* SMG_RESTRICT fp = fc.data();
  // Hoist the pure per-coordinate child lookups out of the point loop (the
  // same values the per-point calls would return).
  std::vector<detail::Children> cxi(static_cast<std::size_t>(coarse.nx));
  for (int I = 0; I < coarse.nx; ++I) {
    cxi[static_cast<std::size_t>(I)] = detail::children_of(I, fine.nx, c.mask[0]);
  }
#pragma omp parallel for collapse(2) schedule(static)
  for (int K = 0; K < coarse.nz; ++K) {
    for (int J = 0; J < coarse.ny; ++J) {
      const auto ck = detail::children_of(K, fine.nz, c.mask[2]);
      const auto cj = detail::children_of(J, fine.ny, c.mask[1]);
      for (int I = 0; I < coarse.nx; ++I) {
        const auto& ci = cxi[static_cast<std::size_t>(I)];
        // Flatten the child triple loop once per coarse point; the list
        // preserves the (a, b, cidx) fold order of the single-RHS kernel.
        std::int64_t src[27];
        CT wv[27];
        int ns = 0;
        for (int a = 0; a < ck.count; ++a) {
          for (int b = 0; b < cj.count; ++b) {
            for (int cidx = 0; cidx < ci.count; ++cidx) {
              const double w = rscale * ck.w[a] * cj.w[b] * ci.w[cidx];
              src[ns] = fine.idx(ci.idx[cidx], cj.idx[b], ck.idx[a]);
              wv[ns] = static_cast<CT>(w);
              ++ns;
            }
          }
        }
        CT* SMG_RESTRICT dst = fp + coarse.idx(I, J, K) * bs * kp;
        for (int br = 0; br < bs; ++br) {
          CT* SMG_RESTRICT dr = dst + static_cast<std::int64_t>(br) * kp;
#pragma omp simd
          for (int cc = 0; cc < kp; ++cc) {
            CT acc{0};
            for (int t = 0; t < ns; ++t) {
              acc += wv[t] * rp[(src[t] * bs + br) * kp + cc];
            }
            dr[cc] = acc;
          }
        }
      }
    }
  }
}

/// Panel prolongation: U_f += P E_c for all columns in one pass; column c is
/// bitwise identical to prolong_add on that column (same parent fold order,
/// same weights, separate accumulator added once).
template <class CT>
void prolong_add_many(const Coarsening& c, int bs, const MultiVector<CT>& ec,
                      MultiVector<CT>& uf) {
  const Box& fine = c.fine;
  const Box& coarse = c.coarse;
  SMG_CHECK(uf.rows() == fine.size() * bs && ec.rows() == coarse.size() * bs &&
                uf.padded_cols() == ec.padded_cols(),
            "prolong_many size mismatch");
  const obs::KernelSpan span(obs::Kind::Prolong);
  const int kp = uf.padded_cols();
  const CT* SMG_RESTRICT ep = ec.data();
  CT* SMG_RESTRICT up = uf.data();
  // Hoist the pure per-coordinate parent lookups out of the point loop.
  std::vector<detail::Parents> pxi(static_cast<std::size_t>(fine.nx));
  for (int i = 0; i < fine.nx; ++i) {
    pxi[static_cast<std::size_t>(i)] = detail::parents_of(i, coarse.nx, c.mask[0]);
  }
#pragma omp parallel for collapse(2) schedule(static)
  for (int k = 0; k < fine.nz; ++k) {
    for (int j = 0; j < fine.ny; ++j) {
      const auto pk = detail::parents_of(k, coarse.nz, c.mask[2]);
      const auto pj = detail::parents_of(j, coarse.ny, c.mask[1]);
      for (int i = 0; i < fine.nx; ++i) {
        const auto& pi = pxi[static_cast<std::size_t>(i)];
        const std::int64_t fcell = fine.idx(i, j, k);
        std::int64_t src[8];
        CT wv[8];
        int ns = 0;
        for (int a = 0; a < pk.count; ++a) {
          for (int b = 0; b < pj.count; ++b) {
            for (int cidx = 0; cidx < pi.count; ++cidx) {
              const double w = pk.w[a] * pj.w[b] * pi.w[cidx];
              src[ns] = coarse.idx(pi.idx[cidx], pj.idx[b], pk.idx[a]);
              wv[ns] = static_cast<CT>(w);
              ++ns;
            }
          }
        }
        for (int br = 0; br < bs; ++br) {
          CT* SMG_RESTRICT ur = up + (fcell * bs + br) * kp;
#pragma omp simd
          for (int cc = 0; cc < kp; ++cc) {
            CT acc{0};
            for (int t = 0; t < ns; ++t) {
              acc += wv[t] * ep[(src[t] * bs + br) * kp + cc];
            }
            ur[cc] += acc;
          }
        }
      }
    }
  }
}

/// u_f += P e_c: each fine point gathers from its coarse parents.  Already
/// gather-form (fine-point-centric), so line-parallelism is free; the
/// per-point accumulation order is unchanged, making the result bitwise
/// identical at any thread count.
template <class CT>
void prolong_add(const Coarsening& c, int bs, std::span<const CT> ec,
                 std::span<CT> uf) {
  const Box& fine = c.fine;
  const Box& coarse = c.coarse;
  SMG_CHECK(static_cast<std::int64_t>(uf.size()) == fine.size() * bs &&
                static_cast<std::int64_t>(ec.size()) == coarse.size() * bs,
            "prolong size mismatch");
  const obs::KernelSpan span(obs::Kind::Prolong);
#pragma omp parallel for collapse(2) schedule(static)
  for (int k = 0; k < fine.nz; ++k) {
    for (int j = 0; j < fine.ny; ++j) {
      const auto pk = detail::parents_of(k, coarse.nz, c.mask[2]);
      const auto pj = detail::parents_of(j, coarse.ny, c.mask[1]);
      for (int i = 0; i < fine.nx; ++i) {
        const auto pi = detail::parents_of(i, coarse.nx, c.mask[0]);
        const std::int64_t fcell = fine.idx(i, j, k);
        for (int br = 0; br < bs; ++br) {
          CT acc{0};
          for (int a = 0; a < pk.count; ++a) {
            for (int b = 0; b < pj.count; ++b) {
              for (int cidx = 0; cidx < pi.count; ++cidx) {
                const double w = pk.w[a] * pj.w[b] * pi.w[cidx];
                const std::int64_t ccell =
                    coarse.idx(pi.idx[cidx], pj.idx[b], pk.idx[a]);
                acc += static_cast<CT>(w) * ec[ccell * bs + br];
              }
            }
          }
          uf[fcell * bs + br] += acc;
        }
      }
    }
  }
}

}  // namespace smg
