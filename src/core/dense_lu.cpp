#include "core/dense_lu.hpp"

#include <cmath>
#include <limits>

#include "util/common.hpp"

namespace smg {

DenseLU::DenseLU(const StructMat<double>& A) {
  n_ = A.nrows();
  lu_.assign(static_cast<std::size_t>(n_) * n_, 0.0);
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        for (int d = 0; d < st.ndiag(); ++d) {
          const Offset& o = st.offset(d);
          if (!box.contains(i + o.dx, j + o.dy, k + o.dz)) {
            continue;
          }
          const std::int64_t nbr = box.idx(i + o.dx, j + o.dy, k + o.dz);
          for (int br = 0; br < bs; ++br) {
            for (int bc = 0; bc < bs; ++bc) {
              lu_[static_cast<std::size_t>(cell * bs + br) * n_ +
                  (nbr * bs + bc)] = A.at(cell, d, br, bc);
            }
          }
        }
      }
    }
  }
  factor();
}

DenseLU::DenseLU(std::int64_t n, avec<double> a) : n_(n), lu_(std::move(a)) {
  SMG_CHECK(lu_.size() == static_cast<std::size_t>(n_) * n_,
            "dense matrix size mismatch");
  factor();
}

void DenseLU::factor() {
  piv_.resize(static_cast<std::size_t>(n_));
  min_pivot_ = std::numeric_limits<double>::infinity();
  double* a = lu_.data();
  for (std::int64_t col = 0; col < n_; ++col) {
    // Partial pivoting.
    std::int64_t p = col;
    double pmax = std::abs(a[col * n_ + col]);
    for (std::int64_t r = col + 1; r < n_; ++r) {
      const double v = std::abs(a[r * n_ + col]);
      if (v > pmax) {
        pmax = v;
        p = r;
      }
    }
    piv_[static_cast<std::size_t>(col)] = static_cast<std::int32_t>(p);
    if (p != col) {
      for (std::int64_t c = 0; c < n_; ++c) {
        std::swap(a[col * n_ + c], a[p * n_ + c]);
      }
    }
    const double pivot = a[col * n_ + col];
    min_pivot_ = std::min(min_pivot_, std::abs(pivot));
    if (pivot == 0.0) {
      continue;  // singular column; solve() will propagate inf/nan
    }
    const double inv = 1.0 / pivot;
    for (std::int64_t r = col + 1; r < n_; ++r) {
      const double m = a[r * n_ + col] * inv;
      a[r * n_ + col] = m;
      if (m != 0.0) {
        for (std::int64_t c = col + 1; c < n_; ++c) {
          a[r * n_ + c] -= m * a[col * n_ + c];
        }
      }
    }
  }
  if (n_ == 0) {
    min_pivot_ = 0.0;
  }
}

template <class CT>
void DenseLU::solve(std::span<const CT> b, std::span<CT> x) const {
  SMG_CHECK(static_cast<std::int64_t>(b.size()) == n_ &&
                static_cast<std::int64_t>(x.size()) == n_,
            "dense solve size mismatch");
  avec<double> y(static_cast<std::size_t>(n_));
  for (std::int64_t i = 0; i < n_; ++i) {
    y[static_cast<std::size_t>(i)] = static_cast<double>(b[i]);
  }
  // Apply the row permutation and forward-substitute with unit L.
  const double* a = lu_.data();
  for (std::int64_t i = 0; i < n_; ++i) {
    const std::int64_t p = piv_[static_cast<std::size_t>(i)];
    if (p != i) {
      std::swap(y[static_cast<std::size_t>(i)], y[static_cast<std::size_t>(p)]);
    }
    double acc = y[static_cast<std::size_t>(i)];
    for (std::int64_t c = 0; c < i; ++c) {
      acc -= a[i * n_ + c] * y[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
  // Back-substitution with U.
  for (std::int64_t i = n_ - 1; i >= 0; --i) {
    double acc = y[static_cast<std::size_t>(i)];
    for (std::int64_t c = i + 1; c < n_; ++c) {
      acc -= a[i * n_ + c] * y[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(i)] = acc / a[i * n_ + i];
  }
  for (std::int64_t i = 0; i < n_; ++i) {
    x[i] = static_cast<CT>(y[static_cast<std::size_t>(i)]);
  }
}

template void DenseLU::solve<float>(std::span<const float>,
                                    std::span<float>) const;
template void DenseLU::solve<double>(std::span<const double>,
                                     std::span<double>) const;

}  // namespace smg
