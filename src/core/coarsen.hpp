// Galerkin coarsening A_c = R A P for structured matrices (§2, Fig. 2).
//
// Performed entirely in FP64 — the setup-then-scale strategy depends on the
// triple-matrix-product chain never seeing reduced precision (§4.1).
#pragma once

#include <array>

#include "core/transfer.hpp"
#include "sgdia/struct_matrix.hpp"

namespace smg {

/// Numeric triple product with geometric P (trilinear) and R = P^T.
/// The coarse matrix always has the full 3d27 pattern: 3d7/3d15/3d19
/// stencils expand to 3d27 after one Galerkin step, exactly as the paper
/// notes for StructMG and hypre's structured solvers.
StructMat<double> galerkin_coarsen(const StructMat<double>& A,
                                   const Coarsening& c);

/// Aggregate |a| mass of the pure-axis face couplings per dimension — the
/// signal the coupling-aware Coarsening::make uses to pick which dims to
/// halve (anisotropic problems keep their weak directions uncoarsened).
std::array<double, 3> coupling_strengths(const StructMat<double>& A);

}  // namespace smg
