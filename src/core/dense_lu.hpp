// Dense LU with partial pivoting for the coarsest-level direct solve.
//
// The coarsest grid of the hierarchy is a few hundred to a few thousand dofs;
// a dense factorization in FP64 keeps the coarse solve exact so convergence
// differences in the experiments are attributable to the FP16 levels alone.
#pragma once

#include <cstdint>
#include <span>

#include "sgdia/struct_matrix.hpp"
#include "util/aligned.hpp"

namespace smg {

class DenseLU {
 public:
  DenseLU() = default;

  /// Factor the dense equivalent of a structured matrix.
  explicit DenseLU(const StructMat<double>& A);

  /// Factor an explicit row-major dense matrix (n x n).
  DenseLU(std::int64_t n, avec<double> a);

  std::int64_t size() const noexcept { return n_; }

  /// x = A^{-1} b (any compute precision; internally FP64).
  template <class CT>
  void solve(std::span<const CT> b, std::span<CT> x) const;

  /// Sign-scaled determinant magnitude heuristic: minimum |u_ii|; zero means
  /// the matrix was singular to working precision.
  double min_pivot() const noexcept { return min_pivot_; }

 private:
  void factor();

  std::int64_t n_ = 0;
  avec<double> lu_;        // row-major, L below unit diagonal, U on/above
  avec<std::int32_t> piv_; // row permutation
  double min_pivot_ = 0.0;
};

}  // namespace smg
