#include "core/mg_hierarchy.hpp"

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>

#include "core/coarsen.hpp"
#include "core/smoother.hpp"
#include "util/timer.hpp"

namespace smg {

namespace {

/// The paper's criterion (§4.1), per storage format: scale a level iff its
/// values exceed the format's max.  BF16 shares FP32's range and never
/// scales; FP16 scales when values exceed 65504 (bitwise identical to the
/// pre-ladder FP16-only check); FP8's representable range is so small
/// (2^-9..240 — four decades) that the Theorem 4.1 scaling *is* the format's
/// per-level scale, applied unconditionally.
bool needs_scaling(const StructMat<double>& A, Prec storage) {
  switch (storage) {
    case Prec::FP8:
      return true;
    case Prec::FP16:
      return max_abs_value(A) > format_max(Prec::FP16);
    case Prec::BF16:
    case Prec::FP32:
    case Prec::FP64:
      return false;
  }
  return false;
}

/// Record the magnitude range of the values about to be truncated
/// (telemetry's precision ledger; one extra setup-time pass).
void record_stored_range(const StructMat<double>& A, Level& lev) {
  lev.stored_max_abs = max_abs_value(A);
  const double mn = min_abs_nonzero(A);
  lev.stored_min_abs = std::isfinite(mn) ? mn : 0.0;
}

std::string analysis_reason(const StorageAnalysis& an) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "headroom=%.3g overflow=%.3g ftz=%.3g subnormal=%.3g",
                an.headroom, an.overflow_frac, an.ftz_frac,
                an.subnormal_frac);
  return buf;
}

std::string trunc_reason(const TruncateReport& r) {
  return "overflowed=" + std::to_string(r.overflowed) +
         " flushed=" + std::to_string(r.underflowed) +
         " subnormal=" + std::to_string(r.subnormal);
}

}  // namespace

MGHierarchy::MGHierarchy(StructMat<double> A0, MGConfig cfg)
    : cfg_(std::move(cfg)) {
  Timer timer;

  // Flip the sticky process-wide metrics switch before anything built on
  // this hierarchy (DecompEngine, adapters) registers its series.
  if (obs::effective_metrics(cfg_.metrics) == obs::MetricsLevel::On) {
    obs::enable_metrics(true);
  }

  cfg_.cycle = effective_cycle(cfg_);
  cfg_.precision_policy = effective_policy(cfg_.precision_policy);
  if (cfg_.precision_policy != PrecisionPolicy::Fixed) {
    th_ = AutopilotThresholds::from_env();
  }
  bool auto_rungs = false;
  cfg_.storage_ladder = effective_storage_ladder(cfg_, &auto_rungs);
  cfg_.ladder_auto =
      auto_rungs && cfg_.precision_policy != PrecisionPolicy::Fixed;
  cfg_.ladder_min_level = effective_ladder_min_level(cfg_);

  // ---- optional ablation path: scale the finest matrix *before* setup ----
  {
    const Prec finest = cfg_.storage_at(0);
    if (cfg_.scale == ScaleMode::ScaleThenSetup &&
        needs_scaling(A0, finest)) {
      ScaleResult sr =
          scale_matrix(A0, cfg_.scale_safety, format_max(finest));
      finest_wrapped_ = sr.applied;
      finest_q2_ = std::move(sr.q2);
    }
  }

  // ---- Galerkin chain in FP64 (Alg. 1 lines 1-3) ----
  std::vector<StructMat<double>> chain;
  std::vector<Coarsening> steps;
  chain.push_back(std::move(A0));
  while (static_cast<int>(chain.size()) < cfg_.max_levels) {
    const StructMat<double>& fine = chain.back();
    if (fine.ncells() <= cfg_.min_coarse_cells) {
      break;
    }
    const Coarsening c =
        cfg_.aniso_coarsening
            ? Coarsening::make(fine.box(), cfg_.min_dim,
                               coupling_strengths(fine),
                               cfg_.coarsen_threshold)
            : Coarsening::make(fine.box(), cfg_.min_dim);
    if (!c.any()) {
      break;
    }
    steps.push_back(c);
    chain.push_back(galerkin_coarsen(fine, c));
  }

  // ---- per-level scale-and-truncate (Alg. 1 lines 4-13) ----
  const int nlev = static_cast<int>(chain.size());
  levels_.resize(static_cast<std::size_t>(nlev));
  for (int l = 0; l < nlev; ++l) {
    Level& lev = levels_[static_cast<std::size_t>(l)];
    lev.A_full = std::move(chain[static_cast<std::size_t>(l)]);
    if (l + 1 < nlev) {
      lev.to_coarse = steps[static_cast<std::size_t>(l)];
    }

    // SymGS sweep scheduling is a per-level decision (coarse levels may be
    // too small to amortize the wavefront barriers).
    if (cfg_.smoother == SmootherType::SymGS) {
      lev.smoother_wf =
          plan_smoother_wavefront(lev.A_full.box(), lev.A_full.stencil(),
                                  cfg_.layout, cfg_.smoother_parallel);
    }

    setup_level_storage(l);
  }

  // Publish the realized per-level rungs so config().storage_ladder and
  // storage_at() reflect what the auto planner actually chose.
  if (cfg_.ladder_auto) {
    cfg_.storage_ladder.clear();
    for (const Level& lev : levels_) {
      cfg_.storage_ladder.push_back(lev.storage);
    }
  }

  // ---- coarsest-level direct solver ----
  coarse_lu_ = DenseLU(levels_.back().A_full);

  setup_seconds_ = timer.seconds();
}

Prec MGHierarchy::plan_rung(int l, const StructMat<double>& A) {
  const Prec base = cfg_.storage_at(l);
  if (!is_narrow_storage(base)) {
    return base;  // compute-precision levels have no bandwidth to win
  }
  // Cheapest-first menu: FP8, then the configured base rung.  Compute
  // precision is deliberately absent — when even the base rung is
  // inadmissible, the caller falls through to the existing §4.3 shift path
  // (monotone shift plus its own logging).
  const Prec menu[] = {Prec::FP8, base};
  for (const Prec cand : menu) {
    if (bytes_of(cand) > bytes_of(base)) {
      continue;  // never plan *wider* than the configured rung
    }
    if (cand != base && l < cfg_.ladder_min_level) {
      continue;  // fine levels carry most of the error: keep them at base
    }
    StorageAnalysis an;
    if (cfg_.scale == ScaleMode::SetupThenScale && needs_scaling(A, cand) &&
        diagonal_positive(A)) {
      // Judge the candidate in the space it would actually be stored in:
      // scaled to the candidate's own format max.
      StructMat<double> scaled = A;
      double safety = cfg_.scale_safety;
      const ScaleResult sr = scale_matrix(scaled, safety, format_max(cand));
      if (!sr.applied) {
        continue;
      }
      an = analyze_storage(scaled, cand);
    } else {
      an = analyze_storage(A, cand);
    }
    if (storage_admissible(an, th_)) {
      if (cand != base) {
        autopilot_log_.push_back({l, AutopilotTrigger::SetupPlan,
                                  AutopilotAction::Rung, base, cand, 0.0,
                                  analysis_reason(an)});
      }
      return cand;
    }
  }
  return base;
}

void MGHierarchy::shift_to_compute(int l) {
  cfg_.shift_levid = std::min(cfg_.shift_levid, l);
  if (!cfg_.storage_ladder.empty()) {
    // storage_at() consults the ladder before shift_levid, so the shift must
    // rewrite it: rungs finer than l keep their format, l and every coarser
    // level become compute (§4.3 monotone — the trailing rung extends).
    std::vector<Prec> ladder = cfg_.expand_ladder(l > 0 ? l : 0);
    ladder.push_back(cfg_.compute);
    cfg_.storage_ladder = std::move(ladder);
  }
}

void MGHierarchy::setup_level_storage(int l) {
  Level& lev = levels_[static_cast<std::size_t>(l)];
  lev.storage = cfg_.storage_at(l);

  const bool auto_plan =
      cfg_.ladder_auto && cfg_.precision_policy != PrecisionPolicy::Fixed;
  if (auto_plan) {
    lev.storage = plan_rung(l, lev.A_full);
  }

  // Smoothers are set up from the high-precision matrix, then their data
  // is truncated to storage precision (Alg. 1 line 13).  On scaled levels
  // the truncation happens in the *scaled* space (the paper sets S_i up
  // from the scaled Â_i, whose diagonal is uniformly G): the raw inverse
  // diagonals span the matrix's full decade range and rounding them
  // directly would perturb the smoother non-uniformly.
  lev.invdiag = compute_invdiag(lev.A_full);

  const bool planning = cfg_.precision_policy != PrecisionPolicy::Fixed;

  if (cfg_.scale == ScaleMode::SetupThenScale &&
      needs_scaling(lev.A_full, lev.storage)) {
    if (!diagonal_positive(lev.A_full)) {
      // A zero/negative/non-finite diagonal entry voids Theorem 4.1: no Q
      // exists.  Store this level unscaled in compute precision instead of
      // poisoning the scaled matrix with NaN.
      const Prec from = lev.storage;
      lev.degenerate_diag = true;
      lev.storage = cfg_.compute;
      autopilot_log_.push_back({l, AutopilotTrigger::DegenerateDiag,
                                AutopilotAction::Fallback, from, lev.storage,
                                0.0,
                                "diagonal has zero/negative/non-finite "
                                "entries; Theorem 4.1 inapplicable"});
      store_direct(lev);
      return;
    }

    // Scale a *copy*: A_full must stay the true level operator for the
    // smoother data above and for diagnostics.
    StructMat<double> scaled = lev.A_full;
    double safety = cfg_.scale_safety;
    ScaleResult sr = scale_matrix(scaled, safety, format_max(lev.storage));
    if (!sr.applied) {
      // Nonsensical safety (<= 0 or non-finite): nothing sane to truncate.
      const Prec from = lev.storage;
      lev.storage = cfg_.compute;
      autopilot_log_.push_back(
          {l, AutopilotTrigger::SetupPlan, AutopilotAction::Fallback, from,
           lev.storage, 0.0, "scaling produced no admissible G"});
      store_direct(lev);
      return;
    }

    if (planning) {
      StorageAnalysis an = analyze_storage(scaled, lev.storage);
      if (an.overflow_frac > 0.0 && safety > th_.repair_safety) {
        // The configured safety pushes entries past the format max
        // (G > G_max).  Re-derive the scaled copy at the clamped repair
        // safety — the cheap fix that keeps narrow storage.
        scaled = lev.A_full;
        safety = th_.repair_safety;
        sr = scale_matrix(scaled, safety, format_max(lev.storage));
        autopilot_log_.push_back({l, AutopilotTrigger::SetupPlan,
                                  AutopilotAction::Rescale, lev.storage,
                                  lev.storage, safety, analysis_reason(an)});
        an = analyze_storage(scaled, lev.storage);
      }
      if (!storage_admissible(an, th_)) {
        // Underflow storm (or overflow even at the clamped safety): shift
        // this and every coarser level to compute precision (§4.3).
        shift_to_compute(l);
        const Prec from = lev.storage;
        lev.storage = cfg_.storage_at(l);
        autopilot_log_.push_back({l, AutopilotTrigger::SetupPlan,
                                  AutopilotAction::Shift, from, lev.storage,
                                  0.0, analysis_reason(an)});
        store_direct(lev);
        return;
      }
    }

    lev.scaled = true;
    lev.q2 = std::move(sr.q2);
    lev.gmax = sr.gmax;
    lev.g = sr.G;
    record_stored_range(scaled, lev);
    lev.A_stored = AnyMat::from(scaled, lev.storage, cfg_.layout, &lev.trunc);
    if (cfg_.truncate_smoother) {
      truncate_invdiag_scaled(lev);
    }
    if (cfg_.precision_policy == PrecisionPolicy::Guarded) {
      lev.A_setup = std::move(scaled);
    }
    return;
  }

  if (planning && is_narrow_storage(lev.storage)) {
    // Unscaled narrow level (in-range FP16, any BF16, or ScaleMode::None):
    // the planner still vetoes storage that would overflow or lose too many
    // entries to underflow.
    const StorageAnalysis an = analyze_storage(lev.A_full, lev.storage);
    if (!storage_admissible(an, th_)) {
      shift_to_compute(l);
      const Prec from = lev.storage;
      lev.storage = cfg_.storage_at(l);
      autopilot_log_.push_back({l, AutopilotTrigger::SetupPlan,
                                AutopilotAction::Shift, from, lev.storage,
                                0.0, analysis_reason(an)});
    }
  }
  // Direct truncation: ScaleMode::None intentionally lets out-of-range
  // values become inf under PrecisionPolicy::Fixed (the Fig. 6 "none"
  // failure mode is part of the reproduction, not a bug).
  store_direct(lev);
}

void MGHierarchy::store_direct(Level& lev) {
  record_stored_range(lev.A_full, lev);
  lev.A_stored = AnyMat::from(lev.A_full, lev.storage, cfg_.layout, &lev.trunc);
  if (cfg_.truncate_smoother) {
    truncate_smoother_data(lev.invdiag, lev.storage);
  }
}

void MGHierarchy::truncate_invdiag_scaled(Level& lev) {
  // Round the diagonal-block inverses in the scaled space:
  // hat = Q^{1/2} D^{-1} Q^{1/2} (values ~1/G, safely in range),
  // truncate, then map back to the effective-space data the kernels
  // consume.
  const int bsz = lev.A_full.block_size();
  const std::int64_t nc = lev.A_full.ncells();
  for (std::int64_t cell = 0; cell < nc; ++cell) {
    for (int br = 0; br < bsz; ++br) {
      for (int bc = 0; bc < bsz; ++bc) {
        lev.invdiag[static_cast<std::size_t>(
            (cell * bsz + br) * bsz + bc)] *=
            lev.q2[static_cast<std::size_t>(cell * bsz + br)] *
            lev.q2[static_cast<std::size_t>(cell * bsz + bc)];
      }
    }
  }
  truncate_smoother_data(lev.invdiag, lev.storage);
  for (std::int64_t cell = 0; cell < nc; ++cell) {
    for (int br = 0; br < bsz; ++br) {
      for (int bc = 0; bc < bsz; ++bc) {
        lev.invdiag[static_cast<std::size_t>(
            (cell * bsz + br) * bsz + bc)] /=
            lev.q2[static_cast<std::size_t>(cell * bsz + br)] *
            lev.q2[static_cast<std::size_t>(cell * bsz + bc)];
      }
    }
  }
}

void MGHierarchy::refresh_invdiag(Level& lev) {
  lev.invdiag = compute_invdiag(lev.A_full);
  if (cfg_.truncate_smoother) {
    if (lev.scaled) {
      truncate_invdiag_scaled(lev);
    } else {
      truncate_smoother_data(lev.invdiag, lev.storage);
    }
  }
}

bool MGHierarchy::rescale_level(int l, double new_safety,
                                AutopilotTrigger trig) {
  if (l < 0 || l >= nlevels()) {
    return false;
  }
  Level& lev = levels_[static_cast<std::size_t>(l)];
  if (!lev.scaled || lev.A_setup.ncells() == 0) {
    return false;
  }
  if (!(new_safety > 0.0) || !std::isfinite(new_safety) ||
      !(lev.gmax > 0.0) || !std::isfinite(lev.gmax) || !(lev.g > 0.0)) {
    return false;
  }
  const double g_new = new_safety * lev.gmax;
  if (g_new == lev.g) {
    return false;  // no-op: re-truncating would change nothing
  }
  const std::string before = trunc_reason(lev.trunc);

  // Â(G) is linear in G (Theorem 4.1: Â = G * a_ij / sqrt(a_ii a_jj)), so
  // changing the target is a scalar rescale of the retained setup copy —
  // no Galerkin redo.  The back-map follows as q2' = q2 * sqrt(G/G').
  const double ratio = g_new / lev.g;
  for (double& v : lev.A_setup.values()) {
    v *= ratio;
  }
  const double q2_ratio = std::sqrt(1.0 / ratio);
  for (double& q : lev.q2) {
    q *= q2_ratio;
  }
  lev.g = g_new;

  record_stored_range(lev.A_setup, lev);
  lev.A_stored.retruncate_from(lev.A_setup, lev.storage, cfg_.layout,
                               &lev.trunc);
  refresh_invdiag(lev);
  autopilot_log_.push_back({l, trig, AutopilotAction::Rescale, lev.storage,
                            lev.storage, new_safety,
                            before + " -> " + trunc_reason(lev.trunc)});
  return true;
}

bool MGHierarchy::promote_level(int l, Prec to, AutopilotTrigger trig) {
  if (l < 0 || l >= nlevels()) {
    return false;
  }
  Level& lev = levels_[static_cast<std::size_t>(l)];
  if (bytes_of(to) <= bytes_of(lev.storage)) {
    return false;  // promotion only widens
  }
  if (lev.scaled && lev.A_setup.ncells() == 0) {
    // The scaled copy was not retained (non-Guarded setup): re-truncating
    // A_full would silently drop the scaling the kernels compensate for.
    return false;
  }
  const StructMat<double>& src = lev.scaled ? lev.A_setup : lev.A_full;
  const Prec from = lev.storage;
  const std::string before = trunc_reason(lev.trunc);
  lev.storage = to;
  record_stored_range(src, lev);
  lev.A_stored.retruncate_from(src, to, cfg_.layout, &lev.trunc);
  refresh_invdiag(lev);
  autopilot_log_.push_back({l, trig, AutopilotAction::Promote, from, to, 0.0,
                            before + " -> " + trunc_reason(lev.trunc)});
  return true;
}

double MGHierarchy::grid_complexity() const noexcept {
  const double n0 = static_cast<double>(levels_.front().A_full.nrows());
  double sum = 0.0;
  for (const Level& l : levels_) {
    sum += static_cast<double>(l.A_full.nrows());
  }
  return sum / n0;
}

double MGHierarchy::operator_complexity() const noexcept {
  const double z0 = static_cast<double>(levels_.front().A_full.nnz_logical());
  double sum = 0.0;
  for (const Level& l : levels_) {
    sum += static_cast<double>(l.A_full.nnz_logical());
  }
  return sum / z0;
}

std::size_t MGHierarchy::stored_matrix_bytes() const noexcept {
  std::size_t total = 0;
  for (const Level& l : levels_) {
    total += l.A_stored.value_bytes();
  }
  return total;
}

std::size_t MGHierarchy::fp64_matrix_bytes() const noexcept {
  std::size_t total = 0;
  for (const Level& l : levels_) {
    total += l.A_stored.value_bytes() / bytes_of(l.A_stored.precision()) * 8;
  }
  return total;
}

TruncateReport MGHierarchy::total_truncation() const noexcept {
  TruncateReport rep;
  for (const Level& l : levels_) {
    rep += l.trunc;
  }
  return rep;
}

}  // namespace smg
