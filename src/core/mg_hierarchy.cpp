#include "core/mg_hierarchy.hpp"

#include <cmath>
#include <utility>

#include "core/coarsen.hpp"
#include "core/smoother.hpp"
#include "fp/half.hpp"
#include "util/timer.hpp"

namespace smg {

namespace {

/// The paper's criterion (§4.1): scale a level iff values exceed FP16_MAX.
/// Only IEEE FP16 needs it; BF16 shares FP32's range.
bool needs_scaling(const StructMat<double>& A, Prec storage) {
  if (storage != Prec::FP16) {
    return false;
  }
  return max_abs_value(A) > static_cast<double>(kHalfMax);
}

/// Record the magnitude range of the values about to be truncated
/// (telemetry's precision ledger; one extra setup-time pass).
void record_stored_range(const StructMat<double>& A, Level& lev) {
  lev.stored_max_abs = max_abs_value(A);
  const double mn = min_abs_nonzero(A);
  lev.stored_min_abs = std::isfinite(mn) ? mn : 0.0;
}

}  // namespace

MGHierarchy::MGHierarchy(StructMat<double> A0, MGConfig cfg)
    : cfg_(std::move(cfg)) {
  Timer timer;

  // ---- optional ablation path: scale the finest matrix *before* setup ----
  if (cfg_.scale == ScaleMode::ScaleThenSetup &&
      needs_scaling(A0, cfg_.storage)) {
    ScaleResult sr =
        scale_matrix(A0, cfg_.scale_safety, static_cast<double>(kHalfMax));
    finest_wrapped_ = true;
    finest_q2_ = std::move(sr.q2);
  }

  // ---- Galerkin chain in FP64 (Alg. 1 lines 1-3) ----
  std::vector<StructMat<double>> chain;
  std::vector<Coarsening> steps;
  chain.push_back(std::move(A0));
  while (static_cast<int>(chain.size()) < cfg_.max_levels) {
    const StructMat<double>& fine = chain.back();
    if (fine.ncells() <= cfg_.min_coarse_cells) {
      break;
    }
    const Coarsening c =
        cfg_.aniso_coarsening
            ? Coarsening::make(fine.box(), cfg_.min_dim,
                               coupling_strengths(fine),
                               cfg_.coarsen_threshold)
            : Coarsening::make(fine.box(), cfg_.min_dim);
    if (!c.any()) {
      break;
    }
    steps.push_back(c);
    chain.push_back(galerkin_coarsen(fine, c));
  }

  // ---- per-level scale-and-truncate (Alg. 1 lines 4-13) ----
  const int nlev = static_cast<int>(chain.size());
  levels_.resize(static_cast<std::size_t>(nlev));
  for (int l = 0; l < nlev; ++l) {
    Level& lev = levels_[static_cast<std::size_t>(l)];
    lev.A_full = std::move(chain[static_cast<std::size_t>(l)]);
    lev.storage = cfg_.storage_at(l);
    if (l + 1 < nlev) {
      lev.to_coarse = steps[static_cast<std::size_t>(l)];
    }

    // SymGS sweep scheduling is a per-level decision (coarse levels may be
    // too small to amortize the wavefront barriers).
    if (cfg_.smoother == SmootherType::SymGS) {
      lev.smoother_wf =
          plan_smoother_wavefront(lev.A_full.box(), lev.A_full.stencil(),
                                  cfg_.layout, cfg_.smoother_parallel);
    }

    // Smoothers are set up from the high-precision matrix, then their data
    // is truncated to storage precision (Alg. 1 line 13).  On scaled levels
    // the truncation happens in the *scaled* space (the paper sets S_i up
    // from the scaled Â_i, whose diagonal is uniformly G): the raw inverse
    // diagonals span the matrix's full decade range and rounding them
    // directly would perturb the smoother non-uniformly.
    lev.invdiag = compute_invdiag(lev.A_full);

    if (cfg_.scale == ScaleMode::SetupThenScale &&
        needs_scaling(lev.A_full, lev.storage)) {
      // Scale a *copy*: A_full must stay the true level operator for the
      // smoother data above and for diagnostics.
      StructMat<double> scaled = lev.A_full;
      ScaleResult sr = scale_matrix(scaled, cfg_.scale_safety,
                                    static_cast<double>(kHalfMax));
      lev.scaled = true;
      lev.q2 = std::move(sr.q2);
      lev.gmax = sr.gmax;
      lev.g = sr.G;
      record_stored_range(scaled, lev);
      lev.A_stored =
          AnyMat::from(scaled, lev.storage, cfg_.layout, &lev.trunc);
      if (cfg_.truncate_smoother) {
        // Round the diagonal-block inverses in the scaled space:
        // hat = Q^{1/2} D^{-1} Q^{1/2} (values ~1/G, safely in range),
        // truncate, then map back to the effective-space data the kernels
        // consume.
        const int bsz = lev.A_full.block_size();
        const std::int64_t nc = lev.A_full.ncells();
        for (std::int64_t cell = 0; cell < nc; ++cell) {
          for (int br = 0; br < bsz; ++br) {
            for (int bc = 0; bc < bsz; ++bc) {
              lev.invdiag[static_cast<std::size_t>(
                  (cell * bsz + br) * bsz + bc)] *=
                  lev.q2[static_cast<std::size_t>(cell * bsz + br)] *
                  lev.q2[static_cast<std::size_t>(cell * bsz + bc)];
            }
          }
        }
        truncate_smoother_data(lev.invdiag, lev.storage);
        for (std::int64_t cell = 0; cell < nc; ++cell) {
          for (int br = 0; br < bsz; ++br) {
            for (int bc = 0; bc < bsz; ++bc) {
              lev.invdiag[static_cast<std::size_t>(
                  (cell * bsz + br) * bsz + bc)] /=
                  lev.q2[static_cast<std::size_t>(cell * bsz + br)] *
                  lev.q2[static_cast<std::size_t>(cell * bsz + bc)];
            }
          }
        }
      }
    } else {
      // Direct truncation: ScaleMode::None intentionally lets out-of-range
      // values become inf (the Fig. 6 "none" failure mode is part of the
      // reproduction, not a bug).
      record_stored_range(lev.A_full, lev);
      lev.A_stored =
          AnyMat::from(lev.A_full, lev.storage, cfg_.layout, &lev.trunc);
      if (cfg_.truncate_smoother) {
        truncate_smoother_data(lev.invdiag, lev.storage);
      }
    }
  }

  // ---- coarsest-level direct solver ----
  coarse_lu_ = DenseLU(levels_.back().A_full);

  setup_seconds_ = timer.seconds();
}

double MGHierarchy::grid_complexity() const noexcept {
  const double n0 = static_cast<double>(levels_.front().A_full.nrows());
  double sum = 0.0;
  for (const Level& l : levels_) {
    sum += static_cast<double>(l.A_full.nrows());
  }
  return sum / n0;
}

double MGHierarchy::operator_complexity() const noexcept {
  const double z0 = static_cast<double>(levels_.front().A_full.nnz_logical());
  double sum = 0.0;
  for (const Level& l : levels_) {
    sum += static_cast<double>(l.A_full.nnz_logical());
  }
  return sum / z0;
}

std::size_t MGHierarchy::stored_matrix_bytes() const noexcept {
  std::size_t total = 0;
  for (const Level& l : levels_) {
    total += l.A_stored.value_bytes();
  }
  return total;
}

std::size_t MGHierarchy::fp64_matrix_bytes() const noexcept {
  std::size_t total = 0;
  for (const Level& l : levels_) {
    total += l.A_stored.value_bytes() / bytes_of(l.A_stored.precision()) * 8;
  }
  return total;
}

TruncateReport MGHierarchy::total_truncation() const noexcept {
  TruncateReport rep;
  for (const Level& l : levels_) {
    rep += l.trunc;
  }
  return rep;
}

}  // namespace smg
