#include "core/decomp_engine.hpp"

#include <utility>

#include "core/transfer.hpp"
#include "kernels/blas1.hpp"
#include "kernels/fused.hpp"
#include "kernels/spmv.hpp"
#include "kernels/symgs.hpp"
#include "obs/telemetry.hpp"
#include "perfmodel/halo.hpp"
#include "util/timer.hpp"

namespace smg {

namespace {

/// Extract box `s`'s local matrix from the level's global stored matrix:
/// interior rows are copied verbatim (every neighbor of an interior cell is
/// inside interior+ghost because the ghost width covers the stencil radius,
/// and at the clipped global boundary local bounds coincide with global
/// bounds — so the out-of-box-zero invariant carries over), ghost rows are
/// identity (diag 1 — exactly representable in every storage precision —
/// and zero elsewhere, which the zero-initializing constructor provides).
template <class ST>
AnyMat make_local_matrix(const StructMat<ST>& g, const SubBox& s) {
  StructMat<ST> m(s.local(), g.stencil(), g.block_size(), g.layout());
  const int bs = g.block_size();
  const int nd = g.stencil().ndiag();
  const int cd = g.stencil().center();
  SMG_CHECK(cd >= 0, "decomposed level matrix needs a center diagonal");
  const Box lb = s.local();
  const ST one = static_cast<ST>(1.0f);
  for (int k = 0; k < lb.nz; ++k) {
    const int gk = k + s.off(2);
    const bool kin = gk >= s.lo[2] && gk < s.lo[2] + s.n[2];
    for (int j = 0; j < lb.ny; ++j) {
      const int gj = j + s.off(1);
      const bool jin = gj >= s.lo[1] && gj < s.lo[1] + s.n[1];
      for (int i = 0; i < lb.nx; ++i) {
        const int gi = i + s.off(0);
        const bool interior =
            kin && jin && gi >= s.lo[0] && gi < s.lo[0] + s.n[0];
        if (interior) {
          for (int d = 0; d < nd; ++d) {
            for (int br = 0; br < bs; ++br) {
              for (int bc = 0; bc < bs; ++bc) {
                m.at_ijk(i, j, k, d, br, bc) =
                    g.at_ijk(gi, gj, gk, d, br, bc);
              }
            }
          }
        } else {
          for (int br = 0; br < bs; ++br) {
            m.at_ijk(i, j, k, cd, br, br) = one;
          }
        }
      }
    }
  }
  return AnyMat(std::move(m));
}

/// Per-box restriction: coarse box `cs`'s interior dofs gather their fine
/// children from fine box `fs`'s interior+ghost storage.  Child enumeration
/// order, weights, and static_cast<CT>(w) match restrict_to_coarse exactly,
/// so each coarse dof's value is bitwise identical to the global kernel's.
template <class CT>
void boxed_restrict(const Coarsening& c, int bs, const SubBox& fs,
                    const CT* rf, const SubBox& cs, CT* fc) {
  const Box fl = fs.local();
  const Box cl = cs.local();
  const double rscale = c.restrict_scale();
  for (int K = cs.lo[2]; K < cs.lo[2] + cs.n[2]; ++K) {
    const auto ck = detail::children_of(K, c.fine.nz, c.mask[2]);
    for (int J = cs.lo[1]; J < cs.lo[1] + cs.n[1]; ++J) {
      const auto cj = detail::children_of(J, c.fine.ny, c.mask[1]);
      for (int I = cs.lo[0]; I < cs.lo[0] + cs.n[0]; ++I) {
        const auto ci = detail::children_of(I, c.fine.nx, c.mask[0]);
        CT* dst =
            fc + cl.idx(I - cs.off(0), J - cs.off(1), K - cs.off(2)) * bs;
        for (int br = 0; br < bs; ++br) {
          CT acc{0};
          for (int a = 0; a < ck.count; ++a) {
            for (int b = 0; b < cj.count; ++b) {
              for (int cidx = 0; cidx < ci.count; ++cidx) {
                const double w = rscale * ck.w[a] * cj.w[b] * ci.w[cidx];
                const std::int64_t fcell =
                    fl.idx(ci.idx[cidx] - fs.off(0), cj.idx[b] - fs.off(1),
                           ck.idx[a] - fs.off(2));
                acc += static_cast<CT>(w) * rf[fcell * bs + br];
              }
            }
          }
          dst[br] = acc;
        }
      }
    }
  }
}

/// Per-box prolongation: fine box `fs`'s interior dofs gather their coarse
/// parents from the coarse storage box `cl` (a sub-box's local box shifted
/// by `coff`, or the global coarse box with coff = 0 across the
/// agglomeration boundary).  Parent fold order and weights match
/// prolong_add exactly (bitwise-identical per fine dof).
template <class CT>
void boxed_prolong_add(const Coarsening& c, int bs, const CT* ec,
                       const Box& cl, const std::array<int, 3>& coff,
                       const SubBox& fs, CT* uf) {
  const Box fl = fs.local();
  for (int k = fs.lo[2]; k < fs.lo[2] + fs.n[2]; ++k) {
    const auto pk = detail::parents_of(k, c.coarse.nz, c.mask[2]);
    for (int j = fs.lo[1]; j < fs.lo[1] + fs.n[1]; ++j) {
      const auto pj = detail::parents_of(j, c.coarse.ny, c.mask[1]);
      for (int i = fs.lo[0]; i < fs.lo[0] + fs.n[0]; ++i) {
        const auto pi = detail::parents_of(i, c.coarse.nx, c.mask[0]);
        const std::int64_t fcell =
            fl.idx(i - fs.off(0), j - fs.off(1), k - fs.off(2));
        for (int br = 0; br < bs; ++br) {
          CT acc{0};
          for (int a = 0; a < pk.count; ++a) {
            for (int b = 0; b < pj.count; ++b) {
              for (int cidx = 0; cidx < pi.count; ++cidx) {
                const double w = pk.w[a] * pj.w[b] * pi.w[cidx];
                const std::int64_t ccell =
                    cl.idx(pi.idx[cidx] - coff[0], pj.idx[b] - coff[1],
                           pk.idx[a] - coff[2]);
                acc += static_cast<CT>(w) * ec[ccell * bs + br];
              }
            }
          }
          uf[fcell * bs + br] += acc;
        }
      }
    }
  }
}

}  // namespace

template <class CT>
DecompEngine<CT>::DecompEngine(const MGHierarchy* h, std::array<int, 3> nb,
                               bool halo_fp16)
    : h_(h), shape_(h->config().cycle), pool_(&ThreadPool::global()) {
  wire_bytes_ = halo_fp16 ? sizeof(half) : sizeof(CT);
  const std::vector<BoxDecomp> chain =
      decomp_chain(*h_, nb, h_->config().decomp_min_box);
  levels_.resize(chain.size());
  for (std::size_t l = 0; l < chain.size(); ++l) {
    levels_[l].decomp = chain[l];
    levels_[l].boxed = chain[l].decomposed();
  }
  if (!active()) {
    return;  // the problem agglomerated away — caller falls back
  }
  for (int l = 0; l < h_->nlevels(); ++l) {
    build_level(l);
  }
  // Service metrics: register the boxed levels' halo series once (cold
  // path) and pin the perfmodel's exact bytes-per-exchange prediction next
  // to the measured counters, so a scrape can check achieved == model.
  if (obs::metrics_enabled()) {
    const std::vector<HaloLevelModel> model =
        model_halo(*h_, nb, h_->config().decomp_min_box);
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      if (!levels_[l].boxed) {
        continue;
      }
      levels_[l].metrics = obs::halo_level_metrics(static_cast<int>(l));
      if (l < model.size() &&
          levels_[l].metrics.model_bytes_per_exchange != nullptr) {
        levels_[l].metrics.model_bytes_per_exchange->set(
            static_cast<double>(model[l].values_per_exchange) *
            static_cast<double>(wire_bytes_));
      }
    }
  }
  if (h_->finest_wrapped()) {
    const auto& q2 = h_->finest_q2();
    wrap_q2_.resize(q2.size());
    copy_convert<CT, double>({q2.data(), q2.size()},
                             {wrap_q2_.data(), wrap_q2_.size()});
  }
}

template <class CT>
void DecompEngine<CT>::build_level(int l) {
  const Level& hl = h_->level(l);
  DLevel& D = levels_[static_cast<std::size_t>(l)];
  const std::size_t n = static_cast<std::size_t>(hl.A_full.nrows());
  // Global working set: the whole storage of an unboxed level; on boxed
  // levels u/f carry the apply entry/exit (level 0) and r is the gather
  // scratch for the restriction across the agglomeration boundary.
  D.u.assign(n, CT{0});
  D.f.assign(n, CT{0});
  D.r.assign(n, CT{0});
  if (!D.boxed) {
    refresh_global(l);
    return;
  }
  D.plan = HaloPlan(D.decomp, hl.A_full.block_size());
  D.hx.init(&D.plan, wire_bytes_);
  D.boxes.clear();
  D.boxes.resize(static_cast<std::size_t>(D.decomp.nboxes()));
  pool_->run(D.decomp.nboxes(), [&](int b) { build_box(l, b); });
}

template <class CT>
void DecompEngine<CT>::build_box(int l, int b) {
  const Level& hl = h_->level(l);
  DLevel& D = levels_[static_cast<std::size_t>(l)];
  const SubBox& s = D.decomp.box(b);
  BoxData& bd = D.boxes[static_cast<std::size_t>(b)];
  const Box lb = s.local();
  const int bs = hl.A_full.block_size();
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
  const std::size_t nloc = static_cast<std::size_t>(lb.size()) * bs;
  const Box& g = hl.A_full.box();

  bd.u.assign(nloc, CT{0});
  bd.f.assign(nloc, CT{0});
  bd.r.assign(nloc, CT{0});

  hl.A_stored.visit(
      [&](const auto& gm) { bd.A = make_local_matrix(gm, s); });

  // Smoother diagonal-block inverses: interior blocks converted from the
  // level's FP64 inverses, identity blocks at ghosts.
  bd.invdiag.assign(static_cast<std::size_t>(lb.size() * block2), CT{0});
  for (std::int64_t cell = 0; cell < lb.size(); ++cell) {
    CT* blk = bd.invdiag.data() + cell * block2;
    for (int br = 0; br < bs; ++br) {
      blk[br * bs + br] = CT{1};
    }
  }
  for (int ik = 0; ik < s.n[2]; ++ik) {
    for (int ij = 0; ij < s.n[1]; ++ij) {
      for (int ii = 0; ii < s.n[0]; ++ii) {
        const std::int64_t lcell = s.local_idx(ii, ij, ik);
        const std::int64_t gcell =
            g.idx(s.lo[0] + ii, s.lo[1] + ij, s.lo[2] + ik);
        for (std::int64_t q = 0; q < block2; ++q) {
          bd.invdiag[static_cast<std::size_t>(lcell * block2 + q)] =
              static_cast<CT>(hl.invdiag[static_cast<std::size_t>(
                  gcell * block2 + q)]);
        }
      }
    }
  }

  // Scaled levels: local q2 with 1 at ghost dofs (the identity-row value).
  if (hl.scaled) {
    bd.q2.assign(nloc, CT{1});
    for (int ik = 0; ik < s.n[2]; ++ik) {
      for (int ij = 0; ij < s.n[1]; ++ij) {
        for (int ii = 0; ii < s.n[0]; ++ii) {
          const std::int64_t lrow = s.local_idx(ii, ij, ik) * bs;
          const std::int64_t grow =
              g.idx(s.lo[0] + ii, s.lo[1] + ij, s.lo[2] + ik) * bs;
          for (int c = 0; c < bs; ++c) {
            bd.q2[static_cast<std::size_t>(lrow + c)] =
                static_cast<CT>(hl.q2[static_cast<std::size_t>(grow + c)]);
          }
        }
      }
    }
  } else {
    bd.q2.clear();
  }
}

template <class CT>
void DecompEngine<CT>::refresh_global(int l) {
  const Level& hl = h_->level(l);
  DLevel& D = levels_[static_cast<std::size_t>(l)];
  if (hl.scaled) {
    D.q2.resize(hl.q2.size());
    copy_convert<CT, double>({hl.q2.data(), hl.q2.size()},
                             {D.q2.data(), D.q2.size()});
  }
  D.invdiag.resize(hl.invdiag.size());
  copy_convert<CT, double>({hl.invdiag.data(), hl.invdiag.size()},
                           {D.invdiag.data(), D.invdiag.size()});
}

template <class CT>
void DecompEngine<CT>::refresh_level(int l) {
  DLevel& D = levels_[static_cast<std::size_t>(l)];
  if (!D.boxed) {
    refresh_global(l);
    return;
  }
  pool_->run(D.decomp.nboxes(), [&](int b) { build_box(l, b); });
}

template <class CT>
void DecompEngine<CT>::exchange(int lev, bool residual_field) {
  DLevel& D = levels_[static_cast<std::size_t>(lev)];
  const obs::LevelScope ls(lev);
  std::vector<BoxData>& boxes = D.boxes;
  const std::function<CT*(int)> field =
      [&boxes, residual_field](int b) -> CT* {
    BoxData& bd = boxes[static_cast<std::size_t>(b)];
    return residual_field ? bd.r.data() : bd.u.data();
  };
  const bool metered =
      D.metrics.wire_bytes != nullptr && obs::metrics_enabled();
  double pack_seconds = 0.0;
  double unpack_seconds = 0.0;
  {
    const obs::KernelSpan span(obs::Kind::HaloPack);
    const Timer t;
    D.hx.template pack_and_transport<CT>(field, *pool_, ex_);
    if (metered) {
      pack_seconds = t.seconds();
    }
  }
  {
    const obs::KernelSpan span(obs::Kind::HaloUnpack);
    const Timer t;
    D.hx.template unpack<CT>(field, *pool_);
    if (metered) {
      unpack_seconds = t.seconds();
    }
  }
  if (obs::Telemetry* t = obs::current()) {
    t->record_halo(lev, D.hx.bytes_per_exchange());
  }
  if (metered) {
    D.metrics.wire_bytes->add(
        static_cast<double>(D.hx.bytes_per_exchange()));
    D.metrics.exchanges->inc();
    D.metrics.pack_seconds->add(pack_seconds);
    D.metrics.unpack_seconds->add(unpack_seconds);
  }
}

template <class CT>
void DecompEngine<CT>::refresh_ghost_rhs(int lev, int b) {
  DLevel& D = levels_[static_cast<std::size_t>(lev)];
  const SubBox& s = D.decomp.box(b);
  const Box lb = s.local();
  if (lb.size() == s.interior_cells()) {
    return;  // clipped on all sides: no ghosts
  }
  BoxData& bd = D.boxes[static_cast<std::size_t>(b)];
  const int bs = h_->level(lev).A_full.block_size();
  for (int k = 0; k < lb.nz; ++k) {
    const bool kin = k >= s.glo[2] && k < s.glo[2] + s.n[2];
    for (int j = 0; j < lb.ny; ++j) {
      const bool jin = kin && j >= s.glo[1] && j < s.glo[1] + s.n[1];
      for (int i = 0; i < lb.nx; ++i) {
        if (jin && i >= s.glo[0] && i < s.glo[0] + s.n[0]) {
          continue;  // interior row: keep the real rhs
        }
        const std::int64_t row = lb.idx(i, j, k) * bs;
        for (int c = 0; c < bs; ++c) {
          bd.f[static_cast<std::size_t>(row + c)] =
              bd.u[static_cast<std::size_t>(row + c)];
        }
      }
    }
  }
}

template <class CT>
void DecompEngine<CT>::scatter_to_boxes(int lev, std::span<const CT> src) {
  DLevel& D = levels_[static_cast<std::size_t>(lev)];
  const Level& hl = h_->level(lev);
  const Box& g = hl.A_full.box();
  const int bs = hl.A_full.block_size();
  pool_->run(D.decomp.nboxes(), [&](int b) {
    const SubBox& s = D.decomp.box(b);
    BoxData& bd = D.boxes[static_cast<std::size_t>(b)];
    const std::int64_t nv = static_cast<std::int64_t>(s.n[0]) * bs;
    for (int ik = 0; ik < s.n[2]; ++ik) {
      for (int ij = 0; ij < s.n[1]; ++ij) {
        const std::int64_t lrow = s.local_idx(0, ij, ik) * bs;
        const std::int64_t grow =
            g.idx(s.lo[0], s.lo[1] + ij, s.lo[2] + ik) * bs;
        for (std::int64_t t = 0; t < nv; ++t) {
          bd.f[static_cast<std::size_t>(lrow + t)] =
              src[static_cast<std::size_t>(grow + t)];
        }
      }
    }
  });
}

template <class CT>
void DecompEngine<CT>::gather_interiors(int lev,
                                        const avec<CT> BoxData::*field,
                                        std::span<CT> dst) {
  DLevel& D = levels_[static_cast<std::size_t>(lev)];
  const Level& hl = h_->level(lev);
  const Box& g = hl.A_full.box();
  const int bs = hl.A_full.block_size();
  pool_->run(D.decomp.nboxes(), [&](int b) {
    const SubBox& s = D.decomp.box(b);
    const avec<CT>& bf = D.boxes[static_cast<std::size_t>(b)].*field;
    const std::int64_t nv = static_cast<std::int64_t>(s.n[0]) * bs;
    for (int ik = 0; ik < s.n[2]; ++ik) {
      for (int ij = 0; ij < s.n[1]; ++ij) {
        const std::int64_t lrow = s.local_idx(0, ij, ik) * bs;
        const std::int64_t grow =
            g.idx(s.lo[0], s.lo[1] + ij, s.lo[2] + ik) * bs;
        for (std::int64_t t = 0; t < nv; ++t) {
          dst[static_cast<std::size_t>(grow + t)] =
              bf[static_cast<std::size_t>(lrow + t)];
        }
      }
    }
  });
}

template <class CT>
void DecompEngine<CT>::smooth_boxed(int lev, bool forward) {
  DLevel& D = levels_[static_cast<std::size_t>(lev)];
  const MGConfig& cfg = h_->config();
  exchange(lev, /*residual_field=*/false);
  const CT w = static_cast<CT>(cfg.jacobi_weight);
  const bool symgs = cfg.smoother == SmootherType::SymGS;
  pool_->run(D.decomp.nboxes(), [&](int b) {
    const obs::LevelScope ls(lev);
    BoxData& bd = D.boxes[static_cast<std::size_t>(b)];
    refresh_ghost_rhs(lev, b);
    const CT* q2 = bd.q2.empty() ? nullptr : bd.q2.data();
    std::span<const CT> f{bd.f.data(), bd.f.size()};
    std::span<const CT> invd{bd.invdiag.data(), bd.invdiag.size()};
    if (symgs) {
      // Per-box sequential sweep (no per-box wavefront schedule): block-
      // Jacobi coupling between boxes through the exchanged halos.
      std::span<CT> u{bd.u.data(), bd.u.size()};
      bd.A.visit([&](const auto& m) {
        if (forward) {
          gs_forward(m, f, u, invd, q2, nullptr);
        } else {
          gs_backward(m, f, u, invd, q2, nullptr);
        }
      });
    } else {
      bd.A.visit([&](const auto& m) {
        jacobi_sweep_fused(m, f,
                           std::span<const CT>{bd.u.data(), bd.u.size()},
                           invd, q2, w,
                           std::span<CT>{bd.r.data(), bd.r.size()});
      });
      std::swap(bd.u, bd.r);
    }
  });
}

template <class CT>
void DecompEngine<CT>::smooth_global(int lev, bool forward) {
  const Level& hl = h_->level(lev);
  DLevel& D = levels_[static_cast<std::size_t>(lev)];
  const MGConfig& cfg = h_->config();
  const CT* q2 = D.q2.empty() ? nullptr : D.q2.data();
  std::span<const CT> f{D.f.data(), D.f.size()};
  std::span<CT> u{D.u.data(), D.u.size()};
  std::span<const CT> invdiag{D.invdiag.data(), D.invdiag.size()};
  if (cfg.smoother == SmootherType::SymGS) {
    const WavefrontSchedule* wf =
        hl.smoother_wf.valid() ? &hl.smoother_wf : nullptr;
    hl.A_stored.visit([&](const auto& m) {
      if (forward) {
        gs_forward(m, f, u, invdiag, q2, wf);
      } else {
        gs_backward(m, f, u, invdiag, q2, wf);
      }
    });
    return;
  }
  const CT w = static_cast<CT>(cfg.jacobi_weight);
  hl.A_stored.visit([&](const auto& m) {
    jacobi_sweep_fused(m, f, std::span<const CT>{D.u.data(), D.u.size()},
                       invdiag, q2, w,
                       std::span<CT>{D.r.data(), D.r.size()});
  });
  std::swap(D.u, D.r);
}

template <class CT>
void DecompEngine<CT>::cycle(int lev, bool zero_guess) {
  const int last = h_->nlevels() - 1;
  DLevel& D = levels_[static_cast<std::size_t>(lev)];
  const Level& hl = h_->level(lev);
  const MGConfig& cfg = h_->config();

  const obs::LevelScope level_scope(lev);
  const obs::ScopedSpan level_span(obs::Kind::Level);

  if (lev == last) {
    const obs::KernelSpan span(obs::Kind::CoarseSolve);
    h_->coarse_solver().solve<CT>({D.f.data(), D.f.size()},
                                  {D.u.data(), D.u.size()});
    return;
  }

  const int bs = hl.A_full.block_size();
  DLevel& C = levels_[static_cast<std::size_t>(lev) + 1];

  if (!D.boxed) {
    // One-box level below the agglomeration boundary: replicate
    // MGPrecond::cycle on the global vectors (fused downstroke included) —
    // the coarse level is one box too (agglomeration is monotone).
    if (zero_guess) {
      set_zero(std::span<CT>{D.u.data(), D.u.size()});
    }
    for (int s = 0; s < cfg.nu1; ++s) {
      smooth_global(lev, /*forward=*/true);
    }
    const CT* q2 = D.q2.empty() ? nullptr : D.q2.data();
    if (cfg.fused_transfers != FusedTransfers::Off) {
      hl.A_stored.visit([&](const auto& m) {
        residual_restrict(m, std::span<const CT>{D.f.data(), D.f.size()},
                          std::span<const CT>{D.u.data(), D.u.size()}, q2,
                          hl.to_coarse,
                          std::span<CT>{C.f.data(), C.f.size()});
      });
    } else {
      hl.A_stored.visit([&](const auto& m) {
        residual(m, std::span<const CT>{D.f.data(), D.f.size()},
                 std::span<const CT>{D.u.data(), D.u.size()},
                 std::span<CT>{D.r.data(), D.r.size()}, q2);
      });
      restrict_to_coarse<CT>(hl.to_coarse, bs, {D.r.data(), D.r.size()},
                             {C.f.data(), C.f.size()});
    }
    cycle(lev + 1, /*zero_guess=*/true);
    if (shape_ == CycleShape::W && lev + 1 < last) {
      cycle(lev + 1, /*zero_guess=*/false);
    }
    prolong_add<CT>(hl.to_coarse, bs, {C.u.data(), C.u.size()},
                    {D.u.data(), D.u.size()});
    for (int s = 0; s < cfg.nu2; ++s) {
      smooth_global(lev, /*forward=*/false);
    }
    return;
  }

  const int nb = D.decomp.nboxes();
  if (zero_guess) {
    pool_->run(nb, [&](int b) {
      BoxData& bd = D.boxes[static_cast<std::size_t>(b)];
      set_zero(std::span<CT>{bd.u.data(), bd.u.size()});
    });
  }
  for (int s = 0; s < cfg.nu1; ++s) {
    smooth_boxed(lev, /*forward=*/true);
  }

  // Downstroke.  The decomposed path materializes the residual per box
  // (r ghosts are refreshed or gathered before any consumer reads them);
  // interior residual rows are bitwise identical to the global kernel's.
  exchange(lev, /*residual_field=*/false);
  pool_->run(nb, [&](int b) {
    const obs::LevelScope ls(lev);
    BoxData& bd = D.boxes[static_cast<std::size_t>(b)];
    const CT* q2 = bd.q2.empty() ? nullptr : bd.q2.data();
    bd.A.visit([&](const auto& m) {
      residual(m, std::span<const CT>{bd.f.data(), bd.f.size()},
               std::span<const CT>{bd.u.data(), bd.u.size()},
               std::span<CT>{bd.r.data(), bd.r.size()}, q2);
    });
  });
  if (C.boxed) {
    // Box grids match one-to-one (coarsened() keeps the grid): coarse box b
    // restricts from fine box b's interior+ghost residual.
    exchange(lev, /*residual_field=*/true);
    const obs::KernelSpan span(obs::Kind::Restrict);
    pool_->run(nb, [&](int b) {
      boxed_restrict<CT>(hl.to_coarse, bs, D.decomp.box(b),
                         D.boxes[static_cast<std::size_t>(b)].r.data(),
                         C.decomp.box(b),
                         C.boxes[static_cast<std::size_t>(b)].f.data());
    });
  } else {
    // Agglomeration boundary: gather the interior residual into the global
    // scratch and run the global restriction into the coarse global rhs.
    gather_interiors(lev, &BoxData::r, {D.r.data(), D.r.size()});
    restrict_to_coarse<CT>(hl.to_coarse, bs, {D.r.data(), D.r.size()},
                           {C.f.data(), C.f.size()});
  }

  cycle(lev + 1, /*zero_guess=*/true);
  if (shape_ == CycleShape::W && lev + 1 < last) {
    cycle(lev + 1, /*zero_guess=*/false);
  }

  if (C.boxed) {
    exchange(lev + 1, /*residual_field=*/false);
    const obs::KernelSpan span(obs::Kind::Prolong);
    pool_->run(nb, [&](int b) {
      const SubBox& cs = C.decomp.box(b);
      boxed_prolong_add<CT>(
          hl.to_coarse, bs,
          C.boxes[static_cast<std::size_t>(b)].u.data(), cs.local(),
          {cs.off(0), cs.off(1), cs.off(2)}, D.decomp.box(b),
          D.boxes[static_cast<std::size_t>(b)].u.data());
    });
  } else {
    const obs::KernelSpan span(obs::Kind::Prolong);
    pool_->run(nb, [&](int b) {
      boxed_prolong_add<CT>(hl.to_coarse, bs, C.u.data(),
                            hl.to_coarse.coarse, {0, 0, 0}, D.decomp.box(b),
                            D.boxes[static_cast<std::size_t>(b)].u.data());
    });
  }

  for (int s = 0; s < cfg.nu2; ++s) {
    smooth_boxed(lev, /*forward=*/false);
  }
}

template <class CT>
void DecompEngine<CT>::fcycle() {
  const int last = h_->nlevels() - 1;
  // Downward rhs injection (C.f = R D.f, no matrix pass).  The boxed path
  // stages the rhs through the r scratch so the existing r-halo exchange
  // provides the ghost values boxed_restrict reads; with raw halos every
  // coarse dof is bitwise identical to the global restriction's.
  for (int l = 0; l < last; ++l) {
    DLevel& D = levels_[static_cast<std::size_t>(l)];
    DLevel& C = levels_[static_cast<std::size_t>(l) + 1];
    const Level& hl = h_->level(l);
    const int bs = hl.A_full.block_size();
    if (!D.boxed) {
      // Below the agglomeration boundary (coarse is one box too).
      const obs::LevelScope level_scope(l);
      restrict_to_coarse<CT>(hl.to_coarse, bs, {D.f.data(), D.f.size()},
                             {C.f.data(), C.f.size()});
      continue;
    }
    const int nb = D.decomp.nboxes();
    if (C.boxed) {
      pool_->run(nb, [&](int b) {
        BoxData& bd = D.boxes[static_cast<std::size_t>(b)];
        copy_convert<CT, CT>({bd.f.data(), bd.f.size()},
                             {bd.r.data(), bd.r.size()});
      });
      exchange(l, /*residual_field=*/true);
      const obs::LevelScope level_scope(l);
      const obs::KernelSpan span(obs::Kind::Restrict);
      pool_->run(nb, [&](int b) {
        boxed_restrict<CT>(hl.to_coarse, bs, D.decomp.box(b),
                           D.boxes[static_cast<std::size_t>(b)].r.data(),
                           C.decomp.box(b),
                           C.boxes[static_cast<std::size_t>(b)].f.data());
      });
    } else {
      // Agglomeration boundary: gather interior rhs, restrict globally.
      const obs::LevelScope level_scope(l);
      gather_interiors(l, &BoxData::f, {D.r.data(), D.r.size()});
      restrict_to_coarse<CT>(hl.to_coarse, bs, {D.r.data(), D.r.size()},
                             {C.f.data(), C.f.size()});
    }
  }

  // Bootstrap: exact solve on the (always one-box) coarsest level.
  cycle(last, /*zero_guess=*/true);

  // Upward: FMG interpolation as the initial guess, one V sub-cycle per
  // level.  The coarse u halo is exchanged before the per-box prolongation
  // exactly like the V-cycle's pre-prolong exchange.
  for (int l = last - 1; l >= 0; --l) {
    DLevel& D = levels_[static_cast<std::size_t>(l)];
    DLevel& C = levels_[static_cast<std::size_t>(l) + 1];
    const Level& hl = h_->level(l);
    const int bs = hl.A_full.block_size();
    if (!D.boxed) {
      const obs::LevelScope level_scope(l);
      set_zero(std::span<CT>{D.u.data(), D.u.size()});
      prolong_add<CT>(hl.to_coarse, bs, {C.u.data(), C.u.size()},
                      {D.u.data(), D.u.size()});
    } else {
      const int nb = D.decomp.nboxes();
      pool_->run(nb, [&](int b) {
        BoxData& bd = D.boxes[static_cast<std::size_t>(b)];
        set_zero(std::span<CT>{bd.u.data(), bd.u.size()});
      });
      if (C.boxed) {
        exchange(l + 1, /*residual_field=*/false);
        const obs::LevelScope level_scope(l);
        const obs::KernelSpan span(obs::Kind::Prolong);
        pool_->run(nb, [&](int b) {
          const SubBox& cs = C.decomp.box(b);
          boxed_prolong_add<CT>(
              hl.to_coarse, bs,
              C.boxes[static_cast<std::size_t>(b)].u.data(), cs.local(),
              {cs.off(0), cs.off(1), cs.off(2)}, D.decomp.box(b),
              D.boxes[static_cast<std::size_t>(b)].u.data());
        });
      } else {
        const obs::LevelScope level_scope(l);
        const obs::KernelSpan span(obs::Kind::Prolong);
        pool_->run(nb, [&](int b) {
          boxed_prolong_add<CT>(hl.to_coarse, bs, C.u.data(),
                                hl.to_coarse.coarse, {0, 0, 0},
                                D.decomp.box(b),
                                D.boxes[static_cast<std::size_t>(b)].u.data());
        });
      }
    }
    cycle(l, /*zero_guess=*/false);
  }
}

template <class CT>
void DecompEngine<CT>::apply(std::span<const CT> r, std::span<CT> e) {
  DLevel& D0 = levels_.front();
  SMG_CHECK(r.size() == D0.f.size() && e.size() == D0.u.size(),
            "decomposed MG apply size mismatch");
  const std::span<const CT> q2w{wrap_q2_.data(), wrap_q2_.size()};
  if (h_->finest_wrapped()) {
    ewise_div<CT>(r, q2w, {D0.f.data(), D0.f.size()});
  } else {
    copy_convert<CT, CT>(r, {D0.f.data(), D0.f.size()});
  }
  scatter_to_boxes(0, {D0.f.data(), D0.f.size()});
  if (shape_ == CycleShape::F) {
    fcycle();
  } else {
    cycle(0, /*zero_guess=*/true);
  }
  gather_interiors(0, &BoxData::u, {D0.u.data(), D0.u.size()});
  if (h_->finest_wrapped()) {
    ewise_div<CT>({D0.u.data(), D0.u.size()}, q2w, e);
  } else {
    copy_convert<CT, CT>({D0.u.data(), D0.u.size()}, e);
  }
}

template class DecompEngine<float>;
template class DecompEngine<double>;

}  // namespace smg
