#include "core/hierarchy_cache.hpp"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace smg {

namespace {

struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ull;

  void bytes(const void* p, std::size_t n) noexcept {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ull;
    }
  }

  template <class T>
  void value(const T& v) noexcept {
    bytes(&v, sizeof(T));
  }

  template <class E>
  void enumval(E e) noexcept {
    const auto u = static_cast<std::int64_t>(e);
    value(u);
  }
};

}  // namespace

std::uint64_t hierarchy_fingerprint(const StructMat<double>& A,
                                    const MGConfig& cfg) noexcept {
  Fnv1a f;
  // Geometry, layout, stencil.
  const Box& box = A.box();
  f.value(box.nx);
  f.value(box.ny);
  f.value(box.nz);
  f.enumval(A.layout());
  f.value(A.block_size());
  const Stencil& st = A.stencil();
  f.value(st.ndiag());
  for (int d = 0; d < st.ndiag(); ++d) {
    const Offset& o = st.offset(d);
    f.value(o.dx);
    f.value(o.dy);
    f.value(o.dz);
  }
  // Matrix values: the full stored run (boundary-truncated entries are
  // stored zeros, so this is layout-stable for a fixed layout field).
  const std::size_t nvals = static_cast<std::size_t>(A.ncells()) *
                            static_cast<std::size_t>(st.ndiag()) *
                            static_cast<std::size_t>(A.block_size()) *
                            static_cast<std::size_t>(A.block_size());
  f.bytes(A.data(), nvals * sizeof(double));
  // Every MGConfig field that shapes the setup (all of them: a telemetry
  // or layout change must not alias a cached setup either).
  f.value(cfg.max_levels);
  f.value(cfg.min_coarse_cells);
  f.value(cfg.min_dim);
  f.enumval(cfg.cycle);
  f.value(cfg.aniso_coarsening);
  f.value(cfg.coarsen_threshold);
  f.enumval(cfg.smoother);
  f.value(cfg.nu1);
  f.value(cfg.nu2);
  f.value(cfg.jacobi_weight);
  f.enumval(cfg.smoother_parallel);
  f.enumval(cfg.fused_transfers);
  f.enumval(cfg.compute);
  f.enumval(cfg.storage);
  f.value(cfg.shift_levid);
  f.value(cfg.storage_ladder.size());
  for (const Prec r : cfg.storage_ladder) {
    f.enumval(r);
  }
  f.value(cfg.ladder_auto);
  f.value(cfg.ladder_min_level);
  f.enumval(cfg.scale);
  f.value(cfg.scale_safety);
  f.enumval(cfg.precision_policy);
  f.value(cfg.truncate_smoother);
  f.enumval(cfg.telemetry);
  f.enumval(cfg.metrics);
  f.enumval(cfg.layout);
  return f.h;
}

std::shared_ptr<MGHierarchy> HierarchyCache::get_or_build(
    const StructMat<double>& A, const MGConfig& cfg) {
  const std::uint64_t key = hierarchy_fingerprint(A, cfg);
  if (capacity_ > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->key == key) {
        lru_.splice(lru_.begin(), lru_, it);  // bump to MRU
        ++hits_;
        obs::record_cache_hit();
        return lru_.front().hierarchy;
      }
    }
    ++misses_;
    obs::record_cache_miss();
  }
  // Build outside the lock: setups are expensive and concurrent misses on
  // different problems should not serialize.
  Timer setup_timer;
  StructMat<double> copy = A;
  auto built = std::make_shared<MGHierarchy>(std::move(copy), cfg);
  obs::record_cache_setup(setup_timer.seconds());
  // Evicted fingerprints are collected under the lock but reported after
  // it drops, so the hook may re-enter the cache without deadlocking.
  std::vector<std::uint64_t> evicted;
  EvictionHook hook;
  if (capacity_ > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.push_front(Entry{key, built});
    while (lru_.size() > capacity_) {
      evicted.push_back(lru_.back().key);
      lru_.pop_back();
      ++evictions_;
    }
    obs::set_cache_entries(lru_.size());
    hook = eviction_hook_;
  }
  for (std::uint64_t evicted_key : evicted) {
    obs::record_cache_eviction();
    if (hook) {
      hook(evicted_key);
    }
  }
  return built;
}

void HierarchyCache::set_eviction_hook(EvictionHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  eviction_hook_ = std::move(hook);
}

std::size_t HierarchyCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void HierarchyCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

HierarchyCache& HierarchyCache::global() {
  static HierarchyCache* g = [] {
    std::size_t cap = 4;
    if (const char* env = std::getenv("SMG_HIERARCHY_CACHE");
        env != nullptr && *env != '\0') {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && v >= 0) {
        cap = static_cast<std::size_t>(v);
      }
    }
    return new HierarchyCache(cap);
  }();
  return *g;
}

}  // namespace smg
