#include "core/autopilot.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "core/mg_hierarchy.hpp"
#include "obs/metrics.hpp"

namespace smg {

namespace {

double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  return (end != s && std::isfinite(v)) ? v : fallback;
}

int env_int(const char* name, int fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  return end != s ? static_cast<int>(v) : fallback;
}

}  // namespace

FormatRange format_range(Prec p) noexcept {
  switch (p) {
    case Prec::FP16:
      return {65504.0, 0x1p-14, 0x1p-24};
    case Prec::BF16:
      // 8 exponent bits like FP32, 7 mantissa bits: max 0x1.FEp127,
      // subnormals bottom out at 2^(-126-7).
      return {0x1.FEp127, 0x1p-126, 0x1p-133};
    case Prec::FP8:
      // e4m3 with IEEE specials (fp/fp8.hpp): max finite 240, min normal
      // 2^-6, subnormals bottom out at 2^-9.
      return {240.0, 0x1p-6, 0x1p-9};
    case Prec::FP32:
      return {static_cast<double>(std::numeric_limits<float>::max()),
              static_cast<double>(std::numeric_limits<float>::min()),
              static_cast<double>(
                  std::numeric_limits<float>::denorm_min())};
    case Prec::FP64:
      return {std::numeric_limits<double>::max(),
              std::numeric_limits<double>::min(),
              std::numeric_limits<double>::denorm_min()};
  }
  return {0.0, 0.0, 0.0};
}

AutopilotThresholds AutopilotThresholds::from_env() {
  AutopilotThresholds t;
  t.max_ftz_frac = env_double("SMG_AUTOPILOT_FTZ", t.max_ftz_frac);
  t.max_subnormal_frac =
      env_double("SMG_AUTOPILOT_SUBNORMAL", t.max_subnormal_frac);
  t.repair_safety = env_double("SMG_AUTOPILOT_SAFETY", t.repair_safety);
  t.max_repairs = env_int("SMG_AUTOPILOT_MAX_REPAIRS", t.max_repairs);
  return t;
}

PrecisionPolicy effective_policy(PrecisionPolicy configured) {
  const char* s = std::getenv("SMG_PRECISION_POLICY");
  if (s == nullptr) {
    return configured;
  }
  const std::string_view v(s);
  if (v == "fixed") {
    return PrecisionPolicy::Fixed;
  }
  if (v == "auto") {
    return PrecisionPolicy::Auto;
  }
  if (v == "guarded") {
    return PrecisionPolicy::Guarded;
  }
  return configured;
}

StorageAnalysis analyze_storage(const StructMat<double>& A, Prec storage) {
  const FormatRange fr = format_range(storage);
  StorageAnalysis an;
  std::uint64_t over = 0;
  std::uint64_t ftz = 0;
  std::uint64_t sub = 0;
  double min_abs = std::numeric_limits<double>::infinity();
  for (const double v : A.values()) {
    ++an.values;
    if (v == 0.0) {
      continue;
    }
    ++an.nonzero;
    const double a = std::abs(v);
    an.max_abs = std::max(an.max_abs, a);
    min_abs = std::min(min_abs, a);
    if (!(a <= fr.max)) {
      ++over;  // also counts NaN/Inf inputs
    } else if (a < 0.5 * fr.denorm_min) {
      ++ftz;
    } else if (a < fr.min_normal) {
      ++sub;
    }
  }
  an.min_abs = std::isfinite(min_abs) ? min_abs : 0.0;
  const double nz = an.nonzero > 0 ? static_cast<double>(an.nonzero) : 1.0;
  an.overflow_frac = static_cast<double>(over) / nz;
  an.ftz_frac = static_cast<double>(ftz) / nz;
  an.subnormal_frac = static_cast<double>(sub) / nz;
  an.headroom = an.max_abs > 0.0
                    ? fr.max / an.max_abs
                    : std::numeric_limits<double>::infinity();
  return an;
}

bool storage_admissible(const StorageAnalysis& a,
                        const AutopilotThresholds& t) {
  return a.overflow_frac == 0.0 && a.ftz_frac <= t.max_ftz_frac &&
         a.subnormal_frac <= t.max_subnormal_frac;
}

RepairKind decide_repair(const LevelHealth& h, HealthEvent e,
                         const AutopilotThresholds& t) {
  if (!is_narrow_storage(h.storage)) {
    return RepairKind::None;  // already compute precision: nothing to repair
  }
  if (h.overflowed > 0) {
    // Stored infinities explain both failure modes.  A scaled level gets one
    // rescale at the clamped safety (more headroom, storage stays narrow);
    // an unscaled or already-rescaled level has only promotion left.
    return (h.scaled && !h.rescaled) ? RepairKind::Rescale
                                     : RepairKind::Promote;
  }
  const double n = h.values > 0 ? static_cast<double>(h.values) : 1.0;
  const double ftz = static_cast<double>(h.flushed) / n;
  const double sub = static_cast<double>(h.subnormal) / n;
  if (e == HealthEvent::NonFinite) {
    // The stored matrix is finite, so the NaN/Inf arose in compute — e.g. a
    // division against a flushed-to-zero entry.  Rescaling adds headroom at
    // the top of the range and pushes entries *further* into underflow, so
    // promotion is the only useful rung.
    return ftz > t.max_ftz_frac ? RepairKind::Promote : RepairKind::None;
  }
  // Stagnation: quantization noise.  Promote when the underflow evidence
  // marks this level as degraded.
  return (ftz > t.max_ftz_frac || sub > t.max_subnormal_frac)
             ? RepairKind::Promote
             : RepairKind::None;
}

double level_risk(const LevelHealth& h) {
  if (!is_narrow_storage(h.storage)) {
    return -1.0;
  }
  const double n = h.values > 0 ? static_cast<double>(h.values) : 1.0;
  // Overflow dominates flush-to-zero dominates subnormal landings.
  return 1e6 * static_cast<double>(h.overflowed) / n +
         1e3 * static_cast<double>(h.flushed) / n +
         static_cast<double>(h.subnormal) / n;
}

PrecisionGovernor::PrecisionGovernor(MGHierarchy* h) : h_(h) {}

LevelHealth PrecisionGovernor::health_of(int l) const {
  const Level& lev = h_->level(l);
  LevelHealth hl;
  hl.storage = lev.storage;
  hl.scaled = lev.scaled;
  hl.rescaled = l < static_cast<int>(rescaled_.size()) &&
                rescaled_[static_cast<std::size_t>(l)] != 0;
  hl.values = lev.A_full.values().size();
  hl.overflowed = lev.trunc.overflowed;
  hl.flushed = lev.trunc.underflowed;
  hl.subnormal = lev.trunc.subnormal;
  return hl;
}

std::vector<int> PrecisionGovernor::on_event(HealthEvent e) {
  std::vector<int> repaired;
  const AutopilotThresholds& t = h_->thresholds();
  const int n = h_->nlevels();
  rescaled_.resize(static_cast<std::size_t>(n), 0);
  const AutopilotTrigger trig = e == HealthEvent::NonFinite
                                    ? AutopilotTrigger::NonFinite
                                    : AutopilotTrigger::Stagnation;
  obs::record_autopilot_event(e == HealthEvent::NonFinite ? "non_finite"
                                                          : "stagnation");

  const auto execute = [&](int l, RepairKind k) {
    if (repairs_ >= t.max_repairs) {
      return false;
    }
    bool ok = false;
    bool promoted = false;
    // Promotion walks one rung up the storage ladder (FP8 -> 2-byte ->
    // compute) rather than jumping straight to compute: each step concedes
    // one halving of the bandwidth win, and a level that keeps misbehaving
    // climbs again on the next event.
    const Prec up = next_rung_up(h_->level(l).storage, h_->config().storage,
                                 h_->config().compute);
    if (k == RepairKind::Rescale) {
      ok = h_->rescale_level(l, t.repair_safety, trig);
      if (ok) {
        rescaled_[static_cast<std::size_t>(l)] = 1;
      } else {
        // No retained setup matrix to rescale from: fall through the ladder.
        ok = h_->promote_level(l, up, trig);
        promoted = ok;
      }
    } else if (k == RepairKind::Promote) {
      ok = h_->promote_level(l, up, trig);
      promoted = ok;
    }
    if (ok) {
      ++repairs_;
      repaired.push_back(l);
      obs::record_autopilot_repair(promoted ? "promote" : "rescale");
    }
    return ok;
  };

  if (e == HealthEvent::NonFinite) {
    // An Inf anywhere in the V-cycle poisons every vector it touches:
    // repair all implicated levels in one pass before the retry.
    for (int l = 0; l < n; ++l) {
      const RepairKind k = decide_repair(health_of(l), e, t);
      if (k != RepairKind::None) {
        execute(l, k);
      }
    }
  } else {
    // Stagnation is gradual: degrade one level per event, the most
    // suspicious first (deeper wins ties — coarse promotions cost the least
    // bandwidth, mirroring the §4.3 shift direction).
    int best = -1;
    RepairKind best_kind = RepairKind::None;
    double best_risk = -1.0;
    for (int l = 0; l < n; ++l) {
      const LevelHealth hl = health_of(l);
      const RepairKind k = decide_repair(hl, e, t);
      if (k == RepairKind::None) {
        continue;
      }
      const double risk = level_risk(hl);
      if (risk >= best_risk) {
        best = l;
        best_kind = k;
        best_risk = risk;
      }
    }
    if (best >= 0) {
      execute(best, best_kind);
    }
  }
  if (!repaired.empty()) {
    return repaired;
  }

  // No counters implicate any level (a NaN born in compute, or stagnation
  // with clean truncation stats).  Escalate: promote the deepest remaining
  // narrow level — the cheapest concession, and the §4.3 shift direction.
  for (int l = n - 1; l >= 0; --l) {
    if (is_narrow_storage(h_->level(l).storage) &&
        execute(l, RepairKind::Promote)) {
      break;
    }
  }
  return repaired;
}

}  // namespace smg
