// Smoother setup (Alg. 1 line 13).
//
// Smoother data is computed from the *high-precision* level operator before
// any truncation, then cast to the preconditioner compute precision.  For
// Jacobi and SymGS the data is the inverse of the per-cell diagonal block
// (a scalar reciprocal when block_size == 1).
#pragma once

#include "core/config.hpp"
#include "grid/wavefront.hpp"
#include "sgdia/struct_matrix.hpp"
#include "util/aligned.hpp"

namespace smg {

/// Row-major bs x bs inverse of the center block of every cell.
/// Fails hard on a singular diagonal block (the operator would not admit a
/// point smoother at all).
avec<double> compute_invdiag(const StructMat<double>& A);

/// Alg. 1 line 13's second half: smoother data is "calculated in iterative
/// precision followed by truncation to storage precision".  Round-trips each
/// value through `storage`, except where truncation would produce inf or
/// flush a nonzero to zero — those entries keep their high-precision value
/// (the guard an un-scalable quantity like 1/a_ii needs on far-out-of-range
/// problems).  Returns how many entries were guarded.
std::size_t truncate_smoother_data(avec<double>& data, Prec storage);

/// Decide and build the wavefront schedule driving one level's SymGS sweeps
/// (line granularity for the SOA-family layouts, cell granularity for AOS).
/// Returns an *invalid* schedule — meaning "use the sequential sweep" — when
/// `mode` is Sequential, when the stencil violates the wavefront bound, or
/// when the Auto heuristic judges the level too small to amortize the
/// per-level barriers (see DESIGN.md "Wavefront-parallel SymGS").
WavefrontSchedule plan_smoother_wavefront(const Box& box, const Stencil& st,
                                          Layout layout,
                                          SmootherParallel mode);

}  // namespace smg
