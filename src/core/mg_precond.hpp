// MG_solve_with_FP16 (Alg. 3): the V/W-cycle in preconditioner compute
// precision CT, reading matrices in storage precision with recover-and-
// rescale on the fly.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/decomp_engine.hpp"
#include "core/mg_hierarchy.hpp"
#include "obs/telemetry.hpp"
#include "solvers/precond.hpp"
#include "util/aligned.hpp"
#include "util/multivector.hpp"
#include "util/timer.hpp"

namespace smg {

/// One multigrid cycle application engine in compute precision CT.
/// All vectors (u, f, r on every level) live in CT — never below FP32
/// (guideline §3.4).
template <class CT>
class MGPrecond {
 public:
  explicit MGPrecond(const MGHierarchy* h);

  /// e = MG(r): one cycle from a zero initial guess.
  void apply(std::span<const CT> r, std::span<CT> e);

  /// E[c] = MG(R[c]) for every panel column in ONE pass over each level's
  /// stored matrix (throughput mode).  Column c is bitwise identical to a
  /// single-vector apply of that column; padding columns stay finite zero
  /// end to end.  Panel level buffers are (re)sized lazily on the first
  /// call with a new width.
  void apply_many(const MultiVector<CT>& r, MultiVector<CT>& e);

  /// Re-read level `l`'s q2/invdiag caches from the hierarchy after the
  /// autopilot rescaled or promoted it (the matrix itself is always read
  /// live through the hierarchy).
  void refresh_level(int l);

  const MGHierarchy& hierarchy() const noexcept { return *h_; }

  /// Cycle shape of the next apply.  Defaults to the hierarchy's effective
  /// config (SMG_CYCLE resolved at setup); fmg_solve flips it per phase
  /// (F for the bootstrap apply, V for polish).  W/F sub-cycles always
  /// recurse as the shape dictates: W revisits children, F runs V
  /// sub-cycles above its FMG-interpolated guesses.
  CycleShape cycle_shape() const noexcept { return shape_; }
  void set_cycle_shape(CycleShape s) noexcept;

 private:
  void cycle(int lev, bool zero_guess);
  void smooth(int lev, bool forward);
  void cycle_many(int lev, bool zero_guess);
  void smooth_many(int lev, bool forward);
  /// FMG F-cycle (docs/CYCLE_SHAPES.md): inject the rhs level by level to
  /// the coarsest (with a zero guess the residual IS the rhs, so the
  /// injection is a pure restriction — no matrix pass), solve there, then
  /// per level prolong the coarser solution as the initial guess and run
  /// one V sub-cycle.  Reuses the unmodified transfer/smoother kernels.
  void fcycle();
  void fcycle_many();
  /// Size the panel level buffers for width k (no-op when already sized).
  void ensure_panels(int k);

  struct LevelData {
    avec<CT> u, f, r;
    avec<CT> q2;       ///< empty unless the level was scaled
    avec<CT> invdiag;  ///< smoother blocks in compute precision
  };

  /// Panel (multi-RHS) counterparts of LevelData's u/f/r; empty until the
  /// first apply_many.  The r panel only exists on the unfused reference
  /// path and as the Jacobi ping-pong buffer, mirroring LevelData.
  struct PanelData {
    MultiVector<CT> u, f, r;
  };

  const MGHierarchy* h_;
  CycleShape shape_ = CycleShape::V;
  std::vector<LevelData> lv_;
  std::vector<PanelData> pv_;  ///< sized by ensure_panels (apply_many only)
  avec<CT> colbuf_f_, colbuf_u_;  ///< per-column coarse-solve scratch
  avec<CT> wrap_q2_;  ///< finest Q^{1/2} when hierarchy.finest_wrapped()
  /// Sharded (box-decomposed) cycle engine; constructed only when the
  /// effective decomposition (MGConfig::decomp / SMG_DECOMP) splits the
  /// finest level into more than one box.  apply() delegates to it;
  /// apply_many peels panel columns through it.
  std::unique_ptr<DecompEngine<CT>> engine_;
};

/// Adapts MGPrecond<CT> to the Krylov-facing PrecondBase<KT>: truncates the
/// incoming residual KT -> CT and recovers the error CT -> KT (Alg. 2
/// lines 4 and 6).  Owns the telemetry ledger of this preconditioner: the
/// always-on apply accumulator provides apply_seconds(), and when the
/// hierarchy config (or SMG_TELEMETRY) enables telemetry, each apply
/// installs the ledger so the cycle's level/kernel spans are recorded.
///
/// Under PrecisionPolicy::Guarded the adapter is the runtime half of the
/// precision autopilot: every apply probes its output for NaN/Inf and, on a
/// trip, asks the governor to rescale/promote the offending levels and
/// re-applies — the solver above never sees the transient.  Solver-detected
/// events (stagnation, non-finite recurrence terms) arrive via
/// report_health and run the same repair ladder.
template <class KT, class CT>
class MGPrecondAdapter final : public PrecondBase<KT> {
 public:
  explicit MGPrecondAdapter(MGHierarchy* h);

  void apply(std::span<const KT> r, std::span<KT> e) override;
  /// Panel apply: one k-column V-cycle streaming each level's matrix once.
  /// Same KT<->CT truncate/recover and the same Guarded probe-and-heal as
  /// the single-vector apply, panel-wide.
  void apply_many(const MultiVector<KT>& r, MultiVector<KT>& e) override;
  double apply_seconds() const override { return telemetry_.apply_seconds(); }
  void reset_timing() override { telemetry_.reset(); }
  obs::Telemetry* telemetry() override { return &telemetry_; }
  bool self_healing() const override { return guarded_; }
  bool report_health(HealthEvent e) override;
  CycleShape cycle_shape() const override { return mg_.cycle_shape(); }
  bool set_cycle_shape(CycleShape s) override {
    mg_.set_cycle_shape(s);
    return true;
  }

 private:
  /// Run the governor once; refresh the repaired levels' caches.
  bool heal(HealthEvent e);

  MGHierarchy* h_;
  MGPrecond<CT> mg_;
  avec<CT> rbuf_, ebuf_;
  MultiVector<CT> rpanel_, epanel_;  ///< apply_many conversion buffers
  obs::Telemetry telemetry_;
  PrecisionGovernor governor_;
  bool guarded_ = false;
};

/// Build the adapter matching the hierarchy's configured compute precision.
/// The hierarchy is non-const: under PrecisionPolicy::Guarded the adapter's
/// governor repairs its stored matrices in place.
template <class KT>
std::unique_ptr<PrecondBase<KT>> make_mg_precond(MGHierarchy& h);

extern template class MGPrecond<float>;
extern template class MGPrecond<double>;
extern template class MGPrecondAdapter<double, float>;
extern template class MGPrecondAdapter<double, double>;
extern template class MGPrecondAdapter<float, float>;
extern template std::unique_ptr<PrecondBase<double>> make_mg_precond<double>(
    MGHierarchy&);
extern template std::unique_ptr<PrecondBase<float>> make_mg_precond<float>(
    MGHierarchy&);

}  // namespace smg
