// Diagonal scaling for safe FP16 truncation (§4.1, Theorem 4.1).
//
// Given A with positive diagonal (M-matrix territory), choose
//   Q = diag(A) / G,   Â = Q^{-1/2} A Q^{-1/2}
// so every entry of Â is  G * a_ij / sqrt(a_ii * a_jj).  Overflow is avoided
// for any G < G_max = S * min_{ij} sqrt(a_ii a_jj) / |a_ij| with
// S = FP16_MAX.  (The paper states the bound with a max; the safe direction
// is the min over entries — the two coincide for the diagonally dominant
// matrices of interest where the worst ratio is attained at the diagonal.)
//
// For block matrices the per-dof diagonal a_rr is the (br,br) entry of the
// center block, and the same formula applies entrywise.
#pragma once

#include "sgdia/struct_matrix.hpp"
#include "util/aligned.hpp"

namespace smg {

struct ScaleResult {
  bool applied = false;
  /// False when a per-dof diagonal entry was zero, negative, or non-finite:
  /// sqrt(d_r d_c) is then undefined and no Q exists.  The matrix is left
  /// untouched; callers fall back to unscaled compute-precision storage.
  bool diag_ok = true;
  double G = 0.0;
  double gmax = 0.0;
  /// sqrt(q_r) per dof with q_r = a_rr / G; kernels recover
  /// A = diag(q2) Â diag(q2).  Empty when !applied.
  avec<double> q2;
};

/// True iff every per-dof diagonal entry is strictly positive and finite
/// (the precondition of Theorem 4.1's Q = diag(A)/G).
bool diagonal_positive(const StructMat<double>& A);

/// Largest admissible G per Theorem 4.1 for the given target upper bound S.
/// Returns +inf for an all-zero matrix and quiet NaN when the diagonal has a
/// zero/negative/non-finite entry (no admissible G exists).
double compute_gmax(const StructMat<double>& A, double S);

/// Scale A in place to Â = Q^{-1/2} A Q^{-1/2} with G = safety * G_max.
/// On a zero/negative/non-finite diagonal entry the matrix is left untouched
/// and the result reports applied == false, diag_ok == false.
ScaleResult scale_matrix(StructMat<double>& A, double safety, double S);

/// Largest absolute value over stored entries.
double max_abs_value(const StructMat<double>& A);

/// Smallest nonzero absolute value over stored entries (for underflow
/// diagnostics); +inf if the matrix is all-zero.
double min_abs_nonzero(const StructMat<double>& A);

}  // namespace smg
