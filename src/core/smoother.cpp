#include "core/smoother.hpp"

#include <algorithm>
#include <cmath>

#include "util/common.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace smg {

namespace {

/// In-place Gauss-Jordan inverse of a small row-major matrix.
void invert_block(double* a, int n) {
  double aug[8 * 16];
  SMG_CHECK(n <= 8, "block size > 8 unsupported");
  // Build [A | I].
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      aug[r * 2 * n + c] = a[r * n + c];
      aug[r * 2 * n + n + c] = (r == c) ? 1.0 : 0.0;
    }
  }
  for (int col = 0; col < n; ++col) {
    int p = col;
    double pmax = std::abs(aug[col * 2 * n + col]);
    for (int r = col + 1; r < n; ++r) {
      const double v = std::abs(aug[r * 2 * n + col]);
      if (v > pmax) {
        pmax = v;
        p = r;
      }
    }
    SMG_CHECK(pmax > 0.0, "singular diagonal block in smoother setup");
    if (p != col) {
      for (int c = 0; c < 2 * n; ++c) {
        std::swap(aug[col * 2 * n + c], aug[p * 2 * n + c]);
      }
    }
    const double inv = 1.0 / aug[col * 2 * n + col];
    for (int c = 0; c < 2 * n; ++c) {
      aug[col * 2 * n + c] *= inv;
    }
    for (int r = 0; r < n; ++r) {
      if (r == col) {
        continue;
      }
      const double m = aug[r * 2 * n + col];
      if (m != 0.0) {
        for (int c = 0; c < 2 * n; ++c) {
          aug[r * 2 * n + c] -= m * aug[col * 2 * n + c];
        }
      }
    }
  }
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      a[r * n + c] = aug[r * 2 * n + n + c];
    }
  }
}

}  // namespace

std::size_t truncate_smoother_data(avec<double>& data, Prec storage) {
  // Smoother-data precision floor: FP8 matrix levels round their inverse
  // diagonals at FP16, not FP8.  The data lives in double arrays either way
  // (this truncation is a rounding emulation, not a byte saving), and a
  // 3-bit mantissa would perturb the smoother far beyond the matrix
  // quantization it rides along with.
  if (storage == Prec::FP8) {
    storage = Prec::FP16;
  }
  if (storage != Prec::FP16 && storage != Prec::BF16) {
    if (storage == Prec::FP32) {
      for (auto& v : data) {
        v = static_cast<double>(static_cast<float>(v));
      }
    }
    return 0;
  }
  std::size_t guarded = 0;
  for (auto& v : data) {
    float r;
    bool safe;
    if (storage == Prec::FP16) {
      const half h(static_cast<float>(v));
      safe = h.is_finite() && !(v != 0.0 && h.is_zero());
      r = static_cast<float>(h);
    } else {
      const bfloat16 b(static_cast<float>(v));
      safe = b.is_finite() && !(v != 0.0 && b.is_zero());
      r = static_cast<float>(b);
    }
    if (safe) {
      v = static_cast<double>(r);
    } else {
      ++guarded;
    }
  }
  return guarded;
}

avec<double> compute_invdiag(const StructMat<double>& A) {
  const int center = A.stencil().center();
  SMG_CHECK(center >= 0, "smoother setup needs a diagonal entry");
  const int bs = A.block_size();
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
  avec<double> inv(static_cast<std::size_t>(A.ncells() * block2));
  double blk[64];
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    const double* src = A.data() + A.block_index(cell, center);
    for (std::int64_t q = 0; q < block2; ++q) {
      blk[q] = src[q];
    }
    invert_block(blk, bs);
    for (std::int64_t q = 0; q < block2; ++q) {
      inv[static_cast<std::size_t>(cell * block2 + q)] = blk[q];
    }
  }
  return inv;
}

WavefrontSchedule plan_smoother_wavefront(const Box& box, const Stencil& st,
                                          Layout layout,
                                          SmootherParallel mode) {
  if (mode == SmootherParallel::Sequential) {
    return {};
  }
  int threads = 1;
#if defined(_OPENMP)
  threads = omp_get_max_threads();
#endif
  if (mode == SmootherParallel::Auto && threads <= 1) {
    return {};
  }
  WavefrontSchedule wf = layout == Layout::AOS
                             ? WavefrontSchedule::cells(box, st)
                             : WavefrontSchedule::lines(box, st);
  if (!wf.valid()) {
    return {};  // stencil outside the wavefront bound: sequential fallback
  }
  if (mode == SmootherParallel::Auto) {
    // A wavefront level must feed every thread to beat the sequential
    // sweep's perfect locality; a line is a big work item (nx cells x
    // ndiag), a cell a tiny one, so the cell path needs far more slack
    // before the per-level barrier amortizes.
    const double floor_par = layout == Layout::AOS
                                 ? 16.0 * std::max(4, threads)
                                 : 1.0 * std::max(4, threads);
    if (wf.mean_parallelism() < floor_par) {
      return {};
    }
  }
  return wf;
}

}  // namespace smg
