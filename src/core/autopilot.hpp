// Precision autopilot (DESIGN.md §9): choose — and at runtime repair — the
// per-level storage precision instead of trusting a hand-set shift_levid.
//
// Two halves, selected by MGConfig::precision_policy:
//
//  * setup-time planner (Auto and Guarded) — after the FP64 Galerkin chain,
//    analyze each level's (scaled) value distribution against the narrow
//    target format: Theorem 4.1 headroom, predicted flush-to-zero and
//    subnormal fractions.  A level that would overflow is re-scaled with a
//    clamped safety; a level that would lose too many entries to underflow
//    shifts itself — and every coarser level, matching §4.3's monotone
//    shift — to compute precision.
//
//  * runtime governor (Guarded only) — the preconditioner adapter probes its
//    output for NaN/Inf and the Krylov solvers report stagnation
//    (HealthEvent).  The governor walks a repair ladder per offending level:
//    rescale-and-retry first (the scaled matrix is *linear* in G, so the
//    retained FP64 setup copy is rescaled by a scalar and re-truncated in
//    place — no Galerkin redo), promotion to compute precision second.  The
//    solver then retries from its last good state.
//
// Every action is recorded as an AutopilotDecision and exported through the
// telemetry report (obs/report.cpp, schema smg-telemetry-v3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "sgdia/struct_matrix.hpp"
#include "solvers/precond.hpp"

namespace smg {

class MGHierarchy;

/// Tunables of both autopilot halves.  Defaults are deliberately
/// conservative; SMG_AUTOPILOT_* environment variables override them at
/// hierarchy setup (see from_env and EXPERIMENTS.md).
struct AutopilotThresholds {
  /// Max tolerated fraction of nonzero entries flushed to zero by
  /// truncation before the planner shifts the level to compute precision.
  double max_ftz_frac = 0.01;
  /// Max tolerated fraction of entries landing subnormal (gradual precision
  /// loss, and a flush-to-zero hazard on FTZ hardware).
  double max_subnormal_frac = 0.25;
  /// Safety factor the repair ladder rescales with: G = repair_safety * G_max.
  double repair_safety = 0.25;
  /// Total runtime repairs a governor may perform before giving up.
  int max_repairs = 32;

  /// Defaults overridden by SMG_AUTOPILOT_FTZ, SMG_AUTOPILOT_SUBNORMAL,
  /// SMG_AUTOPILOT_SAFETY, SMG_AUTOPILOT_MAX_REPAIRS.
  static AutopilotThresholds from_env();
};

/// MGConfig::precision_policy, unless SMG_PRECISION_POLICY
/// (fixed | auto | guarded) overrides it at runtime.
PrecisionPolicy effective_policy(PrecisionPolicy configured);

/// Value-distribution analysis of one level's to-be-truncated matrix against
/// a storage format (the planner's evidence).
struct StorageAnalysis {
  std::uint64_t values = 0;     ///< stored entries inspected
  std::uint64_t nonzero = 0;    ///< nonzero entries among them
  double max_abs = 0.0;         ///< largest |a|; 0 if all-zero
  double min_abs = 0.0;         ///< smallest nonzero |a|; 0 if all-zero
  double overflow_frac = 0.0;   ///< nonzeros with |a| > format max
  double ftz_frac = 0.0;        ///< nonzeros rounding to zero
  double subnormal_frac = 0.0;  ///< nonzeros landing below the min normal
  double headroom = 0.0;        ///< format max / max_abs (inf if all-zero)
};

/// Range limits of a storage format: largest finite value, smallest normal,
/// smallest subnormal.  Truncation flushes |v| below half the smallest
/// subnormal to zero (round-to-nearest).  Each format has its own edges —
/// BF16 shares FP32's exponent range, so its overflow/subnormal thresholds
/// differ from FP16's by ~112 binades; FP8 e4m3 spans barely four decades.
struct FormatRange {
  double max = 0.0;
  double min_normal = 0.0;
  double denorm_min = 0.0;
};

FormatRange format_range(Prec p) noexcept;

StorageAnalysis analyze_storage(const StructMat<double>& A, Prec storage);

/// True when the analyzed distribution fits `storage` per the thresholds:
/// no overflow and acceptable flush-to-zero / subnormal fractions.
bool storage_admissible(const StorageAnalysis& a, const AutopilotThresholds& t);

enum class AutopilotTrigger {
  SetupPlan,       ///< setup-time analysis of a level's value distribution
  DegenerateDiag,  ///< zero/negative/non-finite diagonal: Theorem 4.1 void
  NonFinite,       ///< solver reported NaN/Inf in the preconditioner output
  Stagnation,      ///< solver reported a stalled residual window
};

constexpr std::string_view to_string(AutopilotTrigger t) noexcept {
  switch (t) {
    case AutopilotTrigger::SetupPlan:
      return "setup-plan";
    case AutopilotTrigger::DegenerateDiag:
      return "degenerate-diag";
    case AutopilotTrigger::NonFinite:
      return "non-finite";
    case AutopilotTrigger::Stagnation:
      return "stagnation";
  }
  return "?";
}

enum class AutopilotAction {
  Rescale,   ///< re-truncate at a clamped safety, keeping narrow storage
  Promote,   ///< re-truncate one rung up the ladder (costs bandwidth win)
  Shift,     ///< setup-time: move shift_levid down to this level (§4.3)
  Fallback,  ///< store unscaled in compute precision (unscalable diagonal)
  Rung,      ///< setup-time ladder planner chose a cheaper admissible rung
};

constexpr std::string_view to_string(AutopilotAction a) noexcept {
  switch (a) {
    case AutopilotAction::Rescale:
      return "rescale";
    case AutopilotAction::Promote:
      return "promote";
    case AutopilotAction::Shift:
      return "shift";
    case AutopilotAction::Fallback:
      return "fallback";
    case AutopilotAction::Rung:
      return "rung";
  }
  return "?";
}

/// One autopilot decision, as exported in the telemetry report.
struct AutopilotDecision {
  int level = -1;
  AutopilotTrigger trigger = AutopilotTrigger::SetupPlan;
  AutopilotAction action = AutopilotAction::Shift;
  Prec from = Prec::FP16;  ///< storage before the action
  Prec to = Prec::FP16;    ///< storage after (== from for Rescale)
  double safety = 0.0;     ///< G/G_max after a Rescale, else 0
  std::string reason;      ///< human-readable evidence
};

/// What the runtime governor knows about one level when an event fires
/// (plain data so repair decisions are table-testable without a hierarchy).
struct LevelHealth {
  Prec storage = Prec::FP64;
  bool scaled = false;            ///< stored matrix lives in Theorem 4.1 space
  bool rescaled = false;          ///< a runtime rescale was already spent here
  std::uint64_t values = 0;       ///< stored entries
  std::uint64_t overflowed = 0;   ///< truncation overflow events (cumulative)
  std::uint64_t flushed = 0;      ///< truncation flush-to-zero events
  std::uint64_t subnormal = 0;    ///< truncation subnormal landings
};

enum class RepairKind {
  None,     ///< leave the level alone
  Rescale,  ///< rescale-and-retry at the clamped repair safety
  Promote,  ///< promote storage to compute precision
};

constexpr std::string_view to_string(RepairKind k) noexcept {
  switch (k) {
    case RepairKind::None:
      return "none";
    case RepairKind::Rescale:
      return "rescale";
    case RepairKind::Promote:
      return "promote";
  }
  return "?";
}

/// The repair ladder for one level.  Narrow-stored levels with truncation
/// overflow get one rescale if they are scaled and still have it to spend,
/// promotion otherwise; a flush-to-zero storm promotes directly (rescaling
/// with *more* headroom only pushes entries further into underflow).
/// Compute-precision levels are never touched.
RepairKind decide_repair(const LevelHealth& h, HealthEvent e,
                         const AutopilotThresholds& t);

/// The governor's promote target: one rung *up* the storage ladder instead
/// of a jump straight to compute.  FP8 promotes to the configured 2-byte
/// format (FP16 when the config stores none), and the 2-byte formats
/// promote to `compute` — so a misbehaving FP8 level walks
/// FP8 -> FP16/BF16 -> FP32 across successive repairs, conceding bandwidth
/// one halving at a time.
constexpr Prec next_rung_up(Prec from, Prec storage, Prec compute) noexcept {
  if (bytes_of(from) == 1) {
    return bytes_of(storage) == 2 ? storage : Prec::FP16;
  }
  return compute;
}

/// Risk ranking used when no level is directly implicated (e.g. a NaN with
/// clean truncation counters) or when stagnation asks for a single victim:
/// higher means more likely to be the numerical culprit.
double level_risk(const LevelHealth& h);

/// Runtime half of the autopilot: owns the repair budget and the
/// rescale-before-promote ladder over a Guarded hierarchy.  Created by the
/// preconditioner adapter; all repairs go through MGHierarchy's
/// rescale_level/promote_level so the stored matrices, smoother data, and
/// decision log stay consistent.
class PrecisionGovernor {
 public:
  explicit PrecisionGovernor(MGHierarchy* h);

  /// Handle one health event: pick and execute repairs.  Returns the levels
  /// repaired; empty means nothing left to try (the caller should let the
  /// failure surface).
  std::vector<int> on_event(HealthEvent e);

  int repairs() const noexcept { return repairs_; }

 private:
  LevelHealth health_of(int l) const;

  MGHierarchy* h_;
  std::vector<std::uint8_t> rescaled_;  ///< per-level "rescale spent" flags
  int repairs_ = 0;
};

}  // namespace smg
