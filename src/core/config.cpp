#include "core/config.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace smg {

std::array<int, 3> effective_decomp(const MGConfig& cfg) noexcept {
  const char* env = std::getenv("SMG_DECOMP");
  if (env == nullptr || *env == '\0') {
    return cfg.decomp;
  }
  // Accept "2x2x2", "2,2,1", or "2 2 1".
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s", env);
  for (char* p = buf; *p != '\0'; ++p) {
    if (*p == 'x' || *p == 'X' || *p == ',') {
      *p = ' ';
    }
  }
  std::array<int, 3> d{1, 1, 1};
  if (std::sscanf(buf, "%d %d %d", &d[0], &d[1], &d[2]) != 3 || d[0] < 1 ||
      d[1] < 1 || d[2] < 1) {
    return cfg.decomp;
  }
  return d;
}

bool effective_halo_fp16(const MGConfig& cfg) noexcept {
  const char* env = std::getenv("SMG_HALO_FP16");
  if (env == nullptr || *env == '\0') {
    return cfg.halo_fp16;
  }
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "OFF") == 0 || std::strcmp(env, "false") == 0);
}

std::vector<Prec> effective_storage_ladder(const MGConfig& cfg,
                                           bool* auto_rungs) {
  if (auto_rungs != nullptr) {
    *auto_rungs = cfg.ladder_auto;
  }
  const char* env = std::getenv("SMG_STORAGE_LADDER");
  if (env == nullptr || *env == '\0') {
    return cfg.storage_ladder;
  }
  if (std::strcmp(env, "auto") == 0 || std::strcmp(env, "AUTO") == 0) {
    if (auto_rungs != nullptr) {
      *auto_rungs = true;
    }
    return {};
  }
  // Accept "fp16,fp8", "fp16 fp8", or "fp16:fp8".
  std::vector<Prec> ladder;
  std::string token;
  for (const char* p = env;; ++p) {
    if (*p != '\0' && *p != ',' && *p != ' ' && *p != ':') {
      token += *p;
      if (p[1] != '\0') {
        continue;
      }
    }
    if (!token.empty()) {
      Prec rung;
      if (!parse_prec(token, rung)) {
        return cfg.storage_ladder;  // unparseable: honor the config
      }
      ladder.push_back(rung);
      token.clear();
    }
    if (*p == '\0' || p[1] == '\0') {
      break;
    }
  }
  return ladder.empty() ? cfg.storage_ladder : ladder;
}

bool parse_cycle_shape(std::string_view s, CycleShape& out) noexcept {
  const auto eq = [&s](std::string_view want) {
    if (s.size() != want.size()) {
      return false;
    }
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      const char lc =
          (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
      if (lc != want[i]) {
        return false;
      }
    }
    return true;
  };
  if (eq("v")) {
    out = CycleShape::V;
    return true;
  }
  if (eq("w")) {
    out = CycleShape::W;
    return true;
  }
  if (eq("f") || eq("fmg")) {
    out = CycleShape::F;
    return true;
  }
  return false;
}

CycleShape effective_cycle(const MGConfig& cfg) noexcept {
  const char* env = std::getenv("SMG_CYCLE");
  if (env == nullptr || *env == '\0') {
    return cfg.cycle;
  }
  CycleShape s = cfg.cycle;
  parse_cycle_shape(env, s);
  return s;
}

std::int64_t cycle_visits(CycleShape shape, int level, int nlevels) noexcept {
  if (nlevels <= 1 || level <= 0) {
    return 1;
  }
  switch (shape) {
    case CycleShape::V:
      return 1;
    case CycleShape::W:
      // Each non-coarsest child is entered twice per parent visit; the
      // coarsest only once per parent visit (MGPrecond::cycle's recursion
      // guard `lev + 1 < last`), so its count repeats the parent's.
      return std::int64_t{1} << std::min({level, nlevels - 2, 62});
    case CycleShape::F:
      // One V sub-cycle rooted at every level j <= level reaches `level`
      // once each; the coarsest additionally gets the FMG bootstrap solve.
      return level < nlevels - 1 ? level + 1 : nlevels;
  }
  return 1;
}

int effective_ladder_min_level(const MGConfig& cfg) noexcept {
  const char* env = std::getenv("SMG_LADDER_MIN_LEVEL");
  if (env == nullptr || *env == '\0') {
    return cfg.ladder_min_level;
  }
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  return (end != env && v >= 0) ? static_cast<int>(v) : cfg.ladder_min_level;
}

std::string MGConfig::tag() const {
  // Non-default cycle shapes suffix the tag ("-wcycle"/"-fcycle"); V stays
  // unsuffixed so pre-PR-10 tags are unchanged.
  const auto cycle_suffix = [this](std::string s) {
    if (cycle == CycleShape::W) {
      s += "-wcycle";
    } else if (cycle == CycleShape::F) {
      s += "-fcycle";
    }
    return s;
  };
  const auto code = [](Prec p) -> std::string {
    switch (p) {
      case Prec::FP64:
        return "64";
      case Prec::FP32:
        return "32";
      case Prec::FP16:
        return "16";
      case Prec::BF16:
        return "b16";
      case Prec::FP8:
        return "8";
    }
    return "?";
  };
  std::string s = "P";
  s += (compute == Prec::FP64) ? "64" : "32";
  s += "D";
  if (!storage_ladder.empty()) {
    // Explicit ladder: list the rungs ("P32D[16.16.8]-setup-scale").
    s += "[";
    for (std::size_t i = 0; i < storage_ladder.size(); ++i) {
      if (i > 0) {
        s += ".";
      }
      s += code(storage_ladder[i]);
    }
    s += "]";
    bool narrow = false;
    for (const Prec r : storage_ladder) {
      narrow = narrow || is_narrow_storage(r);
    }
    if (narrow) {
      switch (scale) {
        case ScaleMode::None:
          s += "-none";
          break;
        case ScaleMode::SetupThenScale:
          s += "-setup-scale";
          break;
        case ScaleMode::ScaleThenSetup:
          s += "-scale-setup";
          break;
      }
    }
    if (ladder_auto) {
      s += "-ladderauto";
    }
    if (precision_policy != PrecisionPolicy::Fixed) {
      s += "-";
      s += to_string(precision_policy);
    }
    return cycle_suffix(std::move(s));
  }
  // The D component must agree with storage_at(): shift_levid <= 0 stores
  // *every* level in compute precision, so the configured `storage` never
  // materializes and the tag must not advertise it (nor a scale mode, which
  // only applies to narrow-stored levels).
  const Prec eff = shift_levid <= 0 ? compute : storage;
  s += code(eff);
  if (is_narrow_storage(eff)) {
    switch (scale) {
      case ScaleMode::None:
        s += "-none";
        break;
      case ScaleMode::SetupThenScale:
        s += "-setup-scale";
        break;
      case ScaleMode::ScaleThenSetup:
        s += "-scale-setup";
        break;
    }
    // Partial shift: levels >= shift_levid fall back to compute precision.
    if (shift_levid > 0 && shift_levid != INT_MAX) {
      s += "-shift" + std::to_string(shift_levid);
    }
  }
  if (ladder_auto) {
    s += "-ladderauto";
  }
  if (precision_policy != PrecisionPolicy::Fixed) {
    s += "-";
    s += to_string(precision_policy);
  }
  return cycle_suffix(std::move(s));
}

MGConfig config_full64() {
  MGConfig cfg;
  cfg.compute = Prec::FP64;
  cfg.storage = Prec::FP64;
  cfg.scale = ScaleMode::None;
  return cfg;
}

MGConfig config_k64p32d32() {
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage = Prec::FP32;
  cfg.scale = ScaleMode::None;
  return cfg;
}

MGConfig config_d16_none() {
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage = Prec::FP16;
  cfg.scale = ScaleMode::None;
  return cfg;
}

MGConfig config_d16_scale_setup() {
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage = Prec::FP16;
  cfg.scale = ScaleMode::ScaleThenSetup;
  return cfg;
}

MGConfig config_d16_setup_scale() {
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage = Prec::FP16;
  cfg.scale = ScaleMode::SetupThenScale;
  return cfg;
}

}  // namespace smg
