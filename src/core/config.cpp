#include "core/config.hpp"

namespace smg {

std::string MGConfig::tag() const {
  std::string s = "P";
  s += (compute == Prec::FP64) ? "64" : "32";
  s += "D";
  // The D component must agree with storage_at(): shift_levid <= 0 stores
  // *every* level in compute precision, so the configured `storage` never
  // materializes and the tag must not advertise it (nor a scale mode, which
  // only applies to 2-byte-stored levels).
  const Prec eff = shift_levid <= 0 ? compute : storage;
  switch (eff) {
    case Prec::FP64:
      s += "64";
      break;
    case Prec::FP32:
      s += "32";
      break;
    case Prec::FP16:
      s += "16";
      break;
    case Prec::BF16:
      s += "b16";
      break;
  }
  if (eff == Prec::FP16 || eff == Prec::BF16) {
    switch (scale) {
      case ScaleMode::None:
        s += "-none";
        break;
      case ScaleMode::SetupThenScale:
        s += "-setup-scale";
        break;
      case ScaleMode::ScaleThenSetup:
        s += "-scale-setup";
        break;
    }
    // Partial shift: levels >= shift_levid fall back to compute precision.
    if (shift_levid > 0 && shift_levid != INT_MAX) {
      s += "-shift" + std::to_string(shift_levid);
    }
  }
  if (precision_policy != PrecisionPolicy::Fixed) {
    s += "-";
    s += to_string(precision_policy);
  }
  return s;
}

MGConfig config_full64() {
  MGConfig cfg;
  cfg.compute = Prec::FP64;
  cfg.storage = Prec::FP64;
  cfg.scale = ScaleMode::None;
  return cfg;
}

MGConfig config_k64p32d32() {
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage = Prec::FP32;
  cfg.scale = ScaleMode::None;
  return cfg;
}

MGConfig config_d16_none() {
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage = Prec::FP16;
  cfg.scale = ScaleMode::None;
  return cfg;
}

MGConfig config_d16_scale_setup() {
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage = Prec::FP16;
  cfg.scale = ScaleMode::ScaleThenSetup;
  return cfg;
}

MGConfig config_d16_setup_scale() {
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage = Prec::FP16;
  cfg.scale = ScaleMode::SetupThenScale;
  return cfg;
}

}  // namespace smg
