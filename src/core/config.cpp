#include "core/config.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace smg {

std::array<int, 3> effective_decomp(const MGConfig& cfg) noexcept {
  const char* env = std::getenv("SMG_DECOMP");
  if (env == nullptr || *env == '\0') {
    return cfg.decomp;
  }
  // Accept "2x2x2", "2,2,1", or "2 2 1".
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s", env);
  for (char* p = buf; *p != '\0'; ++p) {
    if (*p == 'x' || *p == 'X' || *p == ',') {
      *p = ' ';
    }
  }
  std::array<int, 3> d{1, 1, 1};
  if (std::sscanf(buf, "%d %d %d", &d[0], &d[1], &d[2]) != 3 || d[0] < 1 ||
      d[1] < 1 || d[2] < 1) {
    return cfg.decomp;
  }
  return d;
}

bool effective_halo_fp16(const MGConfig& cfg) noexcept {
  const char* env = std::getenv("SMG_HALO_FP16");
  if (env == nullptr || *env == '\0') {
    return cfg.halo_fp16;
  }
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "OFF") == 0 || std::strcmp(env, "false") == 0);
}

std::string MGConfig::tag() const {
  std::string s = "P";
  s += (compute == Prec::FP64) ? "64" : "32";
  s += "D";
  // The D component must agree with storage_at(): shift_levid <= 0 stores
  // *every* level in compute precision, so the configured `storage` never
  // materializes and the tag must not advertise it (nor a scale mode, which
  // only applies to 2-byte-stored levels).
  const Prec eff = shift_levid <= 0 ? compute : storage;
  switch (eff) {
    case Prec::FP64:
      s += "64";
      break;
    case Prec::FP32:
      s += "32";
      break;
    case Prec::FP16:
      s += "16";
      break;
    case Prec::BF16:
      s += "b16";
      break;
  }
  if (eff == Prec::FP16 || eff == Prec::BF16) {
    switch (scale) {
      case ScaleMode::None:
        s += "-none";
        break;
      case ScaleMode::SetupThenScale:
        s += "-setup-scale";
        break;
      case ScaleMode::ScaleThenSetup:
        s += "-scale-setup";
        break;
    }
    // Partial shift: levels >= shift_levid fall back to compute precision.
    if (shift_levid > 0 && shift_levid != INT_MAX) {
      s += "-shift" + std::to_string(shift_levid);
    }
  }
  if (precision_policy != PrecisionPolicy::Fixed) {
    s += "-";
    s += to_string(precision_policy);
  }
  return s;
}

MGConfig config_full64() {
  MGConfig cfg;
  cfg.compute = Prec::FP64;
  cfg.storage = Prec::FP64;
  cfg.scale = ScaleMode::None;
  return cfg;
}

MGConfig config_k64p32d32() {
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage = Prec::FP32;
  cfg.scale = ScaleMode::None;
  return cfg;
}

MGConfig config_d16_none() {
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage = Prec::FP16;
  cfg.scale = ScaleMode::None;
  return cfg;
}

MGConfig config_d16_scale_setup() {
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage = Prec::FP16;
  cfg.scale = ScaleMode::ScaleThenSetup;
  return cfg;
}

MGConfig config_d16_setup_scale() {
  MGConfig cfg;
  cfg.compute = Prec::FP32;
  cfg.storage = Prec::FP16;
  cfg.scale = ScaleMode::SetupThenScale;
  return cfg;
}

}  // namespace smg
