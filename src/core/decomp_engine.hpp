// Sharded (box-decomposed) V/W-cycle engine (DESIGN.md §11).
//
// Mirrors MGPrecond<CT>::cycle over a hierarchy whose levels are split into
// sub-boxes with ghost rings (grid/box_decomp.hpp): per-box copies of each
// level's stored matrix and vectors, halo exchanges (grid/halo.hpp) before
// every ghost-reading kernel, one persistent pool worker per box
// (util/thread_pool.hpp) with NUMA first-touch placement of per-box storage
// — each box's matrix and vectors are allocated and filled inside its
// owning worker's task, so first-touch puts the pages on that worker's node.
//
// The per-box kernels are the *unmodified* single-box kernels, made correct
// on interior+ghost extents by the ghost-identity-row construction:
//   * ghost rows of the local matrix are identity (diag 1, offdiag 0 —
//     exactly representable in every storage precision),
//   * local invdiag has identity blocks and local q2 is 1 at ghost cells,
//   * before each sweep the local rhs is refreshed with f_ghost := u_ghost.
// A GS or Jacobi update of a ghost row then reproduces u_ghost bitwise, so
// sweeping the whole local box leaves ghosts at their exchanged values and
// interior rows see exactly the coupling they would in the global sweep.
//
// Identity contracts (tested in tests/core/test_decomp_engine.cpp):
//   * decomp {1,1,1} never constructs this engine — MGPrecond runs its
//     pre-existing path, bitwise identical by construction;
//   * with the Jacobi smoother and raw (compute-precision) halos, the
//     decomposed cycle is bitwise identical to the undecomposed one at any
//     box count: Jacobi, residual, and the transfers are pointwise/gather
//     kernels whose per-dof arithmetic order the per-box loops replicate;
//   * decomposed SymGS is block-Jacobi between boxes (per-box sequential
//     sweeps, Jacobi-style coupling at box boundaries via the exchanged
//     halos) — legitimately different iterates, same asymptotic rate.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "core/mg_hierarchy.hpp"
#include "grid/box_decomp.hpp"
#include "grid/halo.hpp"
#include "obs/metrics.hpp"
#include "util/aligned.hpp"
#include "util/thread_pool.hpp"

namespace smg {

template <class CT>
class DecompEngine {
 public:
  /// `nb` is the finest-level box grid (coarser levels derive from it, see
  /// perfmodel/halo.hpp decomp_chain); `halo_fp16` selects the FP16-packed
  /// wire format.  The engine is only worth constructing when the finest
  /// level actually decomposes — check with `active()`.
  DecompEngine(const MGHierarchy* h, std::array<int, 3> nb, bool halo_fp16);

  /// True when at least the finest level runs boxed.
  bool active() const noexcept {
    return !levels_.empty() && levels_.front().boxed;
  }

  /// e = MG(r), same contract as MGPrecond::apply (including the
  /// finest-wrapped Q^{-1/2} handling).
  void apply(std::span<const CT> r, std::span<CT> e);

  /// Rebuild level l's per-box matrix/invdiag/q2 copies after the autopilot
  /// rescaled or promoted the hierarchy level.
  void refresh_level(int l);

  /// Cycle shape of the next apply (mirrors MGPrecond::set_cycle_shape;
  /// MGPrecond forwards so the decomposed and plain paths always agree).
  CycleShape cycle_shape() const noexcept { return shape_; }
  void set_cycle_shape(CycleShape s) noexcept { shape_ = s; }

  const BoxDecomp& decomp(int l) const noexcept {
    return levels_[static_cast<std::size_t>(l)].decomp;
  }

 private:
  /// Per-box level state.  All vectors are local-dof indexed
  /// (interior + ghosts); built inside the owning pool worker.
  struct BoxData {
    AnyMat A;          ///< local matrix, ghost rows identity
    avec<CT> u, f, r;  ///< iterate, rhs, residual/Jacobi buffer
    avec<CT> invdiag;  ///< identity blocks at ghost cells
    avec<CT> q2;       ///< empty unless the level is scaled (1 at ghosts)
  };

  struct DLevel {
    BoxDecomp decomp;
    bool boxed = false;
    HaloPlan plan;                ///< empty when !boxed
    HaloExchange hx;              ///< shared by the u and r exchanges
    std::vector<BoxData> boxes;   ///< empty when !boxed
    /// Cached service-metrics handles (null when metrics were off at
    /// construction): per-exchange updates must not take the registry
    /// lock.  The model gauge is set once from the perfmodel halo ledger.
    obs::HaloLevelMetrics metrics;
    /// Global-vector storage: the working set of an unboxed level, and the
    /// gather scratch for transfers across the agglomeration boundary.
    avec<CT> u, f, r;
    avec<CT> q2, invdiag;  ///< global copies (unboxed levels / gather path)
  };

  void build_level(int l);
  /// (Re)build one box's local matrix/invdiag/q2 — runs on the owning pool
  /// worker so first-touch places the storage on its NUMA node.
  void build_box(int l, int b);
  /// Refresh an unboxed level's global q2/invdiag copies (MGPrecond-style).
  void refresh_global(int l);
  void cycle(int lev, bool zero_guess);
  /// FMG F-cycle over the boxed hierarchy: rhs injection restricts per box
  /// (through the r-field halo), the FMG interpolation prolongs per box
  /// (through the coarse u halo), V sub-cycles reuse cycle() unchanged.
  void fcycle();
  void smooth_boxed(int lev, bool forward);
  void smooth_global(int lev, bool forward);
  /// Exchange every box's `u` (or `r`) halo on level `lev`, recording the
  /// pack/unpack spans and the level's halo-byte telemetry.
  void exchange(int lev, bool residual_field);
  /// f_ghost := u_ghost on one box (the identity-row rhs refresh).
  void refresh_ghost_rhs(int lev, int b);
  void scatter_to_boxes(int lev, std::span<const CT> src);
  void gather_interiors(int lev, const avec<CT> BoxData::*field,
                        std::span<CT> dst);

  const MGHierarchy* h_;
  CycleShape shape_ = CycleShape::V;
  ThreadPool* pool_;
  MemcpyExchanger ex_;  ///< in-process transport backend
  std::vector<DLevel> levels_;
  std::size_t wire_bytes_ = sizeof(CT);
  avec<CT> wrap_q2_;  ///< finest Q^{1/2} when hierarchy.finest_wrapped()
};

extern template class DecompEngine<float>;
extern template class DecompEngine<double>;

}  // namespace smg
