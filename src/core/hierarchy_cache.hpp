// Setup/apply split: a keyed cache of MGHierarchy setups.
//
// Hierarchy setup (Galerkin chain, smoother data, coarsest LU — Alg. 1) is
// the expensive, once-per-problem half of the preconditioner; the V-cycle
// apply is the cheap, once-per-solve half.  Throughput mode (solve_many,
// fig_many_rhs) reuses one setup across many right-hand sides and many
// solver invocations, so setups are cached behind a fingerprint of
// everything that determines them:
//
//   grid box dims, layout, block size, stencil offsets, the FP64 matrix
//   value bytes, and every MGConfig field
//
// hashed FNV-1a 64-bit.  Two problems with the same fingerprint get the
// same std::shared_ptr<MGHierarchy>; eviction is LRU.
//
// The SMG_HIERARCHY_CACHE environment variable sizes the process-global
// cache: unset or empty keeps the default capacity (4 setups), a positive
// integer overrides it, and 0 disables caching (every lookup builds a
// fresh hierarchy and stores nothing).
//
// Sharing note: under PrecisionPolicy::Guarded the runtime governor
// repairs the hierarchy's stored matrices IN PLACE, so every adapter
// holding the shared setup sees the repair — which is exactly the
// semantics a repaired level should have.  The cache itself is
// mutex-guarded; concurrent get_or_build calls are safe (a fingerprint
// race at worst builds the same setup twice and keeps one).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "core/mg_hierarchy.hpp"

namespace smg {

/// FNV-1a fingerprint of (grid geometry, layout, block size, stencil,
/// matrix values, config) — everything MGHierarchy setup depends on.
std::uint64_t hierarchy_fingerprint(const StructMat<double>& A,
                                    const MGConfig& cfg) noexcept;

class HierarchyCache {
 public:
  /// `capacity` 0 disables caching: get_or_build always builds and never
  /// stores.
  explicit HierarchyCache(std::size_t capacity) : capacity_(capacity) {}

  /// Return the cached setup for (A, cfg), building (and caching) it on a
  /// miss.  The matrix is only copied on a miss.
  std::shared_ptr<MGHierarchy> get_or_build(const StructMat<double>& A,
                                            const MGConfig& cfg);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const;
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  void clear();

  /// Observer of LRU evictions: called once per evicted entry with its
  /// fingerprint, in eviction order (least recently used first), AFTER
  /// the cache releases its lock — the hook may call back into the cache.
  /// One hook per cache; replace with nullptr to remove.
  using EvictionHook = std::function<void(std::uint64_t key)>;
  void set_eviction_hook(EvictionHook hook);

  /// Process-global cache, sized once from SMG_HIERARCHY_CACHE on first
  /// use (default capacity 4; "0" disables).
  static HierarchyCache& global();

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<MGHierarchy> hierarchy;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  EvictionHook eviction_hook_;
};

}  // namespace smg
