#include "core/coarsen.hpp"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "util/common.hpp"

namespace smg {

namespace {

/// Per-dimension lookup tables for the triple product, computed once per
/// coarsening instead of per cell (parents_of in the innermost loop used to
/// dominate the whole setup phase).
struct DimTables {
  /// R-support of coarse index c: up to 3 (fine index, weight) pairs.
  struct RSup {
    int fi[3];
    double w[3];
    int count;
  };
  /// P-parents of fine index f: up to 2 (coarse index, weight) pairs.
  struct PPar {
    int ci[2];
    double w[2];
    int count;
  };
  std::vector<RSup> rsup;   // size: coarse extent
  std::vector<PPar> ppar;   // size: fine extent
};

DimTables make_tables(int nf, int nc, bool coarsened) {
  DimTables t;
  t.rsup.resize(static_cast<std::size_t>(nc));
  t.ppar.resize(static_cast<std::size_t>(nf));
  for (int c = 0; c < nc; ++c) {
    auto& s = t.rsup[static_cast<std::size_t>(c)];
    s.count = 0;
    if (!coarsened) {
      s.fi[0] = c;
      s.w[0] = 1.0;
      s.count = 1;
      continue;
    }
    const int center = 2 * c;
    const int offs[3] = {center - 1, center, center + 1};
    const double ws[3] = {0.5, 1.0, 0.5};
    for (int q = 0; q < 3; ++q) {
      if (offs[q] >= 0 && offs[q] < nf) {
        s.fi[s.count] = offs[q];
        s.w[s.count] = ws[q];
        ++s.count;
      }
    }
  }
  for (int f = 0; f < nf; ++f) {
    const auto p = detail::parents_of(f, nc, coarsened);
    auto& d = t.ppar[static_cast<std::size_t>(f)];
    d.count = p.count;
    for (int q = 0; q < p.count; ++q) {
      d.ci[q] = p.idx[q];
      d.w[q] = p.w[q];
    }
  }
  return t;
}

}  // namespace

std::array<double, 3> coupling_strengths(const StructMat<double>& A) {
  std::array<double, 3> s = {0.0, 0.0, 0.0};
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
  for (int d = 0; d < st.ndiag(); ++d) {
    const Offset& o = st.offset(d);
    const int l1 =
        std::abs(int(o.dx)) + std::abs(int(o.dy)) + std::abs(int(o.dz));
    if (l1 != 1) {
      continue;  // center, edge, and corner entries carry mixed directions
    }
    const int dim = o.dx != 0 ? 0 : (o.dy != 0 ? 1 : 2);
    double mass = 0.0;
    for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
      const double* blk = A.data() + A.block_index(cell, d);
      for (std::int64_t q = 0; q < block2; ++q) {
        mass += std::abs(blk[q]);
      }
    }
    s[static_cast<std::size_t>(dim)] += mass;
  }
  return s;
}

StructMat<double> galerkin_coarsen(const StructMat<double>& A,
                                   const Coarsening& c) {
  SMG_CHECK(A.box() == c.fine, "coarsening geometry mismatch");
  const Box& fine = c.fine;
  const Box& coarse = c.coarse;
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  const int nd = st.ndiag();
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;

  StructMat<double> Ac(coarse, Stencil::make(Pattern::P3d27), bs, A.layout());
  const Stencil& cst = Ac.stencil();

  // Coarse offset (dx,dy,dz) in {-1,0,1}^3 -> index in the 3d27 stencil.
  int cdiag_of[3][3][3];
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        cdiag_of[dz + 1][dy + 1][dx + 1] = cst.find(dx, dy, dz);
        SMG_CHECK(cdiag_of[dz + 1][dy + 1][dx + 1] >= 0, "3d27 incomplete");
      }
    }
  }

  const DimTables tx = make_tables(fine.nx, coarse.nx, c.mask[0]);
  const DimTables ty = make_tables(fine.ny, coarse.ny, c.mask[1]);
  const DimTables tz = make_tables(fine.nz, coarse.nz, c.mask[2]);
  const double rscale = c.restrict_scale();

  // Hoist the stencil offsets into flat arrays.
  int odx[32], ody[32], odz[32];
  SMG_CHECK(nd <= 32, "stencil wider than 3x3x3 is unsupported");
  for (int d = 0; d < nd; ++d) {
    odx[d] = st.offset(d).dx;
    ody[d] = st.offset(d).dy;
    odz[d] = st.offset(d).dz;
  }

  // ---- stencil collapse for interior coarse cells (StructMG-style) ----
  // Away from boundaries, every coarse cell applies the *same* linear map
  // from the fine stencil values in its 2I-neighborhood to its 27 coarse
  // entries.  Precompute that map once as a flat tuple list:
  //   read fine value at (cell 2I + t, diag d)  ->  scatter to coarse diag
  //   cd with weight w.
  // The generic per-cell path below remains for boundary cells (and non-SOA
  // chains), where clipping makes the weights cell-dependent.
  struct Read {
    std::int64_t aoff;  ///< value offset relative to block (2I, diag 0)
    int ntarget;
  };
  struct Target {
    int cd;
    double w;
  };
  std::vector<Read> reads;
  std::vector<Target> targets;
  const bool collapse_ok = A.layout() == Layout::SOA;
  if (collapse_ok) {
    // Relative P-parents of a fine offset g (in [-2,2]) for one dimension.
    const auto rel_parents = [](int g, bool coarsened, int out_ci[2],
                                double out_w[2]) {
      if (!coarsened) {
        out_ci[0] = g;
        out_w[0] = 1.0;
        return 1;
      }
      if ((g & 1) == 0) {
        out_ci[0] = g / 2;
        out_w[0] = 1.0;
        return 1;
      }
      // Odd offsets: round toward both neighbors with weight 1/2.  (g-1)/2
      // with C++ truncation handles negative g correctly for g in {-1, 1}:
      const int lo = (g - 1) / 2 + ((g < 0 && (g - 1) % 2 != 0) ? -1 : 0);
      out_ci[0] = lo;
      out_w[0] = 0.5;
      out_ci[1] = lo + 1;
      out_w[1] = 0.5;
      return 2;
    };
    const int tx0 = c.mask[0] ? -1 : 0, tx1 = c.mask[0] ? 1 : 0;
    const int ty0 = c.mask[1] ? -1 : 0, ty1 = c.mask[1] ? 1 : 0;
    const int tz0 = c.mask[2] ? -1 : 0, tz1 = c.mask[2] ? 1 : 0;
    for (int tzv = tz0; tzv <= tz1; ++tzv) {
      for (int tyv = ty0; tyv <= ty1; ++tyv) {
        for (int txv = tx0; txv <= tx1; ++txv) {
          const double wr =
              rscale * (txv == 0 ? 1.0 : 0.5) * (tyv == 0 ? 1.0 : 0.5) *
              (tzv == 0 ? 1.0 : 0.5);
          const std::int64_t foff =
              txv + static_cast<std::int64_t>(fine.nx) *
                        (tyv + static_cast<std::int64_t>(fine.ny) * tzv);
          for (int d = 0; d < nd; ++d) {
            Read rd;
            rd.aoff =
                (static_cast<std::int64_t>(d) * A.ncells() + foff) * block2;
            rd.ntarget = 0;
            int cix[2], ciy[2], ciz[2];
            double wx[2], wy[2], wz[2];
            const int npx =
                rel_parents(txv + odx[d], c.mask[0], cix, wx);
            const int npy =
                rel_parents(tyv + ody[d], c.mask[1], ciy, wy);
            const int npz =
                rel_parents(tzv + odz[d], c.mask[2], ciz, wz);
            for (int a = 0; a < npz; ++a) {
              for (int bq = 0; bq < npy; ++bq) {
                for (int e = 0; e < npx; ++e) {
                  SMG_CHECK(std::abs(cix[e]) <= 1 && std::abs(ciy[bq]) <= 1 &&
                                std::abs(ciz[a]) <= 1,
                            "collapse target outside 3d27");
                  targets.push_back(
                      {cdiag_of[ciz[a] + 1][ciy[bq] + 1][cix[e] + 1],
                       wr * wz[a] * wy[bq] * wx[e]});
                  ++rd.ntarget;
                }
              }
            }
            reads.push_back(rd);
          }
        }
      }
    }
  }
  // Interior range where the collapse map is exact (no clipping anywhere).
  const auto interior = [&](int idx, int nc_d) {
    return idx >= 1 && idx <= nc_d - 2;
  };

#pragma omp parallel for collapse(2) schedule(static)
  for (int ck = 0; ck < coarse.nz; ++ck) {
    for (int cj = 0; cj < coarse.ny; ++cj) {
      const auto& sz = tz.rsup[static_cast<std::size_t>(ck)];
      const auto& sy = ty.rsup[static_cast<std::size_t>(cj)];
      for (int ci = 0; ci < coarse.nx; ++ci) {
        const std::int64_t ccell = coarse.idx(ci, cj, ck);
        if (collapse_ok && interior(ci, coarse.nx) &&
            interior(cj, coarse.ny) && interior(ck, coarse.nz)) {
          const int fi = c.mask[0] ? 2 * ci : ci;
          const int fj = c.mask[1] ? 2 * cj : cj;
          const int fk = c.mask[2] ? 2 * ck : ck;
          const std::int64_t fbase = fine.idx(fi, fj, fk) * block2;
          double acc[27 * 64];
          const int nacc = 27 * static_cast<int>(block2);
          for (int q = 0; q < nacc; ++q) {
            acc[q] = 0.0;
          }
          const double* SMG_RESTRICT av = A.data();
          const Target* SMG_RESTRICT tg = targets.data();
          std::size_t tpos = 0;
          for (const Read& rd : reads) {
            const double* SMG_RESTRICT ablk = av + fbase + rd.aoff;
            for (int q = 0; q < rd.ntarget; ++q, ++tpos) {
              const int cd = tg[tpos].cd;
              const double w = tg[tpos].w;
              for (std::int64_t bb = 0; bb < block2; ++bb) {
                acc[cd * block2 + bb] += w * ablk[bb];
              }
            }
          }
          for (int cd = 0; cd < 27; ++cd) {
            double* cblk = Ac.data() + Ac.block_index(ccell, cd);
            for (std::int64_t bb = 0; bb < block2; ++bb) {
              cblk[bb] = acc[cd * block2 + bb];
            }
          }
          continue;
        }
        const auto& sx = tx.rsup[static_cast<std::size_t>(ci)];
        // A_c(I, J-I) += rscale * R(I,i) * A(i, i+s) * P(i+s, J)
        for (int a = 0; a < sz.count; ++a) {
          const int fk = sz.fi[a];
          for (int bq = 0; bq < sy.count; ++bq) {
            const int fj = sy.fi[bq];
            const double wzy = sz.w[a] * sy.w[bq];
            for (int e = 0; e < sx.count; ++e) {
              const int fi = sx.fi[e];
              const double wr = rscale * wzy * sx.w[e];
              const std::int64_t fcell = fine.idx(fi, fj, fk);
              for (int d = 0; d < nd; ++d) {
                const int gi = fi + odx[d];
                const int gj = fj + ody[d];
                const int gk = fk + odz[d];
                if (static_cast<unsigned>(gi) >=
                        static_cast<unsigned>(fine.nx) ||
                    static_cast<unsigned>(gj) >=
                        static_cast<unsigned>(fine.ny) ||
                    static_cast<unsigned>(gk) >=
                        static_cast<unsigned>(fine.nz)) {
                  continue;
                }
                const double* ablk = A.data() + A.block_index(fcell, d);
                const auto& pi = tx.ppar[static_cast<std::size_t>(gi)];
                const auto& pj = ty.ppar[static_cast<std::size_t>(gj)];
                const auto& pk = tz.ppar[static_cast<std::size_t>(gk)];
                for (int qa = 0; qa < pk.count; ++qa) {
                  const int ddz = pk.ci[qa] - ck;
                  if (ddz < -1 || ddz > 1) {
                    continue;
                  }
                  for (int qb = 0; qb < pj.count; ++qb) {
                    const int ddy = pj.ci[qb] - cj;
                    if (ddy < -1 || ddy > 1) {
                      continue;
                    }
                    const double wzy2 = pk.w[qa] * pj.w[qb];
                    for (int qc = 0; qc < pi.count; ++qc) {
                      const int ddx = pi.ci[qc] - ci;
                      if (ddx < -1 || ddx > 1) {
                        continue;
                      }
                      const double w = wr * wzy2 * pi.w[qc];
                      const int cd = cdiag_of[ddz + 1][ddy + 1][ddx + 1];
                      double* cblk = Ac.data() + Ac.block_index(ccell, cd);
                      for (std::int64_t q = 0; q < block2; ++q) {
                        cblk[q] += w * ablk[q];
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return Ac;
}

}  // namespace smg
