#include "grid/box_decomp.hpp"

#include <algorithm>

#include "core/transfer.hpp"

namespace smg {

namespace {

std::vector<int> balanced_cuts(int n, int nb) {
  std::vector<int> cuts(static_cast<std::size_t>(nb) + 1);
  for (int b = 0; b <= nb; ++b) {
    // round(b * n / nb) keeps every box within one cell of n/nb.
    cuts[static_cast<std::size_t>(b)] =
        static_cast<int>((static_cast<std::int64_t>(b) * n + nb / 2) / nb);
  }
  cuts.front() = 0;
  cuts.back() = n;
  return cuts;
}

}  // namespace

void BoxDecomp::build_boxes() {
  boxes_.clear();
  boxes_.reserve(static_cast<std::size_t>(nb_[0]) * nb_[1] * nb_[2]);
  const int gdim[3] = {global_.nx, global_.ny, global_.nz};
  for (int bz = 0; bz < nb_[2]; ++bz) {
    for (int by = 0; by < nb_[1]; ++by) {
      for (int bx = 0; bx < nb_[0]; ++bx) {
        SubBox s;
        s.id = {bx, by, bz};
        const int bid[3] = {bx, by, bz};
        for (int d = 0; d < 3; ++d) {
          const auto& c = cuts_[static_cast<std::size_t>(d)];
          const int lo = c[static_cast<std::size_t>(bid[d])];
          const int hi = c[static_cast<std::size_t>(bid[d]) + 1];
          s.lo[static_cast<std::size_t>(d)] = lo;
          s.n[static_cast<std::size_t>(d)] = hi - lo;
          // Ghosts exist only toward in-domain neighbors: clip at the
          // global boundary (HPGMG-style).
          s.glo[static_cast<std::size_t>(d)] = std::min(ghost_, lo);
          s.ghi[static_cast<std::size_t>(d)] =
              std::min(ghost_, gdim[d] - hi);
        }
        boxes_.push_back(s);
      }
    }
  }
}

BoxDecomp BoxDecomp::make(const Box& global, std::array<int, 3> nb,
                          int ghost) {
  SMG_CHECK(nb[0] >= 1 && nb[1] >= 1 && nb[2] >= 1,
            "box decomposition counts must be positive");
  SMG_CHECK(ghost >= 0, "ghost width must be non-negative");
  BoxDecomp d;
  d.global_ = global;
  d.nb_ = nb;
  d.ghost_ = ghost;
  d.cuts_[0] = balanced_cuts(global.nx, nb[0]);
  d.cuts_[1] = balanced_cuts(global.ny, nb[1]);
  d.cuts_[2] = balanced_cuts(global.nz, nb[2]);
  d.build_boxes();
  return d;
}

BoxDecomp BoxDecomp::coarsened(const Coarsening& c, int ghost) const {
  SMG_CHECK(c.fine == global_, "coarsened: decomposition box != fine box");
  BoxDecomp d;
  d.global_ = c.coarse;
  d.nb_ = nb_;
  d.ghost_ = ghost;
  for (int dim = 0; dim < 3; ++dim) {
    const auto& fc = cuts_[static_cast<std::size_t>(dim)];
    auto& cc = d.cuts_[static_cast<std::size_t>(dim)];
    cc.resize(fc.size());
    for (std::size_t i = 0; i < fc.size(); ++i) {
      // ceil(cut / 2) on coarsened dims: the fine children 2I-1..2I+1 of
      // every coarse interior cell then stay within the matching fine
      // sub-box's interior plus a 1-wide ghost (see header).
      cc[i] = c.mask[static_cast<std::size_t>(dim)] ? (fc[i] + 1) / 2 : fc[i];
    }
  }
  d.build_boxes();
  return d;
}

std::int64_t BoxDecomp::min_box_cells() const noexcept {
  std::int64_t m = global_.size();
  for (const SubBox& s : boxes_) {
    m = std::min(m, s.interior_cells());
  }
  return m;
}

bool BoxDecomp::all_nonempty() const noexcept {
  return std::none_of(boxes_.begin(), boxes_.end(),
                      [](const SubBox& s) { return s.empty(); });
}

bool needs_agglomeration(const BoxDecomp& d, std::int64_t min_box_cells) {
  if (d.nboxes() <= 1) {
    return false;
  }
  if (!d.all_nonempty() || d.min_box_cells() < min_box_cells) {
    return true;
  }
  for (int dim = 0; dim < 3; ++dim) {
    if (d.nb()[static_cast<std::size_t>(dim)] <= 1) {
      continue;
    }
    for (const SubBox& s : d.boxes()) {
      if (s.n[static_cast<std::size_t>(dim)] < d.ghost()) {
        return true;  // ghost ring would span past the adjacent box
      }
    }
  }
  return false;
}

BoxDecomp agglomerate_if_needed(BoxDecomp d, std::int64_t min_box_cells) {
  if (needs_agglomeration(d, min_box_cells)) {
    // Agglomerate: a level this small is swept as one box (no ghosts).
    return BoxDecomp::make(d.global(), {1, 1, 1}, 0);
  }
  return d;
}

BoxDecomp decompose_level(const Box& global, std::array<int, 3> nb, int ghost,
                          std::int64_t min_box_cells) {
  return agglomerate_if_needed(BoxDecomp::make(global, nb, ghost),
                               min_box_cells);
}

}  // namespace smg
