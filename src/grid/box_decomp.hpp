// HPGMG-style box decomposition of one MG level.
//
// A level's global Box is partitioned into a regular nbx x nby x nbz grid of
// sub-boxes; each sub-box stores its interior cells plus a ghost ring wide
// enough for the level's stencil radius (1 for every 3dXX pattern and for
// the trilinear transfers).  Ghosts exist only toward an in-domain neighbor:
// a sub-box touching the global boundary is clipped there, exactly as HPGMG
// clips its 128^3 blocks.  Cut points per dimension are balanced
// (round(b * n / nb)), and the coarse level's decomposition is *derived*
// from the fine one through the Coarsening so that the fine children of
// every coarse interior cell land inside the fine sub-box's interior+ghost
// region — the invariant that keeps per-box restriction and prolongation
// local to one box plus one exchanged halo (see DESIGN.md §11).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "grid/box.hpp"
#include "util/common.hpp"

namespace smg {

struct Coarsening;  // core/transfer.hpp

/// One sub-box: interior extents in global coordinates plus the per-side
/// ghost widths actually materialized (0 at the global boundary).
struct SubBox {
  std::array<int, 3> lo{};     ///< global coordinate of first interior cell
  std::array<int, 3> n{};      ///< interior extents
  std::array<int, 3> glo{};    ///< ghost width on the low side, per dim
  std::array<int, 3> ghi{};    ///< ghost width on the high side, per dim
  std::array<int, 3> id{};     ///< (bx, by, bz) position in the box grid

  /// Local storage box: interior + materialized ghosts.
  Box local() const noexcept {
    return Box{n[0] + glo[0] + ghi[0], n[1] + glo[1] + ghi[1],
               n[2] + glo[2] + ghi[2]};
  }

  std::int64_t interior_cells() const noexcept {
    return static_cast<std::int64_t>(n[0]) * n[1] * n[2];
  }

  /// Local cell index of *interior* coordinate (ii, ij, ik) in [0, n).
  std::int64_t local_idx(int ii, int ij, int ik) const noexcept {
    return local().idx(ii + glo[0], ij + glo[1], ik + glo[2]);
  }

  /// Global -> local coordinate shift per dimension: local = global - off.
  int off(int d) const noexcept { return lo[d] - glo[d]; }

  bool empty() const noexcept { return n[0] == 0 || n[1] == 0 || n[2] == 0; }
};

/// Regular partition of a global Box with per-box ghost regions.
class BoxDecomp {
 public:
  BoxDecomp() = default;

  /// Partition `global` into nb[0] x nb[1] x nb[2] sub-boxes with balanced
  /// cut points and ghost width `ghost` (clipped at the domain boundary).
  static BoxDecomp make(const Box& global, std::array<int, 3> nb, int ghost);

  /// Derive the coarse decomposition matching this one through `c` (same
  /// box grid; cut point mapping cut -> ceil(cut / 2) on coarsened dims,
  /// identity on uncoarsened ones).
  BoxDecomp coarsened(const Coarsening& c, int ghost) const;

  const Box& global() const noexcept { return global_; }
  const std::array<int, 3>& nb() const noexcept { return nb_; }
  int ghost() const noexcept { return ghost_; }
  int nboxes() const noexcept { return static_cast<int>(boxes_.size()); }
  bool decomposed() const noexcept { return nboxes() > 1; }

  const SubBox& box(int b) const noexcept {
    return boxes_[static_cast<std::size_t>(b)];
  }
  const std::vector<SubBox>& boxes() const noexcept { return boxes_; }

  /// Box id at grid position (bx, by, bz); -1 when outside the box grid.
  int box_at(int bx, int by, int bz) const noexcept {
    if (bx < 0 || bx >= nb_[0] || by < 0 || by >= nb_[1] || bz < 0 ||
        bz >= nb_[2]) {
      return -1;
    }
    return bx + nb_[0] * (by + nb_[1] * bz);
  }

  /// Neighbor of box b in direction (dx, dy, dz) in {-1,0,1}^3; -1 if none.
  int neighbor(int b, int dx, int dy, int dz) const noexcept {
    const SubBox& s = boxes_[static_cast<std::size_t>(b)];
    return box_at(s.id[0] + dx, s.id[1] + dy, s.id[2] + dz);
  }

  /// Smallest sub-box interior cell count (agglomeration heuristic input).
  std::int64_t min_box_cells() const noexcept;
  /// True when every sub-box has a nonempty interior.
  bool all_nonempty() const noexcept;

  /// Cut points of one dimension: nb+1 ascending values, first 0, last n.
  const std::vector<int>& cuts(int dim) const noexcept {
    return cuts_[static_cast<std::size_t>(dim)];
  }

 private:
  void build_boxes();

  Box global_{};
  std::array<int, 3> nb_{1, 1, 1};
  int ghost_ = 1;
  std::array<std::vector<int>, 3> cuts_;
  std::vector<SubBox> boxes_;
};

/// True when `d` must collapse to a single box: some sub-box is empty, the
/// smallest interior is below `min_box_cells`, or a split dimension has a
/// sub-box thinner than the ghost width (a ghost ring may only ever source
/// from the directly adjacent box — the halo plan asserts this).
bool needs_agglomeration(const BoxDecomp& d, std::int64_t min_box_cells);

/// `d` itself, or the {1,1,1} zero-ghost decomposition of its global box
/// when needs_agglomeration says so.  Applied to both the finest level's
/// requested grid and every derived (coarsened) one, so agglomeration is
/// monotone down the hierarchy.
BoxDecomp agglomerate_if_needed(BoxDecomp d, std::int64_t min_box_cells);

/// Decomposition policy: the requested box grid, agglomerated to {1,1,1}
/// once the level is too small to pay for ghosts and synchronization
/// (HPGMG agglomerates the same way: coarse levels collapse onto fewer and
/// finally one block).
BoxDecomp decompose_level(const Box& global, std::array<int, 3> nb, int ghost,
                          std::int64_t min_box_cells);

}  // namespace smg
