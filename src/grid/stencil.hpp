// Stencil patterns for SG-DIA structured matrices.
//
// The paper's benchmarks span 3d7 / 3d15 / 3d19 / 3d27 patterns (Table 3)
// and the lower-triangular sub-patterns 3d4 / 3d10 / 3d14 used by the
// SpTRSV kernel ablation (Fig. 7): the forward sweep of SymGS touches only
// the offsets that precede the center in lexicographic order, which for
// 3d7/3d19/3d27 are 3/9/13 offsets plus the diagonal.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace smg {

/// Relative neighbor offset of a stencil entry.
struct Offset {
  std::int8_t dx = 0;
  std::int8_t dy = 0;
  std::int8_t dz = 0;

  constexpr bool operator==(const Offset&) const noexcept = default;

  /// Lexicographic comparison in (dz, dy, dx): the sweep order of SymGS.
  constexpr bool before_center() const noexcept {
    if (dz != 0) {
      return dz < 0;
    }
    if (dy != 0) {
      return dy < 0;
    }
    return dx < 0;
  }
  constexpr bool is_center() const noexcept {
    return dx == 0 && dy == 0 && dz == 0;
  }
};

enum class Pattern {
  P3d7,   ///< center + 6 faces
  P3d15,  ///< center + 6 faces + 8 corners (solid-3D)
  P3d19,  ///< center + 6 faces + 12 edges (weather)
  P3d27,  ///< full 3x3x3 neighborhood
  P3d4,   ///< lower part of 3d7 incl. center (SpTRSV)
  P3d10,  ///< lower part of 3d19 incl. center (SpTRSV)
  P3d14,  ///< lower part of 3d27 incl. center (SpTRSV)
};

std::string_view to_string(Pattern p) noexcept;

/// Ordered list of stencil offsets; center position is tracked explicitly.
class Stencil {
 public:
  Stencil() = default;
  explicit Stencil(std::vector<Offset> offsets);

  static Stencil make(Pattern p);

  int ndiag() const noexcept { return static_cast<int>(offsets_.size()); }
  const Offset& offset(int d) const noexcept { return offsets_[d]; }
  const std::vector<Offset>& offsets() const noexcept { return offsets_; }

  /// Index of the (0,0,0) entry; -1 if the pattern has no center.
  int center() const noexcept { return center_; }

  /// Indices of entries strictly before the center in sweep order.
  const std::vector<int>& lower() const noexcept { return lower_; }
  /// Indices of entries strictly after the center in sweep order.
  const std::vector<int>& upper() const noexcept { return upper_; }

  /// Find the index of a given offset; -1 if absent.
  int find(int dx, int dy, int dz) const noexcept;

  /// True if for every offset the negated offset is also present.
  bool symmetric_pattern() const noexcept;

  bool operator==(const Stencil& o) const noexcept {
    return offsets_ == o.offsets_;
  }

 private:
  std::vector<Offset> offsets_;
  std::vector<int> lower_;
  std::vector<int> upper_;
  int center_ = -1;
};

}  // namespace smg
