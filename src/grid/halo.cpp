#include "grid/halo.hpp"

namespace smg {

namespace {

/// Global-coordinate ghost rectangle of box `s` on side `dir`; returns false
/// when the rectangle is empty (clipped at the domain boundary).
bool ghost_rect(const SubBox& s, const std::array<int, 3>& dir,
                std::array<int, 3>& lo, std::array<int, 3>& n) {
  for (int d = 0; d < 3; ++d) {
    switch (dir[static_cast<std::size_t>(d)]) {
      case -1:
        lo[static_cast<std::size_t>(d)] =
            s.lo[static_cast<std::size_t>(d)] - s.glo[static_cast<std::size_t>(d)];
        n[static_cast<std::size_t>(d)] = s.glo[static_cast<std::size_t>(d)];
        break;
      case 1:
        lo[static_cast<std::size_t>(d)] =
            s.lo[static_cast<std::size_t>(d)] + s.n[static_cast<std::size_t>(d)];
        n[static_cast<std::size_t>(d)] = s.ghi[static_cast<std::size_t>(d)];
        break;
      default:
        lo[static_cast<std::size_t>(d)] = s.lo[static_cast<std::size_t>(d)];
        n[static_cast<std::size_t>(d)] = s.n[static_cast<std::size_t>(d)];
        break;
    }
    if (n[static_cast<std::size_t>(d)] <= 0) {
      return false;
    }
  }
  return true;
}

std::int64_t rect_cells(const std::array<int, 3>& n) {
  return static_cast<std::int64_t>(n[0]) * n[1] * n[2];
}

}  // namespace

HaloPlan::HaloPlan(const BoxDecomp& d, int block_size) {
  bs_ = block_size;
  boxes_.resize(static_cast<std::size_t>(d.nboxes()));
  // Message list per box, recv-centric: one message per nonempty ghost side.
  for (int b = 0; b < d.nboxes(); ++b) {
    const SubBox& s = d.box(b);
    BoxMsgs& bm = boxes_[static_cast<std::size_t>(b)];
    bm.local = s.local();
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) {
            continue;
          }
          const std::array<int, 3> dir{dx, dy, dz};
          std::array<int, 3> glo{};
          std::array<int, 3> gn{};
          if (!ghost_rect(s, dir, glo, gn)) {
            continue;
          }
          const int peer = d.neighbor(b, dx, dy, dz);
          SMG_CHECK(peer >= 0, "halo plan: ghost region without a neighbor");
          const SubBox& p = d.box(peer);
          // The received rectangle must sit inside the peer's interior: the
          // ghost width never exceeds the adjacent box's extent (enforced by
          // the agglomeration policy in decompose_level).
          for (int e = 0; e < 3; ++e) {
            SMG_CHECK(glo[static_cast<std::size_t>(e)] >=
                              p.lo[static_cast<std::size_t>(e)] &&
                          glo[static_cast<std::size_t>(e)] +
                                  gn[static_cast<std::size_t>(e)] <=
                              p.lo[static_cast<std::size_t>(e)] +
                                  p.n[static_cast<std::size_t>(e)],
                      "halo plan: ghost region spans a non-adjacent box");
          }
          HaloMsg m;
          m.dir = dir;
          m.peer = peer;
          for (int e = 0; e < 3; ++e) {
            m.recv_lo[static_cast<std::size_t>(e)] =
                glo[static_cast<std::size_t>(e)] - s.off(e);
            m.recv_n[static_cast<std::size_t>(e)] =
                gn[static_cast<std::size_t>(e)];
          }
          m.recv_values = rect_cells(gn) * bs_;
          // The matching send rectangle is the peer's ghost region on the
          // mirrored side — it lies in *this* box's interior and is packed
          // here for the peer's mirror message.
          std::array<int, 3> slo{};
          std::array<int, 3> sn{};
          const std::array<int, 3> mdir{-dx, -dy, -dz};
          const bool has = ghost_rect(p, mdir, slo, sn);
          SMG_CHECK(has, "halo plan: mirror ghost region empty");
          for (int e = 0; e < 3; ++e) {
            m.send_lo[static_cast<std::size_t>(e)] =
                slo[static_cast<std::size_t>(e)] - s.off(e);
            m.send_n[static_cast<std::size_t>(e)] =
                sn[static_cast<std::size_t>(e)];
          }
          m.send_values = rect_cells(sn) * bs_;
          m.recv_off = bm.recv_values;
          m.send_off = bm.send_values;
          bm.recv_values += m.recv_values;
          bm.send_values += m.send_values;
          bm.msgs.push_back(m);
        }
      }
    }
    total_recv_ += bm.recv_values;
  }
  // Resolve each message's offset into its peer's send pool: the peer packs
  // our ghost rectangle in its mirror message (dir == -dir).
  for (auto& bm : boxes_) {
    for (HaloMsg& m : bm.msgs) {
      const BoxMsgs& pm = boxes_[static_cast<std::size_t>(m.peer)];
      bool found = false;
      for (const HaloMsg& q : pm.msgs) {
        if (q.dir[0] == -m.dir[0] && q.dir[1] == -m.dir[1] &&
            q.dir[2] == -m.dir[2]) {
          SMG_CHECK(q.send_values == m.recv_values,
                    "halo plan: mismatched mirror message size");
          m.peer_send_off = q.send_off;
          found = true;
          break;
        }
      }
      SMG_CHECK(found, "halo plan: missing mirror message");
    }
  }
}

void HaloExchange::init(const HaloPlan* plan, std::size_t wire_bytes) {
  SMG_CHECK(plan != nullptr, "HaloExchange::init: null plan");
  plan_ = plan;
  wire_bytes_ = wire_bytes;
  const int nb = plan->nboxes();
  send_.assign(static_cast<std::size_t>(nb), {});
  recv_.assign(static_cast<std::size_t>(nb), {});
  for (int b = 0; b < nb; ++b) {
    send_[static_cast<std::size_t>(b)].resize(
        static_cast<std::size_t>(plan->send_pool_values(b)) * wire_bytes);
    recv_[static_cast<std::size_t>(b)].resize(
        static_cast<std::size_t>(plan->recv_pool_values(b)) * wire_bytes);
  }
  // Pool pointers are stable from here on: precompute the transport list.
  transfers_.clear();
  for (int b = 0; b < nb; ++b) {
    for (const HaloMsg& m : plan->msgs(b)) {
      Exchanger::Transfer t;
      t.dst = recv_[static_cast<std::size_t>(b)].data() +
              static_cast<std::size_t>(m.recv_off) * wire_bytes;
      t.src = send_[static_cast<std::size_t>(m.peer)].data() +
              static_cast<std::size_t>(m.peer_send_off) * wire_bytes;
      t.bytes = static_cast<std::size_t>(m.recv_values) * wire_bytes;
      transfers_.push_back(t);
    }
  }
  reset_ledger();
}

}  // namespace smg
