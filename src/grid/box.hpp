// 3D structured grid box with lexicographic (x fastest) cell indexing.
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace smg {

/// A structured nx*ny*nz grid.  Cell (i,j,k) has linear index
/// i + nx*(j + ny*k); x is the unit-stride dimension (SIMD dimension).
struct Box {
  int nx = 0;
  int ny = 0;
  int nz = 0;

  constexpr std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(nx) * ny * nz;
  }

  constexpr bool contains(int i, int j, int k) const noexcept {
    return i >= 0 && i < nx && j >= 0 && j < ny && k >= 0 && k < nz;
  }

  constexpr std::int64_t idx(int i, int j, int k) const noexcept {
    return i + static_cast<std::int64_t>(nx) * (j + static_cast<std::int64_t>(ny) * k);
  }

  constexpr bool operator==(const Box&) const noexcept = default;

  /// Interior cell count fraction; boundary-truncated stencil entries live on
  /// the complement of this set.  Degenerate 1- and 2-cell extents have no
  /// interior at all: every dimension clamps at 0 before the product, so the
  /// result is 0 — never a negative-saturated product.
  constexpr std::int64_t interior_size() const noexcept {
    const int ix = nx > 2 ? nx - 2 : 0;
    const int iy = ny > 2 ? ny - 2 : 0;
    const int iz = nz > 2 ? nz - 2 : 0;
    return static_cast<std::int64_t>(ix) * iy * iz;
  }

  /// This box grown by `g` ghost cells on every face (the storage extents of
  /// one decomposition sub-box; see grid/box_decomp.hpp).  Negative g shrinks
  /// and clamps each extent at 0 rather than going negative.
  constexpr Box ghost_grown(int g) const noexcept {
    const int gx = nx + 2 * g;
    const int gy = ny + 2 * g;
    const int gz = nz + 2 * g;
    return Box{gx > 0 ? gx : 0, gy > 0 ? gy : 0, gz > 0 ? gz : 0};
  }
};

}  // namespace smg
