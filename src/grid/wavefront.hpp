// Level-scheduled (wavefront) orderings for Gauss-Seidel / SpTRSV sweeps.
//
// A lexicographic forward sweep updates cell (i,j,k) using NEW values from
// lexicographically earlier neighbors and OLD values from later ones.  For
// stencils whose offsets satisfy |dy|,|dz| <= 1 the level function
//     L(j,k) = j + 2k                   (line granularity)
//     L(i,j,k) = i + 2j + 4k           (cell granularity, also |dx| <= 1)
// strictly separates those two sets: every lexicographically earlier
// neighbor (line) has a strictly smaller level and every later one a
// strictly larger level, and no stencil offset connects two items of the
// same level.  Processing levels in ascending order (descending for the
// backward sweep) with the items of one level in parallel therefore
// reproduces the sequential sweep *bitwise* at any thread count.
//
// Stencils violating the bound get an invalid (empty) schedule — callers
// fall back to the sequential sweep, never to a wrong parallel one.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "grid/box.hpp"
#include "grid/stencil.hpp"

namespace smg {

enum class WfGranularity {
  Line,  ///< item = grid line j + ny*k (SOA/SOAL line kernels)
  Cell,  ///< item = cell index i + nx*(j + ny*k) (AOS scalar kernel)
};

/// Items grouped by wavefront level; levels are stored densely (empty levels
/// are compacted away) and traversed forward or backward by the sweeps.
class WavefrontSchedule {
 public:
  WavefrontSchedule() = default;

  /// Line-granularity schedule; invalid if any offset has |dy| or |dz| > 1.
  static WavefrontSchedule lines(const Box& box, const Stencil& st);
  /// Cell-granularity schedule; invalid if any offset leaves the 3x3x3 cube.
  static WavefrontSchedule cells(const Box& box, const Stencil& st);

  bool valid() const noexcept { return !level_ptr_.empty(); }
  WfGranularity granularity() const noexcept { return gran_; }

  int nlevels() const noexcept {
    return valid() ? static_cast<int>(level_ptr_.size()) - 1 : 0;
  }
  std::span<const std::int32_t> level(int l) const noexcept {
    return {items_.data() + level_ptr_[static_cast<std::size_t>(l)],
            static_cast<std::size_t>(
                level_ptr_[static_cast<std::size_t>(l) + 1] -
                level_ptr_[static_cast<std::size_t>(l)])};
  }
  std::int64_t nitems() const noexcept {
    return static_cast<std::int64_t>(items_.size());
  }
  /// Average exploitable parallelism: items per (non-empty) level.
  double mean_parallelism() const noexcept {
    const int nl = nlevels();
    return nl > 0 ? static_cast<double>(nitems()) / nl : 0.0;
  }

 private:
  std::vector<std::int32_t> items_;
  std::vector<std::int32_t> level_ptr_;  ///< size nlevels()+1; empty = invalid
  WfGranularity gran_ = WfGranularity::Line;
};

}  // namespace smg
