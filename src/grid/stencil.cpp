#include "grid/stencil.hpp"

#include <algorithm>

#include "util/common.hpp"

namespace smg {

std::string_view to_string(Pattern p) noexcept {
  switch (p) {
    case Pattern::P3d7:
      return "3d7";
    case Pattern::P3d15:
      return "3d15";
    case Pattern::P3d19:
      return "3d19";
    case Pattern::P3d27:
      return "3d27";
    case Pattern::P3d4:
      return "3d4";
    case Pattern::P3d10:
      return "3d10";
    case Pattern::P3d14:
      return "3d14";
  }
  return "?";
}

namespace {

/// All 3x3x3 offsets in sweep (lexicographic dz,dy,dx) order.
std::vector<Offset> all27() {
  std::vector<Offset> out;
  out.reserve(27);
  for (std::int8_t dz = -1; dz <= 1; ++dz) {
    for (std::int8_t dy = -1; dy <= 1; ++dy) {
      for (std::int8_t dx = -1; dx <= 1; ++dx) {
        out.push_back({dx, dy, dz});
      }
    }
  }
  return out;
}

int l1(const Offset& o) {
  return std::abs(o.dx) + std::abs(o.dy) + std::abs(o.dz);
}
int linf(const Offset& o) {
  return std::max({std::abs(int(o.dx)), std::abs(int(o.dy)),
                   std::abs(int(o.dz))});
}

std::vector<Offset> filter27(bool (*keep)(const Offset&)) {
  std::vector<Offset> out;
  for (const Offset& o : all27()) {
    if (keep(o)) {
      out.push_back(o);
    }
  }
  return out;
}

}  // namespace

Stencil::Stencil(std::vector<Offset> offsets) : offsets_(std::move(offsets)) {
  for (int d = 0; d < ndiag(); ++d) {
    const Offset& o = offsets_[d];
    if (o.is_center()) {
      SMG_CHECK(center_ < 0, "duplicate center offset in stencil");
      center_ = d;
    } else if (o.before_center()) {
      lower_.push_back(d);
    } else {
      upper_.push_back(d);
    }
  }
}

Stencil Stencil::make(Pattern p) {
  switch (p) {
    case Pattern::P3d7:
      return Stencil(filter27([](const Offset& o) { return l1(o) <= 1; }));
    case Pattern::P3d15:
      // center + 6 faces + 8 corners: |o|_1 in {0,1,3}
      return Stencil(filter27(
          [](const Offset& o) { return l1(o) != 2; }));
    case Pattern::P3d19:
      return Stencil(filter27([](const Offset& o) { return l1(o) <= 2; }));
    case Pattern::P3d27:
      return Stencil(all27());
    case Pattern::P3d4:
      return Stencil(filter27([](const Offset& o) {
        return l1(o) <= 1 && (o.is_center() || o.before_center());
      }));
    case Pattern::P3d10:
      return Stencil(filter27([](const Offset& o) {
        return l1(o) <= 2 && (o.is_center() || o.before_center());
      }));
    case Pattern::P3d14:
      return Stencil(filter27([](const Offset& o) {
        return linf(o) <= 1 && (o.is_center() || o.before_center());
      }));
  }
  SMG_CHECK(false, "unknown stencil pattern");
}

int Stencil::find(int dx, int dy, int dz) const noexcept {
  for (int d = 0; d < ndiag(); ++d) {
    if (offsets_[d].dx == dx && offsets_[d].dy == dy && offsets_[d].dz == dz) {
      return d;
    }
  }
  return -1;
}

bool Stencil::symmetric_pattern() const noexcept {
  for (const Offset& o : offsets_) {
    if (find(-o.dx, -o.dy, -o.dz) < 0) {
      return false;
    }
  }
  return true;
}

}  // namespace smg
