// Halo exchange between the sub-boxes of a decomposed MG level.
//
// Each sub-box owns interior cells plus a ghost ring (grid/box_decomp.hpp);
// before a kernel reads neighbor values, every ghost region is refreshed
// from the owning neighbor's interior through an explicit three-phase
// exchange, exactly the structure a distributed-memory backend needs:
//
//   pack      — each box copies its 26 outgoing face/edge/corner regions
//               into one contiguous per-box send pool (parallel over boxes),
//   transport — the Exchanger moves every packed message from its sender's
//               send pool to the receiver's recv pool.  The in-process
//               MemcpyExchanger is plain memcpy; an MPI or cross-NUMA
//               backend drops in behind the same narrow interface without
//               the kernels or the plan changing,
//   unpack    — each box scatters its recv pool into its ghost cells
//               (parallel over boxes).
//
// Wire format: the compute-precision values as-is ("raw"), or FP16-packed —
// half the bytes of an FP32 halo (the Oo & Vogel observation: transfers are
// where reduced precision buys bandwidth with no stored-state change).  The
// FP16 wire is lossy (<= 2^-11 relative per value, asserted in tests) and is
// therefore opt-in; raw keeps decomposed Jacobi cycles bitwise identical to
// the undecomposed ones.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "fp/half.hpp"
#include "grid/box_decomp.hpp"
#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace smg {

/// One directed message of the plan: what box `owner` receives from `peer`
/// for ghost side `dir`, and what it sends toward `dir` for the peer's
/// mirror message.  All coordinates are local to the owner's storage box.
struct HaloMsg {
  std::array<int, 3> dir{};      ///< ghost side, each component in {-1,0,1}
  int peer = -1;                 ///< neighbor box id
  std::array<int, 3> recv_lo{};  ///< ghost destination rectangle (local)
  std::array<int, 3> recv_n{};
  std::array<int, 3> send_lo{};  ///< interior source rectangle (local)
  std::array<int, 3> send_n{};
  std::int64_t recv_values = 0;  ///< cells * bs received
  std::int64_t send_values = 0;  ///< cells * bs sent
  std::int64_t recv_off = 0;     ///< value offset into the owner's recv pool
  std::int64_t send_off = 0;     ///< value offset into the owner's send pool
  std::int64_t peer_send_off = 0;  ///< matching offset in the peer's send pool
};

/// Static exchange geometry of one decomposed level: per-box message lists
/// with resolved buffer offsets.  Pure geometry — shared by every field
/// exchanged on the level (u, f, r) and by the perfmodel's byte accounting.
class HaloPlan {
 public:
  HaloPlan() = default;
  HaloPlan(const BoxDecomp& d, int block_size);

  int nboxes() const noexcept { return static_cast<int>(boxes_.size()); }
  int block_size() const noexcept { return bs_; }
  const std::vector<HaloMsg>& msgs(int b) const noexcept {
    return boxes_[static_cast<std::size_t>(b)].msgs;
  }
  const Box& local(int b) const noexcept {
    return boxes_[static_cast<std::size_t>(b)].local;
  }
  std::int64_t send_pool_values(int b) const noexcept {
    return boxes_[static_cast<std::size_t>(b)].send_values;
  }
  std::int64_t recv_pool_values(int b) const noexcept {
    return boxes_[static_cast<std::size_t>(b)].recv_values;
  }
  /// Total values received across all boxes in one full exchange — the
  /// quantity the perfmodel prices (bytes = values * wire bytes).
  std::int64_t values_per_exchange() const noexcept { return total_recv_; }

 private:
  struct BoxMsgs {
    Box local{};
    std::vector<HaloMsg> msgs;
    std::int64_t send_values = 0;
    std::int64_t recv_values = 0;
  };
  std::vector<BoxMsgs> boxes_;
  int bs_ = 1;
  std::int64_t total_recv_ = 0;
};

/// Transport half of the exchange: moves packed bytes from send pools to
/// recv pools.  Implementations see only opaque (dst, src, nbytes) triples,
/// so the backend (memcpy today, MPI/NUMA-copy later) is swappable without
/// touching the plan, the packers, or the kernels.
class Exchanger {
 public:
  struct Transfer {
    std::byte* dst = nullptr;
    const std::byte* src = nullptr;
    std::size_t bytes = 0;
  };

  virtual ~Exchanger() = default;
  virtual void transport(std::span<const Transfer> transfers) = 0;
};

/// Shared-memory transport: one memcpy per message.
class MemcpyExchanger final : public Exchanger {
 public:
  void transport(std::span<const Transfer> transfers) override {
    for (const Transfer& t : transfers) {
      std::memcpy(t.dst, t.src, t.bytes);
    }
  }
};

namespace detail {

template <class CT, class WT>
inline WT halo_encode(CT v) noexcept {
  if constexpr (std::is_same_v<WT, half>) {
    return static_cast<half>(static_cast<float>(v));
  } else {
    return static_cast<WT>(v);
  }
}

template <class CT, class WT>
inline CT halo_decode(WT v) noexcept {
  if constexpr (std::is_same_v<WT, half>) {
    return static_cast<CT>(static_cast<float>(v));
  } else {
    return static_cast<CT>(v);
  }
}

template <class CT, class WT>
void pack_region(const CT* field, const Box& local, const std::array<int, 3>& lo,
                 const std::array<int, 3>& n, int bs, WT* out) {
  std::int64_t q = 0;
  for (int k = lo[2]; k < lo[2] + n[2]; ++k) {
    for (int j = lo[1]; j < lo[1] + n[1]; ++j) {
      const CT* row = field + (local.idx(lo[0], j, k)) * bs;
      const std::int64_t rn = static_cast<std::int64_t>(n[0]) * bs;
      for (std::int64_t t = 0; t < rn; ++t) {
        out[q++] = halo_encode<CT, WT>(row[t]);
      }
    }
  }
}

template <class CT, class WT>
void unpack_region(const WT* in, const Box& local, const std::array<int, 3>& lo,
                   const std::array<int, 3>& n, int bs, CT* field) {
  std::int64_t q = 0;
  for (int k = lo[2]; k < lo[2] + n[2]; ++k) {
    for (int j = lo[1]; j < lo[1] + n[1]; ++j) {
      CT* row = field + (local.idx(lo[0], j, k)) * bs;
      const std::int64_t rn = static_cast<std::int64_t>(n[0]) * bs;
      for (std::int64_t t = 0; t < rn; ++t) {
        row[t] = halo_decode<CT, WT>(in[q++]);
      }
    }
  }
}

}  // namespace detail

/// Exchange executor: owns the per-box send/recv pools for one plan and one
/// wire format, runs the pack -> transport -> unpack phases over the worker
/// pool, and keeps the measured-traffic ledger the benches gate against.
class HaloExchange {
 public:
  HaloExchange() = default;

  /// `wire_bytes` is sizeof the wire value: sizeof(CT) for raw exchanges or
  /// sizeof(half) for FP16-packed halos.
  void init(const HaloPlan* plan, std::size_t wire_bytes);

  bool ready() const noexcept { return plan_ != nullptr; }
  std::size_t wire_bytes() const noexcept { return wire_bytes_; }

  /// Bytes received in one full exchange (== model prediction by
  /// construction; the ledger below accumulates it per performed exchange).
  std::uint64_t bytes_per_exchange() const noexcept {
    return plan_ == nullptr
               ? 0
               : static_cast<std::uint64_t>(plan_->values_per_exchange()) *
                     wire_bytes_;
  }
  std::uint64_t bytes_exchanged() const noexcept { return bytes_; }
  std::uint64_t exchanges() const noexcept { return exchanges_; }
  void reset_ledger() noexcept {
    bytes_ = 0;
    exchanges_ = 0;
  }

  /// Phase 1+2 of an exchange: every box packs its outgoing regions of
  /// `field(b)` (per-box local dof arrays) into its send pool (parallel
  /// over boxes), then the Exchanger moves each message to its receiver.
  template <class CT>
  void pack_and_transport(const std::function<CT*(int)>& field,
                          ThreadPool& pool, Exchanger& ex) {
    SMG_CHECK(plan_ != nullptr, "HaloExchange used before init");
    const HaloPlan& plan = *plan_;
    const int bs = plan.block_size();
    pool.run(plan.nboxes(), [&](int b) {
      std::byte* pool_b = send_[static_cast<std::size_t>(b)].data();
      const CT* f = field(b);
      for (const HaloMsg& m : plan.msgs(b)) {
        if (wire_bytes_ == sizeof(half) && !std::is_same_v<CT, half>) {
          detail::pack_region<CT, half>(
              f, plan.local(b), m.send_lo, m.send_n, bs,
              reinterpret_cast<half*>(pool_b) + m.send_off);
        } else {
          detail::pack_region<CT, CT>(
              f, plan.local(b), m.send_lo, m.send_n, bs,
              reinterpret_cast<CT*>(pool_b) + m.send_off);
        }
      }
    });
    ex.transport({transfers_.data(), transfers_.size()});
  }

  /// Phase 3: every box scatters its recv pool into its ghost cells
  /// (parallel over boxes) and the traffic ledger advances.
  template <class CT>
  void unpack(const std::function<CT*(int)>& field, ThreadPool& pool) {
    SMG_CHECK(plan_ != nullptr, "HaloExchange used before init");
    const HaloPlan& plan = *plan_;
    const int bs = plan.block_size();
    pool.run(plan.nboxes(), [&](int b) {
      const std::byte* pool_b = recv_[static_cast<std::size_t>(b)].data();
      CT* f = field(b);
      for (const HaloMsg& m : plan.msgs(b)) {
        if (wire_bytes_ == sizeof(half) && !std::is_same_v<CT, half>) {
          detail::unpack_region<CT, half>(
              reinterpret_cast<const half*>(pool_b) + m.recv_off,
              plan.local(b), m.recv_lo, m.recv_n, bs, f);
        } else {
          detail::unpack_region<CT, CT>(
              reinterpret_cast<const CT*>(pool_b) + m.recv_off, plan.local(b),
              m.recv_lo, m.recv_n, bs, f);
        }
      }
    });
    bytes_ += bytes_per_exchange();
    ++exchanges_;
  }

  /// Refresh every ghost region of `field(b)` from its neighbors: the full
  /// pack -> transport -> unpack sequence.
  template <class CT>
  void exchange(const std::function<CT*(int)>& field, ThreadPool& pool,
                Exchanger& ex) {
    pack_and_transport<CT>(field, pool, ex);
    unpack<CT>(field, pool);
  }

 private:
  const HaloPlan* plan_ = nullptr;
  std::size_t wire_bytes_ = 0;
  std::vector<std::vector<std::byte>> send_;
  std::vector<std::vector<std::byte>> recv_;
  std::vector<Exchanger::Transfer> transfers_;
  std::uint64_t bytes_ = 0;
  std::uint64_t exchanges_ = 0;
};

}  // namespace smg
