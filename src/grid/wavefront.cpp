#include "grid/wavefront.hpp"

#include <climits>

namespace smg {

namespace {

/// All offsets inside the bound the level function assumes: |dy|,|dz| <= 1,
/// and for cell granularity |dx| <= 1 as well.
bool offsets_bounded(const Stencil& st, bool check_dx) noexcept {
  for (const Offset& o : st.offsets()) {
    if (o.dy < -1 || o.dy > 1 || o.dz < -1 || o.dz > 1) {
      return false;
    }
    if (check_dx && (o.dx < -1 || o.dx > 1)) {
      return false;
    }
  }
  return true;
}

/// Drop empty levels from a (counts -> prefix) level_ptr.
void compact_levels(std::vector<std::int32_t>& level_ptr) {
  std::size_t out = 1;
  for (std::size_t l = 1; l < level_ptr.size(); ++l) {
    if (level_ptr[l] != level_ptr[out - 1]) {
      level_ptr[out++] = level_ptr[l];
    }
  }
  level_ptr.resize(out);
}

}  // namespace

WavefrontSchedule WavefrontSchedule::lines(const Box& box, const Stencil& st) {
  WavefrontSchedule wf;
  wf.gran_ = WfGranularity::Line;
  const std::int64_t nlines = static_cast<std::int64_t>(box.ny) * box.nz;
  if (nlines <= 0 || nlines > INT_MAX || !offsets_bounded(st, false)) {
    return wf;  // invalid: caller falls back to the sequential sweep
  }
  const int nlev = box.ny + 2 * box.nz - 2;  // L = j + 2k in [0, nlev)
  wf.level_ptr_.assign(static_cast<std::size_t>(nlev) + 1, 0);
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      ++wf.level_ptr_[static_cast<std::size_t>(j + 2 * k) + 1];
    }
  }
  for (std::size_t l = 1; l < wf.level_ptr_.size(); ++l) {
    wf.level_ptr_[l] += wf.level_ptr_[l - 1];
  }
  wf.items_.resize(static_cast<std::size_t>(nlines));
  std::vector<std::int32_t> cursor(wf.level_ptr_.begin(),
                                   wf.level_ptr_.end() - 1);
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      wf.items_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(j + 2 * k)]++)] =
          static_cast<std::int32_t>(j + box.ny * k);
    }
  }
  compact_levels(wf.level_ptr_);
  return wf;
}

WavefrontSchedule WavefrontSchedule::cells(const Box& box, const Stencil& st) {
  WavefrontSchedule wf;
  wf.gran_ = WfGranularity::Cell;
  const std::int64_t ncells = box.size();
  if (ncells <= 0 || ncells > INT_MAX || !offsets_bounded(st, true)) {
    return wf;
  }
  const int nlev = box.nx + 2 * box.ny + 4 * box.nz - 6;  // L = i + 2j + 4k
  wf.level_ptr_.assign(static_cast<std::size_t>(nlev) + 1, 0);
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        ++wf.level_ptr_[static_cast<std::size_t>(i + 2 * j + 4 * k) + 1];
      }
    }
  }
  for (std::size_t l = 1; l < wf.level_ptr_.size(); ++l) {
    wf.level_ptr_[l] += wf.level_ptr_[l - 1];
  }
  wf.items_.resize(static_cast<std::size_t>(ncells));
  std::vector<std::int32_t> cursor(wf.level_ptr_.begin(),
                                   wf.level_ptr_.end() - 1);
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        wf.items_[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(i + 2 * j + 4 * k)]++)] =
            static_cast<std::int32_t>(box.idx(i, j, k));
      }
    }
  }
  compact_levels(wf.level_ptr_);
  return wf;
}

}  // namespace smg
