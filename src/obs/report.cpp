#include "obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>

#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "perfmodel/bytes.hpp"
#include "util/table.hpp"

namespace smg::obs {

namespace {

/// Kinds shown in the per-level kernel table, in report order.
constexpr Kind kKernelKinds[] = {
    Kind::SymGS,    Kind::Jacobi,   Kind::SpMV,
    Kind::Residual, Kind::ResidualRestrict, Kind::Restrict,
    Kind::Prolong,  Kind::CoarseSolve,      Kind::Blas1,
    Kind::HaloPack, Kind::HaloUnpack,
};

/// Modeled compulsory bytes of one call of `k` on level `l` (0 = no model).
double model_bytes(Kind k, int l, const MGHierarchy& h, Prec krylov) {
  const MGConfig& cfg = h.config();
  if (l < 0) {
    // Solver side: SpMV / residual stream the finest FP64->KT matrix with
    // Krylov-precision vectors, never scaled.
    const Level& L = h.level(0);
    const int bs = L.A_full.block_size();
    const double m = static_cast<double>(L.A_full.nrows());
    const double nnz = static_cast<double>(L.A_full.ncells()) *
                       L.A_full.stencil().ndiag() * bs * bs;
    switch (k) {
      case Kind::SpMV:
        return spmv_bytes(nnz, m, krylov, krylov, false);
      case Kind::Residual:
        return residual_bytes(nnz, m, krylov, krylov, false);
      default:
        return 0.0;
    }
  }
  const Level& L = h.level(l);
  const int bs = L.A_full.block_size();
  const double m = static_cast<double>(L.A_full.nrows());
  const double mc =
      l + 1 < h.nlevels()
          ? static_cast<double>(L.to_coarse.coarse.size()) * bs
          : 0.0;
  const double nnz = static_cast<double>(L.A_full.ncells()) *
                     L.A_full.stencil().ndiag() * bs * bs;
  const Prec mat = L.storage;
  const Prec vec = cfg.compute;
  switch (k) {
    case Kind::SymGS:
      return symgs_sweep_bytes(nnz, m, mat, vec, L.scaled);
    case Kind::Jacobi:
      return jacobi_sweep_bytes(nnz, m, mat, vec, L.scaled);
    case Kind::SpMV:
      return spmv_bytes(nnz, m, mat, vec, L.scaled);
    case Kind::Residual:
      return residual_bytes(nnz, m, mat, vec, L.scaled);
    case Kind::ResidualRestrict:
      return residual_restrict_bytes(nnz, m, mc, mat, vec, L.scaled);
    case Kind::Restrict:
      return restrict_bytes(m, mc, vec);
    case Kind::Prolong:
      return prolong_bytes(m, mc, vec);
    default:
      return 0.0;  // coarse_solve (dense LU), blas1, structural kinds
  }
}

}  // namespace

SolverReport build_report(const Telemetry& t, const MGHierarchy& h,
                          double reference_gbs, Prec krylov) {
  SolverReport r;
  r.solve_seconds = t.total(Kind::Solve).seconds;
  r.iterations = t.total(Kind::Iteration).calls;
  r.precond_seconds = t.apply_seconds();
  r.precond_calls = t.apply_calls();
  r.panel_applies = t.panel_applies();
  r.panel_columns = t.panel_columns();
  r.max_panel_width = static_cast<std::uint64_t>(t.max_panel_width());
  r.reference_gbs = reference_gbs;
  r.dropped = t.dropped();
  for (int l = -1; l < h.nlevels(); ++l) {
    for (const Kind k : kKernelKinds) {
      const SpanStat s = t.stat(k, l);
      if (s.calls == 0) {
        continue;
      }
      KernelRow row;
      row.kind = k;
      row.level = l;
      row.seconds = s.seconds;
      row.calls = s.calls;
      row.model_bytes_per_call = model_bytes(k, l, h, krylov);
      if (row.model_bytes_per_call > 0.0 && s.seconds > 0.0) {
        row.achieved_gbs = row.model_bytes_per_call *
                           static_cast<double>(s.calls) / s.seconds / 1e9;
        if (reference_gbs > 0.0) {
          row.efficiency = row.achieved_gbs / reference_gbs;
        }
      }
      r.kernels.push_back(row);
    }
  }
  r.levels = collect_precision_counters(h);
  for (int l = 0; l < h.nlevels(); ++l) {
    if (t.halo_exchanges(l) == 0) {
      continue;
    }
    HaloLevelStat hs;
    hs.level = l;
    hs.bytes = t.halo_bytes(l);
    hs.exchanges = t.halo_exchanges(l);
    hs.pack_seconds = t.stat(Kind::HaloPack, l).seconds;
    hs.unpack_seconds = t.stat(Kind::HaloUnpack, l).seconds;
    r.halo.push_back(hs);
  }
  r.policy = h.policy();
  r.autopilot = h.autopilot_log();
  r.storage_ladder = h.config().expand_ladder(h.nlevels());
  r.request_first = t.request_first();
  r.request_last = t.request_last();
  r.request_count = t.request_count();
  r.metrics = snapshot_metrics();
  return r;
}

SolverReport build_report(const Telemetry& t, const MGHierarchy& h,
                          double reference_gbs) {
  return build_report(t, h, reference_gbs, Prec::FP64);
}

void print_report(const SolverReport& r, std::ostream& os) {
  os << "telemetry report (achieved GB/s = perfmodel bytes / measured s)\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "  solve: %.4f s, %llu iteration(s); preconditioner: %.4f s "
                "over %llu apply call(s)\n",
                r.solve_seconds,
                static_cast<unsigned long long>(r.iterations),
                r.precond_seconds,
                static_cast<unsigned long long>(r.precond_calls));
  os << line;
  if (r.panel_applies > 0) {
    std::snprintf(line, sizeof(line),
                  "  throughput mode: %llu panel apply call(s) carrying %llu "
                  "column(s) (max width %llu)\n",
                  static_cast<unsigned long long>(r.panel_applies),
                  static_cast<unsigned long long>(r.panel_columns),
                  static_cast<unsigned long long>(r.max_panel_width));
    os << line;
  }
  if (r.reference_gbs > 0.0) {
    std::snprintf(line, sizeof(line), "  bandwidth reference: %.2f GB/s\n",
                  r.reference_gbs);
    os << line;
  }
  if (r.dropped > 0) {
    std::snprintf(line, sizeof(line),
                  "  WARNING: %llu span(s)/event(s) dropped (caps hit)\n",
                  static_cast<unsigned long long>(r.dropped));
    os << line;
  }

  Table t({"level", "kernel", "calls", "total ms", "us/call", "model MB/call",
           "GB/s", "% of ref"});
  for (const KernelRow& k : r.kernels) {
    const std::string lev = k.level < 0 ? "-" : std::to_string(k.level);
    const double per_call_us =
        k.calls > 0 ? k.seconds * 1e6 / static_cast<double>(k.calls) : 0.0;
    t.row({lev, std::string(to_string(k.kind)), std::to_string(k.calls),
           Table::fmt(k.seconds * 1e3, 3), Table::fmt(per_call_us, 1),
           k.model_bytes_per_call > 0.0
               ? Table::fmt(k.model_bytes_per_call / (1024.0 * 1024.0), 3)
               : "-",
           k.achieved_gbs > 0.0 ? Table::fmt(k.achieved_gbs, 2) : "-",
           k.efficiency > 0.0 ? Table::fmt(k.efficiency * 100.0, 1) : "-"});
  }
  t.print(os);
  os << "\n";
  print_precision_counters(r.levels, os);
  if (!r.halo.empty()) {
    os << "\nper-level halo traffic (decomposed engine)\n";
    Table ht({"level", "exchanges", "wire MB", "pack ms", "unpack ms"});
    for (const HaloLevelStat& hl : r.halo) {
      ht.row({std::to_string(hl.level), std::to_string(hl.exchanges),
              Table::fmt(static_cast<double>(hl.bytes) / (1024.0 * 1024.0), 3),
              Table::fmt(hl.pack_seconds * 1e3, 3),
              Table::fmt(hl.unpack_seconds * 1e3, 3)});
    }
    ht.print(os);
  }
  if (!r.autopilot.empty()) {
    os << "\nprecision autopilot decisions (policy: "
       << std::string(to_string(r.policy)) << ")\n";
    Table a({"level", "trigger", "action", "from", "to", "safety", "reason"});
    for (const AutopilotDecision& d : r.autopilot) {
      a.row({std::to_string(d.level), std::string(to_string(d.trigger)),
             std::string(to_string(d.action)), std::string(to_string(d.from)),
             std::string(to_string(d.to)),
             d.safety > 0.0 ? Table::sci(d.safety, 2) : "-", d.reason});
    }
    a.print(os);
  }
}

void print_report(const SolverReport& r) { print_report(r, std::cout); }

void print_precision_counters(const std::vector<LevelPrecisionCounters>& c,
                              std::ostream& os) {
  os << "per-level precision counters (headroom > 1 => no overflow "
        "possible)\n";
  Table t({"level", "rows", "storage", "shifted", "scaled", "G", "headroom",
           "min|a|", "max|a|", "ovf", "flush0", "subnorm", "conv/apply"});
  for (const LevelPrecisionCounters& l : c) {
    t.row({std::to_string(l.level), std::to_string(l.rows),
           std::string(to_string(l.storage)), l.shifted ? "yes" : "no",
           l.scaled ? "yes" : "no",
           l.scaled ? Table::sci(l.g, 2) : "-",
           l.headroom > 0.0 ? Table::sci(l.headroom, 2) : "-",
           Table::sci(l.min_abs, 2), Table::sci(l.max_abs, 2),
           std::to_string(l.overflowed), std::to_string(l.flushed_to_zero),
           std::to_string(l.subnormal),
           std::to_string(l.conversions_per_apply)});
  }
  t.print(os);
}

void print_precision_counters(const std::vector<LevelPrecisionCounters>& c) {
  print_precision_counters(c, std::cout);
}

std::string to_json(const SolverReport& r) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"smg-telemetry-v3\",";
  out += "\"precision_policy\":\"" + std::string(to_string(r.policy)) + "\",";
  out += "\"storage_ladder\":[";
  for (std::size_t i = 0; i < r.storage_ladder.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += "\"" + std::string(to_string(r.storage_ladder[i])) + "\"";
  }
  out += "],";
  out += "\"requests\":{\"first\":" + json_num(r.request_first);
  out += ",\"last\":" + json_num(r.request_last);
  out += ",\"count\":" + json_num(r.request_count) + "},";
  out += "\"solve\":{\"seconds\":" + json_num(r.solve_seconds);
  out += ",\"iterations\":" + json_num(r.iterations);
  out += ",\"precond_seconds\":" + json_num(r.precond_seconds);
  out += ",\"precond_calls\":" + json_num(r.precond_calls);
  out += ",\"panel_applies\":" + json_num(r.panel_applies);
  out += ",\"panel_columns\":" + json_num(r.panel_columns);
  out += ",\"max_panel_width\":" + json_num(r.max_panel_width) + "},";
  out += "\"reference_gbs\":" + json_num(r.reference_gbs) + ",";
  out += "\"dropped\":" + json_num(r.dropped) + ",";
  out += "\"kernels\":[";
  for (std::size_t i = 0; i < r.kernels.size(); ++i) {
    const KernelRow& k = r.kernels[i];
    if (i > 0) {
      out += ",";
    }
    out += "{\"kind\":\"" + std::string(to_string(k.kind)) + "\"";
    out += ",\"level\":" + std::to_string(k.level);
    out += ",\"seconds\":" + json_num(k.seconds);
    out += ",\"calls\":" + json_num(k.calls);
    out += ",\"model_bytes_per_call\":" + json_num(k.model_bytes_per_call);
    out += ",\"achieved_gbs\":" + json_num(k.achieved_gbs);
    out += ",\"efficiency\":" + json_num(k.efficiency) + "}";
  }
  out += "],\"levels\":[";
  for (std::size_t i = 0; i < r.levels.size(); ++i) {
    const LevelPrecisionCounters& l = r.levels[i];
    if (i > 0) {
      out += ",";
    }
    out += "{\"level\":" + std::to_string(l.level);
    out += ",\"rows\":" + std::to_string(l.rows);
    out += ",\"stored_values\":" + json_num(l.stored_values);
    out += ",\"matrix_bytes\":" + json_num(l.matrix_bytes);
    out += ",\"storage\":\"" + std::string(to_string(l.storage)) + "\"";
    out += std::string(",\"shifted\":") + (l.shifted ? "true" : "false");
    out += std::string(",\"scaled\":") + (l.scaled ? "true" : "false");
    out += ",\"g\":" + json_num(l.g);
    out += ",\"gmax\":" + json_num(l.gmax);
    out += ",\"headroom\":" + json_num(l.headroom);
    out += ",\"min_abs\":" + json_num(l.min_abs);
    out += ",\"max_abs\":" + json_num(l.max_abs);
    out += ",\"overflowed\":" + json_num(l.overflowed);
    out += ",\"flushed_to_zero\":" + json_num(l.flushed_to_zero);
    out += ",\"subnormal\":" + json_num(l.subnormal);
    out += ",\"conversions_per_apply\":" + json_num(l.conversions_per_apply);
    out += ",\"rescales\":" + std::to_string(l.rescales);
    out += ",\"promotions\":" + std::to_string(l.promotions);
    out += "}";
  }
  out += "],\"halo\":[";
  for (std::size_t i = 0; i < r.halo.size(); ++i) {
    const HaloLevelStat& hl = r.halo[i];
    if (i > 0) {
      out += ",";
    }
    out += "{\"level\":" + std::to_string(hl.level);
    out += ",\"bytes\":" + json_num(hl.bytes);
    out += ",\"exchanges\":" + json_num(hl.exchanges);
    out += ",\"pack_seconds\":" + json_num(hl.pack_seconds);
    out += ",\"unpack_seconds\":" + json_num(hl.unpack_seconds) + "}";
  }
  out += "],\"autopilot\":[";
  for (std::size_t i = 0; i < r.autopilot.size(); ++i) {
    const AutopilotDecision& d = r.autopilot[i];
    if (i > 0) {
      out += ",";
    }
    out += "{\"level\":" + std::to_string(d.level);
    out += ",\"trigger\":\"" + std::string(to_string(d.trigger)) + "\"";
    out += ",\"action\":\"" + std::string(to_string(d.action)) + "\"";
    out += ",\"from\":\"" + std::string(to_string(d.from)) + "\"";
    out += ",\"to\":\"" + std::string(to_string(d.to)) + "\"";
    out += ",\"safety\":" + json_num(d.safety);
    out += ",\"reason\":\"" + json_escape(d.reason) + "\"}";
  }
  out += "],\"metrics\":";
  out += json_write(metrics_to_json(r.metrics));
  out += "}";
  return out;
}

std::string to_chrome_trace(const Telemetry& t) {
  std::string out = "{\"traceEvents\":[";
  const std::vector<TraceEvent> events = t.trace_events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) {
      out += ",";
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                  "\"pid\":0,\"tid\":%d,\"args\":{\"mg_level\":%d,"
                  "\"req\":%llu}}",
                  std::string(to_string(e.kind)).c_str(), e.t0 * 1e6,
                  (e.t1 - e.t0) * 1e6, e.tid, e.level,
                  static_cast<unsigned long long>(e.req));
    out += buf;
  }
  out += "]}";
  return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    return false;
  }
  f << text;
  return static_cast<bool>(f);
}

int emit_from_env(const SolverReport& r, const Telemetry& t) {
  int written = 0;
  if (const char* p = std::getenv("SMG_TELEMETRY_JSON");
      p != nullptr && *p != '\0') {
    if (write_text_file(p, to_json(r))) {
      std::fprintf(stderr, "telemetry: wrote JSON report to %s\n", p);
      ++written;
    } else {
      std::fprintf(stderr, "telemetry: FAILED to write %s\n", p);
    }
  }
  if (const char* p = std::getenv("SMG_TELEMETRY_TRACE");
      p != nullptr && *p != '\0') {
    if (write_text_file(p, to_chrome_trace(t))) {
      std::fprintf(stderr, "telemetry: wrote Chrome trace to %s\n", p);
      ++written;
    } else {
      std::fprintf(stderr, "telemetry: FAILED to write %s\n", p);
    }
  }
  return written;
}

}  // namespace smg::obs
