#include "obs/exposition.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace smg::obs {

namespace {

/// Prometheus sample value: unlike JSON, the text format has +Inf/-Inf/NaN
/// literals, so values render faithfully.
std::string prom_num(double v) {
  if (std::isnan(v)) {
    return "NaN";
  }
  if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string prom_num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// `{k="v",...}` rendered label block; empty string when no labels.
/// `extra` appends one more pair (the histogram `le` label).
std::string label_block(const MetricLabels& labels,
                        const std::string& extra_key = {},
                        const std::string& extra_val = {}) {
  std::string out;
  auto append = [&out](const std::string& k, const std::string& v) {
    out += out.empty() ? "{" : ",";
    out += k;
    out += "=\"";
    out += openmetrics_escape_label(v);
    out += '"';
  };
  for (const auto& [k, v] : labels) {
    append(k, v);
  }
  if (!extra_key.empty()) {
    append(extra_key, extra_val);
  }
  if (!out.empty()) {
    out += '}';
  }
  return out;
}

/// Bucket upper bound rendered for the `le` label (shortest round-trip).
std::string le_value(double bound) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", bound);
  return buf;
}

/// `# HELP`/`# TYPE` comments are per family; consecutive snapshot entries
/// share them when the name repeats (snapshot preserves registration
/// order, and families registered together stay contiguous).
void family_header(std::string& out, std::string* last_family,
                   const MetricSnapshot& m, std::string_view type) {
  if (*last_family == m.name) {
    return;
  }
  *last_family = m.name;
  out += "# HELP ";
  out += m.name;
  out += ' ';
  out += m.help;
  out += "\n# TYPE ";
  out += m.name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string openmetrics_escape_label(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string to_openmetrics(const MetricsSnapshot& snap) {
  std::string out;
  std::string last_family;
  // The text format requires all samples of a family to be contiguous
  // under one # TYPE line, but registration order interleaves families
  // (e.g. the per-solver series register latency+iterations per solver).
  // Group by family: first-appearance order, registration order within.
  std::vector<const MetricSnapshot*> ordered;
  ordered.reserve(snap.series.size());
  {
    std::vector<char> used(snap.series.size(), 0);
    for (std::size_t i = 0; i < snap.series.size(); ++i) {
      if (used[i] != 0) {
        continue;
      }
      for (std::size_t j = i; j < snap.series.size(); ++j) {
        if (used[j] == 0 && snap.series[j].name == snap.series[i].name) {
          used[j] = 1;
          ordered.push_back(&snap.series[j]);
        }
      }
    }
  }
  // Percentile gauges are their own families (<name>_p50/_p90/_p99);
  // buffer per suffix so they emit grouped, after the main pass.
  struct PctBuffer {
    std::string out;
    std::string last_family;
  };
  std::array<PctBuffer, 3> pct_buffers;
  for (const MetricSnapshot* mp : ordered) {
    const MetricSnapshot& m = *mp;
    switch (m.type) {
      case MetricType::Counter:
      case MetricType::Gauge: {
        family_header(out, &last_family, m, to_string(m.type));
        out += m.name;
        out += label_block(m.labels);
        out += ' ';
        out += prom_num(m.value);
        out += '\n';
        break;
      }
      case MetricType::Histogram: {
        family_header(out, &last_family, m, "histogram");
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          cum += m.buckets[i];
          const std::string le =
              i < m.le.size() ? le_value(m.le[i]) : std::string("+Inf");
          out += m.name;
          out += "_bucket";
          out += label_block(m.labels, "le", le);
          out += ' ';
          out += prom_num(cum);
          out += '\n';
        }
        out += m.name;
        out += "_count";
        out += label_block(m.labels);
        out += ' ';
        out += prom_num(m.count);
        out += '\n';
        out += m.name;
        out += "_sum";
        out += label_block(m.labels);
        out += ' ';
        out += prom_num(m.sum);
        out += '\n';
        const std::pair<const char*, double> pct[] = {
            {"_p50", m.p50}, {"_p90", m.p90}, {"_p99", m.p99}};
        for (std::size_t p = 0; p < 3; ++p) {
          PctBuffer& buf = pct_buffers[p];
          MetricSnapshot g;
          g.name = m.name + pct[p].first;
          g.help = m.help + " (merged-bucket percentile)";
          family_header(buf.out, &buf.last_family, g, "gauge");
          buf.out += g.name;
          buf.out += label_block(m.labels);
          buf.out += ' ';
          buf.out += prom_num(pct[p].second);
          buf.out += '\n';
        }
        break;
      }
    }
  }
  for (const PctBuffer& buf : pct_buffers) {
    out += buf.out;
  }
  out += "# EOF\n";
  return out;
}

JsonValue metrics_to_json(const MetricsSnapshot& snap) {
  JsonValue root = JsonValue::object();
  root.set("enabled", JsonValue(snap.enabled));
  JsonValue series = JsonValue::array();
  for (const MetricSnapshot& m : snap.series) {
    JsonValue s = JsonValue::object();
    s.set("name", JsonValue(m.name));
    s.set("type", JsonValue(std::string(to_string(m.type))));
    // Pre-formatted label string so the JSON key set is fixed regardless
    // of label names (the schema-docs round-trip test depends on that).
    std::string labels;
    for (const auto& [k, v] : m.labels) {
      if (!labels.empty()) {
        labels += ',';
      }
      labels += k;
      labels += "=\"";
      labels += openmetrics_escape_label(v);
      labels += '"';
    }
    s.set("labels", JsonValue(std::move(labels)));
    if (m.type == MetricType::Histogram) {
      JsonValue le = JsonValue::array();
      for (double bound : m.le) {
        le.push_back(JsonValue(bound));
      }
      s.set("le", std::move(le));
      JsonValue buckets = JsonValue::array();
      for (std::uint64_t c : m.buckets) {
        buckets.push_back(JsonValue(static_cast<double>(c)));
      }
      s.set("buckets", std::move(buckets));
      s.set("count", JsonValue(static_cast<double>(m.count)));
      s.set("sum", JsonValue(m.sum));
      s.set("p50", JsonValue(m.p50));
      s.set("p90", JsonValue(m.p90));
      s.set("p99", JsonValue(m.p99));
    } else {
      s.set("value", JsonValue(m.value));
    }
    series.push_back(std::move(s));
  }
  root.set("series", std::move(series));
  return root;
}

bool write_metrics_file(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f.good()) {
      return false;
    }
    f << text;
    if (!f.good()) {
      return false;
    }
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool emit_metrics_from_env() {
  const char* path = std::getenv("SMG_METRICS_FILE");
  if (path == nullptr || *path == '\0' || !metrics_enabled()) {
    return false;
  }
  return write_metrics_file(path, to_openmetrics(snapshot_metrics()));
}

MetricsFlusher::MetricsFlusher(std::string path, double period_seconds)
    : path_(std::move(path)), period_(period_seconds) {
  write_metrics_file(path_, to_openmetrics(snapshot_metrics()));
  thread_ = std::thread([this] { run(); });
}

MetricsFlusher::~MetricsFlusher() { stop(); }

void MetricsFlusher::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return;
    }
    stopping_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  // Final flush so the file holds the end-of-run counts even when the
  // last period never elapsed.
  write_metrics_file(path_, to_openmetrics(snapshot_metrics()));
}

void MetricsFlusher::run() {
  const auto period = std::chrono::duration<double>(period_);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, period, [this] { return stopping_; })) {
      return;
    }
    lock.unlock();
    write_metrics_file(path_, to_openmetrics(snapshot_metrics()));
    lock.lock();
  }
}

std::unique_ptr<MetricsFlusher> MetricsFlusher::start_from_env() {
  const char* path = std::getenv("SMG_METRICS_FILE");
  const char* period = std::getenv("SMG_METRICS_PERIOD");
  if (path == nullptr || *path == '\0' || period == nullptr ||
      !metrics_enabled()) {
    return nullptr;
  }
  char* end = nullptr;
  const double seconds = std::strtod(period, &end);
  if (end == period || !(seconds > 0.0)) {
    return nullptr;
  }
  return std::make_unique<MetricsFlusher>(path, seconds);
}

}  // namespace smg::obs
