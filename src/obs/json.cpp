#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace smg::obs {

namespace {

/// Append one Unicode code point as UTF-8 (cp must be a scalar value).
void append_utf8(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  bool eof() const noexcept { return pos >= text.size(); }
  char peek() const noexcept { return eof() ? '\0' : text[pos]; }

  void skip_ws() noexcept {
    while (!eof() && (text[pos] == ' ' || text[pos] == '\t' ||
                      text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) noexcept {
    if (peek() == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) noexcept {
    if (text.substr(pos, lit.size()) == lit) {
      pos += lit.size();
      return true;
    }
    return false;
  }

  /// Consume exactly four hex digits into `v`.
  bool parse_hex4(unsigned& v) noexcept {
    if (pos + 4 > text.size()) {
      return false;
    }
    v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos++];
      unsigned d = 0;
      if (c >= '0' && c <= '9') {
        d = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = static_cast<unsigned>(c - 'A') + 10;
      } else {
        return false;
      }
      v = (v << 4) | d;
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      return false;
    }
    out.clear();
    while (!eof()) {
      const char c = text[pos++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (eof()) {
          return false;
        }
        const char e = text[pos++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            unsigned cp = 0;
            if (!parse_hex4(cp)) {
              return false;
            }
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must be followed by \uDC00..\uDFFF; the
              // pair encodes one supplementary-plane code point.
              if (pos + 2 > text.size() || text[pos] != '\\' ||
                  text[pos + 1] != 'u') {
                return false;
              }
              pos += 2;
              unsigned lo = 0;
              if (!parse_hex4(lo) || lo < 0xDC00 || lo > 0xDFFF) {
                return false;
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return false;  // stray low surrogate
            }
            append_utf8(out, cp);
            break;
          }
          default:
            return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonValue& out) {
    if (++depth > kMaxDepth) {
      return false;
    }
    skip_ws();
    bool ok = false;
    if (peek() == '{') {
      ok = parse_object(out);
    } else if (peek() == '[') {
      ok = parse_array(out);
    } else if (peek() == '"') {
      std::string s;
      ok = parse_string(s);
      if (ok) {
        out = JsonValue(std::move(s));
      }
    } else if (literal("true")) {
      out = JsonValue(true);
      ok = true;
    } else if (literal("false")) {
      out = JsonValue(false);
      ok = true;
    } else if (literal("null")) {
      out = JsonValue();
      ok = true;
    } else {
      ok = parse_number(out);
    }
    --depth;
    return ok;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos;
    if (peek() == '-') {
      ++pos;
    }
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-')) {
      ++pos;
    }
    if (pos == start) {
      return false;
    }
    const std::string tok(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return false;
    }
    out = JsonValue(v);
    return true;
  }

  bool parse_array(JsonValue& out) {
    if (!consume('[')) {
      return false;
    }
    out = JsonValue::array();
    skip_ws();
    if (consume(']')) {
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item)) {
        return false;
      }
      out.push_back(std::move(item));
      skip_ws();
      if (consume(']')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }

  bool parse_object(JsonValue& out) {
    if (!consume('{')) {
      return false;
    }
    out = JsonValue::object();
    skip_ws();
    if (consume('}')) {
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) {
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        return false;
      }
      JsonValue val;
      if (!parse_value(val)) {
        return false;
      }
      out.set(std::move(key), std::move(val));
      skip_ws();
      if (consume('}')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  Parser p{text};
  JsonValue root;
  if (!p.parse_value(root)) {
    return std::nullopt;
  }
  p.skip_ws();
  if (!p.eof()) {
    return std::nullopt;  // trailing garbage
  }
  return root;
}

namespace {

/// Shortest representation that round-trips: exact integers print as
/// integers, everything else via %.17g (non-finite values are not valid
/// JSON; emit null like JSON.stringify does).
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const double r = std::floor(v);
  if (r == v && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

void write_value(std::string& out, const JsonValue& v, int indent,
                 int depth) {
  const auto newline = [&](int d) {
    if (indent >= 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent) *
                     static_cast<std::size_t>(d),
                 ' ');
    }
  };
  switch (v.type()) {
    case JsonValue::Type::Null:
      out += "null";
      break;
    case JsonValue::Type::Bool:
      out += v.as_bool() ? "true" : "false";
      break;
    case JsonValue::Type::Number:
      append_number(out, v.as_number());
      break;
    case JsonValue::Type::String:
      out += '"';
      out += json_escape(v.as_string());
      out += '"';
      break;
    case JsonValue::Type::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) {
          out += ',';
        }
        first = false;
        newline(depth + 1);
        write_value(out, item, indent, depth + 1);
      }
      if (!v.items().empty()) {
        newline(depth);
      }
      out += ']';
      break;
    }
    case JsonValue::Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) {
          out += ',';
        }
        first = false;
        newline(depth + 1);
        out += '"';
        out += json_escape(key);
        out += "\":";
        if (indent >= 0) {
          out += ' ';
        }
        write_value(out, member, indent, depth + 1);
      }
      if (!v.members().empty()) {
        newline(depth);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string json_write(const JsonValue& v, int indent) {
  std::string out;
  out.reserve(256);
  write_value(out, v, indent, 0);
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_num(double v) {
  if (std::isnan(v)) {
    return "0";
  }
  if (std::isinf(v)) {
    v = std::copysign(std::numeric_limits<double>::max(), v);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace smg::obs
