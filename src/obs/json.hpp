// Minimal JSON value tree, parser, and writer.
//
// Just enough JSON for the machine-readable exports: the telemetry report
// writer (smg-telemetry-v3), the benchmark harness (smg-bench-v1), and
// Chrome trace-event timelines all emit through here, and tests round-trip
// those files through this parser to validate the schemas without an
// external dependency.  Not a general-purpose library: numbers parse via
// strtod, objects keep at most one value per key (last wins).  \uXXXX
// escapes (including surrogate pairs) decode to UTF-8 on parse.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace smg::obs {

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  explicit JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::Number), num_(d) {}
  explicit JsonValue(std::string s) : type_(Type::String), str_(std::move(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::Array;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::Object;
    return v;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::Null; }
  bool is_bool() const noexcept { return type_ == Type::Bool; }
  bool is_number() const noexcept { return type_ == Type::Number; }
  bool is_string() const noexcept { return type_ == Type::String; }
  bool is_array() const noexcept { return type_ == Type::Array; }
  bool is_object() const noexcept { return type_ == Type::Object; }

  bool as_bool() const noexcept { return bool_; }
  double as_number() const noexcept { return num_; }
  const std::string& as_string() const noexcept { return str_; }
  const std::vector<JsonValue>& items() const noexcept { return items_; }
  std::vector<JsonValue>& items() noexcept { return items_; }

  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept {
    const auto it = members_.find(std::string(key));
    return it == members_.end() ? nullptr : &it->second;
  }
  bool has(std::string_view key) const noexcept { return find(key) != nullptr; }

  void push_back(JsonValue v) { items_.push_back(std::move(v)); }
  void set(std::string key, JsonValue v) {
    members_.insert_or_assign(std::move(key), std::move(v));
  }
  const std::map<std::string, JsonValue>& members() const noexcept {
    return members_;
  }

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

/// Parse a complete JSON document; std::nullopt on any syntax error or
/// trailing garbage.
std::optional<JsonValue> json_parse(std::string_view text);

/// Serialize with JSON string escaping (round-trips through json_parse).
std::string json_escape(std::string_view s);

/// Serialize a value tree back to JSON text (round-trips through
/// json_parse).  `indent` < 0 emits a compact single-line document;
/// >= 0 pretty-prints with that many spaces per nesting level.  Numbers
/// that hold exact integers print without a fractional part.
std::string json_write(const JsonValue& v, int indent = -1);

/// Render a number as a JSON literal that every parser accepts: JSON has
/// no inf/nan tokens (headroom is inf on FP64 levels, where the value
/// range is unbounded for practical purposes), so NaN renders as "0" and
/// infinities clamp to the largest finite double.  Finite values print
/// with %.17g (round-trip exact).  Both the telemetry report writer and
/// the metrics exposition emit numbers through here.
std::string json_num(double v);
std::string json_num(std::uint64_t v);

}  // namespace smg::obs
