#include "obs/counters.hpp"

#include <cfloat>

#include "fp/half.hpp"

namespace smg::obs {

double format_max(Prec p) noexcept {
  // Delegate to the exhaustive per-format table (fp/precision.hpp); kept as
  // a distinct symbol only so existing obs:: callers keep linking.
  return ::smg::format_max(p);
}

std::vector<LevelPrecisionCounters> collect_precision_counters(
    const MGHierarchy& h) {
  const MGConfig& cfg = h.config();
  std::vector<LevelPrecisionCounters> out;
  out.reserve(static_cast<std::size_t>(h.nlevels()));
  // Visits of each level per apply (cycle_visits, core/config.hpp): 1 for a
  // V-cycle, doubling per W recursion, l+1 under the F-cycle's per-level V
  // sub-cycle roots.  The F counts are NOT powers of two — any doubling
  // loop here would overcount (that was the pre-F W-coarsest bug in the
  // halo model; both now share the one helper).
  std::vector<std::uint64_t> visits(static_cast<std::size_t>(h.nlevels()), 1);
  for (int l = 0; l < h.nlevels(); ++l) {
    visits[static_cast<std::size_t>(l)] = static_cast<std::uint64_t>(
        cycle_visits(cfg.cycle, l, h.nlevels()));
  }
  // Autopilot repair ledger: count the decisions that targeted each level.
  std::vector<std::uint32_t> rescales(static_cast<std::size_t>(h.nlevels()),
                                      0);
  std::vector<std::uint32_t> promotions(static_cast<std::size_t>(h.nlevels()),
                                        0);
  for (const AutopilotDecision& d : h.autopilot_log()) {
    if (d.level < 0 || d.level >= h.nlevels()) {
      continue;
    }
    if (d.action == AutopilotAction::Rescale) {
      ++rescales[static_cast<std::size_t>(d.level)];
    } else if (d.action == AutopilotAction::Promote) {
      ++promotions[static_cast<std::size_t>(d.level)];
    }
  }
  for (int l = 0; l < h.nlevels(); ++l) {
    const Level& lev = h.level(l);
    LevelPrecisionCounters c;
    c.level = l;
    c.rows = lev.A_full.nrows();
    const int bs = lev.A_full.block_size();
    c.stored_values = static_cast<std::uint64_t>(lev.A_full.ncells()) *
                      static_cast<std::uint64_t>(lev.A_full.ndiag()) *
                      static_cast<std::uint64_t>(bs) *
                      static_cast<std::uint64_t>(bs);
    c.matrix_bytes = lev.A_stored.value_bytes();
    c.storage = lev.storage;
    c.shifted = l >= cfg.shift_levid;
    c.scaled = lev.scaled;
    c.g = lev.g;
    c.gmax = lev.gmax;
    c.min_abs = lev.stored_min_abs;
    c.max_abs = lev.stored_max_abs;
    if (lev.scaled && lev.g > 0.0) {
      c.headroom = lev.gmax / lev.g;
    } else if (lev.stored_max_abs > 0.0) {
      c.headroom = ::smg::format_max(lev.storage) / lev.stored_max_abs;
    }
    c.overflowed = lev.trunc.overflowed;
    c.flushed_to_zero = lev.trunc.underflowed;
    c.subnormal = lev.trunc.subnormal;
    if (is_narrow_storage(lev.storage)) {
      // Matrix passes per V-cycle: nu1 + nu2 smoothing sweeps everywhere
      // except the coarsest level (dense FP64 solve), plus the downstroke
      // residual on every level that has a coarser one.
      const bool coarsest = l + 1 == h.nlevels();
      const std::uint64_t passes =
          coarsest ? 0
                   : static_cast<std::uint64_t>(cfg.nu1 + cfg.nu2) + 1;
      c.conversions_per_apply =
          passes * visits[static_cast<std::size_t>(l)] * c.stored_values;
    }
    c.rescales = rescales[static_cast<std::size_t>(l)];
    c.promotions = promotions[static_cast<std::size_t>(l)];
    out.push_back(c);
  }
  return out;
}

std::vector<LevelPrecisionDelta> counter_delta(
    const std::vector<LevelPrecisionCounters>& before,
    const std::vector<LevelPrecisionCounters>& after) {
  const std::size_t n = before.size() < after.size() ? before.size()
                                                     : after.size();
  std::vector<LevelPrecisionDelta> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const LevelPrecisionCounters& b = before[i];
    const LevelPrecisionCounters& a = after[i];
    LevelPrecisionDelta d;
    d.level = a.level;
    d.storage_before = b.storage;
    d.storage_after = a.storage;
    d.storage_changed = a.storage != b.storage;
    d.rescales = a.rescales - b.rescales;
    d.promotions = a.promotions - b.promotions;
    d.rescaled = d.rescales > 0 || a.g != b.g;
    d.overflowed = static_cast<std::int64_t>(a.overflowed) -
                   static_cast<std::int64_t>(b.overflowed);
    d.flushed_to_zero = static_cast<std::int64_t>(a.flushed_to_zero) -
                       static_cast<std::int64_t>(b.flushed_to_zero);
    d.subnormal = static_cast<std::int64_t>(a.subnormal) -
                  static_cast<std::int64_t>(b.subnormal);
    out.push_back(d);
  }
  return out;
}

}  // namespace smg::obs
