// Metrics exposition: Prometheus/OpenMetrics text and JSON snapshots.
//
// Three ways to get the registry out of the process:
//   * to_openmetrics(snapshot_metrics()) — on-demand scrape to a string
//     (Prometheus text format with a final "# EOF" terminator; histogram
//     families emit cumulative _bucket{le=...} series plus _count/_sum and
//     companion _p50/_p90/_p99 gauges extracted from the merged buckets).
//   * emit_metrics_from_env() — one-shot write to $SMG_METRICS_FILE, the
//     "SIGUSR-style request" for batch tools: call it at a natural flush
//     point (end of run, end of solve loop).
//   * MetricsFlusher — a background thread rewriting $SMG_METRICS_FILE
//     every $SMG_METRICS_PERIOD seconds (and once on stop), for
//     long-running services scraped via node-exporter-style file
//     collection.
//
// metrics_to_json() renders the same snapshot as a JSON value for the
// telemetry v3 report ("metrics" section) and the bench documents
// ("service_metrics" section).  Label values are escaped in both formats;
// numbers go through the shared obs/json helpers (JSON) or Prometheus
// literals (+Inf/-Inf/NaN allowed in text exposition).
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace smg::obs {

/// Escape a label value for text exposition: backslash, double-quote, and
/// newline escape per the Prometheus/OpenMetrics text format.
std::string openmetrics_escape_label(std::string_view v);

/// Render one snapshot as Prometheus text format ("# HELP"/"# TYPE"
/// comments, one line per sample, "# EOF" terminator).
std::string to_openmetrics(const MetricsSnapshot& snap);

/// Render one snapshot as a JSON object:
///   {"enabled": bool, "series": [{"name", "type", "labels", "value"} |
///    {"name", "type", "labels", "le", "buckets", "count", "sum",
///     "p50", "p90", "p99"}]}
/// Labels render as one pre-formatted string (`k="v",...`) so the key set
/// is fixed regardless of label names.
JsonValue metrics_to_json(const MetricsSnapshot& snap);

/// Write `text` to `path` (atomic enough for scrapes: write to a temp file
/// in the same directory, then rename).  Returns false on I/O failure.
bool write_metrics_file(const std::string& path, const std::string& text);

/// One-shot exposition driven by the environment: when SMG_METRICS_FILE
/// is set and metrics are enabled, scrape the global registry and write
/// the OpenMetrics text there.  Returns true when a file was written.
bool emit_metrics_from_env();

/// Background flush thread: rewrites `path` with a fresh scrape every
/// `period_seconds`, plus once at start and once on stop(), so the file
/// always exists while the flusher runs and always holds the final counts
/// after it.  Stops (and flushes) on destruction.
class MetricsFlusher {
 public:
  MetricsFlusher(std::string path, double period_seconds);
  ~MetricsFlusher();

  MetricsFlusher(const MetricsFlusher&) = delete;
  MetricsFlusher& operator=(const MetricsFlusher&) = delete;

  void stop();

  const std::string& path() const noexcept { return path_; }
  double period_seconds() const noexcept { return period_; }

  /// Start a flusher from SMG_METRICS_FILE + SMG_METRICS_PERIOD (seconds,
  /// > 0).  Null when either variable is missing/invalid or metrics are
  /// disabled — callers hold the pointer and let RAII flush at exit.
  static std::unique_ptr<MetricsFlusher> start_from_env();

 private:
  void run();

  std::string path_;
  double period_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace smg::obs
