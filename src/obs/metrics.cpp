#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "obs/telemetry.hpp"
#include "util/common.hpp"

namespace smg::obs {

namespace {

bool ieq(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? char(a[i] - 'A' + 'a') : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z' ? char(b[i] - 'A' + 'a') : b[i];
    if (ca != cb) {
      return false;
    }
  }
  return true;
}

}  // namespace

MetricsLevel parse_metrics(std::string_view s, MetricsLevel fallback) noexcept {
  if (ieq(s, "off") || ieq(s, "0") || ieq(s, "false")) {
    return MetricsLevel::Off;
  }
  if (ieq(s, "on") || ieq(s, "1") || ieq(s, "true")) {
    return MetricsLevel::On;
  }
  return fallback;
}

MetricsLevel effective_metrics(MetricsLevel configured) noexcept {
  const char* env = std::getenv("SMG_METRICS");
  if (env != nullptr) {
    return parse_metrics(env, configured);
  }
  return configured;
}

namespace detail {

std::atomic<bool>& metrics_flag() noexcept {
  static std::atomic<bool> g_enabled{false};
  // Env-driven enable goes through the same path as enable_metrics(true):
  // flip the flag AND pre-register the core families, so a process that
  // only sets SMG_METRICS=on still exposes zero-valued series.
  static const bool g_env_init = [] {
    const char* env = std::getenv("SMG_METRICS");
    if (env != nullptr &&
        parse_metrics(env, MetricsLevel::Off) == MetricsLevel::On) {
      g_enabled.store(true, std::memory_order_relaxed);
      register_core_metrics();
    }
    return true;
  }();
  (void)g_env_init;
  return g_enabled;
}

int metric_slot() noexcept {
  thread_local const int tl_slot = thread_slot() % kMetricShards;
  return tl_slot;
}

}  // namespace detail

void enable_metrics(bool on) noexcept {
  const bool was = detail::metrics_flag().exchange(on);
  if (on && !was) {
    register_core_metrics();
  }
}

// --------------------------------------------------------------------------
// Counter

double Counter::value() const noexcept {
  double v = 0.0;
  for (const Shard& s : shards_) {
    v += s.v.load(std::memory_order_relaxed);
  }
  return v;
}

void Counter::reset() noexcept {
  for (Shard& s : shards_) {
    s.v.store(0.0, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------------------
// Histogram

Histogram::Histogram(const HistogramSpec& spec) : spec_(spec) {
  SMG_CHECK(spec.buckets > 0 && spec.lowest > 0.0 && spec.factor > 1.0,
            "invalid HistogramSpec");
  bounds_.resize(static_cast<std::size_t>(spec.buckets));
  double b = spec.lowest;
  for (double& bound : bounds_) {
    bound = b;
    b *= spec.factor;
  }
  const std::size_t nb = bounds_.size() + 1;  // + overflow bucket
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<std::uint64_t>[]>(nb);
    for (std::size_t i = 0; i < nb; ++i) {
      s.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

int Histogram::bucket_index(double v) const noexcept {
  // First bound >= v; NaN and overflow land in the +Inf bucket.
  if (std::isnan(v)) {
    return static_cast<int>(bounds_.size());
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<int>(it - bounds_.begin());
}

void Histogram::observe(double v) noexcept {
  Shard& s = shards_[static_cast<std::size_t>(detail::metric_slot())];
  s.counts[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  s.n.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] += s.counts[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) {
    n += s.n.load(std::memory_order_relaxed);
  }
  return n;
}

double Histogram::sum() const noexcept {
  double v = 0.0;
  for (const Shard& s : shards_) {
    v += s.sum.load(std::memory_order_relaxed);
  }
  return v;
}

double Histogram::quantile(double q) const noexcept {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) {
    total += c;
  }
  if (total == 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based, ceil so q=1 is the max).
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     std::ceil(q * static_cast<double>(total))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    if (cum + counts[i] >= rank) {
      if (i >= bounds_.size()) {
        // Overflow bucket: the last finite bound is the best statement.
        return bounds_.back();
      }
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac = static_cast<double>(rank - cum) /
                          static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    cum += counts[i];
  }
  return bounds_.back();
}

void Histogram::reset() noexcept {
  const std::size_t nb = bounds_.size() + 1;
  for (Shard& s : shards_) {
    for (std::size_t i = 0; i < nb; ++i) {
      s.counts[i].store(0, std::memory_order_relaxed);
    }
    s.sum.store(0.0, std::memory_order_relaxed);
    s.n.store(0, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------------------
// Registry

struct MetricsRegistry::Entry {
  std::string name;
  std::string help;
  MetricType type;
  MetricLabels labels;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

namespace {

/// Canonical series key: name plus the rendered label pairs.
std::string series_key(std::string_view name, const MetricLabels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instrumented statics (and detached flush threads)
  // may outlive any destruction order we could pick.
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    std::string_view name, std::string_view help, MetricType type,
    MetricLabels&& labels, const HistogramSpec* spec) {
  const std::string key = series_key(name, labels);
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (series_key(e->name, e->labels) == key) {
      SMG_CHECK(e->type == type, "metric re-registered with another type");
      if (type == MetricType::Histogram) {
        SMG_CHECK(spec != nullptr &&
                      e->histogram->spec().buckets == spec->buckets &&
                      e->histogram->spec().lowest == spec->lowest &&
                      e->histogram->spec().factor == spec->factor,
                  "histogram re-registered with another spec");
      }
      return *e;
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->help = std::string(help);
  e->type = type;
  e->labels = std::move(labels);
  switch (type) {
    case MetricType::Counter:
      e->counter = std::make_unique<Counter>();
      break;
    case MetricType::Gauge:
      e->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::Histogram:
      e->histogram = std::make_unique<Histogram>(*spec);
      break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  MetricLabels labels) {
  return *find_or_create(name, help, MetricType::Counter, std::move(labels),
                         nullptr)
              .counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              MetricLabels labels) {
  return *find_or_create(name, help, MetricType::Gauge, std::move(labels),
                         nullptr)
              .gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      const HistogramSpec& spec,
                                      MetricLabels labels) {
  return *find_or_create(name, help, MetricType::Histogram, std::move(labels),
                         &spec)
              .histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.enabled = metrics_enabled();
  const std::lock_guard<std::mutex> lock(mu_);
  snap.series.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSnapshot m;
    m.name = e->name;
    m.help = e->help;
    m.type = e->type;
    m.labels = e->labels;
    switch (e->type) {
      case MetricType::Counter:
        m.value = e->counter->value();
        break;
      case MetricType::Gauge:
        m.value = e->gauge->value();
        break;
      case MetricType::Histogram: {
        const Histogram& h = *e->histogram;
        m.le = h.bounds();
        m.buckets = h.bucket_counts();
        m.count = 0;
        m.sum = h.sum();
        for (std::uint64_t c : m.buckets) {
          m.count += c;
        }
        m.p50 = h.quantile(0.50);
        m.p90 = h.quantile(0.90);
        m.p99 = h.quantile(0.99);
        break;
      }
    }
    snap.series.push_back(std::move(m));
  }
  return snap;
}

void MetricsRegistry::reset() noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    switch (e->type) {
      case MetricType::Counter:
        e->counter->reset();
        break;
      case MetricType::Gauge:
        e->gauge->reset();
        break;
      case MetricType::Histogram:
        e->histogram->reset();
        break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MetricsSnapshot snapshot_metrics() { return MetricsRegistry::global().snapshot(); }

// --------------------------------------------------------------------------
// Instrumentation helpers.  Metric names are spelled here once; the table
// in docs/METRICS.md mirrors this section.

namespace {

constexpr const char* kSolvesHelp = "Finished solves by solver and status";
constexpr const char* kLatencyHelp = "Per-solve wall seconds";
constexpr const char* kItersHelp = "Iterations to termination per solve";
constexpr const char* kHealsHelp = "Self-healing retries consumed by solves";

struct SolveSeries {
  Histogram* latency;
  Histogram* iterations;
  Counter* heals;
};

SolveSeries solve_series(std::string_view solver) {
  MetricsRegistry& r = MetricsRegistry::global();
  const MetricLabels labels{{"solver", std::string(solver)}};
  return SolveSeries{
      &r.histogram("smg_solve_latency_seconds", kLatencyHelp, kLatencySpec,
                   labels),
      &r.histogram("smg_solve_iterations", kItersHelp, kIterationSpec, labels),
      &r.counter("smg_solve_heals_total", kHealsHelp, labels),
  };
}

}  // namespace

void record_solve_metrics(std::string_view solver, double seconds,
                          int iterations, std::string_view status,
                          int heals) noexcept {
  if (!metrics_enabled()) {
    return;
  }
  MetricsRegistry& r = MetricsRegistry::global();
  r.counter("smg_solves_total", kSolvesHelp,
            {{"solver", std::string(solver)}, {"status", std::string(status)}})
      .inc();
  const SolveSeries s = solve_series(solver);
  s.latency->observe(seconds);
  s.iterations->observe(static_cast<double>(iterations));
  if (heals > 0) {
    s.heals->add(static_cast<double>(heals));
  }
}

namespace {

constexpr const char* kCacheHitsHelp = "HierarchyCache lookups served";
constexpr const char* kCacheMissesHelp = "HierarchyCache lookups that built";
constexpr const char* kCacheEvictHelp = "HierarchyCache LRU evictions";
constexpr const char* kCacheEntriesHelp =
    "Entries in the most recently touched HierarchyCache";
constexpr const char* kSetupSecondsHelp =
    "Seconds spent building MG hierarchies (cache misses)";
constexpr const char* kSetupsHelp = "MG hierarchy builds (cache misses)";

}  // namespace

void record_cache_hit() noexcept {
  if (!metrics_enabled()) {
    return;
  }
  static Counter& c = MetricsRegistry::global().counter(
      "smg_hierarchy_cache_hits_total", kCacheHitsHelp);
  c.inc();
}

void record_cache_miss() noexcept {
  if (!metrics_enabled()) {
    return;
  }
  static Counter& c = MetricsRegistry::global().counter(
      "smg_hierarchy_cache_misses_total", kCacheMissesHelp);
  c.inc();
}

void record_cache_eviction() noexcept {
  if (!metrics_enabled()) {
    return;
  }
  static Counter& c = MetricsRegistry::global().counter(
      "smg_hierarchy_cache_evictions_total", kCacheEvictHelp);
  c.inc();
}

void record_cache_setup(double seconds) noexcept {
  if (!metrics_enabled()) {
    return;
  }
  static Counter& n = MetricsRegistry::global().counter(
      "smg_hierarchy_setups_total", kSetupsHelp);
  static Counter& s = MetricsRegistry::global().counter(
      "smg_hierarchy_setup_seconds_total", kSetupSecondsHelp);
  n.inc();
  s.add(seconds);
}

void set_cache_entries(std::size_t entries) noexcept {
  if (!metrics_enabled()) {
    return;
  }
  static Gauge& g = MetricsRegistry::global().gauge(
      "smg_hierarchy_cache_entries", kCacheEntriesHelp);
  g.set(static_cast<double>(entries));
}

namespace {

constexpr const char* kApplySecondsHelp =
    "Seconds inside MG preconditioner applies";
constexpr const char* kAppliesHelp = "MG preconditioner applies";
constexpr const char* kPanelsHelp = "Panel (multi-RHS) preconditioner applies";
constexpr const char* kPanelColsHelp =
    "Right-hand-side columns pushed through panel applies";

}  // namespace

void record_precond_apply(double seconds) noexcept {
  if (!metrics_enabled()) {
    return;
  }
  static Counter& n =
      MetricsRegistry::global().counter("smg_precond_applies_total",
                                        kAppliesHelp);
  static Counter& s = MetricsRegistry::global().counter(
      "smg_precond_apply_seconds_total", kApplySecondsHelp);
  n.inc();
  s.add(seconds);
}

void record_precond_panel(int columns) noexcept {
  if (!metrics_enabled()) {
    return;
  }
  static Counter& n =
      MetricsRegistry::global().counter("smg_precond_panels_total",
                                        kPanelsHelp);
  static Counter& c = MetricsRegistry::global().counter(
      "smg_precond_panel_columns_total", kPanelColsHelp);
  n.inc();
  c.add(static_cast<double>(columns));
}

namespace {

constexpr const char* kEventsHelp =
    "Autopilot health events observed by the precision governor";
constexpr const char* kRepairsHelp =
    "Repairs executed by the precision governor";

}  // namespace

void record_autopilot_event(std::string_view event) noexcept {
  if (!metrics_enabled()) {
    return;
  }
  MetricsRegistry::global()
      .counter("smg_autopilot_events_total", kEventsHelp,
               {{"event", std::string(event)}})
      .inc();
}

void record_autopilot_repair(std::string_view action) noexcept {
  if (!metrics_enabled()) {
    return;
  }
  MetricsRegistry::global()
      .counter("smg_autopilot_repairs_total", kRepairsHelp,
               {{"action", std::string(action)}})
      .inc();
}

namespace {

constexpr const char* kHaloBytesHelp =
    "Wire bytes moved by halo exchanges per MG level";
constexpr const char* kHaloExHelp = "Halo exchanges per MG level";
constexpr const char* kHaloPackHelp =
    "Seconds in halo pack + transport per MG level";
constexpr const char* kHaloUnpackHelp = "Seconds in halo unpack per MG level";
constexpr const char* kHaloModelHelp =
    "Perfmodel wire bytes per halo exchange (achieved-vs-model reference)";

}  // namespace

HaloLevelMetrics halo_level_metrics(int level) {
  HaloLevelMetrics m;
  if (!metrics_enabled()) {
    return m;
  }
  MetricsRegistry& r = MetricsRegistry::global();
  const MetricLabels labels{{"level", std::to_string(level)}};
  m.wire_bytes =
      &r.counter("smg_halo_wire_bytes_total", kHaloBytesHelp, labels);
  m.exchanges = &r.counter("smg_halo_exchanges_total", kHaloExHelp, labels);
  m.pack_seconds =
      &r.counter("smg_halo_pack_seconds_total", kHaloPackHelp, labels);
  m.unpack_seconds =
      &r.counter("smg_halo_unpack_seconds_total", kHaloUnpackHelp, labels);
  m.model_bytes_per_exchange =
      &r.gauge("smg_halo_model_bytes_per_exchange", kHaloModelHelp, labels);
  return m;
}

void register_core_metrics() {
  MetricsRegistry& r = MetricsRegistry::global();
  for (const char* solver : {"cg", "gmres", "solve_many"}) {
    solve_series(solver);
    r.counter("smg_solves_total", kSolvesHelp,
              {{"solver", solver}, {"status", "converged"}});
  }
  r.counter("smg_hierarchy_cache_hits_total", kCacheHitsHelp);
  r.counter("smg_hierarchy_cache_misses_total", kCacheMissesHelp);
  r.counter("smg_hierarchy_cache_evictions_total", kCacheEvictHelp);
  r.gauge("smg_hierarchy_cache_entries", kCacheEntriesHelp);
  r.counter("smg_hierarchy_setups_total", kSetupsHelp);
  r.counter("smg_hierarchy_setup_seconds_total", kSetupSecondsHelp);
  r.counter("smg_precond_applies_total", kAppliesHelp);
  r.counter("smg_precond_apply_seconds_total", kApplySecondsHelp);
  r.counter("smg_precond_panels_total", kPanelsHelp);
  r.counter("smg_precond_panel_columns_total", kPanelColsHelp);
  for (const char* event : {"non_finite", "stagnation"}) {
    r.counter("smg_autopilot_events_total", kEventsHelp, {{"event", event}});
  }
  for (const char* action : {"rescale", "promote", "retry"}) {
    r.counter("smg_autopilot_repairs_total", kRepairsHelp,
              {{"action", action}});
  }
}

// --------------------------------------------------------------------------
// Request IDs

std::uint64_t acquire_request_ids(std::uint64_t n) noexcept {
  static std::atomic<std::uint64_t> g_next{1};
  return g_next.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace smg::obs
