// Solver telemetry: zero-overhead-when-off instrumentation spans.
//
// The paper's whole argument is a performance-and-accuracy ledger (per-level
// kernel times, bytes moved, truncation safety); this subsystem records the
// runtime half of that ledger.  Three levels:
//
//   Off      — nothing is recorded beyond the preconditioner's always-on
//              apply-seconds accumulator (the pre-existing PrecondBase
//              timing).  Every span degenerates to one global-pointer load
//              and a predicted branch per *kernel dispatch* (never per
//              element), so the hot loops are bitwise- and performance-
//              identical to an uninstrumented build.
//   Counters — aggregate per-(thread, MG level, kind) span accumulators:
//              seconds + call counts, padded slabs so concurrent threads
//              never share a cache line.
//   Full     — Counters plus per-occurrence trace events exportable as a
//              Chrome trace-event timeline (chrome://tracing / Perfetto).
//
// Span taxonomy (inclusive times):
//   solve > iteration > precond_apply > level > kernel{symgs, jacobi, spmv,
//   residual, residual_restrict, restrict, prolong, blas1, coarse_solve}
//
// Kernel-kind spans are opened at the *dispatch* wrappers in kernels/*.hpp
// and core/transfer.hpp; a thread-local depth guard suppresses nested
// kernel spans (e.g. the scaled-residual fallback that calls spmv inside
// residual) so kernel-kind times never double count.
//
// A Telemetry instance is installed as the process-wide "current" sink
// (obs::InstallGuard); MGPrecondAdapter installs its own instance for the
// duration of each apply, and the Krylov solvers install the adapter's
// instance for the whole solve so solver-side spans join the same ledger.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>
#include <vector>

namespace smg::obs {

enum class TelemetryLevel : int {
  Off = 0,
  Counters = 1,
  Full = 2,
};

constexpr std::string_view to_string(TelemetryLevel l) noexcept {
  switch (l) {
    case TelemetryLevel::Off:
      return "off";
    case TelemetryLevel::Counters:
      return "counters";
    case TelemetryLevel::Full:
      return "full";
  }
  return "?";
}

/// Parse "off" / "counters" / "full" (case-insensitive); `fallback` on
/// anything else.
TelemetryLevel parse_telemetry(std::string_view s,
                               TelemetryLevel fallback) noexcept;

/// Level actually used: the SMG_TELEMETRY environment variable overrides the
/// configured level when set to a valid value.
TelemetryLevel effective_level(TelemetryLevel configured) noexcept;

enum class Kind : int {
  Solve = 0,         ///< whole Krylov solve
  Iteration,         ///< one Krylov iteration
  PrecondApply,      ///< one MG preconditioner application
  Level,             ///< one visit of an MG level (inclusive of kernels)
  CoarseSolve,       ///< coarsest-level dense direct solve
  SymGS,             ///< one Gauss-Seidel sweep (forward or backward)
  Jacobi,            ///< one fused weighted-Jacobi sweep
  SpMV,              ///< y = A x
  Residual,          ///< r = b - A x
  ResidualRestrict,  ///< fused downstroke f_c = R (f - A u)
  Restrict,          ///< f_c = R r_f (unfused path)
  Prolong,           ///< u_f += P e_c
  Blas1,             ///< vector kernels in the Krylov loop (dot/axpy/...)
  HaloPack,          ///< halo exchange: pack + transport phases
  HaloUnpack,        ///< halo exchange: unpack phase
  kCount,
};

constexpr int kNumKinds = static_cast<int>(Kind::kCount);

constexpr std::string_view to_string(Kind k) noexcept {
  switch (k) {
    case Kind::Solve:
      return "solve";
    case Kind::Iteration:
      return "iteration";
    case Kind::PrecondApply:
      return "precond_apply";
    case Kind::Level:
      return "level";
    case Kind::CoarseSolve:
      return "coarse_solve";
    case Kind::SymGS:
      return "symgs";
    case Kind::Jacobi:
      return "jacobi";
    case Kind::SpMV:
      return "spmv";
    case Kind::Residual:
      return "residual";
    case Kind::ResidualRestrict:
      return "residual_restrict";
    case Kind::Restrict:
      return "restrict";
    case Kind::Prolong:
      return "prolong";
    case Kind::Blas1:
      return "blas1";
    case Kind::HaloPack:
      return "halo_pack";
    case Kind::HaloUnpack:
      return "halo_unpack";
    case Kind::kCount:
      break;
  }
  return "?";
}

struct SpanStat {
  double seconds = 0.0;
  std::uint64_t calls = 0;
};

struct TraceEvent {
  Kind kind = Kind::Solve;
  int level = -1;  ///< MG level, -1 = outside the V-cycle
  int tid = 0;     ///< recording thread's slab slot
  double t0 = 0.0;
  double t1 = 0.0;           ///< seconds since the telemetry origin
  std::uint64_t req = 0;     ///< request ID the recording thread served
};

class Telemetry {
 public:
  static constexpr int kMaxLevels = 32;
  static constexpr int kMaxThreads = 64;
  static constexpr std::size_t kMaxTraceEvents = std::size_t{1} << 20;

  explicit Telemetry(TelemetryLevel level, int nlevels);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  TelemetryLevel level() const noexcept { return level_; }
  /// Spans and counters are recorded (Counters or Full).
  bool enabled() const noexcept { return level_ >= TelemetryLevel::Counters; }
  /// Per-occurrence trace events are recorded (Full only).
  bool tracing() const noexcept { return level_ == TelemetryLevel::Full; }
  int nlevels() const noexcept { return nlevels_; }

  /// Seconds since this instance's construction (the trace time base).
  double now() const noexcept {
    return std::chrono::duration<double>(clock::now() - origin_).count();
  }

  /// Accumulate a closed span.  `level` is the MG level (-1 outside).
  void record(Kind k, int level, double t0, double t1) noexcept;

  /// Always-on preconditioner-apply accumulator (PrecondBase::apply_seconds
  /// folds onto this; it works at every telemetry level including Off).
  void record_apply(double t0, double t1) noexcept;
  double apply_seconds() const noexcept { return apply_seconds_; }
  std::uint64_t apply_calls() const noexcept { return apply_calls_; }

  /// Panel (multi-RHS) preconditioner applies: one call per apply_many with
  /// its column count, so throughput ledgers can report the amortization
  /// (columns per matrix pass).  Always on, like record_apply.
  void record_panel_apply(int k) noexcept;
  std::uint64_t panel_applies() const noexcept { return panel_applies_; }
  std::uint64_t panel_columns() const noexcept { return panel_columns_; }
  int max_panel_width() const noexcept { return max_panel_width_; }

  /// Halo traffic of the decomposed engine: one call per full exchange on
  /// MG level `level` with the bytes it moved over the wire.  Always on,
  /// like record_apply (the engine is the only caller, so undecomposed runs
  /// stay untouched); the benches gate these counters against the
  /// perfmodel's halo-bytes prediction.
  void record_halo(int level, std::uint64_t bytes) noexcept;
  std::uint64_t halo_bytes(int level) const noexcept;
  std::uint64_t halo_exchanges(int level) const noexcept;
  std::uint64_t halo_bytes_total() const noexcept;
  std::uint64_t halo_exchanges_total() const noexcept;

  /// Request IDs this instance served: the solvers note each solve's ID so
  /// the report can say which ID range a ledger covers.  Always on (one
  /// call per solve) and thread-safe (solve_many_async shares an adapter).
  void note_request(std::uint64_t id) noexcept;
  std::uint64_t request_first() const noexcept {
    return request_first_.load(std::memory_order_relaxed);
  }
  std::uint64_t request_last() const noexcept {
    return request_last_.load(std::memory_order_relaxed);
  }
  std::uint64_t request_count() const noexcept {
    return request_count_.load(std::memory_order_relaxed);
  }

  /// Vector-precision conversions (KT<->CT truncate/recover) per apply;
  /// set once by the adapter, 0 when the Krylov and compute types match.
  void set_vec_conversions_per_apply(std::uint64_t n) noexcept {
    vec_conversions_per_apply_ = n;
  }
  std::uint64_t vec_conversions_per_apply() const noexcept {
    return vec_conversions_per_apply_;
  }

  /// Clear all accumulators, counters, and trace events.
  void reset() noexcept;

  /// Aggregate of one (kind, MG level) cell over all threads; level -1 is
  /// the outside-the-cycle bucket.
  SpanStat stat(Kind k, int level) const noexcept;
  /// Aggregate of one kind over all levels and threads.
  SpanStat total(Kind k) const noexcept;

  /// Time-sorted copy of all trace events (empty unless Full).
  std::vector<TraceEvent> trace_events() const;
  /// Spans/events not recorded because the thread-slot or event caps hit.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  using clock = std::chrono::steady_clock;

  /// One cache-line-aligned per-thread accumulator slab: threads never
  /// write to each other's slab, so span recording is free of false
  /// sharing and needs no atomics.
  struct alignas(64) Slab {
    SpanStat stats[kMaxLevels + 1][kNumKinds] = {};
    std::vector<TraceEvent> events;
  };

  TelemetryLevel level_;
  int nlevels_;
  clock::time_point origin_;
  std::vector<Slab> slabs_;  ///< empty when Off
  double apply_seconds_ = 0.0;
  std::uint64_t apply_calls_ = 0;
  std::uint64_t panel_applies_ = 0;
  std::uint64_t panel_columns_ = 0;
  int max_panel_width_ = 0;
  std::uint64_t halo_bytes_[kMaxLevels] = {};
  std::uint64_t halo_exchanges_[kMaxLevels] = {};
  std::uint64_t vec_conversions_per_apply_ = 0;
  std::atomic<std::uint64_t> request_first_{0};
  std::atomic<std::uint64_t> request_last_{0};
  std::atomic<std::uint64_t> request_count_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

namespace detail {

/// Process-wide slot of the calling thread (stable for its lifetime).
int thread_slot() noexcept;

inline Telemetry*& current_slot() noexcept {
  static Telemetry* g_current = nullptr;
  return g_current;
}

inline int& level_slot() noexcept {
  thread_local int tl_level = -1;
  return tl_level;
}

inline int& kernel_depth() noexcept {
  thread_local int tl_depth = 0;
  return tl_depth;
}

}  // namespace detail

/// The installed telemetry sink, or nullptr (spans no-op).
inline Telemetry* current() noexcept { return detail::current_slot(); }

/// MG level the calling thread is currently inside (-1 outside the cycle).
inline int current_mg_level() noexcept { return detail::level_slot(); }

/// Install `t` as the current sink for this scope; restores the previous
/// sink on destruction.  A null `t` is a no-op (keeps the existing sink),
/// so call sites can pass PrecondBase::telemetry() unconditionally.
class InstallGuard {
 public:
  explicit InstallGuard(Telemetry* t) noexcept {
    if (t != nullptr) {
      prev_ = detail::current_slot();
      detail::current_slot() = t;
      active_ = true;
    }
  }
  ~InstallGuard() {
    if (active_) {
      detail::current_slot() = prev_;
    }
  }
  InstallGuard(const InstallGuard&) = delete;
  InstallGuard& operator=(const InstallGuard&) = delete;

 private:
  Telemetry* prev_ = nullptr;
  bool active_ = false;
};

/// Marks the calling thread as inside MG level `lev` (restored on exit);
/// spans opened underneath attribute to that level.
class LevelScope {
 public:
  explicit LevelScope(int lev) noexcept : prev_(detail::level_slot()) {
    detail::level_slot() = lev;
  }
  ~LevelScope() { detail::level_slot() = prev_; }
  LevelScope(const LevelScope&) = delete;
  LevelScope& operator=(const LevelScope&) = delete;

 private:
  int prev_;
};

/// RAII span for the structural kinds (solve, iteration, precond_apply,
/// level).  No-op unless a sink is installed and at least Counters.
class ScopedSpan {
 public:
  explicit ScopedSpan(Kind k) noexcept : k_(k) {
    Telemetry* t = current();
    if (t != nullptr && t->enabled()) {
      t_ = t;
      t0_ = t->now();
    }
  }
  ~ScopedSpan() {
    if (t_ != nullptr) {
      t_->record(k_, current_mg_level(), t0_, t_->now());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Telemetry* t_ = nullptr;
  Kind k_;
  double t0_ = 0.0;
};

/// RAII span for kernel kinds.  Identical to ScopedSpan plus a per-thread
/// depth guard: a kernel span opened inside another kernel span records
/// nothing, so composite kernels (scaled residual via spmv, nrm2 via dot)
/// never double count in the per-kind sums.
class KernelSpan {
 public:
  explicit KernelSpan(Kind k) noexcept : k_(k) {
    Telemetry* t = current();
    if (t == nullptr || !t->enabled()) {
      return;
    }
    if (detail::kernel_depth()++ > 0) {
      nested_ = true;
      return;
    }
    t_ = t;
    t0_ = t->now();
  }
  ~KernelSpan() {
    if (t_ != nullptr) {
      --detail::kernel_depth();
      t_->record(k_, current_mg_level(), t0_, t_->now());
    } else if (nested_) {
      --detail::kernel_depth();
    }
  }
  KernelSpan(const KernelSpan&) = delete;
  KernelSpan& operator=(const KernelSpan&) = delete;

 private:
  Telemetry* t_ = nullptr;
  Kind k_;
  bool nested_ = false;
  double t0_ = 0.0;
};

}  // namespace smg::obs
