// Telemetry reporting: joins measured span times with the perfmodel's byte
// counts to turn "this kernel took X ms" into "this kernel achieved Y GB/s,
// Z% of the bandwidth model" — the per-level ledger Figs. 7-8 of the paper
// report.  Three outputs:
//   * print_report  — fixed-width tables on a stream (util/table.hpp),
//   * to_json       — machine-readable document, schema "smg-telemetry-v3",
//   * to_chrome_trace — trace-event JSON loadable in chrome://tracing or
//                       Perfetto (one complete "X" event per recorded span).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace smg::obs {

/// One (kernel kind, MG level) aggregate joined with the byte model.
struct KernelRow {
  Kind kind = Kind::SpMV;
  int level = -1;  ///< MG level; -1 = outside the V-cycle (solver side)
  double seconds = 0.0;
  std::uint64_t calls = 0;
  /// Modeled compulsory main-memory traffic of one call; 0 when no byte
  /// model applies (blas1, coarse_solve, structural spans).
  double model_bytes_per_call = 0.0;
  double achieved_gbs = 0.0;  ///< model bytes moved / measured seconds
  double efficiency = 0.0;    ///< achieved_gbs / reference_gbs (0 if no ref)
};

/// Per-level halo traffic of the decomposed engine (empty when the level
/// ran undecomposed): measured wire bytes and the pack/unpack span times.
struct HaloLevelStat {
  int level = 0;
  std::uint64_t bytes = 0;      ///< wire bytes received, summed over exchanges
  std::uint64_t exchanges = 0;  ///< full exchanges performed
  double pack_seconds = 0.0;    ///< pack + transport span time
  double unpack_seconds = 0.0;  ///< unpack span time
};

struct SolverReport {
  double solve_seconds = 0.0;
  std::uint64_t iterations = 0;
  double precond_seconds = 0.0;
  std::uint64_t precond_calls = 0;
  /// Panel (multi-RHS) preconditioner applications and the columns they
  /// carried; 0 outside throughput mode (solve_many).
  std::uint64_t panel_applies = 0;
  std::uint64_t panel_columns = 0;
  std::uint64_t max_panel_width = 0;
  /// Achievable-bandwidth reference (e.g. measured STREAM triad GB/s);
  /// 0 disables the efficiency column.
  double reference_gbs = 0.0;
  std::uint64_t dropped = 0;
  std::vector<KernelRow> kernels;  ///< rows with calls > 0, level-major
  std::vector<LevelPrecisionCounters> levels;
  std::vector<HaloLevelStat> halo;  ///< levels with halo traffic only
  /// Precision-autopilot state (core/autopilot.hpp): the resolved policy and
  /// every decision the planner/governor took, in order.  Empty under
  /// PrecisionPolicy::Fixed.
  PrecisionPolicy policy = PrecisionPolicy::Fixed;
  std::vector<AutopilotDecision> autopilot;
  /// Realized per-level storage ladder (config().expand_ladder at report
  /// build time): one rung per level, shifts and auto-planned rungs already
  /// applied.
  std::vector<Prec> storage_ladder;
  /// Request-ID window seen by the telemetry sink: the smallest and largest
  /// solve request IDs recorded and how many solves reported one.  All zero
  /// when no solve ran under this sink.
  std::uint64_t request_first = 0;
  std::uint64_t request_last = 0;
  std::uint64_t request_count = 0;
  /// Service-metrics registry snapshot (obs/metrics.hpp) taken at report
  /// build time; `enabled` false (and `series` empty) when the metrics
  /// switch is off.
  MetricsSnapshot metrics;
};

/// Join the telemetry ledger with the hierarchy's byte model.  Uses the
/// hierarchy config's storage/compute/krylov precisions to price each
/// kernel; `reference_gbs` (optional) scales the efficiency column.
SolverReport build_report(const Telemetry& t, const MGHierarchy& h,
                          double reference_gbs = 0.0);
/// As above with the solver-side (Krylov) precision, used to price the
/// level "-1" SpMV/residual rows (default FP64).
SolverReport build_report(const Telemetry& t, const MGHierarchy& h,
                          double reference_gbs, Prec krylov);

/// Human-readable tables: solve summary, per-level kernel bandwidth,
/// per-level precision counters.
void print_report(const SolverReport& r, std::ostream& os);
void print_report(const SolverReport& r);  ///< to std::cout

/// Precision-counter table alone (examples/precision_explorer).
void print_precision_counters(const std::vector<LevelPrecisionCounters>& c,
                              std::ostream& os);
void print_precision_counters(const std::vector<LevelPrecisionCounters>& c);

/// Machine-readable report, schema "smg-telemetry-v3" (v2 added
/// "precision_policy", "autopilot", the per-level repair counters, and the
/// per-level "halo" traffic rows of the decomposed engine; v3 added the
/// "requests" ID window, the "metrics" registry snapshot, and the realized
/// per-level "storage_ladder").
std::string to_json(const SolverReport& r);

/// Chrome trace-event document ({"traceEvents":[...]}, ph "X", µs units);
/// empty trace when the telemetry level is below Full.
std::string to_chrome_trace(const Telemetry& t);

/// Write `text` to `path`; false on I/O failure.
bool write_text_file(const std::string& path, const std::string& text);

/// Honor SMG_TELEMETRY_JSON / SMG_TELEMETRY_TRACE: when set, write the JSON
/// report / Chrome trace to those paths.  Returns the number of files
/// written.
int emit_from_env(const SolverReport& r, const Telemetry& t);

}  // namespace smg::obs
