#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.hpp"

namespace smg::obs {

namespace {

char lower(char c) noexcept {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool ieq(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

TelemetryLevel parse_telemetry(std::string_view s,
                               TelemetryLevel fallback) noexcept {
  if (ieq(s, "off") || ieq(s, "0") || ieq(s, "none")) {
    return TelemetryLevel::Off;
  }
  if (ieq(s, "counters") || ieq(s, "1")) {
    return TelemetryLevel::Counters;
  }
  if (ieq(s, "full") || ieq(s, "2") || ieq(s, "trace")) {
    return TelemetryLevel::Full;
  }
  return fallback;
}

TelemetryLevel effective_level(TelemetryLevel configured) noexcept {
  const char* env = std::getenv("SMG_TELEMETRY");
  if (env == nullptr || *env == '\0') {
    return configured;
  }
  return parse_telemetry(env, configured);
}

int detail::thread_slot() noexcept {
  static std::atomic<int> next{0};
  thread_local const int slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

Telemetry::Telemetry(TelemetryLevel level, int nlevels)
    : level_(level),
      nlevels_(std::clamp(nlevels, 1, kMaxLevels)),
      origin_(clock::now()) {
  if (enabled()) {
    slabs_.resize(kMaxThreads);
  }
}

void Telemetry::record(Kind k, int level, double t0, double t1) noexcept {
  if (!enabled()) {
    return;
  }
  const int slot = detail::thread_slot();
  if (slot >= kMaxThreads) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const int li = std::clamp(level, -1, nlevels_ - 1) + 1;
  Slab& s = slabs_[static_cast<std::size_t>(slot)];
  SpanStat& st = s.stats[li][static_cast<int>(k)];
  st.seconds += t1 - t0;
  ++st.calls;
  if (tracing()) {
    if (s.events.size() >= kMaxTraceEvents) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (s.events.capacity() == 0) {
      s.events.reserve(4096);
    }
    s.events.push_back(TraceEvent{k, level, slot, t0, t1, current_request()});
  }
}

void Telemetry::record_apply(double t0, double t1) noexcept {
  apply_seconds_ += t1 - t0;
  ++apply_calls_;
  if (enabled()) {
    record(Kind::PrecondApply, -1, t0, t1);
  }
}

void Telemetry::note_request(std::uint64_t id) noexcept {
  if (id == 0) {
    return;
  }
  // Lock-free min/max over concurrent solves (solve_many_async).
  std::uint64_t first = request_first_.load(std::memory_order_relaxed);
  while ((first == 0 || id < first) &&
         !request_first_.compare_exchange_weak(first, id,
                                               std::memory_order_relaxed)) {
  }
  std::uint64_t last = request_last_.load(std::memory_order_relaxed);
  while (id > last && !request_last_.compare_exchange_weak(
                          last, id, std::memory_order_relaxed)) {
  }
  request_count_.fetch_add(1, std::memory_order_relaxed);
}

void Telemetry::record_panel_apply(int k) noexcept {
  ++panel_applies_;
  panel_columns_ += static_cast<std::uint64_t>(k);
  max_panel_width_ = std::max(max_panel_width_, k);
}

void Telemetry::record_halo(int level, std::uint64_t bytes) noexcept {
  const int li = std::clamp(level, 0, kMaxLevels - 1);
  halo_bytes_[li] += bytes;
  ++halo_exchanges_[li];
}

std::uint64_t Telemetry::halo_bytes(int level) const noexcept {
  const int li = std::clamp(level, 0, kMaxLevels - 1);
  return halo_bytes_[li];
}

std::uint64_t Telemetry::halo_exchanges(int level) const noexcept {
  const int li = std::clamp(level, 0, kMaxLevels - 1);
  return halo_exchanges_[li];
}

std::uint64_t Telemetry::halo_bytes_total() const noexcept {
  std::uint64_t sum = 0;
  for (const std::uint64_t b : halo_bytes_) {
    sum += b;
  }
  return sum;
}

std::uint64_t Telemetry::halo_exchanges_total() const noexcept {
  std::uint64_t sum = 0;
  for (const std::uint64_t n : halo_exchanges_) {
    sum += n;
  }
  return sum;
}

void Telemetry::reset() noexcept {
  for (Slab& s : slabs_) {
    for (auto& per_level : s.stats) {
      for (auto& st : per_level) {
        st = SpanStat{};
      }
    }
    s.events.clear();
  }
  apply_seconds_ = 0.0;
  apply_calls_ = 0;
  panel_applies_ = 0;
  panel_columns_ = 0;
  max_panel_width_ = 0;
  for (std::uint64_t& b : halo_bytes_) {
    b = 0;
  }
  for (std::uint64_t& n : halo_exchanges_) {
    n = 0;
  }
  request_first_.store(0, std::memory_order_relaxed);
  request_last_.store(0, std::memory_order_relaxed);
  request_count_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

SpanStat Telemetry::stat(Kind k, int level) const noexcept {
  SpanStat out;
  const int li = std::clamp(level, -1, nlevels_ - 1) + 1;
  for (const Slab& s : slabs_) {
    const SpanStat& st = s.stats[li][static_cast<int>(k)];
    out.seconds += st.seconds;
    out.calls += st.calls;
  }
  return out;
}

SpanStat Telemetry::total(Kind k) const noexcept {
  SpanStat out;
  for (const Slab& s : slabs_) {
    for (int li = 0; li <= kMaxLevels; ++li) {
      const SpanStat& st = s.stats[li][static_cast<int>(k)];
      out.seconds += st.seconds;
      out.calls += st.calls;
    }
  }
  return out;
}

std::vector<TraceEvent> Telemetry::trace_events() const {
  std::vector<TraceEvent> out;
  for (const Slab& s : slabs_) {
    out.insert(out.end(), s.events.begin(), s.events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.t0 < b.t0;
            });
  return out;
}

}  // namespace smg::obs
