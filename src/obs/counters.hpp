// Precision-event counters: the per-level safety ledger of setup-then-scale.
//
// Everything here is collected once at hierarchy setup (or derived from it)
// — no V-cycle cost.  Per level the counters answer the questions the
// paper's Theorem 4.1 and §4.3 raise:
//   * how much overflow headroom did the chosen G leave vs G_max,
//   * what magnitude range did the (scaled) matrix occupy before truncation,
//   * how many entries actually overflowed / flushed to zero / landed
//     subnormal when truncated to the storage format,
//   * which levels the shift_levid escape hatch kept in compute precision,
//   * how many storage->compute widenings one preconditioner apply performs
//     (the FP16->FP32 conversion count Alg. 3 pays per cycle).
#pragma once

#include <cstdint>
#include <vector>

#include "core/mg_hierarchy.hpp"

namespace smg::obs {

struct LevelPrecisionCounters {
  int level = 0;
  std::int64_t rows = 0;
  std::uint64_t stored_values = 0;  ///< value slots streamed per matrix pass
  std::uint64_t matrix_bytes = 0;
  Prec storage = Prec::FP64;  ///< effective (after shift_levid)
  bool shifted = false;       ///< level >= shift_levid: stored in compute prec
  bool scaled = false;

  // Theorem 4.1 ledger (zeros when the level was not scaled).
  double g = 0.0;     ///< chosen scaling target G
  double gmax = 0.0;  ///< largest admissible G
  /// Overflow headroom: gmax/G when scaled (1/scale_safety by construction),
  /// otherwise format_max/max|a_ij| — in both cases > 1 means no entry can
  /// overflow the storage format.
  double headroom = 0.0;

  // Magnitude range of the matrix actually handed to truncation (the scaled
  /// copy when scaled, the raw operator otherwise).
  double min_abs = 0.0;  ///< smallest nonzero |a_ij| (0 if all-zero)
  double max_abs = 0.0;

  // Truncation events recorded while storing the level matrix + smoother.
  std::uint64_t overflowed = 0;
  std::uint64_t flushed_to_zero = 0;  ///< nonzero entries that became 0
  std::uint64_t subnormal = 0;        ///< entries landing in FP16 subnormals

  /// Storage->compute widenings per preconditioner apply (V-cycle): number
  /// of matrix passes over this level times stored_values, 0 when storage
  /// is not a 2-byte format.  Matrix passes per V-cycle: nu1 + nu2 sweeps
  /// + 1 downstroke residual (non-coarsest levels only).
  std::uint64_t conversions_per_apply = 0;

  // Precision-autopilot ledger (core/autopilot.hpp): decisions that targeted
  // this level, cumulative since setup (the setup planner's decisions
  // included).  Both stay 0 under PrecisionPolicy::Fixed.
  std::uint32_t rescales = 0;    ///< Rescale decisions (G lowered in place)
  std::uint32_t promotions = 0;  ///< Promote decisions (storage widened)
};

/// Largest finite magnitude of a storage format.
double format_max(Prec p) noexcept;

/// Collect the per-level precision counters from a built hierarchy.
std::vector<LevelPrecisionCounters> collect_precision_counters(
    const MGHierarchy& h);

/// After-minus-before difference of two counter snapshots of the SAME
/// hierarchy: isolates what the autopilot (and its re-truncations) did
/// between two points in time, e.g. across one Guarded solve.
struct LevelPrecisionDelta {
  int level = 0;
  Prec storage_before = Prec::FP64;
  Prec storage_after = Prec::FP64;
  bool storage_changed = false;  ///< a Promote landed in between
  bool rescaled = false;         ///< G changed in between (Rescale landed)
  std::uint32_t rescales = 0;    ///< autopilot Rescale decisions in between
  std::uint32_t promotions = 0;  ///< autopilot Promote decisions in between
  /// Truncation-event deltas.  Signed: a repair re-truncates the level from
  /// its retained FP64 copy, so the counts can legitimately *drop* (e.g. to
  /// zero after a promotion to FP32).
  std::int64_t overflowed = 0;
  std::int64_t flushed_to_zero = 0;
  std::int64_t subnormal = 0;
};

/// Pairwise delta of two snapshots from collect_precision_counters on the
/// same hierarchy.  Levels are matched by position; the result has
/// min(before.size(), after.size()) entries.
std::vector<LevelPrecisionDelta> counter_delta(
    const std::vector<LevelPrecisionCounters>& before,
    const std::vector<LevelPrecisionCounters>& after);

}  // namespace smg::obs
