// Service metrics: process-global, lock-free registry for long-running use.
//
// The telemetry subsystem (telemetry.hpp) is per-run and report-oriented:
// one Telemetry instance per preconditioner, reset between experiments,
// joined with the perfmodel into a one-shot JSON report.  A throughput
// service needs the other half of observability — process-lifetime
// counters, gauges, and latency histograms that answer "what are the
// p50/p99 solve latencies, the hierarchy-cache hit rate, and the autopilot
// repair rate over the last million requests" — scraped while solves are
// in flight.
//
// Design:
//   * One process-global MetricsRegistry.  Registration (name + labels →
//     stable handle) takes a mutex; it happens on cold paths only (first
//     touch of a series, engine construction).  Hot-path updates are
//     lock-free: each metric owns kMetricShards cache-line-aligned shards
//     of relaxed atomics indexed by the calling thread's process-wide slot
//     (obs::detail::thread_slot(), shared with telemetry), merged on
//     scrape.  Scrapes are wait-free for writers and TSan-clean.
//   * Histograms use fixed log-scale buckets (upper bounds lowest *
//     factor^i plus a +Inf overflow bucket).  Exact counts merge across
//     shards; p50/p90/p99 come from the merged cumulative distribution
//     with linear interpolation inside the landing bucket, so the error is
//     bounded by one bucket width.
//   * Zero overhead when off: every record helper starts with
//     metrics_enabled() — one relaxed atomic load and a predicted branch —
//     and instrumented solves are bitwise-identical to metrics=Off solves
//     (test-gated, same contract as telemetry=Off).  The switch is sticky
//     process-wide: MGPrecondAdapter flips it on when its config (after
//     the SMG_METRICS env override) asks for metrics.
//
// Exposition (Prometheus/OpenMetrics text, JSON snapshot, background
// flusher) lives in exposition.hpp; the exported metric names are
// documented in docs/METRICS.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smg::obs {

enum class MetricsLevel : int {
  Off = 0,
  On = 1,
};

constexpr std::string_view to_string(MetricsLevel m) noexcept {
  return m == MetricsLevel::On ? "on" : "off";
}

/// Parse "off"/"on" (also "0"/"1", "false"/"true", case-insensitive);
/// `fallback` on anything else.
MetricsLevel parse_metrics(std::string_view s, MetricsLevel fallback) noexcept;

/// Level actually used: the SMG_METRICS environment variable overrides the
/// configured level when set to a valid value (same contract as
/// SMG_TELEMETRY vs MGConfig::telemetry).
MetricsLevel effective_metrics(MetricsLevel configured) noexcept;

namespace detail {

/// The sticky process-wide recording switch.  Initialized once from
/// SMG_METRICS (so standalone tools record without constructing an
/// adapter), then flipped on by any component whose effective config asks
/// for metrics.
std::atomic<bool>& metrics_flag() noexcept;

}  // namespace detail

/// True when the process records service metrics.  One relaxed atomic load
/// plus a predicted branch — the only cost instrumented hot paths pay when
/// metrics are off.
inline bool metrics_enabled() noexcept {
  return detail::metrics_flag().load(std::memory_order_relaxed);
}

/// Flip the process-wide switch.  Turning it on pre-registers the core
/// metric families (docs/METRICS.md) so scrapes expose zero-valued series
/// before the first solve.  Sticky: components enable, never disable —
/// pass false only from tests.
void enable_metrics(bool on) noexcept;

/// Number of per-thread shards per metric.  Matches Telemetry::kMaxThreads;
/// threads beyond the shard count wrap (atomics keep the counts exact,
/// wrapped threads merely share a line).
inline constexpr int kMetricShards = 64;

namespace detail {

/// This thread's shard index (thread_slot() folded into range).
int metric_slot() noexcept;

}  // namespace detail

/// Monotonically increasing counter.  add() is lock-free and wait-free:
/// one relaxed fetch_add on the calling thread's shard.
class Counter {
 public:
  void add(double v) noexcept {
    shards_[static_cast<std::size_t>(detail::metric_slot())].v.fetch_add(
        v, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1.0); }

  /// Merged value over all shards (scrape path).
  double value() const noexcept;

  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<double> v{0.0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-scale bucket layout: finite upper bounds lowest * factor^i for
/// i in [0, buckets), plus an implicit +Inf overflow bucket.
struct HistogramSpec {
  double lowest = 1e-6;  ///< upper bound of the first bucket
  double factor = 2.0;   ///< geometric growth per bucket (> 1)
  int buckets = 40;      ///< finite buckets (+Inf bucket appended)
};

/// Latency spec: 1 µs .. ~9.2 min in ×2 steps.
inline constexpr HistogramSpec kLatencySpec{1e-6, 2.0, 40};
/// Iteration-count spec: 1 .. 32768 in ×2 steps.
inline constexpr HistogramSpec kIterationSpec{1.0, 2.0, 16};

/// Fixed-bucket histogram with per-thread shards.  observe() is lock-free:
/// a binary search over the (immutable) bounds plus two relaxed atomic
/// updates on the calling thread's shard.
class Histogram {
 public:
  explicit Histogram(const HistogramSpec& spec);

  void observe(double v) noexcept;

  const HistogramSpec& spec() const noexcept { return spec_; }
  /// Finite bucket upper bounds (size spec().buckets).
  const std::vector<double>& bounds() const noexcept { return bounds_; }

  /// Merged per-bucket counts, size bounds().size() + 1 (last is +Inf).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept;
  double sum() const noexcept;

  /// q-quantile (q in [0, 1]) of the merged distribution: cumulative walk
  /// to the landing bucket, linear interpolation inside it.  Exact to
  /// within one bucket of the true quantile; 0 when empty.
  double quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;  ///< buckets + 1
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> n{0};
  };

  int bucket_index(double v) const noexcept;

  HistogramSpec spec_;
  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Label set of one series, in emission order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType : int { Counter, Gauge, Histogram };

constexpr std::string_view to_string(MetricType t) noexcept {
  switch (t) {
    case MetricType::Counter:
      return "counter";
    case MetricType::Gauge:
      return "gauge";
    case MetricType::Histogram:
      return "histogram";
  }
  return "?";
}

/// Point-in-time copy of one series (see snapshot()).
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::Counter;
  MetricLabels labels;
  double value = 0.0;  ///< counter / gauge only
  // Histogram only:
  std::vector<double> le;               ///< finite bucket upper bounds
  std::vector<std::uint64_t> buckets;   ///< per-bucket counts, le.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

struct MetricsSnapshot {
  bool enabled = false;
  std::vector<MetricSnapshot> series;  ///< registration order
};

/// The process-global registry.  Handles returned by counter()/gauge()/
/// histogram() are valid for the process lifetime; re-registering the same
/// (name, labels) returns the existing series (the type and, for
/// histograms, the spec must match — enforced).
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, std::string_view help,
                   MetricLabels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               MetricLabels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       const HistogramSpec& spec, MetricLabels labels = {});

  /// Consistent point-in-time copy of every registered series, in
  /// registration order (families stay contiguous when registered
  /// together).  Wait-free for concurrent writers.
  MetricsSnapshot snapshot() const;

  /// Zero every series, keeping registrations (tests).
  void reset() noexcept;

  std::size_t size() const;

 private:
  struct Entry;
  Entry& find_or_create(std::string_view name, std::string_view help,
                        MetricType type, MetricLabels&& labels,
                        const HistogramSpec* spec);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Snapshot of the global registry with the enabled flag filled in.
MetricsSnapshot snapshot_metrics();

// ---------------------------------------------------------------------------
// Instrumentation helpers.  Every exported metric name lives here (and in
// docs/METRICS.md); call sites never spell names.  All helpers no-op when
// !metrics_enabled().

/// Label value for SolveResult status: "converged", "breakdown", "maxiter".
constexpr std::string_view solve_status_label(bool converged,
                                              bool breakdown) noexcept {
  return converged ? std::string_view{"converged"}
                   : (breakdown ? std::string_view{"breakdown"}
                                : std::string_view{"maxiter"});
}

/// One finished solve (or one column of a batched solve): latency +
/// iterations histograms and the solves/heals counters, labeled by solver
/// ("cg", "gmres", "solve_many") and status.
void record_solve_metrics(std::string_view solver, double seconds,
                          int iterations, std::string_view status,
                          int heals) noexcept;

/// HierarchyCache events (any instance; the counters are process-wide).
void record_cache_hit() noexcept;
void record_cache_miss() noexcept;
void record_cache_eviction() noexcept;
/// One hierarchy build (a cache miss's setup cost).
void record_cache_setup(double seconds) noexcept;
/// Current entry count of the most recently touched cache.
void set_cache_entries(std::size_t entries) noexcept;

/// One preconditioner apply (the setup-vs-apply split's apply half).
void record_precond_apply(double seconds) noexcept;
/// One panel apply of `columns` right-hand sides.
void record_precond_panel(int columns) noexcept;

/// Autopilot health: one observed HealthEvent ("non_finite",
/// "stagnation") and one executed repair ("rescale", "promote", plus
/// "retry" when a solver retries from the last good iterate).
void record_autopilot_event(std::string_view event) noexcept;
void record_autopilot_repair(std::string_view action) noexcept;

/// Per-level halo handles for the decomposed engine.  Registration is
/// cold (engine construction); the engine caches the pointers and updates
/// them lock-free on every exchange.  `model_bytes_per_exchange` is set
/// once from the perfmodel halo ledger so scrapes can compare achieved
/// wire bytes per exchange against the model exactly.
struct HaloLevelMetrics {
  Counter* wire_bytes = nullptr;
  Counter* exchanges = nullptr;
  Counter* pack_seconds = nullptr;
  Counter* unpack_seconds = nullptr;
  Gauge* model_bytes_per_exchange = nullptr;
};

/// Registers (or finds) the level's halo series.  Returns null pointers
/// when metrics are disabled at call time.
HaloLevelMetrics halo_level_metrics(int level);

/// Pre-register the core families so exposition shows them at zero before
/// the first solve (called by enable_metrics(true)).
void register_core_metrics();

// ---------------------------------------------------------------------------
// Request IDs: a monotonically increasing per-process solve identifier,
// threaded through SolveOptions into telemetry trace events so one slow
// solve's Chrome trace can be pulled out of a batched, sharded run.

/// Reserve a contiguous block of `n` request IDs; returns the first.
/// IDs start at 1 (0 means "unassigned" everywhere).
std::uint64_t acquire_request_ids(std::uint64_t n) noexcept;

namespace detail {

inline std::uint64_t& request_slot() noexcept {
  thread_local std::uint64_t tl_request = 0;
  return tl_request;
}

}  // namespace detail

/// Request ID the calling thread is currently serving (0 outside a solve).
inline std::uint64_t current_request() noexcept {
  return detail::request_slot();
}

/// Tags the calling thread with a request ID for the scope's duration;
/// telemetry spans recorded underneath carry it into the trace.
class RequestScope {
 public:
  explicit RequestScope(std::uint64_t id) noexcept
      : prev_(detail::request_slot()) {
    detail::request_slot() = id;
  }
  ~RequestScope() { detail::request_slot() = prev_; }
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  std::uint64_t prev_;
};

}  // namespace smg::obs
