// SG-DIA (structured-grid diagonal) sparse matrix.
//
// This is the index-free format of guideline §3.2: a structured matrix stores
// one value per (cell, stencil-offset) pair and *no* integer index arrays, so
// truncating values to FP16 halves (vs FP32) or quarters (vs FP64) the whole
// memory footprint — unlike CSR where the index arrays are incompressible.
//
// Layouts (§5.1):
//  * AOS  — values of one cell's stencil entries are contiguous
//           (hypre SMG/PFMG order); scalar-friendly, SIMD-hostile for
//           mixed precision because each 2-byte entry needs its own fcvt.
//  * SOA  — values of one stencil offset over all cells are contiguous;
//           one vector-convert per SIMD width, the paper's optimized form.
//  * SOAL — line-blocked SOA: within each grid line (fixed j,k) the nx-long
//           runs of all stencil offsets are stored back to back.  Same
//           SIMD-per-offset inner loops as SOA, but a kernel sweeping a line
//           touches one contiguous region instead of ndiag strided streams —
//           the single-stream access pattern hardware prefetchers love.
//           This is the layout behind the "MG-fp16/fp32(opt)" numbers.
//
// Vector PDEs (rhd-3T, oil-4C, solid-3D) attach an r x r dense block to every
// stencil entry; `block_size` is a runtime parameter and scalar problems use
// block_size == 1.
//
// Entries whose neighbor falls outside the box are stored (to keep the format
// rectangular) but are zero by construction; kernels never read them because
// per-diagonal loop bounds exclude them.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <span>

#include "fp/convert.hpp"
#include "fp/precision.hpp"
#include "grid/box.hpp"
#include "grid/stencil.hpp"
#include "util/aligned.hpp"
#include "util/common.hpp"

namespace smg {

enum class Layout {
  AOS,
  SOA,
  SOAL,
};

constexpr std::string_view to_string(Layout l) noexcept {
  switch (l) {
    case Layout::AOS:
      return "aos";
    case Layout::SOA:
      return "soa";
    case Layout::SOAL:
      return "soal";
  }
  return "?";
}

template <class T>
class StructMat {
 public:
  using value_type = T;

  StructMat() = default;

  StructMat(Box box, Stencil st, int block_size = 1,
            Layout layout = Layout::SOA)
      : box_(box),
        st_(std::move(st)),
        bs_(block_size),
        layout_(layout),
        ncells_(box.size()),
        block2_(static_cast<std::int64_t>(block_size) * block_size) {
    SMG_CHECK(block_size >= 1, "block size must be positive");
    nvals_ = static_cast<std::size_t>(ncells_) * st_.ndiag() * block2_;
    // kSimdSlack zero-initialized spare elements allow SIMD kernels to issue
    // full-width loads at the tail of any diagonal run (the excess lanes are
    // masked out of the computation).
    vals_.assign(nvals_ + kSimdSlack, T{});
  }

  /// Elements of read-safe slack past the logical value array.
  static constexpr std::size_t kSimdSlack = 16;

  const Box& box() const noexcept { return box_; }
  const Stencil& stencil() const noexcept { return st_; }
  int block_size() const noexcept { return bs_; }
  Layout layout() const noexcept { return layout_; }
  std::int64_t ncells() const noexcept { return ncells_; }
  std::int64_t nrows() const noexcept { return ncells_ * bs_; }
  int ndiag() const noexcept { return st_.ndiag(); }

  /// All stored values, including boundary-truncated zeros.
  std::span<T> values() noexcept { return {vals_.data(), nvals_}; }
  std::span<const T> values() const noexcept {
    return {vals_.data(), nvals_};
  }

  /// Base index of the r x r block at (cell, diag).
  std::int64_t block_index(std::int64_t cell, int d) const noexcept {
    switch (layout_) {
      case Layout::AOS:
        return (cell * st_.ndiag() + d) * block2_;
      case Layout::SOA:
        return (static_cast<std::int64_t>(d) * ncells_ + cell) * block2_;
      case Layout::SOAL: {
        const std::int64_t line = cell / box_.nx;
        const std::int64_t i = cell % box_.nx;
        return ((line * st_.ndiag() + d) * box_.nx + i) * block2_;
      }
    }
    return 0;
  }

  T& at(std::int64_t cell, int d, int br = 0, int bc = 0) noexcept {
    return vals_[block_index(cell, d) + br * bs_ + bc];
  }
  const T& at(std::int64_t cell, int d, int br = 0, int bc = 0) const noexcept {
    return vals_[block_index(cell, d) + br * bs_ + bc];
  }

  // Distinctly named from at(cell, ...): an int literal first argument would
  // otherwise silently select the wrong overload.
  T& at_ijk(int i, int j, int k, int d, int br = 0, int bc = 0) noexcept {
    return at(box_.idx(i, j, k), d, br, bc);
  }
  const T& at_ijk(int i, int j, int k, int d, int br = 0,
                  int bc = 0) const noexcept {
    return at(box_.idx(i, j, k), d, br, bc);
  }

  /// Contiguous values of one stencil offset (SOA layout only).
  std::span<const T> diag_run(int d) const noexcept {
    SMG_CHECK(layout_ == Layout::SOA, "diag_run requires SOA layout");
    return {vals_.data() + static_cast<std::size_t>(d) * ncells_ * block2_,
            static_cast<std::size_t>(ncells_ * block2_)};
  }

  /// Number of in-box (logical) nonzero slots: excludes boundary truncation.
  std::int64_t nnz_logical() const noexcept {
    std::int64_t total = 0;
    for (int d = 0; d < st_.ndiag(); ++d) {
      const Offset& o = st_.offset(d);
      const std::int64_t vx = std::max(0, box_.nx - std::abs(int(o.dx)));
      const std::int64_t vy = std::max(0, box_.ny - std::abs(int(o.dy)));
      const std::int64_t vz = std::max(0, box_.nz - std::abs(int(o.dz)));
      total += vx * vy * vz;
    }
    return total * block2_;
  }

  /// Stored bytes of floating-point data (the Table 2 accounting).
  std::size_t value_bytes() const noexcept { return nvals_ * sizeof(T); }

  /// Zero all entries whose neighbor lies outside the box (invariant repair
  /// after bulk writes).
  void clear_out_of_box() noexcept {
    for (int d = 0; d < st_.ndiag(); ++d) {
      const Offset& o = st_.offset(d);
      for (int k = 0; k < box_.nz; ++k) {
        for (int j = 0; j < box_.ny; ++j) {
          for (int i = 0; i < box_.nx; ++i) {
            if (!box_.contains(i + o.dx, j + o.dy, k + o.dz)) {
              T* b = vals_.data() + block_index(box_.idx(i, j, k), d);
              for (std::int64_t q = 0; q < block2_; ++q) {
                b[q] = T{};
              }
            }
          }
        }
      }
    }
  }

  /// True if every out-of-box slot is exactly zero.
  bool out_of_box_clear() const noexcept {
    for (int d = 0; d < st_.ndiag(); ++d) {
      const Offset& o = st_.offset(d);
      for (int k = 0; k < box_.nz; ++k) {
        for (int j = 0; j < box_.ny; ++j) {
          for (int i = 0; i < box_.nx; ++i) {
            if (!box_.contains(i + o.dx, j + o.dy, k + o.dz)) {
              const T* b = vals_.data() + block_index(box_.idx(i, j, k), d);
              for (std::int64_t q = 0; q < block2_; ++q) {
                if (static_cast<float>(b[q]) != 0.0f) {
                  return false;
                }
              }
            }
          }
        }
      }
    }
    return true;
  }

  const T* data() const noexcept { return vals_.data(); }
  T* data() noexcept { return vals_.data(); }

 private:
  Box box_{};
  Stencil st_{};
  int bs_ = 1;
  Layout layout_ = Layout::SOA;
  std::int64_t ncells_ = 0;
  std::int64_t block2_ = 1;
  std::size_t nvals_ = 0;
  avec<T> vals_;
};

/// Re-convert `a` into the existing matrix `out` (same box, stencil, and
/// block size; any layout), overwriting its values in place — no allocation.
/// This is the autopilot's re-truncation path: a level can be re-stored at a
/// different safety or precision from the retained FP64 setup matrix without
/// redoing the Galerkin chain.  Returns overflow stats when narrowing.
template <class Dst, class Src>
void convert_into(const StructMat<Src>& a, StructMat<Dst>& out,
                  TruncateReport* report = nullptr) {
  SMG_CHECK(out.box() == a.box() && out.block_size() == a.block_size() &&
                out.ndiag() == a.ndiag(),
            "convert_into requires an identically shaped destination");
  const Layout layout = out.layout();
  TruncateReport rep;
  const int bs = a.block_size();
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;

  const auto run = [&rep](const Src* src, Dst* dst, std::size_t n) {
    if constexpr (is_storage_only_v<Dst>) {
      rep += truncate<Dst, Src>({src, n}, {dst, n});
    } else {
      for (std::size_t q = 0; q < n; ++q) {
        dst[q] = static_cast<Dst>(static_cast<double>(src[q]));
      }
    }
  };

  if (a.layout() != Layout::AOS && layout != Layout::AOS) {
    // Both SOA-family layouts are contiguous per (line, diagonal) run of
    // nx * bs^2 values: convert run-wise (per-element block_index would
    // dominate the setup phase otherwise).
    const Box& box = a.box();
    const std::int64_t nlines =
        static_cast<std::int64_t>(box.ny) * box.nz;
    const std::size_t runlen =
        static_cast<std::size_t>(box.nx) * static_cast<std::size_t>(block2);
    for (std::int64_t line = 0; line < nlines; ++line) {
      const std::int64_t cell0 = line * box.nx;
      for (int d = 0; d < a.ndiag(); ++d) {
        run(a.data() + a.block_index(cell0, d),
            out.data() + out.block_index(cell0, d), runlen);
      }
    }
  } else {
    for (std::int64_t cell = 0; cell < a.ncells(); ++cell) {
      for (int d = 0; d < a.ndiag(); ++d) {
        run(a.data() + a.block_index(cell, d),
            out.data() + out.block_index(cell, d),
            static_cast<std::size_t>(block2));
      }
    }
  }
  if (report != nullptr) {
    *report = rep;
  }
}

/// Copy with a different layout and/or value type; returns overflow stats
/// when narrowing (used by the hierarchy to detect the need to scale).
template <class Dst, class Src>
StructMat<Dst> convert(const StructMat<Src>& a, Layout layout,
                       TruncateReport* report = nullptr) {
  StructMat<Dst> out(a.box(), a.stencil(), a.block_size(), layout);
  convert_into(a, out, report);
  return out;
}

}  // namespace smg
