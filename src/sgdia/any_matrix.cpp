#include "sgdia/any_matrix.hpp"

namespace smg {

AnyMat AnyMat::from(const StructMat<double>& src, Prec p, Layout layout,
                    TruncateReport* report) {
  switch (p) {
    case Prec::FP64:
      return AnyMat(convert<double>(src, layout, report));
    case Prec::FP32:
      return AnyMat(convert<float>(src, layout, report));
    case Prec::FP16:
      return AnyMat(convert<half>(src, layout, report));
    case Prec::BF16:
      return AnyMat(convert<bfloat16>(src, layout, report));
    case Prec::FP8:
      return AnyMat(convert<fp8>(src, layout, report));
  }
  SMG_CHECK(false, "unknown precision");
}

void AnyMat::retruncate_from(const StructMat<double>& src, Prec p,
                             Layout layout, TruncateReport* report) {
  const bool in_place = std::visit(
      [&](auto& m) {
        using T = typename std::decay_t<decltype(m)>::value_type;
        if (prec_of_v<T> != p || m.layout() != layout ||
            m.box() != src.box() || m.block_size() != src.block_size() ||
            m.ndiag() != src.ndiag()) {
          return false;
        }
        convert_into(src, m, report);
        return true;
      },
      m_);
  if (!in_place) {
    *this = from(src, p, layout, report);
  }
}

Prec AnyMat::precision() const noexcept {
  return visit([](const auto& m) {
    using T = typename std::decay_t<decltype(m)>;
    return prec_of_v<typename T::value_type>;
  });
}

Layout AnyMat::layout() const noexcept {
  return visit([](const auto& m) { return m.layout(); });
}

const Box& AnyMat::box() const noexcept {
  return visit([](const auto& m) -> const Box& { return m.box(); });
}

const Stencil& AnyMat::stencil() const noexcept {
  return visit([](const auto& m) -> const Stencil& { return m.stencil(); });
}

int AnyMat::block_size() const noexcept {
  return visit([](const auto& m) { return m.block_size(); });
}

std::int64_t AnyMat::ncells() const noexcept {
  return visit([](const auto& m) { return m.ncells(); });
}

std::int64_t AnyMat::nrows() const noexcept {
  return visit([](const auto& m) { return m.nrows(); });
}

std::size_t AnyMat::value_bytes() const noexcept {
  return visit([](const auto& m) { return m.value_bytes(); });
}

std::int64_t AnyMat::nnz_logical() const noexcept {
  return visit([](const auto& m) { return m.nnz_logical(); });
}

}  // namespace smg
