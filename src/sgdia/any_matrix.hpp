// Type-erased SG-DIA matrix over the supported storage precisions.
//
// The multigrid hierarchy decides storage precision per level at runtime
// (PrecisionConfig + shift_levid, §4.3); AnyMat lets a Level own "a matrix in
// whatever precision setup chose" while kernels stay statically typed via
// std::visit dispatch.
#pragma once

#include <variant>

#include "sgdia/struct_matrix.hpp"

namespace smg {

class AnyMat {
 public:
  using Variant = std::variant<StructMat<double>, StructMat<float>,
                               StructMat<half>, StructMat<bfloat16>,
                               StructMat<fp8>>;

  AnyMat() : m_(StructMat<double>{}) {}

  template <class T>
  explicit AnyMat(StructMat<T> m) : m_(std::move(m)) {}

  /// Truncate `src` into the requested precision and layout.
  static AnyMat from(const StructMat<double>& src, Prec p, Layout layout,
                     TruncateReport* report = nullptr);

  /// Re-truncate `src` into this matrix.  When the currently held matrix
  /// already has precision `p`, layout `layout`, and `src`'s shape, values
  /// are overwritten in place (no allocation — the autopilot's repair path);
  /// otherwise the held matrix is replaced, e.g. on an FP16 -> FP32 level
  /// promotion.
  void retruncate_from(const StructMat<double>& src, Prec p, Layout layout,
                       TruncateReport* report = nullptr);

  Prec precision() const noexcept;
  Layout layout() const noexcept;
  const Box& box() const noexcept;
  const Stencil& stencil() const noexcept;
  int block_size() const noexcept;
  std::int64_t ncells() const noexcept;
  std::int64_t nrows() const noexcept;
  std::size_t value_bytes() const noexcept;
  std::int64_t nnz_logical() const noexcept;

  template <class F>
  decltype(auto) visit(F&& f) const {
    return std::visit(std::forward<F>(f), m_);
  }

  template <class T>
  const StructMat<T>* get_if() const noexcept {
    return std::get_if<StructMat<T>>(&m_);
  }

 private:
  Variant m_;
};

}  // namespace smg
