// CSR matrix — the general (unstructured) sparse baseline.
//
// Guideline §3.2's counterpoint: CSR carries one integer index per nonzero
// plus a row-pointer array, none of which lower-precision storage can
// compress; Table 2's upper-bound speedups and Fig. 7's "vendor library"
// series come from this module.  Value type is templated so mixed-precision
// CSR (fp16 values + int32 indices) is measurable too.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "fp/precision.hpp"
#include "obs/telemetry.hpp"
#include "sgdia/struct_matrix.hpp"
#include "util/aligned.hpp"
#include "util/common.hpp"

namespace smg {

template <class VT, class IT = std::int32_t>
class CsrMat {
 public:
  using value_type = VT;
  using index_type = IT;

  CsrMat() = default;
  CsrMat(std::int64_t nrows, avec<IT> row_ptr, avec<IT> col_idx, avec<VT> vals)
      : nrows_(nrows),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        vals_(std::move(vals)) {
    SMG_CHECK(row_ptr_.size() == static_cast<std::size_t>(nrows_) + 1,
              "bad row_ptr length");
    SMG_CHECK(col_idx_.size() == vals_.size(), "col/val length mismatch");
  }

  std::int64_t nrows() const noexcept { return nrows_; }
  std::int64_t nnz() const noexcept {
    return static_cast<std::int64_t>(vals_.size());
  }

  std::span<const IT> row_ptr() const noexcept {
    return {row_ptr_.data(), row_ptr_.size()};
  }
  std::span<const IT> col_idx() const noexcept {
    return {col_idx_.data(), col_idx_.size()};
  }
  std::span<const VT> values() const noexcept {
    return {vals_.data(), vals_.size()};
  }
  std::span<VT> values() noexcept { return {vals_.data(), vals_.size()}; }

  /// Total storage bytes: values + column indices + row pointer (Table 2).
  std::size_t bytes() const noexcept {
    return vals_.size() * sizeof(VT) + col_idx_.size() * sizeof(IT) +
           row_ptr_.size() * sizeof(IT);
  }

  /// y = A x, widening values to CT in registers.
  template <class CT>
  void spmv(std::span<const CT> x, std::span<CT> y) const {
    SMG_CHECK(static_cast<std::int64_t>(y.size()) == nrows_, "spmv size");
    const obs::KernelSpan span(obs::Kind::SpMV);
    const IT* SMG_RESTRICT rp = row_ptr_.data();
    const IT* SMG_RESTRICT ci = col_idx_.data();
    const VT* SMG_RESTRICT va = vals_.data();
#pragma omp parallel for schedule(static)
    for (std::int64_t r = 0; r < nrows_; ++r) {
      CT acc{0};
      for (IT p = rp[r]; p < rp[r + 1]; ++p) {
        CT v;
        if constexpr (is_storage_only_v<VT>) {
          v = static_cast<CT>(static_cast<float>(va[p]));
        } else {
          v = static_cast<CT>(va[p]);
        }
        acc += v * x[ci[p]];
      }
      y[r] = acc;
    }
  }

  /// Forward substitution for a lower-triangular CSR matrix (unit handling
  /// via the stored diagonal): x_r = (b_r - sum_{c<r} a_rc x_c) / a_rr.
  /// Column indices within each row must be ascending with the diagonal last.
  template <class CT>
  void sptrsv_lower(std::span<const CT> b, std::span<CT> x) const {
    const obs::KernelSpan span(obs::Kind::SymGS);
    const IT* SMG_RESTRICT rp = row_ptr_.data();
    const IT* SMG_RESTRICT ci = col_idx_.data();
    const VT* SMG_RESTRICT va = vals_.data();
    for (std::int64_t r = 0; r < nrows_; ++r) {
      CT acc = b[r];
      const IT end = rp[r + 1];
      SMG_CHECK(end > rp[r], "empty row in triangular solve");
      for (IT p = rp[r]; p < end - 1; ++p) {
        CT v;
        if constexpr (is_storage_only_v<VT>) {
          v = static_cast<CT>(static_cast<float>(va[p]));
        } else {
          v = static_cast<CT>(va[p]);
        }
        acc -= v * x[ci[p]];
      }
      CT diag;
      if constexpr (is_storage_only_v<VT>) {
        diag = static_cast<CT>(static_cast<float>(va[end - 1]));
      } else {
        diag = static_cast<CT>(va[end - 1]);
      }
      SMG_CHECK(ci[end - 1] == static_cast<IT>(r), "diagonal must close row");
      x[r] = acc / diag;
    }
  }

 private:
  std::int64_t nrows_ = 0;
  avec<IT> row_ptr_;
  avec<IT> col_idx_;
  avec<VT> vals_;
};

/// Assemble a CSR copy of a structured matrix (in-box entries only, rows in
/// cell-major dof order, columns ascending).
template <class VT, class IT = std::int32_t, class ST>
CsrMat<VT, IT> csr_from_struct(const StructMat<ST>& A) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  const std::int64_t nrows = A.nrows();

  avec<IT> row_ptr(static_cast<std::size_t>(nrows) + 1, IT{0});
  std::vector<std::pair<IT, VT>> entries;
  avec<IT> col_idx;
  avec<VT> vals;
  col_idx.reserve(static_cast<std::size_t>(A.nnz_logical()));
  vals.reserve(static_cast<std::size_t>(A.nnz_logical()));

  std::int64_t row = 0;
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        for (int br = 0; br < bs; ++br, ++row) {
          entries.clear();
          for (int d = 0; d < st.ndiag(); ++d) {
            const Offset& o = st.offset(d);
            if (!box.contains(i + o.dx, j + o.dy, k + o.dz)) {
              continue;
            }
            const std::int64_t nbr = box.idx(i + o.dx, j + o.dy, k + o.dz);
            for (int bc = 0; bc < bs; ++bc) {
              const auto v = A.at(cell, d, br, bc);
              VT out;
              if constexpr (is_storage_only_v<VT>) {
                out = VT{static_cast<float>(v)};
              } else {
                out = static_cast<VT>(static_cast<double>(v));
              }
              entries.emplace_back(static_cast<IT>(nbr * bs + bc), out);
            }
          }
          std::sort(entries.begin(), entries.end(),
                    [](const auto& a, const auto& b) {
                      return a.first < b.first;
                    });
          for (const auto& [c, v] : entries) {
            col_idx.push_back(c);
            vals.push_back(v);
          }
          row_ptr[static_cast<std::size_t>(row) + 1] =
              static_cast<IT>(col_idx.size());
        }
      }
    }
  }
  return CsrMat<VT, IT>(nrows, std::move(row_ptr), std::move(col_idx),
                        std::move(vals));
}

/// CSR storage bytes per nonzero for the Table 2 model: value + index +
/// amortized row pointer delta * index.
double csr_bytes_per_nnz(std::size_t value_bytes, std::size_t index_bytes,
                         double delta) noexcept;

}  // namespace smg
