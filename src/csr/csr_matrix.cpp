#include "csr/csr_matrix.hpp"

namespace smg {

double csr_bytes_per_nnz(std::size_t value_bytes, std::size_t index_bytes,
                         double delta) noexcept {
  // One value + one column index per nonzero, plus the row pointer amortized
  // by delta = (m + 1) / nnz (Table 2 of the paper).
  return static_cast<double>(value_bytes) +
         static_cast<double>(index_bytes) * (1.0 + delta);
}

}  // namespace smg
