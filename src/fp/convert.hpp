// Batch precision conversion with overflow accounting.
//
// Truncating a matrix to FP16 is only safe after the setup-then-scale pass
// (Alg. 1); these helpers both perform the conversion and *report* how many
// entries would have overflowed/underflowed, which the hierarchy uses to
// decide whether scaling is needed and tests use to validate Theorem 4.1.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

#include "fp/bfloat16.hpp"
#include "fp/fp8.hpp"
#include "fp/half.hpp"
#include "fp/precision.hpp"

#if defined(SMG_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace smg {

/// Outcome of truncating a buffer to a narrower format.
struct TruncateReport {
  std::size_t overflowed = 0;   ///< finite values that became +/-inf
  std::size_t underflowed = 0;  ///< nonzero values that became zero
  std::size_t subnormal = 0;    ///< nonzero values landing in subnormal range

  bool safe() const noexcept { return overflowed == 0; }

  TruncateReport& operator+=(const TruncateReport& o) noexcept {
    overflowed += o.overflowed;
    underflowed += o.underflowed;
    subnormal += o.subnormal;
    return *this;
  }
};

template <class Dst, class Src>
inline TruncateReport truncate(std::span<const Src> src, std::span<Dst> dst) {
  TruncateReport rep;
  const std::size_t n = std::min(src.size(), dst.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = src[i];
    const Dst d{static_cast<float>(s)};
    if constexpr (is_storage_only_v<Dst>) {
      const bool src_finite = std::isfinite(static_cast<double>(s));
      if (src_finite && d.is_inf()) {
        ++rep.overflowed;
      }
      if (s != Src{0} && d.is_zero()) {
        ++rep.underflowed;
      }
      // bfloat16 deliberately reports no subnormal landings (its subnormal
      // range starts at 2^-126, same as FP32's — a value there is equally
      // degraded at compute precision, so it is not a *storage* hazard).
      if constexpr (!std::is_same_v<Dst, bfloat16>) {
        if (d.is_subnormal()) {
          ++rep.subnormal;
        }
      }
    } else {
      if (std::isfinite(static_cast<double>(s)) &&
          !std::isfinite(static_cast<double>(d))) {
        ++rep.overflowed;
      }
      if (s != Src{0} && d == Dst{0}) {
        ++rep.underflowed;
      }
    }
    dst[i] = d;
  }
  return rep;
}

template <class Dst, class Src>
  requires(!is_storage_only_v<Dst> && !is_storage_only_v<Src>)
inline TruncateReport truncate_plain(std::span<const Src> src,
                                     std::span<Dst> dst) {
  TruncateReport rep;
  const std::size_t n = std::min(src.size(), dst.size());
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<Dst>(src[i]);
  }
  return rep;
}

/// Convert a contiguous run of halves to floats; vectorized with F16C.
inline void widen(const half* src, float* dst, std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(SMG_SIMD_AVX2)
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
#endif
  for (; i < n; ++i) {
    dst[i] = static_cast<float>(src[i]);
  }
}

/// Convert a contiguous run of bfloat16 to floats (shift-based widen).
inline void widen(const bfloat16* src, float* dst, std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(SMG_SIMD_AVX2)
  for (; i + 8 <= n; i += 8) {
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m256i w = _mm256_slli_epi32(_mm256_cvtepu16_epi32(b), 16);
    _mm256_storeu_ps(dst + i, _mm256_castsi256_ps(w));
  }
#endif
  for (; i < n; ++i) {
    dst[i] = static_cast<float>(src[i]);
  }
}

/// Convert a contiguous run of fp8 to floats via a 256-entry table (the
/// bit-exact software conversion folded into one load per value; fp8 levels
/// are coarse, so this path is never the traffic bottleneck).
inline void widen(const fp8* src, float* dst, std::size_t n) noexcept {
  static const auto table = [] {
    std::array<float, 256> t{};
    for (int i = 0; i < 256; ++i) {
      t[static_cast<std::size_t>(i)] =
          fp8::bits_to_float(static_cast<std::uint8_t>(i));
    }
    return t;
  }();
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = table[src[i].bits()];
  }
}

inline void widen(const float* src, float* dst, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = src[i];
  }
}

inline void widen(const double* src, double* dst, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = src[i];
  }
}

}  // namespace smg
