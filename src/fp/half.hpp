// IEEE 754 binary16 ("half") storage type.
//
// The paper's algorithm stores preconditioner matrices in FP16 and computes
// in FP32 ("recover-and-rescale on the fly", Alg. 3).  This type is therefore
// a *storage* type: arithmetic promotes to float.  Conversions use the F16C
// scalar instructions when the build enables them and a bit-exact software
// round-to-nearest-even path otherwise (also used in constexpr contexts).
#pragma once

#include <bit>
#include <cstdint>
#include <limits>

#if defined(SMG_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace smg {

namespace detail {

/// Software float32 -> float16 bit conversion, round-to-nearest-even.
constexpr std::uint16_t f32_bits_to_f16_bits(std::uint32_t f) noexcept {
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t exp = (f >> 23) & 0xFFu;
  std::uint32_t man = f & 0x7FFFFFu;
  if (exp == 0xFFu) {  // inf or nan
    // Keep a nan payload bit so nan stays nan.
    return static_cast<std::uint16_t>(
        sign | 0x7C00u | (man != 0 ? (0x200u | (man >> 13)) : 0u));
  }
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 31) {  // overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (e <= 0) {  // subnormal half or zero
    if (e < -10) {
      return static_cast<std::uint16_t>(sign);  // rounds to zero
    }
    man |= 0x800000u;  // implicit leading 1
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - e);  // 14..24
    std::uint32_t h = man >> shift;
    const std::uint32_t rem = man & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (h & 1u))) {
      ++h;  // may round up into the smallest normal; bit layout stays valid
    }
    return static_cast<std::uint16_t>(sign | h);
  }
  std::uint32_t h = sign | (static_cast<std::uint32_t>(e) << 10) | (man >> 13);
  const std::uint32_t rem = man & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) {
    ++h;  // carry into the exponent correctly rounds 65504+ulp to inf
  }
  return static_cast<std::uint16_t>(h);
}

/// Software float16 -> float32 bit conversion (exact).
constexpr std::uint32_t f16_bits_to_f32_bits(std::uint16_t hbits) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(hbits & 0x8000u) << 16;
  const std::uint32_t exp = (hbits >> 10) & 0x1Fu;
  std::uint32_t man = hbits & 0x3FFu;
  if (exp == 0) {
    if (man == 0) {
      return sign;  // signed zero
    }
    // Subnormal: normalize the mantissa.
    int shift = 0;
    while ((man & 0x400u) == 0) {
      man <<= 1;
      ++shift;
    }
    man &= 0x3FFu;
    // Subnormal value is man * 2^-24; after `shift` normalizing shifts the
    // unbiased exponent is -14 - shift.
    const std::uint32_t e32 = static_cast<std::uint32_t>(127 - 14 - shift);
    return sign | (e32 << 23) | (man << 13);
  }
  if (exp == 31) {  // inf/nan
    return sign | 0x7F800000u | (man << 13);
  }
  return sign | ((exp - 15 + 127) << 23) | (man << 13);
}

}  // namespace detail

/// IEEE 754 binary16 storage type; arithmetic promotes to float.
class half {
 public:
  half() = default;

  explicit half(float f) noexcept : bits_(float_to_bits(f)) {}
  explicit half(double d) noexcept : half(static_cast<float>(d)) {}
  explicit half(int i) noexcept : half(static_cast<float>(i)) {}

  /// Reinterpret raw binary16 bits.
  static constexpr half from_bits(std::uint16_t b) noexcept {
    half h;
    h.bits_ = b;
    return h;
  }

  constexpr std::uint16_t bits() const noexcept { return bits_; }

  operator float() const noexcept { return bits_to_float(bits_); }

  constexpr bool is_inf() const noexcept {
    return (bits_ & 0x7FFFu) == 0x7C00u;
  }
  constexpr bool is_nan() const noexcept { return (bits_ & 0x7FFFu) > 0x7C00u; }
  constexpr bool is_finite() const noexcept {
    return (bits_ & 0x7C00u) != 0x7C00u;
  }
  constexpr bool is_zero() const noexcept { return (bits_ & 0x7FFFu) == 0; }
  constexpr bool is_subnormal() const noexcept {
    return (bits_ & 0x7C00u) == 0 && (bits_ & 0x3FFu) != 0;
  }
  constexpr bool signbit() const noexcept { return (bits_ & 0x8000u) != 0; }

  friend bool operator==(half a, half b) noexcept {
    return static_cast<float>(a) == static_cast<float>(b);
  }
  friend bool operator<(half a, half b) noexcept {
    return static_cast<float>(a) < static_cast<float>(b);
  }

  static float bits_to_float(std::uint16_t b) noexcept {
#if defined(SMG_SIMD_AVX2)
    return _cvtsh_ss(b);
#else
    return std::bit_cast<float>(detail::f16_bits_to_f32_bits(b));
#endif
  }

  static std::uint16_t float_to_bits(float f) noexcept {
#if defined(SMG_SIMD_AVX2)
    return static_cast<std::uint16_t>(
        _cvtss_sh(f, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
#else
    return detail::f32_bits_to_f16_bits(std::bit_cast<std::uint32_t>(f));
#endif
  }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(half) == 2);

inline float operator*(half a, float b) noexcept {
  return static_cast<float>(a) * b;
}
inline float operator*(float a, half b) noexcept {
  return a * static_cast<float>(b);
}
inline float operator+(half a, half b) noexcept {
  return static_cast<float>(a) + static_cast<float>(b);
}

/// Largest finite binary16 value (65504).
inline constexpr float kHalfMax = 65504.0f;
/// Smallest positive *normal* binary16 value (2^-14).
inline constexpr float kHalfMinNormal = 6.103515625e-05f;
/// Smallest positive subnormal binary16 value (2^-24).
inline constexpr float kHalfMinSubnormal = 5.9604644775390625e-08f;

}  // namespace smg

namespace std {

template <>
class numeric_limits<smg::half> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr bool has_infinity = true;
  static constexpr bool has_quiet_NaN = true;
  static constexpr int digits = 11;       // incl. implicit bit
  static constexpr int max_exponent = 16;
  static constexpr int min_exponent = -13;

  static constexpr smg::half max() noexcept {
    return smg::half::from_bits(0x7BFFu);  // 65504
  }
  static constexpr smg::half lowest() noexcept {
    return smg::half::from_bits(0xFBFFu);  // -65504
  }
  static constexpr smg::half min() noexcept {
    return smg::half::from_bits(0x0400u);  // 2^-14
  }
  static constexpr smg::half denorm_min() noexcept {
    return smg::half::from_bits(0x0001u);  // 2^-24
  }
  static constexpr smg::half epsilon() noexcept {
    return smg::half::from_bits(0x1400u);  // 2^-10
  }
  static constexpr smg::half infinity() noexcept {
    return smg::half::from_bits(0x7C00u);
  }
  static constexpr smg::half quiet_NaN() noexcept {
    return smg::half::from_bits(0x7E00u);
  }
};

}  // namespace std
