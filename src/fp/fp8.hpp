// 8-bit e4m3-style floating storage type (1 sign, 4 exponent, 3 mantissa).
//
// The progressive-precision ladder (DESIGN.md §12) stores coarse levels in a
// format even narrower than FP16: coarse operators tolerate far less
// significand ("Multigrid with Linear Storage Complexity", PAPERS.md), and
// the Theorem 4.1 diagonal scaling that tames FP16's range works unchanged
// with the format max swapped to fp8's — the per-level scale that makes a
// 2-decade dynamic range survivable in 4 exponent bits.
//
// Unlike the OCP E4M3FN interchange variant this keeps IEEE-style special
// values (exp 0xF, mantissa 0 is +/-inf; nonzero mantissa is nan) so the
// truncation overflow accounting in fp/convert.hpp works identically across
// half, bfloat16, and fp8: a finite value that lands on the inf pattern *is*
// the overflow event the autopilot counts.  Largest finite value is
// 0x77 = 240, min normal 2^-6, smallest subnormal 2^-9.  Arithmetic promotes
// to float; conversions are bit-exact software round-to-nearest-even.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>

namespace smg {

namespace detail {

/// Software float32 -> fp8(e4m3) bit conversion, round-to-nearest-even.
constexpr std::uint8_t f32_bits_to_f8_bits(std::uint32_t f) noexcept {
  const std::uint32_t sign = (f >> 24) & 0x80u;
  const std::uint32_t exp = (f >> 23) & 0xFFu;
  std::uint32_t man = f & 0x7FFFFFu;
  if (exp == 0xFFu) {  // inf or nan
    // Keep a nan payload bit so nan stays nan.
    return static_cast<std::uint8_t>(
        sign | 0x78u | (man != 0 ? (0x4u | (man >> 21)) : 0u));
  }
  const int e = static_cast<int>(exp) - 127 + 7;
  if (e >= 15) {  // overflow -> inf
    return static_cast<std::uint8_t>(sign | 0x78u);
  }
  if (e <= 0) {  // subnormal fp8 or zero
    if (e < -3) {
      return static_cast<std::uint8_t>(sign);  // rounds to zero
    }
    man |= 0x800000u;  // implicit leading 1
    const std::uint32_t shift = static_cast<std::uint32_t>(21 - e);  // 21..24
    std::uint32_t h = man >> shift;
    const std::uint32_t rem = man & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (h & 1u))) {
      ++h;  // may round up into the smallest normal; bit layout stays valid
    }
    return static_cast<std::uint8_t>(sign | h);
  }
  std::uint32_t h = sign | (static_cast<std::uint32_t>(e) << 3) | (man >> 20);
  const std::uint32_t rem = man & 0xFFFFFu;
  if (rem > 0x80000u || (rem == 0x80000u && (h & 1u))) {
    ++h;  // carry into the exponent correctly rounds 240+ulp to inf
  }
  return static_cast<std::uint8_t>(h);
}

/// Software fp8(e4m3) -> float32 bit conversion (exact).
constexpr std::uint32_t f8_bits_to_f32_bits(std::uint8_t b) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(b & 0x80u) << 24;
  const std::uint32_t exp = (b >> 3) & 0xFu;
  std::uint32_t man = b & 0x7u;
  if (exp == 0) {
    if (man == 0) {
      return sign;  // signed zero
    }
    // Subnormal: normalize the mantissa.
    int shift = 0;
    while ((man & 0x8u) == 0) {
      man <<= 1;
      ++shift;
    }
    man &= 0x7u;
    // Subnormal value is man * 2^-9; after `shift` normalizing shifts the
    // unbiased exponent is -6 - shift.
    const std::uint32_t e32 = static_cast<std::uint32_t>(127 - 6 - shift);
    return sign | (e32 << 23) | (man << 20);
  }
  if (exp == 15) {  // inf/nan
    return sign | 0x7F800000u | (man << 20);
  }
  return sign | ((exp - 7 + 127) << 23) | (man << 20);
}

}  // namespace detail

/// 8-bit e4m3 storage type; arithmetic promotes to float.
class fp8 {
 public:
  fp8() = default;

  explicit fp8(float f) noexcept : bits_(float_to_bits(f)) {}
  explicit fp8(double d) noexcept : bits_(double_to_bits(d)) {}
  explicit fp8(int i) noexcept : fp8(static_cast<float>(i)) {}

  /// Reinterpret raw e4m3 bits.
  static constexpr fp8 from_bits(std::uint8_t b) noexcept {
    fp8 v;
    v.bits_ = b;
    return v;
  }

  constexpr std::uint8_t bits() const noexcept { return bits_; }

  operator float() const noexcept { return bits_to_float(bits_); }

  constexpr bool is_inf() const noexcept { return (bits_ & 0x7Fu) == 0x78u; }
  constexpr bool is_nan() const noexcept { return (bits_ & 0x7Fu) > 0x78u; }
  constexpr bool is_finite() const noexcept {
    return (bits_ & 0x78u) != 0x78u;
  }
  constexpr bool is_zero() const noexcept { return (bits_ & 0x7Fu) == 0; }
  constexpr bool is_subnormal() const noexcept {
    return (bits_ & 0x78u) == 0 && (bits_ & 0x7u) != 0;
  }
  constexpr bool signbit() const noexcept { return (bits_ & 0x80u) != 0; }

  friend bool operator==(fp8 a, fp8 b) noexcept {
    return static_cast<float>(a) == static_cast<float>(b);
  }
  friend bool operator<(fp8 a, fp8 b) noexcept {
    return static_cast<float>(a) < static_cast<float>(b);
  }

  static float bits_to_float(std::uint8_t b) noexcept {
    return std::bit_cast<float>(detail::f8_bits_to_f32_bits(b));
  }

  static std::uint8_t float_to_bits(float f) noexcept {
    return detail::f32_bits_to_f8_bits(std::bit_cast<std::uint32_t>(f));
  }

  /// Single-rounding double -> fp8.  The naive static_cast<float> first can
  /// double-round: a double just below an fp8 rounding midpoint may land
  /// exactly *on* the midpoint after the float step, and the tie then breaks
  /// to even instead of toward the true value.  Rounding the intermediate to
  /// odd (float keeps 24 bits, >= 2 more than fp8 needs) makes the final RNE
  /// step exact.
  static std::uint8_t double_to_bits(double d) noexcept {
    const float f = static_cast<float>(d);
    std::uint32_t u = std::bit_cast<std::uint32_t>(f);
    if ((u & 0x7F800000u) != 0x7F800000u) {  // finite intermediate
      const std::uint64_t dm =
          std::bit_cast<std::uint64_t>(d) & 0x7FFFFFFFFFFFFFFFull;
      const std::uint64_t fm =
          std::bit_cast<std::uint64_t>(static_cast<double>(f)) &
          0x7FFFFFFFFFFFFFFFull;
      if (dm != fm && (u & 1u) == 0u) {
        // Inexact and even: step one ulp toward the true value (the bit
        // patterns are sign-magnitude monotone), leaving an odd mantissa
        // that the next rounding cannot mistake for a tie.
        u = (fm > dm) ? u - 1u : u + 1u;
        return float_to_bits(std::bit_cast<float>(u));
      }
    }
    return float_to_bits(f);
  }

 private:
  std::uint8_t bits_ = 0;
};

static_assert(sizeof(fp8) == 1);

inline float operator*(fp8 a, float b) noexcept {
  return static_cast<float>(a) * b;
}
inline float operator*(float a, fp8 b) noexcept {
  return a * static_cast<float>(b);
}
inline float operator+(fp8 a, fp8 b) noexcept {
  return static_cast<float>(a) + static_cast<float>(b);
}

/// Largest finite e4m3 value (240).
inline constexpr float kFp8Max = 240.0f;
/// Smallest positive *normal* e4m3 value (2^-6).
inline constexpr float kFp8MinNormal = 0.015625f;
/// Smallest positive subnormal e4m3 value (2^-9).
inline constexpr float kFp8MinSubnormal = 0.001953125f;

}  // namespace smg

namespace std {

template <>
class numeric_limits<smg::fp8> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr bool has_infinity = true;
  static constexpr bool has_quiet_NaN = true;
  static constexpr int digits = 4;  // incl. implicit bit
  static constexpr int max_exponent = 8;
  static constexpr int min_exponent = -5;

  static constexpr smg::fp8 max() noexcept {
    return smg::fp8::from_bits(0x77u);  // 240
  }
  static constexpr smg::fp8 lowest() noexcept {
    return smg::fp8::from_bits(0xF7u);  // -240
  }
  static constexpr smg::fp8 min() noexcept {
    return smg::fp8::from_bits(0x08u);  // 2^-6
  }
  static constexpr smg::fp8 denorm_min() noexcept {
    return smg::fp8::from_bits(0x01u);  // 2^-9
  }
  static constexpr smg::fp8 epsilon() noexcept {
    return smg::fp8::from_bits(0x20u);  // 2^-3
  }
  static constexpr smg::fp8 infinity() noexcept {
    return smg::fp8::from_bits(0x78u);
  }
  static constexpr smg::fp8 quiet_NaN() noexcept {
    return smg::fp8::from_bits(0x7Cu);
  }
};

}  // namespace std
