// bfloat16 storage type (same exponent range as float32, 8-bit mantissa).
//
// The paper's §8 discussion compares FP16 and BF16 as the storage precision
// of the preconditioner: BF16 never needs scaling (range == FP32) but loses
// more significand bits, so it costs more Krylov iterations.  We provide a
// native type so that ablation (bench/disc_bf16_ablation) is runnable.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>

namespace smg {

/// bfloat16 storage type; arithmetic promotes to float.
class bfloat16 {
 public:
  bfloat16() = default;

  explicit bfloat16(float f) noexcept : bits_(float_to_bits(f)) {}
  explicit bfloat16(double d) noexcept : bits_(double_to_bits(d)) {}
  explicit bfloat16(int i) noexcept : bfloat16(static_cast<float>(i)) {}

  static constexpr bfloat16 from_bits(std::uint16_t b) noexcept {
    bfloat16 v;
    v.bits_ = b;
    return v;
  }

  constexpr std::uint16_t bits() const noexcept { return bits_; }

  operator float() const noexcept { return bits_to_float(bits_); }

  constexpr bool is_inf() const noexcept {
    return (bits_ & 0x7FFFu) == 0x7F80u;
  }
  constexpr bool is_nan() const noexcept { return (bits_ & 0x7FFFu) > 0x7F80u; }
  constexpr bool is_finite() const noexcept {
    return (bits_ & 0x7F80u) != 0x7F80u;
  }
  constexpr bool is_zero() const noexcept { return (bits_ & 0x7FFFu) == 0; }

  friend bool operator==(bfloat16 a, bfloat16 b) noexcept {
    return static_cast<float>(a) == static_cast<float>(b);
  }
  friend bool operator<(bfloat16 a, bfloat16 b) noexcept {
    return static_cast<float>(a) < static_cast<float>(b);
  }

  static float bits_to_float(std::uint16_t b) noexcept {
    return std::bit_cast<float>(static_cast<std::uint32_t>(b) << 16);
  }

  /// Round-to-nearest-even truncation of a float32 to bfloat16 bits.
  /// The `u += 0x7FFF + lsb` carry deliberately rolls a large finite into
  /// the inf pattern: any float at or above the max-finite/inf midpoint
  /// 0x1.FFp127 (bits 0x7F80'0000 after the add) *must* overflow under RNE,
  /// while everything below it lands on 0x7F7F.  The boundary is pinned by
  /// tests/fp/test_bfloat16.cpp.
  static std::uint16_t float_to_bits(float f) noexcept {
    std::uint32_t u = std::bit_cast<std::uint32_t>(f);
    if ((u & 0x7F800000u) == 0x7F800000u && (u & 0x7FFFFFu) != 0) {
      return static_cast<std::uint16_t>((u >> 16) | 0x40u);  // quiet the nan
    }
    const std::uint32_t lsb = (u >> 16) & 1u;
    u += 0x7FFFu + lsb;  // round to nearest even
    return static_cast<std::uint16_t>(u >> 16);
  }

  /// Single-rounding double -> bfloat16.  Casting through float first can
  /// double-round: a double just below a bf16 rounding midpoint may land
  /// exactly *on* the midpoint after the float step, and the tie then
  /// breaks to even instead of toward the true value (e.g.
  /// nextafter(0x1.03p0, 0) must round down to 0x3F81, but the two-step
  /// path returns 0x3F82).  Rounding the intermediate to odd (float keeps
  /// 24 bits, >= 2 more than bf16's 8) makes the final RNE step exact.
  static std::uint16_t double_to_bits(double d) noexcept {
    const float f = static_cast<float>(d);
    std::uint32_t u = std::bit_cast<std::uint32_t>(f);
    if ((u & 0x7F800000u) != 0x7F800000u) {  // finite intermediate
      const std::uint64_t dm =
          std::bit_cast<std::uint64_t>(d) & 0x7FFFFFFFFFFFFFFFull;
      const std::uint64_t fm =
          std::bit_cast<std::uint64_t>(static_cast<double>(f)) &
          0x7FFFFFFFFFFFFFFFull;
      if (dm != fm && (u & 1u) == 0u) {
        // Inexact and even: step one ulp toward the true value (the bit
        // patterns are sign-magnitude monotone), leaving an odd mantissa
        // that the next rounding cannot mistake for a tie.
        u = (fm > dm) ? u - 1u : u + 1u;
        return float_to_bits(std::bit_cast<float>(u));
      }
    }
    return float_to_bits(f);
  }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(bfloat16) == 2);

}  // namespace smg

namespace std {

template <>
class numeric_limits<smg::bfloat16> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool has_infinity = true;
  static constexpr bool has_quiet_NaN = true;
  static constexpr int digits = 8;  // incl. implicit bit

  static constexpr smg::bfloat16 max() noexcept {
    return smg::bfloat16::from_bits(0x7F7Fu);  // ~3.39e38
  }
  static constexpr smg::bfloat16 lowest() noexcept {
    return smg::bfloat16::from_bits(0xFF7Fu);
  }
  static constexpr smg::bfloat16 min() noexcept {
    return smg::bfloat16::from_bits(0x0080u);  // ~1.18e-38
  }
  static constexpr smg::bfloat16 epsilon() noexcept {
    return smg::bfloat16::from_bits(0x3C00u);  // 2^-7
  }
  static constexpr smg::bfloat16 infinity() noexcept {
    return smg::bfloat16::from_bits(0x7F80u);
  }
  static constexpr smg::bfloat16 quiet_NaN() noexcept {
    return smg::bfloat16::from_bits(0x7FC0u);
  }
};

}  // namespace std
