// Runtime precision tags and compile-time traits tying them to value types.
//
// The paper distinguishes three precisions (§4): the *iterative* precision of
// the Krylov solver (red in Alg. 2), the *compute* precision of the
// preconditioner (blue), and the *storage* precision of the preconditioner
// matrices (green).  Prec names a concrete floating format; traits map it to
// the C++ type and its byte cost for the memory-volume model of Table 2.
//
// Every per-format property lives in one of the kPrec* tables below, each
// statically asserted to have exactly kPrecCount entries.  The old switch
// versions of to_string()/bytes_of() silently fell through to "?"/0 for an
// unhandled enumerator — 0 bytes would have propagated straight into the
// src/perfmodel traffic model as "this matrix is free".  With the tables, a
// new format that misses an entry fails to compile instead.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "fp/bfloat16.hpp"
#include "fp/fp8.hpp"
#include "fp/half.hpp"

namespace smg {

enum class Prec {
  FP64,
  FP32,
  FP16,
  BF16,
  FP8,
};

/// Number of Prec enumerators.  Update together with the enum; the
/// static_assert pins it to the last enumerator and every property table
/// below is length-checked against it.
inline constexpr std::size_t kPrecCount = 5;
static_assert(static_cast<std::size_t>(Prec::FP8) + 1 == kPrecCount,
              "kPrecCount is out of sync with enum Prec");

namespace detail {

// CTAD (no explicit length) so a missing entry changes the array size and
// trips the static_assert instead of value-initializing silently.
inline constexpr std::array kPrecNames = {
    std::string_view("fp64"), std::string_view("fp32"),
    std::string_view("fp16"), std::string_view("bf16"),
    std::string_view("fp8"),
};
inline constexpr std::array kPrecBytes = {
    std::size_t{8}, std::size_t{4}, std::size_t{2}, std::size_t{2},
    std::size_t{1},
};
inline constexpr std::array kPrecMax = {
    1.7976931348623157e308,   // FP64
    3.4028234663852886e38,    // FP32
    65504.0,                  // FP16
    3.3895313892515355e38,    // BF16: 0x1.FEp127 (FP32's exponent range)
    240.0,                    // FP8 e4m3
};
static_assert(kPrecNames.size() == kPrecCount, "kPrecNames misses a format");
static_assert(kPrecBytes.size() == kPrecCount, "kPrecBytes misses a format");
static_assert(kPrecMax.size() == kPrecCount, "kPrecMax misses a format");

}  // namespace detail

constexpr std::string_view to_string(Prec p) noexcept {
  return detail::kPrecNames[static_cast<std::size_t>(p)];
}

constexpr std::size_t bytes_of(Prec p) noexcept {
  return detail::kPrecBytes[static_cast<std::size_t>(p)];
}

/// Largest finite magnitude representable in format `p` — the S of the
/// Theorem 4.1 scaling target G <= safety * G_max(S), per storage format.
constexpr double format_max(Prec p) noexcept {
  return detail::kPrecMax[static_cast<std::size_t>(p)];
}

/// Parse a format name as printed by to_string ("fp16", "bf16", "fp8", ...).
/// Returns false (leaving `out` untouched) for anything else.
constexpr bool parse_prec(std::string_view name, Prec& out) noexcept {
  for (std::size_t i = 0; i < kPrecCount; ++i) {
    if (detail::kPrecNames[i] == name) {
      out = static_cast<Prec>(i);
      return true;
    }
  }
  return false;
}

template <class T>
struct prec_of;

template <>
struct prec_of<double> {
  static constexpr Prec value = Prec::FP64;
};
template <>
struct prec_of<float> {
  static constexpr Prec value = Prec::FP32;
};
template <>
struct prec_of<half> {
  static constexpr Prec value = Prec::FP16;
};
template <>
struct prec_of<bfloat16> {
  static constexpr Prec value = Prec::BF16;
};
template <>
struct prec_of<fp8> {
  static constexpr Prec value = Prec::FP8;
};

template <class T>
inline constexpr Prec prec_of_v = prec_of<T>::value;

/// True for the narrow storage-only formats that promote to float.
template <class T>
inline constexpr bool is_storage_only_v =
    std::is_same_v<T, half> || std::is_same_v<T, bfloat16> ||
    std::is_same_v<T, fp8>;

/// Compute type a storage type promotes to inside kernels.
template <class T>
using compute_t = std::conditional_t<is_storage_only_v<T>, float, T>;

/// True for formats narrower than any compute precision (the autopilot's
/// "this level still has something to repair" predicate; compute is always
/// FP32 or FP64, see make_mg_precond).
constexpr bool is_narrow_storage(Prec p) noexcept { return bytes_of(p) <= 2; }

}  // namespace smg
