// Runtime precision tags and compile-time traits tying them to value types.
//
// The paper distinguishes three precisions (§4): the *iterative* precision of
// the Krylov solver (red in Alg. 2), the *compute* precision of the
// preconditioner (blue), and the *storage* precision of the preconditioner
// matrices (green).  Prec names a concrete floating format; traits map it to
// the C++ type and its byte cost for the memory-volume model of Table 2.
#pragma once

#include <cstddef>
#include <string_view>

#include "fp/bfloat16.hpp"
#include "fp/half.hpp"

namespace smg {

enum class Prec {
  FP64,
  FP32,
  FP16,
  BF16,
};

constexpr std::string_view to_string(Prec p) noexcept {
  switch (p) {
    case Prec::FP64:
      return "fp64";
    case Prec::FP32:
      return "fp32";
    case Prec::FP16:
      return "fp16";
    case Prec::BF16:
      return "bf16";
  }
  return "?";
}

constexpr std::size_t bytes_of(Prec p) noexcept {
  switch (p) {
    case Prec::FP64:
      return 8;
    case Prec::FP32:
      return 4;
    case Prec::FP16:
    case Prec::BF16:
      return 2;
  }
  return 0;
}

template <class T>
struct prec_of;

template <>
struct prec_of<double> {
  static constexpr Prec value = Prec::FP64;
};
template <>
struct prec_of<float> {
  static constexpr Prec value = Prec::FP32;
};
template <>
struct prec_of<half> {
  static constexpr Prec value = Prec::FP16;
};
template <>
struct prec_of<bfloat16> {
  static constexpr Prec value = Prec::BF16;
};

template <class T>
inline constexpr Prec prec_of_v = prec_of<T>::value;

/// True for the 2-byte storage-only formats that promote to float.
template <class T>
inline constexpr bool is_storage_only_v =
    std::is_same_v<T, half> || std::is_same_v<T, bfloat16>;

/// Compute type a storage type promotes to inside kernels.
template <class T>
using compute_t = std::conditional_t<is_storage_only_v<T>, float, T>;

}  // namespace smg
