// Halo-traffic model of the decomposed (sharded) hierarchy.
//
// The decomposed engine's exchange schedule is deterministic: on a boxed
// level each smoother sweep is preceded by one u-exchange, the downstroke
// residual by one more, the residual is exchanged once iff the coarse level
// is also boxed, and a boxed level's u is exchanged once per visit before
// the parent prolongs from it.  Bytes per exchange follow exactly from the
// BoxDecomp geometry (sum of ghost-region volumes) times the wire width, so
// the model prediction must match the engine's measured telemetry counters
// *exactly* — fig_weak_scaling gates measured == model.
//
// The same geometry feeds a bandwidth-saturation time model (the
// scaling_sim idiom: this host has one core, so parallel speedup is
// predicted, not measured): per-cycle level traffic split across
// min(boxes, threads) workers plus the serial halo term.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/mg_hierarchy.hpp"
#include "grid/box_decomp.hpp"
#include "perfmodel/scaling_sim.hpp"

namespace smg {

/// Ghost width a level matrix needs: the largest stencil offset magnitude
/// over all diagonals and dimensions (1 for every 3dXX pattern), and never
/// less than 1 so the trilinear transfers stay box-local too.
int stencil_ghost(const Stencil& st) noexcept;

/// The per-level decompositions the engine will use for this hierarchy:
/// level 0 from the requested box grid, coarser levels derived through each
/// Coarsening (same box grid, cuts mapped ceil(c/2) on coarsened dims),
/// agglomerated to one box below `min_box_cells` — monotone: once a level
/// is one box, all deeper levels are, and the coarsest always is.
std::vector<BoxDecomp> decomp_chain(const MGHierarchy& h,
                                    std::array<int, 3> nb,
                                    std::int64_t min_box_cells);

/// Exchange schedule and volume of one level, per preconditioner apply.
struct HaloLevelModel {
  int level = 0;
  bool boxed = false;               ///< more than one box on this level
  std::array<int, 3> nb{1, 1, 1};   ///< effective box grid
  std::int64_t values_per_exchange = 0;  ///< recv cells * block_size
  int u_exchanges = 0;              ///< u-halo exchanges per apply
  int r_exchanges = 0;              ///< residual-halo exchanges per apply

  std::int64_t exchanges() const noexcept {
    return static_cast<std::int64_t>(u_exchanges) + r_exchanges;
  }
  std::int64_t bytes_per_apply(std::size_t wire_bytes) const noexcept {
    return exchanges() * values_per_exchange *
           static_cast<std::int64_t>(wire_bytes);
  }
};

/// Model the full hierarchy's halo traffic for one preconditioner apply
/// (honors cfg.nu1/nu2 and the V/W/F cycle visit counts — see
/// cycle_visits in core/config.hpp; the F-cycle adds the rhs-injection
/// r-exchange and the FMG-interpolation u-exchange per boxed level).
std::vector<HaloLevelModel> model_halo(const MGHierarchy& h,
                                       std::array<int, 3> nb,
                                       std::int64_t min_box_cells);

/// Total wire bytes of one apply over all levels.
std::int64_t model_halo_bytes_per_apply(const std::vector<HaloLevelModel>& m,
                                        std::size_t wire_bytes) noexcept;

/// Predicted seconds of one preconditioner apply when the hierarchy is
/// decomposed into `nb` boxes executed by `threads` pool workers: per-level
/// kernel traffic (the bytes.hpp models) split across min(boxes, threads)
/// concurrent workers, plus the halo traffic and a per-exchange
/// synchronization latency.  With nb = {1,1,1} this degenerates to the
/// serial single-box prediction, so speedup ratios are machine-independent
/// (the bandwidth constant cancels to first order).
double model_decomp_apply_seconds(const MGHierarchy& h, std::array<int, 3> nb,
                                  std::int64_t min_box_cells, int threads,
                                  std::size_t halo_wire_bytes,
                                  const MachineModel& mm);

}  // namespace smg
