#include "perfmodel/stream.hpp"

#include <algorithm>

#include "util/aligned.hpp"
#include "util/timer.hpp"

namespace smg {

StreamResult measure_stream(std::size_t n, int reps) {
  avec<double> a(n, 1.0), b(n, 2.0), c(n, 0.5);
  StreamResult res;
  res.bytes = n * sizeof(double);

  double best_triad = 0.0;
  double best_copy = 0.0;
  volatile double sink = 0.0;
  for (int r = 0; r < reps; ++r) {
    Timer t;
#pragma omp parallel for simd
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = b[i] + 1.5 * c[i];
    }
    const double triad_s = t.seconds();
    best_triad = std::max(
        best_triad, 3.0 * static_cast<double>(res.bytes) / triad_s / 1e9);

    t.reset();
#pragma omp parallel for simd
    for (std::size_t i = 0; i < n; ++i) {
      c[i] = a[i];
    }
    const double copy_s = t.seconds();
    best_copy = std::max(
        best_copy, 2.0 * static_cast<double>(res.bytes) / copy_s / 1e9);
    sink = sink + a[n / 2] + c[n / 3];
  }
  res.triad_gbs = best_triad;
  res.copy_gbs = best_copy;
  return res;
}

}  // namespace smg
