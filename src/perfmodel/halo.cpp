#include "perfmodel/halo.hpp"

#include <algorithm>
#include <cmath>

#include "grid/halo.hpp"
#include "perfmodel/bytes.hpp"

namespace smg {

int stencil_ghost(const Stencil& st) noexcept {
  int g = 1;
  for (int d = 0; d < st.ndiag(); ++d) {
    const auto& o = st.offset(d);
    g = std::max({g, std::abs(o.dx), std::abs(o.dy), std::abs(o.dz)});
  }
  return g;
}

std::vector<BoxDecomp> decomp_chain(const MGHierarchy& h,
                                    std::array<int, 3> nb,
                                    std::int64_t min_box_cells) {
  std::vector<BoxDecomp> chain(static_cast<std::size_t>(h.nlevels()));
  for (int l = 0; l < h.nlevels(); ++l) {
    const Level& L = h.level(l);
    const Box& g = L.A_full.box();
    const int ghost = stencil_ghost(L.A_full.stencil());
    if (l == h.nlevels() - 1) {
      // The coarsest level is solved directly on one global box.
      chain[static_cast<std::size_t>(l)] = BoxDecomp::make(g, {1, 1, 1}, 0);
    } else if (l == 0) {
      chain[0] = decompose_level(g, nb, ghost, min_box_cells);
    } else if (chain[static_cast<std::size_t>(l - 1)].decomposed()) {
      chain[static_cast<std::size_t>(l)] = agglomerate_if_needed(
          chain[static_cast<std::size_t>(l - 1)].coarsened(
              h.level(l - 1).to_coarse, ghost),
          min_box_cells);
    } else {
      // Monotone: below the agglomeration boundary everything is one box.
      chain[static_cast<std::size_t>(l)] = BoxDecomp::make(g, {1, 1, 1}, 0);
    }
  }
  return chain;
}

std::vector<HaloLevelModel> model_halo(const MGHierarchy& h,
                                       std::array<int, 3> nb,
                                       std::int64_t min_box_cells) {
  const MGConfig& cfg = h.config();
  const std::vector<BoxDecomp> chain = decomp_chain(h, nb, min_box_cells);
  std::vector<HaloLevelModel> out(static_cast<std::size_t>(h.nlevels()));
  for (int l = 0; l < h.nlevels(); ++l) {
    const BoxDecomp& d = chain[static_cast<std::size_t>(l)];
    HaloLevelModel& m = out[static_cast<std::size_t>(l)];
    m.level = l;
    m.boxed = d.decomposed();
    m.nb = d.nb();
    if (!m.boxed) {
      continue;
    }
    const HaloPlan plan(d, h.level(l).A_full.block_size());
    m.values_per_exchange = plan.values_per_exchange();
    const bool fshape = cfg.cycle == CycleShape::F;
    const std::int64_t v = cycle_visits(cfg.cycle, l, h.nlevels());
    // Per visit: one u-exchange before each of the nu1 + nu2 smoother
    // sweeps and one before the downstroke residual.  The exchange before
    // the parent prolongs from this level happens once per *parent* visit
    // (a W-cycle recurses twice but prolongs once), so it scales with the
    // parent's visit count, not this level's.  An F-cycle adds one more
    // u-exchange per boxed non-finest level: the FMG interpolation prolongs
    // this level's bootstrap solution before the parent's V sub-cycle.
    m.u_exchanges = static_cast<int>(
        v * (cfg.nu1 + cfg.nu2 + 1) +
        (l > 0 ? cycle_visits(cfg.cycle, l - 1, h.nlevels()) : 0) +
        ((fshape && l > 0) ? 1 : 0));
    // The residual halo is exchanged only when the coarse level is boxed
    // too (per-box restriction needs the fine residual's ghosts).  The
    // F-cycle's downward rhs injection stages the rhs through the residual
    // scratch, adding one r-exchange on the same condition.
    const bool coarse_boxed =
        l + 1 < h.nlevels() &&
        chain[static_cast<std::size_t>(l + 1)].decomposed();
    m.r_exchanges = static_cast<int>(coarse_boxed ? v + (fshape ? 1 : 0) : 0);
  }
  return out;
}

std::int64_t model_halo_bytes_per_apply(const std::vector<HaloLevelModel>& m,
                                        std::size_t wire_bytes) noexcept {
  std::int64_t sum = 0;
  for (const HaloLevelModel& lm : m) {
    sum += lm.bytes_per_apply(wire_bytes);
  }
  return sum;
}

double model_decomp_apply_seconds(const MGHierarchy& h, std::array<int, 3> nb,
                                  std::int64_t min_box_cells, int threads,
                                  std::size_t halo_wire_bytes,
                                  const MachineModel& mm) {
  const MGConfig& cfg = h.config();
  const std::vector<BoxDecomp> chain = decomp_chain(h, nb, min_box_cells);
  const std::vector<HaloLevelModel> halo = model_halo(h, nb, min_box_cells);
  const double bw = mm.core_bw_gbs * 1e9;
  double total = 0.0;
  for (int l = 0; l < h.nlevels(); ++l) {
    const Level& L = h.level(l);
    const int bs = L.A_full.block_size();
    const double m = static_cast<double>(L.A_full.nrows());
    const double nnz = static_cast<double>(L.A_full.ncells()) *
                       L.A_full.stencil().ndiag() * bs * bs;
    const Prec mat = L.storage;
    const Prec vec = cfg.compute;
    const BoxDecomp& d = chain[static_cast<std::size_t>(l)];
    const double v =
        static_cast<double>(cycle_visits(cfg.cycle, l, h.nlevels()));

    const double sweep = cfg.smoother == SmootherType::SymGS
                             ? symgs_sweep_bytes(nnz, m, mat, vec, L.scaled)
                             : jacobi_sweep_bytes(nnz, m, mat, vec, L.scaled);
    double work = (cfg.nu1 + cfg.nu2) * sweep;
    double extra = 0.0;  // once-per-apply F-cycle transfer traffic
    if (l + 1 < h.nlevels()) {
      const double mc =
          static_cast<double>(L.to_coarse.coarse.size()) * bs;
      // The decomposed downstroke materializes the residual (the fused
      // kernel needs whole-box access); one-box levels keep the fused path.
      work += downstroke_bytes(nnz, m, mc, mat, vec, L.scaled,
                               /*fused=*/!d.decomposed()) +
              prolong_bytes(m, mc, vec);
      if (cfg.cycle == CycleShape::F) {
        // Downward rhs injection (pure restriction, no matrix pass) and the
        // upward FMG interpolation — each touches this level once per apply
        // regardless of the visit count.
        extra = restrict_bytes(m, mc, vec) + prolong_bytes(m, mc, vec);
      }
    }
    const int workers = d.decomposed() ? std::min(d.nboxes(), threads) : 1;
    total += (v * work + extra) / (static_cast<double>(workers) * bw);

    const HaloLevelModel& hm = halo[static_cast<std::size_t>(l)];
    if (hm.boxed) {
      // Halo traffic is serialized through the transport plus roughly three
      // pool barriers per exchange (pack, unpack, the kernel it precedes).
      total +=
          static_cast<double>(hm.bytes_per_apply(halo_wire_bytes)) / bw +
          static_cast<double>(hm.exchanges()) * 3.0 * mm.net_latency_s;
    }
  }
  return total;
}

}  // namespace smg
