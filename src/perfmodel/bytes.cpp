#include "perfmodel/bytes.hpp"

#include "csr/csr_matrix.hpp"

namespace smg {

double sgdia_bytes_per_nnz(Prec value_prec) noexcept {
  return static_cast<double>(bytes_of(value_prec));
}

double speedup_bound_sgdia(Prec from, Prec to) noexcept {
  return sgdia_bytes_per_nnz(from) / sgdia_bytes_per_nnz(to);
}

double speedup_bound_csr(Prec from, Prec to, std::size_t index_bytes,
                         double delta) noexcept {
  return csr_bytes_per_nnz(bytes_of(from), index_bytes, delta) /
         csr_bytes_per_nnz(bytes_of(to), index_bytes, delta);
}

double percent_matrix(double nnz, double m) noexcept {
  return nnz / (nnz + 2.0 * m);
}

double stencil_nnz_per_row(Pattern p, int block_size) noexcept {
  return static_cast<double>(Stencil::make(p).ndiag()) * block_size;
}

}  // namespace smg
