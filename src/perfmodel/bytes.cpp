#include "perfmodel/bytes.hpp"

#include "csr/csr_matrix.hpp"

namespace smg {

double sgdia_bytes_per_nnz(Prec value_prec) noexcept {
  return static_cast<double>(bytes_of(value_prec));
}

double speedup_bound_sgdia(Prec from, Prec to) noexcept {
  return sgdia_bytes_per_nnz(from) / sgdia_bytes_per_nnz(to);
}

double speedup_bound_csr(Prec from, Prec to, std::size_t index_bytes,
                         double delta) noexcept {
  return csr_bytes_per_nnz(bytes_of(from), index_bytes, delta) /
         csr_bytes_per_nnz(bytes_of(to), index_bytes, delta);
}

double percent_matrix(double nnz, double m) noexcept {
  return nnz / (nnz + 2.0 * m);
}

double stencil_nnz_per_row(Pattern p, int block_size) noexcept {
  return static_cast<double>(Stencil::make(p).ndiag()) * block_size;
}

double spmv_bytes(double nnz, double m, Prec mat, Prec vec,
                  bool scaled) noexcept {
  const double bm = static_cast<double>(bytes_of(mat));
  const double bv = static_cast<double>(bytes_of(vec));
  // read x, write y (+ read q2 when scaled)
  return nnz * bm + (2.0 + (scaled ? 1.0 : 0.0)) * m * bv;
}

double symgs_sweep_bytes(double nnz, double m, Prec mat, Prec vec,
                         bool scaled) noexcept {
  const double bm = static_cast<double>(bytes_of(mat));
  const double bv = static_cast<double>(bytes_of(vec));
  // read f + inv_diag, read-modify-write u (+ read q2 when scaled)
  return nnz * bm + (4.0 + (scaled ? 1.0 : 0.0)) * m * bv;
}

double jacobi_sweep_bytes(double nnz, double m, Prec mat, Prec vec,
                          bool scaled) noexcept {
  return symgs_sweep_bytes(nnz, m, mat, vec, scaled);
}

double residual_bytes(double nnz, double m, Prec mat, Prec vec,
                      bool scaled) noexcept {
  const double bm = static_cast<double>(bytes_of(mat));
  const double bv = static_cast<double>(bytes_of(vec));
  // read u, read f, write r (+ read q2 when scaled)
  return nnz * bm + (3.0 + (scaled ? 1.0 : 0.0)) * m * bv;
}

double restrict_bytes(double m_fine, double m_coarse, Prec vec) noexcept {
  const double bv = static_cast<double>(bytes_of(vec));
  return (m_fine + m_coarse) * bv;
}

double prolong_bytes(double m_fine, double m_coarse, Prec vec) noexcept {
  const double bv = static_cast<double>(bytes_of(vec));
  return (2.0 * m_fine + m_coarse) * bv;
}

double residual_restrict_bytes(double nnz, double m_fine, double m_coarse,
                               Prec mat, Prec vec, bool scaled) noexcept {
  const double bv = static_cast<double>(bytes_of(vec));
  return residual_bytes(nnz, m_fine, mat, vec, scaled) +
         restrict_bytes(m_fine, m_coarse, vec) - 2.0 * m_fine * bv;
}

double downstroke_bytes(double nnz, double m_fine, double m_coarse, Prec mat,
                        Prec vec, bool scaled, bool fused) noexcept {
  if (fused) {
    return residual_restrict_bytes(nnz, m_fine, m_coarse, mat, vec, scaled);
  }
  return residual_bytes(nnz, m_fine, mat, vec, scaled) +
         restrict_bytes(m_fine, m_coarse, vec);
}

// Multi-RHS: the matrix (and the shared per-row q2 / inv_diag operands)
// stream once; only per-column vector streams multiply by k.  Every formula
// reduces to its single-RHS counterpart at k = 1 by construction.

double spmv_many_bytes(double nnz, double m, Prec mat, Prec vec, bool scaled,
                       int k) noexcept {
  const double bm = static_cast<double>(bytes_of(mat));
  const double bv = static_cast<double>(bytes_of(vec));
  // k reads of x, k writes of y (+ one shared q2 read when scaled)
  return nnz * bm + (2.0 * k + (scaled ? 1.0 : 0.0)) * m * bv;
}

double symgs_sweep_many_bytes(double nnz, double m, Prec mat, Prec vec,
                              bool scaled, int k) noexcept {
  const double bm = static_cast<double>(bytes_of(mat));
  const double bv = static_cast<double>(bytes_of(vec));
  // k reads of f, k read-modify-writes of u, one shared inv_diag read
  // (+ one shared q2 read when scaled)
  return nnz * bm + (3.0 * k + 1.0 + (scaled ? 1.0 : 0.0)) * m * bv;
}

double jacobi_sweep_many_bytes(double nnz, double m, Prec mat, Prec vec,
                               bool scaled, int k) noexcept {
  return symgs_sweep_many_bytes(nnz, m, mat, vec, scaled, k);
}

double residual_many_bytes(double nnz, double m, Prec mat, Prec vec,
                           bool scaled, int k) noexcept {
  const double bm = static_cast<double>(bytes_of(mat));
  const double bv = static_cast<double>(bytes_of(vec));
  // k reads of u and f, k writes of r (+ one shared q2 read when scaled)
  return nnz * bm + (3.0 * k + (scaled ? 1.0 : 0.0)) * m * bv;
}

double restrict_many_bytes(double m_fine, double m_coarse, Prec vec,
                           int k) noexcept {
  const double bv = static_cast<double>(bytes_of(vec));
  return (m_fine + m_coarse) * k * bv;
}

double prolong_many_bytes(double m_fine, double m_coarse, Prec vec,
                          int k) noexcept {
  const double bv = static_cast<double>(bytes_of(vec));
  return (2.0 * m_fine + m_coarse) * k * bv;
}

double residual_restrict_many_bytes(double nnz, double m_fine, double m_coarse,
                                    Prec mat, Prec vec, bool scaled,
                                    int k) noexcept {
  const double bv = static_cast<double>(bytes_of(vec));
  return residual_many_bytes(nnz, m_fine, mat, vec, scaled, k) +
         restrict_many_bytes(m_fine, m_coarse, vec, k) -
         2.0 * k * m_fine * bv;
}

double downstroke_many_bytes(double nnz, double m_fine, double m_coarse,
                             Prec mat, Prec vec, bool scaled, bool fused,
                             int k) noexcept {
  if (fused) {
    return residual_restrict_many_bytes(nnz, m_fine, m_coarse, mat, vec,
                                        scaled, k);
  }
  return residual_many_bytes(nnz, m_fine, mat, vec, scaled, k) +
         restrict_many_bytes(m_fine, m_coarse, vec, k);
}

}  // namespace smg
