// Strong-scaling simulator (substitute for the paper's 64-node clusters,
// Fig. 10).
//
// This host has one core and no interconnect, so the distributed experiment
// is reproduced as a calibrated analytic model: per-level memory traffic of
// one preconditioned iteration (derived from the actual hierarchy) over a
// bandwidth-saturation machine model, plus a 3D-decomposition halo-exchange
// and allreduce term.  The paper's qualitative claims this reproduces:
//  * mix-precision scales nearly as well as full precision at medium/large
//    sizes;
//  * its efficiency degrades first, because FP16 shrinks the compute share
//    (communication untouched) and small per-core blocks underuse SIMD.
#pragma once

#include <span>
#include <vector>

#include "core/mg_hierarchy.hpp"

namespace smg {

struct MachineModel {
  int cores_per_node = 64;
  double core_bw_gbs = 9.0;    ///< per-core attainable stream bandwidth
  double node_bw_gbs = 138.0;  ///< node saturation (ARM Kunpeng-like default)
  double net_latency_s = 2e-6;
  double net_bw_gbs = 12.5;    ///< 100 Gb/s InfiniBand
  /// Mixed-precision SIMD starvation: below this many dofs per core the
  /// conversion overhead stops being amortized (paper §7.4).
  double simd_saturation_dofs = 32768.0;
};

struct ScalingPoint {
  int cores = 0;
  double time_full = 0.0;  ///< seconds, full-iterative-precision workflow
  double time_mix = 0.0;   ///< seconds, FP16-storage preconditioner
};

/// Predict total solve time for both configurations across core counts.
/// iters_* are the measured iteration counts of each configuration.
std::vector<ScalingPoint> simulate_strong_scaling(
    const MGHierarchy& full_h, const MGHierarchy& mix_h, int iters_full,
    int iters_mix, const MachineModel& m, std::span<const int> core_counts);

/// Parallel efficiency of mix relative to full at the largest core count
/// (the paper reports 62%..99% across problems).
double relative_efficiency(std::span<const ScalingPoint> pts);

}  // namespace smg
