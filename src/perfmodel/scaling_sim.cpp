#include "perfmodel/scaling_sim.hpp"

#include <cmath>

namespace smg {

namespace {

/// Aggregate deliverable bandwidth at P cores (GB/s).
double bandwidth_gbs(const MachineModel& m, int cores) {
  const int full_nodes = cores / m.cores_per_node;
  const int rem = cores % m.cores_per_node;
  double bw = full_nodes * m.node_bw_gbs;
  bw += std::min(rem * m.core_bw_gbs, m.node_bw_gbs);
  return std::max(bw, m.core_bw_gbs);
}

/// Balanced 3D factorization of P (largest factors first).
void decompose3(int p, int out[3]) {
  int best[3] = {p, 1, 1};
  double best_score = 1e300;
  for (int a = 1; a <= p; ++a) {
    if (p % a != 0) {
      continue;
    }
    const int pq = p / a;
    for (int b = 1; b <= pq; ++b) {
      if (pq % b != 0) {
        continue;
      }
      const int c = pq / b;
      const double score = std::abs(std::log(double(a) / b)) +
                           std::abs(std::log(double(b) / c));
      if (score < best_score) {
        best_score = score;
        best[0] = a;
        best[1] = b;
        best[2] = c;
      }
    }
  }
  out[0] = best[0];
  out[1] = best[1];
  out[2] = best[2];
}

struct LevelCost {
  double matrix_bytes = 0.0;  ///< stored matrix bytes (per full pass)
  double vector_bytes = 0.0;  ///< dof vector bytes (per pass, one vector)
  double halo_dofs = 0.0;     ///< per rank at P=1 granularity (scaled later)
  std::int64_t dofs = 0;
  int nx = 0, ny = 0, nz = 0, bs = 1;
  bool scaled = false;
};

/// Seconds for one preconditioned iteration at P cores.
double iteration_seconds(const std::vector<LevelCost>& levels,
                         double krylov_bytes, const MachineModel& m,
                         int cores, int passes, bool mixed) {
  const double bw = bandwidth_gbs(m, cores) * 1e9;
  int grid[3];
  decompose3(cores, grid);

  double t = 0.0;
  for (const LevelCost& L : levels) {
    // --- computation: matrix + vector traffic of all smoother/residual
    // passes, divided by deliverable bandwidth ---
    double traffic =
        passes * (L.matrix_bytes + 3.0 * L.vector_bytes) +
        (L.scaled ? passes * L.vector_bytes : 0.0);
    const double dpc = static_cast<double>(L.dofs) / cores;
    double penalty = 1.0;
    if (mixed) {
      // Conversion overhead stops being amortized when per-core blocks
      // starve the SIMD pipeline.
      const double sat = std::min(1.0, dpc / m.simd_saturation_dofs);
      penalty = 1.0 + 0.6 * (1.0 - sat);
    }
    t += traffic / bw * penalty;

    // --- halo exchange: 6 faces of the local block, vectors in compute
    // precision (FP32 for mixed, FP64 for full) ---
    const double lx = std::max(1.0, static_cast<double>(L.nx) / grid[0]);
    const double ly = std::max(1.0, static_cast<double>(L.ny) / grid[1]);
    const double lz = std::max(1.0, static_cast<double>(L.nz) / grid[2]);
    const double surface = 2.0 * (lx * ly + ly * lz + lx * lz) * L.bs;
    const double elem_bytes = mixed ? 4.0 : 8.0;
    if (cores > 1) {
      const double msgs = 6.0 * passes;
      t += msgs * m.net_latency_s +
           passes * surface * elem_bytes / (m.net_bw_gbs * 1e9);
    }
  }
  // Krylov work on the finest level: one operator apply plus vector updates.
  t += krylov_bytes / bw;
  if (cores > 1) {
    // Two allreduces (dot products) per iteration.
    t += 2.0 * std::log2(static_cast<double>(cores)) * m.net_latency_s;
  }
  return t;
}

std::vector<LevelCost> level_costs(const MGHierarchy& h) {
  std::vector<LevelCost> out;
  const double ct_bytes =
      h.config().compute == Prec::FP64 ? 8.0 : 4.0;
  for (int l = 0; l < h.nlevels(); ++l) {
    const Level& lev = h.level(l);
    LevelCost c;
    c.matrix_bytes = static_cast<double>(lev.A_stored.value_bytes());
    c.dofs = lev.A_full.nrows();
    c.vector_bytes = static_cast<double>(c.dofs) * ct_bytes;
    c.nx = lev.A_full.box().nx;
    c.ny = lev.A_full.box().ny;
    c.nz = lev.A_full.box().nz;
    c.bs = lev.A_full.block_size();
    c.scaled = lev.scaled;
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::vector<ScalingPoint> simulate_strong_scaling(
    const MGHierarchy& full_h, const MGHierarchy& mix_h, int iters_full,
    int iters_mix, const MachineModel& m, std::span<const int> core_counts) {
  const auto full_levels = level_costs(full_h);
  const auto mix_levels = level_costs(mix_h);
  // One pre-smooth + one post-smooth + one residual per level (paper §8).
  const int passes =
      full_h.config().nu1 + full_h.config().nu2 + 1;

  // Krylov traffic: finest operator (FP64) + ~6 vector reads/writes.
  const Level& finest = full_h.level(0);
  const double krylov_bytes =
      static_cast<double>(finest.A_full.nnz_logical()) * 8.0 +
      6.0 * static_cast<double>(finest.A_full.nrows()) * 8.0;

  std::vector<ScalingPoint> pts;
  for (int cores : core_counts) {
    ScalingPoint p;
    p.cores = cores;
    p.time_full =
        iters_full *
        iteration_seconds(full_levels, krylov_bytes, m, cores, passes, false);
    p.time_mix =
        iters_mix *
        iteration_seconds(mix_levels, krylov_bytes, m, cores, passes, true);
    pts.push_back(p);
  }
  return pts;
}

double relative_efficiency(std::span<const ScalingPoint> pts) {
  if (pts.size() < 2) {
    return 1.0;
  }
  const ScalingPoint& first = pts.front();
  const ScalingPoint& last = pts.back();
  const double scale = static_cast<double>(last.cores) / first.cores;
  const double eff_full = first.time_full / (last.time_full * scale);
  const double eff_mix = first.time_mix / (last.time_mix * scale);
  return eff_mix / eff_full;
}

}  // namespace smg
