// STREAM-triad bandwidth probe.
//
// The paper's "bandwidth efficiency" metric divides a kernel's effective
// bandwidth (minimal memory volume / time) by the machine's stream triad
// bandwidth; this probe supplies the denominator on the host.
#pragma once

#include <cstddef>

namespace smg {

struct StreamResult {
  double triad_gbs = 0.0;   ///< best-of-N triad bandwidth, GB/s
  double copy_gbs = 0.0;    ///< best-of-N copy bandwidth, GB/s
  std::size_t bytes = 0;    ///< working-set bytes per array
};

/// Measure with arrays of `n` doubles, `reps` repetitions (best taken).
StreamResult measure_stream(std::size_t n = std::size_t{1} << 23,
                            int reps = 5);

}  // namespace smg
