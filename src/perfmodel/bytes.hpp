// Memory-volume accounting (guidelines §3.1-§3.2, Table 2).
//
// Sparse solvers are memory-bound, so the attainable mixed-precision speedup
// is bounded by the reduction of bytes moved.  SG-DIA moves exactly one
// floating value per stored nonzero; CSR adds one column index per nonzero
// plus the amortized row pointer.
#pragma once

#include <cstddef>

#include "fp/precision.hpp"
#include "grid/stencil.hpp"

namespace smg {

/// SG-DIA bytes per nonzero: just the value bytes.
double sgdia_bytes_per_nnz(Prec value_prec) noexcept;

/// Upper bound of preconditioner speedup when switching value precision
/// (ratio of bytes per nonzero), for either format family.
double speedup_bound_sgdia(Prec from, Prec to) noexcept;
double speedup_bound_csr(Prec from, Prec to, std::size_t index_bytes,
                         double delta) noexcept;

/// percent_A of Eq. 2: matrix share of the memory traffic of one SpMV,
/// given nnz and m (vector length counts x and b once each).
double percent_matrix(double nnz, double m) noexcept;

/// nnz/m for a full interior stencil (boundary effects ignored): equals the
/// stencil size for scalar problems, times block size for vector PDEs.
double stencil_nnz_per_row(Pattern p, int block_size) noexcept;

}  // namespace smg
