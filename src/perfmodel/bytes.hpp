// Memory-volume accounting (guidelines §3.1-§3.2, Table 2).
//
// Sparse solvers are memory-bound, so the attainable mixed-precision speedup
// is bounded by the reduction of bytes moved.  SG-DIA moves exactly one
// floating value per stored nonzero; CSR adds one column index per nonzero
// plus the amortized row pointer.
#pragma once

#include <cstddef>

#include "fp/precision.hpp"
#include "grid/stencil.hpp"

namespace smg {

/// SG-DIA bytes per nonzero: just the value bytes.
double sgdia_bytes_per_nnz(Prec value_prec) noexcept;

/// Upper bound of preconditioner speedup when switching value precision
/// (ratio of bytes per nonzero), for either format family.
double speedup_bound_sgdia(Prec from, Prec to) noexcept;
double speedup_bound_csr(Prec from, Prec to, std::size_t index_bytes,
                         double delta) noexcept;

/// percent_A of Eq. 2: matrix share of the memory traffic of one SpMV,
/// given nnz and m (vector length counts x and b once each).
double percent_matrix(double nnz, double m) noexcept;

/// nnz/m for a full interior stencil (boundary effects ignored): equals the
/// stencil size for scalar problems, times block size for vector PDEs.
double stencil_nnz_per_row(Pattern p, int block_size) noexcept;

// --- V-cycle downstroke traffic (DESIGN.md §7) -----------------------------
//
// All counts are dofs (m = rows) and stored nonzeros; `scaled` adds the q2
// row-scale vector read of the recover-and-rescale kernels.  The model
// counts compulsory main-memory traffic only (each operand streamed once;
// caches hold no full vector).

/// y = A x: matrix once, x read, y written, plus q2.
double spmv_bytes(double nnz, double m, Prec mat, Prec vec,
                  bool scaled) noexcept;

/// One Gauss-Seidel sweep (forward or backward): matrix once, f and inv_diag
/// read, u read-modify-written, plus q2.
double symgs_sweep_bytes(double nnz, double m, Prec mat, Prec vec,
                         bool scaled) noexcept;

/// One fused weighted-Jacobi sweep: same streams as a GS sweep.
double jacobi_sweep_bytes(double nnz, double m, Prec mat, Prec vec,
                          bool scaled) noexcept;

/// r = f - A u on one level: matrix once, u and f read, r written, plus q2.
double residual_bytes(double nnz, double m, Prec mat, Prec vec,
                      bool scaled) noexcept;

/// f_c = R r_f (gather form): fine residual read, coarse rhs written.
double restrict_bytes(double m_fine, double m_coarse, Prec vec) noexcept;

/// u_f += P e_c: coarse error read, fine iterate read-modify-written.
double prolong_bytes(double m_fine, double m_coarse, Prec vec) noexcept;

/// Fused downstroke f_c = R (f - A u): residual + restriction minus the
/// eliminated residual-vector store and load — exactly
/// 2 * m_fine * bytes_of(vec) less than the unfused pair.
double residual_restrict_bytes(double nnz, double m_fine, double m_coarse,
                               Prec mat, Prec vec, bool scaled) noexcept;

/// One level's downstroke traffic on either path.
double downstroke_bytes(double nnz, double m_fine, double m_coarse, Prec mat,
                        Prec vec, bool scaled, bool fused) noexcept;

// --- multi-RHS (panel) traffic ---------------------------------------------
//
// The k-column kernels stream the stored matrix (and the shared per-row
// operands: q2, inv_diag) ONCE for all k right-hand sides; only the
// per-column vector streams scale with k.  Each model below reduces exactly
// to its single-RHS formula at k = 1 (asserted in tests/perfmodel) — the
// amortization ratio spmv_bytes(...) * k / spmv_many_bytes(..., k) is the
// matrix-traffic bound fig_many_rhs gates against.

/// y[c] = A x[c] for k columns: matrix once, k reads of x, k writes of y,
/// one shared q2 read.
double spmv_many_bytes(double nnz, double m, Prec mat, Prec vec, bool scaled,
                       int k) noexcept;

/// One panel Gauss-Seidel sweep: matrix and inv_diag once, k reads of f,
/// k read-modify-writes of u, one shared q2 read.
double symgs_sweep_many_bytes(double nnz, double m, Prec mat, Prec vec,
                              bool scaled, int k) noexcept;

/// One fused panel weighted-Jacobi sweep: same streams as a panel GS sweep.
double jacobi_sweep_many_bytes(double nnz, double m, Prec mat, Prec vec,
                               bool scaled, int k) noexcept;

/// r[c] = f[c] - A u[c]: matrix once, k reads of u and f, k writes of r,
/// one shared q2 read.
double residual_many_bytes(double nnz, double m, Prec mat, Prec vec,
                           bool scaled, int k) noexcept;

/// f_c[c] = R r_f[c]: k fine reads, k coarse writes.
double restrict_many_bytes(double m_fine, double m_coarse, Prec vec,
                           int k) noexcept;

/// u_f[c] += P e_c[c]: k coarse reads, k fine read-modify-writes.
double prolong_many_bytes(double m_fine, double m_coarse, Prec vec,
                          int k) noexcept;

/// Fused panel downstroke f_c[c] = R (f[c] - A u[c]): residual + restriction
/// minus the eliminated k residual-panel stores and loads.
double residual_restrict_many_bytes(double nnz, double m_fine, double m_coarse,
                                    Prec mat, Prec vec, bool scaled,
                                    int k) noexcept;

/// One level's k-column downstroke traffic on either path.
double downstroke_many_bytes(double nnz, double m_fine, double m_coarse,
                             Prec mat, Prec vec, bool scaled, bool fused,
                             int k) noexcept;

}  // namespace smg
