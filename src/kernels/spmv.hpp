// Structured SpMV and fused residual with recover-and-rescale on the fly.
//
// All kernels are templated on the matrix *storage* type ST (double, float,
// half, bfloat16) and the vector *compute* type CT (double or float); FP16
// entries are widened to CT in registers — an FP32 copy of the matrix is
// never materialized (Alg. 3 of the paper).
//
// The optional q2 vector applies the setup-then-scale recovery: with
// Â = Q^{-1/2} A Q^{-1/2} stored and q2 = diag(Q)^{1/2},
//     y_i = q2_i * sum_d Â[d]_i * q2_j * x_j,   j = neighbor(i, d),
// which reproduces A x exactly up to FP16 truncation of Â.
//
// Three implementation families reproduce the Fig. 7 kernel ablation:
//  * apply_soa  — SOA/SOAL layouts; for (half,float) a register-blocked
//                 AVX2/F16C path converts 8 entries per vcvtph2ps
//                 ("MG-fp16/fp32(opt)"); block matrices use per-line widen
//                 buffers.
//  * apply_aos  — AOS layout; one scalar convert per entry
//                 ("MG-fp16/fp32(naive)" when ST is 2-byte).
//  * spmv_ref   — layout-agnostic scalar reference used by tests.
#pragma once

#include <cmath>
#include <span>

#include "kernels/loops.hpp"
#include "obs/telemetry.hpp"
#include "sgdia/struct_matrix.hpp"
#include "util/common.hpp"
#include "util/multivector.hpp"

#if defined(SMG_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace smg {

namespace detail {

/// Widen one stored matrix entry to the compute type.
template <class CT, class ST>
inline CT widen1(ST v) noexcept {
  if constexpr (is_storage_only_v<ST>) {
    return static_cast<CT>(static_cast<float>(v));
  } else {
    return static_cast<CT>(v);
  }
}

/// Deterministic a*b + c for the block-kernel folds.  The optimizer's FP
/// contraction choice for a plain `acc += a * b` depends on the surrounding
/// vectorization context, so the "same source shape at both sites" contract
/// (single-RHS kernel vs its panel mirror) is not enough once the fold sits
/// inside differently-shaped loops.  Pinning the operation removes the
/// ambiguity: one hardware fma where the ISA has it, and on targets without
/// an fma instruction the compiler cannot contract either site, so the
/// explicit mul+add matches the kernels' plain expressions bitwise.
template <class CT>
inline CT mul_add(CT a, CT b, CT c) noexcept {
#if defined(SMG_SIMD_AVX2) || defined(FP_FAST_FMA)
  return std::fma(a, b, c);
#else
  return a * b + c;
#endif
}

#if defined(SMG_SIMD_AVX2)

/// All-ones in the first n lanes (n in [0, 8]).
inline __m256i tail_mask(int n) noexcept {
  alignas(32) static constexpr std::int32_t kMask[16] = {
      -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMask + 8 - n));
}

/// All-ones in lanes [s, 8) (s in [0, 8]).
inline __m256i head_mask(int s) noexcept {
  alignas(32) static constexpr std::int32_t kMask[16] = {
      0, 0, 0, 0, 0, 0, 0, 0, -1, -1, -1, -1, -1, -1, -1, -1};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMask + 8 - s));
}

/// 8-wide fused multiply-add over one diagonal run: acc logic for
/// y[i] (+)= a[i] * x[i+shift] (* q2[i+shift]), half storage, float compute.
/// The tail is one masked block: matrix reads may touch up to 14 bytes past
/// the run (covered by StructMat::kSimdSlack); x/q2/y use masked accesses,
/// and garbage in dead lanes never reaches memory.
template <bool kSubtract, bool kScaled>
inline void soa_diag_fma_f16(const half* SMG_RESTRICT a,
                             const float* SMG_RESTRICT x,
                             const float* SMG_RESTRICT q2, float* SMG_RESTRICT y,
                             int n) noexcept {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i hraw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m256 av = _mm256_cvtph_ps(hraw);
    __m256 xv = _mm256_loadu_ps(x + i);
    if constexpr (kScaled) {
      xv = _mm256_mul_ps(xv, _mm256_loadu_ps(q2 + i));
    }
    __m256 yv = _mm256_loadu_ps(y + i);
    if constexpr (kSubtract) {
      yv = _mm256_fnmadd_ps(av, xv, yv);
    } else {
      yv = _mm256_fmadd_ps(av, xv, yv);
    }
    _mm256_storeu_ps(y + i, yv);
  }
  if (i < n) {
    const __m256i m = tail_mask(n - i);
    const __m128i hraw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m256 av = _mm256_cvtph_ps(hraw);
    __m256 xv = _mm256_maskload_ps(x + i, m);
    if constexpr (kScaled) {
      xv = _mm256_mul_ps(xv, _mm256_maskload_ps(q2 + i, m));
    }
    __m256 yv = _mm256_maskload_ps(y + i, m);
    if constexpr (kSubtract) {
      yv = _mm256_fnmadd_ps(av, xv, yv);
    } else {
      yv = _mm256_fmadd_ps(av, xv, yv);
    }
    _mm256_maskstore_ps(y + i, m, yv);
  }
}

#endif  // SMG_SIMD_AVX2

/// Start of the nx-long run of diagonal d on the line that begins at cell
/// index `base` (line number `line`), for the two SOA-family layouts.
template <class ST>
inline const ST* line_diag_ptr(const ST* vals, Layout layout,
                               std::int64_t base, std::int64_t line, int d,
                               int nd, std::int64_t ncells, int nx) noexcept {
  return layout == Layout::SOA
             ? vals + static_cast<std::int64_t>(d) * ncells + base
             : vals + (line * nd + d) * static_cast<std::int64_t>(nx);
}

/// Scalar diagonal run (compiler-vectorizable when ST == CT).
template <bool kSubtract, bool kScaled, class ST, class CT>
inline void soa_diag_fma(const ST* SMG_RESTRICT a, const CT* SMG_RESTRICT x,
                         const CT* SMG_RESTRICT q2, CT* SMG_RESTRICT y,
                         int n) noexcept {
#if defined(SMG_SIMD_AVX2)
  if constexpr (std::is_same_v<ST, half> && std::is_same_v<CT, float>) {
    soa_diag_fma_f16<kSubtract, kScaled>(a, x, q2, y, n);
    return;
  }
#endif
#pragma omp simd
  for (int i = 0; i < n; ++i) {
    const CT ax =
        widen1<CT>(a[i]) * (kScaled ? q2[i] * x[i] : x[i]);
    y[i] += kSubtract ? -ax : ax;
  }
}

#if defined(SMG_SIMD_AVX2)

/// Interior-line prototype for the register-blocked fp16 kernel (scalar
/// unknowns), hoisted out of the line loop (per-line descriptor construction
/// would otherwise rival the math itself): aoff[v] is the offset of diagonal
/// v's run relative to the line's matrix base, shift[v] the x/q2 offset,
/// [ilo, ihi) the valid columns, [lo, hi) where all diagonals are valid, and
/// [jlo,jhi)x[klo,khi) the interior lines on which the prototype applies
/// unmodified.  Shared by apply_soa_f16_blocked and the fused
/// residual_restrict (kernels/fused.hpp), which must agree bitwise.
struct F16LineProto {
  std::int64_t aoff[32];
  std::int64_t shift[32];
  int ilo[32];
  int ihi[32];
  int lo = 0, hi = 0;
  int jlo = 0, jhi = 0, klo = 0, khi = 0;
  int nd = 0;
  int nx = 0;
  Layout layout = Layout::SOA;

  template <class ST>
  explicit F16LineProto(const StructMat<ST>& A) {
    const Box& box = A.box();
    const Stencil& st = A.stencil();
    nd = st.ndiag();
    nx = box.nx;
    layout = A.layout();
    SMG_CHECK(nd <= 32, "stencil wider than 3x3x3 is unsupported");
    const std::int64_t ncells = A.ncells();
    jlo = 0;
    jhi = box.ny;
    klo = 0;
    khi = box.nz;
    lo = 0;
    hi = nx;
    for (int d = 0; d < nd; ++d) {
      const Offset& o = st.offset(d);
      aoff[d] = layout == Layout::SOA
                    ? static_cast<std::int64_t>(d) * ncells
                    : static_cast<std::int64_t>(d) * nx;
      shift[d] = o.dx + static_cast<std::int64_t>(nx) *
                            (o.dy + static_cast<std::int64_t>(box.ny) * o.dz);
      ilo[d] = std::max(0, -static_cast<int>(o.dx));
      ihi[d] = std::min(nx, nx - static_cast<int>(o.dx));
      lo = std::max(lo, ilo[d]);
      hi = std::min(hi, ihi[d]);
      jlo = std::max(jlo, -static_cast<int>(o.dy));
      jhi = std::min(jhi, box.ny - static_cast<int>(o.dy));
      klo = std::max(klo, -static_cast<int>(o.dz));
      khi = std::min(khi, box.nz - static_cast<int>(o.dz));
    }
    hi = std::max(hi, lo);
  }

  bool interior(int j, int k) const noexcept {
    return j >= jlo && j < jhi && k >= klo && k < khi;
  }

  /// Matrix base offset of line number `line` starting at cell `base`.
  std::int64_t abase(std::int64_t base, std::int64_t line) const noexcept {
    return layout == Layout::SOA ? base
                                 : line * static_cast<std::int64_t>(nd) * nx;
  }
};

/// Per-line view of the valid diagonals: either the prototype itself
/// (interior lines) or a compacted subset (boundary lines).
struct F16LineDesc {
  const std::int64_t* aoff;
  const std::int64_t* shift;
  const int* ilo;
  const int* ihi;
  int nv;
  int lo, hi;
};

/// Resolve line (j, k) against the prototype; boundary lines compact their
/// valid diagonals into the caller-provided scratch arrays.
inline F16LineDesc f16_line_desc(const F16LineProto& p, const Stencil& st,
                                 const Box& box, int j, int k,
                                 std::int64_t c_aoff[32],
                                 std::int64_t c_shift[32], int c_ilo[32],
                                 int c_ihi[32]) noexcept {
  if (p.interior(j, k)) {
    return {p.aoff, p.shift, p.ilo, p.ihi, p.nd, p.lo, p.hi};
  }
  int nv = 0;
  int lo = 0, hi = p.nx;
  for (int d = 0; d < p.nd; ++d) {
    const Offset& o = st.offset(d);
    if (j + o.dy < 0 || j + o.dy >= box.ny || k + o.dz < 0 ||
        k + o.dz >= box.nz || p.ihi[d] <= p.ilo[d]) {
      continue;
    }
    c_aoff[nv] = p.aoff[d];
    c_shift[nv] = p.shift[d];
    c_ilo[nv] = p.ilo[d];
    c_ihi[nv] = p.ihi[d];
    lo = std::max(lo, p.ilo[d]);
    hi = std::min(hi, p.ihi[d]);
    ++nv;
  }
  hi = std::max(hi, lo);
  return {c_aoff, c_shift, c_ilo, c_ihi, nv, lo, hi};
}

/// Core fp16 line runner: every 8-lane block is SIMD.  Interior blocks take
/// the unmasked fast path; the at-most-two edge blocks use per-diagonal
/// masked x loads.  Boundary-truncated matrix entries are zero by StructMat's
/// invariant, so a dead lane contributes 0 * x = 0 and the masks are only
/// needed for memory safety; 16-byte matrix loads past a run are covered by
/// kSimdSlack.  am/xb/bb/q2b are the line-base pointers (vals + abase,
/// x + base, ...); yl is the nx-long output run — y + base for the in-place
/// kernels, or a private line buffer for the fused downstroke.
template <bool kResidual, bool kScaled>
inline void f16_run_line(const half* SMG_RESTRICT am,
                         const float* SMG_RESTRICT xb,
                         const float* SMG_RESTRICT bb,
                         const float* SMG_RESTRICT q2b,
                         float* SMG_RESTRICT yl, int nx,
                         const F16LineDesc& d) noexcept {
  const int nv = d.nv;
  const std::int64_t* SMG_RESTRICT aoff = d.aoff;
  const std::int64_t* SMG_RESTRICT shift = d.shift;
  const int* SMG_RESTRICT vilo = d.ilo;
  const int* SMG_RESTRICT vihi = d.ihi;
  for (int i = 0; i < nx; i += 8) {
    if (i >= d.lo && i + 8 <= d.hi) {
      __m256 acc = _mm256_setzero_ps();
      for (int v = 0; v < nv; ++v) {
        const __m256 av = _mm256_cvtph_ps(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(am + aoff[v] + i)));
        __m256 xv = _mm256_loadu_ps(xb + shift[v] + i);
        if constexpr (kScaled) {
          xv = _mm256_mul_ps(xv, _mm256_loadu_ps(q2b + shift[v] + i));
        }
        acc = _mm256_fmadd_ps(av, xv, acc);
      }
      if constexpr (kScaled) {
        acc = _mm256_mul_ps(acc, _mm256_loadu_ps(q2b + i));
      }
      if constexpr (kResidual) {
        acc = _mm256_sub_ps(_mm256_loadu_ps(bb + i), acc);
      }
      _mm256_storeu_ps(yl + i, acc);
      continue;
    }
    const int blen = std::min(8, nx - i);
    const __m256i ms = tail_mask(blen);
    __m256 acc = _mm256_setzero_ps();
    for (int v = 0; v < nv; ++v) {
      const int s = std::clamp(vilo[v] - i, 0, 8);
      const int e = std::clamp(vihi[v] - i, 0, 8);
      if (e <= s) {
        continue;
      }
      const __m256i mv = _mm256_and_si256(head_mask(s), tail_mask(e));
      const __m256 av = _mm256_cvtph_ps(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(am + aoff[v] + i)));
      __m256 xv = _mm256_maskload_ps(xb + shift[v] + i, mv);
      if constexpr (kScaled) {
        xv = _mm256_mul_ps(xv, _mm256_maskload_ps(q2b + shift[v] + i, mv));
      }
      acc = _mm256_fmadd_ps(av, xv, acc);
    }
    if constexpr (kScaled) {
      acc = _mm256_mul_ps(acc, _mm256_maskload_ps(q2b + i, ms));
    }
    if constexpr (kResidual) {
      acc = _mm256_sub_ps(_mm256_maskload_ps(bb + i, ms), acc);
    }
    _mm256_maskstore_ps(yl + i, ms, acc);
  }
}

/// Register-blocked fp16 SOA kernel (scalar unknowns): the line accumulator
/// lives in a ymm register across ALL diagonals, so each 8-entry block costs
/// one load + one vcvtph2ps + one x-load + one fma per diagonal and a single
/// y store — the uop diet that lets the halved matrix traffic actually show
/// up as kernel speedup (Fig. 7's "MG-fp16/fp32(opt)" series).
template <bool kResidual, bool kScaled>
void apply_soa_f16_blocked(const StructMat<half>& A,
                           const float* SMG_RESTRICT x,
                           const float* SMG_RESTRICT b, float* SMG_RESTRICT y,
                           const float* SMG_RESTRICT q2) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const half* SMG_RESTRICT vals = A.data();
  const F16LineProto proto(A);

#pragma omp parallel for collapse(2) schedule(static)
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      const std::int64_t base = box.idx(0, j, k);
      const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
      std::int64_t c_aoff[32];
      std::int64_t c_shift[32];
      int c_ilo[32];
      int c_ihi[32];
      const F16LineDesc d =
          f16_line_desc(proto, st, box, j, k, c_aoff, c_shift, c_ilo, c_ihi);
      f16_run_line<kResidual, kScaled>(
          vals + proto.abase(base, line), x + base,
          b != nullptr ? b + base : nullptr,
          q2 != nullptr ? q2 + base : nullptr, y + base, box.nx, d);
    }
  }
}

#endif  // SMG_SIMD_AVX2

/// Expose a (line, diagonal) coefficient run in compute precision: identity
/// when storage == compute, otherwise a SIMD widen into `buf`.
template <class CT, class ST>
inline const CT* widen_run(const ST* src, std::size_t n, avec<CT>& buf) {
  if constexpr (std::is_same_v<ST, CT>) {
    return src;
  } else {
    if (buf.size() < n) {
      buf.resize(n);
    }
    if constexpr (is_storage_only_v<ST> && std::is_same_v<CT, float>) {
      widen(src, buf.data(), n);
    } else {
      for (std::size_t q = 0; q < n; ++q) {
        buf[q] = widen1<CT>(src[q]);
      }
    }
    return buf.data();
  }
}

/// Block (bs > 1) SOA-family kernel: per (line, diagonal) the r x r block
/// coefficients are widened once into an L1 buffer (amortized conversion),
/// then dense block math runs in compute precision.  Accumulates the raw
/// matrix-vector sum into y and applies b/q2 in a post pass, which lets the
/// scaled residual fuse correctly.
template <bool kResidual, class ST, class CT>
void apply_soa_block_lines(const StructMat<ST>& A, const CT* SMG_RESTRICT x,
                           const CT* SMG_RESTRICT b, CT* SMG_RESTRICT y,
                           const CT* SMG_RESTRICT q2) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  const int nd = st.ndiag();
  const int nx = box.nx;
  const std::int64_t ncells = A.ncells();
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
  const ST* SMG_RESTRICT vals = A.data();
  const Layout layout = A.layout();
  const std::size_t runlen = static_cast<std::size_t>(nx) *
                             static_cast<std::size_t>(block2);

  thread_local avec<CT> coefbuf;

  // Scaled recovery reads q2 .* x everywhere; x is static here, so pay one
  // fused pass up front instead of a load + multiply per matrix entry.
  thread_local avec<CT> xqbuf;
  if (q2 != nullptr) {
    const std::size_t n = static_cast<std::size_t>(A.nrows());
    xqbuf.resize(n);
    // Hoist the pointer: xqbuf is thread_local, so naming it inside the
    // parallel region would resolve to each worker's own (empty) buffer.
    CT* SMG_RESTRICT xq = xqbuf.data();
#pragma omp parallel for simd
    for (std::size_t q = 0; q < n; ++q) {
      xq[q] = q2[q] * x[q];
    }
    x = xqbuf.data();
  }
  const bool scaled = q2 != nullptr;

#pragma omp parallel for collapse(2) schedule(static)
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      const std::int64_t base = box.idx(0, j, k);
      const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
      for (std::int64_t q = 0; q < static_cast<std::int64_t>(nx) * bs; ++q) {
        y[base * bs + q] = CT{0};
      }
      for (int d = 0; d < nd; ++d) {
        const DiagRange r = diag_range(box, st.offset(d), j, k);
        if (!r.line_valid || r.ihi <= r.ilo) {
          continue;
        }
        const ST* araw =
            vals + (layout == Layout::SOA
                        ? (static_cast<std::int64_t>(d) * ncells + base) *
                              block2
                        : (line * nd + d) * static_cast<std::int64_t>(nx) *
                              block2);
        const CT* SMG_RESTRICT coef = widen_run<CT>(araw, runlen, coefbuf);
        const std::int64_t xoff = (base + r.shift) * bs;
        for (int i = r.ilo; i < r.ihi; ++i) {
          const CT* blk = coef + static_cast<std::int64_t>(i) * block2;
          const CT* xv = x + xoff + static_cast<std::int64_t>(i) * bs;
          CT* yv = y + (base + i) * bs;
          for (int br = 0; br < bs; ++br) {
            CT acc{0};
            for (int bc = 0; bc < bs; ++bc) {
              acc = mul_add(blk[br * bs + bc], xv[bc], acc);
            }
            yv[br] += acc;
          }
        }
      }
      // Post pass: apply the row q2 recovery and/or the residual form.
      CT* SMG_RESTRICT yl = y + base * bs;
      const std::int64_t ndof = static_cast<std::int64_t>(nx) * bs;
      if (scaled) {
        const CT* SMG_RESTRICT ql = q2 + base * bs;
        if constexpr (kResidual) {
          const CT* SMG_RESTRICT bl = b + base * bs;
          for (std::int64_t q = 0; q < ndof; ++q) {
            yl[q] = mul_add(-ql[q], yl[q], bl[q]);
          }
        } else {
          for (std::int64_t q = 0; q < ndof; ++q) {
            yl[q] *= ql[q];
          }
        }
      } else if constexpr (kResidual) {
        const CT* SMG_RESTRICT bl = b + base * bs;
        for (std::int64_t q = 0; q < ndof; ++q) {
          yl[q] = bl[q] - yl[q];
        }
      }
    }
  }
}

}  // namespace detail

/// SOA kernel: y = b - A x (kResidual) or y = A x (otherwise), with optional
/// on-the-fly rescaling by q2 (length nrows).  b may be null iff !kResidual.
template <bool kResidual, class ST, class CT>
void apply_soa(const StructMat<ST>& A, const CT* SMG_RESTRICT x,
               const CT* SMG_RESTRICT b, CT* SMG_RESTRICT y,
               const CT* SMG_RESTRICT q2) {
#if defined(SMG_SIMD_AVX2)
  if constexpr (std::is_same_v<ST, half> && std::is_same_v<CT, float>) {
    if (A.block_size() == 1) {
      if (q2 != nullptr) {
        detail::apply_soa_f16_blocked<kResidual, true>(A, x, b, y, q2);
      } else {
        detail::apply_soa_f16_blocked<kResidual, false>(A, x, b, y, q2);
      }
      return;
    }
  }
#endif
  if (A.block_size() > 1) {
    detail::apply_soa_block_lines<kResidual>(A, x, b, y, q2);
    return;
  }
  // Scaled residual must go through spmv-then-subtract (see residual()):
  // q2_i cannot be folded into per-diagonal passes without scaling b too.
  SMG_CHECK(!(kResidual && q2 != nullptr), "scaled residual not fused");
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  const int nd = st.ndiag();
  const std::int64_t ncells = A.ncells();
  const ST* SMG_RESTRICT vals = A.data();

  if (bs == 1) {
    const Layout layout = A.layout();
#pragma omp parallel for collapse(2) schedule(static)
    for (int k = 0; k < box.nz; ++k) {
      for (int j = 0; j < box.ny; ++j) {
        const std::int64_t base = box.idx(0, j, k);
        const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
        // Initialize the line: 0 for SpMV, b for residual.
        for (int i = 0; i < box.nx; ++i) {
          y[base + i] = kResidual ? b[base + i] : CT{0};
        }
        for (int d = 0; d < nd; ++d) {
          const DiagRange r = diag_range(box, st.offset(d), j, k);
          if (!r.line_valid || r.ihi <= r.ilo) {
            continue;
          }
          const ST* a = detail::line_diag_ptr(vals, layout, base, line, d,
                                              nd, ncells, box.nx);
          const std::int64_t xoff = base + r.shift;
          // For residual we subtract the A x contribution.
          if (q2 != nullptr) {
            detail::soa_diag_fma<kResidual, true>(
                a + r.ilo, x + xoff + r.ilo, q2 + xoff + r.ilo,
                y + base + r.ilo, r.ihi - r.ilo);
          } else {
            detail::soa_diag_fma<kResidual, false>(
                a + r.ilo, x + xoff + r.ilo, static_cast<const CT*>(nullptr),
                y + base + r.ilo, r.ihi - r.ilo);
          }
        }
        if (q2 != nullptr && !kResidual) {
          for (int i = 0; i < box.nx; ++i) {
            y[base + i] *= q2[base + i];
          }
        }
      }
    }
    return;
  }
}

/// AOS kernel: same contract as apply_soa.  For 2-byte ST this is the
/// "naive" mixed-precision variant paying one convert per entry.  The line
/// is split into boundary regions (per-entry range checks) and an interior
/// fast path over the line's valid diagonals only, so the AOS baseline is a
/// fair full-FP32 reference and the 2-byte slowdown isolates the fcvt cost.
template <bool kResidual, class ST, class CT>
void apply_aos(const StructMat<ST>& A, const CT* SMG_RESTRICT x,
               const CT* SMG_RESTRICT b, CT* SMG_RESTRICT y,
               const CT* SMG_RESTRICT q2) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  const int nd = st.ndiag();
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
  const ST* SMG_RESTRICT vals = A.data();
  SMG_CHECK(nd <= 32, "stencil wider than 3x3x3 is unsupported");

#pragma omp parallel for collapse(2) schedule(static)
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      const std::int64_t base = box.idx(0, j, k);
      // Valid diagonals of this line, and the interior region where all of
      // them apply unconditionally.
      struct Valid {
        int d;
        int ilo, ihi;
        std::int64_t shift;
      };
      Valid vd[32];
      int nvalid = 0;
      int lo = 0;
      int hi = box.nx;
      for (int d = 0; d < nd; ++d) {
        const DiagRange r = diag_range(box, st.offset(d), j, k);
        if (!r.line_valid || r.ihi <= r.ilo) {
          continue;
        }
        vd[nvalid++] = {d, r.ilo, r.ihi, r.shift};
        lo = std::max(lo, r.ilo);
        hi = std::min(hi, r.ihi);
      }
      hi = std::max(hi, lo);

      const auto cell_body = [&](int i, bool checked) {
        const std::int64_t cell = base + i;
        const ST* cell_vals = vals + cell * nd * block2;
        for (int br = 0; br < bs; ++br) {
          CT acc{0};
          for (int v = 0; v < nvalid; ++v) {
            if (checked && (i < vd[v].ilo || i >= vd[v].ihi)) {
              continue;
            }
            const std::int64_t nbr = cell + vd[v].shift;
            const ST* blk = cell_vals + vd[v].d * block2;
            for (int bc = 0; bc < bs; ++bc) {
              CT xv = x[nbr * bs + bc];
              if (q2 != nullptr) {
                xv *= q2[nbr * bs + bc];
              }
              acc = detail::mul_add(detail::widen1<CT>(blk[br * bs + bc]),
                                    xv, acc);
            }
          }
          if (q2 != nullptr) {
            acc *= q2[cell * bs + br];
          }
          const std::int64_t row = cell * bs + br;
          y[row] = kResidual ? b[row] - acc : acc;
        }
      };

      for (int i = 0; i < lo; ++i) {
        cell_body(i, true);
      }
      for (int i = lo; i < hi; ++i) {
        cell_body(i, false);
      }
      for (int i = hi; i < box.nx; ++i) {
        cell_body(i, true);
      }
    }
  }
}

/// y = A x (optionally rescaled); dispatches on the stored layout.
template <class ST, class CT>
void spmv(const StructMat<ST>& A, std::span<const CT> x, std::span<CT> y,
          const CT* q2 = nullptr) {
  SMG_CHECK(static_cast<std::int64_t>(x.size()) == A.nrows() &&
                static_cast<std::int64_t>(y.size()) == A.nrows(),
            "spmv size mismatch");
  const obs::KernelSpan span(obs::Kind::SpMV);
  if (A.layout() != Layout::AOS) {
    apply_soa<false>(A, x.data(), static_cast<const CT*>(nullptr), y.data(),
                     q2);
  } else {
    apply_aos<false>(A, x.data(), static_cast<const CT*>(nullptr), y.data(),
                     q2);
  }
}

/// r = b - A x (optionally rescaled); dispatches on the stored layout.
template <class ST, class CT>
void residual(const StructMat<ST>& A, std::span<const CT> b,
              std::span<const CT> x, std::span<CT> r,
              const CT* q2 = nullptr) {
  SMG_CHECK(static_cast<std::int64_t>(x.size()) == A.nrows() &&
                static_cast<std::int64_t>(b.size()) == A.nrows() &&
                static_cast<std::int64_t>(r.size()) == A.nrows(),
            "residual size mismatch");
  // Outermost kernel span: the scaled fallback below calls spmv, whose own
  // span is suppressed by the nesting guard.
  const obs::KernelSpan span(obs::Kind::Residual);
  // The SOA-family block path and the register-blocked fp16 path fuse the
  // scaled residual correctly (the accumulator is separate from b until the
  // final combination).
  if (A.layout() != Layout::AOS && A.block_size() > 1) {
    apply_soa<true>(A, x.data(), b.data(), r.data(), q2);
    return;
  }
#if defined(SMG_SIMD_AVX2)
  if constexpr (std::is_same_v<ST, half> && std::is_same_v<CT, float>) {
    if (A.layout() != Layout::AOS && A.block_size() == 1) {
      apply_soa<true>(A, x.data(), b.data(), r.data(), q2);
      return;
    }
  }
#endif
  if (q2 != nullptr) {
    // The scaled-matrix residual cannot fold q2_i into per-diagonal passes
    // (the b term must stay unscaled), so compute y = A x then r = b - y.
    thread_local avec<CT> tmp;
    tmp.resize(static_cast<std::size_t>(A.nrows()));
    spmv(A, x, std::span<CT>{tmp.data(), tmp.size()}, q2);
    for (std::size_t i = 0; i < tmp.size(); ++i) {
      r[i] = b[i] - tmp[i];
    }
    return;
  }
  if (A.layout() != Layout::AOS) {
    apply_soa<true>(A, x.data(), b.data(), r.data(), q2);
  } else {
    apply_aos<true>(A, x.data(), b.data(), r.data(), q2);
  }
}

// ---------------------------------------------------------------------------
// Multi-RHS (panel) kernels.
//
// The panel variants stream the stored matrix ONCE for all k interleaved
// columns of a MultiVector — the dominant traffic of every kernel above is
// the matrix itself (PAPER.md §5), so k right-hand sides amortize it ~k×.
// Column c of every panel kernel performs bitwise the same operations in the
// same order as the corresponding single-RHS kernel (the contract
// kernels/fused.hpp established for the fused downstroke):
//  * the AVX2 (half, float) paths perform one IEEE fma per element — exactly
//    what each lane of _mm256_fmadd_ps/_mm256_fnmadd_ps computes, with
//    skipped out-of-range cells bitwise neutral (a dead lane contributes
//    fma(0, x, acc) == acc by the stored-zero invariant, and the accumulator
//    can never be -0 mid-sum: it starts +0 and round-to-nearest addition
//    only yields -0 from (-0) + (-0));
//  * every other (layout, storage, compute) combination keeps the exact
//    scalar source shape of the kernel it mirrors, so the compiler makes the
//    same FP-contraction choice at both sites; the block-kernel folds, whose
//    contraction the optimizer resolves per vectorization context, are
//    pinned on BOTH sides via detail::mul_add.
// ---------------------------------------------------------------------------

namespace detail {

/// Panel analogue of soa_diag_fma: one diagonal run over kp interleaved
/// columns; a and q2 are per-row (amortized over the panel), x/y advance by
/// the row stride kp.
template <bool kSubtract, bool kScaled, class ST, class CT>
inline void panel_diag_fma(const ST* SMG_RESTRICT a, const CT* SMG_RESTRICT x,
                           const CT* SMG_RESTRICT q2, CT* SMG_RESTRICT y,
                           int n, int kp) noexcept {
  // A 1-column panel is laid out exactly like the plain vector, and the
  // single-RHS kernel is the bitwise reference the panel must reproduce —
  // delegating recovers its 8-rows-per-op AVX2 paths instead of paying the
  // per-row scalar setup below with a trivial inner loop.
  if (kp == 1) {
    soa_diag_fma<kSubtract, kScaled>(a, x, q2, y, n);
    return;
  }
#if defined(SMG_SIMD_AVX2)
  if constexpr (std::is_same_v<ST, half> && std::is_same_v<CT, float>) {
    // Widen the diagonal run up front (vcvtph2ps converts exactly, like the
    // per-entry _cvtsh_ss it replaces), so the row loop streams plain
    // floats; the per-entry conversion is a per-nnz cost that does not
    // amortize over columns.  Each lane below performs the optional exact
    // q2 multiply and one IEEE fma — the same per-cell operation sequence
    // as the scalar remainder loop.
    constexpr int kChunk = 256;
    alignas(32) float af[kChunk];
    for (int i0 = 0; i0 < n; i0 += kChunk) {
      const int m = std::min(kChunk, n - i0);
      widen(a + i0, af, static_cast<std::size_t>(m));
      if (kp % 8 == 0) {
        for (int i = 0; i < m; ++i) {
          const __m256 av = _mm256_set1_ps(af[i]);
          const __m256 qv =
              kScaled ? _mm256_set1_ps(q2[i0 + i]) : _mm256_setzero_ps();
          const float* SMG_RESTRICT xr =
              x + static_cast<std::int64_t>(i0 + i) * kp;
          float* SMG_RESTRICT yr = y + static_cast<std::int64_t>(i0 + i) * kp;
          for (int c = 0; c < kp; c += 8) {
            __m256 xv = _mm256_loadu_ps(xr + c);
            if constexpr (kScaled) {
              xv = _mm256_mul_ps(xv, qv);
            }
            __m256 yv = _mm256_loadu_ps(yr + c);
            if constexpr (kSubtract) {
              yv = _mm256_fnmadd_ps(av, xv, yv);
            } else {
              yv = _mm256_fmadd_ps(av, xv, yv);
            }
            _mm256_storeu_ps(yr + c, yv);
          }
        }
      } else {
        for (int i = 0; i < m; ++i) {
          const float av = af[i];
          const float qv = kScaled ? q2[i0 + i] : 0.0f;
          const float* SMG_RESTRICT xr =
              x + static_cast<std::int64_t>(i0 + i) * kp;
          float* SMG_RESTRICT yr = y + static_cast<std::int64_t>(i0 + i) * kp;
#pragma omp simd
          for (int c = 0; c < kp; ++c) {
            float xv = xr[c];
            if constexpr (kScaled) {
              xv *= qv;
            }
            yr[c] =
                kSubtract ? std::fma(-av, xv, yr[c]) : std::fma(av, xv, yr[c]);
          }
        }
      }
    }
    return;
  }
  // Same-type panels: per lane the operation sequence is exactly the scalar
  // fallback's — optional q2 multiply, then one contracted multiply-add —
  // so the explicit form is bitwise neutral while removing the per-row
  // runtime-trip-count setup the auto-vectorizer emits for the loop below.
  if constexpr (std::is_same_v<ST, double> && std::is_same_v<CT, double>) {
    if (kp % 4 == 0) {
      for (int i = 0; i < n; ++i) {
        const __m256d av = _mm256_set1_pd(a[i]);
        const __m256d qv =
            kScaled ? _mm256_set1_pd(q2[i]) : _mm256_setzero_pd();
        const double* SMG_RESTRICT xr = x + static_cast<std::int64_t>(i) * kp;
        double* SMG_RESTRICT yr = y + static_cast<std::int64_t>(i) * kp;
        for (int c = 0; c < kp; c += 4) {
          __m256d xv = _mm256_loadu_pd(xr + c);
          if constexpr (kScaled) {
            xv = _mm256_mul_pd(xv, qv);
          }
          __m256d yv = _mm256_loadu_pd(yr + c);
          if constexpr (kSubtract) {
            yv = _mm256_fnmadd_pd(av, xv, yv);
          } else {
            yv = _mm256_fmadd_pd(av, xv, yv);
          }
          _mm256_storeu_pd(yr + c, yv);
        }
      }
      return;
    }
  }
  if constexpr (std::is_same_v<ST, float> && std::is_same_v<CT, float>) {
    if (kp % 8 == 0) {
      for (int i = 0; i < n; ++i) {
        const __m256 av = _mm256_set1_ps(a[i]);
        const __m256 qv =
            kScaled ? _mm256_set1_ps(q2[i]) : _mm256_setzero_ps();
        const float* SMG_RESTRICT xr = x + static_cast<std::int64_t>(i) * kp;
        float* SMG_RESTRICT yr = y + static_cast<std::int64_t>(i) * kp;
        for (int c = 0; c < kp; c += 8) {
          __m256 xv = _mm256_loadu_ps(xr + c);
          if constexpr (kScaled) {
            xv = _mm256_mul_ps(xv, qv);
          }
          __m256 yv = _mm256_loadu_ps(yr + c);
          if constexpr (kSubtract) {
            yv = _mm256_fnmadd_ps(av, xv, yv);
          } else {
            yv = _mm256_fmadd_ps(av, xv, yv);
          }
          _mm256_storeu_ps(yr + c, yv);
        }
      }
      return;
    }
  }
#endif
  for (int i = 0; i < n; ++i) {
    const CT* SMG_RESTRICT xr = x + static_cast<std::int64_t>(i) * kp;
    CT* SMG_RESTRICT yr = y + static_cast<std::int64_t>(i) * kp;
#pragma omp simd
    for (int c = 0; c < kp; ++c) {
      const CT ax = widen1<CT>(a[i]) * (kScaled ? q2[i] * xr[c] : xr[c]);
      yr[c] += kSubtract ? -ax : ax;
    }
  }
}

/// Per-matrix state reused across panel_lines calls; the AVX2 (half, float)
/// case hoists the F16LineProto descriptor out of the line loop exactly as
/// the single-RHS kernels do.
template <class ST, class CT>
struct PanelLineCtx {
  explicit PanelLineCtx(const StructMat<ST>&) {}
};

#if defined(SMG_SIMD_AVX2)
template <>
struct PanelLineCtx<half, float> {
  F16LineProto proto;
  explicit PanelLineCtx(const StructMat<half>& A) : proto(A) {}
};

/// Panel mirror of f16_run_line: per column the per-cell sequence (zero
/// accumulator, one fma per valid diagonal in descriptor order, q2
/// post-multiply, b - acc) is element-for-element what each SIMD lane of
/// the 8-wide kernel computes.  yl is the nx*kp local output panel and
/// doubles as the accumulator — CT stores are exact, so the intermediate
/// spills are bitwise neutral.
template <bool kResidual, bool kScaled>
inline void panel_f16_run_line(const half* SMG_RESTRICT am,
                               const float* SMG_RESTRICT xb,
                               const float* SMG_RESTRICT bb,
                               const float* SMG_RESTRICT q2b,
                               float* SMG_RESTRICT yl, int nx, int kp,
                               const F16LineDesc& d) noexcept {
  // A 1-column panel is the plain vector; the 8-wide single-RHS runner is
  // the bitwise reference (same per-cell sequence, per the contract above).
  if (kp == 1) {
    f16_run_line<kResidual, kScaled>(am, xb, bb, q2b, yl, nx, d);
    return;
  }
  for (std::int64_t q = 0; q < static_cast<std::int64_t>(nx) * kp; ++q) {
    yl[q] = 0.0f;
  }
  // Widen each diagonal run up front (vcvtph2ps, exact like the per-entry
  // scalar convert): the conversion is per-nnz and must not be repaid per
  // column.  kChunk covers any realistic line length in one pass.
  constexpr int kChunk = 256;
  alignas(32) float af[kChunk];
  for (int v = 0; v < d.nv; ++v) {
    const half* SMG_RESTRICT av = am + d.aoff[v];
    const std::int64_t sh = d.shift[v];
    const int ihi = d.ihi[v];
    for (int i1 = d.ilo[v]; i1 < ihi; i1 += kChunk) {
      const int m = std::min(kChunk, ihi - i1);
      widen(av + i1, af, static_cast<std::size_t>(m));
      if (kp % 8 == 0) {
        for (int i = 0; i < m; ++i) {
          const __m256 a8 = _mm256_set1_ps(af[i]);
          const __m256 q8 =
              kScaled ? _mm256_set1_ps(q2b[sh + i1 + i]) : _mm256_setzero_ps();
          const float* SMG_RESTRICT xr =
              xb + (sh + i1 + i) * static_cast<std::int64_t>(kp);
          float* SMG_RESTRICT yr = yl + static_cast<std::int64_t>(i1 + i) * kp;
          for (int c = 0; c < kp; c += 8) {
            __m256 xv = _mm256_loadu_ps(xr + c);
            if constexpr (kScaled) {
              xv = _mm256_mul_ps(xv, q8);
            }
            _mm256_storeu_ps(
                yr + c, _mm256_fmadd_ps(a8, xv, _mm256_loadu_ps(yr + c)));
          }
        }
      } else {
        for (int i = 0; i < m; ++i) {
          const float a = af[i];
          const float qv = kScaled ? q2b[sh + i1 + i] : 0.0f;
          const float* SMG_RESTRICT xr =
              xb + (sh + i1 + i) * static_cast<std::int64_t>(kp);
          float* SMG_RESTRICT yr = yl + static_cast<std::int64_t>(i1 + i) * kp;
#pragma omp simd
          for (int c = 0; c < kp; ++c) {
            float xv = xr[c];
            if constexpr (kScaled) {
              xv *= qv;
            }
            yr[c] = std::fma(a, xv, yr[c]);
          }
        }
      }
    }
  }
  for (int i = 0; i < nx; ++i) {
    float* SMG_RESTRICT yr = yl + static_cast<std::int64_t>(i) * kp;
    const float qv = kScaled ? q2b[i] : 0.0f;
    const float* SMG_RESTRICT br =
        kResidual ? bb + static_cast<std::int64_t>(i) * kp : nullptr;
    if (kp % 8 == 0) {
      const __m256 q8 = kScaled ? _mm256_set1_ps(qv) : _mm256_setzero_ps();
      for (int c = 0; c < kp; c += 8) {
        __m256 acc = _mm256_loadu_ps(yr + c);
        if constexpr (kScaled) {
          acc = _mm256_mul_ps(acc, q8);
        }
        if constexpr (kResidual) {
          acc = _mm256_sub_ps(_mm256_loadu_ps(br + c), acc);
        }
        _mm256_storeu_ps(yr + c, acc);
      }
    } else {
#pragma omp simd
      for (int c = 0; c < kp; ++c) {
        float acc = yr[c];
        if constexpr (kScaled) {
          acc *= qv;
        }
        if constexpr (kResidual) {
          acc = br[c] - acc;
        }
        yr[c] = acc;
      }
    }
  }
}
#endif  // SMG_SIMD_AVX2

/// Panel residual / SpMV over lines j in [jlo, jhi) of plane k, written
/// contiguously to the local panel out[((j - jlo) * nx * bs + ...) * kp].
/// f and x are full panels (row-major, stride kp), q2 the plain per-row
/// vector.  Per (layout, storage, block size, q2) family this mirrors
/// residual_lines (kernels/fused.hpp) for kResidual and the spmv() dispatch
/// for !kResidual; kResidual requires f != nullptr.
template <bool kResidual, class ST, class CT>
void panel_lines(const PanelLineCtx<ST, CT>& ctx, const StructMat<ST>& A,
                 const CT* SMG_RESTRICT f, const CT* SMG_RESTRICT x,
                 const CT* SMG_RESTRICT q2, int k, int jlo, int jhi,
                 CT* SMG_RESTRICT out, int kp) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  const int nd = st.ndiag();
  const int nx = box.nx;
  const ST* SMG_RESTRICT vals = A.data();
  const std::int64_t lstride = static_cast<std::int64_t>(nx) * bs;

  if (A.layout() == Layout::AOS) {
    // Mirror of apply_aos' line body / residual_lines' AOS branch: the panel
    // row doubles as the per-(cell, br) accumulator; with q2 the scaled
    // product is stored first and subtracted in a separate pass (the
    // intermediate store is the same rounding barrier residual() has).
    const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
    SMG_CHECK(nd <= 32, "stencil wider than 3x3x3 is unsupported");
    for (int j = jlo; j < jhi; ++j) {
      CT* SMG_RESTRICT rl = out + (j - jlo) * lstride * kp;
      const std::int64_t base = box.idx(0, j, k);
      struct Valid {
        int d;
        int ilo, ihi;
        std::int64_t shift;
      };
      Valid vd[32];
      int nvalid = 0;
      int lo = 0;
      int hi = nx;
      for (int d = 0; d < nd; ++d) {
        const DiagRange r = diag_range(box, st.offset(d), j, k);
        if (!r.line_valid || r.ihi <= r.ilo) {
          continue;
        }
        vd[nvalid++] = {d, r.ilo, r.ihi, r.shift};
        lo = std::max(lo, r.ilo);
        hi = std::min(hi, r.ihi);
      }
      hi = std::max(hi, lo);
      const auto cell_body = [&](int i, bool checked) {
        const std::int64_t cell = base + i;
        const ST* cell_vals = vals + cell * nd * block2;
        for (int br = 0; br < bs; ++br) {
          CT* SMG_RESTRICT accr =
              rl + (static_cast<std::int64_t>(i) * bs + br) * kp;
          for (int c = 0; c < kp; ++c) {
            accr[c] = CT{0};
          }
          for (int v = 0; v < nvalid; ++v) {
            if (checked && (i < vd[v].ilo || i >= vd[v].ihi)) {
              continue;
            }
            const std::int64_t nbr = cell + vd[v].shift;
            const ST* blk = cell_vals + vd[v].d * block2;
            for (int bc = 0; bc < bs; ++bc) {
              const CT av = widen1<CT>(blk[br * bs + bc]);
              const CT qn = q2 != nullptr ? q2[nbr * bs + bc] : CT{0};
              const CT* SMG_RESTRICT xr = x + (nbr * bs + bc) * kp;
#pragma omp simd
              for (int c = 0; c < kp; ++c) {
                CT xv = xr[c];
                if (q2 != nullptr) {
                  xv *= qn;
                }
                accr[c] = mul_add(av, xv, accr[c]);
              }
            }
          }
          if (q2 != nullptr) {
            const CT qc = q2[cell * bs + br];
            for (int c = 0; c < kp; ++c) {
              accr[c] *= qc;
            }
          } else if constexpr (kResidual) {
            const CT* SMG_RESTRICT fr = f + (cell * bs + br) * kp;
            for (int c = 0; c < kp; ++c) {
              accr[c] = fr[c] - accr[c];
            }
          }
        }
      };
      for (int i = 0; i < lo; ++i) {
        cell_body(i, true);
      }
      for (int i = lo; i < hi; ++i) {
        cell_body(i, false);
      }
      for (int i = hi; i < nx; ++i) {
        cell_body(i, true);
      }
      if (q2 != nullptr && kResidual) {
        const CT* SMG_RESTRICT fl = f + base * bs * kp;
        for (std::int64_t q = 0; q < lstride * kp; ++q) {
          rl[q] = fl[q] - rl[q];
        }
      }
    }
    return;
  }

  const std::int64_t ncells = A.ncells();
  const Layout layout = A.layout();

  if (bs > 1) {
    // Mirror of apply_soa_block_lines / residual_lines' block branch: per
    // (line, diagonal) the block coefficients are widened once, the raw
    // matrix-vector sum accumulates into the panel row (per-(cell, br) block
    // products fold in a private accumulator first, exactly as the
    // single-RHS kernels), and f/q2 apply in a post pass.  The q2 .* x
    // operand is the same single multiply of the same operands.
    const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
    const std::size_t runlen =
        static_cast<std::size_t>(nx) * static_cast<std::size_t>(block2);
    thread_local avec<CT> coefbuf;
    for (int j = jlo; j < jhi; ++j) {
      CT* SMG_RESTRICT rl = out + (j - jlo) * lstride * kp;
      const std::int64_t base = box.idx(0, j, k);
      const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
      for (std::int64_t q = 0; q < lstride * kp; ++q) {
        rl[q] = CT{0};
      }
      for (int d = 0; d < nd; ++d) {
        const DiagRange r = diag_range(box, st.offset(d), j, k);
        if (!r.line_valid || r.ihi <= r.ilo) {
          continue;
        }
        const ST* araw =
            vals +
            (layout == Layout::SOA
                 ? (static_cast<std::int64_t>(d) * ncells + base) * block2
                 : (line * nd + d) * static_cast<std::int64_t>(nx) * block2);
        const CT* SMG_RESTRICT coef = widen_run<CT>(araw, runlen, coefbuf);
        const std::int64_t xoff = (base + r.shift) * bs;
        for (int i = r.ilo; i < r.ihi; ++i) {
          const CT* blk = coef + static_cast<std::int64_t>(i) * block2;
          const std::int64_t xrow = xoff + static_cast<std::int64_t>(i) * bs;
          for (int br = 0; br < bs; ++br) {
            CT* SMG_RESTRICT yr =
                rl + (static_cast<std::int64_t>(i) * bs + br) * kp;
#pragma omp simd
            for (int c = 0; c < kp; ++c) {
              CT acc{0};
              for (int bc = 0; bc < bs; ++bc) {
                CT xv = x[(xrow + bc) * kp + c];
                if (q2 != nullptr) {
                  xv = q2[xrow + bc] * xv;
                }
                acc = mul_add(blk[br * bs + bc], xv, acc);
              }
              yr[c] += acc;
            }
          }
        }
      }
      // Post pass: apply the row q2 recovery and/or the residual form.
      if (q2 != nullptr) {
        const CT* SMG_RESTRICT ql = q2 + base * bs;
        if constexpr (kResidual) {
          const CT* SMG_RESTRICT fl = f + base * bs * kp;
          for (std::int64_t q = 0; q < lstride; ++q) {
            CT* SMG_RESTRICT yr = rl + q * kp;
            const CT qc = ql[q];
            const CT* SMG_RESTRICT fr = fl + q * kp;
            for (int c = 0; c < kp; ++c) {
              yr[c] = mul_add(-qc, yr[c], fr[c]);
            }
          }
        } else {
          for (std::int64_t q = 0; q < lstride; ++q) {
            CT* SMG_RESTRICT yr = rl + q * kp;
            const CT qc = ql[q];
            for (int c = 0; c < kp; ++c) {
              yr[c] *= qc;
            }
          }
        }
      } else if constexpr (kResidual) {
        const CT* SMG_RESTRICT fl = f + base * bs * kp;
        for (std::int64_t q = 0; q < lstride * kp; ++q) {
          rl[q] = fl[q] - rl[q];
        }
      }
    }
    return;
  }

#if defined(SMG_SIMD_AVX2)
  if constexpr (std::is_same_v<ST, half> && std::is_same_v<CT, float>) {
    for (int j = jlo; j < jhi; ++j) {
      CT* SMG_RESTRICT rl = out + (j - jlo) * lstride * kp;
      const std::int64_t base = box.idx(0, j, k);
      const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
      std::int64_t c_aoff[32];
      std::int64_t c_shift[32];
      int c_ilo[32];
      int c_ihi[32];
      const F16LineDesc d = f16_line_desc(ctx.proto, st, box, j, k, c_aoff,
                                          c_shift, c_ilo, c_ihi);
      const half* am = vals + ctx.proto.abase(base, line);
      const float* fb = kResidual ? f + base * kp : nullptr;
      if (q2 != nullptr) {
        panel_f16_run_line<kResidual, true>(am, x + base * kp, fb, q2 + base,
                                            rl, nx, kp, d);
      } else {
        panel_f16_run_line<kResidual, false>(am, x + base * kp, fb, nullptr,
                                             rl, nx, kp, d);
      }
    }
    return;
  }
#endif
  (void)ctx;

  if (q2 != nullptr) {
    // Mirror of the scaled generic path: y = A (q2 .* x) accumulated per
    // diagonal, row rescale, then (for the residual) r = f - y — the b term
    // must stay unscaled, so q2 cannot fold into the per-diagonal passes.
    for (int j = jlo; j < jhi; ++j) {
      CT* SMG_RESTRICT rl = out + (j - jlo) * lstride * kp;
      const std::int64_t base = box.idx(0, j, k);
      const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
      for (std::int64_t q = 0; q < static_cast<std::int64_t>(nx) * kp; ++q) {
        rl[q] = CT{0};
      }
      for (int d = 0; d < nd; ++d) {
        const DiagRange r = diag_range(box, st.offset(d), j, k);
        if (!r.line_valid || r.ihi <= r.ilo) {
          continue;
        }
        const ST* a = line_diag_ptr(vals, layout, base, line, d, nd, ncells, nx);
        const std::int64_t xoff = base + r.shift;
        panel_diag_fma<false, true>(a + r.ilo, x + (xoff + r.ilo) * kp,
                                    q2 + xoff + r.ilo,
                                    rl + static_cast<std::int64_t>(r.ilo) * kp,
                                    r.ihi - r.ilo, kp);
      }
      for (int i = 0; i < nx; ++i) {
        CT* SMG_RESTRICT yr = rl + static_cast<std::int64_t>(i) * kp;
        const CT qc = q2[base + i];
        for (int c = 0; c < kp; ++c) {
          yr[c] *= qc;
        }
      }
      if constexpr (kResidual) {
        const CT* SMG_RESTRICT fl = f + base * kp;
        for (std::int64_t q = 0; q < static_cast<std::int64_t>(nx) * kp; ++q) {
          rl[q] = fl[q] - rl[q];
        }
      }
    }
    return;
  }

  // Mirror of the unscaled generic path: init with f (residual) or zero
  // (SpMV), then the per-diagonal passes.
  for (int j = jlo; j < jhi; ++j) {
    CT* SMG_RESTRICT rl = out + (j - jlo) * lstride * kp;
    const std::int64_t base = box.idx(0, j, k);
    const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
    if constexpr (kResidual) {
      const CT* SMG_RESTRICT fl = f + base * kp;
      for (std::int64_t q = 0; q < static_cast<std::int64_t>(nx) * kp; ++q) {
        rl[q] = fl[q];
      }
    } else {
      for (std::int64_t q = 0; q < static_cast<std::int64_t>(nx) * kp; ++q) {
        rl[q] = CT{0};
      }
    }
    for (int d = 0; d < nd; ++d) {
      const DiagRange r = diag_range(box, st.offset(d), j, k);
      if (!r.line_valid || r.ihi <= r.ilo) {
        continue;
      }
      const ST* a = line_diag_ptr(vals, layout, base, line, d, nd, ncells, nx);
      const std::int64_t xoff = base + r.shift;
      panel_diag_fma<kResidual, false>(
          a + r.ilo, x + (xoff + r.ilo) * kp, static_cast<const CT*>(nullptr),
          rl + static_cast<std::int64_t>(r.ilo) * kp, r.ihi - r.ilo, kp);
    }
  }
}

}  // namespace detail

/// Y = A X (optionally rescaled) for all columns of the panel in one sweep
/// of the stored matrix.  Column c is bitwise identical to
/// spmv(A, X[:,c], Y[:,c], q2).
template <class ST, class CT>
void spmv_many(const StructMat<ST>& A, const MultiVector<CT>& x,
               MultiVector<CT>& y, const CT* q2 = nullptr) {
  SMG_CHECK(x.rows() == A.nrows() && y.rows() == A.nrows() &&
                x.padded_cols() == y.padded_cols(),
            "spmv_many size mismatch");
  const obs::KernelSpan span(obs::Kind::SpMV);
  const detail::PanelLineCtx<ST, CT> ctx(A);
  const Box& box = A.box();
  const int bs = A.block_size();
  const int kp = x.padded_cols();
  const CT* xp = x.data();
  CT* yp = y.data();
#pragma omp parallel for schedule(static)
  for (int k = 0; k < box.nz; ++k) {
    detail::panel_lines<false>(ctx, A, static_cast<const CT*>(nullptr), xp,
                               q2, k, 0, box.ny,
                               yp + box.idx(0, 0, k) * bs * kp, kp);
  }
}

/// R = B - A X (optionally rescaled), one matrix sweep for all columns.
/// Column c is bitwise identical to residual(A, B[:,c], X[:,c], R[:,c], q2).
template <class ST, class CT>
void residual_many(const StructMat<ST>& A, const MultiVector<CT>& b,
                   const MultiVector<CT>& x, MultiVector<CT>& r,
                   const CT* q2 = nullptr) {
  SMG_CHECK(x.rows() == A.nrows() && b.rows() == A.nrows() &&
                r.rows() == A.nrows() && x.padded_cols() == r.padded_cols() &&
                b.padded_cols() == r.padded_cols(),
            "residual_many size mismatch");
  const obs::KernelSpan span(obs::Kind::Residual);
  const detail::PanelLineCtx<ST, CT> ctx(A);
  const Box& box = A.box();
  const int bs = A.block_size();
  const int kp = x.padded_cols();
  const CT* bp = b.data();
  const CT* xp = x.data();
  CT* rp = r.data();
#pragma omp parallel for schedule(static)
  for (int k = 0; k < box.nz; ++k) {
    detail::panel_lines<true>(ctx, A, bp, xp, q2, k, 0, box.ny,
                              rp + box.idx(0, 0, k) * bs * kp, kp);
  }
}

/// Scalar reference SpMV used to validate the optimized kernels.
template <class ST, class CT>
void spmv_ref(const StructMat<ST>& A, std::span<const CT> x, std::span<CT> y,
              const CT* q2 = nullptr) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        for (int br = 0; br < bs; ++br) {
          CT acc{0};
          for (int d = 0; d < st.ndiag(); ++d) {
            const Offset& o = st.offset(d);
            if (!box.contains(i + o.dx, j + o.dy, k + o.dz)) {
              continue;
            }
            const std::int64_t nbr = box.idx(i + o.dx, j + o.dy, k + o.dz);
            for (int bc = 0; bc < bs; ++bc) {
              CT xv = x[nbr * bs + bc];
              if (q2 != nullptr) {
                xv *= q2[nbr * bs + bc];
              }
              acc += detail::widen1<CT>(A.at(cell, d, br, bc)) * xv;
            }
          }
          if (q2 != nullptr) {
            acc *= q2[cell * bs + br];
          }
          y[cell * bs + br] = acc;
        }
      }
    }
  }
}

}  // namespace smg
