// Gauss-Seidel sweeps (the SymGS smoother / SpTRSV-shaped hotspot, §5).
//
// Forward sweep in lexicographic cell order; backward sweep reversed.  The
// diagonal (block) inverse is precomputed by smoother setup in compute
// precision from the *high-precision* matrix (Alg. 1 line 13); off-diagonal
// entries are read from storage precision with recover-and-rescale on the
// fly, exactly as SpMV.
//
// Vectorization strategy for the SOA layout (the "(opt)" variant of Fig. 7):
// every supported stencil has at most one same-line lower offset (-1,0,0) and
// one same-line upper offset (+1,0,0); all other offsets reference previous
// or later grid lines whose values are fixed for the duration of the current
// line.  Their contributions are therefore computed in a vectorized pre-pass
// (8 FP16 entries per vcvtph2ps), leaving a one-term scalar recurrence.
// The AOS path is the straightforward scalar sweep paying one convert per
// entry (the "(naive)" variant).
//
// Threading: every sweep accepts an optional WavefrontSchedule.  A valid
// schedule runs the same per-line (per-cell for AOS) bodies level by level
// with the items of one level in an `omp for` — each item only ever reads
// items of strictly earlier (fully updated) or strictly later (untouched)
// levels, so the parallel sweep is *bitwise identical* to the sequential
// one at any thread count (see grid/wavefront.hpp for the level function).
// A null or invalid schedule, or one of the wrong granularity, falls back
// to the plain sequential sweep.
#pragma once

#include <span>
#include <vector>

#include "grid/wavefront.hpp"
#include "kernels/loops.hpp"
#include "kernels/spmv.hpp"
#include "sgdia/struct_matrix.hpp"
#include "util/aligned.hpp"
#include "util/common.hpp"

namespace smg {

namespace detail {

/// Multiply the bs x bs row-major block at `blk` with vector `v`.
template <class CT>
inline void block_apply(const CT* blk, const CT* v, CT* out, int bs) noexcept {
  for (int br = 0; br < bs; ++br) {
    CT acc{0};
    for (int bc = 0; bc < bs; ++bc) {
      acc = mul_add(blk[br * bs + bc], v[bc], acc);
    }
    out[br] = acc;
  }
}

/// True if `wf` can drive a level-scheduled sweep at this granularity.
inline bool wf_usable(const WavefrontSchedule* wf,
                      WfGranularity gran) noexcept {
  return wf != nullptr && wf->valid() && wf->granularity() == gran;
}

/// Run `body(item)` over every scheduled item, level by level (reversed for
/// the backward sweep); items of one level run in parallel.  One parallel
/// region covers the whole sweep — the per-level `omp for` barrier is the
/// only synchronization.
template <bool kForward, class Body>
inline void run_wavefront(const WavefrontSchedule& wf, const Body& body) {
  const int nlev = wf.nlevels();
#pragma omp parallel
  for (int s = 0; s < nlev; ++s) {
    const auto lv = wf.level(kForward ? s : nlev - 1 - s);
    const std::int64_t nl = static_cast<std::int64_t>(lv.size());
#pragma omp for schedule(static)
    for (std::int64_t t = 0; t < nl; ++t) {
      body(lv[static_cast<std::size_t>(t)]);
    }
  }
}

/// Run `body(j, k)` over all grid lines: wavefront-parallel when a usable
/// line-granularity schedule is supplied, sequential sweep order otherwise.
template <bool kForward, class Body>
inline void run_lines(const Box& box, const WavefrontSchedule* wf,
                      const Body& body) {
  if (wf_usable(wf, WfGranularity::Line)) {
    run_wavefront<kForward>(*wf, [&](std::int32_t line) {
      body(static_cast<int>(line % box.ny), static_cast<int>(line / box.ny));
    });
    return;
  }
  const int k0 = kForward ? 0 : box.nz - 1;
  const int kstep = kForward ? 1 : -1;
  for (int k = k0; k >= 0 && k < box.nz; k += kstep) {
    const int j0 = kForward ? 0 : box.ny - 1;
    for (int j = j0; j >= 0 && j < box.ny; j += kstep) {
      body(j, k);
    }
  }
}

/// Scalar Gauss-Seidel sweep over all cells in the given direction.
/// Works for any layout; the AOS ("naive") path for 2-byte storage.
/// Parallelized at cell granularity by a Cell wavefront schedule.
template <bool kForward, class ST, class CT>
void gs_sweep_scalar(const StructMat<ST>& A, std::span<const CT> f,
                     std::span<CT> u, std::span<const CT> invdiag,
                     const CT* SMG_RESTRICT q2, const WavefrontSchedule* wf) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  const int nd = st.ndiag();
  const int center = st.center();
  SMG_CHECK(center >= 0, "GS sweep needs a diagonal entry");
  SMG_CHECK(bs <= 8, "block size > 8 unsupported");
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;

  const auto cell_body = [&](int i, int j, int k) {
    CT acc[8];
    CT upd[8];
    const std::int64_t cell = box.idx(i, j, k);
    for (int br = 0; br < bs; ++br) {
      acc[br] = f[cell * bs + br];
    }
    for (int d = 0; d < nd; ++d) {
      if (d == center) {
        continue;
      }
      const Offset& o = st.offset(d);
      if (!box.contains(i + o.dx, j + o.dy, k + o.dz)) {
        continue;
      }
      const std::int64_t nbr = box.idx(i + o.dx, j + o.dy, k + o.dz);
      const ST* blk = A.data() + A.block_index(cell, d);
      for (int br = 0; br < bs; ++br) {
        CT s{0};
        for (int bc = 0; bc < bs; ++bc) {
          CT xv = u[nbr * bs + bc];
          if (q2 != nullptr) {
            xv *= q2[nbr * bs + bc];
          }
          s = mul_add(widen1<CT>(blk[br * bs + bc]), xv, s);
        }
        if (q2 != nullptr) {
          s *= q2[cell * bs + br];
        }
        acc[br] -= s;
      }
    }
    block_apply(invdiag.data() + cell * block2, acc, upd, bs);
    for (int br = 0; br < bs; ++br) {
      u[cell * bs + br] = upd[br];
    }
  };

  if (wf_usable(wf, WfGranularity::Cell)) {
    const std::int64_t nxy = static_cast<std::int64_t>(box.nx) * box.ny;
    run_wavefront<kForward>(*wf, [&](std::int32_t cell) {
      const int k = static_cast<int>(cell / nxy);
      const int rem = static_cast<int>(cell % nxy);
      cell_body(rem % box.nx, rem / box.nx, k);
    });
    return;
  }

  const int k0 = kForward ? 0 : box.nz - 1;
  const int kstep = kForward ? 1 : -1;
  for (int k = k0; k >= 0 && k < box.nz; k += kstep) {
    const int j0 = kForward ? 0 : box.ny - 1;
    for (int j = j0; j >= 0 && j < box.ny; j += kstep) {
      const int i0 = kForward ? 0 : box.nx - 1;
      for (int i = i0; i >= 0 && i < box.nx; i += kstep) {
        cell_body(i, j, k);
      }
    }
  }
}

/// Line-buffered sweep for SOA scalar (bs == 1) matrices.
template <bool kForward, class ST, class CT>
void gs_sweep_soa_lines(const StructMat<ST>& A, std::span<const CT> f,
                        std::span<CT> u, std::span<const CT> invdiag,
                        const CT* SMG_RESTRICT q2,
                        const WavefrontSchedule* wf) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int nd = st.ndiag();
  const int center = st.center();
  const std::int64_t ncells = A.ncells();
  const ST* SMG_RESTRICT vals = A.data();
  const Layout layout = A.layout();

  // The single same-line offset participating in the recurrence.
  const int recur_d = kForward ? st.find(-1, 0, 0) : st.find(+1, 0, 0);
  const int recur_dx = kForward ? -1 : +1;

  // Scaled recovery: maintain uq = q2 .* u incrementally so the vectorized
  // pre-pass reads a single vector (one load + fma per entry, same as the
  // unscaled sweep).  The buffer is owned by the calling thread; worker
  // threads of a wavefront sweep share it through the captured pointer
  // (each line only writes its own entries).
  thread_local avec<CT> uqbuf;
  const CT* SMG_RESTRICT uread = u.data();
  CT* SMG_RESTRICT uq = nullptr;
  if (q2 != nullptr) {
    const std::size_t n = u.size();
    uqbuf.resize(n);
    CT* SMG_RESTRICT uqp = uqbuf.data();
    const CT* SMG_RESTRICT up = u.data();
#pragma omp parallel for simd
    for (std::size_t q = 0; q < n; ++q) {
      uqp[q] = q2[q] * up[q];
    }
    uq = uqbuf.data();
    uread = uq;
  }

  const auto line_body = [&](int j, int k) {
    thread_local avec<CT> accbuf;
    accbuf.resize(static_cast<std::size_t>(box.nx));
    CT* SMG_RESTRICT acc = accbuf.data();

    const std::int64_t base = box.idx(0, j, k);
    const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
    for (int i = 0; i < box.nx; ++i) {
      acc[i] = CT{0};
    }
    // Vectorized pre-pass: every off-line (and the old-value same-line
    // opposite) contribution, accumulating a[i] * (q2*) u[nbr].
    for (int d = 0; d < nd; ++d) {
      if (d == center || d == recur_d) {
        continue;
      }
      const DiagRange r = diag_range(box, st.offset(d), j, k);
      if (!r.line_valid || r.ihi <= r.ilo) {
        continue;
      }
      const ST* a =
          line_diag_ptr(vals, layout, base, line, d, nd, ncells, box.nx);
      const std::int64_t xoff = base + r.shift;
      soa_diag_fma<false, false>(a + r.ilo, uread + xoff + r.ilo,
                                 static_cast<const CT*>(nullptr),
                                 acc + r.ilo, r.ihi - r.ilo);
    }
    // Scalar recurrence along the line.
    const ST* arec = recur_d >= 0
                         ? line_diag_ptr(vals, layout, base, line, recur_d,
                                         nd, ncells, box.nx)
                         : nullptr;
    const int i0 = kForward ? 0 : box.nx - 1;
    const int istep = kForward ? 1 : -1;
    for (int i = i0; i >= 0 && i < box.nx; i += istep) {
      CT s = acc[i];
      const int inbr = i + recur_dx;
      if (arec != nullptr && inbr >= 0 && inbr < box.nx) {
        s = mul_add(widen1<CT>(arec[i]), uread[base + inbr], s);
      }
      CT rhs = f[base + i];
      if (q2 != nullptr) {
        rhs = mul_add(-q2[base + i], s, rhs);
      } else {
        rhs -= s;
      }
      const CT unew = invdiag[base + i] * rhs;
      u[base + i] = unew;
      if (uq != nullptr) {
        uq[base + i] = q2[base + i] * unew;
      }
    }
  };

  run_lines<kForward>(box, wf, line_body);
}

/// Line-buffered sweep for SOA-family block (bs > 1) matrices: per (line,
/// diagonal) the half blocks are widened once (SIMD) into an L1 buffer, the
/// off-line contributions accumulate into a per-line buffer, and only the
/// one same-line offset stays in the per-cell recurrence — the block
/// analogue of gs_sweep_soa_lines.
template <bool kForward, class ST, class CT>
void gs_sweep_block_lines(const StructMat<ST>& A, std::span<const CT> f,
                          std::span<CT> u, std::span<const CT> invdiag,
                          const CT* SMG_RESTRICT q2,
                          const WavefrontSchedule* wf) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  const int nd = st.ndiag();
  const int nx = box.nx;
  const int center = st.center();
  const std::int64_t ncells = A.ncells();
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
  const ST* SMG_RESTRICT vals = A.data();
  const Layout layout = A.layout();
  const std::size_t runlen =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(block2);
  SMG_CHECK(bs <= 8, "block size > 8 unsupported");

  const int recur_d = kForward ? st.find(-1, 0, 0) : st.find(+1, 0, 0);
  const int recur_dx = kForward ? -1 : +1;

  // Scaled recovery: maintain uq = q2 .* u incrementally (updated together
  // with u in the recurrence) so the hot off-line pass reads one vector
  // instead of paying a load + multiply per matrix entry.  Shared across
  // wavefront workers exactly like the scalar path's buffer.
  thread_local avec<CT> uqbuf;
  const CT* SMG_RESTRICT uread = u.data();
  CT* SMG_RESTRICT uq = nullptr;
  if (q2 != nullptr) {
    const std::size_t n = u.size();
    uqbuf.resize(n);
    CT* SMG_RESTRICT uqp = uqbuf.data();
    const CT* SMG_RESTRICT up = u.data();
#pragma omp parallel for simd
    for (std::size_t q = 0; q < n; ++q) {
      uqp[q] = q2[q] * up[q];
    }
    uq = uqbuf.data();
    uread = uq;
  }

  const auto run_ptr = [&](std::int64_t base, std::int64_t line, int d) {
    return vals + (layout == Layout::SOA
                       ? (static_cast<std::int64_t>(d) * ncells + base) *
                             block2
                       : (line * nd + d) * static_cast<std::int64_t>(nx) *
                             block2);
  };

  const auto line_body = [&](int j, int k) {
    thread_local avec<CT> accbuf;
    thread_local avec<CT> coefbuf;
    thread_local avec<CT> recurbuf;
    accbuf.resize(static_cast<std::size_t>(nx) * bs);
    CT* SMG_RESTRICT acc = accbuf.data();
    CT s[8];
    CT upd[8];

    const std::int64_t base = box.idx(0, j, k);
    const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
    for (std::size_t q = 0; q < static_cast<std::size_t>(nx) * bs; ++q) {
      acc[q] = CT{0};
    }
    // Off-line (and same-line old-value) contributions.
    for (int d = 0; d < nd; ++d) {
      if (d == center || d == recur_d) {
        continue;
      }
      const DiagRange r = diag_range(box, st.offset(d), j, k);
      if (!r.line_valid || r.ihi <= r.ilo) {
        continue;
      }
      const CT* coef = widen_run<CT>(run_ptr(base, line, d), runlen,
                                     coefbuf);
      const std::int64_t xoff = (base + r.shift) * bs;
      for (int i = r.ilo; i < r.ihi; ++i) {
        const CT* blk = coef + static_cast<std::int64_t>(i) * block2;
        const CT* xv = uread + xoff + static_cast<std::int64_t>(i) * bs;
        CT* av = acc + static_cast<std::int64_t>(i) * bs;
        for (int br = 0; br < bs; ++br) {
          CT a2{0};
          for (int bc = 0; bc < bs; ++bc) {
            a2 = mul_add(blk[br * bs + bc], xv[bc], a2);
          }
          av[br] += a2;
        }
      }
    }
    // Per-cell recurrence with the same-line coupling block.
    const CT* rec = recur_d >= 0
                        ? widen_run<CT>(run_ptr(base, line, recur_d),
                                        runlen, recurbuf)
                        : nullptr;
    const int i0 = kForward ? 0 : nx - 1;
    const int istep = kForward ? 1 : -1;
    for (int i = i0; i >= 0 && i < nx; i += istep) {
      const std::int64_t cell = base + i;
      for (int br = 0; br < bs; ++br) {
        s[br] = acc[static_cast<std::int64_t>(i) * bs + br];
      }
      const int inbr = i + recur_dx;
      if (rec != nullptr && inbr >= 0 && inbr < nx) {
        const CT* blk = rec + static_cast<std::int64_t>(i) * block2;
        const CT* xv = uread + (base + inbr) * bs;
        for (int br = 0; br < bs; ++br) {
          CT a2{0};
          for (int bc = 0; bc < bs; ++bc) {
            a2 = mul_add(blk[br * bs + bc], xv[bc], a2);
          }
          s[br] += a2;
        }
      }
      for (int br = 0; br < bs; ++br) {
        CT rhs = f[cell * bs + br];
        if (q2 != nullptr) {
          rhs = mul_add(-q2[cell * bs + br], s[br], rhs);
        } else {
          rhs -= s[br];
        }
        s[br] = rhs;
      }
      block_apply(invdiag.data() + cell * block2, s, upd, bs);
      for (int br = 0; br < bs; ++br) {
        u[cell * bs + br] = upd[br];
        if (uq != nullptr) {
          uq[cell * bs + br] = q2[cell * bs + br] * upd[br];
        }
      }
    }
  };

  run_lines<kForward>(box, wf, line_body);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Multi-RHS (panel) sweeps: one pass over the stored matrix smooths all k
// columns of a MultiVector.  Column c performs bitwise the same operations
// in the same order as the single-RHS sweep of the same family — the
// vectorized pre-pass goes through panel_diag_fma (whose per-column contract
// matches soa_diag_fma, f16 path included), and the scalar recurrence keeps
// the single sweep's exact source shapes (it is scalar C++ in the single
// kernels too, for every storage type).  Mul-accumulate folds whose FP
// contraction the optimizer would otherwise resolve per vectorization
// context are pinned on both sides via detail::mul_add (see spmv.hpp), so
// differently-shaped surrounding loops cannot break the per-column
// identity.  Wavefront schedules parallelize the
// panel sweep through the same run_lines/run_wavefront machinery, so the
// bitwise-identity-at-any-thread-count property carries over unchanged.
// ---------------------------------------------------------------------------

namespace detail {

/// Panel mirror of gs_sweep_soa_lines (SOA-family, bs == 1).
template <bool kForward, class ST, class CT>
void panel_gs_sweep_soa_lines(const StructMat<ST>& A, const MultiVector<CT>& f,
                              MultiVector<CT>& u, std::span<const CT> invdiag,
                              const CT* SMG_RESTRICT q2,
                              const WavefrontSchedule* wf) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int nd = st.ndiag();
  const int center = st.center();
  const int kp = u.padded_cols();
  const std::int64_t ncells = A.ncells();
  const ST* SMG_RESTRICT vals = A.data();
  const Layout layout = A.layout();

  const int recur_d = kForward ? st.find(-1, 0, 0) : st.find(+1, 0, 0);
  const int recur_dx = kForward ? -1 : +1;

  // Scaled recovery: maintain the uq = q2 .* u panel incrementally, exactly
  // as the single-RHS sweep maintains its vector (same multiply, same
  // operands, per column).
  thread_local avec<CT> uqbuf;
  const CT* SMG_RESTRICT uread = u.data();
  CT* SMG_RESTRICT uq = nullptr;
  if (q2 != nullptr) {
    const std::size_t n = u.size();
    uqbuf.resize(n);
    CT* SMG_RESTRICT uqp = uqbuf.data();
    const CT* SMG_RESTRICT up = u.data();
    const std::int64_t rows = u.rows();
#pragma omp parallel for schedule(static)
    for (std::int64_t rrow = 0; rrow < rows; ++rrow) {
      const CT qv = q2[rrow];
      const CT* SMG_RESTRICT ur = up + rrow * kp;
      CT* SMG_RESTRICT qr = uqp + rrow * kp;
#pragma omp simd
      for (int c = 0; c < kp; ++c) {
        qr[c] = qv * ur[c];
      }
    }
    uq = uqbuf.data();
    uread = uq;
  }

  const auto line_body = [&](int j, int k) {
    thread_local avec<CT> accbuf;
    accbuf.resize(static_cast<std::size_t>(box.nx) * kp);
    CT* SMG_RESTRICT acc = accbuf.data();

    const std::int64_t base = box.idx(0, j, k);
    const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
    for (std::int64_t q = 0; q < static_cast<std::int64_t>(box.nx) * kp; ++q) {
      acc[q] = CT{0};
    }
    for (int d = 0; d < nd; ++d) {
      if (d == center || d == recur_d) {
        continue;
      }
      const DiagRange r = diag_range(box, st.offset(d), j, k);
      if (!r.line_valid || r.ihi <= r.ilo) {
        continue;
      }
      const ST* a =
          line_diag_ptr(vals, layout, base, line, d, nd, ncells, box.nx);
      const std::int64_t xoff = base + r.shift;
      panel_diag_fma<false, false>(
          a + r.ilo, uread + (xoff + r.ilo) * kp,
          static_cast<const CT*>(nullptr),
          acc + static_cast<std::int64_t>(r.ilo) * kp, r.ihi - r.ilo, kp);
    }
    const ST* arec = recur_d >= 0
                         ? line_diag_ptr(vals, layout, base, line, recur_d,
                                         nd, ncells, box.nx)
                         : nullptr;
    // Widen the recurrence run once per line (exact conversion, same value
    // as the per-row widen1): the conversion is per-row work that cannot
    // amortize over the kp columns of the recurrence body.
    thread_local avec<CT> recbuf;
    const CT* SMG_RESTRICT arecw =
        arec != nullptr
            ? widen_run<CT>(arec, static_cast<std::size_t>(box.nx), recbuf)
            : nullptr;
    const CT* SMG_RESTRICT fp = f.data();
    CT* SMG_RESTRICT up = u.data();
    const int i0 = kForward ? 0 : box.nx - 1;
    const int istep = kForward ? 1 : -1;
    for (int i = i0; i >= 0 && i < box.nx; i += istep) {
      const int inbr = i + recur_dx;
      const bool hasrec = arec != nullptr && inbr >= 0 && inbr < box.nx;
      const CT arecv = hasrec ? arecw[i] : CT{0};
      const CT* SMG_RESTRICT urd =
          hasrec ? uread + (base + inbr) * kp : nullptr;
      const CT* SMG_RESTRICT accr = acc + static_cast<std::int64_t>(i) * kp;
      const CT* SMG_RESTRICT fr = fp + (base + i) * kp;
      CT* SMG_RESTRICT ur = up + (base + i) * kp;
      CT* SMG_RESTRICT uqr = uq != nullptr ? uq + (base + i) * kp : nullptr;
      const CT qcell = q2 != nullptr ? q2[base + i] : CT{0};
      const CT idv = invdiag[static_cast<std::size_t>(base + i)];
#pragma omp simd
      for (int c = 0; c < kp; ++c) {
        CT s = accr[c];
        if (hasrec) {
          s = mul_add(arecv, urd[c], s);
        }
        CT rhs = fr[c];
        if (q2 != nullptr) {
          rhs = mul_add(-qcell, s, rhs);
        } else {
          rhs -= s;
        }
        const CT unew = idv * rhs;
        ur[c] = unew;
        if (uqr != nullptr) {
          uqr[c] = qcell * unew;
        }
      }
    }
  };

  run_lines<kForward>(box, wf, line_body);
}

/// Panel mirror of gs_sweep_block_lines (SOA-family, bs > 1).
template <bool kForward, class ST, class CT>
void panel_gs_sweep_block_lines(const StructMat<ST>& A,
                                const MultiVector<CT>& f, MultiVector<CT>& u,
                                std::span<const CT> invdiag,
                                const CT* SMG_RESTRICT q2,
                                const WavefrontSchedule* wf) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  const int nd = st.ndiag();
  const int nx = box.nx;
  const int center = st.center();
  const int kp = u.padded_cols();
  const std::int64_t ncells = A.ncells();
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
  const ST* SMG_RESTRICT vals = A.data();
  const Layout layout = A.layout();
  const std::size_t runlen =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(block2);
  SMG_CHECK(bs <= 8, "block size > 8 unsupported");

  const int recur_d = kForward ? st.find(-1, 0, 0) : st.find(+1, 0, 0);
  const int recur_dx = kForward ? -1 : +1;

  thread_local avec<CT> uqbuf;
  const CT* SMG_RESTRICT uread = u.data();
  CT* SMG_RESTRICT uq = nullptr;
  if (q2 != nullptr) {
    const std::size_t n = u.size();
    uqbuf.resize(n);
    CT* SMG_RESTRICT uqp = uqbuf.data();
    const CT* SMG_RESTRICT up = u.data();
    const std::int64_t rows = u.rows();
#pragma omp parallel for schedule(static)
    for (std::int64_t rrow = 0; rrow < rows; ++rrow) {
      const CT qv = q2[rrow];
      const CT* SMG_RESTRICT ur = up + rrow * kp;
      CT* SMG_RESTRICT qr = uqp + rrow * kp;
#pragma omp simd
      for (int c = 0; c < kp; ++c) {
        qr[c] = qv * ur[c];
      }
    }
    uq = uqbuf.data();
    uread = uq;
  }

  const auto run_ptr = [&](std::int64_t base, std::int64_t line, int d) {
    return vals + (layout == Layout::SOA
                       ? (static_cast<std::int64_t>(d) * ncells + base) *
                             block2
                       : (line * nd + d) * static_cast<std::int64_t>(nx) *
                             block2);
  };

  const auto line_body = [&](int j, int k) {
    thread_local avec<CT> accbuf;
    thread_local avec<CT> coefbuf;
    thread_local avec<CT> recurbuf;
    accbuf.resize(static_cast<std::size_t>(nx) * bs * kp);
    CT* SMG_RESTRICT acc = accbuf.data();
    CT s[8];
    CT upd[8];

    const std::int64_t base = box.idx(0, j, k);
    const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
    for (std::int64_t q = 0;
         q < static_cast<std::int64_t>(nx) * bs * kp; ++q) {
      acc[q] = CT{0};
    }
    for (int d = 0; d < nd; ++d) {
      if (d == center || d == recur_d) {
        continue;
      }
      const DiagRange r = diag_range(box, st.offset(d), j, k);
      if (!r.line_valid || r.ihi <= r.ilo) {
        continue;
      }
      const CT* coef = widen_run<CT>(run_ptr(base, line, d), runlen, coefbuf);
      const std::int64_t xoff = (base + r.shift) * bs;
      for (int i = r.ilo; i < r.ihi; ++i) {
        const CT* blk = coef + static_cast<std::int64_t>(i) * block2;
        const std::int64_t xrow = xoff + static_cast<std::int64_t>(i) * bs;
        for (int br = 0; br < bs; ++br) {
          CT* SMG_RESTRICT av =
              acc + (static_cast<std::int64_t>(i) * bs + br) * kp;
#pragma omp simd
          for (int c = 0; c < kp; ++c) {
            CT a2{0};
            for (int bc = 0; bc < bs; ++bc) {
              a2 = mul_add(blk[br * bs + bc], uread[(xrow + bc) * kp + c],
                           a2);
            }
            av[c] += a2;
          }
        }
      }
    }
    const CT* rec = recur_d >= 0 ? widen_run<CT>(run_ptr(base, line, recur_d),
                                                 runlen, recurbuf)
                                 : nullptr;
    const CT* SMG_RESTRICT fp = f.data();
    CT* SMG_RESTRICT up = u.data();
    const int i0 = kForward ? 0 : nx - 1;
    const int istep = kForward ? 1 : -1;
    for (int i = i0; i >= 0 && i < nx; i += istep) {
      const std::int64_t cell = base + i;
      const int inbr = i + recur_dx;
      const bool hasrec = rec != nullptr && inbr >= 0 && inbr < nx;
      const CT* blkrec =
          hasrec ? rec + static_cast<std::int64_t>(i) * block2 : nullptr;
      for (int c = 0; c < kp; ++c) {
        for (int br = 0; br < bs; ++br) {
          s[br] = acc[(static_cast<std::int64_t>(i) * bs + br) * kp + c];
        }
        if (hasrec) {
          for (int br = 0; br < bs; ++br) {
            CT a2{0};
            for (int bc = 0; bc < bs; ++bc) {
              a2 = mul_add(blkrec[br * bs + bc],
                           uread[((base + inbr) * bs + bc) * kp + c], a2);
            }
            s[br] += a2;
          }
        }
        for (int br = 0; br < bs; ++br) {
          CT rhs = fp[(cell * bs + br) * kp + c];
          if (q2 != nullptr) {
            rhs = mul_add(-q2[cell * bs + br], s[br], rhs);
          } else {
            rhs -= s[br];
          }
          s[br] = rhs;
        }
        block_apply(invdiag.data() + cell * block2, s, upd, bs);
        for (int br = 0; br < bs; ++br) {
          up[(cell * bs + br) * kp + c] = upd[br];
          if (uq != nullptr) {
            uq[(cell * bs + br) * kp + c] = q2[cell * bs + br] * upd[br];
          }
        }
      }
    }
  };

  run_lines<kForward>(box, wf, line_body);
}

/// Panel mirror of gs_sweep_scalar (AOS; per-column scalar cell bodies,
/// parallelized at cell granularity by a Cell wavefront schedule).
template <bool kForward, class ST, class CT>
void panel_gs_sweep_scalar(const StructMat<ST>& A, const MultiVector<CT>& f,
                           MultiVector<CT>& u, std::span<const CT> invdiag,
                           const CT* SMG_RESTRICT q2,
                           const WavefrontSchedule* wf) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  const int nd = st.ndiag();
  const int center = st.center();
  const int kp = u.padded_cols();
  SMG_CHECK(center >= 0, "GS sweep needs a diagonal entry");
  SMG_CHECK(bs <= 8, "block size > 8 unsupported");
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
  const CT* SMG_RESTRICT fp = f.data();
  CT* SMG_RESTRICT up = u.data();

  const auto cell_body = [&](int i, int j, int k) {
    CT acc[8];
    CT upd[8];
    const std::int64_t cell = box.idx(i, j, k);
    for (int c = 0; c < kp; ++c) {
      for (int br = 0; br < bs; ++br) {
        acc[br] = fp[(cell * bs + br) * kp + c];
      }
      for (int d = 0; d < nd; ++d) {
        if (d == center) {
          continue;
        }
        const Offset& o = st.offset(d);
        if (!box.contains(i + o.dx, j + o.dy, k + o.dz)) {
          continue;
        }
        const std::int64_t nbr = box.idx(i + o.dx, j + o.dy, k + o.dz);
        const ST* blk = A.data() + A.block_index(cell, d);
        for (int br = 0; br < bs; ++br) {
          CT s{0};
          for (int bc = 0; bc < bs; ++bc) {
            CT xv = up[(nbr * bs + bc) * kp + c];
            if (q2 != nullptr) {
              xv *= q2[nbr * bs + bc];
            }
            s = mul_add(widen1<CT>(blk[br * bs + bc]), xv, s);
          }
          if (q2 != nullptr) {
            s *= q2[cell * bs + br];
          }
          acc[br] -= s;
        }
      }
      block_apply(invdiag.data() + cell * block2, acc, upd, bs);
      for (int br = 0; br < bs; ++br) {
        up[(cell * bs + br) * kp + c] = upd[br];
      }
    }
  };

  if (wf_usable(wf, WfGranularity::Cell)) {
    const std::int64_t nxy = static_cast<std::int64_t>(box.nx) * box.ny;
    run_wavefront<kForward>(*wf, [&](std::int32_t cell) {
      const int k = static_cast<int>(cell / nxy);
      const int rem = static_cast<int>(cell % nxy);
      cell_body(rem % box.nx, rem / box.nx, k);
    });
    return;
  }

  const int k0 = kForward ? 0 : box.nz - 1;
  const int kstep = kForward ? 1 : -1;
  for (int k = k0; k >= 0 && k < box.nz; k += kstep) {
    const int j0 = kForward ? 0 : box.ny - 1;
    for (int j = j0; j >= 0 && j < box.ny; j += kstep) {
      const int i0 = kForward ? 0 : box.nx - 1;
      for (int i = i0; i >= 0 && i < box.nx; i += kstep) {
        cell_body(i, j, k);
      }
    }
  }
}

}  // namespace detail

/// One forward Gauss-Seidel panel sweep over all columns of the MultiVector;
/// column c is bitwise identical to gs_forward on that column.
template <class ST, class CT>
void gs_forward_many(const StructMat<ST>& A, const MultiVector<CT>& f,
                     MultiVector<CT>& u, std::span<const CT> invdiag,
                     const CT* q2 = nullptr,
                     const WavefrontSchedule* wf = nullptr) {
  const obs::KernelSpan span(obs::Kind::SymGS);
  if (A.layout() != Layout::AOS) {
    if (A.block_size() == 1) {
      detail::panel_gs_sweep_soa_lines<true>(A, f, u, invdiag, q2, wf);
    } else {
      detail::panel_gs_sweep_block_lines<true>(A, f, u, invdiag, q2, wf);
    }
  } else {
    detail::panel_gs_sweep_scalar<true>(A, f, u, invdiag, q2, wf);
  }
}

/// One backward Gauss-Seidel panel sweep; column-wise mirror of gs_backward.
template <class ST, class CT>
void gs_backward_many(const StructMat<ST>& A, const MultiVector<CT>& f,
                      MultiVector<CT>& u, std::span<const CT> invdiag,
                      const CT* q2 = nullptr,
                      const WavefrontSchedule* wf = nullptr) {
  const obs::KernelSpan span(obs::Kind::SymGS);
  if (A.layout() != Layout::AOS) {
    if (A.block_size() == 1) {
      detail::panel_gs_sweep_soa_lines<false>(A, f, u, invdiag, q2, wf);
    } else {
      detail::panel_gs_sweep_block_lines<false>(A, f, u, invdiag, q2, wf);
    }
  } else {
    detail::panel_gs_sweep_scalar<false>(A, f, u, invdiag, q2, wf);
  }
}

/// One forward Gauss-Seidel sweep: u <- (D + L)^{-1} (f - U u).
/// For lower-triangular-pattern matrices this *is* SpTRSV.
/// A usable wavefront schedule (line granularity for SOA/SOAL, cell for AOS)
/// runs the sweep level-parallel with bitwise-identical results; otherwise
/// the sweep is sequential.
template <class ST, class CT>
void gs_forward(const StructMat<ST>& A, std::span<const CT> f, std::span<CT> u,
                std::span<const CT> invdiag, const CT* q2 = nullptr,
                const WavefrontSchedule* wf = nullptr) {
  const obs::KernelSpan span(obs::Kind::SymGS);
  if (A.layout() != Layout::AOS) {
    if (A.block_size() == 1) {
      detail::gs_sweep_soa_lines<true>(A, f, u, invdiag, q2, wf);
    } else {
      detail::gs_sweep_block_lines<true>(A, f, u, invdiag, q2, wf);
    }
  } else {
    detail::gs_sweep_scalar<true>(A, f, u, invdiag, q2, wf);
  }
}

/// One backward Gauss-Seidel sweep: u <- (D + U)^{-1} (f - L u).
template <class ST, class CT>
void gs_backward(const StructMat<ST>& A, std::span<const CT> f,
                 std::span<CT> u, std::span<const CT> invdiag,
                 const CT* q2 = nullptr,
                 const WavefrontSchedule* wf = nullptr) {
  const obs::KernelSpan span(obs::Kind::SymGS);
  if (A.layout() != Layout::AOS) {
    if (A.block_size() == 1) {
      detail::gs_sweep_soa_lines<false>(A, f, u, invdiag, q2, wf);
    } else {
      detail::gs_sweep_block_lines<false>(A, f, u, invdiag, q2, wf);
    }
  } else {
    detail::gs_sweep_scalar<false>(A, f, u, invdiag, q2, wf);
  }
}

}  // namespace smg
