// Shared loop-bound helpers for structured-stencil kernels.
//
// For a fixed line (j,k) and stencil offset o, the set of cells whose
// neighbor (i+dx, j+dy, k+dz) is in the box is either empty (line invalid) or
// the contiguous i-range [ilo, ihi).  Precomputing these per line removes all
// per-entry bounds branches from the interior of every kernel.
#pragma once

#include <algorithm>
#include <cstdint>

#include "grid/box.hpp"
#include "grid/stencil.hpp"

namespace smg {

struct DiagRange {
  int ilo = 0;
  int ihi = 0;             ///< empty if ihi <= ilo or !line_valid
  bool line_valid = false; ///< neighbor line (j+dy, k+dz) is inside the box
  std::int64_t shift = 0;  ///< linear index shift to the neighbor cell
};

inline DiagRange diag_range(const Box& b, const Offset& o, int j,
                            int k) noexcept {
  DiagRange r;
  r.line_valid = (j + o.dy >= 0 && j + o.dy < b.ny && k + o.dz >= 0 &&
                  k + o.dz < b.nz);
  r.ilo = std::max(0, -static_cast<int>(o.dx));
  r.ihi = std::min(b.nx, b.nx - static_cast<int>(o.dx));
  r.shift = o.dx + static_cast<std::int64_t>(b.nx) *
                       (o.dy + static_cast<std::int64_t>(b.ny) * o.dz);
  return r;
}

}  // namespace smg
