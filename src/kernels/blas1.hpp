// Vector (BLAS-1) kernels in iterative/compute precision.
//
// Guideline §3.4: vectors never drop below FP32, so these kernels are plain
// same-precision loops; OpenMP-simd annotated and trivially vectorizable.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "obs/telemetry.hpp"
#include "util/common.hpp"
#include "util/multivector.hpp"

namespace smg {

template <class T>
void axpy(T alpha, std::span<const T> x, std::span<T> y) noexcept {
  const obs::KernelSpan span(obs::Kind::Blas1);
  const std::size_t n = y.size();
#pragma omp parallel for simd
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

/// y = x + alpha*y (the "xpay" update of CG's direction vector).
template <class T>
void xpay(std::span<const T> x, T alpha, std::span<T> y) noexcept {
  const obs::KernelSpan span(obs::Kind::Blas1);
  const std::size_t n = y.size();
#pragma omp parallel for simd
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = x[i] + alpha * y[i];
  }
}

template <class T>
void scal(T alpha, std::span<T> x) noexcept {
  const obs::KernelSpan span(obs::Kind::Blas1);
  const std::size_t n = x.size();
#pragma omp parallel for simd
  for (std::size_t i = 0; i < n; ++i) {
    x[i] *= alpha;
  }
}

template <class T>
void set_zero(std::span<T> x) noexcept {
  const std::size_t n = x.size();
#pragma omp parallel for simd
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = T{0};
  }
}

template <class Dst, class Src>
void copy_convert(std::span<const Src> x, std::span<Dst> y) noexcept {
  const std::size_t n = y.size();
#pragma omp parallel for simd
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<Dst>(x[i]);
  }
}

/// y = x ./ d — the Q^{-1/2} entry/exit wrap of ScaleThenSetup
/// (A^{-1} = Q^{-1/2} Â^{-1} Q^{-1/2}).
template <class T>
void ewise_div(std::span<const T> x, std::span<const T> d,
               std::span<T> y) noexcept {
  const std::size_t n = y.size();
#pragma omp parallel for simd
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = x[i] / d[i];
  }
}

/// Dot product accumulated in double regardless of T (iterative-precision
/// safety: FP32 Krylov still needs robust inner products).
template <class T>
double dot(std::span<const T> x, std::span<const T> y) noexcept {
  const obs::KernelSpan span(obs::Kind::Blas1);
  const std::size_t n = x.size();
  double acc = 0.0;
#pragma omp parallel for simd reduction(+ : acc)
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

/// Deterministic dot product: fixed 4096-element blocks are each summed
/// with a simd reduction (a fixed order for a given binary), blocks are
/// combined by a sequential pairwise tree.  The result is independent of
/// the OpenMP thread count and identical run to run — unlike the plain
/// `dot`, whose `reduction(+)` combines per-thread partials in
/// scheduler-dependent order.  Costs one extra pass of block partials
/// (n/4096 doubles); enable via SolveOptions::deterministic_reductions.
template <class T>
double dot_deterministic(std::span<const T> x, std::span<const T> y) {
  const obs::KernelSpan span(obs::Kind::Blas1);
  constexpr std::size_t kBlock = 4096;
  const std::size_t n = x.size();
  const std::size_t nblocks = (n + kBlock - 1) / kBlock;
  if (nblocks <= 1) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    }
    return acc;
  }
  // Shared across the parallel region below (must NOT be thread_local: the
  // worker threads all write into this one vector, indexed by block).
  std::vector<double> partial(nblocks, 0.0);
#pragma omp parallel for
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(lo + kBlock, n);
    double acc = 0.0;
#pragma omp simd reduction(+ : acc)
    for (std::size_t i = lo; i < hi; ++i) {
      acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    }
    partial[b] = acc;
  }
  // Sequential pairwise tree over the per-block sums: fixed combination
  // order regardless of which thread produced which partial.
  for (std::size_t width = nblocks; width > 1;) {
    const std::size_t half = (width + 1) / 2;
    for (std::size_t i = 0; i + half < width; ++i) {
      partial[i] += partial[i + half];
    }
    width = half;
  }
  return partial[0];
}

template <class T>
double nrm2(std::span<const T> x) noexcept {
  return std::sqrt(dot(x, x));
}

template <class T>
double nrm2_deterministic(std::span<const T> x) {
  return std::sqrt(dot_deterministic(x, x));
}

// ---------------------------------------------------------------------------
// Multi-RHS (panel) BLAS-1.  The masked updates touch ONLY the selected
// columns — frozen (converged / broken) columns of the batched solver must
// stay bitwise untouched, and even a nominal y += 0 * x could flip a -0 or
// manufacture a NaN from a non-finite frozen column.  Per active column the
// update keeps the single-RHS kernel's source shape.
// ---------------------------------------------------------------------------

/// y[:, c] += alpha[c] * x[:, c] for every column with active[c] != 0.
template <class T>
void axpy_cols(std::span<const T> alpha, const MultiVector<T>& x,
               MultiVector<T>& y, const unsigned char* active) noexcept {
  const obs::KernelSpan span(obs::Kind::Blas1);
  const std::int64_t rows = y.rows();
  const int k = y.cols();
  const int kp = y.padded_cols();
  const T* SMG_RESTRICT xp = x.data();
  T* SMG_RESTRICT yp = y.data();
  const T* SMG_RESTRICT al = alpha.data();
  // Row-major single pass: a per-column pass over the interleaved panel
  // would fetch one full cache line per touched element and so re-stream
  // both panels once per column.
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < rows; ++i) {
    const T* SMG_RESTRICT xr = xp + i * kp;
    T* SMG_RESTRICT yr = yp + i * kp;
    for (int c = 0; c < k; ++c) {
      if (active != nullptr && active[c] == 0) {
        continue;
      }
      yr[c] += al[c] * xr[c];
    }
  }
}

/// y[:, c] = x[:, c] + alpha[c] * y[:, c] for every active column.
template <class T>
void xpay_cols(const MultiVector<T>& x, std::span<const T> alpha,
               MultiVector<T>& y, const unsigned char* active) noexcept {
  const obs::KernelSpan span(obs::Kind::Blas1);
  const std::int64_t rows = y.rows();
  const int k = y.cols();
  const int kp = y.padded_cols();
  const T* SMG_RESTRICT xp = x.data();
  T* SMG_RESTRICT yp = y.data();
  const T* SMG_RESTRICT al = alpha.data();
  // Row-major single pass, as in axpy_cols.
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < rows; ++i) {
    const T* SMG_RESTRICT xr = xp + i * kp;
    T* SMG_RESTRICT yr = yp + i * kp;
    for (int c = 0; c < k; ++c) {
      if (active != nullptr && active[c] == 0) {
        continue;
      }
      yr[c] = xr[c] + al[c] * yr[c];
    }
  }
}

/// Fused one-pass panel dot products: out[c] = x[:, c] . y[:, c] for all
/// real columns.  Blocked like dot_deterministic (4096-row blocks summed
/// sequentially, combined by a sequential pairwise tree), so the result is
/// thread-count independent and deterministic — but NOT bitwise equal to
/// dot()/dot_deterministic() on the extracted column (different block
/// geometry).  The batched solver uses this only behind
/// SolveManyOptions::fast_reductions.
template <class T>
void dot_many(const MultiVector<T>& x, const MultiVector<T>& y,
              std::span<double> out) {
  const obs::KernelSpan span(obs::Kind::Blas1);
  constexpr std::int64_t kBlock = 4096;
  const std::int64_t rows = x.rows();
  const int k = x.cols();
  const int kp = x.padded_cols();
  const T* SMG_RESTRICT xp = x.data();
  const T* SMG_RESTRICT yp = y.data();
  const std::int64_t nblocks = (rows + kBlock - 1) / kBlock;
  if (nblocks <= 1) {
    for (int c = 0; c < k; ++c) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < rows; ++i) {
        acc += static_cast<double>(xp[i * kp + c]) *
               static_cast<double>(yp[i * kp + c]);
      }
      out[static_cast<std::size_t>(c)] = acc;
    }
    return;
  }
  std::vector<double> partial(static_cast<std::size_t>(nblocks) * k, 0.0);
#pragma omp parallel for schedule(static)
  for (std::int64_t b = 0; b < nblocks; ++b) {
    const std::int64_t lo = b * kBlock;
    const std::int64_t hi = std::min(lo + kBlock, rows);
    double* SMG_RESTRICT pb = partial.data() + b * k;
    for (std::int64_t i = lo; i < hi; ++i) {
      const T* SMG_RESTRICT xr = xp + i * kp;
      const T* SMG_RESTRICT yr = yp + i * kp;
#pragma omp simd
      for (int c = 0; c < k; ++c) {
        pb[c] += static_cast<double>(xr[c]) * static_cast<double>(yr[c]);
      }
    }
  }
  for (std::int64_t width = nblocks; width > 1;) {
    const std::int64_t half = (width + 1) / 2;
    for (std::int64_t i = 0; i + half < width; ++i) {
      double* SMG_RESTRICT dst = partial.data() + i * k;
      const double* SMG_RESTRICT src = partial.data() + (i + half) * k;
      for (int c = 0; c < k; ++c) {
        dst[c] += src[c];
      }
    }
    width = half;
  }
  for (int c = 0; c < k; ++c) {
    out[static_cast<std::size_t>(c)] = partial[static_cast<std::size_t>(c)];
  }
}

/// out[c] = ||x[:, c]||_2 via dot_many; same determinism caveat.
template <class T>
void nrm2_many(const MultiVector<T>& x, std::span<double> out) {
  dot_many(x, x, out);
  for (auto& v : out) {
    v = std::sqrt(v);
  }
}

template <class T>
double nrm_inf(std::span<const T> x) noexcept {
  const std::size_t n = x.size();
  double m = 0.0;
#pragma omp parallel for simd reduction(max : m)
  for (std::size_t i = 0; i < n; ++i) {
    m = std::max(m, std::abs(static_cast<double>(x[i])));
  }
  return m;
}

}  // namespace smg
