// Vector (BLAS-1) kernels in iterative/compute precision.
//
// Guideline §3.4: vectors never drop below FP32, so these kernels are plain
// same-precision loops; OpenMP-simd annotated and trivially vectorizable.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "obs/telemetry.hpp"
#include "util/common.hpp"

namespace smg {

template <class T>
void axpy(T alpha, std::span<const T> x, std::span<T> y) noexcept {
  const obs::KernelSpan span(obs::Kind::Blas1);
  const std::size_t n = y.size();
#pragma omp parallel for simd
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

/// y = x + alpha*y (the "xpay" update of CG's direction vector).
template <class T>
void xpay(std::span<const T> x, T alpha, std::span<T> y) noexcept {
  const obs::KernelSpan span(obs::Kind::Blas1);
  const std::size_t n = y.size();
#pragma omp parallel for simd
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = x[i] + alpha * y[i];
  }
}

template <class T>
void scal(T alpha, std::span<T> x) noexcept {
  const obs::KernelSpan span(obs::Kind::Blas1);
  const std::size_t n = x.size();
#pragma omp parallel for simd
  for (std::size_t i = 0; i < n; ++i) {
    x[i] *= alpha;
  }
}

template <class T>
void set_zero(std::span<T> x) noexcept {
  const std::size_t n = x.size();
#pragma omp parallel for simd
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = T{0};
  }
}

template <class Dst, class Src>
void copy_convert(std::span<const Src> x, std::span<Dst> y) noexcept {
  const std::size_t n = y.size();
#pragma omp parallel for simd
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<Dst>(x[i]);
  }
}

/// y = x ./ d — the Q^{-1/2} entry/exit wrap of ScaleThenSetup
/// (A^{-1} = Q^{-1/2} Â^{-1} Q^{-1/2}).
template <class T>
void ewise_div(std::span<const T> x, std::span<const T> d,
               std::span<T> y) noexcept {
  const std::size_t n = y.size();
#pragma omp parallel for simd
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = x[i] / d[i];
  }
}

/// Dot product accumulated in double regardless of T (iterative-precision
/// safety: FP32 Krylov still needs robust inner products).
template <class T>
double dot(std::span<const T> x, std::span<const T> y) noexcept {
  const obs::KernelSpan span(obs::Kind::Blas1);
  const std::size_t n = x.size();
  double acc = 0.0;
#pragma omp parallel for simd reduction(+ : acc)
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

/// Deterministic dot product: fixed 4096-element blocks are each summed
/// with a simd reduction (a fixed order for a given binary), blocks are
/// combined by a sequential pairwise tree.  The result is independent of
/// the OpenMP thread count and identical run to run — unlike the plain
/// `dot`, whose `reduction(+)` combines per-thread partials in
/// scheduler-dependent order.  Costs one extra pass of block partials
/// (n/4096 doubles); enable via SolveOptions::deterministic_reductions.
template <class T>
double dot_deterministic(std::span<const T> x, std::span<const T> y) {
  const obs::KernelSpan span(obs::Kind::Blas1);
  constexpr std::size_t kBlock = 4096;
  const std::size_t n = x.size();
  const std::size_t nblocks = (n + kBlock - 1) / kBlock;
  if (nblocks <= 1) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    }
    return acc;
  }
  // Shared across the parallel region below (must NOT be thread_local: the
  // worker threads all write into this one vector, indexed by block).
  std::vector<double> partial(nblocks, 0.0);
#pragma omp parallel for
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(lo + kBlock, n);
    double acc = 0.0;
#pragma omp simd reduction(+ : acc)
    for (std::size_t i = lo; i < hi; ++i) {
      acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    }
    partial[b] = acc;
  }
  // Sequential pairwise tree over the per-block sums: fixed combination
  // order regardless of which thread produced which partial.
  for (std::size_t width = nblocks; width > 1;) {
    const std::size_t half = (width + 1) / 2;
    for (std::size_t i = 0; i + half < width; ++i) {
      partial[i] += partial[i + half];
    }
    width = half;
  }
  return partial[0];
}

template <class T>
double nrm2(std::span<const T> x) noexcept {
  return std::sqrt(dot(x, x));
}

template <class T>
double nrm2_deterministic(std::span<const T> x) {
  return std::sqrt(dot_deterministic(x, x));
}

template <class T>
double nrm_inf(std::span<const T> x) noexcept {
  const std::size_t n = x.size();
  double m = 0.0;
#pragma omp parallel for simd reduction(max : m)
  for (std::size_t i = 0; i < n; ++i) {
    m = std::max(m, std::abs(static_cast<double>(x[i])));
  }
  return m;
}

}  // namespace smg
