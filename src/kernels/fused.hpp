// Fused V-cycle downstroke kernels: residual→restrict without the residual
// vector, and the residual-fused Jacobi sweep.
//
// The unfused downstroke writes the full fine residual r = f - A u to memory
// only for the restriction to immediately re-read it: one full-vector store
// plus one full-vector load per level per cycle, in a kernel family that is
// memory-bandwidth-bound (PAPER.md §5, Fig. 7 — matrix+vector traffic, not
// FLOPs, limits every mixed-precision kernel).  residual_restrict() removes
// both passes: each fine line's residual is produced into a cache-resident
// plane buffer with *exactly* the same arithmetic — and therefore bitwise the
// same values — as the residual() dispatch in kernels/spmv.hpp, then gathered
// coarse-point-centrically into the coarse rhs using the same child order as
// restrict_to_coarse() (core/transfer.hpp).  Fused and unfused downstrokes
// are bitwise interchangeable, so MGConfig::fused_transfers is purely a
// performance switch.
//
// Parallelization is race-free by construction: threads own disjoint,
// contiguous chunks of *coarse* z-planes, and each coarse dof is written by
// exactly its owner.  Chunks sharing an odd fine plane recompute that one
// plane's residual (≤ 1 fine plane per thread boundary); a scatter-form
// fusion would instead contend on coarse accumulators.
#pragma once

#include <span>
#include <vector>

#include "core/transfer.hpp"
#include "kernels/spmv.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace smg {

namespace detail {

/// Per-matrix state reused across residual_lines calls.  The generic case
/// carries nothing; the AVX2 (half, float) scalar case hoists the
/// F16LineProto descriptor out of the line loop, exactly as
/// apply_soa_f16_blocked does.
template <class ST, class CT>
struct ResidualLineCtx {
  explicit ResidualLineCtx(const StructMat<ST>&) {}
};

#if defined(SMG_SIMD_AVX2)
template <>
struct ResidualLineCtx<half, float> {
  F16LineProto proto;
  explicit ResidualLineCtx(const StructMat<half>& A) : proto(A) {}
};
#endif

/// r(lines) = f - A u for lines j in [jlo, jhi) of plane k, written
/// contiguously to out[(j - jlo) * nx * bs ...).  For every (layout, storage,
/// block size, q2) combination each line performs the same operations in the
/// same order as residual() in spmv.hpp restricted to that line, so the
/// values are bitwise identical to the full-vector kernel's.  The layout /
/// block-size dispatch and the matrix-accessor loads run once per call, not
/// once per line — per-line dispatch costs ~10% on a 27-point residual.
template <class ST, class CT>
void residual_lines(const ResidualLineCtx<ST, CT>& ctx, const StructMat<ST>& A,
                    const CT* SMG_RESTRICT f, const CT* SMG_RESTRICT u,
                    const CT* SMG_RESTRICT q2, int k, int jlo, int jhi,
                    CT* SMG_RESTRICT out) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  const int nd = st.ndiag();
  const int nx = box.nx;
  const ST* SMG_RESTRICT vals = A.data();
  const std::int64_t lstride = static_cast<std::int64_t>(nx) * bs;

  if (A.layout() == Layout::AOS) {
    // Mirror of apply_aos' line body: per-cell accumulation over the line's
    // valid diagonals with q2 folded in.  Without q2 the f - Ax combination
    // happens in the cell body exactly as apply_aos<true>; with q2 the
    // scaled product is stored first and subtracted in a separate pass,
    // matching residual()'s spmv-then-subtract reference — the intermediate
    // store is a rounding barrier, so folding the subtraction into the cell
    // body would let the compiler contract f - acc*q2 into one FMA and
    // break bitwise equality.
    const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
    SMG_CHECK(nd <= 32, "stencil wider than 3x3x3 is unsupported");
    for (int j = jlo; j < jhi; ++j) {
      CT* SMG_RESTRICT rl = out + (j - jlo) * lstride;
      const std::int64_t base = box.idx(0, j, k);
      struct Valid {
        int d;
        int ilo, ihi;
        std::int64_t shift;
      };
      Valid vd[32];
      int nvalid = 0;
      int lo = 0;
      int hi = nx;
      for (int d = 0; d < nd; ++d) {
        const DiagRange r = diag_range(box, st.offset(d), j, k);
        if (!r.line_valid || r.ihi <= r.ilo) {
          continue;
        }
        vd[nvalid++] = {d, r.ilo, r.ihi, r.shift};
        lo = std::max(lo, r.ilo);
        hi = std::min(hi, r.ihi);
      }
      hi = std::max(hi, lo);
      const auto cell_body = [&](int i, bool checked) {
        const std::int64_t cell = base + i;
        const ST* cell_vals = vals + cell * nd * block2;
        for (int br = 0; br < bs; ++br) {
          CT acc{0};
          for (int v = 0; v < nvalid; ++v) {
            if (checked && (i < vd[v].ilo || i >= vd[v].ihi)) {
              continue;
            }
            const std::int64_t nbr = cell + vd[v].shift;
            const ST* blk = cell_vals + vd[v].d * block2;
            for (int bc = 0; bc < bs; ++bc) {
              CT xv = u[nbr * bs + bc];
              if (q2 != nullptr) {
                xv *= q2[nbr * bs + bc];
              }
              acc = mul_add(widen1<CT>(blk[br * bs + bc]), xv, acc);
            }
          }
          if (q2 != nullptr) {
            acc *= q2[cell * bs + br];
            rl[static_cast<std::int64_t>(i) * bs + br] = acc;
          } else {
            rl[static_cast<std::int64_t>(i) * bs + br] =
                f[cell * bs + br] - acc;
          }
        }
      };
      for (int i = 0; i < lo; ++i) {
        cell_body(i, true);
      }
      for (int i = lo; i < hi; ++i) {
        cell_body(i, false);
      }
      for (int i = hi; i < nx; ++i) {
        cell_body(i, true);
      }
      if (q2 != nullptr) {
        const CT* SMG_RESTRICT fl = f + base * bs;
        for (std::int64_t q = 0; q < lstride; ++q) {
          rl[q] = fl[q] - rl[q];
        }
      }
    }
    return;
  }

  const std::int64_t ncells = A.ncells();
  const Layout layout = A.layout();

  if (bs > 1) {
    // Mirror of apply_soa_block_lines: per (line, diagonal) the block
    // coefficients are widened once, dense block math accumulates the raw
    // matrix-vector sum, and b/q2 apply in a post pass.  The q2 .* u operand
    // is formed element-wise here instead of via the kernel's global
    // pre-pass — the same single multiply of the same operands.
    const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
    const std::size_t runlen =
        static_cast<std::size_t>(nx) * static_cast<std::size_t>(block2);
    constexpr int kMaxBs = 8;
    SMG_CHECK(bs <= kMaxBs, "block size > 8 is unsupported");
    thread_local avec<CT> coefbuf;
    for (int j = jlo; j < jhi; ++j) {
      CT* SMG_RESTRICT rl = out + (j - jlo) * lstride;
      const std::int64_t base = box.idx(0, j, k);
      const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
      for (std::int64_t q = 0; q < lstride; ++q) {
        rl[q] = CT{0};
      }
      for (int d = 0; d < nd; ++d) {
        const DiagRange r = diag_range(box, st.offset(d), j, k);
        if (!r.line_valid || r.ihi <= r.ilo) {
          continue;
        }
        const ST* araw =
            vals +
            (layout == Layout::SOA
                 ? (static_cast<std::int64_t>(d) * ncells + base) * block2
                 : (line * nd + d) * static_cast<std::int64_t>(nx) * block2);
        const CT* SMG_RESTRICT coef = widen_run<CT>(araw, runlen, coefbuf);
        const std::int64_t xoff = (base + r.shift) * bs;
        for (int i = r.ilo; i < r.ihi; ++i) {
          const CT* blk = coef + static_cast<std::int64_t>(i) * block2;
          const CT* xv = u + xoff + static_cast<std::int64_t>(i) * bs;
          CT xq[kMaxBs];
          if (q2 != nullptr) {
            const CT* qv = q2 + xoff + static_cast<std::int64_t>(i) * bs;
            for (int bc = 0; bc < bs; ++bc) {
              xq[bc] = qv[bc] * xv[bc];
            }
            xv = xq;
          }
          CT* yv = rl + static_cast<std::int64_t>(i) * bs;
          for (int br = 0; br < bs; ++br) {
            CT acc{0};
            for (int bc = 0; bc < bs; ++bc) {
              acc = mul_add(blk[br * bs + bc], xv[bc], acc);
            }
            yv[br] += acc;
          }
        }
      }
      const CT* SMG_RESTRICT fl = f + base * bs;
      if (q2 != nullptr) {
        const CT* SMG_RESTRICT ql = q2 + base * bs;
        for (std::int64_t q = 0; q < lstride; ++q) {
          rl[q] = mul_add(-ql[q], rl[q], fl[q]);
        }
      } else {
        for (std::int64_t q = 0; q < lstride; ++q) {
          rl[q] = fl[q] - rl[q];
        }
      }
    }
    return;
  }

#if defined(SMG_SIMD_AVX2)
  if constexpr (std::is_same_v<ST, half> && std::is_same_v<CT, float>) {
    // Mirror of apply_soa_f16_blocked: same descriptors, same line runner,
    // output redirected into the private plane buffer.
    for (int j = jlo; j < jhi; ++j) {
      CT* SMG_RESTRICT rl = out + (j - jlo) * lstride;
      const std::int64_t base = box.idx(0, j, k);
      const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
      std::int64_t c_aoff[32];
      std::int64_t c_shift[32];
      int c_ilo[32];
      int c_ihi[32];
      const F16LineDesc d = f16_line_desc(ctx.proto, st, box, j, k, c_aoff,
                                          c_shift, c_ilo, c_ihi);
      const half* am = vals + ctx.proto.abase(base, line);
      if (q2 != nullptr) {
        f16_run_line<true, true>(am, u + base, f + base, q2 + base, rl, nx, d);
      } else {
        f16_run_line<true, false>(am, u + base, f + base, nullptr, rl, nx, d);
      }
    }
    return;
  }
#endif
  (void)ctx;

  if (q2 != nullptr) {
    // Mirror of residual()'s spmv-then-subtract path: y = A (q2 .* u), row
    // rescale, then r = f - y (the b term must stay unscaled, so q2 cannot
    // fold into the per-diagonal passes).
    for (int j = jlo; j < jhi; ++j) {
      CT* SMG_RESTRICT rl = out + (j - jlo) * lstride;
      const std::int64_t base = box.idx(0, j, k);
      const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
      for (int i = 0; i < nx; ++i) {
        rl[i] = CT{0};
      }
      for (int d = 0; d < nd; ++d) {
        const DiagRange r = diag_range(box, st.offset(d), j, k);
        if (!r.line_valid || r.ihi <= r.ilo) {
          continue;
        }
        const ST* a =
            line_diag_ptr(vals, layout, base, line, d, nd, ncells, nx);
        const std::int64_t xoff = base + r.shift;
        soa_diag_fma<false, true>(a + r.ilo, u + xoff + r.ilo,
                                  q2 + xoff + r.ilo, rl + r.ilo,
                                  r.ihi - r.ilo);
      }
      for (int i = 0; i < nx; ++i) {
        rl[i] *= q2[base + i];
      }
      for (int i = 0; i < nx; ++i) {
        rl[i] = f[base + i] - rl[i];
      }
    }
    return;
  }

  // Mirror of apply_soa<true> (scalar, unscaled): init with f, subtract the
  // per-diagonal A u contributions.
  for (int j = jlo; j < jhi; ++j) {
    CT* SMG_RESTRICT rl = out + (j - jlo) * lstride;
    const std::int64_t base = box.idx(0, j, k);
    const std::int64_t line = j + static_cast<std::int64_t>(box.ny) * k;
    for (int i = 0; i < nx; ++i) {
      rl[i] = f[base + i];
    }
    for (int d = 0; d < nd; ++d) {
      const DiagRange r = diag_range(box, st.offset(d), j, k);
      if (!r.line_valid || r.ihi <= r.ilo) {
        continue;
      }
      const ST* a = line_diag_ptr(vals, layout, base, line, d, nd, ncells, nx);
      const std::int64_t xoff = base + r.shift;
      soa_diag_fma<true, false>(a + r.ilo, u + xoff + r.ilo,
                                static_cast<const CT*>(nullptr), rl + r.ilo,
                                r.ihi - r.ilo);
    }
  }
}

}  // namespace detail

/// fc = R (f - A u): the fused downstroke.  Bitwise identical to residual()
/// into a scratch vector followed by restrict_to_coarse(), at any thread
/// count, but never materializes the fine residual — saving one full-vector
/// store and one full-vector load per level per cycle.
template <class ST, class CT>
void residual_restrict(const StructMat<ST>& A, std::span<const CT> f,
                       std::span<const CT> u, const CT* q2,
                       const Coarsening& c, std::span<CT> fc) {
  const Box& fine = c.fine;
  const Box& coarse = c.coarse;
  const int bs = A.block_size();
  SMG_CHECK(A.box() == fine, "residual_restrict: matrix box != fine box");
  SMG_CHECK(static_cast<std::int64_t>(f.size()) == A.nrows() &&
                static_cast<std::int64_t>(u.size()) == A.nrows() &&
                static_cast<std::int64_t>(fc.size()) == coarse.size() * bs,
            "residual_restrict size mismatch");
  const obs::KernelSpan span(obs::Kind::ResidualRestrict);
  const double rscale = c.restrict_scale();
  const detail::ResidualLineCtx<ST, CT> ctx(A);
  const CT* fp = f.data();
  const CT* up = u.data();
  CT* out = fc.data();
  const std::int64_t lstride = static_cast<std::int64_t>(fine.nx) * bs;
  const std::size_t plane_dofs =
      static_cast<std::size_t>(lstride) * static_cast<std::size_t>(fine.ny);

#pragma omp parallel
  {
#if defined(_OPENMP)
    const int nth = omp_get_num_threads();
    const int tid = omp_get_thread_num();
#else
    const int nth = 1;
    const int tid = 0;
#endif
    const int ncz = coarse.nz;
    const int k0 = static_cast<int>(
        static_cast<std::int64_t>(ncz) * tid / nth);
    const int k1 = static_cast<int>(
        static_cast<std::int64_t>(ncz) * (tid + 1) / nth);
    if (k0 < k1) {
      // Rolling window of fine-plane residuals: a coarse plane's children
      // are at most three consecutive fine planes, so slot kf % 3 never
      // collides inside the window and plane 2K+1 survives as 2(K+1)-1.
      avec<CT> planes[3];
      int held[3] = {-1, -1, -1};
      for (int K = k0; K < k1; ++K) {
        const auto ck = detail::children_of(K, fine.nz, c.mask[2]);
        const CT* pk[3];
        for (int a = 0; a < ck.count; ++a) {
          const int kf = ck.idx[a];
          const int slot = kf % 3;
          if (held[slot] != kf) {
            if (planes[slot].size() != plane_dofs) {
              planes[slot].resize(plane_dofs);
            }
            detail::residual_lines(ctx, A, fp, up, q2, kf, 0, fine.ny,
                                   planes[slot].data());
            held[slot] = kf;
          }
          pk[a] = planes[slot].data();
        }
        for (int J = 0; J < coarse.ny; ++J) {
          const auto cj = detail::children_of(J, fine.ny, c.mask[1]);
          for (int I = 0; I < coarse.nx; ++I) {
            const auto ci = detail::children_of(I, fine.nx, c.mask[0]);
            CT* SMG_RESTRICT dst = out + coarse.idx(I, J, K) * bs;
            for (int br = 0; br < bs; ++br) {
              CT acc{0};
              for (int a = 0; a < ck.count; ++a) {
                for (int b = 0; b < cj.count; ++b) {
                  for (int cidx = 0; cidx < ci.count; ++cidx) {
                    const double w = rscale * ck.w[a] * cj.w[b] * ci.w[cidx];
                    acc += static_cast<CT>(w) *
                           pk[a][cj.idx[b] * lstride +
                                 static_cast<std::int64_t>(ci.idx[cidx]) * bs +
                                 br];
                  }
                }
              }
              dst[br] = acc;
            }
          }
        }
      }
    }
  }
}

/// unew = u + w * D^{-1} (f - A u): one weighted (block-)Jacobi sweep with
/// the residual fused into the update — the residual vector is never stored
/// and the old iterate is never re-read in a second pass.  unew must not
/// alias u (Jacobi reads the old iterate everywhere); callers ping-pong two
/// buffers.  Bitwise identical to residual() followed by the two-pass
/// diagonal update, at any thread count.
template <class ST, class CT>
void jacobi_sweep_fused(const StructMat<ST>& A, std::span<const CT> f,
                        std::span<const CT> u, std::span<const CT> invdiag,
                        const CT* q2, CT w, std::span<CT> unew) {
  const Box& box = A.box();
  const int bs = A.block_size();
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
  SMG_CHECK(static_cast<std::int64_t>(f.size()) == A.nrows() &&
                static_cast<std::int64_t>(u.size()) == A.nrows() &&
                static_cast<std::int64_t>(unew.size()) == A.nrows() &&
                static_cast<std::int64_t>(invdiag.size()) ==
                    A.ncells() * block2,
            "jacobi_sweep_fused size mismatch");
  SMG_CHECK(unew.data() != u.data(), "jacobi_sweep_fused: unew aliases u");
  const obs::KernelSpan span(obs::Kind::Jacobi);
  const detail::ResidualLineCtx<ST, CT> ctx(A);
  const int nx = box.nx;
  const std::int64_t ndof_line = static_cast<std::int64_t>(nx) * bs;
  const std::size_t plane_dofs =
      static_cast<std::size_t>(ndof_line) * static_cast<std::size_t>(box.ny);

  // Plane-granular parallel loop: residual_lines dispatches once per plane,
  // and a plane of residuals stays cache-resident for the diagonal update.
#pragma omp parallel for schedule(static)
  for (int k = 0; k < box.nz; ++k) {
    thread_local avec<CT> rbuf;
    if (rbuf.size() < plane_dofs) {
      rbuf.resize(plane_dofs);
    }
    CT* rp = rbuf.data();
    detail::residual_lines(ctx, A, f.data(), u.data(), q2, k, 0, box.ny, rp);
    for (int j = 0; j < box.ny; ++j) {
      const CT* rl = rp + static_cast<std::int64_t>(j) * ndof_line;
      const std::int64_t base = box.idx(0, j, k);
      for (int i = 0; i < nx; ++i) {
        const std::int64_t cell = base + i;
        const CT* blk = invdiag.data() + cell * block2;
        for (int br = 0; br < bs; ++br) {
          CT acc{0};
          for (int bc = 0; bc < bs; ++bc) {
            acc += blk[br * bs + bc] * rl[static_cast<std::int64_t>(i) * bs + bc];
          }
          unew[static_cast<std::size_t>(cell * bs + br)] =
              u[static_cast<std::size_t>(cell * bs + br)] + w * acc;
        }
      }
    }
  }
}

/// Panel fused downstroke: Fc = R (F - A U) for all columns in one matrix
/// sweep.  Column c is bitwise identical to residual_restrict on that column
/// (and therefore to residual_many + restrict_to_coarse_many): the fine
/// residual planes come from panel_lines — the panel mirror of
/// residual_lines — and the coarse gather uses the same child order and
/// static_cast<CT>(w) weights.  Same race-free parallelization: threads own
/// disjoint chunks of coarse z-planes with a rolling 3-plane window.
template <class ST, class CT>
void residual_restrict_many(const StructMat<ST>& A, const MultiVector<CT>& f,
                            const MultiVector<CT>& u, const CT* q2,
                            const Coarsening& c, MultiVector<CT>& fc) {
  const Box& fine = c.fine;
  const Box& coarse = c.coarse;
  const int bs = A.block_size();
  SMG_CHECK(A.box() == fine, "residual_restrict_many: matrix box != fine box");
  SMG_CHECK(f.rows() == A.nrows() && u.rows() == A.nrows() &&
                fc.rows() == coarse.size() * bs &&
                f.padded_cols() == fc.padded_cols() &&
                u.padded_cols() == fc.padded_cols(),
            "residual_restrict_many size mismatch");
  const obs::KernelSpan span(obs::Kind::ResidualRestrict);
  const double rscale = c.restrict_scale();
  const detail::PanelLineCtx<ST, CT> ctx(A);
  const int kp = f.padded_cols();
  const CT* fp = f.data();
  const CT* up = u.data();
  CT* out = fc.data();
  const std::int64_t lstride = static_cast<std::int64_t>(fine.nx) * bs;
  const std::size_t plane_dofs = static_cast<std::size_t>(lstride) *
                                 static_cast<std::size_t>(fine.ny) *
                                 static_cast<std::size_t>(kp);
  // Hoist the pure per-coordinate child lookups out of the point loop.
  std::vector<detail::Children> cxi(static_cast<std::size_t>(coarse.nx));
  for (int I = 0; I < coarse.nx; ++I) {
    cxi[static_cast<std::size_t>(I)] = detail::children_of(I, fine.nx, c.mask[0]);
  }

#pragma omp parallel
  {
#if defined(_OPENMP)
    const int nth = omp_get_num_threads();
    const int tid = omp_get_thread_num();
#else
    const int nth = 1;
    const int tid = 0;
#endif
    const int ncz = coarse.nz;
    const int k0 =
        static_cast<int>(static_cast<std::int64_t>(ncz) * tid / nth);
    const int k1 =
        static_cast<int>(static_cast<std::int64_t>(ncz) * (tid + 1) / nth);
    if (k0 < k1) {
      avec<CT> planes[3];
      int held[3] = {-1, -1, -1};
      for (int K = k0; K < k1; ++K) {
        const auto ck = detail::children_of(K, fine.nz, c.mask[2]);
        const CT* pk[3];
        for (int a = 0; a < ck.count; ++a) {
          const int kf = ck.idx[a];
          const int slot = kf % 3;
          if (held[slot] != kf) {
            if (planes[slot].size() != plane_dofs) {
              planes[slot].resize(plane_dofs);
            }
            detail::panel_lines<true>(ctx, A, fp, up, q2, kf, 0, fine.ny,
                                      planes[slot].data(), kp);
            held[slot] = kf;
          }
          pk[a] = planes[slot].data();
        }
        for (int J = 0; J < coarse.ny; ++J) {
          const auto cj = detail::children_of(J, fine.ny, c.mask[1]);
          for (int I = 0; I < coarse.nx; ++I) {
            const auto& ci = cxi[static_cast<std::size_t>(I)];
            // Flatten the child triple loop once per coarse point — the
            // same (a, b, cidx) fold order and static_cast<CT>(w) weights
            // as the per-column code, not recomputed per column.
            const CT* srcp[27];
            std::int64_t soff[27];
            CT wv[27];
            int ns = 0;
            for (int a = 0; a < ck.count; ++a) {
              for (int b = 0; b < cj.count; ++b) {
                for (int cidx = 0; cidx < ci.count; ++cidx) {
                  const double w = rscale * ck.w[a] * cj.w[b] * ci.w[cidx];
                  srcp[ns] = pk[a];
                  soff[ns] = (cj.idx[b] * lstride +
                              static_cast<std::int64_t>(ci.idx[cidx]) * bs) *
                             kp;
                  wv[ns] = static_cast<CT>(w);
                  ++ns;
                }
              }
            }
            CT* SMG_RESTRICT dst = out + coarse.idx(I, J, K) * bs * kp;
            for (int br = 0; br < bs; ++br) {
              CT* SMG_RESTRICT dr = dst + static_cast<std::int64_t>(br) * kp;
              const std::int64_t boff = static_cast<std::int64_t>(br) * kp;
#pragma omp simd
              for (int cc = 0; cc < kp; ++cc) {
                CT acc{0};
                for (int t = 0; t < ns; ++t) {
                  acc += wv[t] * srcp[t][soff[t] + boff + cc];
                }
                dr[cc] = acc;
              }
            }
          }
        }
      }
    }
  }
}

/// Panel fused Jacobi sweep: Unew = U + w D^{-1} (F - A U) for all columns
/// in one matrix sweep; column c is bitwise identical to jacobi_sweep_fused.
/// Unew must not alias U.
template <class ST, class CT>
void jacobi_sweep_fused_many(const StructMat<ST>& A, const MultiVector<CT>& f,
                             const MultiVector<CT>& u,
                             std::span<const CT> invdiag, const CT* q2, CT w,
                             MultiVector<CT>& unew) {
  const Box& box = A.box();
  const int bs = A.block_size();
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
  SMG_CHECK(f.rows() == A.nrows() && u.rows() == A.nrows() &&
                unew.rows() == A.nrows() &&
                static_cast<std::int64_t>(invdiag.size()) ==
                    A.ncells() * block2 &&
                f.padded_cols() == unew.padded_cols() &&
                u.padded_cols() == unew.padded_cols(),
            "jacobi_sweep_fused_many size mismatch");
  SMG_CHECK(unew.data() != u.data(), "jacobi_sweep_fused_many: unew aliases u");
  const obs::KernelSpan span(obs::Kind::Jacobi);
  const detail::PanelLineCtx<ST, CT> ctx(A);
  const int nx = box.nx;
  const int kp = f.padded_cols();
  const std::int64_t ndof_line = static_cast<std::int64_t>(nx) * bs;
  const std::size_t plane_dofs = static_cast<std::size_t>(ndof_line) *
                                 static_cast<std::size_t>(box.ny) *
                                 static_cast<std::size_t>(kp);
  const CT* fp = f.data();
  const CT* up = u.data();
  CT* np = unew.data();

#pragma omp parallel for schedule(static)
  for (int k = 0; k < box.nz; ++k) {
    thread_local avec<CT> rbuf;
    if (rbuf.size() < plane_dofs) {
      rbuf.resize(plane_dofs);
    }
    CT* rp = rbuf.data();
    detail::panel_lines<true>(ctx, A, fp, up, q2, k, 0, box.ny, rp, kp);
    for (int j = 0; j < box.ny; ++j) {
      const CT* rl = rp + static_cast<std::int64_t>(j) * ndof_line * kp;
      const std::int64_t base = box.idx(0, j, k);
      for (int i = 0; i < nx; ++i) {
        const std::int64_t cell = base + i;
        const CT* blk = invdiag.data() + cell * block2;
        for (int br = 0; br < bs; ++br) {
          const CT* SMG_RESTRICT urow = up + (cell * bs + br) * kp;
          CT* SMG_RESTRICT nrow = np + (cell * bs + br) * kp;
#pragma omp simd
          for (int cc = 0; cc < kp; ++cc) {
            CT acc{0};
            for (int bc = 0; bc < bs; ++bc) {
              acc += blk[br * bs + bc] *
                     rl[(static_cast<std::int64_t>(i) * bs + bc) * kp + cc];
            }
            nrow[cc] = urow[cc] + w * acc;
          }
        }
      }
    }
  }
}

}  // namespace smg
