// Internal helpers shared by problem generators: smooth random fields and
// face-coefficient (finite-volume) assembly for diffusion operators.
#pragma once

#include <cmath>
#include <numbers>

#include "sgdia/struct_matrix.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace smg::detail {

/// Smooth random field in [-1, 1]: a few random-phase low-frequency modes
/// plus mild white noise.  Smoothness keeps neighboring cells correlated so
/// harmonic-mean face coefficients stay well-defined (rhd-style "low
/// anisotropy with a huge value span").
class SmoothField {
 public:
  SmoothField(std::uint64_t seed, int nmodes = 5, double noise = 0.05)
      : noise_(noise), rng_(seed) {
    for (int m = 0; m < nmodes; ++m) {
      Mode mode;
      mode.kx = rng_.uniform(0.5, 3.0);
      mode.ky = rng_.uniform(0.5, 3.0);
      mode.kz = rng_.uniform(0.5, 3.0);
      mode.phase = rng_.uniform(0.0, 2.0 * std::numbers::pi);
      mode.amp = rng_.uniform(0.4, 1.0);
      modes_.push_back(mode);
      norm_ += mode.amp;
    }
  }

  /// Value at normalized coordinates (x,y,z in [0,1]); cellwise noise is
  /// derived from the cell hash so the field is mesh-deterministic.
  double at(double x, double y, double z, std::uint64_t cell_hash) const {
    double v = 0.0;
    for (const Mode& m : modes_) {
      v += m.amp * std::sin(2.0 * std::numbers::pi *
                                (m.kx * x + m.ky * y + m.kz * z) +
                            m.phase);
    }
    std::uint64_t h = cell_hash;
    const double n =
        (static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53) * 2.0 - 1.0;
    return v / norm_ * (1.0 - noise_) + n * noise_;
  }

 private:
  struct Mode {
    double kx, ky, kz, phase, amp;
  };
  std::vector<Mode> modes_;
  double norm_ = 0.0;
  double noise_;
  Rng rng_;
};

inline double harmonic_mean(double a, double b) noexcept {
  return 2.0 * a * b / (a + b);
}

/// Assemble a symmetric 3d7 finite-volume diffusion operator
///   -div(kappa grad u) + sigma u
/// from per-cell, per-direction diffusivities.  kappa(cell, dir) with dir in
/// {0,1,2} = x,y,z; sigma(cell) >= 0 adds absorption to the diagonal.
/// Dirichlet boundary by truncation: the diagonal keeps the full face sum.
template <class KappaFn, class SigmaFn>
StructMat<double> assemble_diffusion_3d7(const Box& box, KappaFn&& kappa,
                                         SigmaFn&& sigma) {
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 1, Layout::SOA);
  const Stencil& st = A.stencil();
  const int center = st.center();
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        double diag = sigma(i, j, k);
        for (int d = 0; d < st.ndiag(); ++d) {
          if (d == center) {
            continue;
          }
          const Offset& o = st.offset(d);
          const int dir = o.dx != 0 ? 0 : (o.dy != 0 ? 1 : 2);
          const double kc = kappa(i, j, k, dir);
          double w;
          if (box.contains(i + o.dx, j + o.dy, k + o.dz)) {
            const double kn = kappa(i + o.dx, j + o.dy, k + o.dz, dir);
            w = harmonic_mean(kc, kn);
            A.at(cell, d) = -w;
          } else {
            // Dirichlet ghost with the cell's own diffusivity.
            w = kc;
          }
          diag += w;
        }
        A.at(cell, center) = diag;
      }
    }
  }
  return A;
}

/// Deterministic right-hand side in [-1, 1] per dof.
inline avec<double> random_rhs(std::int64_t nrows, std::uint64_t seed) {
  Rng rng(seed);
  avec<double> b(static_cast<std::size_t>(nrows));
  for (auto& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
  return b;
}

}  // namespace smg::detail
