// Petroleum-reservoir-style problems (paper's oil / oil-4C, from SPE1/SPE10
// settings via OpenCAEPoro).
//
// Feature targets (Table 3):
//  * oil    — scalar 3d7, layered lognormal permeability with k_z = 1e-3 k_xy
//             (high anisotropy), value range *inside* FP16, mildly
//             nonsymmetric (upwinded well/flux terms) -> GMRES.
//  * oil-4C — block r=4 (oil, water, gas, dissolved gas): pressure-like
//             leading component plus weaker component diffusion, asymmetric
//             inter-component transfer; values near the FP16 boundary.
#include <algorithm>

#include "problems/field_util.hpp"
#include "problems/problem.hpp"

namespace smg {

namespace {

/// Layer-wise lognormal horizontal permeability (SPE10 flavor): strong layer
/// contrast plus cellwise noise, clipped so values stay in FP16 range.
struct PermField {
  explicit PermField(std::uint64_t seed, const Box& box) : box_(box) {
    Rng rng(seed);
    layer_exp_.resize(static_cast<std::size_t>(box.nz));
    for (auto& e : layer_exp_) {
      e = 2.2 * rng.normal();  // layer log10-permeability offset
    }
  }

  double kxy(int i, int j, int k) const {
    std::uint64_t h = static_cast<std::uint64_t>(box_.idx(i, j, k)) ^
                      0xBEEFCAFEull;
    const double noise =
        (static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53) * 2.0 - 1.0;
    const double e = layer_exp_[static_cast<std::size_t>(k)] + 0.5 * noise;
    return std::pow(10.0, std::clamp(e, -3.2, 3.2));
  }

  Box box_;
  std::vector<double> layer_exp_;
};

}  // namespace

Problem make_oil(const Box& box) {
  Problem p;
  p.name = "oil";
  p.real_world = true;
  p.dist = "None";  // in FP16 range (Table 3: not out-of-range)
  p.aniso = "High";
  p.solver = "gmres";

  PermField perm(0x0117EEull, box);
  constexpr double kVerticalRatio = 1e-3;  // k_z / k_xy
  auto kappa = [&](int i, int j, int k, int dir) {
    const double kh = perm.kxy(i, j, k);
    return dir == 2 ? kVerticalRatio * kh : kh;
  };
  auto sigma = [&](int i, int j, int k) {
    // Compressibility/well term: a handful of well columns get a strong
    // diagonal contribution.
    const bool well = ((i == box.nx / 4 || i == 3 * box.nx / 4) &&
                       (j == box.ny / 4 || j == 3 * box.ny / 4));
    return well ? 10.0 : 1e-3;
  };
  StructMat<double> A = detail::assemble_diffusion_3d7(box, kappa, sigma);

  // Upwind flux asymmetry along x (drive toward producers): scale +x faces
  // up and -x faces down, breaking symmetry without losing diagonal
  // dominance.
  const Stencil& st = A.stencil();
  const int dxp = st.find(+1, 0, 0);
  const int dxm = st.find(-1, 0, 0);
  constexpr double kUpwind = 0.12;
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    A.at(cell, dxp) *= (1.0 + kUpwind);
    A.at(cell, dxm) *= (1.0 - kUpwind);
  }
  p.A = std::move(A);
  p.b = detail::random_rhs(p.A.nrows(), 0x5BE10ull);
  return p;
}

Problem make_oil4c(const Box& box) {
  Problem p;
  p.name = "oil4c";
  p.real_world = true;
  p.dist = "Near";
  p.aniso = "High";
  p.solver = "gmres";

  constexpr int kBs = 4;  // oil, water, gas, dissolved gas
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), kBs, Layout::SOA);
  const Stencil& st = A.stencil();
  const int center = st.center();
  PermField perm(0x0114Cull, box);

  // Component mobility scales: the pressure-like leading component couples
  // strongly; saturations/concentrations diffuse weakly.
  const double mob[kBs] = {1.0, 0.15, 0.4, 0.05};
  // Near-FP16 magnitude: scale so maxima land around ~1e5 (slightly out of
  // FP16 range, "Near" in Fig. 1 terms).
  constexpr double kMag = 60.0;
  constexpr double kVerticalRatio = 1e-3;
  constexpr double kUpwind = 0.12;

  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        double diag[kBs] = {};
        for (int d = 0; d < st.ndiag(); ++d) {
          if (d == center) {
            continue;
          }
          const Offset& o = st.offset(d);
          const bool inside = box.contains(i + o.dx, j + o.dy, k + o.dz);
          const int dir = o.dx != 0 ? 0 : (o.dy != 0 ? 1 : 2);
          double face;
          if (inside) {
            face = detail::harmonic_mean(
                perm.kxy(i, j, k), perm.kxy(i + o.dx, j + o.dy, k + o.dz));
          } else {
            face = perm.kxy(i, j, k);
          }
          if (dir == 2) {
            face *= kVerticalRatio;
          }
          face *= kMag;
          // Upwind asymmetry along x for all transported components.
          double bias = 1.0;
          if (o.dx > 0) {
            bias = 1.0 + kUpwind;
          } else if (o.dx < 0) {
            bias = 1.0 - kUpwind;
          }
          for (int f = 0; f < kBs; ++f) {
            const double w = mob[f] * face * bias;
            if (inside) {
              A.at(cell, d, f, f) = -w;
            }
            diag[f] += mob[f] * face;  // unbiased sum keeps rows dominant
          }
        }
        // Inter-component transfer (gas dissolving into oil etc.):
        // asymmetric but diagonally bounded.
        std::uint64_t h = static_cast<std::uint64_t>(cell) ^ 0xD15501Ull;
        const double t =
            0.2 * (static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53);
        const double base = kMag * 0.5;
        const double xfer[kBs][kBs] = {
            {0.0, 0.1, 0.2, 0.3 + t},
            {0.05, 0.0, 0.0, 0.0},
            {0.15, 0.0, 0.0, 0.4 - t},
            {0.25 + t, 0.0, 0.3, 0.0},
        };
        for (int f = 0; f < kBs; ++f) {
          double offsum = 0.0;
          for (int g = 0; g < kBs; ++g) {
            if (f == g) {
              continue;
            }
            const double v = base * xfer[f][g];
            A.at(cell, center, f, g) = -v;
            offsum += v;
          }
          A.at(cell, center, f, f) = diag[f] + offsum + 1e-3 * kMag;
        }
      }
    }
  }
  p.A = std::move(A);
  p.b = detail::random_rhs(p.A.nrows(), 0x0114C5ull);
  return p;
}

}  // namespace smg
