// Linear-elasticity problem (paper's solid-3D: weak form of elastostatics,
// three displacement components per element, 3d15 pattern).
//
// Feature targets (Table 3): block r=3, 3d15 (faces + corners), coefficient
// magnitudes set by steel-like Lame parameters (~1e10..1e11, far above
// FP16_MAX), homogeneous coefficients -> low anisotropy, SPD -> CG.
//
// Construction: a vector graph Laplacian with PSD edge-weight blocks
//   W(n) = mu * I + (lambda + mu) * n n^T
// for each stencil direction n (normalized), face edges weighted 1 and
// corner edges 1/4 — the algebraic skeleton of a trilinear FEM elasticity
// stiffness matrix.  Dirichlet truncation at the boundary keeps it PD.
#include <cmath>

#include "problems/field_util.hpp"
#include "problems/problem.hpp"

namespace smg {

Problem make_solid3d(const Box& box) {
  Problem p;
  p.name = "solid3d";
  p.real_world = false;  // generated, like the paper's own solid-3D cases
  p.dist = "Far";
  p.aniso = "Low";
  p.solver = "cg";

  constexpr int kBs = 3;
  // Steel: E = 2.0e11 Pa, nu = 0.3.
  constexpr double kE = 2.0e11;
  constexpr double kNu = 0.3;
  const double lambda = kE * kNu / ((1.0 + kNu) * (1.0 - 2.0 * kNu));
  const double mu = kE / (2.0 * (1.0 + kNu));

  StructMat<double> A(box, Stencil::make(Pattern::P3d15), kBs, Layout::SOA);
  const Stencil& st = A.stencil();
  const int center = st.center();

  // Precompute the edge-weight block for every non-center offset.
  double W[16][kBs][kBs];
  for (int d = 0; d < st.ndiag(); ++d) {
    if (d == center) {
      continue;
    }
    const Offset& o = st.offset(d);
    const double len = std::sqrt(static_cast<double>(
        o.dx * o.dx + o.dy * o.dy + o.dz * o.dz));
    const double n[kBs] = {o.dx / len, o.dy / len, o.dz / len};
    const double wgt = (len > 1.5) ? 0.25 : 1.0;  // corners vs faces
    for (int r = 0; r < kBs; ++r) {
      for (int c = 0; c < kBs; ++c) {
        W[d][r][c] =
            wgt * (mu * (r == c ? 1.0 : 0.0) + (lambda + mu) * n[r] * n[c]);
      }
    }
  }

  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        double diag[kBs][kBs] = {};
        for (int d = 0; d < st.ndiag(); ++d) {
          if (d == center) {
            continue;
          }
          const Offset& o = st.offset(d);
          const bool inside = box.contains(i + o.dx, j + o.dy, k + o.dz);
          for (int r = 0; r < kBs; ++r) {
            for (int c = 0; c < kBs; ++c) {
              if (inside) {
                A.at(cell, d, r, c) = -W[d][r][c];
              }
              diag[r][c] += W[d][r][c];  // full sum (Dirichlet truncation)
            }
          }
        }
        for (int r = 0; r < kBs; ++r) {
          for (int c = 0; c < kBs; ++c) {
            A.at(cell, center, r, c) =
                diag[r][c] + (r == c ? 1e-5 * mu : 0.0);
          }
        }
      }
    }
  }
  p.A = std::move(A);
  p.b = detail::random_rhs(p.A.nrows(), 0x5011D3Dull);
  return p;
}

}  // namespace smg
