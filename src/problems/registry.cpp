#include <algorithm>
#include <cmath>
#include <limits>

#include "kernels/blas1.hpp"
#include "kernels/spmv.hpp"
#include "problems/field_util.hpp"
#include "problems/problem.hpp"
#include "util/common.hpp"

namespace smg {

Problem make_problem(std::string_view name, const Box& box) {
  if (name == "laplace27") {
    return make_laplace27(box);
  }
  if (name == "laplace27e8") {
    return make_laplace27e8(box);
  }
  if (name == "rhd") {
    return make_rhd(box);
  }
  if (name == "rhd3t") {
    return make_rhd3t(box);
  }
  if (name == "oil") {
    return make_oil(box);
  }
  if (name == "oil4c") {
    return make_oil4c(box);
  }
  if (name == "weather") {
    return make_weather(box);
  }
  if (name == "solid3d") {
    return make_solid3d(box);
  }
  SMG_CHECK(false, "unknown problem name");
}

std::vector<std::string> problem_names() {
  return {"laplace27", "laplace27e8", "rhd",   "oil",
          "weather",   "rhd3t",       "oil4c", "solid3d"};
}

std::vector<double> value_magnitudes(const StructMat<double>& A) {
  std::vector<double> mags;
  mags.reserve(static_cast<std::size_t>(A.nnz_logical()));
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        for (int d = 0; d < st.ndiag(); ++d) {
          const Offset& o = st.offset(d);
          if (!box.contains(i + o.dx, j + o.dy, k + o.dz)) {
            continue;
          }
          for (int br = 0; br < bs; ++br) {
            for (int bc = 0; bc < bs; ++bc) {
              const double v = std::abs(A.at(cell, d, br, bc));
              if (v > 0.0) {
                mags.push_back(v);
              }
            }
          }
        }
      }
    }
  }
  return mags;
}

std::vector<double> anisotropy_samples(const StructMat<double>& A) {
  std::vector<double> out;
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  out.reserve(static_cast<std::size_t>(A.ncells()));
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        // Directional coupling strength: Frobenius mass of entries whose
        // offset points (at least partly) along each axis.
        double s[3] = {0.0, 0.0, 0.0};
        for (int d = 0; d < st.ndiag(); ++d) {
          const Offset& o = st.offset(d);
          if (o.is_center() ||
              !box.contains(i + o.dx, j + o.dy, k + o.dz)) {
            continue;
          }
          double mass = 0.0;
          for (int br = 0; br < bs; ++br) {
            for (int bc = 0; bc < bs; ++bc) {
              const double v = A.at(cell, d, br, bc);
              mass += v * v;
            }
          }
          mass = std::sqrt(mass);
          if (o.dx != 0) {
            s[0] += mass;
          }
          if (o.dy != 0) {
            s[1] += mass;
          }
          if (o.dz != 0) {
            s[2] += mass;
          }
        }
        const double smax = std::max({s[0], s[1], s[2]});
        const double smin = std::min({s[0], s[1], s[2]});
        if (smin > 0.0 && smax > 0.0) {
          out.push_back(std::log10(smax / smin));
        }
      }
    }
  }
  return out;
}

namespace {

/// Count of eigenvalues of the symmetric tridiagonal (d, e) below x
/// (Sturm sequence).
int sturm_count(const std::vector<double>& d, const std::vector<double>& e,
                double x) {
  int count = 0;
  double q = d[0] - x;
  if (q < 0.0) {
    ++count;
  }
  for (std::size_t i = 1; i < d.size(); ++i) {
    const double denom = (q == 0.0) ? 1e-300 : q;
    q = d[i] - x - e[i - 1] * e[i - 1] / denom;
    if (q < 0.0) {
      ++count;
    }
  }
  return count;
}

double bisect_eig(const std::vector<double>& d, const std::vector<double>& e,
                  int index, double lo, double hi) {
  for (int it = 0; it < 200 && hi - lo > 1e-12 * std::max(1.0, std::abs(hi));
       ++it) {
    const double mid = 0.5 * (lo + hi);
    if (sturm_count(d, e, mid) > index) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double estimate_cond(const StructMat<double>& A, int iters) {
  const std::size_t n = static_cast<std::size_t>(A.nrows());
  const int m = std::min<int>(iters, static_cast<int>(n));

  // Lanczos with full reorthogonalization (m is small).
  std::vector<avec<double>> V;
  avec<double> w(n);
  std::vector<double> alpha, beta;

  V.emplace_back(n);
  {
    Rng rng(0xC0DE17ull);
    for (auto& v : V[0]) {
      v = rng.uniform(-1.0, 1.0);
    }
    const double nrm = nrm2<double>({V[0].data(), n});
    scal<double>(1.0 / nrm, {V[0].data(), n});
  }

  for (int k = 0; k < m; ++k) {
    spmv<double, double>(A, {V.back().data(), n}, {w.data(), n});
    const double a =
        dot<double>({w.data(), n}, {V.back().data(), n});
    alpha.push_back(a);
    axpy<double>(-a, {V.back().data(), n}, {w.data(), n});
    if (k > 0) {
      axpy<double>(-beta.back(), {V[V.size() - 2].data(), n}, {w.data(), n});
    }
    // Full reorthogonalization for numerical reliability.
    for (const auto& v : V) {
      const double c = dot<double>({w.data(), n}, {v.data(), n});
      axpy<double>(-c, {v.data(), n}, {w.data(), n});
    }
    const double b = nrm2<double>({w.data(), n});
    if (b < 1e-14 * std::abs(a) || k == m - 1) {
      break;
    }
    beta.push_back(b);
    V.emplace_back(n);
    for (std::size_t i = 0; i < n; ++i) {
      V.back()[i] = w[i] / b;
    }
  }

  // Gershgorin bounds for the tridiagonal, then bisect the extremes.
  const std::size_t t = alpha.size();
  if (t == 0) {
    return 0.0;
  }
  double lo = alpha[0], hi = alpha[0];
  for (std::size_t i = 0; i < t; ++i) {
    const double el = (i > 0) ? std::abs(beta[i - 1]) : 0.0;
    const double er = (i < beta.size()) ? std::abs(beta[i]) : 0.0;
    lo = std::min(lo, alpha[i] - el - er);
    hi = std::max(hi, alpha[i] + el + er);
  }
  const double lmin = bisect_eig(alpha, beta, 0, lo, hi);
  const double lmax = bisect_eig(alpha, beta, static_cast<int>(t) - 1, lo, hi);
  if (lmin <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return lmax / lmin;
}

}  // namespace smg
