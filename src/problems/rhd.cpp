// Radiation-hydrodynamics-style diffusion problems (paper's rhd / rhd-3T).
//
// Feature targets (Table 3 / Fig. 1 / Fig. 5):
//  * rhd    — scalar 3d7, coefficient magnitudes spanning ~1e-9..1e9 (far
//             outside FP16 in both directions), smooth fields so directional
//             couplings stay balanced (low anisotropy), cond ~1e8.
//  * rhd-3T — block r=3 (radiation/electron/ion temperatures): each field
//             diffuses at a wildly different scale and cellwise coupling
//             terms exchange energy between them, giving the multi-physics
//             multi-scale structure (high anisotropy, cond ~1e15).
#include "problems/field_util.hpp"
#include "problems/problem.hpp"

namespace smg {

Problem make_rhd(const Box& box) {
  Problem p;
  p.name = "rhd";
  p.real_world = true;
  p.dist = "Far";
  p.aniso = "Low";
  p.solver = "cg";

  // kappa = 10^(9 * smooth field): spans 1e-9..1e9.
  detail::SmoothField field(0x0DDF00Dull, 5, 0.03);
  auto kappa = [&](int i, int j, int k, int /*dir*/) {
    const double x = (i + 0.5) / box.nx;
    const double y = (j + 0.5) / box.ny;
    const double z = (k + 0.5) / box.nz;
    const std::uint64_t h = static_cast<std::uint64_t>(box.idx(i, j, k));
    return std::pow(10.0, 9.0 * field.at(x, y, z, h));
  };
  // Weak absorption keeps the operator definite without shrinking the span.
  auto sigma = [&](int i, int j, int k) {
    return 1e-4 * kappa(i, j, k, 0);
  };
  p.A = detail::assemble_diffusion_3d7(box, kappa, sigma);
  p.b = detail::random_rhs(p.A.nrows(), 0xAD5EEDull);
  return p;
}

Problem make_rhd3t(const Box& box) {
  Problem p;
  p.name = "rhd3t";
  p.real_world = true;
  p.dist = "Far";
  p.aniso = "High";
  p.solver = "cg";

  constexpr int kBs = 3;  // radiation, electron, ion temperatures
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), kBs, Layout::SOA);
  const Stencil& st = A.stencil();
  const int center = st.center();

  // Per-field diffusivity scale: radiation conducts ~9 decades above ions.
  const double base_exp[kBs] = {6.0, 1.0, -3.0};
  const double span[kBs] = {3.0, 2.5, 2.0};
  detail::SmoothField fields[kBs] = {
      detail::SmoothField(0x3A11, 4, 0.03),
      detail::SmoothField(0x3A12, 4, 0.03),
      detail::SmoothField(0x3A13, 4, 0.03),
  };
  detail::SmoothField couple_re(0x3A21, 3, 0.05);
  detail::SmoothField couple_ei(0x3A22, 3, 0.05);

  auto kap = [&](int f, int i, int j, int k) {
    const double x = (i + 0.5) / box.nx;
    const double y = (j + 0.5) / box.ny;
    const double z = (k + 0.5) / box.nz;
    const std::uint64_t h =
        static_cast<std::uint64_t>(box.idx(i, j, k)) * 3 + f;
    return std::pow(10.0, base_exp[f] + span[f] * fields[f].at(x, y, z, h));
  };

  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        double diag[kBs] = {0.0, 0.0, 0.0};
        for (int d = 0; d < st.ndiag(); ++d) {
          if (d == center) {
            continue;
          }
          const Offset& o = st.offset(d);
          const bool inside = box.contains(i + o.dx, j + o.dy, k + o.dz);
          for (int f = 0; f < kBs; ++f) {
            const double kc = kap(f, i, j, k);
            double w;
            if (inside) {
              const double kn = kap(f, i + o.dx, j + o.dy, k + o.dz);
              w = detail::harmonic_mean(kc, kn);
              A.at(cell, d, f, f) = -w;
            } else {
              w = kc;
            }
            diag[f] += w;
          }
        }
        // Energy-exchange coupling: symmetric PSD 3x3 graph Laplacian over
        // the (r,e,i) chain with cellwise rates spanning several decades.
        const double x = (i + 0.5) / box.nx;
        const double y = (j + 0.5) / box.ny;
        const double z = (k + 0.5) / box.nz;
        const std::uint64_t h = static_cast<std::uint64_t>(cell);
        const double w_re = std::pow(10.0, 2.0 + 3.0 * couple_re.at(x, y, z, h));
        const double w_ei =
            std::pow(10.0, 0.0 + 3.0 * couple_ei.at(x, y, z, h ^ 0x9E37ull));
        A.at(cell, center, 0, 0) = diag[0] + w_re + 1e-4 * kap(0, i, j, k);
        A.at(cell, center, 1, 1) =
            diag[1] + w_re + w_ei + 1e-4 * kap(1, i, j, k);
        A.at(cell, center, 2, 2) = diag[2] + w_ei + 1e-4 * kap(2, i, j, k);
        A.at(cell, center, 0, 1) = -w_re;
        A.at(cell, center, 1, 0) = -w_re;
        A.at(cell, center, 1, 2) = -w_ei;
        A.at(cell, center, 2, 1) = -w_ei;
      }
    }
  }
  p.A = std::move(A);
  p.b = detail::random_rhs(p.A.nrows(), 0x37E3Full);
  return p;
}

}  // namespace smg
