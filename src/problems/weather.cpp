// Atmospheric-dynamics-style Helmholtz problem (paper's weather case, from
// the GRAPES-MESO dynamic core).
//
// Feature targets (Table 3): scalar 3d19 pattern, values *near* the FP16
// upper bound, high anisotropy from (a) the huge horizontal-to-vertical grid
// aspect ratio of an atmosphere, (b) latitude-dependent metric factors that
// blow up toward the poles, and (c) irregular topography modulating the
// lowest model levels.  Mildly nonsymmetric (advection) -> GMRES.
#include <algorithm>

#include "problems/field_util.hpp"
#include "problems/problem.hpp"

namespace smg {

Problem make_weather(const Box& box) {
  Problem p;
  p.name = "weather";
  p.real_world = true;
  p.dist = "Near";
  p.aniso = "High";
  p.solver = "gmres";

  StructMat<double> A(box, Stencil::make(Pattern::P3d19), 1, Layout::SOA);
  const Stencil& st = A.stencil();
  const int center = st.center();

  detail::SmoothField topo(0x7EA7Full, 4, 0.1);

  // Latitude spans +/-80 degrees over the y index; the metric factor
  // 1/cos^2(phi) stretches zonal couplings toward the poles.
  auto lat_factor = [&](int j) {
    const double phi = (static_cast<double>(j) / (box.ny - 1) - 0.5) *
                       (160.0 / 180.0) * std::numbers::pi;
    const double c = std::max(std::cos(phi), 0.17);
    return 1.0 / (c * c);
  };
  // Vertical coupling ~ (dx/dz)^2: atmospheres are ~1000x wider than tall.
  constexpr double kAspect2 = 2.0e4;
  // Global magnitude scale placing the maxima just above FP16_MAX ("Near").
  constexpr double kMag = 6.0;
  constexpr double kAdvect = 0.08;  // zonal wind upwind asymmetry

  auto terrain = [&](int i, int j, int k) {
    // Topography strengthens near-surface couplings (k small).
    const double x = (i + 0.5) / box.nx;
    const double y = (j + 0.5) / box.ny;
    const double h =
        0.5 * (1.0 + topo.at(x, y, 0.0,
                             static_cast<std::uint64_t>(box.idx(i, j, 0))));
    const double depth = 1.0 - static_cast<double>(k) / box.nz;
    return 1.0 + 4.0 * h * depth * depth;
  };

  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        double diag = 0.0;
        for (int d = 0; d < st.ndiag(); ++d) {
          if (d == center) {
            continue;
          }
          const Offset& o = st.offset(d);
          double w = kMag * terrain(i, j, k);
          if (o.dz != 0 && o.dx == 0 && o.dy == 0) {
            w *= kAspect2;  // pure vertical face
          } else if (o.dz != 0) {
            w *= 0.25 * std::sqrt(kAspect2);  // vertical-horizontal edge
          } else if (o.dx != 0 && o.dy != 0) {
            w *= 0.5 * lat_factor(j);  // horizontal edge term
          } else if (o.dx != 0) {
            w *= lat_factor(j);  // zonal face
          }
          // else: meridional face keeps the base weight.
          double bias = 1.0;
          if (o.dx > 0) {
            bias = 1.0 + kAdvect;
          } else if (o.dx < 0) {
            bias = 1.0 - kAdvect;
          }
          if (box.contains(i + o.dx, j + o.dy, k + o.dz)) {
            A.at(cell, d) = -w * bias;
          }
          diag += w;  // full sum: Dirichlet truncation keeps dominance
        }
        // Helmholtz shift (acoustic/implicit time step term).
        A.at(cell, center) = diag + 0.05 * kMag;
      }
    }
  }
  p.A = std::move(A);
  p.b = detail::random_rhs(p.A.nrows(), 0x6EA7E5ull);
  return p;
}

}  // namespace smg
