#include "problems/field_util.hpp"
#include "problems/problem.hpp"

namespace smg {

namespace {

/// HPCG-style 27-point Laplacian: diagonal 26, all 26 neighbors -1,
/// homogeneous Dirichlet boundary by truncation.  Fully isotropic and
/// constant-coefficient — the paper's idealized benchmark.
Problem make_laplace_impl(const Box& box, double scale, std::string name,
                          std::string dist) {
  Problem p;
  p.name = std::move(name);
  p.real_world = false;
  p.dist = std::move(dist);
  p.aniso = "None";
  p.solver = "cg";

  StructMat<double> A(box, Stencil::make(Pattern::P3d27), 1, Layout::SOA);
  const Stencil& st = A.stencil();
  const int center = st.center();
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        A.at(cell, center) = 26.0 * scale;
        for (int d = 0; d < st.ndiag(); ++d) {
          if (d == center) {
            continue;
          }
          const Offset& o = st.offset(d);
          if (box.contains(i + o.dx, j + o.dy, k + o.dz)) {
            A.at(cell, d) = -1.0 * scale;
          }
        }
      }
    }
  }
  p.A = std::move(A);
  p.b = detail::random_rhs(p.A.nrows(), 0x1A91ACEull);
  return p;
}

}  // namespace

Problem make_laplace27(const Box& box) {
  return make_laplace_impl(box, 1.0, "laplace27", "None");
}

Problem make_laplace27e8(const Box& box) {
  // Multiplying by 1e8 pushes every entry far beyond FP16_MAX = 65504 while
  // changing nothing about the spectrum: the pure out-of-range ablation.
  return make_laplace_impl(box, 1e8, "laplace27e8", "Far");
}

}  // namespace smg
