#include <cmath>
#include <numbers>

#include "problems/field_util.hpp"
#include "problems/problem.hpp"

namespace smg {

namespace {

/// HPCG-style 27-point Laplacian: diagonal 26, all 26 neighbors -1,
/// homogeneous Dirichlet boundary by truncation.  Fully isotropic and
/// constant-coefficient — the paper's idealized benchmark.
Problem make_laplace_impl(const Box& box, double scale, std::string name,
                          std::string dist) {
  Problem p;
  p.name = std::move(name);
  p.real_world = false;
  p.dist = std::move(dist);
  p.aniso = "None";
  p.solver = "cg";

  StructMat<double> A(box, Stencil::make(Pattern::P3d27), 1, Layout::SOA);
  const Stencil& st = A.stencil();
  const int center = st.center();
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        A.at(cell, center) = 26.0 * scale;
        for (int d = 0; d < st.ndiag(); ++d) {
          if (d == center) {
            continue;
          }
          const Offset& o = st.offset(d);
          if (box.contains(i + o.dx, j + o.dy, k + o.dz)) {
            A.at(cell, d) = -1.0 * scale;
          }
        }
      }
    }
  }
  p.A = std::move(A);
  p.b = detail::random_rhs(p.A.nrows(), 0x1A91ACEull);
  return p;
}

/// b = 9 pi^2 (hx^2 + hy^2 + hz^2) u* . scale: the manufactured rhs whose
/// continuum solution is u* (see problem.hpp for the Taylor argument).
Problem make_laplace_mms_impl(const Box& box, double scale, std::string name,
                              std::string dist) {
  Problem p = make_laplace_impl(box, scale, std::move(name), std::move(dist));
  const double hx = 1.0 / (box.nx + 1);
  const double hy = 1.0 / (box.ny + 1);
  const double hz = 1.0 / (box.nz + 1);
  const double pi2 = std::numbers::pi * std::numbers::pi;
  const double amp = 9.0 * pi2 * (hx * hx + hy * hy + hz * hz) * scale;
  const avec<double> ustar = laplace27_mms_solution(box);
  for (std::size_t i = 0; i < ustar.size(); ++i) {
    p.b[i] = amp * ustar[i];
  }
  return p;
}

}  // namespace

Problem make_laplace27(const Box& box) {
  return make_laplace_impl(box, 1.0, "laplace27", "None");
}

Problem make_laplace27e8(const Box& box) {
  // Multiplying by 1e8 pushes every entry far beyond FP16_MAX = 65504 while
  // changing nothing about the spectrum: the pure out-of-range ablation.
  return make_laplace_impl(box, 1e8, "laplace27e8", "Far");
}

Problem make_laplace27_mms(const Box& box) {
  return make_laplace_mms_impl(box, 1.0, "laplace27_mms", "None");
}

Problem make_laplace27e8_mms(const Box& box) {
  return make_laplace_mms_impl(box, 1e8, "laplace27e8_mms", "Far");
}

avec<double> laplace27_mms_solution(const Box& box) {
  avec<double> u(static_cast<std::size_t>(box.size()));
  const double hx = 1.0 / (box.nx + 1);
  const double hy = 1.0 / (box.ny + 1);
  const double hz = 1.0 / (box.nz + 1);
  const double pi = std::numbers::pi;
  for (int k = 0; k < box.nz; ++k) {
    const double sz = std::sin(pi * (k + 1) * hz);
    for (int j = 0; j < box.ny; ++j) {
      const double sy = std::sin(pi * (j + 1) * hy);
      for (int i = 0; i < box.nx; ++i) {
        const double sx = std::sin(pi * (i + 1) * hx);
        u[static_cast<std::size_t>(box.idx(i, j, k))] = sx * sy * sz;
      }
    }
  }
  return u;
}

}  // namespace smg
