// Batched many-RHS PCG: the throughput-mode driver (ISSUE 6 tentpole).
//
// solve_many() runs one lockstep preconditioned-CG recurrence over all k
// columns of a right-hand-side panel.  Every matrix-shaped operation — the
// operator SpMV, every smoothing sweep, every transfer inside the MG
// preconditioner — streams its matrix ONCE for all k columns (the panel
// kernels of kernels/ and core/transfer.hpp), which is where the
// throughput win comes from: on a memory-bound machine the matrix bytes
// amortize over k solves (perfmodel/bytes.hpp *_many models).
//
// Per-column semantics are EXACTLY the single-RHS pcg() of solvers/cg.cpp:
//   * each column carries its own alpha/beta/rnorm recurrence scalars,
//     convergence target, history, and status;
//   * reductions are computed per column on the extracted contiguous
//     column with the same dot/nrm2 (or dot_deterministic/
//     nrm2_deterministic) the single solver uses, so the arithmetic is
//     bitwise identical — including under deterministic_reductions;
//   * a column that converges (or breaks down) FREEZES: the masked panel
//     updates (kernels/blas1.hpp axpy_cols/xpay_cols) skip it entirely and
//     its x never moves again, while the remaining columns keep iterating.
// Consequently a panel of k copies of one RHS reproduces the single-RHS
// convergence history bitwise in every column (tests/solvers/
// test_solve_many.cpp), and distinct RHS columns each behave as if solved
// alone — just k of them per matrix pass.
//
// SolveManyOptions::rhs_batch (or the SMG_RHS_BATCH environment variable)
// splits wide panels into sequential batches of at most that many columns,
// bounding the panel working set; 0/unset solves all columns in one batch.
// Batching never changes any column's history.
//
// solve_many_async() runs the whole batched solve on a detached thread and
// returns a std::future, so a driver can overlap RHS production with the
// previous batch's solve.
#pragma once

#include <functional>
#include <future>
#include <vector>

#include "kernels/spmv.hpp"
#include "solvers/precond.hpp"
#include "solvers/solver_types.hpp"
#include "util/multivector.hpp"

namespace smg {

/// Y[c] = A X[c] for every panel column, one matrix pass.
template <class KT>
using LinOpMany =
    std::function<void(const MultiVector<KT>&, MultiVector<KT>&)>;

/// Panel operator streaming `A` once for all columns.  `A` must outlive
/// the returned op.
template <class KT>
LinOpMany<KT> make_spmv_many_op(const StructMat<KT>& A) {
  return [&A](const MultiVector<KT>& x, MultiVector<KT>& y) {
    spmv_many(A, x, y);
  };
}

struct SolveManyOptions {
  /// Per-column convergence criteria, iteration budget, reduction mode and
  /// self-healing knobs — the same meanings as the single-RHS solver.
  SolveOptions base;
  /// Columns per sequential batch; <= 0 consults SMG_RHS_BATCH, and when
  /// that is unset/invalid the whole panel solves in one batch.
  int rhs_batch = 0;
  /// Use the fused one-pass panel reductions (kernels/blas1.hpp dot_many)
  /// instead of the per-column extracted single-RHS reductions.  Still
  /// deterministic and thread-count invariant, but NOT bitwise identical
  /// to single-RHS histories (different reduction block geometry).
  bool fast_reductions = false;
};

struct SolveManyResult {
  /// Per-column outcome, exactly a single-RHS SolveResult per column
  /// (solve_seconds/precond_seconds are the shared batch totals).
  std::vector<SolveResult> columns;
  double solve_seconds = 0.0;    ///< wall time of the whole batched solve
  double precond_seconds = 0.0;  ///< preconditioner share (all columns)
  int batches = 1;               ///< sequential batches actually run

  bool all_converged() const noexcept {
    for (const SolveResult& r : columns) {
      if (!r.converged) {
        return false;
      }
    }
    return !columns.empty();
  }
};

/// Solve A X[c] = B[c] for every column.  X holds the initial guesses on
/// entry (padding columns of B and X must be zero, as MultiVector
/// guarantees after resize/insert_col).
template <class KT>
SolveManyResult solve_many(const LinOpMany<KT>& A, const MultiVector<KT>& B,
                           MultiVector<KT>& X, PrecondBase<KT>& M,
                           const SolveManyOptions& opts = {});

/// Asynchronous batched solve on a detached thread.  All referenced
/// objects (A, B, X, M) must stay alive and unused until the future is
/// ready; the preconditioner must not be shared with a concurrent solve.
template <class KT>
std::future<SolveManyResult> solve_many_async(const LinOpMany<KT>& A,
                                              const MultiVector<KT>& B,
                                              MultiVector<KT>& X,
                                              PrecondBase<KT>& M,
                                              const SolveManyOptions& opts = {});

extern template SolveManyResult solve_many<double>(
    const LinOpMany<double>&, const MultiVector<double>&,
    MultiVector<double>&, PrecondBase<double>&, const SolveManyOptions&);
extern template SolveManyResult solve_many<float>(
    const LinOpMany<float>&, const MultiVector<float>&, MultiVector<float>&,
    PrecondBase<float>&, const SolveManyOptions&);
extern template std::future<SolveManyResult> solve_many_async<double>(
    const LinOpMany<double>&, const MultiVector<double>&,
    MultiVector<double>&, PrecondBase<double>&, const SolveManyOptions&);
extern template std::future<SolveManyResult> solve_many_async<float>(
    const LinOpMany<float>&, const MultiVector<float>&, MultiVector<float>&,
    PrecondBase<float>&, const SolveManyOptions&);

}  // namespace smg
