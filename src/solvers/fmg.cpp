#include "solvers/fmg.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/blas1.hpp"
#include "obs/telemetry.hpp"
#include "util/aligned.hpp"
#include "util/timer.hpp"

namespace smg {

namespace {

/// Restore the caller's cycle shape on every exit path (fmg_solve flips it
/// twice: F for the bootstrap apply, V for polish).
template <class KT>
class ShapeGuard {
 public:
  explicit ShapeGuard(PrecondBase<KT>& m) : m_(m), prev_(m.cycle_shape()) {}
  ~ShapeGuard() { m_.set_cycle_shape(prev_); }
  ShapeGuard(const ShapeGuard&) = delete;
  ShapeGuard& operator=(const ShapeGuard&) = delete;

 private:
  PrecondBase<KT>& m_;
  CycleShape prev_;
};

}  // namespace

double fmg_disc_tolerance(const Box& box, int order) noexcept {
  const int nmax = std::max({box.nx, box.ny, box.nz, 1});
  const double h = 1.0 / (static_cast<double>(nmax) + 1.0);
  return std::pow(h, static_cast<double>(order));
}

template <class KT>
FmgResult fmg_solve(const LinOp<KT>& A, std::span<const KT> b,
                    std::span<KT> x, PrecondBase<KT>& M,
                    const FmgOptions<KT>& opts) {
  FmgResult res;
  Timer timer;
  M.reset_timing();

  const obs::InstallGuard obs_guard(M.telemetry());
  const obs::ScopedSpan solve_span(obs::Kind::Solve);
  const auto vnrm2 = [&opts](std::span<const KT> u) {
    return opts.deterministic_reductions ? nrm2_deterministic<KT>(u)
                                         : nrm2<KT>(u);
  };

  const std::size_t n = b.size();
  avec<KT> r(n), e(n), diff(n), good(n);

  const double bnorm = vnrm2(b);
  const double scale = bnorm > 0.0 ? bnorm : 1.0;
  const double target = opts.rtol * scale;
  const bool error_stop =
      !opts.u_exact.empty() && opts.u_exact.size() == n && opts.error_tol > 0;

  const ShapeGuard<KT> shape_guard(M);

  // Bootstrap: one F-cycle from a zero guess IS the solve candidate.
  M.set_cycle_shape(CycleShape::F);
  M.apply(b, x);
  M.set_cycle_shape(CycleShape::V);

  const auto measure = [&]() {
    const obs::ScopedSpan iter_span(obs::Kind::Iteration);
    A(x, {r.data(), n});
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = b[i] - r[i];
    }
    const double rnorm = vnrm2(std::span<const KT>{r.data(), n});
    if (opts.record_history) {
      res.history.push_back(rnorm / scale);
    }
    if (error_stop && std::isfinite(rnorm)) {
      for (std::size_t i = 0; i < n; ++i) {
        diff[i] = x[i] - opts.u_exact[i];
      }
      res.final_error = vnrm2(std::span<const KT>{diff.data(), n});
      if (opts.record_history) {
        res.error_history.push_back(res.final_error);
      }
    }
    return rnorm;
  };

  double rnorm = measure();
  for (int it = 0; it <= opts.max_polish; ++it) {
    if (!std::isfinite(rnorm)) {
      // Non-finite iterate (e.g. FP16 storage overflow mid-cycle): ask a
      // self-healing preconditioner to repair, rewind to the last finite
      // iterate (zero for a failed bootstrap), and retry the apply.
      if (M.self_healing() && res.heals < opts.heal_retries &&
          M.report_health(HealthEvent::NonFinite)) {
        ++res.heals;
        if (res.heals == 1 && res.polish_iters == 0) {
          // The bootstrap itself tripped: redo the whole F-cycle.
          set_zero(std::span<KT>{x.data(), n});
          M.set_cycle_shape(CycleShape::F);
          M.apply(b, x);
          M.set_cycle_shape(CycleShape::V);
        } else {
          copy_convert<KT, KT>({good.data(), n}, x);
        }
        rnorm = measure();
        continue;
      }
      res.breakdown = true;
      break;
    }
    if (error_stop && res.final_error >= 0.0 &&
        res.final_error <= opts.error_tol) {
      res.converged = true;
      break;
    }
    if (rnorm < target) {
      res.converged = true;
      break;
    }
    if (it == opts.max_polish) {
      break;
    }
    copy_convert<KT, KT>({x.data(), n}, {good.data(), n});
    M.apply({r.data(), n}, {e.data(), n});
    axpy<KT>(KT{1}, std::span<const KT>{e.data(), n}, x);
    ++res.polish_iters;
    rnorm = measure();
  }

  res.final_relres = rnorm / scale;
  res.solve_seconds = timer.seconds();
  res.precond_seconds = M.apply_seconds();
  return res;
}

template <class KT>
FmgResult fmg_solve_many(const LinOp<KT>& A, const MultiVector<KT>& B,
                         MultiVector<KT>& X, PrecondBase<KT>& M,
                         const FmgOptions<KT>& opts) {
  FmgResult res;
  Timer timer;
  M.reset_timing();

  const obs::InstallGuard obs_guard(M.telemetry());
  const obs::ScopedSpan solve_span(obs::Kind::Solve);
  const auto vnrm2 = [&opts](std::span<const KT> u) {
    return opts.deterministic_reductions ? nrm2_deterministic<KT>(u)
                                         : nrm2<KT>(u);
  };

  const std::size_t n = static_cast<std::size_t>(B.rows());
  const int k = B.cols();
  MultiVector<KT> R(static_cast<std::int64_t>(n), k);
  MultiVector<KT> E(static_cast<std::int64_t>(n), k);
  avec<KT> xc(n), bc(n), rc(n), diff(n);
  const bool error_stop =
      !opts.u_exact.empty() && opts.u_exact.size() == n && opts.error_tol > 0;

  std::vector<double> scales(static_cast<std::size_t>(k), 1.0);
  for (int c = 0; c < k; ++c) {
    B.extract_col(c, {bc.data(), n});
    const double bn = vnrm2({bc.data(), n});
    scales[static_cast<std::size_t>(c)] = bn > 0.0 ? bn : 1.0;
  }

  const ShapeGuard<KT> shape_guard(M);
  M.set_cycle_shape(CycleShape::F);
  M.apply_many(B, X);
  M.set_cycle_shape(CycleShape::V);

  // Residual/error measurement across all columns; the panel is polished in
  // lockstep (a column that already converged receives further corrections
  // — harmless, they only shrink its residual further).
  const auto measure = [&]() {
    const obs::ScopedSpan iter_span(obs::Kind::Iteration);
    double worst_rel = 0.0;
    double worst_err = error_stop ? 0.0 : -1.0;
    for (int c = 0; c < k; ++c) {
      X.extract_col(c, {xc.data(), n});
      B.extract_col(c, {bc.data(), n});
      A({xc.data(), n}, {rc.data(), n});
      for (std::size_t i = 0; i < n; ++i) {
        rc[i] = bc[i] - rc[i];
      }
      R.insert_col(c, {rc.data(), n});
      const double rel =
          vnrm2({rc.data(), n}) / scales[static_cast<std::size_t>(c)];
      worst_rel = std::max(worst_rel, rel);
      if (error_stop) {
        for (std::size_t i = 0; i < n; ++i) {
          diff[i] = xc[i] - opts.u_exact[i];
        }
        worst_err = std::max(worst_err, vnrm2({diff.data(), n}));
      }
    }
    res.final_relres = worst_rel;
    res.final_error = worst_err;
    if (opts.record_history) {
      res.history.push_back(worst_rel);
      if (error_stop) {
        res.error_history.push_back(worst_err);
      }
    }
    return worst_rel;
  };

  double rel = measure();
  for (int it = 0; it <= opts.max_polish; ++it) {
    if (!std::isfinite(rel)) {
      res.breakdown = true;
      break;
    }
    if ((error_stop && res.final_error >= 0.0 &&
         res.final_error <= opts.error_tol) ||
        rel < opts.rtol) {
      res.converged = true;
      break;
    }
    if (it == opts.max_polish) {
      break;
    }
    M.apply_many(R, E);
    for (int c = 0; c < k; ++c) {
      X.extract_col(c, {xc.data(), n});
      E.extract_col(c, {rc.data(), n});
      axpy<KT>(KT{1}, std::span<const KT>{rc.data(), n}, {xc.data(), n});
      X.insert_col(c, {xc.data(), n});
    }
    ++res.polish_iters;
    rel = measure();
  }

  res.solve_seconds = timer.seconds();
  res.precond_seconds = M.apply_seconds();
  return res;
}

template FmgResult fmg_solve<double>(const LinOp<double>&,
                                     std::span<const double>,
                                     std::span<double>, PrecondBase<double>&,
                                     const FmgOptions<double>&);
template FmgResult fmg_solve<float>(const LinOp<float>&,
                                    std::span<const float>, std::span<float>,
                                    PrecondBase<float>&,
                                    const FmgOptions<float>&);
template FmgResult fmg_solve_many<double>(const LinOp<double>&,
                                          const MultiVector<double>&,
                                          MultiVector<double>&,
                                          PrecondBase<double>&,
                                          const FmgOptions<double>&);
template FmgResult fmg_solve_many<float>(const LinOp<float>&,
                                         const MultiVector<float>&,
                                         MultiVector<float>&,
                                         PrecondBase<float>&,
                                         const FmgOptions<float>&);

}  // namespace smg
