#include "solvers/solve_many.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "kernels/blas1.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "util/common.hpp"
#include "util/timer.hpp"

namespace smg {

namespace {

// One lockstep batched PCG over every column of B/X.  Mirrors pcg() of
// cg.cpp step for step; each column's scalars, updates and reductions are
// the single solver's, computed through masked panel kernels so the
// matrix-shaped work streams once per iteration for all active columns.
template <class KT>
std::vector<SolveResult> batched_pcg(const LinOpMany<KT>& A,
                                     const MultiVector<KT>& B,
                                     MultiVector<KT>& X, PrecondBase<KT>& M,
                                     const SolveManyOptions& mopts,
                                     std::uint64_t first_request) {
  const SolveOptions& opts = mopts.base;
  const int k = B.cols();
  const std::int64_t rows = B.rows();
  const std::size_t n = static_cast<std::size_t>(rows);
  std::vector<SolveResult> res(static_cast<std::size_t>(k));
  M.reset_timing();

  // One consecutive request ID per column; the batch's spans are tagged
  // with the first so a trace filter on any column's ID finds its batch.
  for (int c = 0; c < k; ++c) {
    res[static_cast<std::size_t>(c)].request_id =
        first_request + static_cast<std::uint64_t>(c);
  }
  const obs::RequestScope req_scope(first_request);

  const obs::InstallGuard obs_guard(M.telemetry());
  if (obs::Telemetry* t = obs::current()) {
    for (int c = 0; c < k; ++c) {
      t->note_request(first_request + static_cast<std::uint64_t>(c));
    }
  }
  const obs::ScopedSpan solve_span(obs::Kind::Solve);

  // Per-column reductions on extracted contiguous columns: the extracted
  // column holds the same values in the same order as the single solver's
  // vector, so dot/nrm2 (and their deterministic variants) return bitwise
  // identical scalars.  All columns are peeled in ONE row-major pass over
  // the panel — a per-column strided gather fetches a full cache line per
  // element and would re-stream the whole panel once per column.
  avec<KT> colsa(n * static_cast<std::size_t>(k)),
      colsb(n * static_cast<std::size_t>(k));
  const auto extract_all = [&](const MultiVector<KT>& V, KT* SMG_RESTRICT dst) {
    const KT* SMG_RESTRICT s = V.data();
    const std::size_t kpv = static_cast<std::size_t>(V.padded_cols());
    for (std::size_t r = 0; r < n; ++r) {
      const KT* SMG_RESTRICT row = s + r * kpv;
      for (int c = 0; c < k; ++c) {
        dst[static_cast<std::size_t>(c) * n + r] = row[c];
      }
    }
  };
  const auto col_nrm2 = [&](const KT* col) {
    return opts.deterministic_reductions
               ? nrm2_deterministic<KT>(std::span<const KT>{col, n})
               : nrm2<KT>(std::span<const KT>{col, n});
  };
  const auto col_dot = [&](const KT* cu, const KT* cv) {
    return opts.deterministic_reductions
               ? dot_deterministic<KT>(std::span<const KT>{cu, n},
                                       std::span<const KT>{cv, n})
               : dot<KT>(std::span<const KT>{cu, n},
                         std::span<const KT>{cv, n});
  };

  std::vector<unsigned char> active(static_cast<std::size_t>(k), 1);
  const auto any_active = [&] {
    for (int c = 0; c < k; ++c) {
      if (active[static_cast<std::size_t>(c)]) {
        return true;
      }
    }
    return false;
  };

  std::vector<double> redbuf(static_cast<std::size_t>(k));
  // Fill `out[c]` for active columns with ||V[c]|| / <U[c],V[c]>.  The
  // fast path runs the fused one-pass panel reduction for all columns at
  // once; the default path reproduces the single solver bitwise.
  const auto batch_nrm2 = [&](const MultiVector<KT>& V,
                              std::vector<double>& out) {
    if (mopts.fast_reductions) {
      nrm2_many(V, std::span<double>{redbuf.data(), redbuf.size()});
    } else {
      extract_all(V, colsa.data());
    }
    for (int c = 0; c < k; ++c) {
      const auto cc = static_cast<std::size_t>(c);
      if (active[cc]) {
        out[cc] = mopts.fast_reductions
                      ? redbuf[cc]
                      : col_nrm2(colsa.data() + static_cast<std::size_t>(c) * n);
      }
    }
  };
  const auto batch_dot = [&](const MultiVector<KT>& U, const MultiVector<KT>& V,
                             std::vector<double>& out) {
    if (mopts.fast_reductions) {
      dot_many(U, V, std::span<double>{redbuf.data(), redbuf.size()});
    } else {
      extract_all(U, colsa.data());
      extract_all(V, colsb.data());
    }
    for (int c = 0; c < k; ++c) {
      const auto cc = static_cast<std::size_t>(c);
      if (active[cc]) {
        out[cc] = mopts.fast_reductions
                      ? redbuf[cc]
                      : col_dot(colsa.data() + static_cast<std::size_t>(c) * n,
                                colsb.data() + static_cast<std::size_t>(c) * n);
      }
    }
  };

  MultiVector<KT> R(rows, k), Z(rows, k), P(rows, k), AP(rows, k);
  const std::size_t nelems = R.size();
  const int kp = R.padded_cols();

  const auto copy_panel = [nelems](const MultiVector<KT>& src,
                                   MultiVector<KT>& dst) {
    const KT* SMG_RESTRICT s = src.data();
    KT* SMG_RESTRICT d = dst.data();
    for (std::size_t i = 0; i < nelems; ++i) {
      d[i] = s[i];
    }
  };
  // Sanitize a broken-down column so later panel sweeps (which compute
  // every column, frozen or not) keep streaming finite data.
  const auto zero_col = [&](MultiVector<KT>& V, int c) {
    KT* d = V.data();
    for (std::size_t r = 0; r < n; ++r) {
      d[r * static_cast<std::size_t>(kp) + static_cast<std::size_t>(c)] =
          KT{0};
    }
  };
  const auto freeze_breakdown = [&](int c) {
    res[static_cast<std::size_t>(c)].breakdown = true;
    active[static_cast<std::size_t>(c)] = 0;
    zero_col(R, c);
    zero_col(P, c);
  };

  // r = b - A x (elementwise over the whole panel: padding 0 - 0 = +0).
  A(X, AP);
  {
    const KT* SMG_RESTRICT bp = B.data();
    const KT* SMG_RESTRICT app = AP.data();
    KT* SMG_RESTRICT rp = R.data();
    for (std::size_t i = 0; i < nelems; ++i) {
      rp[i] = bp[i] - app[i];
    }
  }

  std::vector<double> bnorm(static_cast<std::size_t>(k)),
      rnorm(static_cast<std::size_t>(k)), rz(static_cast<std::size_t>(k)),
      target(static_cast<std::size_t>(k)), pap(static_cast<std::size_t>(k)),
      rz_new(static_cast<std::size_t>(k));
  batch_nrm2(B, bnorm);
  for (int c = 0; c < k; ++c) {
    const auto cc = static_cast<std::size_t>(c);
    target[cc] = opts.rtol * (bnorm[cc] > 0.0 ? bnorm[cc] : 1.0);
  }
  batch_nrm2(R, rnorm);
  if (opts.record_history) {
    for (int c = 0; c < k; ++c) {
      const auto cc = static_cast<std::size_t>(c);
      res[cc].history.push_back(rnorm[cc] /
                                (bnorm[cc] > 0.0 ? bnorm[cc] : 1.0));
    }
  }

  M.apply_many(R, Z);
  copy_panel(Z, P);
  batch_dot(R, Z, rz);

  // Self-healing bookkeeping, panel-wide: one repair budget for the whole
  // batch (the preconditioner is shared state; one repair fixes every
  // column's preconditioner at once).
  const bool healing = M.self_healing();
  int heals_left = healing ? opts.heal_retries : 0;
  MultiVector<KT> Xgood;
  if (healing) {
    Xgood = X;
  }
  std::vector<double> stag_ref = rnorm;
  std::vector<int> stag_count(static_cast<std::size_t>(k), 0);
  bool stag_active = healing && opts.stagnation_window > 0;

  // Panel recover: restart every active column's recurrence from the last
  // finite iterate, exactly the single solver's recover but over the
  // panel.  Columns whose recomputed scalars are still non-finite break
  // down individually.
  const auto recover = [&](HealthEvent e) {
    if (heals_left <= 0 || !M.report_health(e)) {
      return false;
    }
    --heals_left;
    if (e == HealthEvent::NonFinite) {
      copy_panel(Xgood, X);
    }
    A(X, AP);
    {
      const KT* SMG_RESTRICT bp = B.data();
      const KT* SMG_RESTRICT app = AP.data();
      KT* SMG_RESTRICT rp = R.data();
      for (std::size_t i = 0; i < nelems; ++i) {
        rp[i] = bp[i] - app[i];
      }
    }
    batch_nrm2(R, rnorm);
    M.apply_many(R, Z);
    copy_panel(Z, P);
    batch_dot(R, Z, rz);
    for (int c = 0; c < k; ++c) {
      const auto cc = static_cast<std::size_t>(c);
      if (!active[cc]) {
        continue;
      }
      ++res[cc].heals;
      if (!std::isfinite(rnorm[cc]) || !std::isfinite(rz[cc])) {
        freeze_breakdown(c);
        continue;
      }
      stag_ref[cc] = rnorm[cc];
      stag_count[cc] = 0;
    }
    return any_active();
  };

  std::vector<KT> alpha_kt(static_cast<std::size_t>(k), KT{0}),
      negalpha_kt(static_cast<std::size_t>(k), KT{0}),
      beta_kt(static_cast<std::size_t>(k), KT{0});

  for (int it = 0; it < opts.max_iters; ++it) {
    bool nonfinite = false;
    for (int c = 0; c < k; ++c) {
      const auto cc = static_cast<std::size_t>(c);
      if (active[cc] &&
          (!std::isfinite(rnorm[cc]) || !std::isfinite(rz[cc]))) {
        nonfinite = true;
      }
    }
    if (nonfinite) {
      if (recover(HealthEvent::NonFinite)) {
        continue;
      }
      for (int c = 0; c < k; ++c) {
        const auto cc = static_cast<std::size_t>(c);
        if (active[cc] &&
            (!std::isfinite(rnorm[cc]) || !std::isfinite(rz[cc]))) {
          freeze_breakdown(c);
        }
      }
    }
    for (int c = 0; c < k; ++c) {
      const auto cc = static_cast<std::size_t>(c);
      if (active[cc] && rnorm[cc] < target[cc]) {
        res[cc].converged = true;
        active[cc] = 0;
      }
    }
    if (!any_active()) {
      break;
    }
    if (healing) {
      copy_panel(X, Xgood);
    }
    const obs::ScopedSpan iter_span(obs::Kind::Iteration);
    A(P, AP);
    batch_dot(P, AP, pap);
    {
      bool pap_nonfinite = false;
      for (int c = 0; c < k; ++c) {
        const auto cc = static_cast<std::size_t>(c);
        if (active[cc] && !std::isfinite(pap[cc])) {
          pap_nonfinite = true;
        }
      }
      if (pap_nonfinite && recover(HealthEvent::NonFinite)) {
        continue;
      }
    }
    for (int c = 0; c < k; ++c) {
      const auto cc = static_cast<std::size_t>(c);
      if (!active[cc]) {
        continue;
      }
      if (!std::isfinite(pap[cc])) {
        freeze_breakdown(c);
      } else if (pap[cc] == 0.0) {
        // Exact Krylov breakdown above tolerance: stop this column, not a
        // numerical failure (mirrors the single solver).
        active[cc] = 0;
      }
    }
    if (!any_active()) {
      break;
    }

    for (int c = 0; c < k; ++c) {
      const auto cc = static_cast<std::size_t>(c);
      const double alpha = active[cc] ? rz[cc] / pap[cc] : 0.0;
      alpha_kt[cc] = static_cast<KT>(alpha);
      negalpha_kt[cc] = static_cast<KT>(-alpha);
    }
    axpy_cols<KT>(std::span<const KT>{alpha_kt.data(), alpha_kt.size()}, P, X,
                  active.data());
    axpy_cols<KT>(std::span<const KT>{negalpha_kt.data(), negalpha_kt.size()},
                  AP, R, active.data());

    batch_nrm2(R, rnorm);
    for (int c = 0; c < k; ++c) {
      const auto cc = static_cast<std::size_t>(c);
      if (!active[cc]) {
        continue;
      }
      ++res[cc].iters;
      if (opts.record_history) {
        res[cc].history.push_back(rnorm[cc] /
                                  (bnorm[cc] > 0.0 ? bnorm[cc] : 1.0));
      }
      if (rnorm[cc] < target[cc]) {
        res[cc].converged = true;
        active[cc] = 0;
      }
    }
    if (stag_active) {
      bool stagnated = false;
      for (int c = 0; c < k; ++c) {
        const auto cc = static_cast<std::size_t>(c);
        if (!active[cc] || !std::isfinite(rnorm[cc])) {
          continue;
        }
        if (rnorm[cc] <= opts.stagnation_factor * stag_ref[cc]) {
          stag_ref[cc] = rnorm[cc];
          stag_count[cc] = 0;
        } else if (++stag_count[cc] >= opts.stagnation_window) {
          stagnated = true;
        }
      }
      if (stagnated) {
        if (recover(HealthEvent::Stagnation)) {
          continue;
        }
        stag_active = false;  // nothing left to repair; stop re-reporting
      }
    }
    if (!any_active()) {
      break;
    }

    M.apply_many(R, Z);
    batch_dot(R, Z, rz_new);
    for (int c = 0; c < k; ++c) {
      const auto cc = static_cast<std::size_t>(c);
      if (active[cc]) {
        beta_kt[cc] = static_cast<KT>(rz_new[cc] / rz[cc]);
        rz[cc] = rz_new[cc];
      } else {
        beta_kt[cc] = KT{0};
      }
    }
    xpay_cols<KT>(Z, std::span<const KT>{beta_kt.data(), beta_kt.size()}, P,
                  active.data());
  }

  for (int c = 0; c < k; ++c) {
    const auto cc = static_cast<std::size_t>(c);
    res[cc].final_relres =
        rnorm[cc] / (bnorm[cc] > 0.0 ? bnorm[cc] : 1.0);
    if (!std::isfinite(res[cc].final_relres)) {
      res[cc].breakdown = true;
    }
  }
  return res;
}

// Resolve the effective batch width: explicit option, else SMG_RHS_BATCH,
// else the whole panel.
int effective_batch(int rhs_batch, int k) {
  int batch = rhs_batch;
  if (batch <= 0) {
    batch = k;
    if (const char* env = std::getenv("SMG_RHS_BATCH");
        env != nullptr && *env != '\0') {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && v > 0) {
        batch = static_cast<int>(std::min<long>(v, k));
      }
    }
  }
  return std::min(batch, k);
}

}  // namespace

template <class KT>
SolveManyResult solve_many(const LinOpMany<KT>& A, const MultiVector<KT>& B,
                           MultiVector<KT>& X, PrecondBase<KT>& M,
                           const SolveManyOptions& opts) {
  SMG_CHECK(B.rows() == X.rows() && B.cols() == X.cols(),
            "solve_many: B/X shape mismatch");
  SolveManyResult out;
  const int k = B.cols();
  if (k == 0 || B.rows() == 0) {
    return out;
  }
  Timer timer;
  const int batch = effective_batch(opts.rhs_batch, k);
  // Reserve one request ID per column up front (contiguous across
  // batches); an explicit base request_id pins the first column's ID.
  const std::uint64_t first_request =
      opts.base.request_id != 0
          ? opts.base.request_id
          : obs::acquire_request_ids(static_cast<std::uint64_t>(k));
  // Per-batch latency: each column observes its own batch's wall time,
  // the honest per-solve latency of the lockstep formulation.
  const auto record_batch = [](std::span<const SolveResult> cols,
                               double seconds) {
    if (!obs::metrics_enabled()) {
      return;
    }
    for (const SolveResult& r : cols) {
      obs::record_solve_metrics(
          "solve_many", seconds, r.iters,
          obs::solve_status_label(r.converged, r.breakdown), r.heals);
    }
  };
  if (batch >= k) {
    out.columns = batched_pcg(A, B, X, M, opts, first_request);
    out.precond_seconds = M.apply_seconds();
    out.batches = 1;
    record_batch(out.columns, timer.seconds());
  } else {
    const std::int64_t rows = B.rows();
    const std::size_t n = static_cast<std::size_t>(rows);
    avec<KT> scratch(n);
    const std::span<KT> ss{scratch.data(), n};
    out.batches = 0;
    for (int c0 = 0; c0 < k; c0 += batch) {
      const int bc = std::min(batch, k - c0);
      Timer batch_timer;
      MultiVector<KT> Bc(rows, bc), Xc(rows, bc);
      for (int c = 0; c < bc; ++c) {
        B.extract_col(c0 + c, ss);
        Bc.insert_col(c, std::span<const KT>{scratch.data(), n});
        X.extract_col(c0 + c, ss);
        Xc.insert_col(c, std::span<const KT>{scratch.data(), n});
      }
      std::vector<SolveResult> part = batched_pcg(
          A, Bc, Xc, M, opts,
          first_request + static_cast<std::uint64_t>(c0));
      record_batch(part, batch_timer.seconds());
      for (int c = 0; c < bc; ++c) {
        Xc.extract_col(c, ss);
        X.insert_col(c0 + c, std::span<const KT>{scratch.data(), n});
      }
      out.precond_seconds += M.apply_seconds();
      for (SolveResult& r : part) {
        out.columns.push_back(std::move(r));
      }
      ++out.batches;
    }
  }
  out.solve_seconds = timer.seconds();
  // Per-column timings are the shared batch totals: wall time and
  // preconditioner share are properties of the batched solve, not
  // attributable to one column.
  for (SolveResult& r : out.columns) {
    r.solve_seconds = out.solve_seconds;
    r.precond_seconds = out.precond_seconds;
  }
  return out;
}

template <class KT>
std::future<SolveManyResult> solve_many_async(const LinOpMany<KT>& A,
                                              const MultiVector<KT>& B,
                                              MultiVector<KT>& X,
                                              PrecondBase<KT>& M,
                                              const SolveManyOptions& opts) {
  return std::async(std::launch::async, [&A, &B, &X, &M, opts] {
    return solve_many<KT>(A, B, X, M, opts);
  });
}

template SolveManyResult solve_many<double>(const LinOpMany<double>&,
                                            const MultiVector<double>&,
                                            MultiVector<double>&,
                                            PrecondBase<double>&,
                                            const SolveManyOptions&);
template SolveManyResult solve_many<float>(const LinOpMany<float>&,
                                           const MultiVector<float>&,
                                           MultiVector<float>&,
                                           PrecondBase<float>&,
                                           const SolveManyOptions&);
template std::future<SolveManyResult> solve_many_async<double>(
    const LinOpMany<double>&, const MultiVector<double>&,
    MultiVector<double>&, PrecondBase<double>&, const SolveManyOptions&);
template std::future<SolveManyResult> solve_many_async<float>(
    const LinOpMany<float>&, const MultiVector<float>&, MultiVector<float>&,
    PrecondBase<float>&, const SolveManyOptions&);

}  // namespace smg
