// FMG near-direct solve driver (docs/CYCLE_SHAPES.md): one F-cycle apply
// of the multigrid preconditioner as the solver, plus optional V-cycle
// polish iterations.
//
// The F-cycle bootstraps every level's initial guess by FMG interpolation
// of the next-coarser solution, so a single apply lands within a small
// factor of discretization error — the classical FMG property.  fmg_solve
// makes that a first-class solve: it flips the preconditioner to
// CycleShape::F for the bootstrap apply, back to V for the polish
// corrections (x += M(b - A x)), and restores the caller's shape on exit.
//
// Stopping is either the usual relative-residual test or — when the caller
// provides manufactured-solution samples — the discretization-error test
// ||x - u*||_2 <= error_tol, which is the honest "did one F-cycle reach
// discretization error" question the bench suite gates on.
#pragma once

#include <span>
#include <vector>

#include "grid/box.hpp"
#include "solvers/precond.hpp"
#include "solvers/solver_types.hpp"
#include "util/multivector.hpp"

namespace smg {

template <class KT>
struct FmgOptions {
  /// V-cycle polish corrections after the F-cycle bootstrap (0: pure FMG).
  int max_polish = 8;
  /// Residual stop: ||b - A x||_2 / ||b||_2 < rtol.
  double rtol = 1e-10;
  /// Discretization-error stop: ||x - u_exact||_2 <= error_tol.  Active
  /// only when u_exact is non-empty and error_tol > 0; in the panel driver
  /// every column is measured against the same u_exact.
  double error_tol = 0.0;
  std::span<const KT> u_exact{};
  bool record_history = true;
  /// Fixed-blocking pairwise reductions (SolveOptions semantics).
  bool deterministic_reductions = false;
  /// Max NonFinite events reported to a self-healing preconditioner; each
  /// successful repair retries the failed apply from the last good iterate.
  int heal_retries = 4;
};

struct FmgResult {
  bool converged = false;
  bool breakdown = false;  ///< non-finite residual with no repair available
  int polish_iters = 0;    ///< V-cycle corrections actually applied
  int heals = 0;
  double final_relres = 0.0;
  /// ||x - u_exact||_2 after the last accepted iterate (-1 when no u_exact).
  double final_error = -1.0;
  std::vector<double> history;        ///< relres after bootstrap + polishes
  std::vector<double> error_history;  ///< matching ||x - u_exact||_2 values
  double solve_seconds = 0.0;
  double precond_seconds = 0.0;

  std::string status() const {
    if (breakdown) {
      return "breakdown";
    }
    return converged ? "converged" : "max-polish";
  }
};

/// x = FMG(b): one F-cycle from a zero guess, then up to max_polish V-cycle
/// corrections.  M must reshape (MGPrecondAdapter); a preconditioner that
/// refuses set_cycle_shape still solves, it just runs its native shape.
template <class KT>
FmgResult fmg_solve(const LinOp<KT>& A, std::span<const KT> b,
                    std::span<KT> x, PrecondBase<KT>& M,
                    const FmgOptions<KT>& opts = {});

/// Panel variant: X[c] = FMG(B[c]) for every column through apply_many (one
/// pass over each level's stored matrix per cycle for all columns).  The
/// result aggregates columns: converged when every column passed its stop,
/// final_relres/final_error are the column maxima.
template <class KT>
FmgResult fmg_solve_many(const LinOp<KT>& A, const MultiVector<KT>& B,
                         MultiVector<KT>& X, PrecondBase<KT>& M,
                         const FmgOptions<KT>& opts = {});

/// Discretization-error scale of a second-order stencil on `box`: h^order
/// with h = 1/(max dim + 1) (the MMS grids are unit cubes with Dirichlet
/// boundaries one spacing outside).  Callers multiply by their measured
/// ||u_h - u*|| constant; the bench suites compare against the exact
/// discrete solution instead and use a dimensionless ratio.
double fmg_disc_tolerance(const Box& box, int order = 2) noexcept;

extern template FmgResult fmg_solve<double>(const LinOp<double>&,
                                            std::span<const double>,
                                            std::span<double>,
                                            PrecondBase<double>&,
                                            const FmgOptions<double>&);
extern template FmgResult fmg_solve<float>(const LinOp<float>&,
                                           std::span<const float>,
                                           std::span<float>,
                                           PrecondBase<float>&,
                                           const FmgOptions<float>&);
extern template FmgResult fmg_solve_many<double>(const LinOp<double>&,
                                                 const MultiVector<double>&,
                                                 MultiVector<double>&,
                                                 PrecondBase<double>&,
                                                 const FmgOptions<double>&);
extern template FmgResult fmg_solve_many<float>(const LinOp<float>&,
                                                const MultiVector<float>&,
                                                MultiVector<float>&,
                                                PrecondBase<float>&,
                                                const FmgOptions<float>&);

}  // namespace smg
