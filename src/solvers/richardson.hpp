// Stationary (Richardson) iteration — Alg. 2 of the paper verbatim:
//   r = b - A x;  e = M(r);  x += e.
#pragma once

#include <span>

#include "solvers/precond.hpp"
#include "solvers/solver_types.hpp"

namespace smg {

template <class KT>
SolveResult richardson(const LinOp<KT>& A, std::span<const KT> b,
                       std::span<KT> x, PrecondBase<KT>& M,
                       const SolveOptions& opts = {});

extern template SolveResult richardson<double>(const LinOp<double>&,
                                               std::span<const double>,
                                               std::span<double>,
                                               PrecondBase<double>&,
                                               const SolveOptions&);
extern template SolveResult richardson<float>(const LinOp<float>&,
                                              std::span<const float>,
                                              std::span<float>,
                                              PrecondBase<float>&,
                                              const SolveOptions&);

}  // namespace smg
