// Right-preconditioned restarted GMRES(m) in iterative precision KT.
//
// Right preconditioning keeps the Arnoldi residual equal to the true
// residual of A x = b, so the recorded descent curves (Fig. 6) are directly
// comparable across preconditioner precisions.
#pragma once

#include <span>

#include "solvers/precond.hpp"
#include "solvers/solver_types.hpp"

namespace smg {

/// Solve A x = b with GMRES(opts.restart).  x holds the initial guess.
template <class KT>
SolveResult pgmres(const LinOp<KT>& A, std::span<const KT> b, std::span<KT> x,
                   PrecondBase<KT>& M, const SolveOptions& opts = {});

extern template SolveResult pgmres<double>(const LinOp<double>&,
                                           std::span<const double>,
                                           std::span<double>,
                                           PrecondBase<double>&,
                                           const SolveOptions&);
extern template SolveResult pgmres<float>(const LinOp<float>&,
                                          std::span<const float>,
                                          std::span<float>,
                                          PrecondBase<float>&,
                                          const SolveOptions&);

}  // namespace smg
