#include "solvers/gmres.hpp"

#include <cmath>
#include <vector>

#include "kernels/blas1.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "util/aligned.hpp"
#include "util/timer.hpp"

namespace smg {

template <class KT>
SolveResult pgmres(const LinOp<KT>& A, std::span<const KT> b, std::span<KT> x,
                   PrecondBase<KT>& M, const SolveOptions& opts) {
  SolveResult res;
  Timer timer;
  M.reset_timing();

  res.request_id = opts.request_id != 0 ? opts.request_id
                                        : obs::acquire_request_ids(1);
  const obs::RequestScope req_scope(res.request_id);

  const obs::InstallGuard obs_guard(M.telemetry());
  if (obs::Telemetry* t = obs::current()) {
    t->note_request(res.request_id);
  }
  const obs::ScopedSpan solve_span(obs::Kind::Solve);
  const auto vdot = [&opts](std::span<const KT> u, std::span<const KT> v) {
    return opts.deterministic_reductions ? dot_deterministic<KT>(u, v)
                                         : dot<KT>(u, v);
  };
  const auto vnrm2 = [&opts](std::span<const KT> u) {
    return opts.deterministic_reductions ? nrm2_deterministic<KT>(u)
                                         : nrm2<KT>(u);
  };

  const std::size_t n = b.size();
  const int m = opts.restart;

  std::vector<avec<KT>> V(static_cast<std::size_t>(m) + 1);
  for (auto& v : V) {
    v.assign(n, KT{0});
  }
  avec<KT> w(n), z(n);
  // Hessenberg in column-major: H[(j)*(m+1) + i].
  std::vector<double> H(static_cast<std::size_t>(m + 1) * m, 0.0);
  std::vector<double> cs(static_cast<std::size_t>(m), 0.0);
  std::vector<double> sn(static_cast<std::size_t>(m), 0.0);
  std::vector<double> g(static_cast<std::size_t>(m) + 1, 0.0);

  const double bnorm = vnrm2(b);
  const double scale = bnorm > 0.0 ? bnorm : 1.0;
  const double target = opts.rtol * scale;

  // Initial residual into V[0].
  A(x, {w.data(), n});
  for (std::size_t i = 0; i < n; ++i) {
    V[0][i] = b[i] - w[i];
  }
  double beta = vnrm2(std::span<const KT>{V[0].data(), n});
  if (opts.record_history) {
    res.history.push_back(beta / scale);
  }

  // Self-healing bookkeeping (inert — zero extra work and a bitwise
  // identical iteration stream — unless M can actually repair itself).
  const bool healing = M.self_healing();
  int heals_left = healing ? opts.heal_retries : 0;
  avec<KT> xgood;
  if (healing) {
    xgood.assign(x.begin(), x.end());
  }
  double stag_ref = beta;
  int stag_count = 0;
  bool stag_active = healing && opts.stagnation_window > 0;
  bool invariant = false;      ///< exact H[j+1,j] == 0 hit this cycle
  bool discard_cycle = false;  ///< mid-cycle repair: drop the partial basis

  // Recompute the true residual of the current x into V[0]/beta.
  const auto true_residual = [&] {
    A(x, {w.data(), n});
    for (std::size_t i = 0; i < n; ++i) {
      V[0][i] = b[i] - w[i];
    }
    beta = vnrm2(std::span<const KT>{V[0].data(), n});
  };

  while (res.iters < opts.max_iters) {
    if (!std::isfinite(beta)) {
      // The previous cycle's update (or the caller's initial data) is
      // poisoned.  With a self-healing preconditioner: repair, rewind to
      // the last finite iterate, restart.  Otherwise surface the breakdown.
      bool recovered = false;
      if (heals_left > 0 && M.report_health(HealthEvent::NonFinite)) {
        --heals_left;
        ++res.heals;
        for (std::size_t i = 0; i < n; ++i) {
          x[i] = xgood[i];
        }
        true_residual();
        stag_ref = beta;
        stag_count = 0;
        recovered = std::isfinite(beta);
      }
      if (!recovered) {
        res.breakdown = true;
        break;
      }
    }
    if (beta < target) {
      break;  // converged on the true residual
    }
    if (healing) {
      for (std::size_t i = 0; i < n; ++i) {
        xgood[i] = x[i];
      }
    }
    invariant = false;

    // Start (or restart) an Arnoldi cycle.
    scal<KT>(static_cast<KT>(1.0 / beta), {V[0].data(), n});
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int j = 0;
    bool stop = false;
    for (; j < m && res.iters < opts.max_iters && !stop; ++j) {
      const obs::ScopedSpan iter_span(obs::Kind::Iteration);
      // w = A M^{-1} v_j
      M.apply({V[static_cast<std::size_t>(j)].data(), n}, {z.data(), n});
      A({z.data(), n}, {w.data(), n});

      // Modified Gram-Schmidt.
      for (int i = 0; i <= j; ++i) {
        const double h =
            vdot(std::span<const KT>{w.data(), n},
                 std::span<const KT>{V[static_cast<std::size_t>(i)].data(),
                                     n});
        H[static_cast<std::size_t>(j) * (m + 1) + i] = h;
        axpy<KT>(static_cast<KT>(-h),
                 std::span<const KT>{V[static_cast<std::size_t>(i)].data(), n},
                 std::span<KT>{w.data(), n});
      }
      const double hlast = vnrm2(std::span<const KT>{w.data(), n});
      H[static_cast<std::size_t>(j) * (m + 1) + j + 1] = hlast;
      if (!std::isfinite(hlast)) {
        // Column j is poisoned; columns 0..j-1 are still a valid basis
        // (j is not incremented on this exit path).
        if (heals_left > 0 && M.report_health(HealthEvent::NonFinite)) {
          --heals_left;
          ++res.heals;
          discard_cycle = true;
        } else {
          res.breakdown = true;
        }
        stop = true;
        break;
      }
      if (hlast > 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
          V[static_cast<std::size_t>(j) + 1][i] =
              static_cast<KT>(static_cast<double>(w[i]) / hlast);
        }
      }

      // Apply the accumulated Givens rotations to the new column.
      double* col = H.data() + static_cast<std::size_t>(j) * (m + 1);
      for (int i = 0; i < j; ++i) {
        const double t = cs[static_cast<std::size_t>(i)] * col[i] +
                         sn[static_cast<std::size_t>(i)] * col[i + 1];
        col[i + 1] = -sn[static_cast<std::size_t>(i)] * col[i] +
                     cs[static_cast<std::size_t>(i)] * col[i + 1];
        col[i] = t;
      }
      // New rotation to zero col[j+1].
      const double denom = std::hypot(col[j], col[j + 1]);
      if (denom == 0.0) {
        cs[static_cast<std::size_t>(j)] = 1.0;
        sn[static_cast<std::size_t>(j)] = 0.0;
      } else {
        cs[static_cast<std::size_t>(j)] = col[j] / denom;
        sn[static_cast<std::size_t>(j)] = col[j + 1] / denom;
      }
      col[j] = denom;
      col[j + 1] = 0.0;
      const double gj = g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] = cs[static_cast<std::size_t>(j)] * gj;
      g[static_cast<std::size_t>(j) + 1] =
          -sn[static_cast<std::size_t>(j)] * gj;

      beta = std::abs(g[static_cast<std::size_t>(j) + 1]);
      ++res.iters;
      if (opts.record_history) {
        res.history.push_back(beta / scale);
      }
      if (beta < target || hlast == 0.0) {
        invariant = hlast == 0.0;
        stop = true;
        ++j;  // include this column in the solution update
        break;
      }
      if (stag_active) {
        if (beta <= opts.stagnation_factor * stag_ref) {
          stag_ref = beta;
          stag_count = 0;
        } else if (++stag_count >= opts.stagnation_window) {
          if (heals_left > 0 && M.report_health(HealthEvent::Stagnation)) {
            --heals_left;
            ++res.heals;
            stag_ref = beta;
            stag_count = 0;
            discard_cycle = true;
            stop = true;
            break;
          }
          stag_active = false;  // nothing left to repair; stop re-reporting
        }
      }
    }

    if (discard_cycle) {
      // The preconditioner repaired itself mid-cycle: the basis was built
      // against the old M, and x += M^{-1}(V y) would mix the two.  Drop
      // the partial cycle and restart from the unchanged (finite) x.
      discard_cycle = false;
      true_residual();
      continue;
    }

    // Solve the j x j triangular system and update x += M^{-1} (V y) — also
    // on a breakdown exit, where columns 0..j-1 are the finite prefix of the
    // basis: the returned x must reflect the progress actually made.
    if (j > 0) {
      std::vector<double> y(static_cast<std::size_t>(j), 0.0);
      for (int i = j - 1; i >= 0; --i) {
        double acc = g[static_cast<std::size_t>(i)];
        for (int kk = i + 1; kk < j; ++kk) {
          acc -= H[static_cast<std::size_t>(kk) * (m + 1) + i] *
                 y[static_cast<std::size_t>(kk)];
        }
        const double hii = H[static_cast<std::size_t>(i) * (m + 1) + i];
        y[static_cast<std::size_t>(i)] = hii != 0.0 ? acc / hii : 0.0;
      }
      set_zero(std::span<KT>{w.data(), n});
      for (int i = 0; i < j; ++i) {
        axpy<KT>(static_cast<KT>(y[static_cast<std::size_t>(i)]),
                 std::span<const KT>{V[static_cast<std::size_t>(i)].data(), n},
                 std::span<KT>{w.data(), n});
      }
      M.apply({w.data(), n}, {z.data(), n});
      axpy<KT>(KT{1}, std::span<const KT>{z.data(), n}, x);
    }

    // True residual for the next cycle and the final report — recomputed on
    // the breakdown paths too, so final_relres matches the returned x
    // instead of a stale recurrence estimate.
    true_residual();

    if (res.breakdown) {
      break;
    }
    if (invariant && !(beta < target)) {
      // Exact happy breakdown (H[j+1,j] == 0) that did not reach tolerance:
      // A M^{-1} maps the current Krylov space into itself, so this x is the
      // best this space offers and restarting from its residual cannot leave
      // the invariant subspace.  Surface it instead of stalling silently.
      res.breakdown = true;
      break;
    }
  }

  res.converged = std::isfinite(beta) && beta < target && !res.breakdown;
  res.final_relres = beta / scale;
  if (!std::isfinite(res.final_relres)) {
    res.breakdown = true;
  }
  res.solve_seconds = timer.seconds();
  res.precond_seconds = M.apply_seconds();
  obs::record_solve_metrics(
      "gmres", res.solve_seconds, res.iters,
      obs::solve_status_label(res.converged, res.breakdown), res.heals);
  return res;
}

template SolveResult pgmres<double>(const LinOp<double>&,
                                    std::span<const double>,
                                    std::span<double>, PrecondBase<double>&,
                                    const SolveOptions&);
template SolveResult pgmres<float>(const LinOp<float>&,
                                   std::span<const float>, std::span<float>,
                                   PrecondBase<float>&, const SolveOptions&);

}  // namespace smg
