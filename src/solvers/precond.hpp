// Preconditioner interface seen by the iterative (Krylov) solvers.
//
// KT is the iterative precision (Alg. 2's red).  The preconditioner
// internally runs at its own compute/storage precision; the interface is a
// plain residual -> error-correction map.
#pragma once

#include <span>

#include "util/common.hpp"

namespace smg::obs {
class Telemetry;
}  // namespace smg::obs

namespace smg {

template <class KT>
class PrecondBase {
 public:
  virtual ~PrecondBase() = default;

  /// e = M^{-1} r.
  virtual void apply(std::span<const KT> r, std::span<KT> e) = 0;

  /// Cumulative seconds spent inside apply() (preconditioner phase timing
  /// for the Fig. 8/9 breakdown).
  virtual double apply_seconds() const { return 0.0; }
  virtual void reset_timing() {}

  /// This preconditioner's telemetry ledger, or nullptr when it has none.
  /// Krylov solvers install it (obs::InstallGuard) for the duration of the
  /// solve so their solve/iteration/blas1 spans land in the same instance.
  virtual obs::Telemetry* telemetry() { return nullptr; }
};

/// No preconditioning: e = r.
template <class KT>
class IdentityPrecond final : public PrecondBase<KT> {
 public:
  void apply(std::span<const KT> r, std::span<KT> e) override {
    SMG_CHECK(r.size() == e.size(), "identity precond size mismatch");
    for (std::size_t i = 0; i < r.size(); ++i) {
      e[i] = r[i];
    }
  }
};

}  // namespace smg
