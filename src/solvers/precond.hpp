// Preconditioner interface seen by the iterative (Krylov) solvers.
//
// KT is the iterative precision (Alg. 2's red).  The preconditioner
// internally runs at its own compute/storage precision; the interface is a
// plain residual -> error-correction map.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "util/common.hpp"
#include "util/multivector.hpp"

namespace smg::obs {
class Telemetry;
}  // namespace smg::obs

namespace smg {

/// Runtime health signals a Krylov solver feeds back to a self-healing
/// preconditioner (the Guarded precision policy; core/autopilot.hpp).
enum class HealthEvent {
  NonFinite,   ///< NaN/Inf observed in the preconditioned residual
  Stagnation,  ///< relative residual stalled over the configured window
};

constexpr std::string_view to_string(HealthEvent e) noexcept {
  switch (e) {
    case HealthEvent::NonFinite:
      return "non-finite";
    case HealthEvent::Stagnation:
      return "stagnation";
  }
  return "?";
}

template <class KT>
class PrecondBase {
 public:
  virtual ~PrecondBase() = default;

  /// e = M^{-1} r.
  virtual void apply(std::span<const KT> r, std::span<KT> e) = 0;

  /// E[c] = M^{-1} R[c] for every column of a panel (throughput mode).
  /// The default peels the panel into columns and runs the single-vector
  /// apply per column — always correct, no amortization.  MGPrecondAdapter
  /// overrides it with the k-column V-cycle that streams each level's
  /// stored matrix once for all columns.  Implementations keep every
  /// column bitwise identical to a single-vector apply of that column.
  virtual void apply_many(const MultiVector<KT>& r, MultiVector<KT>& e) {
    SMG_CHECK(r.rows() == e.rows() && r.cols() == e.cols(),
              "precond apply_many shape mismatch");
    const std::size_t n = static_cast<std::size_t>(r.rows());
    std::vector<KT> rc(n), ec(n);
    for (int c = 0; c < r.cols(); ++c) {
      r.extract_col(c, {rc.data(), n});
      apply({rc.data(), n}, {ec.data(), n});
      e.insert_col(c, {ec.data(), n});
    }
  }

  /// Cumulative seconds spent inside apply() (preconditioner phase timing
  /// for the Fig. 8/9 breakdown).
  virtual double apply_seconds() const { return 0.0; }
  virtual void reset_timing() {}

  /// This preconditioner's telemetry ledger, or nullptr when it has none.
  /// Krylov solvers install it (obs::InstallGuard) for the duration of the
  /// solve so their solve/iteration/blas1 spans land in the same instance.
  virtual obs::Telemetry* telemetry() { return nullptr; }

  /// True when this preconditioner can repair itself in response to a health
  /// event (MGPrecondAdapter under PrecisionPolicy::Guarded).  Solvers only
  /// spend backup/retry bookkeeping on self-healing preconditioners, so the
  /// default-policy iteration stream stays bitwise identical.
  virtual bool self_healing() const { return false; }

  /// Report a health event.  Returns true when the preconditioner repaired
  /// itself (the caller should retry the failed step from its last good
  /// state); false when no repair is available and the failure is final.
  virtual bool report_health(HealthEvent) { return false; }

  /// Cycle shape the next apply() runs (fmg_solve flips F for the bootstrap
  /// apply and V for the polish iterations).  The default says V and
  /// refuses the override — only multigrid preconditioners reshape.
  virtual CycleShape cycle_shape() const { return CycleShape::V; }

  /// Override the cycle shape of subsequent applies; returns false when the
  /// preconditioner has no cycle to reshape (shape-agnostic callers can
  /// ignore the result — apply() stays correct either way).
  virtual bool set_cycle_shape(CycleShape) { return false; }
};

/// No preconditioning: e = r.
template <class KT>
class IdentityPrecond final : public PrecondBase<KT> {
 public:
  void apply(std::span<const KT> r, std::span<KT> e) override {
    SMG_CHECK(r.size() == e.size(), "identity precond size mismatch");
    for (std::size_t i = 0; i < r.size(); ++i) {
      e[i] = r[i];
    }
  }
};

}  // namespace smg
