// Preconditioned Conjugate Gradient in iterative precision KT.
//
// Nothing special happens here for FP16 — all paper optimizations live inside
// the preconditioner (Alg. 2): the solver merely truncates its residual on
// the way in and recovers the error correction on the way out, which the
// PrecondBase adapter performs.
#pragma once

#include <span>

#include "solvers/precond.hpp"
#include "solvers/solver_types.hpp"

namespace smg {

/// Solve A x = b with PCG.  x holds the initial guess on entry.
template <class KT>
SolveResult pcg(const LinOp<KT>& A, std::span<const KT> b, std::span<KT> x,
                PrecondBase<KT>& M, const SolveOptions& opts = {});

extern template SolveResult pcg<double>(const LinOp<double>&,
                                        std::span<const double>,
                                        std::span<double>,
                                        PrecondBase<double>&,
                                        const SolveOptions&);
extern template SolveResult pcg<float>(const LinOp<float>&,
                                       std::span<const float>,
                                       std::span<float>, PrecondBase<float>&,
                                       const SolveOptions&);

}  // namespace smg
