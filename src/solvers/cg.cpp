#include "solvers/cg.hpp"

#include <cmath>

#include "kernels/blas1.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "util/aligned.hpp"
#include "util/timer.hpp"

namespace smg {

template <class KT>
SolveResult pcg(const LinOp<KT>& A, std::span<const KT> b, std::span<KT> x,
                PrecondBase<KT>& M, const SolveOptions& opts) {
  SolveResult res;
  Timer timer;
  M.reset_timing();

  // Tag the solve with its request ID (assigned here unless the caller
  // reserved one) so trace events and metrics can single it out.
  res.request_id = opts.request_id != 0 ? opts.request_id
                                        : obs::acquire_request_ids(1);
  const obs::RequestScope req_scope(res.request_id);

  // Join the preconditioner's telemetry ledger (no-op when it has none)
  // so solver-side spans and the cycle's spans land in one instance.
  const obs::InstallGuard obs_guard(M.telemetry());
  if (obs::Telemetry* t = obs::current()) {
    t->note_request(res.request_id);
  }
  const obs::ScopedSpan solve_span(obs::Kind::Solve);
  const auto vdot = [&opts](std::span<const KT> u, std::span<const KT> v) {
    return opts.deterministic_reductions ? dot_deterministic<KT>(u, v)
                                         : dot<KT>(u, v);
  };
  const auto vnrm2 = [&opts](std::span<const KT> u) {
    return opts.deterministic_reductions ? nrm2_deterministic<KT>(u)
                                         : nrm2<KT>(u);
  };

  const std::size_t n = b.size();
  avec<KT> r(n), z(n), p(n), ap(n);
  std::span<KT> rs{r.data(), n}, zs{z.data(), n}, ps{p.data(), n},
      aps{ap.data(), n};

  // r = b - A x
  A(x, aps);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - ap[i];
  }

  const double bnorm = vnrm2(b);
  const double target = opts.rtol * (bnorm > 0.0 ? bnorm : 1.0);
  double rnorm = vnrm2(rs);
  if (opts.record_history) {
    res.history.push_back(rnorm / (bnorm > 0.0 ? bnorm : 1.0));
  }

  M.apply(rs, zs);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = z[i];
  }
  double rz = vdot(rs, zs);

  // Self-healing bookkeeping (inert — zero extra work and a bitwise
  // identical iteration stream — unless M can actually repair itself).
  const bool healing = M.self_healing();
  int heals_left = healing ? opts.heal_retries : 0;
  avec<KT> xgood;
  if (healing) {
    xgood.assign(x.begin(), x.end());
  }
  double stag_ref = rnorm;
  int stag_count = 0;
  bool stag_active = healing && opts.stagnation_window > 0;

  // Report a health event; on a successful repair restart the recurrence
  // from the last finite iterate (the Krylov directions predate the repaired
  // preconditioner and must be discarded).
  const auto recover = [&](HealthEvent e) {
    if (heals_left <= 0 || !M.report_health(e)) {
      return false;
    }
    --heals_left;
    ++res.heals;
    if (e == HealthEvent::NonFinite) {
      for (std::size_t i = 0; i < n; ++i) {
        x[i] = xgood[i];
      }
    }
    A(x, aps);
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = b[i] - ap[i];
    }
    rnorm = vnrm2(rs);
    if (!std::isfinite(rnorm)) {
      return false;
    }
    M.apply(rs, zs);
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = z[i];
    }
    rz = vdot(rs, zs);
    stag_ref = rnorm;
    stag_count = 0;
    return std::isfinite(rz);
  };

  for (int it = 0; it < opts.max_iters; ++it) {
    if (!std::isfinite(rnorm) || !std::isfinite(rz)) {
      if (recover(HealthEvent::NonFinite)) {
        continue;
      }
      res.breakdown = true;
      break;
    }
    if (rnorm < target) {
      res.converged = true;
      break;
    }
    if (healing) {
      for (std::size_t i = 0; i < n; ++i) {
        xgood[i] = x[i];
      }
    }
    const obs::ScopedSpan iter_span(obs::Kind::Iteration);
    A(ps, aps);
    const double pap = vdot(std::span<const KT>{p.data(), n},
                            std::span<const KT>{ap.data(), n});
    if (pap == 0.0 || !std::isfinite(pap)) {
      if (!std::isfinite(pap) && recover(HealthEvent::NonFinite)) {
        continue;
      }
      res.breakdown = !std::isfinite(pap);
      break;
    }
    const double alpha = rz / pap;
    axpy<KT>(static_cast<KT>(alpha), std::span<const KT>{p.data(), n}, x);
    axpy<KT>(static_cast<KT>(-alpha), std::span<const KT>{ap.data(), n}, rs);

    rnorm = vnrm2(rs);
    ++res.iters;
    if (opts.record_history) {
      res.history.push_back(rnorm / (bnorm > 0.0 ? bnorm : 1.0));
    }
    if (rnorm < target) {
      res.converged = true;
      break;
    }
    if (stag_active && std::isfinite(rnorm)) {
      if (rnorm <= opts.stagnation_factor * stag_ref) {
        stag_ref = rnorm;
        stag_count = 0;
      } else if (++stag_count >= opts.stagnation_window) {
        if (recover(HealthEvent::Stagnation)) {
          continue;
        }
        stag_active = false;  // nothing left to repair; stop re-reporting
      }
    }

    M.apply(rs, zs);
    const double rz_new = vdot(std::span<const KT>{r.data(), n},
                               std::span<const KT>{z.data(), n});
    const double beta = rz_new / rz;
    rz = rz_new;
    xpay<KT>(std::span<const KT>{z.data(), n}, static_cast<KT>(beta), ps);
  }

  res.final_relres = rnorm / (bnorm > 0.0 ? bnorm : 1.0);
  if (!std::isfinite(res.final_relres)) {
    res.breakdown = true;
  }
  res.solve_seconds = timer.seconds();
  res.precond_seconds = M.apply_seconds();
  obs::record_solve_metrics(
      "cg", res.solve_seconds, res.iters,
      obs::solve_status_label(res.converged, res.breakdown), res.heals);
  return res;
}

template SolveResult pcg<double>(const LinOp<double>&, std::span<const double>,
                                 std::span<double>, PrecondBase<double>&,
                                 const SolveOptions&);
template SolveResult pcg<float>(const LinOp<float>&, std::span<const float>,
                                std::span<float>, PrecondBase<float>&,
                                const SolveOptions&);

}  // namespace smg
