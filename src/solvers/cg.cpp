#include "solvers/cg.hpp"

#include <cmath>

#include "kernels/blas1.hpp"
#include "util/aligned.hpp"
#include "util/timer.hpp"

namespace smg {

template <class KT>
SolveResult pcg(const LinOp<KT>& A, std::span<const KT> b, std::span<KT> x,
                PrecondBase<KT>& M, const SolveOptions& opts) {
  SolveResult res;
  Timer timer;
  M.reset_timing();

  const std::size_t n = b.size();
  avec<KT> r(n), z(n), p(n), ap(n);
  std::span<KT> rs{r.data(), n}, zs{z.data(), n}, ps{p.data(), n},
      aps{ap.data(), n};

  // r = b - A x
  A(x, aps);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - ap[i];
  }

  const double bnorm = nrm2<KT>(b);
  const double target = opts.rtol * (bnorm > 0.0 ? bnorm : 1.0);
  double rnorm = nrm2<KT>(rs);
  if (opts.record_history) {
    res.history.push_back(rnorm / (bnorm > 0.0 ? bnorm : 1.0));
  }

  M.apply(rs, zs);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = z[i];
  }
  double rz = dot<KT>(rs, zs);

  for (int it = 0; it < opts.max_iters; ++it) {
    if (!std::isfinite(rnorm) || !std::isfinite(rz)) {
      res.breakdown = true;
      break;
    }
    if (rnorm < target) {
      res.converged = true;
      break;
    }
    A(ps, aps);
    const double pap = dot<KT>(std::span<const KT>{p.data(), n},
                               std::span<const KT>{ap.data(), n});
    if (pap == 0.0 || !std::isfinite(pap)) {
      res.breakdown = !std::isfinite(pap);
      break;
    }
    const double alpha = rz / pap;
    axpy<KT>(static_cast<KT>(alpha), std::span<const KT>{p.data(), n}, x);
    axpy<KT>(static_cast<KT>(-alpha), std::span<const KT>{ap.data(), n}, rs);

    rnorm = nrm2<KT>(rs);
    ++res.iters;
    if (opts.record_history) {
      res.history.push_back(rnorm / (bnorm > 0.0 ? bnorm : 1.0));
    }
    if (rnorm < target) {
      res.converged = true;
      break;
    }

    M.apply(rs, zs);
    const double rz_new = dot<KT>(std::span<const KT>{r.data(), n},
                                  std::span<const KT>{z.data(), n});
    const double beta = rz_new / rz;
    rz = rz_new;
    xpay<KT>(std::span<const KT>{z.data(), n}, static_cast<KT>(beta), ps);
  }

  res.final_relres = rnorm / (bnorm > 0.0 ? bnorm : 1.0);
  if (!std::isfinite(res.final_relres)) {
    res.breakdown = true;
  }
  res.solve_seconds = timer.seconds();
  res.precond_seconds = M.apply_seconds();
  return res;
}

template SolveResult pcg<double>(const LinOp<double>&, std::span<const double>,
                                 std::span<double>, PrecondBase<double>&,
                                 const SolveOptions&);
template SolveResult pcg<float>(const LinOp<float>&, std::span<const float>,
                                std::span<float>, PrecondBase<float>&,
                                const SolveOptions&);

}  // namespace smg
