// Shared solver types: operator abstraction, options, results.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace smg {

/// y = A x in iterative precision KT.
template <class KT>
using LinOp = std::function<void(std::span<const KT>, std::span<KT>)>;

struct SolveOptions {
  int max_iters = 500;
  double rtol = 1e-10;       ///< convergence: ||r||_2 / ||b||_2 < rtol
  bool record_history = true;
  int restart = 30;          ///< GMRES restart length m
  /// Use the fixed-blocking pairwise dot/nrm2 (kernels/blas1.hpp
  /// dot_deterministic): convergence histories become bitwise identical
  /// run-to-run and across OpenMP thread counts, at the cost of one extra
  /// pass over n/4096 block partials per reduction.
  bool deterministic_reductions = false;
};

struct SolveResult {
  bool converged = false;
  bool breakdown = false;    ///< NaN/inf encountered (e.g. FP16 overflow)
  int iters = 0;
  double final_relres = 0.0;
  std::vector<double> history;  ///< relative residual norm per iteration
  double solve_seconds = 0.0;
  double precond_seconds = 0.0;

  std::string status() const {
    if (breakdown) {
      return "breakdown(NaN)";
    }
    return converged ? "converged" : "max-iters";
  }
};

}  // namespace smg
