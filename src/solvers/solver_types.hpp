// Shared solver types: operator abstraction, options, results.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace smg {

/// y = A x in iterative precision KT.
template <class KT>
using LinOp = std::function<void(std::span<const KT>, std::span<KT>)>;

struct SolveOptions {
  int max_iters = 500;
  double rtol = 1e-10;       ///< convergence: ||r||_2 / ||b||_2 < rtol
  bool record_history = true;
  int restart = 30;          ///< GMRES restart length m
  /// Use the fixed-blocking pairwise dot/nrm2 (kernels/blas1.hpp
  /// dot_deterministic): convergence histories become bitwise identical
  /// run-to-run and across OpenMP thread counts, at the cost of one extra
  /// pass over n/4096 block partials per reduction.
  bool deterministic_reductions = false;

  // --- self-healing feedback (PrecisionPolicy::Guarded only) ---
  // All three are inert unless the preconditioner reports self_healing():
  // the default-policy iteration stream stays bitwise identical.
  /// Max health events reported to a self-healing preconditioner per solve;
  /// each successful repair retries from the last good iterate.
  int heal_retries = 4;
  /// Report Stagnation when the relative residual fails to shrink by
  /// `stagnation_factor` over this many consecutive iterations (<= 0: off).
  int stagnation_window = 25;
  double stagnation_factor = 0.9;

  // --- request tracing (src/obs/metrics.hpp) ---
  /// Request ID carried by this solve's telemetry spans and SolveResult.
  /// 0 (the default) draws the next ID from the process-wide counter;
  /// solve_many assigns one consecutive ID per right-hand-side column.
  /// Pure bookkeeping: no effect on the iteration stream.
  std::uint64_t request_id = 0;
};

struct SolveResult {
  bool converged = false;
  /// Unrecoverable numerical failure: NaN/inf (e.g. FP16 overflow) or an
  /// exact Krylov breakdown that left the residual above tolerance.  The
  /// returned x is always consistent with final_relres (formed from the
  /// finite Krylov prefix; the true residual is recomputed before exit).
  bool breakdown = false;
  int iters = 0;
  /// Successful self-healing repairs (report_health returning true) the
  /// solver retried through; 0 unless the preconditioner is Guarded.
  int heals = 0;
  double final_relres = 0.0;
  std::vector<double> history;  ///< relative residual norm per iteration
  double solve_seconds = 0.0;
  double precond_seconds = 0.0;
  /// ID this solve served (SolveOptions::request_id, or the auto-assigned
  /// one); filter the Chrome trace on it to pull one solve out of a batch.
  std::uint64_t request_id = 0;

  std::string status() const {
    if (breakdown) {
      return "breakdown";
    }
    return converged ? "converged" : "max-iters";
  }
};

}  // namespace smg
