#include "solvers/richardson.hpp"

#include <cmath>

#include "kernels/blas1.hpp"
#include "obs/telemetry.hpp"
#include "util/aligned.hpp"
#include "util/timer.hpp"

namespace smg {

template <class KT>
SolveResult richardson(const LinOp<KT>& A, std::span<const KT> b,
                       std::span<KT> x, PrecondBase<KT>& M,
                       const SolveOptions& opts) {
  SolveResult res;
  Timer timer;
  M.reset_timing();

  const obs::InstallGuard obs_guard(M.telemetry());
  const obs::ScopedSpan solve_span(obs::Kind::Solve);
  const auto vnrm2 = [&opts](std::span<const KT> u) {
    return opts.deterministic_reductions ? nrm2_deterministic<KT>(u)
                                         : nrm2<KT>(u);
  };

  const std::size_t n = b.size();
  avec<KT> r(n), e(n);

  const double bnorm = vnrm2(b);
  const double scale = bnorm > 0.0 ? bnorm : 1.0;
  const double target = opts.rtol * scale;

  double rnorm = 0.0;
  for (int it = 0; it <= opts.max_iters; ++it) {
    const obs::ScopedSpan iter_span(obs::Kind::Iteration);
    A(x, {r.data(), n});
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = b[i] - r[i];
    }
    rnorm = vnrm2(std::span<const KT>{r.data(), n});
    if (opts.record_history) {
      res.history.push_back(rnorm / scale);
    }
    if (!std::isfinite(rnorm)) {
      res.breakdown = true;
      break;
    }
    if (rnorm < target) {
      res.converged = true;
      break;
    }
    if (it == opts.max_iters) {
      break;
    }
    M.apply({r.data(), n}, {e.data(), n});
    axpy<KT>(KT{1}, std::span<const KT>{e.data(), n}, x);
    ++res.iters;
  }

  res.final_relres = rnorm / scale;
  res.solve_seconds = timer.seconds();
  res.precond_seconds = M.apply_seconds();
  return res;
}

template SolveResult richardson<double>(const LinOp<double>&,
                                        std::span<const double>,
                                        std::span<double>,
                                        PrecondBase<double>&,
                                        const SolveOptions&);
template SolveResult richardson<float>(const LinOp<float>&,
                                       std::span<const float>,
                                       std::span<float>, PrecondBase<float>&,
                                       const SolveOptions&);

}  // namespace smg
