// 64-byte aligned vector for SIMD kernels.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace smg {

/// Minimal allocator giving cache-line (and AVX) alignment.
template <class T, std::size_t Align = 64>
struct AlignedAllocator {
  using value_type = T;

  // The non-type Align parameter defeats allocator_traits' automatic rebind
  // deduction; spell it out.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) {
      return nullptr;
    }
    void* p = ::operator new(n * sizeof(T), std::align_val_t{Align});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <class U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

template <class T>
using avec = std::vector<T, AlignedAllocator<T>>;

}  // namespace smg
