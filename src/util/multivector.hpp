// MultiVector: a panel of k right-hand-side columns stored row-major
// interleaved, the layout the multi-RHS kernels stream.
//
// Element (row, col) lives at data()[row * padded_cols() + col].  The row
// stride is padded to the next power of two so that
//  * the k-column inner loop of every panel kernel is a fixed-trip-count
//    SIMD loop over one contiguous run, and
//  * a row never straddles a cache line it did not have to: 64 is a
//    multiple of every padded row size up to 16 doubles, so each row run
//    of up to 1024 bytes starts cache-line aligned (the backing store is
//    64-byte aligned and 64 % (kpad * sizeof(T)) == 0 or vice versa).
//
// Padding columns are REAL storage: they are zero-initialised and every
// panel kernel computes over them uniformly (branch-free inner loops).
// All panel operations preserve "padding stays finite zero": multigrid
// smoothing of a zero RHS with zero guess is zero, q2 scaling of zero is
// zero, and the batched-CG driver never applies an update to a padding
// column.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/aligned.hpp"
#include "util/common.hpp"

namespace smg {

namespace detail {

/// Next power of two >= k (k >= 1).  The padded panel width.
constexpr int panel_padded_cols(int k) noexcept {
  int p = 1;
  while (p < k) {
    p *= 2;
  }
  return p;
}

static_assert(panel_padded_cols(1) == 1);
static_assert(panel_padded_cols(2) == 2);
static_assert(panel_padded_cols(3) == 4);
static_assert(panel_padded_cols(5) == 8);
static_assert(panel_padded_cols(8) == 8);
static_assert(panel_padded_cols(9) == 16);
static_assert(panel_padded_cols(16) == 16);

}  // namespace detail

template <class T>
class MultiVector {
 public:
  /// Cache-line alignment of the backing store.  A power-of-two row size
  /// (kpad * sizeof(T)) either divides 64 or is a multiple of 64, so no
  /// row run of <= 64 bytes ever splits a cache line.
  static constexpr std::size_t kAlign = 64;
  static_assert((kAlign & (kAlign - 1)) == 0, "alignment must be pow2");
  static_assert(kAlign % alignof(T) == 0, "element alignment must divide 64");

  MultiVector() = default;
  MultiVector(std::int64_t rows, int cols) { resize(rows, cols); }

  /// Resize to rows x cols, zero-filling everything (padding included).
  void resize(std::int64_t rows, int cols) {
    SMG_CHECK(rows >= 0 && cols >= 1, "MultiVector: bad shape");
    rows_ = rows;
    cols_ = cols;
    kpad_ = detail::panel_padded_cols(cols);
    data_.assign(static_cast<std::size_t>(rows_) * kpad_, T{});
  }

  void fill(T v) {
    for (auto& e : data_) {
      e = v;
    }
  }

  std::int64_t rows() const noexcept { return rows_; }
  int cols() const noexcept { return cols_; }
  int padded_cols() const noexcept { return kpad_; }
  /// Total elements including padding columns.
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  T* row(std::int64_t r) noexcept { return data_.data() + r * kpad_; }
  const T* row(std::int64_t r) const noexcept {
    return data_.data() + r * kpad_;
  }

  T& at(std::int64_t r, int c) noexcept { return data_[r * kpad_ + c]; }
  const T& at(std::int64_t r, int c) const noexcept {
    return data_[r * kpad_ + c];
  }

  /// Copy column c into a contiguous vector (for single-RHS reductions and
  /// per-column coarse solves).
  void extract_col(int c, std::span<T> out) const {
    SMG_CHECK(static_cast<std::int64_t>(out.size()) == rows_,
              "extract_col: size mismatch");
    const T* SMG_RESTRICT src = data_.data() + c;
    for (std::int64_t r = 0; r < rows_; ++r) {
      out[static_cast<std::size_t>(r)] = src[r * kpad_];
    }
  }

  /// Scatter a contiguous vector into column c.
  void insert_col(int c, std::span<const T> in) {
    SMG_CHECK(static_cast<std::int64_t>(in.size()) == rows_,
              "insert_col: size mismatch");
    T* SMG_RESTRICT dst = data_.data() + c;
    for (std::int64_t r = 0; r < rows_; ++r) {
      dst[r * kpad_] = in[static_cast<std::size_t>(r)];
    }
  }

 private:
  std::int64_t rows_ = 0;
  int cols_ = 0;
  int kpad_ = 0;
  avec<T> data_;
};

}  // namespace smg
