// Wall-clock timing helpers for kernels and solver phases.
#pragma once

#include <chrono>

#include "util/common.hpp"

namespace smg {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time over repeated start/stop windows (phase timing).
/// Windows must not nest: a second start() before stop() would silently
/// discard the first window's elapsed time, so both mispairings are hard
/// errors rather than corrupted totals.
class PhaseTimer {
 public:
  void start() {
    SMG_CHECK(!running_, "PhaseTimer::start() while already running");
    running_ = true;
    t_.reset();
  }
  void stop() {
    SMG_CHECK(running_, "PhaseTimer::stop() without a matching start()");
    running_ = false;
    total_ += t_.seconds();
  }
  bool running() const { return running_; }
  double total() const { return total_; }
  void clear() {
    total_ = 0.0;
    running_ = false;
  }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace smg
