// Wall-clock timing helpers for kernels and solver phases.
#pragma once

#include <chrono>

namespace smg {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time over repeated start/stop windows (phase timing).
class PhaseTimer {
 public:
  void start() { t_.reset(); }
  void stop() { total_ += t_.seconds(); }
  double total() const { return total_; }
  void clear() { total_ = 0.0; }

 private:
  Timer t_;
  double total_ = 0.0;
};

}  // namespace smg
