// Small statistics helpers used by benchmarks and problem metadata.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

namespace smg {

inline double geomean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (double x : xs) {
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

inline double mean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (double x : xs) {
    acc += x;
  }
  return acc / static_cast<double>(xs.size());
}

inline double minimum(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

inline double maximum(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

/// p in [0,100]; linear interpolation between order statistics.
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

/// Fraction of values <= threshold (for cumulative-frequency curves, Fig. 3).
inline double cumulative_at(std::span<const double> xs, double threshold) {
  if (xs.empty()) {
    return 0.0;
  }
  std::size_t count = 0;
  for (double x : xs) {
    if (x <= threshold) {
      ++count;
    }
  }
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

}  // namespace smg
