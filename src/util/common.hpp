// Shared small utilities: assertions and restrict qualifier.
#pragma once

#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define SMG_RESTRICT __restrict__
#else
#define SMG_RESTRICT
#endif

namespace smg {

[[noreturn]] inline void fail(const char* msg, const char* file, int line) {
  std::fprintf(stderr, "smg fatal: %s (%s:%d)\n", msg, file, line);
  std::abort();
}

}  // namespace smg

/// Always-on invariant check (solver correctness beats branch cost here).
#define SMG_CHECK(cond, msg)                  \
  do {                                        \
    if (!(cond)) {                            \
      ::smg::fail(msg, __FILE__, __LINE__);   \
    }                                         \
  } while (0)
