#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "util/common.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace smg {

namespace {

bool numa_pinning_enabled() {
  const char* env = std::getenv("SMG_NUMA");
  if (env == nullptr) {
    return true;
  }
  const std::string v(env);
  return !(v == "0" || v == "off" || v == "OFF" || v == "false");
}

void pin_to_cpu([[maybe_unused]] int w) {
#if defined(__linux__)
  const unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu == 0) {
    return;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(w) % ncpu, &set);
  // Best effort: a denied affinity call (restricted cpuset) is not fatal.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#endif
}

}  // namespace

ThreadPool::ThreadPool(int nthreads) {
  if (nthreads <= 0) {
    nthreads = static_cast<int>(std::thread::hardware_concurrency());
    if (nthreads <= 0) {
      nthreads = 1;
    }
  }
  done_.resize(static_cast<std::size_t>(nthreads));
  workers_.reserve(static_cast<std::size_t>(nthreads));
  for (int w = 0; w < nthreads; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::worker_main(int w) {
#if defined(_OPENMP)
  // OpenMP pragmas inside per-box kernels must not fork a fresh team per
  // worker (each non-OpenMP thread is its own initial thread): box-level
  // parallelism IS the parallelism.
  omp_set_num_threads(1);
#endif
  if (numa_pinning_enabled()) {
    pin_to_cpu(w);
  }
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    int ntasks = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) {
        return;
      }
      seen = epoch_;
      fn = fn_;
      ntasks = ntasks_;
    }
    const int nw = nthreads();
    for (int t = w; t < ntasks; t += nw) {
      (*fn)(t);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      done_[static_cast<std::size_t>(w)].done_epoch = seen;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::run(int ntasks, const std::function<void(int)>& fn) {
  if (ntasks <= 0) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    SMG_CHECK(!stop_, "ThreadPool::run after shutdown");
    fn_ = &fn;
    ntasks_ = ntasks;
    ++epoch_;
  }
  cv_work_.notify_all();
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] {
      for (const WorkerSlot& s : done_) {
        if (s.done_epoch != epoch_) {
          return false;
        }
      }
      return true;
    });
    fn_ = nullptr;
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    const char* env = std::getenv("SMG_DECOMP_THREADS");
    if (env != nullptr) {
      const int n = std::atoi(env);
      if (n > 0) {
        return n;
      }
    }
    return 0;  // hardware_concurrency
  }());
  return pool;
}

}  // namespace smg
