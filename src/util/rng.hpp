// Deterministic RNG for problem generators.
//
// Problem matrices must be bit-reproducible across runs so that convergence
// curves (Fig. 6) and tables are stable; std::mt19937 distributions are not
// guaranteed identical across standard libraries, so we implement
// splitmix64/xoshiro256** and our own uniform/normal transforms.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace smg {

/// splitmix64: used to seed xoshiro and as a cheap hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna; deterministic and fast.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDDA7Aull) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) {
      word = splitmix64(sm);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 1e-300) {
      u1 = uniform();
    }
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Lognormal with the given log-mean and log-std.
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(mu + sigma * normal());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace smg
