// Fixed-width ASCII table printer so benches emit paper-like rows.
#pragma once

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace smg {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    print_row(os, headers_, widths);
    std::size_t total = 0;
    for (auto w : widths) {
      total += w + 3;
    }
    os << std::string(total, '-') << "\n";
    for (const auto& r : rows_) {
      print_row(os, r, widths);
    }
  }

  static std::string fmt(double v, int prec = 3) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
  }

  static std::string sci(double v, int prec = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", prec, v);
    return buf;
  }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& r,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << cell << std::string(widths[c] - cell.size() + 3, ' ');
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smg
