// Persistent worker pool driving per-box kernels (grid/box_decomp.hpp).
//
// The decomposed MG engine runs one worker *team* per sub-box (team size 1
// here: box-level parallelism replaces loop-level parallelism, exactly the
// HPGMG execution model).  Workers are long-lived so per-box data allocated
// and first-touched from its owning worker stays on that worker's NUMA node
// (first-touch placement); every worker pins its OpenMP ICV to one thread so
// kernels invoked from a worker never fork nested OpenMP teams on top of the
// box parallelism.
//
// SMG_NUMA (EXPERIMENTS.md): "0"/"off" disables worker->CPU pinning;
// anything else (default) pins worker w to CPU w % ncpu on Linux, making the
// first-touch placement deterministic across runs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace smg {

class ThreadPool {
 public:
  /// Spawn `nthreads` workers (>= 1); 0 picks hardware_concurrency.
  explicit ThreadPool(int nthreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int nthreads() const noexcept { return static_cast<int>(workers_.size()); }

  /// Run fn(task) for task in [0, ntasks) across the workers and wait for
  /// all of them.  Task t always lands on worker t % nthreads(), so a box's
  /// tasks revisit the worker that first-touched its storage.  Exceptions
  /// escaping fn are fatal (kernels do not throw).
  void run(int ntasks, const std::function<void(int)>& fn);

  /// The lazily constructed process-wide pool used by the decomposed MG
  /// engine; sized by SMG_DECOMP_THREADS, else hardware_concurrency.
  static ThreadPool& global();

 private:
  void worker_main(int w);

  struct alignas(64) WorkerSlot {
    std::uint64_t done_epoch = 0;
  };

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  std::vector<WorkerSlot> done_;  ///< per-worker epoch acks
  const std::function<void(int)>* fn_ = nullptr;
  int ntasks_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace smg
