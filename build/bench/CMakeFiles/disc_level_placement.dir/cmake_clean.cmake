file(REMOVE_RECURSE
  "CMakeFiles/disc_level_placement.dir/disc_level_placement.cpp.o"
  "CMakeFiles/disc_level_placement.dir/disc_level_placement.cpp.o.d"
  "disc_level_placement"
  "disc_level_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_level_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
