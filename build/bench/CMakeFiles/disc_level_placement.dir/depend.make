# Empty dependencies file for disc_level_placement.
# This may be replaced when dependencies are built.
