file(REMOVE_RECURSE
  "CMakeFiles/fig7_kernel_ablation.dir/fig7_kernel_ablation.cpp.o"
  "CMakeFiles/fig7_kernel_ablation.dir/fig7_kernel_ablation.cpp.o.d"
  "fig7_kernel_ablation"
  "fig7_kernel_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_kernel_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
