# Empty dependencies file for fig7_kernel_ablation.
# This may be replaced when dependencies are built.
