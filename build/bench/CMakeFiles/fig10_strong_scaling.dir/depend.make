# Empty dependencies file for fig10_strong_scaling.
# This may be replaced when dependencies are built.
