file(REMOVE_RECURSE
  "CMakeFiles/fig10_strong_scaling.dir/fig10_strong_scaling.cpp.o"
  "CMakeFiles/fig10_strong_scaling.dir/fig10_strong_scaling.cpp.o.d"
  "fig10_strong_scaling"
  "fig10_strong_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
