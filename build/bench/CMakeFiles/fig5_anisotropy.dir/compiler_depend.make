# Empty compiler generated dependencies file for fig5_anisotropy.
# This may be replaced when dependencies are built.
