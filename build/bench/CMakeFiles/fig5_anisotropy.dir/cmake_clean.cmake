file(REMOVE_RECURSE
  "CMakeFiles/fig5_anisotropy.dir/fig5_anisotropy.cpp.o"
  "CMakeFiles/fig5_anisotropy.dir/fig5_anisotropy.cpp.o.d"
  "fig5_anisotropy"
  "fig5_anisotropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_anisotropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
