# Empty compiler generated dependencies file for tab2_format_bounds.
# This may be replaced when dependencies are built.
