file(REMOVE_RECURSE
  "CMakeFiles/tab2_format_bounds.dir/tab2_format_bounds.cpp.o"
  "CMakeFiles/tab2_format_bounds.dir/tab2_format_bounds.cpp.o.d"
  "tab2_format_bounds"
  "tab2_format_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_format_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
