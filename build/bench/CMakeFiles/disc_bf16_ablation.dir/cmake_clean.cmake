file(REMOVE_RECURSE
  "CMakeFiles/disc_bf16_ablation.dir/disc_bf16_ablation.cpp.o"
  "CMakeFiles/disc_bf16_ablation.dir/disc_bf16_ablation.cpp.o.d"
  "disc_bf16_ablation"
  "disc_bf16_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_bf16_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
