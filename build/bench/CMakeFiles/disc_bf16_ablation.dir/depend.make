# Empty dependencies file for disc_bf16_ablation.
# This may be replaced when dependencies are built.
