# Empty compiler generated dependencies file for fig3_complexities.
# This may be replaced when dependencies are built.
