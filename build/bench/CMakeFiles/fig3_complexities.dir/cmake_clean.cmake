file(REMOVE_RECURSE
  "CMakeFiles/fig3_complexities.dir/fig3_complexities.cpp.o"
  "CMakeFiles/fig3_complexities.dir/fig3_complexities.cpp.o.d"
  "fig3_complexities"
  "fig3_complexities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_complexities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
