file(REMOVE_RECURSE
  "CMakeFiles/fig6_convergence_ablation.dir/fig6_convergence_ablation.cpp.o"
  "CMakeFiles/fig6_convergence_ablation.dir/fig6_convergence_ablation.cpp.o.d"
  "fig6_convergence_ablation"
  "fig6_convergence_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_convergence_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
