# Empty dependencies file for tab3_problem_table.
# This may be replaced when dependencies are built.
