file(REMOVE_RECURSE
  "CMakeFiles/tab3_problem_table.dir/tab3_problem_table.cpp.o"
  "CMakeFiles/tab3_problem_table.dir/tab3_problem_table.cpp.o.d"
  "tab3_problem_table"
  "tab3_problem_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_problem_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
