file(REMOVE_RECURSE
  "CMakeFiles/fig8_end_to_end.dir/fig8_end_to_end.cpp.o"
  "CMakeFiles/fig8_end_to_end.dir/fig8_end_to_end.cpp.o.d"
  "fig8_end_to_end"
  "fig8_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
