# Empty dependencies file for disc_smoothing_ablation.
# This may be replaced when dependencies are built.
