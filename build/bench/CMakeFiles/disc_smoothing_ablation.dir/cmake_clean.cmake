file(REMOVE_RECURSE
  "CMakeFiles/disc_smoothing_ablation.dir/disc_smoothing_ablation.cpp.o"
  "CMakeFiles/disc_smoothing_ablation.dir/disc_smoothing_ablation.cpp.o.d"
  "disc_smoothing_ablation"
  "disc_smoothing_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_smoothing_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
