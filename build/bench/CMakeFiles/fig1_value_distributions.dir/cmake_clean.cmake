file(REMOVE_RECURSE
  "CMakeFiles/fig1_value_distributions.dir/fig1_value_distributions.cpp.o"
  "CMakeFiles/fig1_value_distributions.dir/fig1_value_distributions.cpp.o.d"
  "fig1_value_distributions"
  "fig1_value_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_value_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
