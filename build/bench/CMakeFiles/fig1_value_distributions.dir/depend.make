# Empty dependencies file for fig1_value_distributions.
# This may be replaced when dependencies are built.
