# Empty dependencies file for reservoir_sim.
# This may be replaced when dependencies are built.
