file(REMOVE_RECURSE
  "CMakeFiles/reservoir_sim.dir/reservoir_sim.cpp.o"
  "CMakeFiles/reservoir_sim.dir/reservoir_sim.cpp.o.d"
  "reservoir_sim"
  "reservoir_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reservoir_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
