file(REMOVE_RECURSE
  "CMakeFiles/weather_solve.dir/weather_solve.cpp.o"
  "CMakeFiles/weather_solve.dir/weather_solve.cpp.o.d"
  "weather_solve"
  "weather_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
