# Empty compiler generated dependencies file for weather_solve.
# This may be replaced when dependencies are built.
