file(REMOVE_RECURSE
  "CMakeFiles/elasticity.dir/elasticity.cpp.o"
  "CMakeFiles/elasticity.dir/elasticity.cpp.o.d"
  "elasticity"
  "elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
