# Empty compiler generated dependencies file for elasticity.
# This may be replaced when dependencies are built.
