file(REMOVE_RECURSE
  "CMakeFiles/precision_explorer.dir/precision_explorer.cpp.o"
  "CMakeFiles/precision_explorer.dir/precision_explorer.cpp.o.d"
  "precision_explorer"
  "precision_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precision_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
