# Empty compiler generated dependencies file for precision_explorer.
# This may be replaced when dependencies are built.
