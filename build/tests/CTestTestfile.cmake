# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_half[1]_include.cmake")
include("/root/repo/build/tests/test_bfloat16[1]_include.cmake")
include("/root/repo/build/tests/test_convert[1]_include.cmake")
include("/root/repo/build/tests/test_stencil[1]_include.cmake")
include("/root/repo/build/tests/test_struct_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_csr[1]_include.cmake")
include("/root/repo/build/tests/test_blas1[1]_include.cmake")
include("/root/repo/build/tests/test_spmv[1]_include.cmake")
include("/root/repo/build/tests/test_symgs[1]_include.cmake")
include("/root/repo/build/tests/test_scaling[1]_include.cmake")
include("/root/repo/build/tests/test_transfer[1]_include.cmake")
include("/root/repo/build/tests/test_coarsen[1]_include.cmake")
include("/root/repo/build/tests/test_dense_lu[1]_include.cmake")
include("/root/repo/build/tests/test_smoother[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_mg_precond[1]_include.cmake")
include("/root/repo/build/tests/test_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_problems[1]_include.cmake")
include("/root/repo/build/tests/test_perfmodel[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
