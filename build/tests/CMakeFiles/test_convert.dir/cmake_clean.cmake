file(REMOVE_RECURSE
  "CMakeFiles/test_convert.dir/fp/test_convert.cpp.o"
  "CMakeFiles/test_convert.dir/fp/test_convert.cpp.o.d"
  "test_convert"
  "test_convert.pdb"
  "test_convert[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
