# Empty dependencies file for test_problems.
# This may be replaced when dependencies are built.
