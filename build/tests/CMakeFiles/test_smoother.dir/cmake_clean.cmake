file(REMOVE_RECURSE
  "CMakeFiles/test_smoother.dir/core/test_smoother.cpp.o"
  "CMakeFiles/test_smoother.dir/core/test_smoother.cpp.o.d"
  "test_smoother"
  "test_smoother.pdb"
  "test_smoother[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smoother.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
