# Empty dependencies file for test_smoother.
# This may be replaced when dependencies are built.
