file(REMOVE_RECURSE
  "CMakeFiles/test_dense_lu.dir/core/test_dense_lu.cpp.o"
  "CMakeFiles/test_dense_lu.dir/core/test_dense_lu.cpp.o.d"
  "test_dense_lu"
  "test_dense_lu.pdb"
  "test_dense_lu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
