# Empty dependencies file for test_dense_lu.
# This may be replaced when dependencies are built.
