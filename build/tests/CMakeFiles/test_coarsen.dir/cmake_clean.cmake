file(REMOVE_RECURSE
  "CMakeFiles/test_coarsen.dir/core/test_coarsen.cpp.o"
  "CMakeFiles/test_coarsen.dir/core/test_coarsen.cpp.o.d"
  "test_coarsen"
  "test_coarsen.pdb"
  "test_coarsen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coarsen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
