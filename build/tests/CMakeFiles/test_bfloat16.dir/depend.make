# Empty dependencies file for test_bfloat16.
# This may be replaced when dependencies are built.
