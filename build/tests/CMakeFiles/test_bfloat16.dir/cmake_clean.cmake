file(REMOVE_RECURSE
  "CMakeFiles/test_bfloat16.dir/fp/test_bfloat16.cpp.o"
  "CMakeFiles/test_bfloat16.dir/fp/test_bfloat16.cpp.o.d"
  "test_bfloat16"
  "test_bfloat16.pdb"
  "test_bfloat16[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bfloat16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
