# Empty dependencies file for test_blas1.
# This may be replaced when dependencies are built.
