file(REMOVE_RECURSE
  "CMakeFiles/test_blas1.dir/kernels/test_blas1.cpp.o"
  "CMakeFiles/test_blas1.dir/kernels/test_blas1.cpp.o.d"
  "test_blas1"
  "test_blas1.pdb"
  "test_blas1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
