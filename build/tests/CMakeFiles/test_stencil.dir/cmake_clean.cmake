file(REMOVE_RECURSE
  "CMakeFiles/test_stencil.dir/grid/test_stencil.cpp.o"
  "CMakeFiles/test_stencil.dir/grid/test_stencil.cpp.o.d"
  "test_stencil"
  "test_stencil.pdb"
  "test_stencil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
