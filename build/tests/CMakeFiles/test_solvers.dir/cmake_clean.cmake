file(REMOVE_RECURSE
  "CMakeFiles/test_solvers.dir/solvers/test_solvers.cpp.o"
  "CMakeFiles/test_solvers.dir/solvers/test_solvers.cpp.o.d"
  "test_solvers"
  "test_solvers.pdb"
  "test_solvers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
