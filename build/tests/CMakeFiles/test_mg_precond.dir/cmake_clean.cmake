file(REMOVE_RECURSE
  "CMakeFiles/test_mg_precond.dir/core/test_mg_precond.cpp.o"
  "CMakeFiles/test_mg_precond.dir/core/test_mg_precond.cpp.o.d"
  "test_mg_precond"
  "test_mg_precond.pdb"
  "test_mg_precond[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mg_precond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
