# Empty compiler generated dependencies file for test_mg_precond.
# This may be replaced when dependencies are built.
