# Empty compiler generated dependencies file for test_struct_matrix.
# This may be replaced when dependencies are built.
