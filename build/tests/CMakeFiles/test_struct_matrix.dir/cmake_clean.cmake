file(REMOVE_RECURSE
  "CMakeFiles/test_struct_matrix.dir/sgdia/test_struct_matrix.cpp.o"
  "CMakeFiles/test_struct_matrix.dir/sgdia/test_struct_matrix.cpp.o.d"
  "test_struct_matrix"
  "test_struct_matrix.pdb"
  "test_struct_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_struct_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
