# Empty compiler generated dependencies file for test_half.
# This may be replaced when dependencies are built.
