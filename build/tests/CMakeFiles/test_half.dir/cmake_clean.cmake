file(REMOVE_RECURSE
  "CMakeFiles/test_half.dir/fp/test_half.cpp.o"
  "CMakeFiles/test_half.dir/fp/test_half.cpp.o.d"
  "test_half"
  "test_half.pdb"
  "test_half[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_half.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
