# Empty dependencies file for test_scaling.
# This may be replaced when dependencies are built.
