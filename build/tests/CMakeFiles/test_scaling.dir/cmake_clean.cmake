file(REMOVE_RECURSE
  "CMakeFiles/test_scaling.dir/core/test_scaling.cpp.o"
  "CMakeFiles/test_scaling.dir/core/test_scaling.cpp.o.d"
  "test_scaling"
  "test_scaling.pdb"
  "test_scaling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
