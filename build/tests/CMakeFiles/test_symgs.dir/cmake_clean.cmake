file(REMOVE_RECURSE
  "CMakeFiles/test_symgs.dir/kernels/test_symgs.cpp.o"
  "CMakeFiles/test_symgs.dir/kernels/test_symgs.cpp.o.d"
  "test_symgs"
  "test_symgs.pdb"
  "test_symgs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
