# Empty compiler generated dependencies file for test_symgs.
# This may be replaced when dependencies are built.
