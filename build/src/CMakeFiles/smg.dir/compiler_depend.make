# Empty compiler generated dependencies file for smg.
# This may be replaced when dependencies are built.
