
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coarsen.cpp" "src/CMakeFiles/smg.dir/core/coarsen.cpp.o" "gcc" "src/CMakeFiles/smg.dir/core/coarsen.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/smg.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/smg.dir/core/config.cpp.o.d"
  "/root/repo/src/core/dense_lu.cpp" "src/CMakeFiles/smg.dir/core/dense_lu.cpp.o" "gcc" "src/CMakeFiles/smg.dir/core/dense_lu.cpp.o.d"
  "/root/repo/src/core/mg_hierarchy.cpp" "src/CMakeFiles/smg.dir/core/mg_hierarchy.cpp.o" "gcc" "src/CMakeFiles/smg.dir/core/mg_hierarchy.cpp.o.d"
  "/root/repo/src/core/mg_precond.cpp" "src/CMakeFiles/smg.dir/core/mg_precond.cpp.o" "gcc" "src/CMakeFiles/smg.dir/core/mg_precond.cpp.o.d"
  "/root/repo/src/core/scaling.cpp" "src/CMakeFiles/smg.dir/core/scaling.cpp.o" "gcc" "src/CMakeFiles/smg.dir/core/scaling.cpp.o.d"
  "/root/repo/src/core/smoother.cpp" "src/CMakeFiles/smg.dir/core/smoother.cpp.o" "gcc" "src/CMakeFiles/smg.dir/core/smoother.cpp.o.d"
  "/root/repo/src/csr/csr_matrix.cpp" "src/CMakeFiles/smg.dir/csr/csr_matrix.cpp.o" "gcc" "src/CMakeFiles/smg.dir/csr/csr_matrix.cpp.o.d"
  "/root/repo/src/grid/stencil.cpp" "src/CMakeFiles/smg.dir/grid/stencil.cpp.o" "gcc" "src/CMakeFiles/smg.dir/grid/stencil.cpp.o.d"
  "/root/repo/src/perfmodel/bytes.cpp" "src/CMakeFiles/smg.dir/perfmodel/bytes.cpp.o" "gcc" "src/CMakeFiles/smg.dir/perfmodel/bytes.cpp.o.d"
  "/root/repo/src/perfmodel/scaling_sim.cpp" "src/CMakeFiles/smg.dir/perfmodel/scaling_sim.cpp.o" "gcc" "src/CMakeFiles/smg.dir/perfmodel/scaling_sim.cpp.o.d"
  "/root/repo/src/perfmodel/stream.cpp" "src/CMakeFiles/smg.dir/perfmodel/stream.cpp.o" "gcc" "src/CMakeFiles/smg.dir/perfmodel/stream.cpp.o.d"
  "/root/repo/src/problems/laplace.cpp" "src/CMakeFiles/smg.dir/problems/laplace.cpp.o" "gcc" "src/CMakeFiles/smg.dir/problems/laplace.cpp.o.d"
  "/root/repo/src/problems/oil.cpp" "src/CMakeFiles/smg.dir/problems/oil.cpp.o" "gcc" "src/CMakeFiles/smg.dir/problems/oil.cpp.o.d"
  "/root/repo/src/problems/registry.cpp" "src/CMakeFiles/smg.dir/problems/registry.cpp.o" "gcc" "src/CMakeFiles/smg.dir/problems/registry.cpp.o.d"
  "/root/repo/src/problems/rhd.cpp" "src/CMakeFiles/smg.dir/problems/rhd.cpp.o" "gcc" "src/CMakeFiles/smg.dir/problems/rhd.cpp.o.d"
  "/root/repo/src/problems/solid.cpp" "src/CMakeFiles/smg.dir/problems/solid.cpp.o" "gcc" "src/CMakeFiles/smg.dir/problems/solid.cpp.o.d"
  "/root/repo/src/problems/weather.cpp" "src/CMakeFiles/smg.dir/problems/weather.cpp.o" "gcc" "src/CMakeFiles/smg.dir/problems/weather.cpp.o.d"
  "/root/repo/src/sgdia/any_matrix.cpp" "src/CMakeFiles/smg.dir/sgdia/any_matrix.cpp.o" "gcc" "src/CMakeFiles/smg.dir/sgdia/any_matrix.cpp.o.d"
  "/root/repo/src/solvers/cg.cpp" "src/CMakeFiles/smg.dir/solvers/cg.cpp.o" "gcc" "src/CMakeFiles/smg.dir/solvers/cg.cpp.o.d"
  "/root/repo/src/solvers/gmres.cpp" "src/CMakeFiles/smg.dir/solvers/gmres.cpp.o" "gcc" "src/CMakeFiles/smg.dir/solvers/gmres.cpp.o.d"
  "/root/repo/src/solvers/richardson.cpp" "src/CMakeFiles/smg.dir/solvers/richardson.cpp.o" "gcc" "src/CMakeFiles/smg.dir/solvers/richardson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
