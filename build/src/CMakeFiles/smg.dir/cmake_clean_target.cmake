file(REMOVE_RECURSE
  "libsmg.a"
)
