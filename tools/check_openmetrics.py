#!/usr/bin/env python3
"""Validator for the Prometheus/OpenMetrics text exposition (stdlib only).

Checks a metrics file written by src/obs/exposition.cpp
(SMG_METRICS_FILE, MetricsFlusher, or to_openmetrics piped to disk):

  * every sample line parses: NAME{LABELS} VALUE with legal metric/label
    names, quoted+escaped label values, and a float/+Inf/-Inf/NaN value;
  * every sample's family has a preceding # TYPE line, and the sample
    suffix matches the declared type (_total for counters; _bucket/_count/
    _sum for histograms; bare names for gauges);
  * histogram series are internally consistent per label set: the +Inf
    bucket exists, cumulative bucket counts are monotonically
    non-decreasing, and the +Inf bucket equals the _count sample;
  * the file ends with the "# EOF" terminator.

Usage:
  check_openmetrics.py FILE [--require NAME ...]

--require fails unless each NAME appears as a family in the file (used by
CI to pin the core families of docs/METRICS.md).  Exit 0 clean, 1 with a
list of violations.
"""

import argparse
import math
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One label pair: name="value" with \\, \", \n escapes inside the value.
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\[\\"n])*)"')
SAMPLE_RE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
                       r"(?:\{(?P<labels>.*)\})?"
                       r" (?P<value>\S+)$")

HISTOGRAM_SUFFIXES = ("_bucket", "_count", "_sum")


def parse_value(text):
    """Prometheus value literal -> float, or None when malformed."""
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def parse_labels(raw, errors, where):
    """'k="v",k2="v2"' -> dict, reporting malformed blocks."""
    if raw is None or raw == "":
        return {}
    labels = {}
    rest = raw
    while rest:
        m = LABEL_PAIR_RE.match(rest)
        if m is None:
            errors.append(f"{where}: malformed label block at ...{rest!r}")
            return labels
        labels[m.group(1)] = m.group(2)
        rest = rest[m.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            errors.append(f"{where}: expected ',' between labels at "
                          f"...{rest!r}")
            return labels
    return labels


def family_of(name, types):
    """Sample name -> declared family name, honoring histogram suffixes
    and the counter _total convention."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def check(path, required):
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        return [f"cannot read {path}: {e}"]

    errors = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        errors.append("file does not end with the '# EOF' terminator")

    types = {}  # family -> declared type
    # (family, label-block-minus-le) -> {le-float: count}, plus _count/_sum
    buckets = {}
    counts = {}
    seen_samples = set()

    for i, line in enumerate(lines, 1):
        where = f"line {i}"
        if line == "" or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram"):
                errors.append(f"{where}: malformed TYPE line: {line!r}")
                continue
            if not METRIC_NAME_RE.match(parts[2]):
                errors.append(f"{where}: illegal family name {parts[2]!r}")
                continue
            if parts[2] in types:
                errors.append(f"{where}: duplicate TYPE for {parts[2]}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            errors.append(f"{where}: unknown comment line: {line!r}")
            continue

        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"{where}: unparsable sample line: {line!r}")
            continue
        name = m.group("name")
        value = parse_value(m.group("value"))
        if value is None:
            errors.append(f"{where}: bad value {m.group('value')!r}")
            continue
        labels = parse_labels(m.group("labels"), errors, where)

        family = family_of(name, types)
        ftype = types.get(family)
        if ftype is None:
            errors.append(f"{where}: sample {name!r} has no preceding "
                          f"# TYPE line")
            continue
        if ftype == "counter" and not name.endswith("_total"):
            errors.append(f"{where}: counter sample {name!r} must end in "
                          f"_total")
        if ftype == "histogram":
            if not name.endswith(HISTOGRAM_SUFFIXES):
                errors.append(f"{where}: histogram sample {name!r} must "
                              f"end in _bucket/_count/_sum")
                continue
            if name.endswith("_bucket") and "le" not in labels:
                errors.append(f"{where}: _bucket sample without an 'le' "
                              f"label")
                continue
            series = (family,
                      tuple(sorted((k, v) for k, v in labels.items()
                                   if k != "le")))
            if name.endswith("_bucket"):
                le = parse_value(labels["le"])
                if le is None:
                    errors.append(f"{where}: bad le value "
                                  f"{labels['le']!r}")
                    continue
                buckets.setdefault(series, {})[le] = value
            elif name.endswith("_count"):
                counts[series] = value

        key = (name, tuple(sorted(labels.items())))
        if key in seen_samples:
            errors.append(f"{where}: duplicate sample {name}"
                          f"{dict(labels)}")
        seen_samples.add(key)

    for series, by_le in sorted(buckets.items()):
        label = f"{series[0]}{{{dict(series[1])}}}"
        if math.inf not in by_le:
            errors.append(f"{label}: histogram has no le=\"+Inf\" bucket")
            continue
        prev = -math.inf
        last = 0.0
        for le in sorted(by_le):
            if by_le[le] < last:
                errors.append(f"{label}: cumulative bucket counts decrease "
                              f"at le={le} ({by_le[le]} < {last})")
            last = by_le[le]
            prev = le
        if series in counts and by_le[math.inf] != counts[series]:
            errors.append(f"{label}: +Inf bucket ({by_le[math.inf]}) != "
                          f"_count ({counts[series]})")
        if series not in counts:
            errors.append(f"{label}: histogram without a _count sample")

    for name in required:
        if name not in types:
            errors.append(f"required family {name!r} missing from exposition")

    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", help="OpenMetrics text file to validate")
    ap.add_argument("--require", nargs="*", default=[],
                    help="family names that must be present")
    args = ap.parse_args()

    errors = check(args.file, args.require)
    for e in errors:
        print(f"check_openmetrics: {e}", file=sys.stderr)
    if not errors:
        print(f"check_openmetrics: {args.file} OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
