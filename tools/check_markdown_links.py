#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation (stdlib only).

Validates every relative link in the checked markdown files:
  * the target file exists (relative to the linking file),
  * an intra-file or cross-file #anchor resolves to a real heading,
  * bare path references in backticks are NOT checked (prose, not links).

External http(s)/mailto links are skipped: CI must not depend on the
network.  Exit code 0 when clean, 1 with a list of broken links.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# SNIPPETS.md quotes exemplar code from external repositories verbatim;
# its relative "links" point into those repos, not this one.
EXCLUDED = {"SNIPPETS.md"}

CHECKED = sorted(
    p
    for p in (
        list(REPO.glob("*.md"))
        + list((REPO / "docs").glob("*.md"))
        + list((REPO / "bench").glob("*.md"))
    )
    if p.name not in EXCLUDED
)

LINK_RE = re.compile(r"(?<!\!)\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(?P<title>.+?)\s*$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_anchor(title: str) -> str:
    """GitHub's heading -> anchor slug (approximation: lowercase, strip
    punctuation except hyphens/underscores, spaces to hyphens)."""
    title = re.sub(r"`([^`]*)`", r"\1", title)  # unwrap inline code
    title = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", title)  # unwrap links
    slug = []
    for ch in title.strip().lower():
        if ch.isalnum() or ch in "_-":
            slug.append(ch)
        elif ch in " ":
            slug.append("-")
    return "".join(slug)


def anchors_of(path: Path, cache={}) -> set:
    if path not in cache:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            cache[path] = set()
        else:
            text = CODE_FENCE_RE.sub("", text)
            cache[path] = {
                github_anchor(m.group("title"))
                for m in HEADING_RE.finditer(text)
            }
    return cache[path]


def main() -> int:
    errors = []
    for md in CHECKED:
        text = md.read_text(encoding="utf-8")
        text = CODE_FENCE_RE.sub("", text)
        for m in LINK_RE.finditer(text):
            target = m.group("target")
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            rel = md.relative_to(REPO)
            path_part, _, anchor = target.partition("#")
            if path_part:
                dest = (md.parent / path_part).resolve()
                if not dest.exists():
                    errors.append(f"{rel}: broken link -> {target}")
                    continue
            else:
                dest = md
            if anchor:
                if dest.suffix != ".md":
                    continue  # anchors into non-markdown: not checkable
                if anchor.lower() not in anchors_of(dest):
                    errors.append(f"{rel}: broken anchor -> {target}")
    if errors:
        print(f"{len(errors)} broken markdown link(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"ok: {len(CHECKED)} files checked, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
