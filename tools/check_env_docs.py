#!/usr/bin/env python3
"""SMG_* environment-variable documentation checker (stdlib only).

EXPERIMENTS.md is the authoritative registry of runtime knobs.  This
script cross-checks it against the code in both directions:

  * every `SMG_*` variable the code actually reads — via `getenv` or the
    `env_double`/`env_int` wrappers in src/, plus the bench harness —
    must appear in EXPERIMENTS.md, so no knob ships undocumented;
  * every `SMG_*` token EXPERIMENTS.md mentions must still be read
    somewhere, so the table cannot go stale when a knob is removed.

`SMG_` preprocessor identifiers that are not environment reads
(SMG_CHECK, SMG_RESTRICT, the SMG_BENCH registration macro, ...) never
match because only the argument of an env-read call is collected.

Exit code 0 when both directions are clean, 1 with a list otherwise.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DOC = REPO / "EXPERIMENTS.md"

SCANNED_DIRS = [REPO / "src", REPO / "bench"]
SOURCE_SUFFIXES = {".cpp", ".hpp"}

# getenv("SMG_X") and the repo's typed wrappers env_double("SMG_X", ...),
# env_int("SMG_X", ...).  Only string literals count: a variable-named
# read cannot be checked and is a style error anyway.  The call may be
# wrapped across lines by clang-format, so match on whole-file text.
READ_RE = re.compile(
    r'\b(?:getenv|env_double|env_int)\s*\(\s*"(SMG_[A-Z0-9_]+)"'
)

DOC_TOKEN_RE = re.compile(r"\bSMG_[A-Z0-9_]+\b")


def env_reads() -> dict:
    """Map of SMG_* variable -> first 'file:line' reading it."""
    reads = {}
    for root in SCANNED_DIRS:
        for path in sorted(root.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            for m in READ_RE.finditer(text):
                lineno = text.count("\n", 0, m.start()) + 1
                where = f"{path.relative_to(REPO)}:{lineno}"
                reads.setdefault(m.group(1), where)
    return reads


def documented_tokens() -> set:
    text = DOC.read_text(encoding="utf-8")
    return set(DOC_TOKEN_RE.findall(text))


def main() -> int:
    reads = env_reads()
    documented = documented_tokens()

    problems = []
    for var in sorted(set(reads) - documented):
        problems.append(
            f"undocumented env var: {var} (read at {reads[var]}) "
            f"has no entry in {DOC.name}"
        )
    for var in sorted(documented - set(reads)):
        problems.append(
            f"stale doc entry: {var} appears in {DOC.name} but nothing "
            f"under {'/'.join(d.name for d in SCANNED_DIRS)} reads it"
        )

    if problems:
        print(f"check_env_docs: {len(problems)} problem(s)")
        for p in problems:
            print(f"  {p}")
        return 1

    print(
        f"check_env_docs: OK ({len(reads)} env vars read in code, "
        f"all documented in {DOC.name}, no stale entries)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
