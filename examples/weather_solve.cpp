// Atmospheric Helmholtz solve (the paper's weather / GRAPES-style case):
// compares Full64 against the FP16 preconditioner on a strongly anisotropic
// 3d19 operator whose coefficients sit near the FP16 boundary, and prints
// the residual descent of both — a miniature Figure 6(c).
//
// Run: ./weather_solve [nx ny nz]
#include <cstdio>
#include <cstdlib>

#include "core/mg_precond.hpp"
#include "kernels/spmv.hpp"
#include "problems/problem.hpp"
#include "solvers/gmres.hpp"

using namespace smg;

namespace {

SolveResult solve(const Problem& p, const MGConfig& cfg) {
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  const LinOp<double> op = [&p](std::span<const double> x,
                                std::span<double> y) {
    spmv<double, double>(p.A, x, y);
  };
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SolveOptions opts;
  opts.rtol = 1e-10;
  opts.max_iters = 100;
  return pgmres<double>(op, {p.b.data(), n}, {x.data(), n}, *M, opts);
}

}  // namespace

int main(int argc, char** argv) {
  Box box{36, 36, 20};
  if (argc == 4) {
    box = Box{std::atoi(argv[1]), std::atoi(argv[2]), std::atoi(argv[3])};
  }
  std::printf("== Weather dynamics Helmholtz solve: %dx%dx%d ==\n", box.nx,
              box.ny, box.nz);
  const Problem p = make_weather(box);
  std::printf("anisotropic 3d19 operator, %lld dofs, values near FP16 max\n",
              static_cast<long long>(p.A.nrows()));

  const SolveResult full = solve(p, config_full64());
  const SolveResult mix = solve(p, config_d16_setup_scale());

  std::printf("\n%-28s %6s %10s %12s\n", "config", "iters", "status",
              "solve time");
  std::printf("%-28s %6d %10s %10.3fs\n", "Full64", full.iters,
              full.status().c_str(), full.solve_seconds);
  std::printf("%-28s %6d %10s %10.3fs\n", "K64P32D16 setup-then-scale",
              mix.iters, mix.status().c_str(), mix.solve_seconds);

  std::printf("\nresidual descent (||r||/||b||):\n iter   Full64"
              "      Mix16\n");
  const std::size_t len = std::max(full.history.size(), mix.history.size());
  for (std::size_t i = 0; i < len; i += 2) {
    std::printf("%5zu", i);
    if (i < full.history.size()) {
      std::printf("   %.1e", full.history[i]);
    } else {
      std::printf("         -");
    }
    if (i < mix.history.size()) {
      std::printf("   %.1e", mix.history[i]);
    }
    std::printf("\n");
  }
  return (full.converged && mix.converged) ? 0 : 1;
}
