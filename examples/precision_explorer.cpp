// Precision explorer: run any built-in problem under every precision
// configuration and report iterations, time, and memory — a command-line
// way to reproduce the paper's decision matrix for your own case.
//
// Run: ./precision_explorer [problem] [nx ny nz]
//   problems: laplace27 laplace27e8 rhd oil weather rhd3t oil4c solid3d
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/mg_precond.hpp"
#include "kernels/spmv.hpp"
#include "obs/report.hpp"
#include "problems/problem.hpp"
#include "solvers/cg.hpp"
#include "solvers/gmres.hpp"
#include "util/table.hpp"

using namespace smg;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "rhd";
  Box box{24, 24, 24};
  if (argc == 5) {
    box = Box{std::atoi(argv[2]), std::atoi(argv[3]), std::atoi(argv[4])};
  }
  std::printf("== Precision explorer: %s on %dx%dx%d ==\n", name.c_str(),
              box.nx, box.ny, box.nz);
  const Problem p = make_problem(name, box);

  struct Entry {
    const char* label;
    MGConfig cfg;
  };
  const Entry entries[] = {
      {"Full64 (P64D64)", config_full64()},
      {"K64P32D32", config_k64p32d32()},
      {"K64P32D16-none", config_d16_none()},
      {"K64P32D16-scale-setup", config_d16_scale_setup()},
      {"K64P32D16-setup-scale", config_d16_setup_scale()},
      {"K64P32Dbf16", [] {
         MGConfig c = config_d16_setup_scale();
         c.storage = Prec::BF16;
         return c;
       }()},
      {"K64P32D16 shift_levid=2", [] {
         MGConfig c = config_d16_setup_scale();
         c.shift_levid = 2;
         return c;
       }()},
      {"K64P32D16 W-cycle", [] {
         MGConfig c = config_d16_setup_scale();
         c.cycle = CycleType::W;
         return c;
       }()},
      {"K64P32D16 auto", [] {
         MGConfig c = config_d16_setup_scale();
         c.precision_policy = PrecisionPolicy::Auto;
         return c;
       }()},
      {"K64P32D16 guarded", [] {
         MGConfig c = config_d16_setup_scale();
         c.precision_policy = PrecisionPolicy::Guarded;
         return c;
       }()},
  };

  Table t({"config", "status", "iters", "setup s", "solve s", "MG s",
           "matrix MB"});
  for (const Entry& e : entries) {
    StructMat<double> A = p.A;
    Timer setup_t;
    MGHierarchy h(std::move(A), e.cfg);
    const double setup_s = setup_t.seconds();
    auto M = make_mg_precond<double>(h);
    const LinOp<double> op = [&p](std::span<const double> x,
                                  std::span<double> y) {
      spmv<double, double>(p.A, x, y);
    };
    const std::size_t n = p.b.size();
    avec<double> x(n, 0.0);
    SolveOptions opts;
    opts.rtol = 1e-9;
    opts.max_iters = 500;
    const SolveResult res =
        p.solver == "cg"
            ? pcg<double>(op, {p.b.data(), n}, {x.data(), n}, *M, opts)
            : pgmres<double>(op, {p.b.data(), n}, {x.data(), n}, *M, opts);
    t.row({e.label, res.status(), std::to_string(res.iters),
           Table::fmt(setup_s, 3), Table::fmt(res.solve_seconds, 3),
           Table::fmt(res.precond_seconds, 3),
           Table::fmt(h.stored_matrix_bytes() / 1e6, 2)});
  }
  t.print();

  // Per-level precision-event counters of the recommended configuration:
  // the safety ledger behind the table above (overflow headroom, magnitude
  // range, truncation events, conversion volume per apply).
  {
    StructMat<double> A = p.A;
    MGConfig cfg = config_d16_setup_scale();
    cfg.precision_policy = PrecisionPolicy::Auto;  // let the planner veto
    MGHierarchy h(std::move(A), cfg);
    std::printf("\nK64P32D16-setup-scale safety ledger (policy: %s):\n",
                std::string(to_string(h.policy())).c_str());
    obs::print_precision_counters(obs::collect_precision_counters(h));
    for (const AutopilotDecision& d : h.autopilot_log()) {
      std::printf("  autopilot: level %d %s -> %s (%s)\n", d.level,
                  std::string(to_string(d.trigger)).c_str(),
                  std::string(to_string(d.action)).c_str(),
                  d.reason.c_str());
    }
  }
  return 0;
}
