// Solid-mechanics example (the paper's solid-3D case): a block (r = 3)
// linear-elasticity operator with steel-scale coefficients (~1e11, far
// outside FP16), demonstrating Theorem 4.1's scaling on a *vector* PDE —
// the per-dof diagonal scaling handles the 3x3 blocks transparently.
//
// Run: ./elasticity [n]
#include <cstdio>
#include <cstdlib>

#include "core/mg_precond.hpp"
#include "core/scaling.hpp"
#include "fp/half.hpp"
#include "kernels/spmv.hpp"
#include "problems/problem.hpp"
#include "solvers/cg.hpp"

using namespace smg;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 18;
  std::printf("== Linear elasticity: %d^3 elements, 3 displacement"
              " components ==\n", n);
  Problem p = make_solid3d(Box{n, n, n});
  std::printf("dofs: %lld, |a|max = %.2e (FP16 max is %.0f)\n",
              static_cast<long long>(p.A.nrows()), max_abs_value(p.A),
              static_cast<double>(kHalfMax));

  const StructMat<double> A = p.A;
  MGConfig cfg = config_d16_setup_scale();
  MGHierarchy h(std::move(p.A), cfg);
  std::printf("hierarchy: %d levels; finest level scaled with G = %.3e"
              " (G_max %.3e)\n", h.nlevels(),
              h.level(0).scaled ? h.level(0).gmax * cfg.scale_safety : 0.0,
              h.level(0).gmax);
  const auto trunc = h.total_truncation();
  std::printf("truncation: %zu overflows (must be 0), %zu underflows,"
              " %zu subnormals\n", trunc.overflowed, trunc.underflowed,
              trunc.subnormal);

  auto M = make_mg_precond<double>(h);
  const LinOp<double> op = [&A](std::span<const double> x,
                                std::span<double> y) {
    spmv<double, double>(A, x, y);
  };
  const std::size_t rows = p.b.size();
  avec<double> x(rows, 0.0);
  SolveOptions opts;
  opts.rtol = 1e-9;
  opts.max_iters = 200;
  const SolveResult res =
      pcg<double>(op, {p.b.data(), rows}, {x.data(), rows}, *M, opts);
  std::printf("CG: %s in %d iterations (relres %.1e), %.3fs\n",
              res.status().c_str(), res.iters, res.final_relres,
              res.solve_seconds);
  return res.converged ? 0 : 1;
}
