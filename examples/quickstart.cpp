// Quickstart: solve a Poisson problem with CG preconditioned by the
// FP16-storage structured multigrid.
//
//   1. build (or bring) a structured matrix in FP64,
//   2. pick a precision configuration (here the paper's K64P32D16 with
//      setup-then-scale),
//   3. set up the hierarchy once, solve many times.
//
// Run: ./quickstart [n]      (default n = 48: a 48^3 grid, 110k dofs)
#include <cstdio>
#include <cstdlib>

#include "core/mg_precond.hpp"
#include "kernels/spmv.hpp"
#include "obs/exposition.hpp"
#include "obs/report.hpp"
#include "problems/problem.hpp"
#include "solvers/cg.hpp"

using namespace smg;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 48;
  std::printf("== StructMG-FP16 quickstart: %d^3 Poisson (27-point) ==\n", n);

  // Optional service metrics: SMG_METRICS=on counts solves/cache/halo
  // traffic (docs/METRICS.md); SMG_METRICS_FILE=path exports OpenMetrics
  // text, with SMG_METRICS_PERIOD=seconds flushing it in the background.
  const auto flusher = obs::MetricsFlusher::start_from_env();

  // 1. The problem: A x = b in FP64 (your application's precision).
  Problem p = make_laplace27(Box{n, n, n});
  std::printf("dofs: %lld, nnz: %lld\n",
              static_cast<long long>(p.A.nrows()),
              static_cast<long long>(p.A.nnz_logical()));

  // 2. Preconditioner configuration: FP32 compute, FP16 storage,
  //    setup-then-scale (the paper's recommended combination).
  MGConfig cfg = config_d16_setup_scale();

  // 3. Setup once...
  MGHierarchy hierarchy(std::move(p.A), cfg);
  std::printf("hierarchy: %d levels, C_G=%.2f, C_O=%.2f, setup %.3fs\n",
              hierarchy.nlevels(), hierarchy.grid_complexity(),
              hierarchy.operator_complexity(), hierarchy.setup_seconds());
  std::printf("matrix storage: %.2f MB (FP64 would need %.2f MB)\n",
              hierarchy.stored_matrix_bytes() / 1e6,
              hierarchy.fp64_matrix_bytes() / 1e6);
  auto M = make_mg_precond<double>(hierarchy);

  // ...solve with CG.  The Krylov operator stays in the application's FP64;
  // the preconditioner internally truncates/recovers (Alg. 2).
  const Problem q = make_laplace27(Box{n, n, n});  // p.A was moved; rebuild
  const LinOp<double> op = [&q](std::span<const double> x,
                                std::span<double> y) {
    spmv<double, double>(q.A, x, y);
  };
  const std::size_t rows = q.b.size();
  avec<double> x(rows, 0.0);
  SolveOptions opts;
  opts.rtol = 1e-10;
  const SolveResult res =
      pcg<double>(op, {q.b.data(), rows}, {x.data(), rows}, *M, opts);

  std::printf("%s in %d iterations, final relres %.2e\n",
              res.status().c_str(), res.iters, res.final_relres);
  std::printf("solve %.3fs of which preconditioner %.3fs (%.0f%%)\n",
              res.solve_seconds, res.precond_seconds,
              100.0 * res.precond_seconds / res.solve_seconds);

  // 4. Optional telemetry: run with SMG_TELEMETRY=counters (aggregate
  //    spans) or =full (plus a Chrome trace); SMG_TELEMETRY_JSON=path and
  //    SMG_TELEMETRY_TRACE=path export the report/timeline as files.
  if (M->telemetry() != nullptr && M->telemetry()->enabled()) {
    std::printf("\n");
    const obs::SolverReport report =
        obs::build_report(*M->telemetry(), hierarchy, /*reference_gbs=*/0.0,
                          Prec::FP64);
    obs::print_report(report);
    obs::emit_from_env(report, *M->telemetry());
  }
  if (flusher == nullptr) {
    obs::emit_metrics_from_env();
  }
  return res.converged ? 0 : 1;
}
