// Reservoir pressure stepping: a miniature implicit time loop in the style
// of the paper's petroleum-reservoir application (oil / SPE-type problem).
//
// Every implicit step solves a sparse system whose matrix stays fixed
// (pressure operator) while the right-hand side changes — the regime where
// the hierarchy's one-time setup amortizes perfectly and the FP16
// preconditioner accelerates each of many GMRES solves.
//
// Run: ./reservoir_sim [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/mg_precond.hpp"
#include "kernels/spmv.hpp"
#include "problems/problem.hpp"
#include "solvers/gmres.hpp"

using namespace smg;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 8;
  const Box box{40, 40, 24};
  std::printf("== Reservoir simulation: %dx%dx%d cells, %d implicit steps"
              " ==\n", box.nx, box.ny, box.nz, steps);

  Problem p = make_oil(box);
  const StructMat<double> A = p.A;  // the pressure operator

  MGConfig cfg = config_d16_setup_scale();
  MGHierarchy hierarchy(std::move(p.A), cfg);
  auto M = make_mg_precond<double>(hierarchy);
  std::printf("setup: %.3fs, %d levels, matrix memory %.2f MB (FP16)\n",
              hierarchy.setup_seconds(), hierarchy.nlevels(),
              hierarchy.stored_matrix_bytes() / 1e6);

  const LinOp<double> op = [&A](std::span<const double> x,
                                std::span<double> y) {
    spmv<double, double>(A, x, y);
  };
  const std::size_t n = p.b.size();
  avec<double> pressure(n, 0.0), rhs = p.b;

  double total_iters = 0.0, total_seconds = 0.0;
  for (int step = 0; step < steps; ++step) {
    SolveOptions opts;
    opts.rtol = 1e-8;
    opts.max_iters = 300;
    const SolveResult res = pgmres<double>(op, {rhs.data(), n},
                                           {pressure.data(), n}, *M, opts);
    if (!res.converged) {
      std::printf("step %d failed: %s\n", step, res.status().c_str());
      return 1;
    }
    total_iters += res.iters;
    total_seconds += res.solve_seconds;
    std::printf("step %2d: %3d GMRES iters, %.3fs, relres %.1e\n", step,
                res.iters, res.solve_seconds, res.final_relres);
    // Next step's source terms: inject at one corner well, produce at the
    // opposite one, plus the compressibility term from the new pressure.
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = 0.9 * rhs[i] + 1e-3 * pressure[i];
    }
    rhs[0] += 1.0;
    rhs[n - 1] -= 1.0;
  }
  std::printf("\ntotal: %.1f iters avg/step, %.3fs solve time; setup share"
              " amortized to %.1f%%\n", total_iters / steps, total_seconds,
              100.0 * hierarchy.setup_seconds() /
                  (hierarchy.setup_seconds() + total_seconds));
  return 0;
}
