// Fused vs unfused V-cycle downstroke: measured time and modeled traffic.
//
// The downstroke of every level computes r = f - A u and restricts it; the
// unfused reference writes the full residual vector and immediately
// re-reads it, two full-vector passes the fused residual_restrict kernel
// (kernels/fused.hpp) eliminates.  Both paths are bitwise identical, so
// this bench reports (a) per-config V-cycle times fused vs unfused across
// 1-8 threads and FP64/FP32/FP16 storage, (b) the perfmodel's downstroke
// bytes per level, and (c) a solver-level check that fused and unfused
// convergence histories coincide (same iteration count, same final
// residual) on every registered problem.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/harness.hpp"
#include "kernels/blas1.hpp"
#include "perfmodel/bytes.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

using namespace smg;

namespace {

void set_threads(int nt) {
#if defined(_OPENMP)
  omp_set_num_threads(nt);
#else
  (void)nt;
#endif
}

double measure_vcycle_ms(const Problem& p, MGConfig cfg) {
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  const std::size_t n = static_cast<std::size_t>(h.level(0).A_full.nrows());
  avec<float> r(n, 1.0f), e(n, 0.0f);
  const int cycles = 10;
  double best = 1e30;
  if (cfg.compute == Prec::FP64) {
    MGPrecond<double> M(&h);
    avec<double> rd(n, 1.0), ed(n, 0.0);
    for (int rep = 0; rep < 3; ++rep) {  // rep 0 doubles as warm-up
      Timer t;
      for (int c = 0; c < cycles; ++c) {
        M.apply({rd.data(), n}, {ed.data(), n});
      }
      best = std::min(best, t.seconds());
    }
  } else {
    MGPrecond<float> M(&h);
    for (int rep = 0; rep < 3; ++rep) {
      Timer t;
      for (int c = 0; c < cycles; ++c) {
        M.apply({r.data(), n}, {e.data(), n});
      }
      best = std::min(best, t.seconds());
    }
  }
  return best * 1000.0 / cycles;
}

/// Modeled downstroke traffic of one V-cycle (all levels above the coarsest),
/// fused or unfused, in MB.
double modeled_downstroke_mb(const MGHierarchy& h, bool fused) {
  const MGConfig& cfg = h.config();
  double bytes = 0.0;
  for (int l = 0; l + 1 < h.nlevels(); ++l) {
    const Level& L = h.level(l);
    const int bs = L.A_full.block_size();
    const double mf = static_cast<double>(L.A_full.nrows());
    const double mc =
        static_cast<double>(L.to_coarse.coarse.size()) * bs;
    const double nnz = static_cast<double>(L.A_full.ncells()) *
                       L.A_full.stencil().ndiag() * bs * bs;
    bytes += downstroke_bytes(nnz, mf, mc, cfg.storage_at(l), cfg.compute,
                              L.scaled, fused);
  }
  return bytes / (1024.0 * 1024.0);
}

struct StorageCfg {
  const char* name;
  MGConfig cfg;
};

}  // namespace

SMG_BENCH(fig_vcycle_traffic,
          "PAPER.md S5 (memory-bound kernels); ISSUE 2 tentpole",
          bench::kPaper) {
  bench::print_header(
      "Fused residual->restrict vs two-step downstroke: V-cycle time and "
      "modeled traffic",
      "PAPER.md S5 (memory-bound kernels); ISSUE 2 tentpole");

  std::vector<int> threads = {1, 2, 4, 8};
#if defined(_OPENMP)
  std::printf("host procs: %d\n\n", omp_get_num_procs());
#else
  threads = {1};
  std::printf("OpenMP off: single-thread only\n\n");
#endif
  if (ctx.smoke() && threads.size() > 2) {
    threads.resize(2);  // {1, 2}
  }

  const StorageCfg storages[] = {
      {"fp64", config_full64()},
      {"fp32", config_k64p32d32()},
      {"fp16", config_d16_setup_scale()},
  };

  // --- (a) measured V-cycle time, fused vs unfused ------------------------
  Table t({"problem", "storage", "threads", "unfused ms", "fused ms",
           "speedup", "model unfused MB", "model fused MB"});
  for (const auto& name : {"laplace27", "rhd"}) {
    const Problem p = make_problem(name, ctx.box(name));
    for (const StorageCfg& sc : storages) {
      MGConfig cfg = sc.cfg;
      cfg.min_coarse_cells = 64;

      // Modeled traffic is thread-independent; compute once per config.
      double mb_unfused = 0.0, mb_fused = 0.0;
      {
        StructMat<double> A = p.A;
        MGHierarchy h(std::move(A), cfg);
        mb_unfused = modeled_downstroke_mb(h, false);
        mb_fused = modeled_downstroke_mb(h, true);
      }
      const std::string ckey = std::string(name) + "/" + sc.name;
      // Closed-form byte model at the recorded box: gate it.
      ctx.value(ckey + "/model_unfused_mb", mb_unfused, "MB",
                bench::Better::Lower, /*gate=*/true);
      ctx.value(ckey + "/model_fused_mb", mb_fused, "MB",
                bench::Better::Lower, /*gate=*/true);

      for (int nt : threads) {
        set_threads(nt);
        MGConfig off = cfg;
        off.fused_transfers = FusedTransfers::Off;
        MGConfig on = cfg;
        on.fused_transfers = FusedTransfers::On;
        const double ms_off = measure_vcycle_ms(p, off);
        const double ms_on = measure_vcycle_ms(p, on);
        const double sx = ms_off / ms_on;
        const std::string key = ckey + "/t" + std::to_string(nt);
        ctx.value(key + "/fused_ms", ms_on, "ms", bench::Better::Lower);
        ctx.value(key + "/fused_speedup", sx, "x", bench::Better::Higher);
        t.row({name, sc.name, std::to_string(nt), Table::fmt(ms_off, 3),
               Table::fmt(ms_on, 3), Table::fmt(sx, 2) + "x",
               Table::fmt(mb_unfused, 2), Table::fmt(mb_fused, 2)});
      }
    }
  }
  std::printf("\n");
  t.print();
#if defined(_OPENMP)
  if (omp_get_num_procs() < threads.back()) {
    std::printf(
        "\nnote: host has %d hardware thread(s); larger thread counts "
        "oversubscribe.\nWhen the working set fits in cache the eliminated "
        "residual store+load never\nreaches DRAM and measured speedups sit "
        "near 1.0 — the model columns give the\nDRAM-traffic saving that "
        "governs bandwidth-bound machines (PAPER.md S5).\n",
        omp_get_num_procs());
  }
#endif

  // --- (b) modeled per-level traffic for the fp16 laplace27 case ----------
  {
    MGConfig cfg = config_d16_setup_scale();
    cfg.min_coarse_cells = 64;
    StructMat<double> A =
        make_problem("laplace27", ctx.box("laplace27")).A;
    MGHierarchy h(std::move(A), cfg);
    std::printf("\nper-level downstroke bytes, laplace27 fp16 storage:\n");
    Table lt({"level", "rows", "unfused KB", "fused KB", "saved KB"});
    for (int l = 0; l + 1 < h.nlevels(); ++l) {
      const Level& L = h.level(l);
      const int bs = L.A_full.block_size();
      const double mf = static_cast<double>(L.A_full.nrows());
      const double mc = static_cast<double>(L.to_coarse.coarse.size()) * bs;
      const double nnz = static_cast<double>(L.A_full.ncells()) *
                         L.A_full.stencil().ndiag() * bs * bs;
      const double u = downstroke_bytes(nnz, mf, mc, cfg.storage_at(l),
                                        cfg.compute, L.scaled, false);
      const double f = downstroke_bytes(nnz, mf, mc, cfg.storage_at(l),
                                        cfg.compute, L.scaled, true);
      lt.row({std::to_string(l), Table::fmt(mf, 0), Table::fmt(u / 1024.0, 1),
              Table::fmt(f / 1024.0, 1), Table::fmt((u - f) / 1024.0, 1)});
    }
    lt.print();
  }

  // --- (c) convergence histories must be identical ------------------------
  // The preconditioner is bitwise identical fused-vs-unfused at any thread
  // count (tests/core/test_mg_precond.cpp), and with deterministic
  // reductions the Krylov dot products are too (fixed-blocking pairwise
  // combination, kernels/blas1.hpp dot_deterministic) — so the bitwise
  // history comparison runs fully multi-threaded, no 1-thread fallback.
  std::printf("\nfused-vs-unfused solver check (bitwise-identical histories, "
              "deterministic reductions, %d thread(s)):\n", threads.back());
  Table ct({"problem", "iters off", "iters on", "identical"});
  bool all_same = true;
  set_threads(threads.back());
  for (const std::string& name : problem_names()) {
    const Problem p = make_problem(name, ctx.box(name));
    MGConfig off = config_d16_setup_scale();
    off.min_coarse_cells = 64;
    MGConfig on = off;
    off.fused_transfers = FusedTransfers::Off;
    on.fused_transfers = FusedTransfers::On;
    const auto ro = bench::run_e2e(p, off, 300, 1e-8, /*deterministic=*/true);
    const auto rn = bench::run_e2e(p, on, 300, 1e-8, /*deterministic=*/true);
    const bool same = ro.solve.iters == rn.solve.iters &&
                      ro.solve.final_relres == rn.solve.final_relres &&
                      ro.solve.history == rn.solve.history;
    all_same = all_same && same;
    ctx.value(name + "/history_identical", same ? 1.0 : 0.0, "bool",
              bench::Better::None, /*gate=*/true);
    ct.row({name, std::to_string(ro.solve.iters),
            std::to_string(rn.solve.iters), same ? "yes" : "NO"});
  }
  ct.print();
  std::printf("\nall histories identical: %s\n", all_same ? "yes" : "NO");
  if (!all_same) {
    ctx.fail("fused-vs-unfused convergence histories diverged");
  }
}
