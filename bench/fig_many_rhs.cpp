// Batched many-RHS throughput: solve_many() vs per-RHS sequential solves.
//
// The throughput-mode claim (ISSUE 6 tentpole): with k right-hand sides in
// one panel, every matrix-shaped kernel streams its matrix once for all k
// columns, so per-solve memory traffic drops toward the vector-only floor
// and solves/sec rises well above the sequential baseline.  This bench
// reports, for k in {1, 2, 4, 8, 16}:
//   (a) the setup/apply split — one HierarchyCache'd setup amortized over
//       every solve (a cache hit must return the same setup, gated),
//   (b) measured solves/sec, batched vs sequential, same fixed per-solve
//       iteration budget (speedup at k = 8 is asserted >= 2x),
//   (c) the k-parameterized byte model per V-cycle level (gated: modeled
//       bytes are machine-independent), with the k = 1 column asserted
//       exactly equal to the single-RHS model, and
//   (d) a bitwise self-check: a panel of k copies of one RHS reproduces
//       the single-RHS convergence history in every column (gated).
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/hierarchy_cache.hpp"
#include "harness/harness.hpp"
#include "perfmodel/bytes.hpp"
#include "solvers/solve_many.hpp"
#include "util/rng.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

using namespace smg;

namespace {

/// Modeled compulsory traffic of one k-column V-cycle (smoothing +
/// downstroke + prolongation on every level above the coarsest), priced by
/// the k-parameterized panel models.
double vcycle_many_bytes(const MGHierarchy& h, int k) {
  const MGConfig& cfg = h.config();
  const bool fused = cfg.fused_transfers != FusedTransfers::Off;
  double bytes = 0.0;
  for (int l = 0; l + 1 < h.nlevels(); ++l) {
    const Level& L = h.level(l);
    const int bs = L.A_full.block_size();
    const double mf = static_cast<double>(L.A_full.nrows());
    const double mc = static_cast<double>(L.to_coarse.coarse.size()) * bs;
    const double nnz = static_cast<double>(L.A_full.ncells()) *
                       L.A_full.stencil().ndiag() * bs * bs;
    const Prec mat = cfg.storage_at(l);
    bytes += cfg.nu1 * symgs_sweep_many_bytes(nnz, mf, mat, cfg.compute,
                                              L.scaled, k);
    bytes += downstroke_many_bytes(nnz, mf, mc, mat, cfg.compute, L.scaled,
                                   fused, k);
    bytes += prolong_many_bytes(mf, mc, cfg.compute, k);
    bytes += cfg.nu2 * symgs_sweep_many_bytes(nnz, mf, mat, cfg.compute,
                                              L.scaled, k);
  }
  return bytes;
}

/// Same sum priced by the single-RHS models (the k = 1 reference).
double vcycle_single_bytes(const MGHierarchy& h) {
  const MGConfig& cfg = h.config();
  const bool fused = cfg.fused_transfers != FusedTransfers::Off;
  double bytes = 0.0;
  for (int l = 0; l + 1 < h.nlevels(); ++l) {
    const Level& L = h.level(l);
    const int bs = L.A_full.block_size();
    const double mf = static_cast<double>(L.A_full.nrows());
    const double mc = static_cast<double>(L.to_coarse.coarse.size()) * bs;
    const double nnz = static_cast<double>(L.A_full.ncells()) *
                       L.A_full.stencil().ndiag() * bs * bs;
    const Prec mat = cfg.storage_at(l);
    bytes += cfg.nu1 *
             symgs_sweep_bytes(nnz, mf, mat, cfg.compute, L.scaled);
    bytes +=
        downstroke_bytes(nnz, mf, mc, mat, cfg.compute, L.scaled, fused);
    bytes += prolong_bytes(mf, mc, cfg.compute);
    bytes += cfg.nu2 *
             symgs_sweep_bytes(nnz, mf, mat, cfg.compute, L.scaled);
  }
  return bytes;
}

}  // namespace

SMG_BENCH(fig_many_rhs,
          "ISSUE 6 tentpole: many-RHS throughput (PAPER.md S5 bandwidth "
          "model amortized over a panel)",
          bench::kSmoke | bench::kPaper) {
  bench::print_header(
      "Batched many-RHS V-cycle: one matrix stream for k right-hand sides",
      "ISSUE 6 tentpole; PAPER.md S5 (memory-bound kernels)");
#if defined(_OPENMP)
  std::printf("host procs: %d, threads: %d\n\n", omp_get_num_procs(),
              omp_get_max_threads());
#endif

  const Problem p = make_problem("laplace27", ctx.box("laplace27"));
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  const std::size_t n = p.b.size();

  // --- (a) setup/apply split through the hierarchy cache ------------------
  HierarchyCache cache(2);
  Timer cold_t;
  const auto h = cache.get_or_build(p.A, cfg);
  const double cold_ms = cold_t.seconds() * 1e3;
  Timer warm_t;
  const auto h_again = cache.get_or_build(p.A, cfg);
  const double warm_ms = warm_t.seconds() * 1e3;
  const bool reused = h.get() == h_again.get();
  std::printf("setup/apply split: cold setup %.2f ms, cached lookup %.4f ms, "
              "reused=%s (hits %llu, misses %llu)\n\n",
              cold_ms, warm_ms, reused ? "yes" : "NO",
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()));
  ctx.value("cache/hit_reuses_setup", reused ? 1.0 : 0.0, "bool",
            bench::Better::None, /*gate=*/true);
  ctx.value("cache/cold_setup_ms", cold_ms, "ms", bench::Better::Lower);
  if (!reused) {
    ctx.fail("hierarchy cache rebuilt on what must be a hit");
  }

  auto M = make_mg_precond<double>(*h);
  const LinOp<double> op = [&p](std::span<const double> x,
                                std::span<double> y) {
    spmv<double, double>(p.A, x, y);
  };
  const LinOpMany<double> op_many = make_spmv_many_op<double>(p.A);

  // Distinct right-hand sides, deterministic.
  const int kmax = 16;
  std::vector<avec<double>> rhs(static_cast<std::size_t>(kmax));
  for (int c = 0; c < kmax; ++c) {
    auto& b = rhs[static_cast<std::size_t>(c)];
    b.resize(n);
    Rng rng(0xB0B5u + static_cast<unsigned>(c));
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = rng.uniform(-1.0, 1.0);
    }
  }

  // --- (b) measured throughput: batched vs sequential ---------------------
  // Fixed per-solve work (same iteration budget, no early exit) so the
  // comparison is pure traffic/bandwidth, not convergence luck.
  SolveOptions sopts;
  sopts.max_iters = ctx.smoke() ? 8 : 10;
  sopts.rtol = 0.0;
  sopts.record_history = false;
  const std::vector<int> ks = {1, 2, 4, 8, 16};
  const int reps = ctx.opts().repeats;
  const int warmup = ctx.opts().warmup;

  Table t({"k", "seq s", "batch s", "seq solves/s", "batch solves/s",
           "speedup"});
  double speedup_at_8 = 0.0;
  for (int k : ks) {
    std::vector<double> seq_s, bat_s;
    avec<double> x(n);
    for (int rep = 0; rep < warmup + reps; ++rep) {
      Timer timer;
      for (int c = 0; c < k; ++c) {
        x.assign(n, 0.0);
        (void)pcg<double>(op,
                          {rhs[static_cast<std::size_t>(c)].data(), n},
                          {x.data(), n}, *M, sopts);
      }
      if (rep >= warmup) {
        seq_s.push_back(timer.seconds());
      }
    }
    MultiVector<double> B(static_cast<std::int64_t>(n), k),
        X(static_cast<std::int64_t>(n), k);
    for (int c = 0; c < k; ++c) {
      B.insert_col(c, std::span<const double>{
                          rhs[static_cast<std::size_t>(c)].data(), n});
    }
    SolveManyOptions mopts;
    mopts.base = sopts;
    // Throughput mode: the fused panel reductions (deterministic, but not
    // bitwise equal to single-RHS histories) are the intended configuration
    // when solves/sec is the goal; the bitwise-mirroring default pays
    // per-iteration panel transposes and is exercised by section (d).
    mopts.fast_reductions = true;
    // Pin the batch width: an ambient SMG_RHS_BATCH would silently chunk
    // the measured panel and fail the gate on a sub-SIMD-width batch.
    mopts.rhs_batch = k;
    for (int rep = 0; rep < warmup + reps; ++rep) {
      X.fill(0.0);
      Timer timer;
      (void)solve_many<double>(op_many, B, X, *M, mopts);
      if (rep >= warmup) {
        bat_s.push_back(timer.seconds());
      }
    }
    const double seq_min = *std::min_element(seq_s.begin(), seq_s.end());
    const double bat_min = *std::min_element(bat_s.begin(), bat_s.end());
    const double speedup = seq_min / bat_min;
    if (k == 8) {
      speedup_at_8 = speedup;
    }
    const std::string key = "k" + std::to_string(k);
    ctx.samples(key + "/sequential_s", seq_s, "s", bench::Better::Lower);
    ctx.samples(key + "/batched_s", bat_s, "s", bench::Better::Lower);
    ctx.value(key + "/speedup_vs_sequential", speedup, "x",
              bench::Better::Higher);
    t.row({std::to_string(k), Table::fmt(seq_min, 4), Table::fmt(bat_min, 4),
           Table::fmt(k / seq_min, 1), Table::fmt(k / bat_min, 1),
           Table::fmt(speedup, 2) + "x"});
  }
  std::printf("measured throughput (fixed %d CG iterations per solve):\n",
              sopts.max_iters);
  t.print();
  std::printf("\nspeedup at k=8: %.2fx (required >= 2x)\n", speedup_at_8);
  if (speedup_at_8 < 2.0) {
    ctx.fail("batched k=8 throughput below 2x the sequential baseline");
  }

  // --- (c) k-parameterized byte model (machine-independent, gated) --------
  std::printf("\nmodeled V-cycle traffic per solve (panel of k columns):\n");
  Table mt({"k", "total MB", "per-solve MB", "vs k=1"});
  const double single = vcycle_single_bytes(*h);
  const double many_k1 = vcycle_many_bytes(*h, 1);
  if (std::memcmp(&single, &many_k1, sizeof(double)) != 0) {
    ctx.fail("k=1 panel byte model != single-RHS byte model (bitwise)");
  }
  for (int k : ks) {
    const double total = vcycle_many_bytes(*h, k);
    const double per = total / k;
    ctx.value("model/k" + std::to_string(k) + "_vcycle_mb_per_solve",
              per / (1024.0 * 1024.0), "MB", bench::Better::Lower,
              /*gate=*/true);
    mt.row({std::to_string(k), Table::fmt(total / (1024.0 * 1024.0), 2),
            Table::fmt(per / (1024.0 * 1024.0), 2),
            Table::fmt(per / single, 3)});
  }
  mt.print();
  // The amortization the measured speedup rides on: per-solve bytes must
  // shrink strictly with k (matrix+q2+inv_diag stream once per panel).
  for (std::size_t i = 1; i < ks.size(); ++i) {
    if (vcycle_many_bytes(*h, ks[i]) / ks[i] >=
        vcycle_many_bytes(*h, ks[i - 1]) / ks[i - 1]) {
      ctx.fail("per-solve byte model not monotone in k");
    }
  }

  // --- (d) bitwise identity self-check ------------------------------------
  SolveOptions iopts;
  iopts.max_iters = 60;
  iopts.rtol = 1e-9;
  // Bitwise identity needs thread-count-invariant reductions: the plain
  // dot() combines per-thread partials in scheduler order, so two ulp-equal
  // solves can diverge in the last bit under OpenMP.
  iopts.deterministic_reductions = true;
  avec<double> x1(n, 0.0);
  const SolveResult single_res =
      pcg<double>(op, {p.b.data(), n}, {x1.data(), n}, *M, iopts);
  const int kid = 4;
  MultiVector<double> Bi(static_cast<std::int64_t>(n), kid),
      Xi(static_cast<std::int64_t>(n), kid);
  for (int c = 0; c < kid; ++c) {
    Bi.insert_col(c, std::span<const double>{p.b.data(), n});
  }
  SolveManyOptions imopts;
  imopts.base = iopts;
  const SolveManyResult many_res =
      solve_many<double>(op_many, Bi, Xi, *M, imopts);
  bool identical = many_res.columns.size() == static_cast<std::size_t>(kid);
  for (const SolveResult& r : many_res.columns) {
    identical = identical && r.iters == single_res.iters &&
                r.history == single_res.history &&
                r.final_relres == single_res.final_relres;
  }
  for (int c = 0; identical && c < kid; ++c) {
    for (std::int64_t rr = 0; rr < Xi.rows(); ++rr) {
      if (std::memcmp(&Xi.at(rr, c), &x1[static_cast<std::size_t>(rr)],
                      sizeof(double)) != 0) {
        identical = false;
        break;
      }
    }
  }
  std::printf("\nbitwise identity (k=%d copies vs single solve, %d iters): "
              "%s\n",
              kid, single_res.iters, identical ? "yes" : "NO");
  ctx.value("identity/histories_identical", identical ? 1.0 : 0.0, "bool",
            bench::Better::None, /*gate=*/true);
  if (!identical) {
    ctx.fail("panel of identical RHS diverged from the single-RHS solve");
  }
}
