// Guideline §3.3 vs Ginkgo's DP-SP-HP: where in the hierarchy FP16 pays.
//
// Sweeps shift_levid (FP16 on levels [0, shift) and FP32 below) and also
// evaluates the *inverted* placement (coarsest-first FP16, Ginkgo-style
// DP-SP-HP) by storing FP32 on the finest level only.  Expected: nearly all
// of the byte savings — and hence speedup — come from the finest levels,
// while convergence is insensitive to coarse-level precision; coarsest-first
// placement buys almost nothing (the paper's critique of [33]).
#include "bench_common.hpp"
#include "harness/harness.hpp"

using namespace smg;

SMG_BENCH(disc_level_placement,
          "Guideline 3.3 + section 4.3 underflow remark",
          bench::kSmoke | bench::kPaper) {
  bench::print_header("FP16 level-placement sweep (shift_levid)",
                      "Guideline 3.3 + section 4.3 underflow remark");

  for (const auto& name : {"laplace27", "rhd"}) {
    const Problem p = make_problem(name, ctx.box(name));
    std::printf("\n--- %s ---\n", name);

    // Count levels first.
    MGConfig probe = config_d16_setup_scale();
    probe.min_coarse_cells = 64;
    int nlev = 0;
    {
      StructMat<double> A = p.A;
      MGHierarchy h(std::move(A), probe);
      nlev = h.nlevels();
    }
    std::printf("levels: %d\n", nlev);

    Table t({"config", "matrix bytes", "vs full-FP32", "iters", "MG seconds",
             "note"});
    double fp32_bytes = 0.0;
    const auto report = [&](const char* label, MGConfig cfg,
                            const char* note) {
      cfg.min_coarse_cells = 64;
      StructMat<double> A = p.A;
      MGHierarchy h(std::move(A), cfg);
      const auto r = bench::run_e2e(p, cfg, 400, 1e-9, true);
      if (cfg.storage == Prec::FP32) {
        fp32_bytes = static_cast<double>(h.stored_matrix_bytes());
      }
      const double rel =
          fp32_bytes > 0.0
              ? static_cast<double>(h.stored_matrix_bytes()) / fp32_bytes
              : 1.0;
      // Byte counts and (deterministic) iteration counts per placement are
      // the guideline-3.3 evidence — gate both.
      const std::string key = std::string(name) + "/" + label;
      ctx.value(key + "/matrix_bytes_vs_fp32", rel, "frac",
                bench::Better::Lower, /*gate=*/true);
      ctx.value(key + "/iters", static_cast<double>(r.solve.iters), "iters",
                bench::Better::Lower, /*gate=*/true);
      ctx.value(key + "/mg_seconds", r.precond_seconds, "s",
                bench::Better::Lower);
      t.row({label, std::to_string(h.stored_matrix_bytes()),
             Table::fmt(100.0 * rel, 1) + "%", std::to_string(r.solve.iters),
             Table::fmt(r.precond_seconds, 3), note});
    };

    MGConfig fp32 = config_k64p32d32();
    report("all-FP32", fp32, "reference");
    for (int shift = 1; shift <= nlev; ++shift) {
      MGConfig cfg = config_d16_setup_scale();
      cfg.shift_levid = shift;
      char label[64];
      std::snprintf(label, sizeof(label), "FP16 on levels [0,%d)", shift);
      report(label, cfg,
             shift == nlev ? "ours: FP16 everywhere" : "finest-first FP16");
    }
    t.print();
    std::printf("(finest-first placement captures nearly all byte savings\n"
                "at shift_levid = 1-2 already: guideline 3.3.)\n");
  }
}
