// Figure 5: multi-scale (anisotropy) metric statistics per problem,
// plus Table 3's condition-number estimates.
#include "bench_common.hpp"
#include "harness/harness.hpp"
#include "util/stats.hpp"

using namespace smg;

SMG_BENCH(fig5_anisotropy,
          "Figure 5 (+ Table 3 'Aniso.' and 'Cond.' columns)",
          bench::kSmoke | bench::kPaper) {
  bench::print_header("Anisotropy / multi-scale metric per problem",
                      "Figure 5 (+ Table 3 'Aniso.' and 'Cond.' columns)");

  Table t({"problem", "p50 log10(aniso)", "p90", "max", "class(Table3)",
           "cond-est"});
  for (const auto& name : problem_names()) {
    const Problem p = make_problem(name, ctx.box(name));
    auto samples = anisotropy_samples(p.A);
    std::vector<double> v(samples.begin(), samples.end());
    const double cond =
        p.solver == "cg" ? estimate_cond(p.A, 60) : 0.0;  // SPD only
    const double p50 = percentile(v, 50.0);
    // The anisotropy metric is a deterministic matrix scan — gate it; the
    // condition estimate uses threaded spmv reductions, so report only.
    ctx.value(name + "/aniso_p50_log10", p50, "log10",
              bench::Better::None, /*gate=*/true);
    if (cond > 0.0) {
      ctx.value(name + "/cond_estimate", cond, "kappa");
    }
    t.row({name, Table::fmt(p50, 3), Table::fmt(percentile(v, 90.0), 3),
           Table::fmt(maximum({v.data(), v.size()}), 3), p.aniso,
           cond > 0.0 ? Table::sci(cond, 1) : "n/a (nonsym)"});
  }
  t.print();
  std::printf("\n(log10 of max/min directional coupling per cell; 0 means\n"
              "isotropic.  Paper Fig. 5: laplace isotropic; rhd/solid low;\n"
              "oil/weather/rhd-3T/oil-4C high.)\n");
}
