// Figure 3: grid complexity C_G and operator complexity C_O statistics over
// a population of multigrid cases.
//
// The paper samples 60 MFEM example/mesh combinations; we sample the same
// statistic over our problem generators x grid shapes (8 problems x 8
// shapes = 64 cases) and report the same cumulative-frequency checkpoints:
// the paper finds C_G < 1.2 and C_O < 1.5 in 80% of cases.
#include <algorithm>

#include "bench_common.hpp"
#include "harness/harness.hpp"
#include "util/stats.hpp"

using namespace smg;

SMG_BENCH(fig3_complexities,
          "Figure 3 (+ the C_G / C_O columns of Table 3)",
          bench::kSmoke | bench::kPaper) {
  bench::print_header("Grid/operator complexity statistics over MG cases",
                      "Figure 3 (+ the C_G / C_O columns of Table 3)");

  std::vector<Box> shapes = {Box{24, 24, 24}, Box{32, 32, 32},
                             Box{20, 20, 40}, Box{40, 20, 20},
                             Box{16, 32, 24}, Box{28, 28, 12},
                             Box{36, 18, 18}, Box{22, 26, 30}};
  if (ctx.smoke()) {
    shapes.resize(3);  // 8 problems x 3 shapes keeps the statistic meaningful
  }
  std::vector<double> cgs, cos;
  Table t({"problem", "box", "levels", "C_G", "C_O"});
  for (const auto& name : problem_names()) {
    for (const Box& box : shapes) {
      Problem p = make_problem(name, box);
      MGConfig cfg = config_d16_setup_scale();
      cfg.min_coarse_cells = 64;
      MGHierarchy h(std::move(p.A), cfg);
      cgs.push_back(h.grid_complexity());
      cos.push_back(h.operator_complexity());
      char bstr[32];
      std::snprintf(bstr, sizeof(bstr), "%dx%dx%d", box.nx, box.ny, box.nz);
      t.row({name, bstr, std::to_string(h.nlevels()),
             Table::fmt(h.grid_complexity(), 3),
             Table::fmt(h.operator_complexity(), 3)});
    }
  }
  t.print();

  std::printf("\nCumulative frequency (paper: C_G<1.2 and C_O<1.5 in 80%%"
              " of cases; C_G<1.15 and C_O<1.22 in 60%%):\n");
  Table s({"threshold", "fraction of cases"});
  s.row({"C_G < 1.15",
         Table::fmt(100.0 * cumulative_at({cgs.data(), cgs.size()}, 1.15), 1)});
  s.row({"C_G < 1.20",
         Table::fmt(100.0 * cumulative_at({cgs.data(), cgs.size()}, 1.20), 1)});
  s.row({"C_O < 1.22",
         Table::fmt(100.0 * cumulative_at({cos.data(), cos.size()}, 1.22), 1)});
  s.row({"C_O < 1.50",
         Table::fmt(100.0 * cumulative_at({cos.data(), cos.size()}, 1.50), 1)});
  s.print();
  const double cg_med = percentile(cgs, 50.0);
  const double co_med = percentile(cos, 50.0);
  // Coarsening is deterministic FP64 setup: complexity growth means the
  // Galerkin stencil collapse changed — gate the medians and the paper's
  // 80%-checkpoint fractions.
  ctx.value("cg_median", cg_med, "ratio", bench::Better::Lower,
            /*gate=*/true);
  ctx.value("co_median", co_med, "ratio", bench::Better::Lower,
            /*gate=*/true);
  ctx.value("cg_below_1.20_frac",
            cumulative_at({cgs.data(), cgs.size()}, 1.20), "frac",
            bench::Better::Higher, /*gate=*/true);
  ctx.value("co_below_1.50_frac",
            cumulative_at({cos.data(), cos.size()}, 1.50), "frac",
            bench::Better::Higher, /*gate=*/true);
  std::printf("\nmedians: C_G=%.3f  C_O=%.3f  (finest level dominates ->\n"
              "guideline 3.3: put FP16 on the *finest* levels)\n",
              cg_med, co_med);
}
