// Discussion §8: number of pre-/post-smoothing sweeps.
//
// The paper keeps nu1 = nu2 = 1 because extra smoothing rarely reduces
// time-to-solution, while it *increases* the share of FP16-accelerable work
// (larger headline speedup, worse absolute time).  This bench quantifies
// both effects.
#include "bench_common.hpp"
#include "harness/harness.hpp"

using namespace smg;

SMG_BENCH(disc_smoothing_ablation,
          "Discussion section 8 (smoothing paragraph)",
          bench::kSmoke | bench::kPaper) {
  bench::print_header("Smoothing-count ablation (nu1 = nu2 = s)",
                      "Discussion section 8 (smoothing paragraph)");

  for (const auto& name : {"laplace27", "rhd", "weather"}) {
    const Problem p = make_problem(name, ctx.box(name));
    std::printf("\n--- %s ---\n", name);
    Table t({"sweeps", "iters 64", "time 64", "iters mix", "time mix",
             "MG share 64", "E2E speedup"});
    for (int s : {1, 2, 3}) {
      MGConfig full = config_full64();
      full.min_coarse_cells = 64;
      full.nu1 = s;
      full.nu2 = s;
      MGConfig mix = config_d16_setup_scale();
      mix.min_coarse_cells = 64;
      mix.nu1 = s;
      mix.nu2 = s;
      const auto rf = bench::run_e2e(p, full, 400, 1e-9, true);
      const auto rm = bench::run_e2e(p, mix, 400, 1e-9, true);
      const std::string key =
          std::string(name) + "/s" + std::to_string(s) + "/";
      ctx.value(key + "iters_mix16", static_cast<double>(rm.solve.iters),
                "iters", bench::Better::Lower, /*gate=*/true);
      ctx.value(key + "e2e_speedup",
                rf.total_seconds / rm.total_seconds, "x",
                bench::Better::Higher);
      t.row({std::to_string(s), std::to_string(rf.solve.iters),
             Table::fmt(rf.total_seconds, 3),
             std::to_string(rm.solve.iters),
             Table::fmt(rm.total_seconds, 3),
             Table::fmt(rf.precond_seconds / rf.total_seconds, 2),
             Table::fmt(rf.total_seconds / rm.total_seconds, 2) + "x"});
    }
    t.print();
  }
  std::printf("\n(expected: more sweeps -> larger MG share and E2E speedup,\n"
              "but rarely a better absolute time: the paper's reason for\n"
              "nu1 = nu2 = 1.)\n");
}
