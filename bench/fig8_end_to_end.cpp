// Figures 8/9 + Table 1 'Ours' row: end-to-end performance of solving the
// linear systems, Full64 vs K64P32D16 (setup-then-scale).
//
// For each of the eight problems: normalized phase breakdown (setup
// overhead / MG preconditioner / other), #iters of both configurations, the
// preconditioner speedup and the end-to-end speedup; finishes with the
// geometric means the paper headlines (P.C. ~2.75x, E2E ~1.95x on their
// clusters; single-host numbers land lower but with the same ordering).
#include "bench_common.hpp"
#include "harness/harness.hpp"
#include "obs/report.hpp"
#include "perfmodel/stream.hpp"
#include "util/stats.hpp"

using namespace smg;

namespace {

/// Instrumented rerun of the mixed-precision config: per-level kernel
/// bandwidth (perfmodel bytes / measured span seconds) against the host's
/// STREAM triad — the "% of achievable bandwidth" framing of Figs. 7-8.
void telemetry_section(const bench::Context& ctx, const char* name,
                       double triad_gbs) {
  const Problem p = make_problem(name, ctx.box(name));
  MGConfig cfg = config_d16_setup_scale();
  cfg.min_coarse_cells = 64;
  cfg.telemetry = obs::TelemetryLevel::Counters;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  const LinOp<double> op = [&p](std::span<const double> x,
                                std::span<double> y) {
    spmv<double, double>(p.A, x, y);
  };
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SolveOptions opts;
  opts.max_iters = 400;
  opts.rtol = 1e-9;
  if (p.solver == "cg") {
    pcg<double>(op, {p.b.data(), n}, {x.data(), n}, *M, opts);
  } else {
    pgmres<double>(op, {p.b.data(), n}, {x.data(), n}, *M, opts);
  }
  std::printf("\n--- %s, K64P32D16-setup-scale, achieved vs modeled ---\n",
              name);
  const obs::SolverReport rep =
      obs::build_report(*M->telemetry(), h, triad_gbs, Prec::FP64);
  obs::print_report(rep);
  obs::emit_from_env(rep, *M->telemetry());
}

}  // namespace

SMG_BENCH(fig8_end_to_end, "Figures 8/9 and Table 1 (Ours)",
          bench::kSmoke | bench::kPaper) {
  bench::print_header("End-to-end workflow, Full64 vs K64P32D16-setup-scale",
                      "Figures 8/9 and Table 1 (Ours)");

  Table t({"problem", "iters 64", "iters mix", "setup64", "mg64", "other64",
           "setupMix", "mgMix", "otherMix", "P.C. speedup", "E2E speedup"});
  std::vector<double> pc_speedups, e2e_speedups;

  for (const auto& name : problem_names()) {
    const Problem p = make_problem(name, ctx.box(name));
    MGConfig full = config_full64();
    full.min_coarse_cells = 64;
    MGConfig mix = config_d16_setup_scale();
    mix.min_coarse_cells = 64;

    // Deterministic reductions make the iteration counts thread-invariant
    // (gateable); the phase timings stay wall-clock.  Warm once (page-in),
    // then best-of-2 (the host is timing-noisy).
    bench::run_e2e(p, full, 5, 1e-2);
    auto rf = bench::run_e2e(p, full, 400, 1e-9, /*deterministic=*/true);
    auto rm = bench::run_e2e(p, mix, 400, 1e-9, /*deterministic=*/true);
    std::vector<double> mix_totals = {rm.total_seconds};
    {
      const auto rf2 = bench::run_e2e(p, full, 400, 1e-9, true);
      const auto rm2 = bench::run_e2e(p, mix, 400, 1e-9, true);
      mix_totals.push_back(rm2.total_seconds);
      if (rf2.total_seconds < rf.total_seconds) {
        rf = rf2;
      }
      if (rm2.total_seconds < rm.total_seconds) {
        rm = rm2;
      }
    }

    const double norm = rf.total_seconds;  // normalize to Full64 total
    const double pc_speedup =
        (rf.precond_seconds / rm.precond_seconds);
    const double e2e_speedup = rf.total_seconds / rm.total_seconds;
    pc_speedups.push_back(pc_speedup);
    e2e_speedups.push_back(e2e_speedup);

    ctx.value(std::string(name) + "/iters_full64",
              static_cast<double>(rf.solve.iters), "iters",
              bench::Better::Lower, /*gate=*/true);
    ctx.value(std::string(name) + "/iters_mix16",
              static_cast<double>(rm.solve.iters), "iters",
              bench::Better::Lower, /*gate=*/true);
    ctx.value(std::string(name) + "/pc_speedup", pc_speedup, "x",
              bench::Better::Higher);
    ctx.value(std::string(name) + "/e2e_speedup", e2e_speedup, "x",
              bench::Better::Higher);
    // Timed + gated: this is the headline time-to-solution the harness
    // trajectory tracks.  Same-host baselines gate it (10% timed tolerance,
    // noise-widened); cross-host comparisons pass --no-gate-time.
    ctx.samples(std::string(name) + "/total_seconds_mix16", mix_totals, "s",
                bench::Better::Lower, /*gate=*/true, /*timed=*/true);

    t.row({name, std::to_string(rf.solve.iters),
           std::to_string(rm.solve.iters),
           Table::fmt(rf.setup_seconds / norm, 3),
           Table::fmt(rf.precond_seconds / norm, 3),
           Table::fmt(rf.other_seconds / norm, 3),
           Table::fmt(rm.setup_seconds / norm, 3),
           Table::fmt(rm.precond_seconds / norm, 3),
           Table::fmt(rm.other_seconds / norm, 3),
           Table::fmt(pc_speedup, 2) + "x", Table::fmt(e2e_speedup, 2) + "x"});
  }
  t.print();

  const double pc_geo = geomean({pc_speedups.data(), pc_speedups.size()});
  const double e2e_geo = geomean({e2e_speedups.data(), e2e_speedups.size()});
  ctx.value("geomean_pc_speedup", pc_geo, "x", bench::Better::Higher);
  ctx.value("geomean_e2e_speedup", e2e_geo, "x", bench::Better::Higher);
  std::printf("\ngeomean preconditioner speedup: %.2fx   (paper: ~2.7-2.8x"
              " on 32-64 core NUMA nodes)\n",
              pc_geo);
  std::printf("geomean end-to-end speedup:     %.2fx   (paper: ~1.9-2.0x)\n",
              e2e_geo);
  std::printf("\n(times normalized to each problem's Full64 total, as in\n"
              "Fig. 8; single-core absolute speedups are bounded by this\n"
              "host's cache/bandwidth behavior rather than a NUMA node's.)\n");

  // --- telemetry: per-level achieved GB/s vs the byte model ---------------
  if (!ctx.smoke()) {  // STREAM + instrumented reruns; paper suite only
    const StreamResult stream = measure_stream();
    std::printf("\nSTREAM triad on this host: %.2f GB/s (bandwidth"
                " reference)\n",
                stream.triad_gbs);
    for (const char* name : {"laplace27", "oil"}) {
      telemetry_section(ctx, name, stream.triad_gbs);
    }
  }
}
