// Figure 6: descending curves of relative residual norm for five
// representative problems under five precision/strategy combinations:
//   Full64, K64P32D32, K64P32D16-none, K64P32D16-scale-setup,
//   K64P32D16-setup-scale.
//
// Expected shape (paper):
//  (a) laplace27      — all five curves coincide;
//  (b) laplace27*1e8  — all but '-none' coincide; '-none' fails (NaN);
//  (c) weather        — setup-scale converges in fewer iterations than
//                       scale-setup; '-none' fails;
//  (d) rhd            — scale-setup does not converge, setup-scale does;
//  (e) rhd-3T         — same, amplified.
#include <algorithm>

#include "bench_common.hpp"
#include "harness/harness.hpp"

using namespace smg;

namespace {

struct Config {
  const char* label;
  MGConfig cfg;
};

SolveResult run(const Problem& p, MGConfig cfg, int iters) {
  cfg.min_coarse_cells = 64;
  // Deterministic reductions: iteration counts become thread-invariant, so
  // they can be hard-gated in BENCH_*.json.
  return bench::run_e2e(p, cfg, iters, 1e-10, /*deterministic=*/true).solve;
}

}  // namespace

SMG_BENCH(fig6_convergence_ablation, "Figure 6 (a)-(e)",
          bench::kSmoke | bench::kPaper) {
  bench::print_header("Convergence ablation across precision strategies",
                      "Figure 6 (a)-(e)");

  const std::vector<std::pair<std::string, int>> problems = {
      {"laplace27", 14},  {"laplace27e8", 14}, {"weather", 40},
      {"rhd", 80},        {"rhd3t", 120}};
  const std::vector<Config> configs = {
      {"Full64", config_full64()},
      {"K64P32D32", config_k64p32d32()},
      {"K64P32D16-none", config_d16_none()},
      {"K64P32D16-scale-setup", config_d16_scale_setup()},
      {"K64P32D16-setup-scale", config_d16_setup_scale()},
  };

  for (const auto& [name, iters] : problems) {
    const Problem p = make_problem(name, ctx.box(name));
    std::printf("\n--- %s (%s, %lld dofs) ---\n", name.c_str(),
                p.solver.c_str(), static_cast<long long>(p.A.nrows()));
    std::vector<SolveResult> results;
    for (const auto& c : configs) {
      results.push_back(run(p, c.cfg, iters));
    }

    // Residual-descent curves, one column per configuration.
    Table t({"iter", configs[0].label, configs[1].label, configs[2].label,
             configs[3].label, configs[4].label});
    std::size_t maxlen = 0;
    for (const auto& r : results) {
      maxlen = std::max(maxlen, r.history.size());
    }
    const std::size_t stride = maxlen > 24 ? (maxlen + 23) / 24 : 1;
    for (std::size_t i = 0; i < maxlen; i += stride) {
      std::vector<std::string> row{std::to_string(i)};
      for (const auto& r : results) {
        if (i < r.history.size() && std::isfinite(r.history[i])) {
          row.push_back(Table::sci(r.history[i], 1));
        } else if (i < static_cast<std::size_t>(iters) && r.breakdown) {
          row.push_back("NaN");
        } else {
          row.push_back("-");
        }
      }
      t.row(std::move(row));
    }
    t.print();

    Table s({"config", "status", "#iter", "final relres"});
    for (std::size_t c = 0; c < configs.size(); ++c) {
      s.row({configs[c].label, results[c].status(),
             std::to_string(results[c].iters),
             Table::sci(results[c].final_relres, 1)});
      // Deterministic solves at the recorded box: iteration counts (and
      // whether a config converges at all) are the paper's Fig. 6 claim —
      // gate them.  The '-none' strategy is *expected* to break down on the
      // out-of-range problems, so convergence itself is recorded as a
      // metric rather than a failure.
      ctx.value(name + "/" + configs[c].label + "/iters",
                static_cast<double>(results[c].iters), "iters",
                bench::Better::Lower, /*gate=*/true);
      ctx.value(name + "/" + configs[c].label + "/converged",
                results[c].converged ? 1.0 : 0.0, "bool",
                bench::Better::None, /*gate=*/true);
    }
    s.print();
  }
}
