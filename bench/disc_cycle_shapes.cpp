// Cycle shapes vs discretization error (docs/CYCLE_SHAPES.md): does ONE
// F-cycle reach discretization error, and on which storage-ladder rungs?
//
// The classical FMG claim is that a single F-cycle lands within a small
// factor of ||u_h - u*|| (the discretization error of the grid).  The
// manufactured laplace27 problems make that measurable: u* is known in
// closed form, u_h is computed once per problem by a tight FP64 PCG, and
// every rung of the storage ladder then answers "how many V-cycle polish
// iterations after the F-cycle until ||x - u*|| <= 1.5 ||u_h - u*||?" —
// 0 means the one-F-cycle guarantee holds at that precision (the regime
// map).
//
// The three problems probe the regime boundary deliberately.  The cubic
// and anisotropic-grid MMS instances have FP16-exact stored entries
// (26 and -1), so truncating storage costs nothing on the finest level
// and the guarantee survives every rung down to FP16.  laplace27e8
// scales every entry by 1e8: 2.6e9 = 2^9 * 5078125 needs 23 mantissa
// bits, so no per-level scaling can make its finest entries FP16-exact
// (11 bits) — the bootstrap's fixed point is the solution of the STORED
// system, whose offset kappa*eps*||u|| grows past the h^2 discretization
// error as the grid refines.  That problem is regime-map evidence, not a
// gate; the {FP32,FP16} mixed rung shows promoting ONLY the finest level
// (24 mantissa bits: exact) restores the guarantee.  Gates:
//   * FP64 and all-FP16 storage keep the guarantee (0 polish) on both
//     FP16-exact problems — the paper's headline extended to FMG,
//   * F-cycle time-to-discretization-error beats the V-cycle PCG solve of
//     the same config to the same error level on both gated problems,
//   * the decomposed F-cycle's halo ledger equals the perfmodel prediction
//     EXACTLY, and the measured per-level visit counts and conversion
//     volume equal cycle_visits / conversions_per_apply exactly.
#include <array>
#include <string>

#include "bench_common.hpp"
#include "harness/harness.hpp"
#include "kernels/blas1.hpp"
#include "obs/counters.hpp"
#include "obs/telemetry.hpp"
#include "perfmodel/halo.hpp"
#include "solvers/fmg.hpp"

using namespace smg;

namespace {

struct Rung {
  const char* name;
  MGConfig cfg;
};

std::vector<Rung> rungs() {
  std::vector<Rung> out;
  out.push_back({"fp64", config_full64()});
  out.push_back({"fp32", config_k64p32d32()});
  out.push_back({"fp16", config_d16_setup_scale()});
  MGConfig bf16 = config_d16_setup_scale();
  bf16.storage_ladder = {Prec::BF16};
  out.push_back({"bf16", bf16});
  MGConfig fp8tail = config_d16_setup_scale();
  fp8tail.storage_ladder = {Prec::FP16, Prec::FP16, Prec::FP8};
  out.push_back({"fp16+fp8tail", fp8tail});
  // Finest level FP32, everything coarser FP16: isolates whether the
  // one-F-cycle regime boundary is set by the finest stored matrix alone.
  MGConfig f32tail = config_d16_setup_scale();
  f32tail.storage_ladder = {Prec::FP32, Prec::FP16};
  out.push_back({"fp32+fp16tail", f32tail});
  return out;
}

/// One manufactured-solution instance of the regime map.  `gated` marks
/// the FP16-exact problems whose fp64/fp16 rungs must keep the
/// one-F-cycle guarantee; laplace27e8_mms stays ungated because its
/// finest entries cannot be stored exactly below FP32 (see header).
struct MmsProblem {
  const char* name;
  Box box;
  double scale;
  bool gated;
};

Problem make_mms(const MmsProblem& mp) {
  return mp.scale == 1.0 ? make_laplace27_mms(mp.box)
                         : make_laplace27e8_mms(mp.box);
}

/// Exact discrete solution by FP64 PCG at rtol 1e-12 (deterministic, so the
/// reference is identical across repeats and thread counts).
avec<double> discrete_solution(const Problem& p) {
  MGConfig cfg = config_full64();
  cfg.min_coarse_cells = 64;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  const LinOp<double> op = [&p](std::span<const double> x,
                                std::span<double> y) {
    spmv<double, double>(p.A, x, y);
  };
  const std::size_t n = p.b.size();
  avec<double> uh(n, 0.0);
  SolveOptions opts;
  opts.rtol = 1e-12;
  opts.max_iters = 500;
  opts.deterministic_reductions = true;
  (void)pcg<double>(op, {p.b.data(), n}, {uh.data(), n}, *M, opts);
  return uh;
}

double err_norm(std::span<const double> x, std::span<const double> u) {
  avec<double> d(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    d[i] = x[i] - u[i];
  }
  return nrm2<double>({d.data(), d.size()});
}

}  // namespace

SMG_BENCH(disc_cycle_shapes,
          "FMG F-cycle vs discretization error across storage rungs "
          "(docs/CYCLE_SHAPES.md)",
          bench::kSmoke | bench::kPaper) {
  bench::print_header("Cycle shapes: one F-cycle to discretization error?",
                      "docs/CYCLE_SHAPES.md regime map");

  // MMS shares the laplace27 scale; the anisotropic instance runs the
  // same stencil on a GRAPES-style flattened grid (per-axis h in the
  // manufactured rhs makes the discrete solution genuinely anisotropic).
  const Box cube = ctx.box("laplace27");
  const Box flat{cube.nx, cube.ny, std::max(cube.nz / 2, 8)};
  const std::array<MmsProblem, 3> problems = {{
      {"laplace27_mms", cube, 1.0, /*gated=*/true},
      {"laplace27aniso_mms", flat, 1.0, /*gated=*/true},
      {"laplace27e8_mms", cube, 1e8, /*gated=*/false},
  }};
  const double ratio_tol = 1.5;  // "reached discretization error" factor

  Table t({"problem", "rung", "disc err", "F err ratio", "polish to disc",
           "one-F-cycle?"});
  for (const MmsProblem& mp : problems) {
    const char* pname = mp.name;
    const Problem p = make_mms(mp);
    const avec<double> ustar = laplace27_mms_solution(mp.box);
    const avec<double> uh = discrete_solution(p);
    const std::size_t n = p.b.size();
    const double disc = err_norm({uh.data(), n}, {ustar.data(), n});
    if (!(disc > 0.0)) {
      ctx.fail(std::string(pname) + ": degenerate discretization error");
      continue;
    }
    const LinOp<double> op = [&p](std::span<const double> x,
                                  std::span<double> y) {
      spmv<double, double>(p.A, x, y);
    };

    for (const Rung& rung : rungs()) {
      MGConfig cfg = rung.cfg;
      cfg.min_coarse_cells = 64;
      StructMat<double> A = p.A;
      MGHierarchy h(std::move(A), cfg);
      auto M = make_mg_precond<double>(h);

      FmgOptions<double> fopts;
      fopts.max_polish = 8;
      fopts.rtol = 0.0;
      fopts.u_exact = {ustar.data(), n};
      fopts.error_tol = ratio_tol * disc;
      avec<double> x(n, 0.0);
      const FmgResult res =
          fmg_solve<double>(op, {p.b.data(), n}, {x.data(), n}, *M, fopts);

      // Error ratio after the bootstrap F-cycle alone (history[0]).
      const double boot_err =
          res.error_history.empty() ? -1.0 : res.error_history.front();
      const double boot_ratio = boot_err >= 0.0 ? boot_err / disc : -1.0;
      const int polish = res.converged ? res.polish_iters : -1;
      const bool one_cycle = res.converged && res.polish_iters == 0;

      const std::string key =
          std::string(pname) + "/" + rung.name;
      // Machine-independent regime map: polish count to discretization
      // error per rung (-1 = never reached within max_polish).
      ctx.value(key + "/polish_to_disc", static_cast<double>(polish),
                "iters", bench::Better::Lower, /*gate=*/true);
      ctx.value(key + "/fcycle_err_ratio", boot_ratio, "x",
                bench::Better::Lower, /*gate=*/false);

      if (mp.gated && std::string(rung.name) == "fp16" && !one_cycle) {
        ctx.fail(key + ": one F-cycle at all-FP16 storage must reach " +
                 "discretization error (got ratio " +
                 Table::fmt(boot_ratio, 3) + ", polish " +
                 std::to_string(polish) + ")");
      }
      if (mp.gated && std::string(rung.name) == "fp64" && !one_cycle) {
        ctx.fail(key + ": one F-cycle at FP64 must reach discretization "
                       "error");
      }
      // Regime boundary self-checks on laplace27e8: all-FP16 must NOT
      // keep the guarantee (otherwise the map's boundary moved and the
      // docs are stale), and promoting only the finest level to FP32
      // must restore it.
      if (!mp.gated && std::string(rung.name) == "fp16" && one_cycle) {
        ctx.fail(key + ": expected the finest-level FP16 truncation floor "
                       "to break the one-F-cycle guarantee here");
      }
      if (!mp.gated && std::string(rung.name) == "fp32+fp16tail" &&
          !one_cycle) {
        ctx.fail(key + ": FP32 finest level should restore the one-F-cycle "
                       "guarantee (got ratio " + Table::fmt(boot_ratio, 3) +
                 ")");
      }

      t.row({pname, rung.name, Table::fmt(disc, 4), Table::fmt(boot_ratio, 3),
             polish < 0 ? std::string(">8") : std::to_string(polish),
             one_cycle ? "yes" : "no"});
    }
  }
  t.print();

  // ---- F-cycle vs V-cycle PCG: time to discretization error -------------
  // Both gated problems at the all-FP16 rung: the acceptance criterion is
  // that the F-cycle beats V-cycle PCG to the same error level wherever
  // the one-F-cycle guarantee holds.
  for (const MmsProblem& mp : problems) {
    if (!mp.gated) {
      continue;
    }
    const Problem p = make_mms(mp);
    const avec<double> ustar = laplace27_mms_solution(mp.box);
    const avec<double> uh = discrete_solution(p);
    const std::size_t n = p.b.size();
    const double disc = err_norm({uh.data(), n}, {ustar.data(), n});
    const LinOp<double> op = [&p](std::span<const double> x,
                                  std::span<double> y) {
      spmv<double, double>(p.A, x, y);
    };
    MGConfig cfg = config_d16_setup_scale();
    cfg.min_coarse_cells = 64;
    StructMat<double> A = p.A;
    MGHierarchy h(std::move(A), cfg);
    auto M = make_mg_precond<double>(h);

    FmgOptions<double> fopts;
    fopts.max_polish = 8;
    fopts.rtol = 0.0;
    fopts.u_exact = {ustar.data(), n};
    fopts.error_tol = ratio_tol * disc;
    avec<double> xf(n, 0.0);
    FmgResult fres =
        fmg_solve<double>(op, {p.b.data(), n}, {xf.data(), n}, *M, fopts);
    const double f_relres = fres.final_relres;

    const std::string key = std::string(mp.name) + "/fp16";
    const double tf = ctx.time(key + "/fcycle_s", [&] {
      avec<double> x0(n, 0.0);
      (void)fmg_solve<double>(op, {p.b.data(), n}, {x0.data(), n}, *M, fopts);
    });
    // V-cycle PCG run to the relative residual the F-cycle stop achieved:
    // the residual level that certifies the same error level on this
    // problem, so both timers answer "seconds to discretization error".
    SolveOptions vopts;
    vopts.rtol = f_relres > 0.0 ? f_relres : 1e-10;
    vopts.max_iters = 400;
    int v_iters = 0;
    double v_err_ratio = 0.0;
    const double tv = ctx.time(key + "/vcycle_pcg_s", [&] {
      avec<double> x0(n, 0.0);
      const SolveResult r =
          pcg<double>(op, {p.b.data(), n}, {x0.data(), n}, *M, vopts);
      v_iters = r.iters;
      v_err_ratio = err_norm({x0.data(), n}, {ustar.data(), n}) / disc;
    });
    ctx.value(key + "/f_vs_vpcg_speedup", tv / tf, "x",
              bench::Better::Higher, /*gate=*/false);
    if (!(tf < tv)) {
      ctx.fail(std::string(mp.name) +
               ": F-cycle time-to-discretization-error did not beat V-cycle "
               "PCG (" + Table::fmt(tf * 1e3, 2) + " ms vs " +
               Table::fmt(tv * 1e3, 2) + " ms)");
    }
    std::printf("\n%s, time to discretization error (fp16 rung): F-cycle "
                "%.2f ms (%d polish) vs V-cycle PCG %.2f ms (%d iters, err "
                "ratio %.3f): %.2fx\n",
                mp.name, tf * 1e3, fres.polish_iters, tv * 1e3, v_iters,
                v_err_ratio, tv / tf);
  }

  // ---- ledger exactness: decomposed F-cycle halo bytes == perfmodel -----
  {
    const std::array<int, 3> nb = {2, 2, 2};
    const std::int64_t min_box = 256;
    MGConfig cfg = config_full64();
    cfg.min_coarse_cells = 64;
    cfg.smoother = SmootherType::Jacobi;
    cfg.cycle = CycleShape::F;
    cfg.decomp = nb;
    cfg.decomp_min_box = min_box;
    Problem p = make_laplace27_mms(ctx.box("laplace27"));
    MGHierarchy h(std::move(p.A), cfg);
    MGPrecond<double> M(&h);
    const std::size_t n = p.b.size();
    avec<double> r(n, 1.0), e(n, 0.0);
    obs::Telemetry tel(obs::TelemetryLevel::Counters, h.nlevels());
    {
      const obs::InstallGuard guard(&tel);
      M.apply({r.data(), n}, {e.data(), n});
    }
    const auto model = model_halo(h, nb, min_box);
    const double measured_b = static_cast<double>(tel.halo_bytes_total());
    const double model_b = static_cast<double>(
        model_halo_bytes_per_apply(model, sizeof(double)));
    if (measured_b != model_b) {
      ctx.fail("decomposed F-cycle halo bytes != perfmodel prediction (" +
               Table::fmt(measured_b, 0) + " vs " + Table::fmt(model_b, 0) +
               ")");
    }
    for (const HaloLevelModel& lm : model) {
      if (!lm.boxed) {
        continue;
      }
      const auto measured_x = tel.halo_exchanges(lm.level);
      if (measured_x != static_cast<std::uint64_t>(lm.exchanges())) {
        ctx.fail("level " + std::to_string(lm.level) +
                 " F-cycle exchange count != model (" +
                 std::to_string(measured_x) + " vs " +
                 std::to_string(lm.exchanges()) + ")");
      }
    }
    ctx.value("laplace27_mms/2x2x2/fcycle_halo_kib_per_apply",
              measured_b / 1024.0, "kib", bench::Better::None, /*gate=*/true);

    // Visit multiplicities and conversion volume on the plain path.
    MGConfig ucfg = config_d16_setup_scale();
    ucfg.min_coarse_cells = 64;
    ucfg.cycle = CycleShape::F;
    ucfg.telemetry = obs::TelemetryLevel::Counters;
    Problem q = make_laplace27_mms(ctx.box("laplace27"));
    MGHierarchy hu(std::move(q.A), ucfg);
    auto Mu = make_mg_precond<double>(hu);
    obs::Telemetry* tu = Mu->telemetry();
    avec<double> ru(n, 1.0), eu(n, 0.0);
    Mu->apply({ru.data(), n}, {eu.data(), n});
    const auto counters = obs::collect_precision_counters(hu);
    for (int l = 0; l < hu.nlevels(); ++l) {
      const std::uint64_t want = static_cast<std::uint64_t>(
          cycle_visits(CycleShape::F, l, hu.nlevels()));
      if (tu->stat(obs::Kind::Level, l).calls != want) {
        ctx.fail("level " + std::to_string(l) +
                 " F-cycle visit count != cycle_visits");
      }
      const auto& c = counters[static_cast<std::size_t>(l)];
      const std::uint64_t passes =
          tu->stat(obs::Kind::SymGS, l).calls +
          tu->stat(obs::Kind::Residual, l).calls +
          tu->stat(obs::Kind::ResidualRestrict, l).calls;
      if (l + 1 < hu.nlevels() &&
          c.conversions_per_apply != passes * c.stored_values) {
        ctx.fail("level " + std::to_string(l) +
                 " modeled conversion volume != measured matrix passes");
      }
    }
    std::printf("\nledgers: halo %.1f KiB/apply == model; visit counts and "
                "conversion volume match cycle_visits exactly\n",
                measured_b / 1024.0);
  }
}
