// Discussion §8: FP16 vs BF16 as the storage precision.
//
// Paper's observation: BF16 needs no scaling (FP32 range) but its 8-bit
// significand costs accuracy; #iter with BF16 is always >= FP16's, with a
// notable gap on rhd (paper: +19% FP16 vs +59% BF16 over Full64 on GPU).
#include "bench_common.hpp"
#include "harness/harness.hpp"
#include "kernels/blas1.hpp"
#include "util/stats.hpp"

using namespace smg;

namespace {

/// Relative deviation of one preconditioner application from the Full64
/// hierarchy on the same residual: isolates the storage-format quantization
/// error (FP16: ~2^-11 per entry; BF16: ~2^-8) that drives the paper's
/// BF16-costs-more-iterations observation on its harder problems.
double vcycle_perturbation(const Problem& p, MGConfig cfg,
                           MGHierarchy& href) {
  cfg.min_coarse_cells = 64;
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  auto Mref = make_mg_precond<double>(href);
  const std::size_t n = p.b.size();
  avec<double> e(n), eref(n);
  M->apply({p.b.data(), n}, {e.data(), n});
  Mref->apply({p.b.data(), n}, {eref.data(), n});
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (e[i] - eref[i]) * (e[i] - eref[i]);
    den += eref[i] * eref[i];
  }
  return std::sqrt(num / den);
}

}  // namespace

SMG_BENCH(disc_bf16_ablation, "Discussion section 8 (BF16 paragraph)",
          bench::kPaper) {
  bench::print_header("FP16 vs BF16 storage precision",
                      "Discussion section 8 (BF16 paragraph)");

  Table t({"problem", "iters Full64", "iters FP16", "iters BF16",
           "FP16 extra", "BF16 extra", "V-cycle err FP16", "err BF16",
           "BF16 scaled?"});
  std::vector<double> ratio16, ratiob16, err16, errb16;
  for (const auto& name : problem_names()) {
    const Problem p = make_problem(name, ctx.box(name));
    MGConfig full = config_full64();
    full.min_coarse_cells = 64;
    MGConfig f16 = config_d16_setup_scale();
    f16.min_coarse_cells = 64;
    MGConfig b16 = f16;
    b16.storage = Prec::BF16;

    const auto rf = bench::run_e2e(p, full, 400, 1e-9, true);
    const auto r16 = bench::run_e2e(p, f16, 400, 1e-9, true);
    const auto rb = bench::run_e2e(p, b16, 400, 1e-9, true);

    StructMat<double> Aref = p.A;
    MGHierarchy href(std::move(Aref), full);
    const double e16 = vcycle_perturbation(p, f16, href);
    const double eb16 = vcycle_perturbation(p, b16, href);
    err16.push_back(e16);
    errb16.push_back(eb16);

    // BF16 never triggers the scaling branch (range == FP32).
    StructMat<double> A = p.A;
    MGHierarchy hb(std::move(A), b16);
    bool any_scaled = false;
    for (int l = 0; l < hb.nlevels(); ++l) {
      any_scaled = any_scaled || hb.level(l).scaled;
    }
    if (any_scaled) {
      ctx.fail(name + ": BF16 hierarchy triggered the scaling branch "
                      "(range == FP32, must never scale)");
    }
    ctx.value(name + "/iters_fp16", static_cast<double>(r16.solve.iters),
              "iters", bench::Better::Lower, /*gate=*/true);
    ctx.value(name + "/iters_bf16", static_cast<double>(rb.solve.iters),
              "iters", bench::Better::Lower, /*gate=*/true);

    auto extra = [&](const bench::E2EResult& r) {
      return 100.0 * (static_cast<double>(r.solve.iters) / rf.solve.iters -
                      1.0);
    };
    ratio16.push_back(static_cast<double>(r16.solve.iters) / rf.solve.iters);
    ratiob16.push_back(static_cast<double>(rb.solve.iters) / rf.solve.iters);
    t.row({name, std::to_string(rf.solve.iters),
           std::to_string(r16.solve.iters) + " (" + r16.solve.status() + ")",
           std::to_string(rb.solve.iters) + " (" + rb.solve.status() + ")",
           Table::fmt(extra(r16), 0) + "%", Table::fmt(extra(rb), 0) + "%",
           Table::sci(e16, 1), Table::sci(eb16, 1),
           any_scaled ? "yes(BUG)" : "no"});
  }
  t.print();
  ctx.value("geomean_iter_inflation_fp16",
            geomean({ratio16.data(), ratio16.size()}), "x",
            bench::Better::Lower, /*gate=*/true);
  ctx.value("geomean_iter_inflation_bf16",
            geomean({ratiob16.data(), ratiob16.size()}), "x",
            bench::Better::Lower, /*gate=*/true);
  ctx.value("geomean_vcycle_err_fp16", geomean({err16.data(), err16.size()}),
            "relerr", bench::Better::Lower);
  ctx.value("geomean_vcycle_err_bf16",
            geomean({errb16.data(), errb16.size()}), "relerr",
            bench::Better::Lower);
  std::printf("\ngeomean iteration inflation over Full64: FP16 %.2fx,"
              " BF16 %.2fx\n",
              geomean({ratio16.data(), ratio16.size()}),
              geomean({ratiob16.data(), ratiob16.size()}));
  std::printf("geomean V-cycle perturbation vs Full64: FP16 %.1e, BF16"
              " %.1e (~%.0fx larger)\n",
              geomean({err16.data(), err16.size()}),
              geomean({errb16.data(), errb16.size()}),
              geomean({errb16.data(), errb16.size()}) /
                  geomean({err16.data(), err16.size()}));
  std::printf("(paper: FP16 <= BF16 in #iter on every problem; at this\n"
              "reproduction's problem hardness both formats cost no extra\n"
              "iterations, so the 8x quantization-accuracy gap is reported\n"
              "directly instead.)\n");
}
