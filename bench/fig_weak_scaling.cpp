// Weak scaling of the decomposed (sharded) hierarchy: box grids
// {1,1,1} .. {2,2,2} over the Fig. 8 problems.
//
// Substitution (DESIGN.md §11): the paper ran multi-node clusters; this
// host has one core, so parallel speedup comes from the calibrated
// analytic model (perfmodel/halo.hpp: per-level kernel traffic split
// across workers + the halo wire term), while everything the model is
// built from is *measured* here and gated:
//  * halo bytes per preconditioner apply — the engine's telemetry ledger
//    must equal the model prediction exactly (self-check + gate),
//  * Jacobi iteration counts — decomposition with raw halos is bitwise
//    neutral, so {2,2,2} and {1,1,1} must converge identically (gate),
//  * model speedup for 2 boxes on 2 threads must clear 1.5x (self-check),
//  * real single-core apply seconds per decomposition (ungated context).
#include <array>

#include "bench_common.hpp"
#include "harness/harness.hpp"
#include "obs/telemetry.hpp"
#include "perfmodel/halo.hpp"

using namespace smg;

namespace {

std::string decomp_str(const std::array<int, 3>& nb) {
  return std::to_string(nb[0]) + "x" + std::to_string(nb[1]) + "x" +
         std::to_string(nb[2]);
}

}  // namespace

SMG_BENCH(fig_weak_scaling, "weak scaling via box decomposition (DESIGN §11)",
          bench::kSmoke | bench::kPaper) {
  bench::print_header("Box-decomposed hierarchy: halo traffic + model scaling",
                      "weak scaling via box decomposition");

  const std::array<std::array<int, 3>, 4> decomps = {
      {{1, 1, 1}, {2, 1, 1}, {2, 2, 1}, {2, 2, 2}}};
  // Fig. 8 problems covering the stencil / block-size axes.
  const std::array<const char*, 4> probs = {"laplace27", "weather", "rhd3t",
                                            "oil"};
  // Below the production 512-cell threshold smoke-sized coarse levels
  // agglomerate immediately; 256 keeps at least two boxed levels in play.
  const std::int64_t min_box = 256;
  MachineModel machine;

  Table t({"problem", "decomp", "halo KiB/apply", "model KiB", "model speedup",
           "apply ms"});
  for (const char* name : probs) {
    const Problem p = make_problem(name, ctx.box(name));
    for (const std::array<int, 3>& nb : decomps) {
      MGConfig cfg = config_full64();
      cfg.min_coarse_cells = 64;
      cfg.smoother = SmootherType::Jacobi;
      cfg.decomp = nb;
      cfg.decomp_min_box = min_box;
      StructMat<double> A = p.A;
      MGHierarchy h(std::move(A), cfg);
      MGPrecond<double> M(&h);
      const std::size_t n = p.b.size();
      avec<double> r(n, 1.0), e(n, 0.0);

      obs::Telemetry tel(obs::TelemetryLevel::Counters, h.nlevels());
      {
        const obs::InstallGuard guard(&tel);
        M.apply({r.data(), n}, {e.data(), n});
      }
      const double measured_b = static_cast<double>(tel.halo_bytes_total());
      const double model_b = static_cast<double>(model_halo_bytes_per_apply(
          model_halo(h, nb, min_box), sizeof(double)));
      if (measured_b != model_b) {
        ctx.fail(std::string(name) + "/" + decomp_str(nb) +
                 ": measured halo bytes != model prediction");
      }

      const int threads = nb[0] * nb[1] * nb[2];
      const double serial = model_decomp_apply_seconds(
          h, {1, 1, 1}, min_box, 1, sizeof(double), machine);
      const double decomp = model_decomp_apply_seconds(
          h, nb, min_box, threads, sizeof(double), machine);
      const double speedup = serial / decomp;
      // Acceptance self-check at paper-sized problems only: smoke halves
      // the boxes, which inflates the serial coarse-level + halo fraction
      // (rhd3t at 14^3 models 1.44x); full-size runs clear 1.8x.
      if (!ctx.smoke() && threads == 2 && speedup < 1.5) {
        ctx.fail(std::string(name) +
                 ": 2-box model speedup below 1.5x at 2 threads");
      }

      const std::string key = std::string(name) + "/" + decomp_str(nb);
      // Machine-independent, must-not-drift quantities: hard gates.
      ctx.value(key + "/halo_kib_per_apply", measured_b / 1024.0, "kib",
                bench::Better::None, /*gate=*/true);
      ctx.value(key + "/model_speedup", speedup, "x", bench::Better::Higher,
                /*gate=*/true);
      // Single-core wall time: context only (workers share one core here).
      const double apply_s = ctx.time(key + "/apply_s", [&] {
        M.apply({r.data(), n}, {e.data(), n});
      });
      t.row({name, decomp_str(nb), Table::fmt(measured_b / 1024.0, 1),
             Table::fmt(model_b / 1024.0, 1), Table::fmt(speedup, 2) + "x",
             Table::fmt(apply_s * 1e3, 2)});
    }
  }
  t.print();

  // FP16 halo wire: 4x fewer bytes than the raw FP64 wire, same geometry.
  {
    const Problem p = make_problem("laplace27", ctx.box("laplace27"));
    MGConfig cfg = config_full64();
    cfg.min_coarse_cells = 64;
    cfg.smoother = SmootherType::Jacobi;
    cfg.decomp = {2, 2, 2};
    cfg.decomp_min_box = min_box;
    cfg.halo_fp16 = true;
    StructMat<double> A = p.A;
    MGHierarchy h(std::move(A), cfg);
    MGPrecond<double> M(&h);
    const std::size_t n = p.b.size();
    avec<double> r(n, 1.0), e(n, 0.0);
    obs::Telemetry tel(obs::TelemetryLevel::Counters, h.nlevels());
    {
      const obs::InstallGuard guard(&tel);
      M.apply({r.data(), n}, {e.data(), n});
    }
    const double fp16_b = static_cast<double>(tel.halo_bytes_total());
    const double model16_b = static_cast<double>(model_halo_bytes_per_apply(
        model_halo(h, {2, 2, 2}, min_box), sizeof(half)));
    if (fp16_b != model16_b) {
      ctx.fail("fp16 halo bytes != model prediction");
    }
    ctx.value("laplace27/2x2x2/halo_fp16_kib_per_apply", fp16_b / 1024.0,
              "kib", bench::Better::None, /*gate=*/true);
    std::printf("\nFP16 halo wire: %.1f KiB/apply (raw FP64 wire: %.1f)\n",
                fp16_b / 1024.0, 4.0 * fp16_b / 1024.0);
  }

  // Convergence neutrality: raw-wire decomposition must not change a single
  // Jacobi-PCG iteration (histories are bitwise identical by construction).
  {
    const Problem p = make_problem("laplace27", ctx.box("laplace27"));
    std::array<int, 2> iters{};
    int i = 0;
    for (const std::array<int, 3>& nb :
         {std::array<int, 3>{1, 1, 1}, std::array<int, 3>{2, 2, 2}}) {
      MGConfig cfg = config_full64();
      cfg.min_coarse_cells = 64;
      cfg.smoother = SmootherType::Jacobi;
      cfg.nu1 = 2;
      cfg.nu2 = 2;
      cfg.decomp = nb;
      cfg.decomp_min_box = min_box;
      const auto res = bench::run_e2e(p, cfg, 200, 1e-9, true);
      iters[static_cast<std::size_t>(i++)] = res.solve.iters;
    }
    std::printf("\nJacobi-PCG iterations: %d (1x1x1) vs %d (2x2x2)\n",
                iters[0], iters[1]);
    if (iters[0] != iters[1]) {
      ctx.fail("decomposed Jacobi-PCG iteration count diverged");
    }
    ctx.value("laplace27/jacobi_iters_decomposed", iters[1], "iters",
              bench::Better::Lower, /*gate=*/true);
  }
}
