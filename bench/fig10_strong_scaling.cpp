// Figure 10: strong-scalability of the full-precision vs mixed-precision
// solvers across core counts.
//
// Substitution (DESIGN.md): the paper ran 64-node ARM/X86 clusters; this
// host has one core, so scaling is produced by the calibrated analytic
// model of src/perfmodel (per-level memory traffic from the real
// hierarchies + halo/allreduce terms), with the iteration counts measured
// from real solves.  The paper's qualitative claims under test:
//  * Mix16 is faster at every scale;
//  * Mix16's parallel efficiency relative to Full* lands in ~60-99%,
//    degrading for the small problems (SIMD starvation + conversion cost).
#include "bench_common.hpp"
#include "harness/harness.hpp"
#include "perfmodel/halo.hpp"
#include "perfmodel/scaling_sim.hpp"

using namespace smg;

SMG_BENCH(fig10_strong_scaling, "Figure 10 (a)-(h)",
          bench::kSmoke | bench::kPaper) {
  bench::print_header("Strong scaling (simulated cluster model)",
                      "Figure 10 (a)-(h)");

  const std::vector<int> cores = {64, 128, 256, 512, 1024, 2048};
  MachineModel machine;  // Kunpeng-920-like NUMA defaults

  Table eff({"problem", "iters64", "itersMix", "speedup@64",
             "speedup@2048", "rel. efficiency"});

  for (const auto& name : problem_names()) {
    const Problem p = make_problem(name, ctx.box(name));
    MGConfig fullc = config_full64();
    fullc.min_coarse_cells = 64;
    MGConfig mixc = config_d16_setup_scale();
    mixc.min_coarse_cells = 64;

    // Measure the iteration counts on the real (host-sized) problem;
    // deterministic reductions make them thread-invariant, so everything
    // derived from them through the analytic model is gateable.
    const auto rf = bench::run_e2e(p, fullc, 400, 1e-9, true);
    const auto rm = bench::run_e2e(p, mixc, 400, 1e-9, true);

    StructMat<double> A1 = p.A;
    StructMat<double> A2 = p.A;
    MGHierarchy hf(std::move(A1), fullc);
    MGHierarchy hm(std::move(A2), mixc);
    const auto pts = simulate_strong_scaling(hf, hm, rf.solve.iters,
                                             rm.solve.iters, machine,
                                             {cores.data(), cores.size()});

    std::printf("\n--- %s total time (model seconds) ---\n", name.c_str());
    Table t({"cores", "Full*", "Mix16", "speedup", "eff Full*", "eff Mix16"});
    for (const auto& pt : pts) {
      const double scale = static_cast<double>(pt.cores) / pts[0].cores;
      t.row({std::to_string(pt.cores), Table::sci(pt.time_full, 2),
             Table::sci(pt.time_mix, 2),
             Table::fmt(pt.time_full / pt.time_mix, 2) + "x",
             Table::fmt(pts[0].time_full / (pt.time_full * scale), 2),
             Table::fmt(pts[0].time_mix / (pt.time_mix * scale), 2)});
    }
    t.print();

    const double rel_eff = relative_efficiency({pts.data(), pts.size()});
    ctx.value(name + "/model_speedup_64c",
              pts.front().time_full / pts.front().time_mix, "x",
              bench::Better::Higher, /*gate=*/true);
    ctx.value(name + "/model_speedup_2048c",
              pts.back().time_full / pts.back().time_mix, "x",
              bench::Better::Higher, /*gate=*/true);
    ctx.value(name + "/model_rel_efficiency", rel_eff, "frac",
              bench::Better::Higher, /*gate=*/true);
    // Decomposed-engine path (DESIGN.md §11): intra-node speedup of the
    // 8-box sharded hierarchy on 8 workers, from the same calibrated model
    // the fig_weak_scaling bench validates against measured halo bytes.
    const double s1 = model_decomp_apply_seconds(hf, {1, 1, 1}, 512, 1,
                                                 sizeof(double), machine);
    const double s8 = model_decomp_apply_seconds(hf, {2, 2, 2}, 512, 8,
                                                 sizeof(double), machine);
    ctx.value(name + "/model_decomp_speedup_8box", s1 / s8, "x",
              bench::Better::Higher, /*gate=*/true);
    eff.row({name, std::to_string(rf.solve.iters),
             std::to_string(rm.solve.iters),
             Table::fmt(pts.front().time_full / pts.front().time_mix, 2) + "x",
             Table::fmt(pts.back().time_full / pts.back().time_mix, 2) + "x",
             Table::fmt(100.0 * rel_eff, 1) + "%"});
  }

  std::printf("\n=== summary (paper: relative efficiencies 62-99%%; FP16\n"
              "advantage shrinks as communication dominates) ===\n");
  eff.print();
}
