#include "harness/compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "harness/harness.hpp"
#include "harness/stats.hpp"
#include "util/table.hpp"

namespace smg::bench {

std::string_view to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::Ok:
      return "ok";
    case Verdict::Improved:
      return "improved";
    case Verdict::Regressed:
      return "REGRESSED";
    case Verdict::New:
      return "new";
    case Verdict::Missing:
      return "missing";
    case Verdict::Info:
      return "info";
  }
  return "ok";
}

namespace {

struct MetricView {
  std::string bench;
  std::string unit;
  Better better = Better::None;
  bool timed = false;
  bool gate = false;
  SampleStats stats;
};

double num_or(const obs::JsonValue& m, const char* key, double def) {
  const obs::JsonValue* v = m.find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : def;
}

std::string str_or(const obs::JsonValue& m, const char* key,
                   const std::string& def) {
  const obs::JsonValue* v = m.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : def;
}

/// Flatten a validated document into (bench/metric) -> view.  Stats are
/// recomputed from the stored samples with the document's own iqr_k, so a
/// hand-edited baseline (e.g. trimmed samples) stays self-consistent.
std::map<std::string, MetricView> flatten(const obs::JsonValue& doc) {
  std::map<std::string, MetricView> out;
  const double iqr_k = num_or(*doc.find("protocol"), "outlier_iqr_k", 1.5);
  for (const obs::JsonValue& b : doc.find("benchmarks")->items()) {
    const std::string bname = str_or(b, "name", "?");
    for (const obs::JsonValue& m : b.find("metrics")->items()) {
      MetricView v;
      v.bench = bname;
      v.unit = str_or(m, "unit", "");
      const std::string better = str_or(m, "better", "none");
      v.better = better == "lower"    ? Better::Lower
                 : better == "higher" ? Better::Higher
                                      : Better::None;
      v.timed = str_or(m, "kind", "value") == "time";
      const obs::JsonValue* gate = m.find("gate");
      v.gate = gate != nullptr && gate->is_bool() && gate->as_bool();
      std::vector<double> xs;
      for (const obs::JsonValue& s : m.find("samples")->items()) {
        xs.push_back(s.as_number());
      }
      v.stats = compute_stats({xs.data(), xs.size()}, iqr_k);
      out.emplace(bname + "\x1f" + str_or(m, "name", "?"), std::move(v));
    }
  }
  return out;
}

std::map<std::string, bool> bench_ok_flags(const obs::JsonValue& doc) {
  std::map<std::string, bool> out;
  for (const obs::JsonValue& b : doc.find("benchmarks")->items()) {
    const obs::JsonValue* ok = b.find("ok");
    out[str_or(b, "name", "?")] =
        ok == nullptr || !ok->is_bool() || ok->as_bool();
  }
  return out;
}

}  // namespace

CompareResult compare_documents(const obs::JsonValue& baseline,
                                const obs::JsonValue& candidate,
                                const CompareOptions& opts) {
  CompareResult r;
  for (const std::string& e : validate_bench_document(baseline)) {
    r.errors.push_back("baseline: " + e);
  }
  for (const std::string& e : validate_bench_document(candidate)) {
    r.errors.push_back("candidate: " + e);
  }
  if (!r.errors.empty()) {
    return r;
  }

  const auto base = flatten(baseline);
  const auto cand = flatten(candidate);

  for (const auto& [key, b] : base) {
    const std::string metric = key.substr(key.find('\x1f') + 1);
    MetricDelta d;
    d.bench = b.bench;
    d.metric = metric;
    d.unit = b.unit;
    d.base_median = b.stats.median;

    const auto it = cand.find(key);
    if (it == cand.end()) {
      d.verdict = Verdict::Missing;
      d.gated = b.gate || opts.gate_all;
      if (d.gated) {
        ++r.regressions;  // a gated metric silently vanishing is a failure
      }
      r.deltas.push_back(std::move(d));
      continue;
    }
    const MetricView& c = it->second;
    d.cand_median = c.stats.median;
    d.rel_delta = b.stats.median != 0.0
                      ? (c.stats.median - b.stats.median) /
                            std::fabs(b.stats.median)
                      : 0.0;

    const bool gated_metric = (b.gate || opts.gate_all) &&
                              (!b.timed || opts.gate_time);
    if (b.better == Better::None && !gated_metric) {
      d.verdict = Verdict::Info;
      r.deltas.push_back(std::move(d));
      continue;
    }

    const double tol = b.timed ? opts.time_tol : opts.tol;
    const double noise =
        std::max(relative_iqr(b.stats), relative_iqr(c.stats));
    d.eff_tol = std::max(tol, opts.noise_mult * noise);
    d.gated = gated_metric;

    if (b.better == Better::None) {
      // Gated direction-less metric: any move beyond tolerance (either
      // way) is a regression — these are "must not drift" quantities.
      const double rel = b.stats.median != 0.0
                             ? std::fabs(d.rel_delta)
                             : (c.stats.median == 0.0 ? 0.0 : 1.0);
      if (rel > d.eff_tol) {
        d.verdict = Verdict::Regressed;
        ++r.regressions;
      } else {
        d.verdict = Verdict::Ok;
      }
      r.deltas.push_back(std::move(d));
      continue;
    }

    // Evaluate in "lower is better" space: flip the sign for higher.
    const double sign = b.better == Better::Lower ? 1.0 : -1.0;
    const auto moved = [&](double from, double to) {
      if (from == 0.0) {
        return sign * (to - from) > 0.0;
      }
      return sign * (to - from) / std::fabs(from) > d.eff_tol;
    };
    const bool abs_ok =
        !b.timed ||
        std::fabs(c.stats.median - b.stats.median) > opts.min_abs_s;
    const bool worse = moved(b.stats.median, c.stats.median) &&
                       moved(b.stats.min, c.stats.min) && abs_ok;
    const auto improved_dir = [&](double from, double to) {
      if (from == 0.0) {
        return sign * (to - from) < 0.0;
      }
      return sign * (to - from) / std::fabs(from) < -d.eff_tol;
    };
    const bool better = improved_dir(b.stats.median, c.stats.median) &&
                        improved_dir(b.stats.min, c.stats.min) && abs_ok;

    if (worse) {
      d.verdict = Verdict::Regressed;
      if (d.gated) {
        ++r.regressions;
      }
    } else if (better) {
      d.verdict = Verdict::Improved;
      ++r.improvements;
    } else {
      d.verdict = Verdict::Ok;
    }
    r.deltas.push_back(std::move(d));
  }

  for (const auto& [key, c] : cand) {
    if (base.find(key) != base.end()) {
      continue;
    }
    MetricDelta d;
    d.bench = c.bench;
    d.metric = key.substr(key.find('\x1f') + 1);
    d.unit = c.unit;
    d.verdict = Verdict::New;
    d.cand_median = c.stats.median;
    r.deltas.push_back(std::move(d));
  }

  const auto base_ok = bench_ok_flags(baseline);
  for (const auto& [name, ok] : bench_ok_flags(candidate)) {
    const auto it = base_ok.find(name);
    if (!ok && (it == base_ok.end() || it->second)) {
      r.broke.push_back(name);
    }
  }
  return r;
}

bool has_failures(const CompareResult& r) {
  return !r.errors.empty() || r.regressions > 0 || !r.broke.empty();
}

namespace {

std::string fmt_pct(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * rel);
  return buf;
}

std::string fmt_val(double v) {
  char buf[32];
  if (v == 0.0 || (std::fabs(v) >= 1e-3 && std::fabs(v) < 1e6)) {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3e", v);
  }
  return buf;
}

/// Severity order for display: regressions first, then missing/broke info.
int severity(Verdict v) {
  switch (v) {
    case Verdict::Regressed:
      return 0;
    case Verdict::Missing:
      return 1;
    case Verdict::Improved:
      return 2;
    case Verdict::New:
      return 3;
    case Verdict::Ok:
      return 4;
    case Verdict::Info:
      return 5;
  }
  return 6;
}

std::vector<const MetricDelta*> sorted_deltas(const CompareResult& r) {
  std::vector<const MetricDelta*> ds;
  ds.reserve(r.deltas.size());
  for (const MetricDelta& d : r.deltas) {
    ds.push_back(&d);
  }
  std::stable_sort(ds.begin(), ds.end(),
                   [](const MetricDelta* a, const MetricDelta* b) {
                     return severity(a->verdict) < severity(b->verdict);
                   });
  return ds;
}

}  // namespace

std::string to_markdown(const CompareResult& r) {
  std::string out;
  if (!r.errors.empty()) {
    out += "### bench_compare: schema errors\n\n";
    for (const std::string& e : r.errors) {
      out += "- " + e + "\n";
    }
    return out;
  }
  out += "### Benchmark comparison (";
  out += std::to_string(r.regressions) + " regression(s), ";
  out += std::to_string(r.improvements) + " improvement(s))\n\n";
  if (!r.broke.empty()) {
    out += "**Benchmarks newly failing:** ";
    for (std::size_t i = 0; i < r.broke.size(); ++i) {
      out += (i > 0 ? ", " : "") + ("`" + r.broke[i] + "`");
    }
    out += "\n\n";
  }
  out += "| benchmark | metric | base | candidate | delta | tol | verdict "
         "|\n";
  out += "|---|---|---:|---:|---:|---:|---|\n";
  for (const MetricDelta* d : sorted_deltas(r)) {
    if (d->verdict == Verdict::Ok || d->verdict == Verdict::Info) {
      continue;  // keep PR comments focused on what moved
    }
    out += "| " + d->bench + " | " + d->metric;
    if (!d->unit.empty()) {
      out += " (" + d->unit + ")";
    }
    out += " | " + fmt_val(d->base_median) + " | " +
           fmt_val(d->cand_median) + " | " +
           (d->verdict == Verdict::New || d->verdict == Verdict::Missing
                ? std::string("-")
                : fmt_pct(d->rel_delta)) +
           " | " +
           (d->eff_tol > 0.0 ? fmt_pct(d->eff_tol) : std::string("-")) +
           " | " + std::string(to_string(d->verdict)) +
           (d->gated ? "" : " (ungated)") + " |\n";
  }
  out += "\n<sub>Gate: median AND min past the noise-widened tolerance; "
         "only `gate: true` metrics fail the job.</sub>\n";
  return out;
}

std::string to_text(const CompareResult& r) {
  std::ostringstream os;
  if (!r.errors.empty()) {
    os << "schema errors:\n";
    for (const std::string& e : r.errors) {
      os << "  " << e << "\n";
    }
    return os.str();
  }
  Table t({"benchmark", "metric", "base", "candidate", "delta", "eff tol",
           "verdict"});
  for (const MetricDelta* d : sorted_deltas(r)) {
    t.row({d->bench, d->metric + (d->unit.empty() ? "" : " [" + d->unit + "]"),
           fmt_val(d->base_median), fmt_val(d->cand_median),
           d->verdict == Verdict::New || d->verdict == Verdict::Missing
               ? "-"
               : fmt_pct(d->rel_delta),
           d->eff_tol > 0.0 ? fmt_pct(d->eff_tol) : "-",
           std::string(to_string(d->verdict)) +
               (d->gated ? "" : " (ungated)")});
  }
  t.print(os);
  os << "\n" << r.regressions << " regression(s), " << r.improvements
     << " improvement(s)";
  if (!r.broke.empty()) {
    os << ", newly failing:";
    for (const std::string& b : r.broke) {
      os << " " << b;
    }
  }
  os << "\n";
  return os.str();
}

}  // namespace smg::bench
