// Benchmark-harness runner library: suite registry, fixed warmup+repeat
// measurement protocol, environment capture, and schema-versioned JSON
// emission ("smg-bench-v1", docs/BENCH_SCHEMA.md).
//
// Every paper-reproduction bench registers one entry point with SMG_BENCH;
// the same translation unit then builds two ways:
//   * standalone (fig9_thread_scaling, ...) via harness/standalone_main.cpp,
//     keeping the historical one-binary-per-figure workflow, and
//   * aggregated into bench_runner (harness/runner_main.cpp), which runs a
//     whole suite and emits one BENCH_<suite>.json perf-trajectory document
//     that bench_compare gates PRs against.
//
// Benches keep printing their paper-style tables to stdout; metrics
// recorded through Context are what lands in the JSON.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "grid/box.hpp"
#include "harness/stats.hpp"
#include "obs/json.hpp"

namespace smg::bench {

inline constexpr const char* kBenchSchema = "smg-bench-v1";

/// Suite membership bit flags.  smoke = fast, reduced problem sizes, runs
/// in CI on every PR; paper = the full figure/table reproductions.
enum Suite : unsigned {
  kSmoke = 1u << 0,
  kPaper = 1u << 1,
};

enum class Better { Lower, Higher, None };

std::string_view to_string(Better b) noexcept;

/// One recorded metric.  `samples` keeps every repeat so the document can
/// be re-analyzed; the emitted JSON adds the SampleStats summary.
struct MetricResult {
  std::string name;  ///< hierarchical, e.g. "rhd/t2/symgs_ms"
  std::string unit;  ///< "s", "ms", "x", "iters", "%", "mb", ...
  Better better = Better::Lower;
  bool timed = false;  ///< produced by the warmup+repeat protocol
  /// Hard-gated by bench_compare: a significant move in the bad direction
  /// fails the comparison.  Reserve for machine-independent quantities
  /// (iteration counts, modeled bytes, representability fractions) unless
  /// baselines are recorded on the same host.
  bool gate = false;
  std::vector<double> samples;
};

struct RunOptions {
  bool smoke = false;  ///< reduced problem sizes (Context::box halves dims)
  int warmup = 1;      ///< discarded runs before sampling
  int repeats = 5;     ///< recorded samples per timed metric
  double iqr_k = 1.5;  ///< Tukey fence factor for outlier rejection
  /// STREAM probe array length in doubles (0 skips the probe).
  std::size_t stream_n = std::size_t{1} << 23;
};

/// Defaults above overridden by SMG_BENCH_WARMUP / SMG_BENCH_REPEATS /
/// SMG_BENCH_IQR_K / SMG_BENCH_STREAM_N (see EXPERIMENTS.md); CLI flags
/// override the environment in the mains.
RunOptions options_from_env(RunOptions base = {});

/// Handed to every registered bench: problem scaling, the measurement
/// protocol, and the metric sink.
class Context {
 public:
  explicit Context(RunOptions opts) : opts_(opts) {}

  const RunOptions& opts() const { return opts_; }
  bool smoke() const { return opts_.smoke; }

  /// Host-scaled box for a registered problem (bench_common default_box);
  /// smoke mode halves every dimension (floor 12) so suites finish in
  /// CI-friendly time while keeping multi-level hierarchies.
  Box box(std::string_view problem) const;

  /// Fixed warmup+repeat protocol: run `fn` opts().warmup times unrecorded,
  /// then opts().repeats times recording wall seconds per run.  Records a
  /// timed metric (unit "s", lower is better) and returns the minimum
  /// sample — the conventional noise-robust point estimate.
  double time(const std::string& name, const std::function<void()>& fn,
              bool gate = false);

  /// Record externally measured samples (benches with bespoke inner loops).
  void samples(const std::string& name, std::vector<double> xs,
               const std::string& unit, Better better = Better::Lower,
               bool gate = false, bool timed = true);

  /// Record a single derived value (iteration count, speedup, modeled MB).
  void value(const std::string& name, double v, const std::string& unit,
             Better better = Better::None, bool gate = false);

  /// Mark this bench run failed (e.g. a self-check found divergence);
  /// recorded in JSON ("ok": false) and turned into a nonzero exit code.
  void fail(const std::string& why);

  const std::vector<MetricResult>& metrics() const { return metrics_; }
  bool ok() const { return failures_.empty(); }
  const std::vector<std::string>& failures() const { return failures_; }

 private:
  RunOptions opts_;
  std::vector<MetricResult> metrics_;
  std::vector<std::string> failures_;
};

struct BenchInfo {
  std::string name;
  std::string paper_ref;  ///< which figure/table of the paper it reproduces
  unsigned suites = kPaper;
  void (*fn)(Context&) = nullptr;
};

/// Static-initializer registration; returns the registry index.
int register_bench(BenchInfo info);
const std::vector<BenchInfo>& registered_benches();

#define SMG_BENCH(ident, ref, suites)                                     \
  static void ident##_run(::smg::bench::Context& ctx);                    \
  static const int ident##_registered = ::smg::bench::register_bench(     \
      {#ident, ref, (suites), &ident##_run});                             \
  static void ident##_run([[maybe_unused]] ::smg::bench::Context& ctx)

/// Result of running one registered bench.
struct BenchRun {
  std::string name;
  std::string paper_ref;
  bool ok = true;
  double wall_seconds = 0.0;
  std::vector<MetricResult> metrics;
  std::vector<std::string> failures;
};

/// Execute one bench under the protocol; never throws (a bench exception
/// becomes ok=false with the message in failures).
BenchRun run_bench(const BenchInfo& info, const RunOptions& opts);

/// Build-and-host environment block of the JSON document.  Runs the STREAM
/// probe (src/perfmodel) unless opts.stream_n == 0.
obs::JsonValue capture_environment(const RunOptions& opts);

/// Assemble the schema-versioned document.  `suite_name` is "smoke",
/// "paper", or "standalone".
obs::JsonValue make_document(const std::string& suite_name,
                             const RunOptions& opts,
                             const obs::JsonValue& environment,
                             const std::vector<BenchRun>& runs);

/// Structural validation against docs/BENCH_SCHEMA.md; returns a list of
/// human-readable problems, empty when the document is schema-valid.
std::vector<std::string> validate_bench_document(const obs::JsonValue& doc);

}  // namespace smg::bench
