// Shared command-line parser for every bench binary.
//
// Before the harness, the 16 bench binaries each hand-rolled (or skipped)
// argument handling and silently ignored unknown flags; this parser gives
// them one consistent contract: `--help` always works, `--flag value` and
// `--flag=value` are both accepted, and an unknown flag is a hard error
// with a pointer to `--help` instead of a silent no-op.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace smg::bench {

struct FlagSpec {
  std::string name;     ///< without the leading "--"
  bool takes_value = false;
  std::string value_name;  ///< shown in --help, e.g. "PATH"
  std::string help;
};

class Cli {
 public:
  Cli(std::string program, std::string description,
      std::vector<FlagSpec> flags);

  /// Parse argv.  Returns false (with `error()` set) on an unknown flag, a
  /// missing value, or an unexpected positional argument beyond
  /// `max_positional`.  `--help` sets `help_requested()` and returns true.
  bool parse(int argc, char** argv, int max_positional = 0);

  bool help_requested() const { return help_; }
  const std::string& error() const { return error_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const;
  /// Value of a --flag; nullopt when absent.
  std::optional<std::string> value(const std::string& name) const;
  /// Numeric value with a default; parse failure reports via error path in
  /// parse() so callers can trust the result here.
  double value_or(const std::string& name, double def) const;
  std::string value_or(const std::string& name, const std::string& def) const;

  /// Render the --help text.
  std::string usage() const;

 private:
  const FlagSpec* find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<FlagSpec> flags_;
  std::vector<std::pair<std::string, std::string>> parsed_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_ = false;
};

}  // namespace smg::bench
