// Sample statistics for the benchmark harness: quartiles, IQR, and
// Tukey-fence outlier rejection.
//
// Every timed metric in a BENCH_*.json document carries the raw samples
// plus the summary computed here, so bench_compare (and any external
// analysis) can re-derive or tighten the statistics without re-running.
#pragma once

#include <span>
#include <vector>

namespace smg::bench {

/// Summary of one metric's samples after outlier rejection.
///
/// Quartiles are computed on the raw samples (linear interpolation between
/// order statistics, the same convention as smg::percentile); samples
/// outside the Tukey fences [q1 - k*iqr, q3 + k*iqr] are then rejected and
/// min/max/mean/median recomputed on the survivors.  The quartiles
/// themselves are reported pre-rejection — rejecting on fences derived
/// from the already-cleaned set would bias repeated application.
struct SampleStats {
  int n = 0;         ///< samples kept after rejection
  int rejected = 0;  ///< samples outside the Tukey fences
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double q1 = 0.0;   ///< 25th percentile of the raw samples
  double q3 = 0.0;   ///< 75th percentile of the raw samples
  double iqr = 0.0;  ///< q3 - q1
};

/// Compute the summary; `iqr_k` is the Tukey fence factor (1.5 classic).
/// `iqr_k` <= 0 disables rejection.  Empty input returns a zero struct.
SampleStats compute_stats(std::span<const double> samples,
                          double iqr_k = 1.5);

/// Relative noise of a metric: iqr / |median|, 0 when median is 0 or
/// there are fewer than 4 samples (quartiles meaningless below that).
double relative_iqr(const SampleStats& s);

}  // namespace smg::bench
