#include "harness/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <exception>

#include "bench_common.hpp"
#include "obs/exposition.hpp"
#include "perfmodel/stream.hpp"
#include "util/timer.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace smg::bench {

std::string_view to_string(Better b) noexcept {
  switch (b) {
    case Better::Lower:
      return "lower";
    case Better::Higher:
      return "higher";
    case Better::None:
      return "none";
  }
  return "none";
}

namespace {

std::vector<BenchInfo>& registry() {
  static std::vector<BenchInfo> r;
  return r;
}

double env_double(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return def;
  }
  char* end = nullptr;
  const double x = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? x : def;
}

}  // namespace

int register_bench(BenchInfo info) {
  registry().push_back(std::move(info));
  return static_cast<int>(registry().size()) - 1;
}

const std::vector<BenchInfo>& registered_benches() { return registry(); }

RunOptions options_from_env(RunOptions base) {
  base.warmup = static_cast<int>(env_double("SMG_BENCH_WARMUP",
                                            base.warmup));
  base.repeats = std::max(
      1, static_cast<int>(env_double("SMG_BENCH_REPEATS", base.repeats)));
  base.iqr_k = env_double("SMG_BENCH_IQR_K", base.iqr_k);
  base.stream_n = static_cast<std::size_t>(env_double(
      "SMG_BENCH_STREAM_N", static_cast<double>(base.stream_n)));
  return base;
}

Box Context::box(std::string_view problem) const {
  Box b = default_box(problem);
  if (opts_.smoke) {
    b.nx = std::max(12, b.nx / 2);
    b.ny = std::max(12, b.ny / 2);
    b.nz = std::max(12, b.nz / 2);
  }
  return b;
}

double Context::time(const std::string& name,
                     const std::function<void()>& fn, bool gate) {
  for (int w = 0; w < opts_.warmup; ++w) {
    fn();
  }
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(opts_.repeats));
  for (int r = 0; r < opts_.repeats; ++r) {
    Timer t;
    fn();
    xs.push_back(t.seconds());
  }
  const double best = *std::min_element(xs.begin(), xs.end());
  samples(name, std::move(xs), "s", Better::Lower, gate, /*timed=*/true);
  return best;
}

void Context::samples(const std::string& name, std::vector<double> xs,
                      const std::string& unit, Better better, bool gate,
                      bool timed) {
  MetricResult m;
  m.name = name;
  m.unit = unit;
  m.better = better;
  m.gate = gate;
  m.timed = timed;
  m.samples = std::move(xs);
  metrics_.push_back(std::move(m));
}

void Context::value(const std::string& name, double v,
                    const std::string& unit, Better better, bool gate) {
  samples(name, {v}, unit, better, gate, /*timed=*/false);
}

void Context::fail(const std::string& why) { failures_.push_back(why); }

BenchRun run_bench(const BenchInfo& info, const RunOptions& opts) {
  BenchRun out;
  out.name = info.name;
  out.paper_ref = info.paper_ref;
  Context ctx(opts);
  Timer t;
  try {
    info.fn(ctx);
  } catch (const std::exception& e) {
    ctx.fail(std::string("exception: ") + e.what());
  } catch (...) {
    ctx.fail("unknown exception");
  }
  out.wall_seconds = t.seconds();
  out.ok = ctx.ok();
  out.metrics = ctx.metrics();
  out.failures = ctx.failures();
  return out;
}

obs::JsonValue capture_environment(const RunOptions& opts) {
  using obs::JsonValue;
  JsonValue env = JsonValue::object();
#if defined(SMG_GIT_SHA)
  env.set("git_sha", JsonValue(std::string(SMG_GIT_SHA)));
#else
  env.set("git_sha", JsonValue(std::string("unknown")));
#endif
#if defined(SMG_GIT_DIRTY)
  env.set("git_dirty", JsonValue(SMG_GIT_DIRTY != 0));
#else
  env.set("git_dirty", JsonValue(false));
#endif
#if defined(SMG_CXX_COMPILER_ID)
  env.set("compiler_id", JsonValue(std::string(SMG_CXX_COMPILER_ID)));
#else
  env.set("compiler_id", JsonValue(std::string("unknown")));
#endif
#if defined(__VERSION__)
  env.set("compiler", JsonValue(std::string(__VERSION__)));
#else
  env.set("compiler", JsonValue(std::string("unknown")));
#endif
#if defined(SMG_CXX_FLAGS)
  env.set("cxx_flags", JsonValue(std::string(SMG_CXX_FLAGS)));
#else
  env.set("cxx_flags", JsonValue(std::string("")));
#endif
#if defined(SMG_BUILD_TYPE)
  env.set("build_type", JsonValue(std::string(SMG_BUILD_TYPE)));
#else
  env.set("build_type", JsonValue(std::string("unknown")));
#endif
#if defined(SMG_SIMD_AVX2)
  env.set("simd", JsonValue(true));
#else
  env.set("simd", JsonValue(false));
#endif
#if defined(_OPENMP)
  env.set("openmp", JsonValue(true));
  env.set("omp_max_threads",
          JsonValue(static_cast<double>(omp_get_max_threads())));
#else
  env.set("openmp", JsonValue(false));
  env.set("omp_max_threads", JsonValue(1.0));
#endif
  {
    char host[256] = "unknown";
#if defined(__unix__) || defined(__APPLE__)
    if (gethostname(host, sizeof(host)) != 0) {
      std::snprintf(host, sizeof(host), "unknown");
    }
    host[sizeof(host) - 1] = '\0';
#endif
    env.set("hostname", JsonValue(std::string(host)));
  }
  {
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
#if defined(_WIN32)
    gmtime_s(&tm_utc, &now);
#else
    gmtime_r(&now, &tm_utc);
#endif
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    env.set("timestamp_utc", JsonValue(std::string(stamp)));
  }
  if (opts.stream_n > 0) {
    const StreamResult s = measure_stream(opts.stream_n);
    env.set("stream_triad_gbs", JsonValue(s.triad_gbs));
    env.set("stream_copy_gbs", JsonValue(s.copy_gbs));
  } else {
    env.set("stream_triad_gbs", JsonValue(0.0));
    env.set("stream_copy_gbs", JsonValue(0.0));
  }
  return env;
}

obs::JsonValue make_document(const std::string& suite_name,
                             const RunOptions& opts,
                             const obs::JsonValue& environment,
                             const std::vector<BenchRun>& runs) {
  using obs::JsonValue;
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue(std::string(kBenchSchema)));
  doc.set("suite", JsonValue(suite_name));
  doc.set("environment", environment);

  JsonValue protocol = JsonValue::object();
  protocol.set("warmup", JsonValue(static_cast<double>(opts.warmup)));
  protocol.set("repeats", JsonValue(static_cast<double>(opts.repeats)));
  protocol.set("outlier_iqr_k", JsonValue(opts.iqr_k));
  protocol.set("smoke", JsonValue(opts.smoke));
  doc.set("protocol", protocol);

  JsonValue benches = JsonValue::array();
  for (const BenchRun& run : runs) {
    JsonValue b = JsonValue::object();
    b.set("name", JsonValue(run.name));
    b.set("paper_ref", JsonValue(run.paper_ref));
    b.set("ok", JsonValue(run.ok));
    b.set("wall_seconds", JsonValue(run.wall_seconds));
    if (!run.failures.empty()) {
      JsonValue fs = JsonValue::array();
      for (const std::string& f : run.failures) {
        fs.push_back(JsonValue(f));
      }
      b.set("failures", fs);
    }
    JsonValue metrics = JsonValue::array();
    for (const MetricResult& m : run.metrics) {
      const SampleStats s =
          compute_stats({m.samples.data(), m.samples.size()}, opts.iqr_k);
      JsonValue jm = JsonValue::object();
      jm.set("name", JsonValue(m.name));
      jm.set("unit", JsonValue(m.unit));
      jm.set("better", JsonValue(std::string(to_string(m.better))));
      jm.set("kind", JsonValue(std::string(m.timed ? "time" : "value")));
      jm.set("gate", JsonValue(m.gate));
      jm.set("n", JsonValue(static_cast<double>(s.n)));
      jm.set("rejected", JsonValue(static_cast<double>(s.rejected)));
      jm.set("min", JsonValue(s.min));
      jm.set("max", JsonValue(s.max));
      jm.set("mean", JsonValue(s.mean));
      jm.set("median", JsonValue(s.median));
      jm.set("q1", JsonValue(s.q1));
      jm.set("q3", JsonValue(s.q3));
      jm.set("iqr", JsonValue(s.iqr));
      JsonValue xs = JsonValue::array();
      for (double x : m.samples) {
        xs.push_back(JsonValue(x));
      }
      jm.set("samples", xs);
      metrics.push_back(std::move(jm));
    }
    b.set("metrics", metrics);
    benches.push_back(std::move(b));
  }
  doc.set("benchmarks", benches);
  // Service-metrics registry snapshot (docs/METRICS.md): counters and
  // histograms accumulated across every bench in this document — the
  // "what did the process do" companion to the per-bench samples.
  doc.set("service_metrics", obs::metrics_to_json(obs::snapshot_metrics()));
  return doc;
}

namespace {

void require(std::vector<std::string>& errors, bool cond,
             const std::string& what) {
  if (!cond) {
    errors.push_back(what);
  }
}

bool is_num(const obs::JsonValue* v) {
  return v != nullptr && v->is_number();
}
bool is_str(const obs::JsonValue* v) {
  return v != nullptr && v->is_string();
}
bool is_bool(const obs::JsonValue* v) {
  return v != nullptr && v->is_bool();
}

}  // namespace

std::vector<std::string> validate_bench_document(const obs::JsonValue& doc) {
  std::vector<std::string> errors;
  if (!doc.is_object()) {
    return {"document root is not an object"};
  }
  const obs::JsonValue* schema = doc.find("schema");
  require(errors, is_str(schema) && schema->as_string() == kBenchSchema,
          std::string("schema must be \"") + kBenchSchema + "\"");
  require(errors, is_str(doc.find("suite")), "suite must be a string");

  const obs::JsonValue* env = doc.find("environment");
  if (env == nullptr || !env->is_object()) {
    errors.push_back("environment must be an object");
  } else {
    for (const char* k : {"git_sha", "compiler", "compiler_id", "cxx_flags",
                          "build_type", "hostname", "timestamp_utc"}) {
      require(errors, is_str(env->find(k)),
              std::string("environment.") + k + " must be a string");
    }
    for (const char* k : {"git_dirty", "simd", "openmp"}) {
      require(errors, is_bool(env->find(k)),
              std::string("environment.") + k + " must be a bool");
    }
    for (const char* k :
         {"omp_max_threads", "stream_triad_gbs", "stream_copy_gbs"}) {
      require(errors, is_num(env->find(k)),
              std::string("environment.") + k + " must be a number");
    }
  }

  const obs::JsonValue* protocol = doc.find("protocol");
  if (protocol == nullptr || !protocol->is_object()) {
    errors.push_back("protocol must be an object");
  } else {
    for (const char* k : {"warmup", "repeats", "outlier_iqr_k"}) {
      require(errors, is_num(protocol->find(k)),
              std::string("protocol.") + k + " must be a number");
    }
    require(errors, is_bool(protocol->find("smoke")),
            "protocol.smoke must be a bool");
  }

  const obs::JsonValue* sm = doc.find("service_metrics");
  if (sm == nullptr || !sm->is_object()) {
    errors.push_back("service_metrics must be an object");
  } else {
    require(errors, is_bool(sm->find("enabled")),
            "service_metrics.enabled must be a bool");
    const obs::JsonValue* series = sm->find("series");
    require(errors, series != nullptr && series->is_array(),
            "service_metrics.series must be an array");
  }

  const obs::JsonValue* benches = doc.find("benchmarks");
  if (benches == nullptr || !benches->is_array()) {
    errors.push_back("benchmarks must be an array");
    return errors;
  }
  for (const obs::JsonValue& b : benches->items()) {
    if (!b.is_object()) {
      errors.push_back("benchmarks[] entry is not an object");
      continue;
    }
    const std::string bname =
        is_str(b.find("name")) ? b.find("name")->as_string() : "<unnamed>";
    require(errors, is_str(b.find("name")), "benchmark name missing");
    require(errors, is_str(b.find("paper_ref")),
            bname + ": paper_ref must be a string");
    require(errors, is_bool(b.find("ok")), bname + ": ok must be a bool");
    require(errors, is_num(b.find("wall_seconds")),
            bname + ": wall_seconds must be a number");
    const obs::JsonValue* metrics = b.find("metrics");
    if (metrics == nullptr || !metrics->is_array()) {
      errors.push_back(bname + ": metrics must be an array");
      continue;
    }
    for (const obs::JsonValue& m : metrics->items()) {
      if (!m.is_object()) {
        errors.push_back(bname + ": metrics[] entry is not an object");
        continue;
      }
      const std::string mname = is_str(m.find("name"))
                                    ? m.find("name")->as_string()
                                    : "<unnamed>";
      const std::string where = bname + "." + mname;
      require(errors, is_str(m.find("name")), where + ": name missing");
      require(errors, is_str(m.find("unit")), where + ": unit missing");
      const obs::JsonValue* better = m.find("better");
      require(errors,
              is_str(better) && (better->as_string() == "lower" ||
                                 better->as_string() == "higher" ||
                                 better->as_string() == "none"),
              where + ": better must be lower|higher|none");
      const obs::JsonValue* kind = m.find("kind");
      require(errors,
              is_str(kind) && (kind->as_string() == "time" ||
                               kind->as_string() == "value"),
              where + ": kind must be time|value");
      require(errors, is_bool(m.find("gate")),
              where + ": gate must be a bool");
      for (const char* k : {"n", "rejected", "min", "max", "mean", "median",
                            "q1", "q3", "iqr"}) {
        require(errors, is_num(m.find(k)),
                where + ": " + k + " must be a number");
      }
      const obs::JsonValue* samples = m.find("samples");
      if (samples == nullptr || !samples->is_array() ||
          samples->items().empty()) {
        errors.push_back(where + ": samples must be a non-empty array");
      } else {
        for (const obs::JsonValue& s : samples->items()) {
          if (!s.is_number()) {
            errors.push_back(where + ": samples must all be numbers");
            break;
          }
        }
      }
    }
  }
  return errors;
}

}  // namespace smg::bench
