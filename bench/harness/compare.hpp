// Baseline-vs-candidate comparison of two smg-bench-v1 documents with
// noise-aware per-metric thresholds — the regression gate behind
// `bench_compare` and the CI perf-smoke job.
//
// Verdict rule (for a better=lower metric; higher mirrors it):
//   * the effective tolerance widens with measured noise:
//       eff_tol = max(tol, noise_mult * max(rel_iqr(base), rel_iqr(cand)))
//     where rel_iqr = IQR / median of the recorded samples, so a metric
//     that jitters 10% run-to-run is never gated at a 5% threshold;
//   * REGRESSED needs BOTH the median and the min to move past eff_tol
//     (min is the classic noise-robust point estimate; requiring both
//     filters one-sided scheduler noise), and for timed metrics the
//     absolute median delta must also exceed min_abs_s — sub-50µs swings
//     are clock jitter, not regressions;
//   * better=none metrics are informational, unless marked gate:true — a
//     gated direction-less metric regresses on ANY move beyond eff_tol
//     (two-sided), for "must not drift" quantities like model constants;
//   * only metrics with "gate": true fail the exit code by default
//     (--all gates every lower/higher metric).
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace smg::bench {

enum class Verdict { Ok, Improved, Regressed, New, Missing, Info };

std::string_view to_string(Verdict v) noexcept;

struct CompareOptions {
  double tol = 0.02;        ///< rel. tolerance for value metrics
  double time_tol = 0.10;   ///< rel. tolerance for timed metrics
  double noise_mult = 4.0;  ///< eff_tol >= noise_mult * relative IQR
  double min_abs_s = 5e-5;  ///< absolute floor for timed deltas (seconds)
  bool gate_time = true;    ///< let timed metrics fail the exit code
  bool gate_all = false;    ///< gate every directional metric, not just
                            ///< those marked "gate": true
};

struct MetricDelta {
  std::string bench;
  std::string metric;
  std::string unit;
  Verdict verdict = Verdict::Ok;
  bool gated = false;        ///< counted toward the exit code
  double base_median = 0.0;
  double cand_median = 0.0;
  double rel_delta = 0.0;    ///< (cand - base) / |base|, 0 when base == 0
  double eff_tol = 0.0;      ///< the noise-widened threshold applied
};

struct CompareResult {
  std::vector<MetricDelta> deltas;
  std::vector<std::string> errors;  ///< schema problems; non-empty = unusable
  int regressions = 0;  ///< gated REGRESSED count (plus gated missing)
  int improvements = 0;
  /// Benchmarks whose "ok" flag went true -> false.
  std::vector<std::string> broke;
};

/// Compare two parsed documents.  Both are schema-validated first.
CompareResult compare_documents(const obs::JsonValue& baseline,
                                const obs::JsonValue& candidate,
                                const CompareOptions& opts);

/// Render the delta table as GitHub-flavored markdown (for PR comments).
std::string to_markdown(const CompareResult& r);

/// Render a compact fixed-width text report.
std::string to_text(const CompareResult& r);

/// True when the comparison should fail (schema errors, any gated
/// regression, or a benchmark that flipped to not-ok).
bool has_failures(const CompareResult& r);

}  // namespace smg::bench
