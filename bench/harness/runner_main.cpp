// bench_runner: run a benchmark suite and emit one BENCH_<suite>.json
// perf-trajectory document (schema smg-bench-v1, docs/BENCH_SCHEMA.md).
//
//   bench_runner --suite smoke --json BENCH_smoke.json
//   bench_runner --suite paper --json BENCH_paper.json --no-stream
//   bench_runner --bench fig9_thread_scaling --list ...
//
// Exit code: 0 on success, 1 when any bench failed a self-check, 2 on
// usage/IO errors.
#include <cstdio>
#include <memory>
#include <string>

#include "harness/cli.hpp"
#include "harness/harness.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

int main(int argc, char** argv) {
  using namespace smg::bench;

  Cli cli("bench_runner",
          "Run a StructMG-FP16 benchmark suite and emit a schema-versioned\n"
          "BENCH_<suite>.json document (see docs/BENCH_SCHEMA.md and\n"
          "docs/REPRODUCING.md).",
          {
              {"suite", true, "NAME", "suite to run: smoke | paper"},
              {"bench", true, "NAME",
               "run a single registered bench (overrides --suite)"},
              {"smoke", false, "",
               "use smoke (halved) problem sizes with --bench"},
              {"json", true, "PATH", "write the smg-bench-v1 document here"},
              {"list", false, "", "list registered benches and exit"},
              {"repeats", true, "N", "samples per timed metric (default 5)"},
              {"warmup", true, "N", "discarded warmup runs (default 1)"},
              {"no-stream", false, "",
               "skip the STREAM bandwidth probe in environment capture"},
          });
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "bench_runner: %s\n", cli.error().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }

  if (cli.has("list")) {
    for (const BenchInfo& b : registered_benches()) {
      std::printf("%-28s suites:%s%s  %s\n", b.name.c_str(),
                  (b.suites & kSmoke) ? " smoke" : "",
                  (b.suites & kPaper) ? " paper" : "", b.paper_ref.c_str());
    }
    return 0;
  }

  const std::string suite = cli.value_or("suite", std::string("smoke"));
  const std::string only = cli.value_or("bench", std::string(""));
  unsigned suite_mask = 0;
  if (only.empty()) {
    if (suite == "smoke") {
      suite_mask = kSmoke;
    } else if (suite == "paper") {
      suite_mask = kPaper;
    } else {
      std::fprintf(stderr, "bench_runner: unknown suite '%s' (smoke|paper)\n",
                   suite.c_str());
      return 2;
    }
  }

  RunOptions opts = options_from_env();
  opts.smoke = only.empty() ? suite == "smoke" : cli.has("smoke");
  opts.repeats = static_cast<int>(cli.value_or("repeats", opts.repeats));
  opts.warmup = static_cast<int>(cli.value_or("warmup", opts.warmup));
  if (cli.has("no-stream")) {
    opts.stream_n = 0;
  }

  // Service metrics are on for bench runs unless SMG_METRICS=off: the
  // emitted document carries a registry snapshot ("service_metrics"), and
  // SMG_METRICS_FILE (+ optional SMG_METRICS_PERIOD) gets an OpenMetrics
  // exposition of the same counters.
  if (smg::obs::effective_metrics(smg::obs::MetricsLevel::On) ==
      smg::obs::MetricsLevel::On) {
    smg::obs::enable_metrics(true);
  }
  const std::unique_ptr<smg::obs::MetricsFlusher> flusher =
      smg::obs::MetricsFlusher::start_from_env();

  std::vector<BenchRun> runs;
  bool all_ok = true;
  bool matched = false;
  for (const BenchInfo& b : registered_benches()) {
    if (only.empty() ? (b.suites & suite_mask) == 0 : b.name != only) {
      continue;
    }
    matched = true;
    std::printf("\n########## %s ##########\n", b.name.c_str());
    BenchRun run = run_bench(b, opts);
    if (!run.ok) {
      all_ok = false;
      for (const std::string& f : run.failures) {
        std::fprintf(stderr, "bench_runner: %s FAILED: %s\n",
                     b.name.c_str(), f.c_str());
      }
    }
    std::printf("[%s: %.2fs, %zu metric(s), %s]\n", b.name.c_str(),
                run.wall_seconds, run.metrics.size(),
                run.ok ? "ok" : "FAILED");
    runs.push_back(std::move(run));
  }
  if (!matched) {
    std::fprintf(stderr, "bench_runner: nothing matched (try --list)\n");
    return 2;
  }

  const std::string json_path = cli.value_or("json", std::string(""));
  if (!json_path.empty()) {
    const smg::obs::JsonValue env = capture_environment(opts);
    const smg::obs::JsonValue doc =
        make_document(only.empty() ? suite : "standalone", opts, env, runs);
    const auto errors = validate_bench_document(doc);
    for (const std::string& e : errors) {
      std::fprintf(stderr, "bench_runner: schema self-check: %s\n",
                   e.c_str());
    }
    if (!errors.empty()) {
      return 2;
    }
    if (!smg::obs::write_text_file(json_path,
                                   smg::obs::json_write(doc, 1) + "\n")) {
      std::fprintf(stderr, "bench_runner: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    std::printf("\nwrote %s (%s, %zu benchmark(s))\n", json_path.c_str(),
                kBenchSchema, runs.size());
  }
  if (flusher == nullptr) {
    smg::obs::emit_metrics_from_env();
  }
  return all_ok ? 0 : 1;
}
