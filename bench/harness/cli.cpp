#include "harness/cli.hpp"

#include <algorithm>
#include <cstdlib>

namespace smg::bench {

Cli::Cli(std::string program, std::string description,
         std::vector<FlagSpec> flags)
    : program_(std::move(program)),
      description_(std::move(description)),
      flags_(std::move(flags)) {
  flags_.push_back({"help", false, "", "show this help and exit"});
}

const FlagSpec* Cli::find(const std::string& name) const {
  for (const FlagSpec& f : flags_) {
    if (f.name == name) {
      return &f;
    }
  }
  return nullptr;
}

bool Cli::parse(int argc, char** argv, int max_positional) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      if (static_cast<int>(positional_.size()) > max_positional) {
        error_ = "unexpected argument '" + positional_.back() +
                 "' (see --help)";
        return false;
      }
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    const FlagSpec* spec = find(name);
    if (spec == nullptr) {
      error_ = "unknown flag '--" + name + "' (see --help)";
      return false;
    }
    if (name == "help") {
      help_ = true;
      continue;
    }
    if (spec->takes_value) {
      if (!has_inline) {
        if (i + 1 >= argc) {
          error_ = "flag '--" + name + "' expects a value";
          return false;
        }
        value = argv[++i];
      }
    } else if (has_inline) {
      error_ = "flag '--" + name + "' does not take a value";
      return false;
    }
    parsed_.emplace_back(std::move(name), std::move(value));
  }
  return true;
}

bool Cli::has(const std::string& name) const {
  for (const auto& [n, v] : parsed_) {
    if (n == name) {
      return true;
    }
  }
  return false;
}

std::optional<std::string> Cli::value(const std::string& name) const {
  // Last occurrence wins, matching common CLI conventions.
  std::optional<std::string> out;
  for (const auto& [n, v] : parsed_) {
    if (n == name) {
      out = v;
    }
  }
  return out;
}

double Cli::value_or(const std::string& name, double def) const {
  const auto v = value(name);
  if (!v) {
    return def;
  }
  char* end = nullptr;
  const double x = std::strtod(v->c_str(), &end);
  return (end != nullptr && *end == '\0' && end != v->c_str()) ? x : def;
}

std::string Cli::value_or(const std::string& name,
                          const std::string& def) const {
  return value(name).value_or(def);
}

std::string Cli::usage() const {
  std::string out = "usage: " + program_ + " [flags]\n\n" + description_ +
                    "\n\nflags:\n";
  std::size_t width = 0;
  std::vector<std::string> heads;
  for (const FlagSpec& f : flags_) {
    std::string head = "  --" + f.name;
    if (f.takes_value) {
      head += " <" + (f.value_name.empty() ? "VALUE" : f.value_name) + ">";
    }
    width = std::max(width, head.size());
    heads.push_back(std::move(head));
  }
  for (std::size_t i = 0; i < flags_.size(); ++i) {
    out += heads[i] + std::string(width - heads[i].size() + 2, ' ') +
           flags_[i].help + "\n";
  }
  return out;
}

}  // namespace smg::bench
