// Shared main() for the standalone paper-reproduction binaries
// (fig1_value_distributions, tab2_format_bounds, ...).  Each binary links
// exactly one SMG_BENCH translation unit plus this file, so every bench
// gets the same CLI contract (--help, --json, unknown flags are errors)
// instead of the previous per-binary ad-hoc parsing.
#include <cstdio>
#include <string>

#include "harness/cli.hpp"
#include "harness/harness.hpp"
#include "obs/report.hpp"

int main(int argc, char** argv) {
  using namespace smg::bench;

  const auto& benches = registered_benches();
  if (benches.empty()) {
    std::fprintf(stderr, "no bench registered in this binary\n");
    return 2;
  }

  std::string description = "Paper-reproduction benchmark";
  if (benches.size() == 1) {
    description = std::string("Reproduces: ") + benches.front().paper_ref;
  }
  Cli cli(argv != nullptr && argc > 0 ? argv[0] : "bench", description,
          {
              {"json", true, "PATH",
               "write an smg-bench-v1 document for this bench"},
              {"smoke", false, "",
               "reduced problem sizes (the CI smoke-suite scale)"},
              {"repeats", true, "N", "samples per timed metric (default 5)"},
              {"warmup", true, "N", "discarded warmup runs (default 1)"},
              {"no-stream", false, "",
               "skip the STREAM probe when emitting --json"},
          });
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }

  RunOptions opts = options_from_env();
  opts.smoke = cli.has("smoke");
  opts.repeats = static_cast<int>(cli.value_or("repeats", opts.repeats));
  opts.warmup = static_cast<int>(cli.value_or("warmup", opts.warmup));
  const std::string json_path = cli.value_or("json", std::string(""));
  if (cli.has("no-stream") || json_path.empty()) {
    opts.stream_n = 0;
  }

  std::vector<BenchRun> runs;
  bool all_ok = true;
  for (const BenchInfo& b : benches) {
    BenchRun run = run_bench(b, opts);
    if (!run.ok) {
      all_ok = false;
      for (const std::string& f : run.failures) {
        std::fprintf(stderr, "%s FAILED: %s\n", b.name.c_str(), f.c_str());
      }
    }
    runs.push_back(std::move(run));
  }

  if (!json_path.empty()) {
    const smg::obs::JsonValue env = capture_environment(opts);
    const smg::obs::JsonValue doc =
        make_document("standalone", opts, env, runs);
    if (!smg::obs::write_text_file(json_path,
                                   smg::obs::json_write(doc, 1) + "\n")) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return all_ok ? 0 : 1;
}
