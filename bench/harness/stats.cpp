#include "harness/stats.hpp"

#include <algorithm>
#include <cmath>

namespace smg::bench {

namespace {

/// p in [0,100] over an already-sorted sample vector.
double sorted_percentile(const std::vector<double>& xs, double p) {
  if (xs.empty()) {
    return 0.0;
  }
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace

SampleStats compute_stats(std::span<const double> samples, double iqr_k) {
  SampleStats out;
  if (samples.empty()) {
    return out;
  }
  std::vector<double> xs(samples.begin(), samples.end());
  std::sort(xs.begin(), xs.end());

  out.q1 = sorted_percentile(xs, 25.0);
  out.q3 = sorted_percentile(xs, 75.0);
  out.iqr = out.q3 - out.q1;

  std::vector<double> kept;
  kept.reserve(xs.size());
  if (iqr_k > 0.0 && xs.size() >= 4) {
    const double lo = out.q1 - iqr_k * out.iqr;
    const double hi = out.q3 + iqr_k * out.iqr;
    for (double x : xs) {
      if (x >= lo && x <= hi) {
        kept.push_back(x);
      }
    }
  }
  if (kept.empty()) {
    kept = xs;  // rejection disabled, tiny sample, or it rejected everything
  }
  out.n = static_cast<int>(kept.size());
  out.rejected = static_cast<int>(xs.size() - kept.size());
  out.min = kept.front();
  out.max = kept.back();
  out.median = sorted_percentile(kept, 50.0);
  double acc = 0.0;
  for (double x : kept) {
    acc += x;
  }
  out.mean = acc / static_cast<double>(kept.size());
  return out;
}

double relative_iqr(const SampleStats& s) {
  if (s.n + s.rejected < 4 || s.median == 0.0) {
    return 0.0;
  }
  return s.iqr / std::fabs(s.median);
}

}  // namespace smg::bench
