// bench_compare: noise-aware regression gate over two smg-bench-v1
// documents (see harness/compare.hpp for the verdict rule).
//
//   bench_compare baseline.json candidate.json
//   bench_compare base.json cand.json --markdown delta.md --no-gate-time
//
// Exit code: 0 no gated regressions, 1 regression(s) or newly-failing
// benches, 2 usage/schema/IO errors.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/cli.hpp"
#include "harness/compare.hpp"
#include "obs/report.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

/// Warn (stderr, non-fatal) when the two documents are apples-to-oranges
/// in a way the schema can detect: different build types, or smoke vs
/// paper problem sizes.
void warn_on_mismatch(const smg::obs::JsonValue& base,
                      const smg::obs::JsonValue& cand) {
  const auto str_at = [](const smg::obs::JsonValue& doc, const char* section,
                         const char* key) -> std::string {
    const auto* s = doc.find(section);
    const auto* v = s != nullptr ? s->find(key) : nullptr;
    return v != nullptr && v->is_string() ? v->as_string() : std::string();
  };
  const auto bool_at = [](const smg::obs::JsonValue& doc, const char* section,
                          const char* key) {
    const auto* s = doc.find(section);
    const auto* v = s != nullptr ? s->find(key) : nullptr;
    return v != nullptr && v->is_bool() && v->as_bool();
  };
  const std::string bt_base = str_at(base, "environment", "build_type");
  const std::string bt_cand = str_at(cand, "environment", "build_type");
  if (bt_base != bt_cand) {
    std::fprintf(stderr,
                 "bench_compare: warning: build_type differs (baseline %s, "
                 "candidate %s) -- timings are not comparable\n",
                 bt_base.c_str(), bt_cand.c_str());
  }
  if (bool_at(base, "protocol", "smoke") != bool_at(cand, "protocol",
                                                    "smoke")) {
    std::fprintf(stderr,
                 "bench_compare: warning: one document is a smoke run and "
                 "the other is not -- problem sizes differ\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smg::bench;

  Cli cli("bench_compare <baseline.json> <candidate.json>",
          "Compare two smg-bench-v1 documents and gate on regressions.\n"
          "Thresholds widen automatically with the recorded run-to-run\n"
          "noise (IQR) of each metric; see docs/BENCH_SCHEMA.md.",
          {
              {"tol", true, "FRAC",
               "relative tolerance for value metrics (default 0.02)"},
              {"time-tol", true, "FRAC",
               "relative tolerance for timed metrics (default 0.10)"},
              {"noise-mult", true, "K",
               "tolerance floor = K * relative IQR (default 4)"},
              {"min-abs-s", true, "SEC",
               "ignore timed deltas below this many seconds (default 5e-5)"},
              {"no-gate-time", false, "",
               "report timed metrics but never fail on them (use when\n"
               "                      baseline and candidate ran on "
               "different hosts)"},
              {"all", false, "",
               "gate every directional metric, not just gate:true ones"},
              {"markdown", true, "PATH",
               "also write the delta table as GitHub markdown"},
              {"quiet", false, "", "suppress the text report on stdout"},
          });
  if (!cli.parse(argc, argv, /*max_positional=*/2)) {
    std::fprintf(stderr, "bench_compare: %s\n", cli.error().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  if (cli.positional().size() != 2) {
    std::fprintf(stderr,
                 "bench_compare: expected <baseline.json> <candidate.json> "
                 "(see --help)\n");
    return 2;
  }

  std::string base_text, cand_text;
  if (!read_file(cli.positional()[0], base_text)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n",
                 cli.positional()[0].c_str());
    return 2;
  }
  if (!read_file(cli.positional()[1], cand_text)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n",
                 cli.positional()[1].c_str());
    return 2;
  }
  const auto base = smg::obs::json_parse(base_text);
  const auto cand = smg::obs::json_parse(cand_text);
  if (!base || !cand) {
    std::fprintf(stderr, "bench_compare: %s is not valid JSON\n",
                 (!base ? cli.positional()[0] : cli.positional()[1]).c_str());
    return 2;
  }

  CompareOptions opts;
  opts.tol = cli.value_or("tol", opts.tol);
  opts.time_tol = cli.value_or("time-tol", opts.time_tol);
  opts.noise_mult = cli.value_or("noise-mult", opts.noise_mult);
  opts.min_abs_s = cli.value_or("min-abs-s", opts.min_abs_s);
  opts.gate_time = !cli.has("no-gate-time");
  opts.gate_all = cli.has("all");

  warn_on_mismatch(*base, *cand);
  const CompareResult r = compare_documents(*base, *cand, opts);
  if (!r.errors.empty()) {
    for (const std::string& e : r.errors) {
      std::fprintf(stderr, "bench_compare: %s\n", e.c_str());
    }
    return 2;
  }
  if (!cli.has("quiet")) {
    std::printf("%s", to_text(r).c_str());
  }
  if (const auto md = cli.value("markdown"); md) {
    if (!smg::obs::write_text_file(*md, to_markdown(r))) {
      std::fprintf(stderr, "bench_compare: cannot write %s\n", md->c_str());
      return 2;
    }
  }
  return has_failures(r) ? 1 : 0;
}
