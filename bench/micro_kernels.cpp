// google-benchmark microbenchmarks for the raw kernels backing Fig. 7.
#include <benchmark/benchmark.h>

#include "core/smoother.hpp"
#include "core/transfer.hpp"
#include "fp/convert.hpp"
#include "kernels/blas1.hpp"
#include "kernels/spmv.hpp"
#include "kernels/symgs.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

StructMat<double> make_matrix(const Box& box, Pattern pat) {
  StructMat<double> A(box, Stencil::make(pat), 1, Layout::SOA);
  Rng rng(7);
  const int center = A.stencil().center();
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    for (int d = 0; d < A.ndiag(); ++d) {
      A.at(cell, d) = d == center ? 2.0 * A.ndiag() : rng.uniform(-1.0, 1.0);
    }
  }
  A.clear_out_of_box();
  return A;
}

void BM_WidenHalf(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  avec<half> src(n, half(1.5f));
  avec<float> dst(n);
  for (auto _ : state) {
    widen(src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 6);
}
BENCHMARK(BM_WidenHalf)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

template <class ST, Layout layout>
void BM_Spmv(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto Ad = make_matrix(Box{n, n, n}, Pattern::P3d27);
  const auto A = convert<ST>(Ad, layout);
  const std::size_t rows = static_cast<std::size_t>(A.nrows());
  avec<float> x(rows, 1.0f), y(rows);
  for (auto _ : state) {
    spmv<ST, float>(A, {x.data(), rows}, {y.data(), rows});
    benchmark::DoNotOptimize(y.data());
  }
  const std::int64_t bytes =
      static_cast<std::int64_t>(A.value_bytes()) +
      2 * static_cast<std::int64_t>(rows) * 4;
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          bytes);
}
BENCHMARK(BM_Spmv<float, Layout::SOA>)->Arg(32)->Arg(64);
BENCHMARK(BM_Spmv<half, Layout::SOA>)->Arg(32)->Arg(64);
BENCHMARK(BM_Spmv<half, Layout::AOS>)->Arg(32)->Arg(64);

template <class ST>
void BM_GsForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto Ad = make_matrix(Box{n, n, n}, Pattern::P3d14);
  const auto invd = compute_invdiag(Ad);
  avec<float> invdf(invd.size());
  copy_convert<float, double>({invd.data(), invd.size()},
                              {invdf.data(), invdf.size()});
  const auto A = convert<ST>(Ad, Layout::SOA);
  const std::size_t rows = static_cast<std::size_t>(A.nrows());
  avec<float> f(rows, 1.0f), u(rows, 0.0f);
  for (auto _ : state) {
    gs_forward<ST, float>(A, {f.data(), rows}, {u.data(), rows},
                          {invdf.data(), invdf.size()});
    benchmark::DoNotOptimize(u.data());
  }
  const std::int64_t bytes =
      static_cast<std::int64_t>(A.value_bytes()) +
      3 * static_cast<std::int64_t>(rows) * 4;
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          bytes);
}
BENCHMARK(BM_GsForward<float>)->Arg(32)->Arg(64);
BENCHMARK(BM_GsForward<half>)->Arg(32)->Arg(64);

void BM_Restrict(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Coarsening c = Coarsening::make(Box{n, n, n}, 5);
  avec<float> fine(static_cast<std::size_t>(c.fine.size()), 1.0f);
  avec<float> coarse(static_cast<std::size_t>(c.coarse.size()));
  for (auto _ : state) {
    restrict_to_coarse<float>(c, 1, {fine.data(), fine.size()},
                              {coarse.data(), coarse.size()});
    benchmark::DoNotOptimize(coarse.data());
  }
}
BENCHMARK(BM_Restrict)->Arg(32)->Arg(64);

void BM_Dot(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  avec<double> x(n, 1.0), y(n, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dot<double>({x.data(), n}, {y.data(), n}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 16);
}
BENCHMARK(BM_Dot)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace
}  // namespace smg

// Own main instead of benchmark_main: ReportUnrecognizedArguments makes an
// unknown flag a hard error (exit 1), matching the harness CLI contract the
// other bench binaries get from harness/standalone_main.cpp.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
