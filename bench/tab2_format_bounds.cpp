// Table 2: bytes per nonzero and the upper bound of preconditioner speedup
// by minimal memory access volume, SG-DIA vs CSR(int32/int64).
//
// Also verifies the model against actual container sizes and reports the
// percent_A statistics of §3.1 for the supported stencils.
#include "bench_common.hpp"
#include "csr/csr_matrix.hpp"
#include "harness/harness.hpp"
#include "perfmodel/bytes.hpp"

using namespace smg;

SMG_BENCH(tab2_format_bounds,
          "Table 2 + the percent_A statistic of section 3.1",
          bench::kSmoke | bench::kPaper) {
  bench::print_header("Format memory model and speedup upper bounds",
                      "Table 2 + the percent_A statistic of section 3.1");

  const double delta = 0.15;  // paper: average over 2216 SuiteSparse matrices
  Table t({"format", "B/nnz fp64", "B/nnz fp32", "B/nnz fp16", "64->32",
           "32->16", "64->16"});
  t.row({"SG-DIA", Table::fmt(sgdia_bytes_per_nnz(Prec::FP64), 1),
         Table::fmt(sgdia_bytes_per_nnz(Prec::FP32), 1),
         Table::fmt(sgdia_bytes_per_nnz(Prec::FP16), 1),
         Table::fmt(speedup_bound_sgdia(Prec::FP64, Prec::FP32), 2),
         Table::fmt(speedup_bound_sgdia(Prec::FP32, Prec::FP16), 2),
         Table::fmt(speedup_bound_sgdia(Prec::FP64, Prec::FP16), 2)});
  t.row({"CSR int32", Table::fmt(csr_bytes_per_nnz(8, 4, delta), 2),
         Table::fmt(csr_bytes_per_nnz(4, 4, delta), 2),
         Table::fmt(csr_bytes_per_nnz(2, 4, delta), 2),
         Table::fmt(speedup_bound_csr(Prec::FP64, Prec::FP32, 4, delta), 2),
         Table::fmt(speedup_bound_csr(Prec::FP32, Prec::FP16, 4, delta), 2),
         Table::fmt(speedup_bound_csr(Prec::FP64, Prec::FP16, 4, delta), 2)});
  t.row({"CSR int64", Table::fmt(csr_bytes_per_nnz(8, 8, delta), 2),
         Table::fmt(csr_bytes_per_nnz(4, 8, delta), 2),
         Table::fmt(csr_bytes_per_nnz(2, 8, delta), 2),
         Table::fmt(speedup_bound_csr(Prec::FP64, Prec::FP32, 8, delta), 2),
         Table::fmt(speedup_bound_csr(Prec::FP32, Prec::FP16, 8, delta), 2),
         Table::fmt(speedup_bound_csr(Prec::FP64, Prec::FP16, 8, delta), 2)});
  t.print();

  // These bounds are the paper's Table 2; closed-form and host-independent,
  // so any drift is a real model change — gate them.
  ctx.value("sgdia/speedup_bound_64_16",
            speedup_bound_sgdia(Prec::FP64, Prec::FP16), "x",
            bench::Better::Higher, /*gate=*/true);
  ctx.value("sgdia/speedup_bound_32_16",
            speedup_bound_sgdia(Prec::FP32, Prec::FP16), "x",
            bench::Better::Higher, /*gate=*/true);
  ctx.value("sgdia/bytes_per_nnz_fp16", sgdia_bytes_per_nnz(Prec::FP16),
            "B", bench::Better::Lower, /*gate=*/true);

  // Cross-check the model against real container sizes on a 3d27 grid.
  const Box xbox = ctx.smoke() ? Box{16, 16, 16} : Box{32, 32, 32};
  std::printf("\nCross-check on a %dx%dx%d 3d27 matrix (actual container"
              " bytes per logical nonzero):\n",
              xbox.nx, xbox.ny, xbox.nz);
  const Problem p = make_problem("laplace27", xbox);
  const double nnz = static_cast<double>(p.A.nnz_logical());
  const auto c32 = csr_from_struct<double, std::int32_t>(p.A);
  const auto c16 = csr_from_struct<half, std::int32_t>(p.A);
  Table t2({"container", "bytes/nnz"});
  // SG-DIA stores boundary-truncated slots too; report both densities.
  t2.row({"SG-DIA fp64 (stored slots)",
          Table::fmt(8.0, 2)});
  t2.row({"SG-DIA fp64 (per logical nnz)",
          Table::fmt(static_cast<double>(p.A.value_bytes()) / nnz, 2)});
  t2.row({"CSR fp64/int32", Table::fmt(c32.bytes() / nnz, 2)});
  t2.row({"CSR fp16/int32", Table::fmt(c16.bytes() / nnz, 2)});
  t2.print();
  ctx.value("laplace27/csr_fp16_int32_bytes_per_nnz", c16.bytes() / nnz,
            "B", bench::Better::Lower);

  // percent_A (Eq. 2) per stencil, as quoted in section 3.1.
  std::printf("\npercent_A = nnz / (nnz + 2m) per stencil (section 3.1"
              " quotes 0.78 / 0.88 / 0.90 for 3d7 / 3d19 / 3d27):\n");
  Table t3({"pattern", "nnz/row", "percent_A"});
  for (Pattern pat : {Pattern::P3d7, Pattern::P3d19, Pattern::P3d27}) {
    const double npr = stencil_nnz_per_row(pat, 1);
    ctx.value(std::string(to_string(pat)) + "/percent_A",
              percent_matrix(npr, 1.0), "frac", bench::Better::Higher,
              /*gate=*/true);
    t3.row({std::string(to_string(pat)), Table::fmt(npr, 0),
            Table::fmt(percent_matrix(npr, 1.0), 2)});
  }
  t3.print();
}
