// Figure 1: numerical distributions of nonzero entries in the real-world
// matrices vs the IEEE 754 FP16 range.
//
// Prints a per-decade histogram (percent of nonzeros per magnitude decade)
// for each problem, marking the FP16-representable window
// [2^-24, 65504] ~ [6e-8, 6.5e4].
#include <cmath>
#include <map>

#include "bench_common.hpp"
#include "fp/half.hpp"
#include "harness/harness.hpp"

using namespace smg;

SMG_BENCH(fig1_value_distributions,
          "Figure 1 (and Table 3 'Out-of-FP16?' / 'Dist.')",
          bench::kSmoke | bench::kPaper) {
  bench::print_header("Value-magnitude distributions per problem",
                      "Figure 1 (and Table 3 'Out-of-FP16?' / 'Dist.')");

  const std::vector<std::string> names = {"laplace27", "laplace27e8", "rhd",
                                          "oil",       "weather",     "rhd3t",
                                          "oil4c",     "solid3d"};
  const double lo16 = static_cast<double>(kHalfMinSubnormal);
  const double hi16 = static_cast<double>(kHalfMax);
  std::printf("FP16 window: [%.2e, %.2e]\n\n", lo16, hi16);

  Table table({"problem", "min|a|", "max|a|", "decades", "%below-fp16",
               "%in-fp16", "%above-fp16", "verdict"});
  for (const auto& name : names) {
    const Problem p = make_problem(name, ctx.box(name));
    const auto mags = value_magnitudes(p.A);
    double lo = 1e300, hi = 0.0;
    std::size_t below = 0, above = 0;
    for (double v : mags) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      if (v < lo16) {
        ++below;
      } else if (v > hi16) {
        ++above;
      }
    }
    const double n = static_cast<double>(mags.size());
    const char* verdict = hi > hi16 ? (hi > 100 * hi16 ? "out (Far)" :
                                                         "out (Near)")
                                    : "in range";
    const double pct_in = 100.0 * (n - below - above) / n;
    // Representability is a property of the generators, not the host:
    // gate it so a problem drifting out of its FP16 window fails loudly.
    ctx.value(name + "/pct_in_fp16", pct_in, "%", bench::Better::Higher,
              /*gate=*/true);
    ctx.value(name + "/magnitude_decades", std::log10(hi / lo), "decades");
    table.row({name, Table::sci(lo), Table::sci(hi),
               Table::fmt(std::log10(hi / lo), 1),
               Table::fmt(100.0 * below / n, 2), Table::fmt(pct_in, 2),
               Table::fmt(100.0 * above / n, 2), verdict});
  }
  table.print();

  // Per-decade histogram rows (the shape of Fig. 1's curves).
  std::printf("\nPer-decade histograms (percent of nonzeros):\n");
  for (const auto& name : names) {
    const Problem p = make_problem(name, ctx.box(name));
    const auto mags = value_magnitudes(p.A);
    std::map<int, std::size_t> hist;
    for (double v : mags) {
      ++hist[static_cast<int>(std::floor(std::log10(v)))];
    }
    std::printf("%-12s:", name.c_str());
    for (const auto& [dec, cnt] : hist) {
      std::printf(" 1e%+03d:%.1f%%", dec,
                  100.0 * static_cast<double>(cnt) /
                      static_cast<double>(mags.size()));
    }
    std::printf("\n");
  }
}
