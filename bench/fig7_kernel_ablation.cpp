// Figure 7: kernel optimization ablation for mixed-precision SpMV and
// SpTRSV (forward Gauss-Seidel / triangular solve).
//
// Series (speedup over MG-fp32/fp32, the best full-FP32 implementation):
//   Max-fp16/fp32        — memory-volume model upper bound
//   MG-fp16/fp32 (opt)   — SOA layout, SIMD F16C conversion
//   MG-fp16/fp32 (naive) — AOS layout, scalar per-entry conversion
//   CSR-fp32 ("vendor")  — index-carrying general kernel (ARMPL/MKL stand-in)
//
// Expected shape: opt ~= Max > 1 > naive for fp16; vendor below MG baseline.
// SpMV uses patterns 3d7/3d19/3d27; SpTRSV uses their lower-triangular
// halves 3d4/3d10/3d14 (one forward sweep == exact solve there).
#include <cmath>

#include "bench_common.hpp"
#include "core/smoother.hpp"
#include "harness/harness.hpp"
#include "csr/csr_matrix.hpp"
#include "kernels/symgs.hpp"
#include "obs/telemetry.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace smg;

namespace {

StructMat<double> make_matrix(const Box& box, Pattern pat,
                              std::uint64_t seed) {
  StructMat<double> A(box, Stencil::make(pat), 1, Layout::SOA);
  Rng rng(seed);
  const int center = A.stencil().center();
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    for (int d = 0; d < A.ndiag(); ++d) {
      A.at(cell, d) =
          d == center ? 2.0 * A.ndiag() : rng.uniform(-1.0, 1.0);
    }
  }
  A.clear_out_of_box();
  return A;
}

/// Best-of-reps seconds for fn(), measured by the telemetry spans the
/// kernels themselves open (src/obs): a local Counters-level sink is
/// installed, and each rep's time is the growth of the all-kind span sum —
/// exactly the interval the kernel's own KernelSpan covers, with any
/// harness overhead outside it excluded.
template <class F>
double time_best(F&& fn, int reps = 5) {
  obs::Telemetry sink(obs::TelemetryLevel::Counters, 1);
  const obs::InstallGuard guard(&sink);
  const auto span_sum = [&sink] {
    double s = 0.0;
    for (int k = 0; k < obs::kNumKinds; ++k) {
      s += sink.total(static_cast<obs::Kind>(k)).seconds;
    }
    return s;
  };
  double best = 1e300;
  double prev = 0.0;
  for (int r = 0; r < reps; ++r) {
    fn();
    const double total = span_sum();
    best = std::min(best, total - prev);
    prev = total;
  }
  return best;
}

struct KernelTimes {
  double fp32_aos = 0.0;   // baseline: MG-fp32/fp32
  double fp16_soa = 0.0;   // opt
  double fp16_aos = 0.0;   // naive
  double csr_fp32 = 0.0;   // vendor stand-in
  double max_model = 0.0;  // model bound (as a speedup)
};

KernelTimes bench_spmv(const Box& box, Pattern pat, int reps) {
  const auto Ad = make_matrix(box, pat, 11);
  const auto A32s = convert<float>(Ad, Layout::SOAL);
  const auto A16s = convert<half>(Ad, Layout::SOAL);
  const auto A16a = convert<half>(Ad, Layout::AOS);
  const auto C32 = csr_from_struct<float, std::int32_t>(Ad);

  const std::size_t n = static_cast<std::size_t>(Ad.nrows());
  avec<float> x(n, 1.0f), y(n, 0.0f);
  Rng rng(3);
  for (auto& v : x) {
    v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }

  KernelTimes kt;
  // Baseline is the *best* full-FP32 kernel (the paper's MG-fp32/fp32):
  // SOA, compiler-vectorized.
  kt.fp32_aos = time_best(
      [&] { spmv<float, float>(A32s, {x.data(), n}, {y.data(), n}); }, reps);
  kt.fp16_soa = time_best(
      [&] { spmv<half, float>(A16s, {x.data(), n}, {y.data(), n}); }, reps);
  kt.fp16_aos = time_best(
      [&] { spmv<half, float>(A16a, {x.data(), n}, {y.data(), n}); }, reps);
  kt.csr_fp32 =
      time_best([&] { C32.spmv<float>({x.data(), n}, {y.data(), n}); }, reps);

  const double slots = static_cast<double>(Ad.ncells()) * Ad.ndiag();
  const double vec = 2.0 * static_cast<double>(n) * 4.0;
  kt.max_model = (slots * 4.0 + vec) / (slots * 2.0 + vec);
  return kt;
}

KernelTimes bench_sptrsv(const Box& box, Pattern pat, int reps) {
  const auto Ld = make_matrix(box, pat, 23);
  const auto invd = compute_invdiag(Ld);
  avec<float> invdf(invd.size());
  for (std::size_t i = 0; i < invd.size(); ++i) {
    invdf[i] = static_cast<float>(invd[i]);
  }
  const auto L32a = convert<float>(Ld, Layout::AOS);
  const auto L32s = convert<float>(Ld, Layout::SOAL);
  const auto L16s = convert<half>(Ld, Layout::SOAL);
  const auto L16a = convert<half>(Ld, Layout::AOS);
  const auto C32 = csr_from_struct<float, std::int32_t>(Ld);

  const std::size_t n = static_cast<std::size_t>(Ld.nrows());
  avec<float> f(n, 1.0f), u(n, 0.0f);

  KernelTimes kt;
  // Baseline is the best full-FP32 implementation: SOA line-buffered.
  kt.fp32_aos = time_best(
      [&] {
        gs_forward<float, float>(L32s, {f.data(), n}, {u.data(), n},
                                 {invdf.data(), invdf.size()});
      },
      reps);
  kt.fp16_soa = time_best(
      [&] {
        gs_forward<half, float>(L16s, {f.data(), n}, {u.data(), n},
                                {invdf.data(), invdf.size()});
      },
      reps);
  kt.fp16_aos = time_best(
      [&] {
        gs_forward<half, float>(L16a, {f.data(), n}, {u.data(), n},
                                {invdf.data(), invdf.size()});
      },
      reps);
  kt.csr_fp32 = time_best(
      [&] { C32.sptrsv_lower<float>({f.data(), n}, {u.data(), n}); }, reps);
  (void)L32a;

  const double slots = static_cast<double>(Ld.ncells()) * Ld.ndiag();
  const double vec = 3.0 * static_cast<double>(n) * 4.0;  // f, u, invdiag
  kt.max_model = (slots * 4.0 + vec) / (slots * 2.0 + vec);
  return kt;
}

void report(bench::Context& ctx, const char* kernel, Pattern pat,
            const std::vector<KernelTimes>& kts, Table& t) {
  std::vector<double> s_max, s_opt, s_naive, s_csr;
  for (const auto& kt : kts) {
    s_max.push_back(kt.max_model);
    s_opt.push_back(kt.fp32_aos / kt.fp16_soa);
    s_naive.push_back(kt.fp32_aos / kt.fp16_aos);
    s_csr.push_back(kt.fp32_aos / kt.csr_fp32);
  }
  const std::string key =
      std::string(kernel) + "/" + std::string(to_string(pat));
  // The model bound is closed-form (gate it); measured speedups are
  // host-dependent ratios — recorded ungated for the trajectory.
  ctx.value(key + "/speedup_bound", geomean({s_max.data(), s_max.size()}),
            "x", bench::Better::Higher, /*gate=*/true);
  ctx.value(key + "/speedup_opt", geomean({s_opt.data(), s_opt.size()}),
            "x", bench::Better::Higher);
  ctx.value(key + "/speedup_naive",
            geomean({s_naive.data(), s_naive.size()}), "x",
            bench::Better::Higher);
  ctx.value(key + "/speedup_csr_vendor",
            geomean({s_csr.data(), s_csr.size()}), "x",
            bench::Better::Higher);
  t.row({kernel, std::string(to_string(pat)),
         Table::fmt(geomean({s_max.data(), s_max.size()}), 2),
         Table::fmt(geomean({s_opt.data(), s_opt.size()}), 2),
         Table::fmt(geomean({s_naive.data(), s_naive.size()}), 2),
         "1.00",
         Table::fmt(geomean({s_csr.data(), s_csr.size()}), 2)});
}

}  // namespace

SMG_BENCH(fig7_kernel_ablation,
          "Figure 7 (speedups over MG-fp32/fp32, geomean over grid sizes)",
          bench::kPaper) {
  bench::print_header("Kernel ablation: AOS vs SOA vs model bound",
                      "Figure 7 (speedups over MG-fp32/fp32, geomean over"
                      " grid sizes)");

  std::vector<Box> sizes = {Box{48, 48, 48}, Box{64, 64, 64},
                            Box{80, 80, 80}};
  if (ctx.smoke()) {
    sizes = {Box{40, 40, 40}};  // one out-of-cache size keeps CI fast
  }
  const int reps = ctx.opts().repeats;
  Table t({"kernel", "pattern", "Max-fp16/fp32", "MG-fp16/fp32(opt)",
           "MG-fp16/fp32(naive)", "MG-fp32/fp32", "CSR-fp32(vendor)"});

  for (Pattern pat : {Pattern::P3d7, Pattern::P3d19, Pattern::P3d27}) {
    std::vector<KernelTimes> kts;
    for (const Box& box : sizes) {
      kts.push_back(bench_spmv(box, pat, reps));
    }
    report(ctx, "SpMV", pat, kts, t);
  }
  for (Pattern pat : {Pattern::P3d4, Pattern::P3d10, Pattern::P3d14}) {
    std::vector<KernelTimes> kts;
    for (const Box& box : sizes) {
      kts.push_back(bench_sptrsv(box, pat, reps));
    }
    report(ctx, "SpTRSV", pat, kts, t);
  }
  t.print();
  std::printf("\n(expected shape: opt tracks Max; naive pays the per-entry\n"
              "fcvt penalty; the index-carrying CSR 'vendor' kernel trails\n"
              "the structured baseline.)\n");
}
