// Shared helpers for the paper-reproduction benchmarks.
//
// Each bench binary regenerates one table or figure of the paper on this
// host's scale: problem sizes are reduced (single core vs 64-node clusters)
// but the reported series keep the paper's structure, so shapes are directly
// comparable.  See EXPERIMENTS.md for the recorded side-by-side.
#pragma once

#include <cstdio>
#include <string>

#include "core/mg_precond.hpp"
#include "kernels/spmv.hpp"
#include "problems/problem.hpp"
#include "solvers/cg.hpp"
#include "solvers/gmres.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace smg::bench {

/// Host-scaled default box per problem (paper sizes are 2M-637M dofs).
/// Sizes are chosen so every FP64 finest-level matrix exceeds the last-level
/// cache — the memory-bound regime the paper's speedup model assumes.
inline Box default_box(std::string_view name) {
  if (name == "laplace27" || name == "laplace27e8") {
    return Box{44, 44, 44};  // 27-pt: ~18 MB fp64 matrix
  }
  if (name == "rhd") {
    return Box{56, 56, 56};  // 7-pt: ~10 MB
  }
  if (name == "oil") {
    return Box{64, 64, 28};  // 7-pt: ~6.5 MB
  }
  if (name == "weather") {
    return Box{48, 48, 24};  // 19-pt: ~8.5 MB
  }
  if (name == "rhd3t") {
    return Box{28, 28, 28};  // 7-pt r=3: ~11 MB
  }
  if (name == "oil4c") {
    return Box{24, 24, 24};  // 7-pt r=4: ~12 MB
  }
  if (name == "solid3d") {
    return Box{22, 22, 22};  // 15-pt r=3: ~11.5 MB
  }
  return Box{24, 24, 24};
}

struct E2EResult {
  SolveResult solve;
  double setup_seconds = 0.0;
  double precond_seconds = 0.0;
  double total_seconds = 0.0;
  double other_seconds = 0.0;
};

/// Full workflow: hierarchy setup + preconditioned Krylov solve, timed by
/// phase exactly as Fig. 8/9 splits them (setup / MG preconditioner / other).
/// `deterministic` switches the Krylov dot/nrm2 to the fixed-blocking
/// pairwise reduction, making histories bitwise reproducible at any OpenMP
/// thread count (SolveOptions::deterministic_reductions).
inline E2EResult run_e2e(const Problem& p, MGConfig cfg, int max_iters = 400,
                         double rtol = 1e-9, bool deterministic = false) {
  E2EResult out;
  StructMat<double> A = p.A;

  Timer setup_t;
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  out.setup_seconds = setup_t.seconds();

  const LinOp<double> op = [&p](std::span<const double> x,
                                std::span<double> y) {
    spmv<double, double>(p.A, x, y);
  };
  const std::size_t n = p.b.size();
  avec<double> x(n, 0.0);
  SolveOptions opts;
  opts.max_iters = max_iters;
  opts.rtol = rtol;
  opts.deterministic_reductions = deterministic;

  if (p.solver == "cg") {
    out.solve = pcg<double>(op, {p.b.data(), n}, {x.data(), n}, *M, opts);
  } else {
    out.solve = pgmres<double>(op, {p.b.data(), n}, {x.data(), n}, *M, opts);
  }
  out.precond_seconds = out.solve.precond_seconds;
  out.total_seconds = out.setup_seconds + out.solve.solve_seconds;
  out.other_seconds = out.total_seconds - out.setup_seconds -
                      out.precond_seconds;
  return out;
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("==================================================\n");
  std::printf("%s\n", what);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==================================================\n");
}

}  // namespace smg::bench
