// Progressive-precision storage ladder (DESIGN.md §12): per-level formats.
//
// The paper stores every level-l >= shift_levid matrix at one narrow format;
// the ladder generalizes that binary split to a per-level format menu and
// adds an 8-bit rung for the coarse tail, where Theorem 4.1 headroom is
// widest and the bandwidth win per byte is smallest.  This bench gates the
// two promises the ladder makes:
//   * strictly fewer stored hierarchy bytes than the all-FP16 config, at
//     unchanged (+-0) outer iteration counts, and
//   * the all-FP16 ladder is the *identity* refactor — bitwise the same
//     solve as the legacy shift_levid configuration.
#include <cstring>

#include "bench_common.hpp"
#include "harness/harness.hpp"
#include "obs/counters.hpp"

using namespace smg;

namespace {

/// Stored matrix bytes across the hierarchy (the telemetry `matrix_bytes`
/// ledger, priced per level at its effective storage format).
double hierarchy_mb(const MGHierarchy& h) {
  double bytes = 0.0;
  for (const auto& c : obs::collect_precision_counters(h)) {
    bytes += static_cast<double>(c.matrix_bytes);
  }
  return bytes / (1024.0 * 1024.0);
}

struct LadderRun {
  bench::E2EResult e2e;
  avec<double> x;
  double matrix_mb = 0.0;
};

/// run_e2e plus the solution vector (for the bitwise identity check) and
/// the stored-bytes ledger.  Deterministic reductions keep the iteration
/// history bit-reproducible at any thread count.
LadderRun run_ladder(const Problem& p, MGConfig cfg) {
  cfg.min_coarse_cells = 64;
  LadderRun out;
  StructMat<double> A = p.A;
  Timer setup_t;
  MGHierarchy h(std::move(A), cfg);
  auto M = make_mg_precond<double>(h);
  out.e2e.setup_seconds = setup_t.seconds();
  out.matrix_mb = hierarchy_mb(h);

  const LinOp<double> op = [&p](std::span<const double> x,
                                std::span<double> y) {
    spmv<double, double>(p.A, x, y);
  };
  const std::size_t n = p.b.size();
  out.x.assign(n, 0.0);
  SolveOptions opts;
  opts.max_iters = 400;
  opts.rtol = 1e-9;
  opts.deterministic_reductions = true;
  if (p.solver == "cg") {
    out.e2e.solve =
        pcg<double>(op, {p.b.data(), n}, {out.x.data(), n}, *M, opts);
  } else {
    out.e2e.solve =
        pgmres<double>(op, {p.b.data(), n}, {out.x.data(), n}, *M, opts);
  }
  return out;
}

bool bitwise_equal(const avec<double>& a, const avec<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

SMG_BENCH(disc_precision_ladder,
          "DESIGN.md section 12 (progressive-precision storage ladder)",
          bench::kSmoke | bench::kPaper) {
  bench::print_header("Progressive-precision storage ladder (FP8 tail)",
                      "DESIGN.md section 12");

  Table t({"problem", "iters FP16", "iters ladder", "MB FP16", "MB ladder",
           "bytes saved", "fp16 ladder bitwise?"});
  // laplace27 + rhd: the FP8 tail is iteration-neutral at both paper and
  // smoke scale.  (oil's smoke-halved hierarchy loses one digit of
  // coarse-grid quality to the 3-bit mantissa and costs +1 iteration, so
  // it stays out of the +-0 gate; see disc_bf16_ablation for the
  // format-accuracy sweep over the full problem set.)
  for (const auto& name : {std::string("laplace27"), std::string("rhd")}) {
    const Problem p = make_problem(name, ctx.box(name));

    // Legacy binary split (storage=FP16, shift_levid=INT_MAX).
    MGConfig legacy = config_d16_setup_scale();
    const LadderRun rl = run_ladder(p, legacy);

    // The same policy spelled as a ladder: must be the identity refactor.
    MGConfig all16 = legacy;
    all16.storage_ladder = {Prec::FP16};
    const LadderRun r16 = run_ladder(p, all16);
    const bool identical =
        r16.e2e.solve.iters == rl.e2e.solve.iters && bitwise_equal(r16.x, rl.x);
    if (!identical) {
      ctx.fail(name + ": all-FP16 ladder diverged from the legacy "
                      "shift_levid solve (must be bitwise identical)");
    }

    // FP8 coarse tail: levels >= 2 drop to the 8-bit rung.
    MGConfig fp8tail = legacy;
    fp8tail.storage_ladder = {Prec::FP16, Prec::FP16, Prec::FP8};
    const LadderRun r8 = run_ladder(p, fp8tail);

    if (r8.e2e.solve.iters != r16.e2e.solve.iters) {
      ctx.fail(name + ": FP8 coarse rungs changed the iteration count (" +
               std::to_string(r16.e2e.solve.iters) + " -> " +
               std::to_string(r8.e2e.solve.iters) + ", must be +-0)");
    }
    if (!(r8.matrix_mb < r16.matrix_mb)) {
      ctx.fail(name + ": FP8 rungs did not shrink stored hierarchy bytes");
    }

    ctx.value(name + "/iters_fp16", static_cast<double>(r16.e2e.solve.iters),
              "iters", bench::Better::Lower, /*gate=*/true);
    ctx.value(name + "/iters_ladder", static_cast<double>(r8.e2e.solve.iters),
              "iters", bench::Better::Lower, /*gate=*/true);
    // The tentpole gate: modeled stored bytes strictly below the all-FP16
    // floor.  Machine-independent (stencil geometry x format widths), so
    // bench_compare hard-gates it.
    ctx.value(name + "/ladder_matrix_mb", r8.matrix_mb, "mb",
              bench::Better::Lower, /*gate=*/true);
    ctx.value(name + "/bytes_vs_fp16", r8.matrix_mb / r16.matrix_mb, "x",
              bench::Better::Lower, /*gate=*/true);

    t.row({name, std::to_string(r16.e2e.solve.iters) + " (" +
                     r16.e2e.solve.status() + ")",
           std::to_string(r8.e2e.solve.iters) + " (" + r8.e2e.solve.status() +
               ")",
           Table::fmt(r16.matrix_mb, 2), Table::fmt(r8.matrix_mb, 2),
           Table::fmt(100.0 * (1.0 - r8.matrix_mb / r16.matrix_mb), 1) + "%",
           identical ? "yes" : "NO(BUG)"});
  }
  t.print();
  std::printf("\n(the FP8 tail stores the coarse levels at 1 byte/entry "
              "under Theorem 4.1\nscaling; smoother data stays at the FP16 "
              "floor, so the win is the stored\nmatrix ledger above, not a "
              "smoother-accuracy trade.)\n");
}
