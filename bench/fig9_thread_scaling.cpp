// Thread scaling of the SymGS smoother and the full V-cycle (the Fig. 9
// companion this repo adds: the paper's Fig. 8/9 machines run 32-64 threads,
// where a *serial* smoother would Amdahl-cap the whole preconditioner).
//
// For each problem at fig8 scale: a single-thread sequential-smoother
// baseline, then OMP_NUM_THREADS in {1,2,4,8} with the Auto wavefront
// smoother.  Reported per config: ms per SymGS (fwd+bwd) sweep pair on the
// finest level, ms per full V-cycle, and the speedups vs the baseline —
// emitted both as a table and as one JSON line per config for BENCH_*.json
// harvesting.  (On a single-core host extra threads oversubscribe; the
// interesting series needs >= 2 cores.)
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/harness.hpp"
#include "kernels/blas1.hpp"
#include "kernels/symgs.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

using namespace smg;

namespace {

struct Timing {
  double symgs_ms = 0.0;   ///< one forward+backward sweep pair, finest level
  double vcycle_ms = 0.0;  ///< one MGPrecond<float>::apply
  std::string mode;        ///< smoother schedule actually in effect
};

Timing measure(const Problem& p, MGConfig cfg) {
  StructMat<double> A = p.A;
  MGHierarchy h(std::move(A), cfg);
  MGPrecond<float> M(&h);

  const Level& l0 = h.level(0);
  const std::size_t n = static_cast<std::size_t>(l0.A_full.nrows());
  avec<float> f(n, 1.0f);
  avec<float> u(n, 0.0f);
  avec<float> invdf(l0.invdiag.size());
  copy_convert<float, double>({l0.invdiag.data(), l0.invdiag.size()},
                              {invdf.data(), invdf.size()});
  avec<float> q2f;
  const float* q2 = nullptr;
  if (l0.scaled) {
    q2f.resize(l0.q2.size());
    copy_convert<float, double>({l0.q2.data(), l0.q2.size()},
                                {q2f.data(), q2f.size()});
    q2 = q2f.data();
  }
  const WavefrontSchedule* wf =
      l0.smoother_wf.valid() ? &l0.smoother_wf : nullptr;

  Timing out;
  out.mode = wf != nullptr ? "wavefront" : "sequential";

  const int sweeps = 20;
  const int cycles = 10;
  double best_symgs = 1e30;
  double best_cycle = 1e30;
  for (int rep = 0; rep < 3; ++rep) {  // rep 0 doubles as warm-up
    Timer ts;
    for (int s = 0; s < sweeps; ++s) {
      l0.A_stored.visit([&](const auto& m) {
        gs_forward(m, std::span<const float>{f.data(), n},
                   std::span<float>{u.data(), n},
                   std::span<const float>{invdf.data(), invdf.size()}, q2,
                   wf);
        gs_backward(m, std::span<const float>{f.data(), n},
                    std::span<float>{u.data(), n},
                    std::span<const float>{invdf.data(), invdf.size()}, q2,
                    wf);
      });
    }
    best_symgs = std::min(best_symgs, ts.seconds());

    avec<float> r(n, 1.0f);
    avec<float> e(n, 0.0f);
    Timer tc;
    for (int c = 0; c < cycles; ++c) {
      M.apply({r.data(), n}, {e.data(), n});
    }
    best_cycle = std::min(best_cycle, tc.seconds());
  }
  out.symgs_ms = best_symgs * 1000.0 / sweeps;
  out.vcycle_ms = best_cycle * 1000.0 / cycles;
  return out;
}

void set_threads(int nt) {
#if defined(_OPENMP)
  omp_set_num_threads(nt);
#else
  (void)nt;
#endif
}

}  // namespace

SMG_BENCH(fig9_thread_scaling,
          "Fig. 8/9 threading companion (kernel ablation: SymGS dominates)",
          bench::kPaper) {
  bench::print_header(
      "Thread scaling: SymGS sweeps and full V-cycles (wavefront smoother)",
      "Fig. 8/9 threading companion (kernel ablation: SymGS dominates)");

  std::vector<int> threads = {1, 2, 4, 8};
#if defined(_OPENMP)
  const int hw = omp_get_num_procs();
#else
  const int hw = 1;
  threads = {1};
#endif
  if (ctx.smoke()) {
    threads.resize(std::min<std::size_t>(threads.size(), 2));  // {1, 2}
  }
  std::printf("host procs: %d (speedups need >= 2; 1-core hosts "
              "oversubscribe)\n\n",
              hw);

  Table t({"problem", "threads", "mode", "symgs ms", "vcycle ms", "symgs x",
           "vcycle x"});

  std::vector<const char*> problems = {"rhd", "weather", "laplace27",
                                       "solid3d"};
  if (ctx.smoke()) {
    problems = {"rhd", "laplace27"};
  }
  for (const char* name : problems) {
    const Problem p = make_problem(name, ctx.box(name));

    // Baseline: the pre-wavefront configuration (sequential smoother, one
    // thread) — the "seed" single-thread SymGS time regressions are
    // measured against.
    MGConfig seq = config_d16_setup_scale();
    seq.min_coarse_cells = 64;
    seq.smoother_parallel = SmootherParallel::Sequential;
    set_threads(1);
    const Timing base = measure(p, seq);
    ctx.value(std::string(name) + "/t1_seq/symgs_ms", base.symgs_ms, "ms",
              bench::Better::Lower);
    ctx.value(std::string(name) + "/t1_seq/vcycle_ms", base.vcycle_ms, "ms",
              bench::Better::Lower);
    t.row({name, "1", "sequential", Table::fmt(base.symgs_ms, 3),
           Table::fmt(base.vcycle_ms, 3), "1.00", "1.00"});

    for (int nt : threads) {
      set_threads(nt);
      MGConfig cfg = config_d16_setup_scale();
      cfg.min_coarse_cells = 64;
      cfg.smoother_parallel = SmootherParallel::Auto;
      const Timing cur = measure(p, cfg);
      const double sx = base.symgs_ms / cur.symgs_ms;
      const double vx = base.vcycle_ms / cur.vcycle_ms;
      const std::string key =
          std::string(name) + "/t" + std::to_string(nt) + "/";
      ctx.value(key + "symgs_ms", cur.symgs_ms, "ms", bench::Better::Lower);
      ctx.value(key + "vcycle_ms", cur.vcycle_ms, "ms",
                bench::Better::Lower);
      ctx.value(key + "symgs_speedup", sx, "x", bench::Better::Higher);
      ctx.value(key + "vcycle_speedup", vx, "x", bench::Better::Higher);
      t.row({name, std::to_string(nt), cur.mode, Table::fmt(cur.symgs_ms, 3),
             Table::fmt(cur.vcycle_ms, 3), Table::fmt(sx, 2) + "x",
             Table::fmt(vx, 2) + "x"});
    }
  }

  std::printf("\n");
  t.print();
  std::printf("\n(threads=1 Auto keeps the sequential sweep — the <5%% "
              "regression check; wavefront rows parallelize every V-cycle "
              "kernel including the smoother.)\n");
  set_threads(hw);
}
