// Table 3: test-problem characteristics — basic info, numerical features,
// and solver information including the hierarchy complexities.
#include "bench_common.hpp"
#include "core/scaling.hpp"
#include "fp/half.hpp"
#include "harness/harness.hpp"

using namespace smg;

SMG_BENCH(tab3_problem_table, "Table 3", bench::kSmoke | bench::kPaper) {
  bench::print_header("Problem characteristics", "Table 3");

  Table t({"problem", "pde", "pattern", "#dof", "#nnz", "real?", "out-fp16?",
           "aniso", "solver", "C_G", "C_O"});
  for (const auto& name : problem_names()) {
    Problem p = make_problem(name, ctx.box(name));
    const bool out = max_abs_value(p.A) > static_cast<double>(kHalfMax);
    const std::string pde =
        p.A.block_size() == 1
            ? "scalar"
            : "vector(r=" + std::to_string(p.A.block_size()) + ")";
    const auto dof = p.A.nrows();
    const auto nnz = p.A.nnz_logical();
    MGConfig cfg = config_d16_setup_scale();
    cfg.min_coarse_cells = 64;
    MGHierarchy h(std::move(p.A), cfg);
    // Generator + coarsening invariants at the recorded box sizes: any
    // drift means the problem definitions or Galerkin setup changed.
    ctx.value(name + "/dof", static_cast<double>(dof), "rows",
              bench::Better::None, /*gate=*/true);
    ctx.value(name + "/nnz", static_cast<double>(nnz), "nnz",
              bench::Better::None, /*gate=*/true);
    ctx.value(name + "/grid_complexity", h.grid_complexity(), "ratio",
              bench::Better::Lower, /*gate=*/true);
    ctx.value(name + "/operator_complexity", h.operator_complexity(),
              "ratio", bench::Better::Lower, /*gate=*/true);
    t.row({name, pde,
           std::to_string(h.level(0).A_full.stencil().ndiag()) + "pt",
           std::to_string(dof), std::to_string(nnz),
           p.real_world ? "yes" : "no",
           out ? ("yes (" + p.dist + ")") : "no", p.aniso, p.solver,
           Table::fmt(h.grid_complexity(), 2),
           Table::fmt(h.operator_complexity(), 2)});
  }
  t.print();
  std::printf("\n(paper sizes are 2.1M-637M dofs on clusters; boxes here are\n"
              "host-scaled.  Patterns: 3d15/3d19 expand to 3d27 on coarse\n"
              "levels, exactly as footnote 5 of the paper describes.)\n");
}
