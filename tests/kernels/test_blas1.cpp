// Tests for vector kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "kernels/blas1.hpp"

namespace smg {
namespace {

TEST(Blas1, Axpy) {
  std::vector<double> x = {1, 2, 3}, y = {10, 20, 30};
  axpy<double>(2.0, {x.data(), x.size()}, {y.data(), y.size()});
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36}));
}

TEST(Blas1, Xpay) {
  std::vector<double> x = {1, 2, 3}, y = {10, 20, 30};
  xpay<double>({x.data(), x.size()}, 0.5, {y.data(), y.size()});
  EXPECT_EQ(y, (std::vector<double>{6, 12, 18}));
}

TEST(Blas1, ScalAndZero) {
  std::vector<float> x = {2, -4, 8};
  scal<float>(0.5f, {x.data(), x.size()});
  EXPECT_EQ(x, (std::vector<float>{1, -2, 4}));
  set_zero(std::span<float>{x.data(), x.size()});
  EXPECT_EQ(x, (std::vector<float>{0, 0, 0}));
}

TEST(Blas1, DotAccumulatesInDouble) {
  // 1e8 + 1 + ... + 1 - 1e8: float accumulation would lose the ones.
  std::vector<float> x(1026, 1.0f), y(1026, 1.0f);
  x[0] = 1e8f;
  x[1025] = -1e8f;
  const double d = dot<float>({x.data(), x.size()}, {y.data(), y.size()});
  EXPECT_DOUBLE_EQ(d, 1024.0);
}

TEST(Blas1, Norms) {
  std::vector<double> x = {3, -4};
  EXPECT_DOUBLE_EQ(nrm2<double>({x.data(), x.size()}), 5.0);
  EXPECT_DOUBLE_EQ(nrm_inf<double>({x.data(), x.size()}), 4.0);
}

TEST(Blas1, CopyConvertTruncates) {
  std::vector<double> x = {1.0000000001, -2.5};
  std::vector<float> y(2);
  copy_convert<float, double>({x.data(), x.size()}, {y.data(), y.size()});
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], -2.5f);
}

TEST(Blas1, LargeVectorsConsistent) {
  const std::size_t n = 100003;  // odd size exercises SIMD remainders
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(static_cast<double>(i));
    y[i] = std::cos(static_cast<double>(i));
  }
  double ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ref += x[i] * y[i];
  }
  EXPECT_NEAR(dot<double>({x.data(), n}, {y.data(), n}), ref,
              1e-9 * std::abs(ref) + 1e-12);
}

}  // namespace
}  // namespace smg
