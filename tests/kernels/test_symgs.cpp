// Gauss-Seidel sweep / SpTRSV correctness: optimized line-buffered SOA path
// vs the scalar AOS path vs explicit triangular solves.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <type_traits>
#include <vector>

#include "core/smoother.hpp"
#include "grid/wavefront.hpp"
#include "kernels/spmv.hpp"
#include "kernels/symgs.hpp"
#include "sgdia/struct_matrix.hpp"
#include "util/rng.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace smg {
namespace {

/// Diagonally dominant random matrix (GS-stable).
StructMat<double> dd_matrix(const Box& box, Pattern p, int bs,
                            Layout layout, std::uint64_t seed = 13) {
  StructMat<double> A(box, Stencil::make(p), bs, layout);
  Rng rng(seed);
  const int center = A.stencil().center();
  const double dom = 2.0 * A.ndiag() * bs;
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    for (int d = 0; d < A.ndiag(); ++d) {
      for (int br = 0; br < bs; ++br) {
        for (int bc = 0; bc < bs; ++bc) {
          double v = rng.uniform(-1.0, 1.0);
          if (d == center && br == bc) {
            v = dom + rng.uniform(0.0, 1.0);
          }
          A.at(cell, d, br, bc) = v;
        }
      }
    }
  }
  A.clear_out_of_box();
  return A;
}

template <class T>
avec<T> rand_vec(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  avec<T> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  return v;
}

avec<float> to_float(const avec<double>& x) {
  avec<float> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = static_cast<float>(x[i]);
  }
  return y;
}

struct GsCase {
  Pattern pattern;
  int bs;
  Layout layout = Layout::SOA;
};

class GsParam : public ::testing::TestWithParam<GsCase> {};

TEST_P(GsParam, SoaLinePathMatchesScalarPath) {
  const auto& c = GetParam();
  const Box box{11, 7, 5};
  auto A = dd_matrix(box, c.pattern, c.bs, Layout::SOA);
  auto A_aos = convert<double>(A, Layout::AOS);
  const auto invd = compute_invdiag(A);
  auto invdf = to_float(invd);

  auto Af_soa = convert<float>(A, c.layout);
  auto Af_aos = convert<float>(A_aos, Layout::AOS);

  const auto f = rand_vec<float>(A.nrows(), 31);
  avec<float> u1(f.size(), 0.25f), u2(f.size(), 0.25f);

  gs_forward<float, float>(Af_soa, {f.data(), f.size()}, {u1.data(), u1.size()},
                           {invdf.data(), invdf.size()});
  gs_forward<float, float>(Af_aos, {f.data(), f.size()}, {u2.data(), u2.size()},
                           {invdf.data(), invdf.size()});
  for (std::size_t i = 0; i < u1.size(); ++i) {
    EXPECT_NEAR(u1[i], u2[i], 2e-5f) << "fwd i=" << i;
  }

  gs_backward<float, float>(Af_soa, {f.data(), f.size()},
                            {u1.data(), u1.size()},
                            {invdf.data(), invdf.size()});
  gs_backward<float, float>(Af_aos, {f.data(), f.size()},
                            {u2.data(), u2.size()},
                            {invdf.data(), invdf.size()});
  for (std::size_t i = 0; i < u1.size(); ++i) {
    EXPECT_NEAR(u1[i], u2[i], 2e-5f) << "bwd i=" << i;
  }
}

TEST_P(GsParam, SweepReducesResidual) {
  const auto& c = GetParam();
  const Box box{10, 8, 6};
  auto A = dd_matrix(box, c.pattern, c.bs, Layout::SOA);
  const auto invd = compute_invdiag(A);

  const auto b = rand_vec<double>(A.nrows(), 41);
  avec<double> u(b.size(), 0.0);
  avec<double> r(b.size());

  auto rnorm = [&]() {
    residual<double, double>(A, {b.data(), b.size()}, {u.data(), u.size()},
                             {r.data(), r.size()});
    double s = 0.0;
    for (double v : r) {
      s += v * v;
    }
    return std::sqrt(s);
  };

  const double r0 = rnorm();
  gs_forward<double, double>(A, {b.data(), b.size()}, {u.data(), u.size()},
                             {invd.data(), invd.size()});
  const double r1 = rnorm();
  gs_backward<double, double>(A, {b.data(), b.size()}, {u.data(), u.size()},
                              {invd.data(), invd.size()});
  const double r2 = rnorm();
  EXPECT_LT(r1, 0.5 * r0);  // strong dominance -> fast sweeps
  EXPECT_LT(r2, r1);
}

INSTANTIATE_TEST_SUITE_P(
    PatternsBlocks, GsParam,
    ::testing::Values(GsCase{Pattern::P3d7, 1}, GsCase{Pattern::P3d19, 1},
                      GsCase{Pattern::P3d27, 1}, GsCase{Pattern::P3d7, 3},
                      GsCase{Pattern::P3d15, 3}, GsCase{Pattern::P3d7, 4},
                      GsCase{Pattern::P3d27, 1, Layout::SOAL},
                      GsCase{Pattern::P3d7, 3, Layout::SOAL},
                      GsCase{Pattern::P3d7, 4, Layout::SOAL},
                      GsCase{Pattern::P3d15, 3, Layout::SOAL}));

TEST(SpTRSV, ForwardSweepSolvesLowerTriangularExactly) {
  // On a lower-triangular pattern (3d4/3d10/3d14) one forward sweep IS the
  // exact triangular solve: verify A_L u == f to rounding.
  for (Pattern p : {Pattern::P3d4, Pattern::P3d10, Pattern::P3d14}) {
    const Box box{9, 6, 4};
    auto L = dd_matrix(box, p, 1, Layout::SOA, 53);
    const auto invd = compute_invdiag(L);
    const auto f = rand_vec<double>(L.nrows(), 61);
    avec<double> u(f.size(), 0.0);
    gs_forward<double, double>(L, {f.data(), f.size()}, {u.data(), u.size()},
                               {invd.data(), invd.size()});
    avec<double> lu(f.size());
    spmv<double, double>(L, {u.data(), u.size()}, {lu.data(), lu.size()});
    for (std::size_t i = 0; i < f.size(); ++i) {
      EXPECT_NEAR(lu[i], f[i], 1e-10) << to_string(p) << " i=" << i;
    }
  }
}

TEST(SpTRSV, HalfStorageForwardSolveStaysAccurate) {
  const Box box{8, 8, 8};
  auto L = dd_matrix(box, Pattern::P3d14, 1, Layout::SOA, 71);
  const auto invd = compute_invdiag(L);
  auto invdf = to_float(invd);
  auto Lh = convert<half>(L, Layout::SOA);
  const auto f = rand_vec<float>(L.nrows(), 73);
  avec<float> u(f.size(), 0.0f);
  gs_forward<half, float>(Lh, {f.data(), f.size()}, {u.data(), u.size()},
                          {invdf.data(), invdf.size()});
  // Check against the double solve.
  const auto fd = rand_vec<double>(L.nrows(), 73);
  avec<double> ud(fd.size(), 0.0);
  gs_forward<double, double>(L, {fd.data(), fd.size()}, {ud.data(), ud.size()},
                             {invd.data(), invd.size()});
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(u[i], ud[i], 5e-3 * (std::abs(ud[i]) + 0.3));
  }
}

TEST(SymGS, ScaledSweepMatchesUnscaledOperator) {
  // Sweeping with stored Â + q2 must act like sweeping with A itself.
  const Box box{7, 5, 6};
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 1, Layout::SOA);
  Rng rng(81);
  const int center = A.stencil().center();
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    for (int d = 0; d < A.ndiag(); ++d) {
      A.at(cell, d) =
          d == center ? rng.uniform(10.0, 14.0) : rng.uniform(-1.0, 0.0);
    }
  }
  A.clear_out_of_box();
  const auto invd = compute_invdiag(A);
  auto invdf = to_float(invd);

  // Scale manually (G = 1).
  StructMat<double> Ahat = A;
  avec<float> q2(static_cast<std::size_t>(A.nrows()));
  avec<double> q2d(q2.size());
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    q2d[static_cast<std::size_t>(cell)] = std::sqrt(A.at(cell, center));
    q2[static_cast<std::size_t>(cell)] =
        static_cast<float>(q2d[static_cast<std::size_t>(cell)]);
  }
  const Stencil& st = A.stencil();
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        for (int d = 0; d < st.ndiag(); ++d) {
          const Offset& o = st.offset(d);
          if (!box.contains(i + o.dx, j + o.dy, k + o.dz)) {
            continue;
          }
          const std::int64_t nbr = box.idx(i + o.dx, j + o.dy, k + o.dz);
          Ahat.at(cell, d) /= q2d[static_cast<std::size_t>(cell)] *
                              q2d[static_cast<std::size_t>(nbr)];
        }
      }
    }
  }
  auto Ahat_f = convert<float>(Ahat, Layout::SOA);
  auto Af = convert<float>(A, Layout::SOA);

  const auto f = rand_vec<float>(A.nrows(), 83);
  avec<float> u1(f.size(), 0.0f), u2(f.size(), 0.0f);
  gs_forward<float, float>(Ahat_f, {f.data(), f.size()}, {u1.data(), u1.size()},
                           {invdf.data(), invdf.size()}, q2.data());
  gs_forward<float, float>(Af, {f.data(), f.size()}, {u2.data(), u2.size()},
                           {invdf.data(), invdf.size()});
  for (std::size_t i = 0; i < u1.size(); ++i) {
    EXPECT_NEAR(u1[i], u2[i], 1e-4f) << "i=" << i;
  }
}

/// One forward + one backward sweep with the wavefront schedule must be
/// BITWISE identical to the sequential sweep — for every thread count, since
/// the level function strictly orders every lexicographic dependency.
template <class ST>
void wavefront_bitwise_case(Pattern pat, int bs, Layout layout, bool scaled) {
  using CT = std::conditional_t<std::is_same_v<ST, double>, double, float>;
  const Box box{12, 7, 6};
  auto Ad = dd_matrix(box, pat, bs, Layout::SOA, 17);
  auto As = convert<ST>(Ad, layout);
  const auto invd = compute_invdiag(Ad);
  avec<CT> invdc(invd.size());
  for (std::size_t i = 0; i < invd.size(); ++i) {
    invdc[i] = static_cast<CT>(invd[i]);
  }
  const auto f = rand_vec<CT>(Ad.nrows(), 23);
  avec<CT> q2v;
  const CT* q2 = nullptr;
  if (scaled) {
    Rng rng(29);
    q2v.resize(f.size());
    for (auto& v : q2v) {
      v = static_cast<CT>(rng.uniform(0.5, 1.5));
    }
    q2 = q2v.data();
  }

  avec<CT> useq(f.size(), CT{0.25});
  gs_forward<ST, CT>(As, {f.data(), f.size()}, {useq.data(), useq.size()},
                     {invdc.data(), invdc.size()}, q2);
  gs_backward<ST, CT>(As, {f.data(), f.size()}, {useq.data(), useq.size()},
                      {invdc.data(), invdc.size()}, q2);

  const WavefrontSchedule wf =
      layout == Layout::AOS ? WavefrontSchedule::cells(box, As.stencil())
                            : WavefrontSchedule::lines(box, As.stencil());
  ASSERT_TRUE(wf.valid());

#if defined(_OPENMP)
  const int saved_threads = omp_get_max_threads();
#endif
  for (int nt = 1; nt <= 8; ++nt) {
#if defined(_OPENMP)
    omp_set_num_threads(nt);
#endif
    avec<CT> uwf(f.size(), CT{0.25});
    gs_forward<ST, CT>(As, {f.data(), f.size()}, {uwf.data(), uwf.size()},
                       {invdc.data(), invdc.size()}, q2, &wf);
    gs_backward<ST, CT>(As, {f.data(), f.size()}, {uwf.data(), uwf.size()},
                        {invdc.data(), invdc.size()}, q2, &wf);
    EXPECT_EQ(0, std::memcmp(useq.data(), uwf.data(),
                             useq.size() * sizeof(CT)))
        << to_string(pat) << " bs=" << bs << " layout=" << static_cast<int>(layout)
        << " scaled=" << scaled << " threads=" << nt;
#if !defined(_OPENMP)
    break;  // thread count is meaningless without OpenMP
#endif
  }
#if defined(_OPENMP)
  omp_set_num_threads(saved_threads);
#endif
}

template <class ST>
void wavefront_bitwise_matrix() {
  for (Pattern pat : {Pattern::P3d7, Pattern::P3d19, Pattern::P3d27}) {
    for (int bs : {1, 3}) {
      for (Layout layout : {Layout::SOA, Layout::SOAL, Layout::AOS}) {
        for (bool scaled : {false, true}) {
          wavefront_bitwise_case<ST>(pat, bs, layout, scaled);
        }
      }
    }
  }
}

TEST(SymGSWavefront, BitwiseIdenticalDouble) {
  wavefront_bitwise_matrix<double>();
}

TEST(SymGSWavefront, BitwiseIdenticalFloat) {
  wavefront_bitwise_matrix<float>();
}

TEST(SymGSWavefront, BitwiseIdenticalHalf) { wavefront_bitwise_matrix<half>(); }

TEST(SymGSWavefront, BitwiseIdenticalBfloat16) {
  wavefront_bitwise_matrix<bfloat16>();
}

TEST(SymGSWavefront, MismatchedGranularityFallsBackToSequential) {
  // A Cell schedule handed to the SOA line path (and vice versa) must be
  // ignored, not misapplied: results still match the sequential sweep.
  const Box box{9, 6, 5};
  auto A = dd_matrix(box, Pattern::P3d19, 1, Layout::SOA, 47);
  const auto invd = compute_invdiag(A);
  const auto f = rand_vec<double>(A.nrows(), 49);
  const auto wrong = WavefrontSchedule::cells(box, A.stencil());
  ASSERT_TRUE(wrong.valid());

  avec<double> u1(f.size(), 0.0), u2(f.size(), 0.0);
  gs_forward<double, double>(A, {f.data(), f.size()}, {u1.data(), u1.size()},
                             {invd.data(), invd.size()});
  gs_forward<double, double>(A, {f.data(), f.size()}, {u2.data(), u2.size()},
                             {invd.data(), invd.size()}, nullptr, &wrong);
  EXPECT_EQ(0, std::memcmp(u1.data(), u2.data(), u1.size() * sizeof(double)));
}

TEST(SymGS, ConvergesToExactSolutionOnSmallSystem) {
  // Repeated symmetric sweeps on a diagonally dominant system converge.
  const Box box{4, 4, 4};
  auto A = dd_matrix(box, Pattern::P3d7, 2, Layout::SOA, 91);
  const auto invd = compute_invdiag(A);
  const auto b = rand_vec<double>(A.nrows(), 93);
  avec<double> u(b.size(), 0.0), r(b.size());
  for (int sweep = 0; sweep < 60; ++sweep) {
    gs_forward<double, double>(A, {b.data(), b.size()}, {u.data(), u.size()},
                               {invd.data(), invd.size()});
    gs_backward<double, double>(A, {b.data(), b.size()}, {u.data(), u.size()},
                                {invd.data(), invd.size()});
  }
  residual<double, double>(A, {b.data(), b.size()}, {u.data(), u.size()},
                           {r.data(), r.size()});
  for (double v : r) {
    EXPECT_NEAR(v, 0.0, 1e-10);
  }
}

}  // namespace
}  // namespace smg
