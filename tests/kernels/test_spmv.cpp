// SpMV kernel correctness: optimized layouts vs scalar reference vs dense,
// mixed precision tolerance, and recover-and-rescale semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "kernels/spmv.hpp"
#include "sgdia/struct_matrix.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

StructMat<double> random_matrix(const Box& box, Pattern p, int bs,
                                Layout layout, std::uint64_t seed = 7) {
  StructMat<double> A(box, Stencil::make(p), bs, layout);
  Rng rng(seed);
  for (auto& v : A.values()) {
    v = rng.uniform(-1.0, 1.0);
  }
  A.clear_out_of_box();
  return A;
}

template <class T>
avec<T> random_vector(std::int64_t n, std::uint64_t seed = 11) {
  Rng rng(seed);
  avec<T> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  return v;
}

/// Dense reference y = A x from the accessor-level definition.
avec<double> dense_spmv(const StructMat<double>& A,
                        std::span<const double> x) {
  const Box& box = A.box();
  const Stencil& st = A.stencil();
  const int bs = A.block_size();
  avec<double> y(static_cast<std::size_t>(A.nrows()), 0.0);
  for (int k = 0; k < box.nz; ++k) {
    for (int j = 0; j < box.ny; ++j) {
      for (int i = 0; i < box.nx; ++i) {
        const std::int64_t cell = box.idx(i, j, k);
        for (int d = 0; d < st.ndiag(); ++d) {
          const Offset& o = st.offset(d);
          if (!box.contains(i + o.dx, j + o.dy, k + o.dz)) {
            continue;
          }
          const std::int64_t nbr = box.idx(i + o.dx, j + o.dy, k + o.dz);
          for (int br = 0; br < bs; ++br) {
            for (int bc = 0; bc < bs; ++bc) {
              y[static_cast<std::size_t>(cell * bs + br)] +=
                  A.at(cell, d, br, bc) * x[nbr * bs + bc];
            }
          }
        }
      }
    }
  }
  return y;
}

struct SpmvCase {
  Pattern pattern;
  int bs;
  Layout layout;
};

class SpmvParam : public ::testing::TestWithParam<SpmvCase> {};

TEST_P(SpmvParam, MatchesDenseReference) {
  const auto& c = GetParam();
  const Box box{9, 7, 5};
  auto A = random_matrix(box, c.pattern, c.bs, c.layout);
  auto x = random_vector<double>(A.nrows());
  avec<double> y(static_cast<std::size_t>(A.nrows()));
  spmv<double, double>(A, {x.data(), x.size()}, {y.data(), y.size()});
  const auto ref = dense_spmv(A, {x.data(), x.size()});
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], ref[i], 1e-12) << "i=" << i;
  }
}

TEST_P(SpmvParam, RefKernelMatchesDense) {
  const auto& c = GetParam();
  const Box box{6, 5, 4};
  auto A = random_matrix(box, c.pattern, c.bs, c.layout);
  auto x = random_vector<double>(A.nrows());
  avec<double> y(static_cast<std::size_t>(A.nrows()));
  spmv_ref<double, double>(A, {x.data(), x.size()}, {y.data(), y.size()});
  const auto ref = dense_spmv(A, {x.data(), x.size()});
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], ref[i], 1e-12);
  }
}

TEST_P(SpmvParam, ResidualIsBMinusAx) {
  const auto& c = GetParam();
  const Box box{8, 6, 5};
  auto A = random_matrix(box, c.pattern, c.bs, c.layout);
  auto x = random_vector<double>(A.nrows(), 3);
  auto b = random_vector<double>(A.nrows(), 5);
  avec<double> r(static_cast<std::size_t>(A.nrows()));
  residual<double, double>(A, {b.data(), b.size()}, {x.data(), x.size()},
                           {r.data(), r.size()});
  const auto ax = dense_spmv(A, {x.data(), x.size()});
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(r[i], b[i] - ax[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PatternsBlocksLayouts, SpmvParam,
    ::testing::Values(SpmvCase{Pattern::P3d7, 1, Layout::SOA},
                      SpmvCase{Pattern::P3d7, 1, Layout::AOS},
                      SpmvCase{Pattern::P3d7, 1, Layout::SOAL},
                      SpmvCase{Pattern::P3d19, 1, Layout::SOA},
                      SpmvCase{Pattern::P3d19, 1, Layout::AOS},
                      SpmvCase{Pattern::P3d19, 1, Layout::SOAL},
                      SpmvCase{Pattern::P3d27, 1, Layout::SOA},
                      SpmvCase{Pattern::P3d27, 1, Layout::AOS},
                      SpmvCase{Pattern::P3d27, 1, Layout::SOAL},
                      SpmvCase{Pattern::P3d15, 3, Layout::SOA},
                      SpmvCase{Pattern::P3d15, 3, Layout::AOS},
                      SpmvCase{Pattern::P3d15, 3, Layout::SOAL},
                      SpmvCase{Pattern::P3d7, 4, Layout::SOA},
                      SpmvCase{Pattern::P3d7, 4, Layout::AOS},
                      SpmvCase{Pattern::P3d7, 4, Layout::SOAL}));

TEST(SpmvMixed, SoalHalfMatchesSoaHalf) {
  // The line-blocked SOAL path and the plain SOA path must agree exactly up
  // to summation order on every cell, including all boundary blocks.
  for (const Box box : {Box{17, 9, 8}, Box{5, 4, 3}, Box{8, 8, 8}}) {
    auto A = random_matrix(box, Pattern::P3d27, 1, Layout::SOA);
    auto Ah_soa = convert<half>(A, Layout::SOA);
    auto Ah_soal = convert<half>(A, Layout::SOAL);
    auto x = random_vector<float>(A.nrows());
    avec<float> y1(x.size()), y2(x.size());
    spmv<half, float>(Ah_soa, {x.data(), x.size()}, {y1.data(), y1.size()});
    spmv<half, float>(Ah_soal, {x.data(), x.size()}, {y2.data(), y2.size()});
    for (std::size_t i = 0; i < y1.size(); ++i) {
      EXPECT_NEAR(y1[i], y2[i], 1e-5f) << "i=" << i;
    }
  }
}

TEST(SpmvMixed, HalfStorageCloseToFloat) {
  const Box box{16, 12, 10};
  auto A = random_matrix(box, Pattern::P3d27, 1, Layout::SOA);
  auto Ah = convert<half>(A, Layout::SOA);
  auto Af = convert<float>(A, Layout::SOA);
  auto x = random_vector<float>(A.nrows());
  avec<float> yh(x.size()), yf(x.size());
  spmv<half, float>(Ah, {x.data(), x.size()}, {yh.data(), yh.size()});
  spmv<float, float>(Af, {x.data(), x.size()}, {yf.data(), yf.size()});
  // 27 accumulated products, each with relative error <= 2^-11.
  for (std::size_t i = 0; i < yh.size(); ++i) {
    EXPECT_NEAR(yh[i], yf[i], 27.0 * 0.5e-3 * 2.0 + 1e-6);
  }
}

TEST(SpmvMixed, HalfAosNaiveMatchesSoaOpt) {
  // The AOS "naive" and SOA SIMD paths must be numerically identical: both
  // widen exactly the same FP16 values into FP32 before multiplying.
  const Box box{17, 9, 8};  // odd nx exercises SIMD remainder lanes
  auto A = random_matrix(box, Pattern::P3d19, 1, Layout::SOA);
  auto Ah_soa = convert<half>(A, Layout::SOA);
  auto Ah_aos = convert<half>(A, Layout::AOS);
  auto x = random_vector<float>(A.nrows());
  avec<float> ys(x.size()), ya(x.size());
  spmv<half, float>(Ah_soa, {x.data(), x.size()}, {ys.data(), ys.size()});
  spmv<half, float>(Ah_aos, {x.data(), x.size()}, {ya.data(), ya.size()});
  for (std::size_t i = 0; i < ys.size(); ++i) {
    // Same values, same compute precision; only summation order differs
    // between per-diagonal and per-cell accumulation.
    EXPECT_NEAR(ys[i], ya[i], 1e-4f) << "i=" << i;
  }
}

TEST(SpmvMixed, Bf16StorageWorks) {
  const Box box{8, 8, 8};
  auto A = random_matrix(box, Pattern::P3d7, 1, Layout::SOA);
  auto Ab = convert<bfloat16>(A, Layout::SOA);
  auto x = random_vector<float>(A.nrows());
  avec<float> y(x.size());
  spmv<bfloat16, float>(Ab, {x.data(), x.size()}, {y.data(), y.size()});
  const auto xd = random_vector<double>(A.nrows());  // same seed = same values
  avec<double> yd = dense_spmv(A, {xd.data(), xd.size()});
  for (std::size_t i = 0; i < y.size(); ++i) {
    // bf16 has ~2-3 decimal digits.
    EXPECT_NEAR(y[i], yd[i], 0.1 + 0.05 * std::abs(yd[i]));
  }
}

TEST(SpmvScaled, RecoverAndRescaleReproducesOriginalOperator) {
  // Scaled storage Â = Q^{-1/2} A Q^{-1/2} with on-the-fly q2 rescale must
  // reproduce A x.  Build an SPD-ish matrix with positive diagonal.
  const Box box{7, 6, 5};
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 1, Layout::SOA);
  Rng rng(99);
  const int center = A.stencil().center();
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    for (int d = 0; d < A.ndiag(); ++d) {
      A.at(cell, d) = d == center ? rng.uniform(6.0, 12.0)
                                  : rng.uniform(-1.0, 0.0);
    }
  }
  A.clear_out_of_box();

  // Manual scaling with G = 1: q2[i] = sqrt(a_ii).
  StructMat<double> Ahat = A;
  avec<float> q2(static_cast<std::size_t>(A.nrows()));
  avec<double> q2d(q2.size());
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    q2d[static_cast<std::size_t>(cell)] = std::sqrt(A.at(cell, center));
    q2[static_cast<std::size_t>(cell)] =
        static_cast<float>(q2d[static_cast<std::size_t>(cell)]);
  }
  const Box& b = A.box();
  const Stencil& st = A.stencil();
  for (int k = 0; k < b.nz; ++k) {
    for (int j = 0; j < b.ny; ++j) {
      for (int i = 0; i < b.nx; ++i) {
        const std::int64_t cell = b.idx(i, j, k);
        for (int d = 0; d < st.ndiag(); ++d) {
          const Offset& o = st.offset(d);
          if (!b.contains(i + o.dx, j + o.dy, k + o.dz)) {
            continue;
          }
          const std::int64_t nbr = b.idx(i + o.dx, j + o.dy, k + o.dz);
          Ahat.at(cell, d) /= q2d[static_cast<std::size_t>(cell)] *
                              q2d[static_cast<std::size_t>(nbr)];
        }
      }
    }
  }

  auto Ah = convert<half>(Ahat, Layout::SOA);
  auto x = random_vector<float>(A.nrows(), 21);
  avec<float> y_scaled(x.size());
  spmv<half, float>(Ah, {x.data(), x.size()}, {y_scaled.data(), y_scaled.size()},
                    q2.data());

  auto xd = random_vector<double>(A.nrows(), 21);
  const auto y_ref = dense_spmv(A, {xd.data(), xd.size()});
  for (std::size_t i = 0; i < y_scaled.size(); ++i) {
    EXPECT_NEAR(y_scaled[i], y_ref[i],
                3e-3 * (std::abs(y_ref[i]) + 10.0));
  }
}

TEST(SpmvScaled, ScaledResidualMatchesUnscaledOperator) {
  const Box box{6, 6, 6};
  StructMat<double> A(box, Stencil::make(Pattern::P3d7), 1, Layout::SOA);
  const int center = A.stencil().center();
  Rng rng(3);
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    for (int d = 0; d < A.ndiag(); ++d) {
      A.at(cell, d) = d == center ? 8.0 : -1.0;
    }
  }
  A.clear_out_of_box();
  // Trivial scaling q2 = 1 must leave results identical to the plain path.
  auto Af = convert<float>(A, Layout::SOA);
  avec<float> q2(static_cast<std::size_t>(A.nrows()), 1.0f);
  auto x = random_vector<float>(A.nrows(), 8);
  auto bb = random_vector<float>(A.nrows(), 9);
  avec<float> r1(x.size()), r2(x.size());
  residual<float, float>(Af, {bb.data(), bb.size()}, {x.data(), x.size()},
                         {r1.data(), r1.size()}, q2.data());
  residual<float, float>(Af, {bb.data(), bb.size()}, {x.data(), x.size()},
                         {r2.data(), r2.size()});
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_NEAR(r1[i], r2[i], 1e-5f);
  }
}

TEST(SpmvScaled, BlockScaledPathIsThreadCountInvariant) {
  // Regression: the scaled block kernel's q2.*x pre-pass once indexed a
  // thread_local buffer from inside its omp-parallel region, so worker
  // threads wrote through their own (empty) copy — a crash only visible at
  // >= 2 threads with bs > 1 and q2 != nullptr (the fig9 solid3d config).
  const Box box{10, 7, 6};
  auto A = random_matrix(box, Pattern::P3d15, 3, Layout::SOAL, 31);
  auto Ah = convert<half>(A, Layout::SOAL);
  const std::size_t n = static_cast<std::size_t>(A.nrows());
  avec<float> q2(n);
  Rng rng(17);
  for (auto& q : q2) {
    q = static_cast<float>(rng.uniform(0.5, 2.0));
  }
  auto x = random_vector<float>(A.nrows(), 23);

  const auto run = [&]() {
    avec<float> y(n);
    spmv<half, float>(Ah, {x.data(), x.size()}, {y.data(), y.size()},
                      q2.data());
    return y;
  };

#if defined(_OPENMP)
  const int saved = omp_get_max_threads();
#endif
  const avec<float> ref = run();
  for (int nt : {2, 4, 8}) {
#if defined(_OPENMP)
    omp_set_num_threads(nt);
#else
    (void)nt;
#endif
    const avec<float> y = run();
    ASSERT_EQ(0, std::memcmp(y.data(), ref.data(), n * sizeof(float)))
        << "threads=" << nt;
  }
#if defined(_OPENMP)
  omp_set_num_threads(saved);
#endif
}

TEST(Spmv, EmptyAndTinyBoxes) {
  for (const Box box : {Box{1, 1, 1}, Box{2, 1, 1}, Box{1, 2, 3}}) {
    auto A = random_matrix(box, Pattern::P3d27, 1, Layout::SOA);
    auto x = random_vector<double>(A.nrows());
    avec<double> y(x.size());
    spmv<double, double>(A, {x.data(), x.size()}, {y.data(), y.size()});
    const auto ref = dense_spmv(A, {x.data(), x.size()});
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_NEAR(y[i], ref[i], 1e-13);
    }
  }
}

}  // namespace
}  // namespace smg
