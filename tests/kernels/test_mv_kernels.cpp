// Multi-RHS (panel) kernels: column c of every *_many kernel must be BITWISE
// identical to the corresponding single-RHS kernel on that column — across
// layout x storage x block size x scaling x panel width, including the
// wavefront-parallel SymGS path at every thread count.  This is the contract
// the batched solver's bitwise-reproducibility guarantee rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "core/smoother.hpp"
#include "core/transfer.hpp"
#include "grid/wavefront.hpp"
#include "kernels/blas1.hpp"
#include "kernels/fused.hpp"
#include "kernels/spmv.hpp"
#include "kernels/symgs.hpp"
#include "sgdia/struct_matrix.hpp"
#include "util/multivector.hpp"
#include "util/rng.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace smg {
namespace {

template <class ST>
struct ct_of {
  using type = float;
};
template <>
struct ct_of<double> {
  using type = double;
};

/// Diagonally dominant random matrix (GS-stable, Jacobi-stable).
StructMat<double> dd_matrix(const Box& box, Pattern p, int bs, Layout layout,
                            std::uint64_t seed = 13) {
  StructMat<double> A(box, Stencil::make(p), bs, layout);
  Rng rng(seed);
  const int center = A.stencil().center();
  const double dom = 2.0 * A.ndiag() * bs;
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    for (int d = 0; d < A.ndiag(); ++d) {
      for (int br = 0; br < bs; ++br) {
        for (int bc = 0; bc < bs; ++bc) {
          double v = rng.uniform(-1.0, 1.0);
          if (d == center && br == bc) {
            v = dom + rng.uniform(0.0, 1.0);
          }
          A.at(cell, d, br, bc) = v;
        }
      }
    }
  }
  A.clear_out_of_box();
  return A;
}

template <class T>
avec<T> rand_vec(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  avec<T> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  return v;
}

/// Bitwise column comparison with a useful first-mismatch message.
template <class CT>
::testing::AssertionResult col_equal(const MultiVector<CT>& panel, int c,
                                     std::span<const CT> ref) {
  avec<CT> col(ref.size());
  panel.extract_col(c, {col.data(), col.size()});
  if (std::memcmp(col.data(), ref.data(), ref.size() * sizeof(CT)) == 0) {
    return ::testing::AssertionSuccess();
  }
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (std::memcmp(&col[i], &ref[i], sizeof(CT)) != 0) {
      return ::testing::AssertionFailure()
             << "col " << c << " first mismatch at row " << i << ": panel="
             << static_cast<double>(col[i])
             << " single=" << static_cast<double>(ref[i]);
    }
  }
  return ::testing::AssertionFailure() << "memcmp mismatch (padding only?)";
}

/// Padding columns must remain finite +0 after every panel kernel.
template <class CT>
void expect_padding_zero(const MultiVector<CT>& panel, const char* what) {
  for (std::int64_t r = 0; r < panel.rows(); ++r) {
    for (int c = panel.cols(); c < panel.padded_cols(); ++c) {
      const CT v = panel.at(r, c);
      ASSERT_EQ(v, CT{0}) << what << " padding row " << r << " col " << c;
      ASSERT_FALSE(std::signbit(static_cast<double>(v)))
          << what << " padding turned -0 at row " << r;
    }
  }
}

/// One full panel-vs-single sweep: SpMV, residual, SymGS f/b, fused Jacobi,
/// fused residual+restrict.  Everything compared bitwise per column.
template <class ST>
void panel_case(Pattern pat, int bs, Layout layout, bool scaled, int k) {
  using CT = typename ct_of<ST>::type;
  SCOPED_TRACE(::testing::Message()
               << to_string(pat) << " bs=" << bs
               << " layout=" << static_cast<int>(layout)
               << " scaled=" << scaled << " k=" << k);
  const Box box{11, 7, 6};  // odd nx exercises SIMD remainder lanes
  auto Ad = dd_matrix(box, pat, bs, Layout::SOA, 17);
  auto As = convert<ST>(Ad, layout);
  const auto invd = compute_invdiag(Ad);
  avec<CT> invdc(invd.size());
  for (std::size_t i = 0; i < invd.size(); ++i) {
    invdc[i] = static_cast<CT>(invd[i]);
  }
  const std::span<const CT> invds{invdc.data(), invdc.size()};
  const std::int64_t n = Ad.nrows();

  avec<CT> q2v;
  const CT* q2 = nullptr;
  if (scaled) {
    Rng rng(29);
    q2v.resize(static_cast<std::size_t>(n));
    for (auto& v : q2v) {
      v = static_cast<CT>(rng.uniform(0.5, 1.5));
    }
    q2 = q2v.data();
  }

  std::vector<avec<CT>> xs, fs;
  for (int c = 0; c < k; ++c) {
    xs.push_back(rand_vec<CT>(n, 101 + static_cast<std::uint64_t>(c)));
    fs.push_back(rand_vec<CT>(n, 211 + static_cast<std::uint64_t>(c)));
  }
  MultiVector<CT> X(n, k), F(n, k), Y(n, k), R(n, k);
  for (int c = 0; c < k; ++c) {
    X.insert_col(c, {xs[static_cast<std::size_t>(c)].data(),
                     static_cast<std::size_t>(n)});
    F.insert_col(c, {fs[static_cast<std::size_t>(c)].data(),
                     static_cast<std::size_t>(n)});
  }
  avec<CT> ref(static_cast<std::size_t>(n));
  const std::span<CT> refs{ref.data(), ref.size()};

  // --- SpMV ---
  spmv_many<ST, CT>(As, X, Y, q2);
  for (int c = 0; c < k; ++c) {
    spmv<ST, CT>(As,
                 {xs[static_cast<std::size_t>(c)].data(),
                  static_cast<std::size_t>(n)},
                 refs, q2);
    EXPECT_TRUE(col_equal(Y, c, {ref.data(), ref.size()})) << "spmv";
  }
  expect_padding_zero(Y, "spmv");

  // --- Residual ---
  residual_many<ST, CT>(As, F, X, R, q2);
  for (int c = 0; c < k; ++c) {
    residual<ST, CT>(As,
                     {fs[static_cast<std::size_t>(c)].data(),
                      static_cast<std::size_t>(n)},
                     {xs[static_cast<std::size_t>(c)].data(),
                      static_cast<std::size_t>(n)},
                     refs, q2);
    EXPECT_TRUE(col_equal(R, c, {ref.data(), ref.size()})) << "residual";
  }
  expect_padding_zero(R, "residual");

  // --- SymGS forward + backward (sequential schedule) ---
  const avec<CT> quarter(static_cast<std::size_t>(n), CT{0.25});
  MultiVector<CT> U(n, k);
  for (int c = 0; c < k; ++c) {
    U.insert_col(c, {quarter.data(), quarter.size()});
  }
  gs_forward_many<ST, CT>(As, F, U, invds, q2);
  gs_backward_many<ST, CT>(As, F, U, invds, q2);
  for (int c = 0; c < k; ++c) {
    avec<CT> useq = quarter;
    gs_forward<ST, CT>(As,
                       {fs[static_cast<std::size_t>(c)].data(),
                        static_cast<std::size_t>(n)},
                       {useq.data(), useq.size()}, invds, q2);
    gs_backward<ST, CT>(As,
                        {fs[static_cast<std::size_t>(c)].data(),
                         static_cast<std::size_t>(n)},
                        {useq.data(), useq.size()}, invds, q2);
    EXPECT_TRUE(col_equal(U, c, {useq.data(), useq.size()})) << "symgs";
  }
  expect_padding_zero(U, "symgs");

  // --- Fused Jacobi sweep ---
  MultiVector<CT> UN(n, k);
  jacobi_sweep_fused_many<ST, CT>(As, F, X, invds, q2, CT{0.8}, UN);
  for (int c = 0; c < k; ++c) {
    jacobi_sweep_fused<ST, CT>(As,
                               {fs[static_cast<std::size_t>(c)].data(),
                                static_cast<std::size_t>(n)},
                               {xs[static_cast<std::size_t>(c)].data(),
                                static_cast<std::size_t>(n)},
                               invds, q2, CT{0.8}, refs);
    EXPECT_TRUE(col_equal(UN, c, {ref.data(), ref.size()})) << "jacobi";
  }
  expect_padding_zero(UN, "jacobi");

  // --- Fused residual + restrict ---
  const Coarsening crs = Coarsening::make(box, 3);
  const std::int64_t ncrows = crs.coarse.size() * bs;
  MultiVector<CT> FC(ncrows, k);
  residual_restrict_many<ST, CT>(As, F, X, q2, crs, FC);
  avec<CT> fcref(static_cast<std::size_t>(ncrows));
  for (int c = 0; c < k; ++c) {
    residual_restrict<ST, CT>(As,
                              {fs[static_cast<std::size_t>(c)].data(),
                               static_cast<std::size_t>(n)},
                              {xs[static_cast<std::size_t>(c)].data(),
                               static_cast<std::size_t>(n)},
                              q2, crs, {fcref.data(), fcref.size()});
    EXPECT_TRUE(col_equal(FC, c, {fcref.data(), fcref.size()}))
        << "residual_restrict";
  }
  expect_padding_zero(FC, "residual_restrict");
}

template <class ST>
void panel_kernel_matrix() {
  // Panel-width sweep on the hot configuration.
  for (int k : {1, 2, 3, 5, 8}) {
    for (bool scaled : {false, true}) {
      panel_case<ST>(Pattern::P3d7, 1, Layout::SOA, scaled, k);
    }
  }
  // Layout x block-size variety at fixed widths.
  for (Layout lay : {Layout::SOA, Layout::SOAL, Layout::AOS}) {
    for (bool scaled : {false, true}) {
      panel_case<ST>(Pattern::P3d19, 1, lay, scaled, 3);
      panel_case<ST>(Pattern::P3d7, 3, lay, scaled, 5);
    }
  }
  panel_case<ST>(Pattern::P3d27, 1, Layout::SOAL, true, 8);
  panel_case<ST>(Pattern::P3d15, 3, Layout::SOA, false, 2);
  panel_case<ST>(Pattern::P3d7, 4, Layout::AOS, true, 3);
}

TEST(PanelKernels, BitwiseMatchesSingleDouble) {
  panel_kernel_matrix<double>();
}
TEST(PanelKernels, BitwiseMatchesSingleFloat) { panel_kernel_matrix<float>(); }
TEST(PanelKernels, BitwiseMatchesSingleHalf) { panel_kernel_matrix<half>(); }
TEST(PanelKernels, BitwiseMatchesSingleBfloat16) {
  panel_kernel_matrix<bfloat16>();
}

// --- Transfers (precision- and matrix-independent, CT only) ---

template <class CT>
void transfer_case(int bs, int k) {
  SCOPED_TRACE(::testing::Message() << "bs=" << bs << " k=" << k);
  const Box fine{11, 7, 6};
  const Coarsening c = Coarsening::make(fine, 3);
  const std::int64_t nf = fine.size() * bs;
  const std::int64_t nc = c.coarse.size() * bs;

  MultiVector<CT> RF(nf, k), FC(nc, k), EC(nc, k), UF(nf, k);
  std::vector<avec<CT>> rfs, ecs, ufs;
  for (int col = 0; col < k; ++col) {
    rfs.push_back(rand_vec<CT>(nf, 301 + static_cast<std::uint64_t>(col)));
    ecs.push_back(rand_vec<CT>(nc, 401 + static_cast<std::uint64_t>(col)));
    ufs.push_back(rand_vec<CT>(nf, 501 + static_cast<std::uint64_t>(col)));
    RF.insert_col(col, {rfs.back().data(), rfs.back().size()});
    EC.insert_col(col, {ecs.back().data(), ecs.back().size()});
    UF.insert_col(col, {ufs.back().data(), ufs.back().size()});
  }

  restrict_to_coarse_many<CT>(c, bs, RF, FC);
  avec<CT> fcref(static_cast<std::size_t>(nc));
  for (int col = 0; col < k; ++col) {
    restrict_to_coarse<CT>(c, bs,
                           {rfs[static_cast<std::size_t>(col)].data(),
                            static_cast<std::size_t>(nf)},
                           {fcref.data(), fcref.size()});
    EXPECT_TRUE(col_equal(FC, col, {fcref.data(), fcref.size()}))
        << "restrict";
  }
  expect_padding_zero(FC, "restrict");

  prolong_add_many<CT>(c, bs, EC, UF);
  for (int col = 0; col < k; ++col) {
    avec<CT> ufref = ufs[static_cast<std::size_t>(col)];
    prolong_add<CT>(c, bs,
                    {ecs[static_cast<std::size_t>(col)].data(),
                     static_cast<std::size_t>(nc)},
                    {ufref.data(), ufref.size()});
    EXPECT_TRUE(col_equal(UF, col, {ufref.data(), ufref.size()}))
        << "prolong";
  }
  expect_padding_zero(UF, "prolong");
}

TEST(PanelTransfers, BitwiseMatchesSingle) {
  for (int bs : {1, 3}) {
    for (int k : {1, 2, 3, 5, 8}) {
      transfer_case<double>(bs, k);
      transfer_case<float>(bs, k);
    }
  }
}

// --- Wavefront-parallel panel SymGS: bitwise at every thread count ---

template <class ST>
void panel_wavefront_case(Pattern pat, int bs, Layout layout, bool scaled) {
  using CT = typename ct_of<ST>::type;
  SCOPED_TRACE(::testing::Message()
               << to_string(pat) << " bs=" << bs
               << " layout=" << static_cast<int>(layout)
               << " scaled=" << scaled);
  const int k = 3;
  const Box box{12, 7, 6};
  auto Ad = dd_matrix(box, pat, bs, Layout::SOA, 17);
  auto As = convert<ST>(Ad, layout);
  const auto invd = compute_invdiag(Ad);
  avec<CT> invdc(invd.size());
  for (std::size_t i = 0; i < invd.size(); ++i) {
    invdc[i] = static_cast<CT>(invd[i]);
  }
  const std::span<const CT> invds{invdc.data(), invdc.size()};
  const std::int64_t n = Ad.nrows();

  avec<CT> q2v;
  const CT* q2 = nullptr;
  if (scaled) {
    Rng rng(29);
    q2v.resize(static_cast<std::size_t>(n));
    for (auto& v : q2v) {
      v = static_cast<CT>(rng.uniform(0.5, 1.5));
    }
    q2 = q2v.data();
  }

  std::vector<avec<CT>> fs;
  MultiVector<CT> F(n, k);
  for (int c = 0; c < k; ++c) {
    fs.push_back(rand_vec<CT>(n, 211 + static_cast<std::uint64_t>(c)));
    F.insert_col(c, {fs.back().data(), fs.back().size()});
  }

  // Single-RHS sequential reference per column.
  const avec<CT> quarter(static_cast<std::size_t>(n), CT{0.25});
  std::vector<avec<CT>> useq;
  for (int c = 0; c < k; ++c) {
    useq.push_back(quarter);
    gs_forward<ST, CT>(As,
                       {fs[static_cast<std::size_t>(c)].data(),
                        static_cast<std::size_t>(n)},
                       {useq.back().data(), useq.back().size()}, invds, q2);
    gs_backward<ST, CT>(As,
                        {fs[static_cast<std::size_t>(c)].data(),
                         static_cast<std::size_t>(n)},
                        {useq.back().data(), useq.back().size()}, invds, q2);
  }

  const WavefrontSchedule wf =
      layout == Layout::AOS ? WavefrontSchedule::cells(box, As.stencil())
                            : WavefrontSchedule::lines(box, As.stencil());
  ASSERT_TRUE(wf.valid());

#if defined(_OPENMP)
  const int saved_threads = omp_get_max_threads();
#endif
  for (int nt = 1; nt <= 8; ++nt) {
#if defined(_OPENMP)
    omp_set_num_threads(nt);
#endif
    MultiVector<CT> U(n, k);
    for (int c = 0; c < k; ++c) {
      U.insert_col(c, {quarter.data(), quarter.size()});
    }
    gs_forward_many<ST, CT>(As, F, U, invds, q2, &wf);
    gs_backward_many<ST, CT>(As, F, U, invds, q2, &wf);
    for (int c = 0; c < k; ++c) {
      EXPECT_TRUE(col_equal(U, c,
                            {useq[static_cast<std::size_t>(c)].data(),
                             static_cast<std::size_t>(n)}))
          << "threads=" << nt;
    }
    expect_padding_zero(U, "wavefront symgs");
#if !defined(_OPENMP)
    break;
#endif
  }
#if defined(_OPENMP)
  omp_set_num_threads(saved_threads);
#endif
}

template <class ST>
void panel_wavefront_matrix() {
  panel_wavefront_case<ST>(Pattern::P3d7, 1, Layout::SOA, true);
  panel_wavefront_case<ST>(Pattern::P3d27, 1, Layout::SOAL, false);
  panel_wavefront_case<ST>(Pattern::P3d7, 3, Layout::SOA, true);
  panel_wavefront_case<ST>(Pattern::P3d19, 1, Layout::AOS, true);
}

TEST(PanelSymGSWavefront, BitwiseDouble) { panel_wavefront_matrix<double>(); }
TEST(PanelSymGSWavefront, BitwiseFloat) { panel_wavefront_matrix<float>(); }
TEST(PanelSymGSWavefront, BitwiseHalf) { panel_wavefront_matrix<half>(); }
TEST(PanelSymGSWavefront, BitwiseBfloat16) {
  panel_wavefront_matrix<bfloat16>();
}

// --- Masked panel BLAS-1 ---

TEST(PanelBlas1, MaskedUpdatesSkipFrozenColumnsEntirely) {
  const std::int64_t n = 1000;
  const int k = 3;
  MultiVector<double> X(n, k), Y(n, k);
  std::vector<avec<double>> xs, ys;
  for (int c = 0; c < k; ++c) {
    xs.push_back(rand_vec<double>(n, 601 + static_cast<std::uint64_t>(c)));
    ys.push_back(rand_vec<double>(n, 701 + static_cast<std::uint64_t>(c)));
    X.insert_col(c, {xs.back().data(), xs.back().size()});
    Y.insert_col(c, {ys.back().data(), ys.back().size()});
  }
  // Poison the frozen column with NaN / -0: a nominal y += 0*x would
  // corrupt it, a true skip leaves it bitwise intact.
  avec<double> poison(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < poison.size(); ++i) {
    poison[i] = (i % 2 == 0) ? std::numeric_limits<double>::quiet_NaN() : -0.0;
  }
  Y.insert_col(1, {poison.data(), poison.size()});

  const double alpha[3] = {0.5, 99.0, -1.25};
  const unsigned char active[3] = {1, 0, 1};
  axpy_cols<double>({alpha, 3}, X, Y, active);

  avec<double> col(static_cast<std::size_t>(n));
  for (int c : {0, 2}) {
    avec<double> want = ys[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < want.size(); ++i) {
      want[i] += alpha[c] * xs[static_cast<std::size_t>(c)][i];
    }
    EXPECT_TRUE(col_equal(Y, c, {want.data(), want.size()})) << "axpy";
  }
  Y.extract_col(1, {col.data(), col.size()});
  EXPECT_EQ(0, std::memcmp(col.data(), poison.data(),
                           col.size() * sizeof(double)))
      << "frozen column disturbed by axpy_cols";

  // xpay on the same mask: frozen column again untouched.
  const avec<double> before = col;
  xpay_cols<double>(X, {alpha, 3}, Y, active);
  Y.extract_col(1, {col.data(), col.size()});
  EXPECT_EQ(0, std::memcmp(col.data(), before.data(),
                           col.size() * sizeof(double)))
      << "frozen column disturbed by xpay_cols";
}

TEST(PanelBlas1, DotManyAccurateAndThreadCountInvariant) {
  const std::int64_t n = 20000;  // several 4096-row blocks
  const int k = 5;
  MultiVector<float> X(n, k), Y(n, k);
  std::vector<avec<float>> xs, ys;
  for (int c = 0; c < k; ++c) {
    xs.push_back(rand_vec<float>(n, 801 + static_cast<std::uint64_t>(c)));
    ys.push_back(rand_vec<float>(n, 901 + static_cast<std::uint64_t>(c)));
    X.insert_col(c, {xs.back().data(), xs.back().size()});
    Y.insert_col(c, {ys.back().data(), ys.back().size()});
  }
  std::vector<double> out(static_cast<std::size_t>(k), 0.0);
  dot_many<float>(X, Y, {out.data(), out.size()});
  for (int c = 0; c < k; ++c) {
    double want = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      want += static_cast<double>(xs[static_cast<std::size_t>(c)]
                                     [static_cast<std::size_t>(i)]) *
              static_cast<double>(ys[static_cast<std::size_t>(c)]
                                     [static_cast<std::size_t>(i)]);
    }
    EXPECT_NEAR(out[static_cast<std::size_t>(c)], want,
                1e-9 * (std::abs(want) + 1.0));
  }
#if defined(_OPENMP)
  const int saved_threads = omp_get_max_threads();
  for (int nt = 1; nt <= 8; ++nt) {
    omp_set_num_threads(nt);
    std::vector<double> out2(static_cast<std::size_t>(k), 0.0);
    dot_many<float>(X, Y, {out2.data(), out2.size()});
    EXPECT_EQ(0, std::memcmp(out.data(), out2.data(),
                             out.size() * sizeof(double)))
        << "threads=" << nt;
  }
  omp_set_num_threads(saved_threads);
#endif
}

}  // namespace
}  // namespace smg
