// Fused downstroke kernels: residual_restrict and jacobi_sweep_fused must be
// bitwise identical to their two-step references (residual() into a scratch
// vector, then restrict / diagonal-update) for every layout × storage ×
// block-size × q2 combination, at every thread count.  Bitwise — not
// "near" — because the fused kernels perform the same operations on the same
// operands in the same order; any drift here is a dispatch mismatch, not
// rounding.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "core/transfer.hpp"
#include "kernels/fused.hpp"
#include "kernels/spmv.hpp"
#include "sgdia/struct_matrix.hpp"
#include "util/rng.hpp"

namespace smg {
namespace {

StructMat<double> random_matrix(const Box& box, Pattern p, int bs,
                                std::uint64_t seed = 7) {
  StructMat<double> A(box, Stencil::make(p), bs, Layout::SOA);
  Rng rng(seed);
  for (auto& v : A.values()) {
    v = rng.uniform(-1.0, 1.0);
  }
  A.clear_out_of_box();
  return A;
}

template <class T>
avec<T> random_vector(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  avec<T> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  return v;
}

template <class T>
avec<T> random_q2(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  avec<T> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = static_cast<T>(0.5 + std::abs(rng.uniform(-1.0, 1.0)));
  }
  return v;
}

/// Fused vs (residual; restrict_to_coarse) for one (storage, compute,
/// layout, q2) combination on the given matrix.
template <class ST, class CT>
void expect_fused_matches(const StructMat<double>& Ad, Layout layout,
                          bool with_q2, int min_dim) {
  const auto A = convert<ST>(Ad, layout);
  const Coarsening c = Coarsening::make(Ad.box(), min_dim);
  const int bs = A.block_size();
  const std::int64_t n = A.nrows();
  const std::size_t nc = static_cast<std::size_t>(c.coarse.size() * bs);
  const auto f = random_vector<CT>(n, 5);
  const auto u = random_vector<CT>(n, 3);
  avec<CT> q2v;
  const CT* q2 = nullptr;
  if (with_q2) {
    q2v = random_q2<CT>(n, 9);
    q2 = q2v.data();
  }

  avec<CT> r(static_cast<std::size_t>(n));
  residual(A, std::span<const CT>{f.data(), f.size()},
           std::span<const CT>{u.data(), u.size()},
           std::span<CT>{r.data(), r.size()}, q2);
  avec<CT> ref(nc);
  restrict_to_coarse<CT>(c, bs, {r.data(), r.size()}, {ref.data(), nc});

  avec<CT> out(nc, static_cast<CT>(42));  // poison: every dof must be written
  residual_restrict(A, std::span<const CT>{f.data(), f.size()},
                    std::span<const CT>{u.data(), u.size()}, q2, c,
                    std::span<CT>{out.data(), nc});

  ASSERT_EQ(0, std::memcmp(out.data(), ref.data(), nc * sizeof(CT)))
      << "layout=" << static_cast<int>(layout) << " bs=" << bs
      << " q2=" << with_q2 << " min_dim=" << min_dim;
}

struct FusedCase {
  Pattern pattern;
  int bs;
  Layout layout;
};

class FusedParam : public ::testing::TestWithParam<FusedCase> {};

TEST_P(FusedParam, MatchesTwoStepReferenceBitwise) {
  const auto& pc = GetParam();
  const Box box{9, 7, 6};
  const auto Ad = random_matrix(box, pc.pattern, pc.bs);
  // min_dim = 3 coarsens every dimension; min_dim = 7 exercises the
  // semicoarsened (identity-dimension) children path.
  for (int min_dim : {3, 7}) {
    for (bool q2 : {false, true}) {
      expect_fused_matches<double, double>(Ad, pc.layout, q2, min_dim);
      expect_fused_matches<float, float>(Ad, pc.layout, q2, min_dim);
      expect_fused_matches<half, float>(Ad, pc.layout, q2, min_dim);
      expect_fused_matches<bfloat16, float>(Ad, pc.layout, q2, min_dim);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, FusedParam,
    ::testing::Values(FusedCase{Pattern::P3d7, 1, Layout::SOA},
                      FusedCase{Pattern::P3d7, 1, Layout::SOAL},
                      FusedCase{Pattern::P3d7, 1, Layout::AOS},
                      FusedCase{Pattern::P3d27, 1, Layout::SOA},
                      FusedCase{Pattern::P3d27, 1, Layout::SOAL},
                      FusedCase{Pattern::P3d27, 1, Layout::AOS},
                      FusedCase{Pattern::P3d19, 1, Layout::SOAL},
                      FusedCase{Pattern::P3d7, 3, Layout::SOA},
                      FusedCase{Pattern::P3d7, 3, Layout::SOAL},
                      FusedCase{Pattern::P3d7, 3, Layout::AOS},
                      FusedCase{Pattern::P3d27, 3, Layout::SOAL}));

#if defined(_OPENMP)
TEST(FusedThreads, ResidualRestrictIsThreadCountInvariant) {
  const Box box{17, 13, 11};
  const auto Ad = random_matrix(box, Pattern::P3d27, 1);
  const auto A = convert<half>(Ad, Layout::SOAL);
  const Coarsening c = Coarsening::make(box, 3);
  const std::int64_t n = A.nrows();
  const std::size_t nc = static_cast<std::size_t>(c.coarse.size());
  const auto f = random_vector<float>(n, 5);
  const auto u = random_vector<float>(n, 3);
  const auto q2 = random_q2<float>(n, 9);

  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  avec<float> ref(nc);
  residual_restrict(A, std::span<const float>{f.data(), f.size()},
                    std::span<const float>{u.data(), u.size()}, q2.data(), c,
                    std::span<float>{ref.data(), nc});
  for (int nt : {2, 3, 5, 8}) {
    omp_set_num_threads(nt);
    avec<float> out(nc, -1.0f);
    residual_restrict(A, std::span<const float>{f.data(), f.size()},
                      std::span<const float>{u.data(), u.size()}, q2.data(),
                      c, std::span<float>{out.data(), nc});
    EXPECT_EQ(0, std::memcmp(out.data(), ref.data(), nc * sizeof(float)))
        << "threads=" << nt;
  }
  omp_set_num_threads(saved);
}
#endif

template <class ST, class CT>
void expect_jacobi_matches(const StructMat<double>& Ad, Layout layout,
                           bool with_q2) {
  const auto A = convert<ST>(Ad, layout);
  const int bs = A.block_size();
  const std::int64_t n = A.nrows();
  const std::int64_t nblk = A.ncells() * bs * bs;
  const auto f = random_vector<CT>(n, 5);
  const auto u = random_vector<CT>(n, 3);
  const auto invdiag = random_vector<CT>(nblk, 17);
  avec<CT> q2v;
  const CT* q2 = nullptr;
  if (with_q2) {
    q2v = random_q2<CT>(n, 9);
    q2 = q2v.data();
  }
  const CT w = static_cast<CT>(0.67);

  // Two-pass reference: residual, then the diagonal update.
  avec<CT> r(static_cast<std::size_t>(n));
  residual(A, std::span<const CT>{f.data(), f.size()},
           std::span<const CT>{u.data(), u.size()},
           std::span<CT>{r.data(), r.size()}, q2);
  avec<CT> ref(static_cast<std::size_t>(n));
  const std::int64_t block2 = static_cast<std::int64_t>(bs) * bs;
  for (std::int64_t cell = 0; cell < A.ncells(); ++cell) {
    const CT* blk = invdiag.data() + cell * block2;
    for (int br = 0; br < bs; ++br) {
      CT acc{0};
      for (int bc = 0; bc < bs; ++bc) {
        acc += blk[br * bs + bc] * r[static_cast<std::size_t>(cell * bs + bc)];
      }
      ref[static_cast<std::size_t>(cell * bs + br)] =
          u[static_cast<std::size_t>(cell * bs + br)] + w * acc;
    }
  }

  avec<CT> unew(static_cast<std::size_t>(n));
  jacobi_sweep_fused(A, std::span<const CT>{f.data(), f.size()},
                     std::span<const CT>{u.data(), u.size()},
                     std::span<const CT>{invdiag.data(), invdiag.size()}, q2,
                     w, std::span<CT>{unew.data(), unew.size()});
  ASSERT_EQ(0, std::memcmp(unew.data(), ref.data(),
                           static_cast<std::size_t>(n) * sizeof(CT)))
      << "layout=" << static_cast<int>(layout) << " bs=" << bs
      << " q2=" << with_q2;
}

TEST(FusedJacobi, MatchesTwoPassReferenceBitwise) {
  const Box box{8, 7, 5};
  for (int bs : {1, 3}) {
    const auto Ad = random_matrix(box, Pattern::P3d27, bs);
    for (Layout layout : {Layout::SOA, Layout::SOAL, Layout::AOS}) {
      for (bool q2 : {false, true}) {
        expect_jacobi_matches<double, double>(Ad, layout, q2);
        expect_jacobi_matches<float, float>(Ad, layout, q2);
        expect_jacobi_matches<half, float>(Ad, layout, q2);
        expect_jacobi_matches<bfloat16, float>(Ad, layout, q2);
      }
    }
  }
}

}  // namespace
}  // namespace smg
